# Convenience targets; `make check` is the gate a PR must pass.

.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

check:
	dune build && dune runtest

bench:
	dune exec bench/main.exe -- --scale 0.001 --threads 2 --ops 5000

clean:
	dune clean
