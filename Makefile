# Convenience targets; `make check` is the gate a PR must pass.

# Relative simulated-throughput drop that fails the bench_compare gate
# (also overridable at run time via BENCH_COMPARE_THRESHOLD in the
# environment; the flag passed here wins).
BENCH_THRESHOLD ?= 0.10

.PHONY: all build test check chaos chaos-txn chaos-net bench bench-gate \
  latency latency-throughput latency-latency latency-rto latency-improve \
  microbench serve clean

# Chaos-run shape: the four historically-bad seeds (the limbo-chain bug,
# now fixed and regression-gated here) plus four fresh ones.
CHAOS_SEEDS ?= 1,4,6,7,11,23,42,97
CHAOS_OPS ?= 30000

all: build

build:
	dune build

test:
	dune runtest

# Build + unit tests + a smoke benchmark run whose JSON report must diff
# cleanly against itself through bin/bench_compare (exercises the --json
# schema, the parser and the regression gate end to end) + the
# tail-latency gate against the committed baseline + a wall-clock
# microbench smoke run (exercises the simulator fast paths and the
# --min-mops gate plumbing; the bar is deliberately tiny — real
# comparisons are two --json reports on the same machine) + the
# serving-layer gate (a real server process driven over the wire) + the
# crash-restart/network-fault torture (chaos-net).
check: build test bench-gate latency microbench serve chaos-net

# Crash-chaos gate: random-crash torture over the known-bad + fresh seed
# matrix, a deterministic schedule that crashes inside recovery at three
# distinct phases, and an offline fsck pass over the final image. Each
# chaos run fails red on any oracle mismatch, unconverged recovery or
# quarantined (leaked) allocator chain.
chaos: build
	dune exec bin/chaos.exe -- --seeds $(CHAOS_SEEDS) --ops $(CHAOS_OPS) \
	  --json _build/chaos_check.json
	dune exec bin/chaos.exe -- --seeds 4 --ops 10000 \
	  --schedule "merge_limbo:1,recover.epoch_open:1,recover.extlog_replay:1,recover.alloc_chains:1,recover.checkpoint:1" \
	  --json _build/chaos_sched.json --save-image _build/chaos_final.nvm
	dune exec bin/incll_fsck.exe -- _build/chaos_final.nvm
	dune exec bin/chaos.exe -- --seeds $(CHAOS_SEEDS) --ops $(CHAOS_OPS) \
	  --policy latency --json _build/chaos_latency.json
	dune exec bin/chaos.exe -- --seeds 4 --ops 10000 --policy latency \
	  --schedule "epoch.sweep_partial:1,epoch.sweep_partial:2,post_checkpoint:1,epoch.sweep_partial:1" \
	  --json _build/chaos_sweep_sched.json
	$(MAKE) chaos-txn

# Transaction torture: multi-key transactions interleaved with random
# crashes, single-shard and across a 4-shard 2PC store (the oracle
# checks every committed transaction is all-or-nothing after each
# crash), plus a deterministic schedule that crashes at each txn
# protocol site — mid-PREPARE, just before the watermark store, during
# epoch rollback, and inside recovery's in-doubt resolution.
chaos-txn: build
	dune exec bin/chaos.exe -- --seeds $(CHAOS_SEEDS) --ops 8000 \
	  --txn-period 10 --crash-period 500 \
	  --json _build/chaos_txn1.json
	dune exec bin/chaos.exe -- --seeds 11,12,13,14,15,16,17,18 --ops 6000 \
	  --shards 4 --txn-period 8 --txn-writes 6 --crash-period 400 \
	  --json _build/chaos_txn4.json
	dune exec bin/chaos.exe -- --seeds 3,9 --ops 3000 --shards 4 \
	  --txn-period 8 --crash-period 0 \
	  --schedule "txn_prepare:1,txn_commit_record:1,txn_rollback:1,recover.txn_resolve:1" \
	  --json _build/chaos_txn_sched.json

bench-gate:
	dune exec bench/main.exe -- --only ablation_valincll --scale 0.001 \
	  --threads 2 --ops 2000 --json _build/bench_check.json --date check
	dune exec bin/bench_compare.exe -- --threshold $(BENCH_THRESHOLD) \
	  _build/bench_check.json _build/bench_check.json

# Tail-latency gate: regenerate the latency report under the exact
# committed-baseline conditions — fixed seed, flush-heavy 1 ms epochs,
# and a fixed open-loop arrival rate chosen just under the closed-loop
# capacity so epoch flushes build real queues — then diff it against the
# committed baseline, once per checkpoint policy. Every gated cell
# (closed/open p50/p99/p999 of the per-op latency histogram, per-cause
# stalled time) is simulated-clock, hence machine-independent and
# bit-deterministic; only a code change can move them. Regenerate a
# baseline by copying the matching _build/bench_latency*.json over its
# BENCH_latency*.json when a change legitimately shifts the tail.
LATENCY_FLAGS = --latency --scale 0.001 --threads 2 --ops 20000 \
  --epoch-ms 1 --arrival-rate 10600000 --seed 1 --date baseline

latency-throughput: build
	dune exec bench/main.exe -- $(LATENCY_FLAGS) \
	  --json _build/bench_latency.json
	dune exec bin/bench_compare.exe -- --threshold $(BENCH_THRESHOLD) \
	  BENCH_latency.json _build/bench_latency.json

latency-latency: build
	dune exec bench/main.exe -- $(LATENCY_FLAGS) --policy latency \
	  --json _build/bench_latency_latency.json
	dune exec bin/bench_compare.exe -- --threshold $(BENCH_THRESHOLD) \
	  BENCH_latency_latency.json _build/bench_latency_latency.json

latency-rto: build
	dune exec bench/main.exe -- $(LATENCY_FLAGS) --policy rto \
	  --json _build/bench_latency_rto.json
	dune exec bin/bench_compare.exe -- --threshold $(BENCH_THRESHOLD) \
	  BENCH_latency_rto.json _build/bench_latency_rto.json

# Cross-policy improvement gate: the incremental-sweep latency policy
# must beat the committed stop-the-world baseline by >= 2x on the
# open-loop p999 and must not have grown the epoch_advance stalled time
# (the sweep's whole point is moving that stall out of the op path).
latency-improve: latency-throughput latency-latency
	dune exec bin/bench_compare.exe -- \
	  --improve open:p999:2.0 --improve-stall open:epoch_advance:1.0 \
	  _build/bench_latency.json _build/bench_latency_latency.json

latency: latency-throughput latency-latency latency-rto latency-improve

microbench:
	dune exec bin/microbench.exe -- --stores 200000 --spans 50000 \
	  --keys 2000 --ops 2000 --threads 2 --min-mops 0.005 \
	  --json _build/microbench_check.json

# Serving-layer gate: start a real bin/incll_server.exe process on a
# unix socket, drive it with the remote open-loop bench, SIGTERM it and
# require a clean drain. --oracle makes the bench (a) replay the same
# seeded streams through an in-process store and demand the server's
# complete final state match key for key, (b) fail on any BUSY bounce
# (the queue capacity below is sized so admission is lossless), and
# (c) fail unless >= 99% of over-threshold ops are attributed to a
# cause (net_queue included). The numbers are wall clock — host noise
# included — so the JSON report is self-diffed through bench_compare
# (schema + gate plumbing), never compared against a committed baseline.
SERVE_SOCK ?= /tmp/incll_serve_gate.sock

serve: build
	rm -f $(SERVE_SOCK) _build/serve.pid
	./_build/default/bin/incll_server.exe --listen unix:$(SERVE_SOCK) \
	  --shards 2 --queue-capacity 65536 & echo $$! > _build/serve.pid
	for i in $$(seq 1 100); do [ -S $(SERVE_SOCK) ] && break; sleep 0.1; done; \
	  [ -S $(SERVE_SOCK) ]
	./_build/default/bench/main.exe --only remote \
	  --connect unix:$(SERVE_SOCK) --oracle --scale 0.001 --threads 2 \
	  --ops 2000 --latency-threshold-us 200 --seed 1 \
	  --json _build/bench_serve.json --date check; \
	  rc=$$?; kill -TERM $$(cat _build/serve.pid) 2>/dev/null; \
	  for i in $$(seq 1 100); do kill -0 $$(cat _build/serve.pid) 2>/dev/null || break; sleep 0.1; done; \
	  if kill -0 $$(cat _build/serve.pid) 2>/dev/null; then echo "server did not drain"; kill -9 $$(cat _build/serve.pid); exit 1; fi; \
	  exit $$rc
	dune exec bin/bench_compare.exe -- --threshold $(BENCH_THRESHOLD) \
	  _build/bench_serve.json _build/bench_serve.json

# End-to-end fault-tolerance torture: per seed, real incll_server.exe
# processes are SIGKILLed mid-load and restarted over the same NVM
# image while retrying client sessions drive stamped ops through a
# frame-level fault injector (drop/delay/dup/trunc/sever); the oracle
# demands the final server state match the last acked op per key
# exactly once, and every seed must end in a clean SIGTERM drain.
# Seed 1 is a targeted reply-loss + crash schedule that must produce a
# dedup hit from the *recovered* session table.
CHAOS_NET_SEEDS ?= 8

chaos-net: build
	./_build/default/bin/chaos_net.exe --seeds $(CHAOS_NET_SEEDS) \
	  --json _build/chaos_net.json

bench:
	dune exec bench/main.exe -- --scale 0.001 --threads 2 --ops 5000

clean:
	dune clean
