# Convenience targets; `make check` is the gate a PR must pass.

.PHONY: all build test check bench bench-gate clean

all: build

build:
	dune build

test:
	dune runtest

# Build + unit tests + a smoke benchmark run whose JSON report must diff
# cleanly against itself through bin/bench_compare (exercises the --json
# schema, the parser and the regression gate end to end).
check: build test bench-gate

bench-gate:
	dune exec bench/main.exe -- --only ablation_valincll --scale 0.001 \
	  --threads 2 --ops 2000 --json _build/bench_check.json --date check
	dune exec bin/bench_compare.exe -- \
	  _build/bench_check.json _build/bench_check.json

bench:
	dune exec bench/main.exe -- --scale 0.001 --threads 2 --ops 5000

clean:
	dune clean
