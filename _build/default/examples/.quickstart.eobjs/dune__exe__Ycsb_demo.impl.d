examples/ycsb_demo.ml: Array Bench_harness Incll Printf String Sys Util Workload
