examples/crash_torture.ml: Array Epoch Incll Int64 Map Masstree Nvm Printf String Sys Util
