examples/restart.mli:
