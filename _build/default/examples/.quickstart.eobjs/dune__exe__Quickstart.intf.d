examples/quickstart.mli:
