examples/quickstart.ml: Incll List Masstree Printf Util
