examples/durable_kv.ml: Incll List Nvm Printf Store Util
