examples/durable_kv.mli:
