examples/restart.ml: Array Filename Incll List Masstree Nvm Printf Stdlib Sys
