examples/ycsb_demo.mli:
