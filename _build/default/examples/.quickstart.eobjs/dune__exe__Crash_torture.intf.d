examples/crash_torture.mli:
