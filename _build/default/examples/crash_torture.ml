(* The paper's §5.2 correctness methodology, as a runnable demo:

   "We tested the modified system by intentionally crashing it at random
   points, launching a new process, and checking that system's state
   matched the state at the beginning of the failed epoch."

   A differential harness runs random operations against both the durable
   store and an in-memory model, crashes at random points, and verifies
   that recovery lands exactly on the last completed checkpoint.

   Run with: dune exec examples/crash_torture.exe -- [rounds] [seed] *)

module SM = Map.Make (String)
module Sys_ = Incll.System

let key_of i = Masstree.Key.of_int64 (Util.Scramble.fmix64 (Int64.of_int i))

let config =
  {
    Sys_.default_config with
    Sys_.nvm =
      {
        Nvm.Config.default with
        Nvm.Config.size_bytes = 32 * 1024 * 1024;
        extlog_bytes = 2 * 1024 * 1024;
      };
    epoch_len_ns = 0.2e6 (* short epochs -> many checkpoints *);
  }

let () =
  let rounds =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 30_000
  in
  let seed = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 7 in
  let rng = Util.Rng.create ~seed in
  let sys = ref (Sys_.create ~config Sys_.Incll) in
  let model = ref SM.empty in
  let checkpoint = ref SM.empty in
  let nkeys = 1_000 in
  let crashes = ref 0 in
  let verified = ref 0 in
  let epoch () =
    match Sys_.epoch_manager !sys with
    | Some em -> Epoch.Manager.current em
    | None -> 0
  in
  let last_epoch = ref (epoch ()) in
  let sync () =
    if epoch () <> !last_epoch then begin
      checkpoint := !model;
      last_epoch := epoch ()
    end
  in
  Printf.printf "torturing INCLL with %d ops over %d keys (seed %d)...\n%!"
    rounds nkeys seed;
  for step = 1 to rounds do
    sync ();
    let k = key_of (Util.Rng.int rng nkeys) in
    (match Util.Rng.int rng 10 with
    | 0 | 1 | 2 | 3 | 4 ->
        let v = Printf.sprintf "v%d" step in
        Sys_.put !sys ~key:k ~value:v;
        model := SM.add k v !model
    | 5 | 6 ->
        ignore (Sys_.remove !sys ~key:k);
        model := SM.remove k !model
    | _ -> assert (Sys_.get !sys ~key:k = SM.find_opt k !model));
    sync ();
    if Util.Rng.int rng 2_000 = 0 then begin
      (* Power failure at a random point; every dirty line keeps a random
         prefix of its pending stores. *)
      Sys_.crash !sys rng;
      sys := Sys_.recover !sys;
      incr crashes;
      model := !checkpoint;
      last_epoch := epoch ();
      (* Full verification against the checkpoint model. *)
      Masstree.Tree.validate (Sys_.tree !sys);
      SM.iter
        (fun k v ->
          match Sys_.get !sys ~key:k with
          | Some v' when v' = v -> incr verified
          | other ->
              Printf.printf "MISMATCH at key %S: got %s, expected %S\n"
                k
                (match other with Some v' -> Printf.sprintf "%S" v' | None -> "None")
                v;
              exit 1)
        !model;
      if Masstree.Tree.cardinal (Sys_.tree !sys) <> SM.cardinal !model then begin
        print_endline "MISMATCH: cardinality differs";
        exit 1
      end;
      checkpoint := !model
    end
  done;
  Printf.printf
    "OK: %d crashes, %d post-crash key verifications, all states matched the\n\
     beginning of the failed epoch (paper §5.2)\n"
    !crashes !verified
