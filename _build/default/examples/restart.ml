(* Restart-across-process durability: the NVM image outlives the process.

   Phase 1 builds a store, checkpoints, saves the persisted image to a
   file and exits. Phase 2 — run as a separate invocation, or as the
   default combined demo — loads the image like a machine rebooting with
   its NVM DIMMs intact, recovers, and reads everything back.

   Run with: dune exec examples/restart.exe            (both phases)
             dune exec examples/restart.exe -- save FILE
             dune exec examples/restart.exe -- load FILE *)

module Sys_ = Incll.System

let config =
  {
    Sys_.default_config with
    Sys_.nvm =
      {
        Nvm.Config.default with
        Nvm.Config.size_bytes = 8 * 1024 * 1024;
        extlog_bytes = 512 * 1024;
      };
    epoch_len_ns = 4.0e6;
  }

let key i = Printf.sprintf "sensor/%04d" i

let phase_save path =
  let sys = Sys_.create ~config Sys_.Incll in
  for i = 0 to 1_999 do
    Sys_.put sys ~key:(key i) ~value:(Printf.sprintf "%d.%02d degC" (15 + (i mod 20)) (i mod 100))
  done;
  (* The save helper below checkpoints implicitly via advance_epoch; do it
     explicitly so the intent is visible. *)
  Sys_.advance_epoch sys;
  (* Writes after the checkpoint won't be in the image — like pulling the
     plug right after the last completed epoch. *)
  Sys_.put sys ~key:"sensor/9999" ~value:"not yet durable";
  Nvm.Image.save (Sys_.region sys) ~path;
  Printf.printf "phase 1: stored 2,000 readings, checkpointed, image -> %s\n" path

let phase_load path =
  let region = Nvm.Image.load config.Sys_.nvm ~path in
  let sys = Sys_.attach ~config Sys_.Incll region in
  Printf.printf "phase 2: rebooted from %s\n" path;
  (match Sys_.last_recover_stats sys with
  | Some st ->
      Printf.printf "  recovery replayed %d log entries in %.3f simulated ms\n"
        st.Sys_.replayed_entries
        (st.Sys_.recovery_sim_ns /. 1e6)
  | None -> ());
  let n = Masstree.Tree.cardinal (Sys_.tree sys) in
  Printf.printf "  %d readings survived the restart\n" n;
  assert (n = 2_000);
  assert (Sys_.get sys ~key:(key 42) <> None);
  assert (Sys_.get sys ~key:"sensor/9999" = None);
  List.iter
    (fun (k, v) -> Printf.printf "  %s = %s\n" k v)
    (Sys_.scan sys ~start:"sensor/01" ~n:3);
  print_endline "restart OK"

let () =
  match Array.to_list Sys.argv with
  | [ _; "save"; path ] -> phase_save path
  | [ _; "load"; path ] -> phase_load path
  | [ _ ] ->
      let path = Filename.temp_file "incll_restart" ".img" in
      phase_save path;
      phase_load path;
      Stdlib.Sys.remove path
  | _ ->
      prerr_endline "usage: restart.exe [save FILE | load FILE]";
      exit 2
