(* Drive a YCSB workload against any variant and print persistence
   statistics — a small window into what Figure 2 measures.

   Run with: dune exec examples/ycsb_demo.exe -- [variant] [mix] [dist]
   e.g.      dune exec examples/ycsb_demo.exe -- INCLL A zipfian *)

module R = Bench_harness.Runner
module Y = Workload.Ycsb

let () =
  let arg i default = if Array.length Sys.argv > i then Sys.argv.(i) else default in
  let variant = Incll.System.variant_of_string (arg 1 "INCLL") in
  let mix = Y.mix_of_string (arg 2 "A") in
  let dist =
    match String.lowercase_ascii (arg 3 "uniform") with
    | "zipfian" | "zipf" -> Y.Zipfian
    | _ -> Y.Uniform
  in
  let nkeys = 100_000 and threads = 4 and ops = 50_000 in
  Printf.printf "running %s on %s/%s: %d keys, %d domains, %d ops each...\n%!"
    (Incll.System.variant_name variant)
    (Y.mix_name mix) (Y.dist_name dist) nkeys threads ops;
  let config =
    R.config_for ~epoch_len_ns:8.0e6 ~nkeys_per_shard:((nkeys / threads) + 1) ()
  in
  let r =
    R.run ~threads ~ops_per_thread:ops ~config ~variant ~mix ~dist ~nkeys ()
  in
  Printf.printf "\nthroughput : %.2f Mops/s (simulated)  [%.2f Mops/s wall]\n"
    r.R.mops_sim r.R.mops_wall;
  Printf.printf "checkpoints: %d   (global cache flushes: %d)\n" r.R.epochs
    r.R.wbinvds;
  Printf.printf "NVM events : %s stores, %s loads\n"
    (Util.Table.cell_int r.R.writes)
    (Util.Table.cell_int r.R.reads);
  Printf.printf "persistence: %s sfences, %s clwbs, %s nodes externally logged\n"
    (Util.Table.cell_int r.R.sfences)
    (Util.Table.cell_int r.R.clwbs)
    (Util.Table.cell_int r.R.nodes_logged);
  Printf.printf "InCLL      : %s first-touches, %s value-InCLL uses\n"
    (Util.Table.cell_int r.R.incll_first_touches)
    (Util.Table.cell_int r.R.incll_val_uses);
  if r.R.sfences > 0 || r.R.nodes_logged > 0 then
    Printf.printf "=> %.4f draining fences per operation\n"
      (float_of_int r.R.sfences /. float_of_int r.R.ops)
  else
    print_endline "=> no persistence actions at all (transient variant)"
