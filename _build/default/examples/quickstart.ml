(* Quickstart: a durable key-value store that survives a power failure.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Create an INCLL system: a simulated-NVM region hosting a durable
     Masstree with fine-grained checkpointing + in-cache-line logging. *)
  let sys = Incll.System.create Incll.System.Incll in

  (* 2. Use it like any ordered map. Keys and values are byte strings. *)
  Incll.System.put sys ~key:"alice" ~value:"researcher";
  Incll.System.put sys ~key:"bob" ~value:"engineer";
  Incll.System.put sys ~key:"carol" ~value:"architect";
  assert (Incll.System.get sys ~key:"bob" = Some "engineer");

  (* 3. A checkpoint makes everything up to this point durable. In
     production this happens automatically every 64 simulated ms; here we
     force one to make the example deterministic. *)
  Incll.System.advance_epoch sys;
  Printf.printf "checkpointed: %d entries durable\n"
    (Masstree.Tree.cardinal (Incll.System.tree sys));

  (* 4. Keep modifying — these writes belong to the next, uncommitted
     epoch. No flushes, no fences: the InCLLs inside each tree node make
     them undoable. *)
  Incll.System.put sys ~key:"bob" ~value:"manager";
  Incll.System.put sys ~key:"dave" ~value:"intern";
  ignore (Incll.System.remove sys ~key:"alice");

  (* 5. Power failure! Each dirty cache line independently persists only a
     prefix of its pending stores (the PCSO model of §2.1). *)
  let rng = Util.Rng.create ~seed:2024 in
  Incll.System.crash sys rng;
  Printf.printf "crash!\n";

  (* 6. Recovery: replay the external log, restore allocator roots, arm
     lazy per-node InCLL recovery — and the store is exactly what the
     last checkpoint saw. *)
  let sys = Incll.System.recover sys in
  Printf.printf "recovered in %.3f simulated ms\n"
    (match Incll.System.last_recover_stats sys with
    | Some st -> st.Incll.System.recovery_sim_ns /. 1e6
    | None -> 0.0);

  assert (Incll.System.get sys ~key:"alice" = Some "researcher");
  assert (Incll.System.get sys ~key:"bob" = Some "engineer");
  assert (Incll.System.get sys ~key:"dave" = None);
  Printf.printf "state rolled back to the checkpoint:\n";
  List.iter
    (fun (k, v) -> Printf.printf "  %-8s -> %s\n" k v)
    (Incll.System.scan sys ~start:"" ~n:10);

  (* 7. Range scans work across the whole (trie-layered) key space. *)
  Incll.System.put sys ~key:"container/a-very-long-key-descends-layers"
    ~value:"yes";
  assert (
    Incll.System.get sys ~key:"container/a-very-long-key-descends-layers"
    = Some "yes");
  print_endline "quickstart OK"
