(* Unit and property tests for the utility layer. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Rng --------------------------------------------------------------- *)

let rng_deterministic () =
  let a = Util.Rng.create ~seed:7 and b = Util.Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Rng.next64 a) (Util.Rng.next64 b)
  done

let rng_seed_sensitivity () =
  let a = Util.Rng.create ~seed:7 and b = Util.Rng.create ~seed:8 in
  check "different seeds differ" true (Util.Rng.next64 a <> Util.Rng.next64 b)

let rng_int_bounds () =
  let r = Util.Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Util.Rng.int r 17 in
    check "in range" true (v >= 0 && v < 17)
  done

let rng_int_covers_range () =
  let r = Util.Rng.create ~seed:5 in
  let seen = Array.make 8 false in
  for _ = 1 to 2000 do
    seen.(Util.Rng.int r 8) <- true
  done;
  Array.iteri (fun i s -> check (Printf.sprintf "value %d seen" i) true s) seen

let rng_float_unit_interval () =
  let r = Util.Rng.create ~seed:11 in
  for _ = 1 to 10_000 do
    let f = Util.Rng.float r in
    check "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let rng_copy_independent () =
  let a = Util.Rng.create ~seed:9 in
  ignore (Util.Rng.next64 a);
  let b = Util.Rng.copy a in
  Alcotest.(check int64) "copy replays" (Util.Rng.next64 a) (Util.Rng.next64 b)

let rng_shuffle_permutes () =
  let r = Util.Rng.create ~seed:13 in
  let a = Array.init 50 (fun i -> i) in
  Util.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 (fun i -> i)) sorted

(* --- Zipf -------------------------------------------------------------- *)

let zipf_bounds () =
  let z = Util.Zipf.create ~n:1000 ~theta:0.99 in
  let r = Util.Rng.create ~seed:1 in
  for _ = 1 to 10_000 do
    let v = Util.Zipf.next z r in
    check "rank in range" true (v >= 0 && v < 1000)
  done

let zipf_skew () =
  (* Rank 0 of a zipfian(0.99) over 10k items should absorb a few percent
     of the mass; uniform would give 0.01%. *)
  let z = Util.Zipf.create ~n:10_000 ~theta:0.99 in
  let r = Util.Rng.create ~seed:2 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Util.Zipf.next z r = 0 then incr hits
  done;
  check "head is hot" true (!hits > n / 100);
  (* Tail mass still exists. *)
  let tail = ref 0 in
  let r = Util.Rng.create ~seed:3 in
  for _ = 1 to n do
    if Util.Zipf.next z r >= 5000 then incr tail
  done;
  check "tail reachable" true (!tail > 0)

let zipf_monotone_popularity () =
  let z = Util.Zipf.create ~n:100 ~theta:0.99 in
  let r = Util.Rng.create ~seed:4 in
  let counts = Array.make 100 0 in
  for _ = 1 to 200_000 do
    let v = Util.Zipf.next z r in
    counts.(v) <- counts.(v) + 1
  done;
  check "rank0 >= rank10" true (counts.(0) > counts.(10));
  check "rank1 >= rank50" true (counts.(1) > counts.(50))

(* --- Scramble ---------------------------------------------------------- *)

let scramble_invertible =
  QCheck.Test.make ~name:"fmix64 is invertible" ~count:1000
    QCheck.int64 (fun k -> Util.Scramble.unfmix64 (Util.Scramble.fmix64 k) = k)

let scramble_distinct () =
  let seen = Hashtbl.create 1024 in
  for i = 0 to 10_000 do
    let k = Util.Scramble.key_of_rank i in
    check "no collision" true (not (Hashtbl.mem seen k));
    Hashtbl.replace seen k ()
  done

(* --- Bits -------------------------------------------------------------- *)

let bits_roundtrip =
  QCheck.Test.make ~name:"bits set/get roundtrip" ~count:1000
    QCheck.(triple int64 (int_bound 55) (int_range 1 8))
    (fun (x, lo, width) ->
      let v = Int64.logand 0x5aL (Util.Bits.mask width) in
      Util.Bits.get (Util.Bits.set x ~lo ~width v) ~lo ~width = v)

let bits_set_preserves_others () =
  let x = 0x1234_5678_9abc_def0L in
  let y = Util.Bits.set x ~lo:16 ~width:8 0xffL in
  Alcotest.(check int64) "below untouched"
    (Util.Bits.get x ~lo:0 ~width:16)
    (Util.Bits.get y ~lo:0 ~width:16);
  Alcotest.(check int64) "above untouched"
    (Util.Bits.get x ~lo:24 ~width:40)
    (Util.Bits.get y ~lo:24 ~width:40)

let bits_popcount () =
  check_int "popcount 0" 0 (Util.Bits.popcount 0L);
  check_int "popcount -1" 64 (Util.Bits.popcount (-1L));
  check_int "popcount 0xf0" 4 (Util.Bits.popcount 0xf0L)

(* --- Ivec -------------------------------------------------------------- *)

let ivec_push_get () =
  let v = Util.Ivec.create () in
  for i = 0 to 999 do
    Util.Ivec.push v (i * 3)
  done;
  check_int "length" 1000 (Util.Ivec.length v);
  for i = 0 to 999 do
    check_int "get" (i * 3) (Util.Ivec.get v i)
  done

let ivec_swap_remove () =
  let v = Util.Ivec.create () in
  List.iter (Util.Ivec.push v) [ 10; 20; 30; 40 ];
  let moved = Util.Ivec.swap_remove v 1 in
  check_int "moved element" 40 moved;
  check_int "length" 3 (Util.Ivec.length v);
  Alcotest.(check (list int)) "contents" [ 10; 40; 30 ] (Util.Ivec.to_list v);
  check_int "remove last returns -1" (-1) (Util.Ivec.swap_remove v 2)

(* --- Table ------------------------------------------------------------- *)

let table_csv () =
  let t = Util.Table.create ~columns:[ "name"; "value" ] in
  Util.Table.add_row t [ "plain"; "1" ];
  Util.Table.add_row t [ "with,comma"; "quote\"inside" ];
  Alcotest.(check string) "csv"
    "name,value\nplain,1\n\"with,comma\",\"quote\"\"inside\"\n"
    (Util.Table.to_csv t)

let table_cells () =
  Alcotest.(check string) "int commas" "1,234,567" (Util.Table.cell_int 1234567);
  Alcotest.(check string) "negative" "-1,000" (Util.Table.cell_int (-1000));
  Alcotest.(check string) "pct" "+10.3%" (Util.Table.cell_pct 0.103);
  Alcotest.(check string) "float" "3.14" (Util.Table.cell_float 3.14159)

let tests =
  ( "util",
    [
      Alcotest.test_case "rng deterministic" `Quick rng_deterministic;
      Alcotest.test_case "rng seed sensitivity" `Quick rng_seed_sensitivity;
      Alcotest.test_case "rng int bounds" `Quick rng_int_bounds;
      Alcotest.test_case "rng int covers range" `Quick rng_int_covers_range;
      Alcotest.test_case "rng float unit interval" `Quick rng_float_unit_interval;
      Alcotest.test_case "rng copy independent" `Quick rng_copy_independent;
      Alcotest.test_case "rng shuffle permutes" `Quick rng_shuffle_permutes;
      Alcotest.test_case "zipf bounds" `Quick zipf_bounds;
      Alcotest.test_case "zipf skew" `Quick zipf_skew;
      Alcotest.test_case "zipf popularity order" `Quick zipf_monotone_popularity;
      QCheck_alcotest.to_alcotest scramble_invertible;
      Alcotest.test_case "scramble distinct" `Quick scramble_distinct;
      QCheck_alcotest.to_alcotest bits_roundtrip;
      Alcotest.test_case "bits set preserves others" `Quick bits_set_preserves_others;
      Alcotest.test_case "bits popcount" `Quick bits_popcount;
      Alcotest.test_case "ivec push/get" `Quick ivec_push_get;
      Alcotest.test_case "ivec swap_remove" `Quick ivec_swap_remove;
      Alcotest.test_case "table cells" `Quick table_cells;
      Alcotest.test_case "table csv" `Quick table_csv;
    ] )
