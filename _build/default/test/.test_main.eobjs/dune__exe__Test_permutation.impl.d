test/test_permutation.ml: Alcotest Array Gen List Masstree QCheck QCheck_alcotest Test
