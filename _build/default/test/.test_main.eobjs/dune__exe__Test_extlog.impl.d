test/test_extlog.ml: Alcotest Bytes Extlog Int64 List Nvm
