test/test_key.ml: Alcotest Gen Int64 Masstree QCheck QCheck_alcotest
