test/test_nvm.ml: Alcotest Array Bytes Char Gen Int64 List Nvm QCheck QCheck_alcotest Util
