test/test_crash_property.ml: Epoch Incll Int64 List Map Masstree Nvm Printf QCheck QCheck_alcotest Seq String Util
