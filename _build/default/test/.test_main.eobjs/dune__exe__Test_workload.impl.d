test/test_workload.ml: Alcotest Array Bench_harness Filename Hashtbl Incll List Option Stdlib String Util Workload
