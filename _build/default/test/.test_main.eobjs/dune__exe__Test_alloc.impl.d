test/test_alloc.ml: Alcotest Alloc Epoch List Nvm QCheck QCheck_alcotest Util
