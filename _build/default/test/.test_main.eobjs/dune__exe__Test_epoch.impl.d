test/test_epoch.ml: Alcotest Epoch List Nvm
