test/test_image.ml: Alcotest Bytes Filename Incll Int64 Masstree Nvm Printf Stdlib String Unix Util
