test/test_leaf.ml: Alcotest Alloc Epoch Int64 List Masstree Nvm QCheck QCheck_alcotest
