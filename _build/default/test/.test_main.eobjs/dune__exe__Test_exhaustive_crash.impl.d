test/test_exhaustive_crash.ml: Alcotest Hashtbl Incll Int64 List Map Masstree Nvm Printf String Util
