test/test_util.ml: Alcotest Array Hashtbl Int64 List Printf QCheck QCheck_alcotest Util
