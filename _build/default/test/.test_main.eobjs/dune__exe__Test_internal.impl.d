test/test_internal.ml: Alcotest Alloc Epoch Int64 List Masstree Nvm
