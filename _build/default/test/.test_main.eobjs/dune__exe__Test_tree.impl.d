test/test_tree.ml: Alcotest Alloc Char Gen Hashtbl Int64 List Map Masstree Nvm Printf QCheck QCheck_alcotest Seq String Test Util
