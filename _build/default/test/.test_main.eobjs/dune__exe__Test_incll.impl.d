test/test_incll.ml: Alcotest Epoch Incll Int64 List Masstree Nvm Util
