test/test_system.ml: Alcotest Char Domain Incll Int64 List Masstree Nvm Printf Store String Util
