test/test_listing3.ml: Alcotest Alloc Epoch Extlog Incll Int64 Lazy List Masstree Nvm Option Printf Util
