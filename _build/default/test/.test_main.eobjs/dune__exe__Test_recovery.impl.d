test/test_recovery.ml: Alcotest Alloc Epoch Incll Int64 List Masstree Nvm Printf QCheck QCheck_alcotest Util
