(* White-box tests for the durable leaf layout (Figure 1) and the packed
   InCLL words (Listing 2). *)

module L = Masstree.Leaf
module V = Masstree.Val_incll
module EW = Masstree.Epoch_word

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk () =
  let cfg =
    {
      Nvm.Config.default with
      Nvm.Config.size_bytes = 2 * 1024 * 1024;
      extlog_bytes = 64 * 1024;
    }
  in
  let r = Nvm.Region.create cfg in
  Nvm.Superblock.format r;
  let em = Epoch.Manager.create r in
  let a = Alloc.Api.of_durable (Alloc.Durable.create em) in
  (r, a)

(* --- the layout invariants the paper's argument rests on ---------------- *)

let incllp_fields_share_a_line () =
  check "epoch word with permutation" true
    (Nvm.Region.same_line L.off_epoch_word L.off_perm);
  check "permutationInCLL with permutation" true
    (Nvm.Region.same_line L.off_perm_incll L.off_perm)

let value_inclls_cover_their_lines () =
  for s = 0 to 6 do
    check "InCLL1 with vals[0..6]" true
      (Nvm.Region.same_line (L.val_off s) L.incll1_off)
  done;
  for s = 7 to 13 do
    check "InCLL2 with vals[7..13]" true
      (Nvm.Region.same_line (L.val_off s) L.incll2_off)
  done;
  check "the two value lines differ" false
    (Nvm.Region.same_line L.incll1_off L.incll2_off)

let node_is_six_lines () =
  check_int "384 bytes" 384 L.node_bytes;
  check_int "width 14 (one less than stock)" 14 L.width;
  (* Offsets stay inside the node. *)
  for s = 0 to L.width - 1 do
    check "key inside" true (L.key_off s + 8 <= L.node_bytes);
    check "keylen inside" true (L.keylen_off s < L.node_bytes);
    check "val inside" true (L.val_off s + 8 <= L.node_bytes)
  done

let create_initialises () =
  let r, a = mk () in
  let leaf = L.create a r ~layer:3 ~epoch:7 in
  check "64-aligned" true (leaf land 63 = 0);
  check "is leaf" true (L.is_leaf_node r leaf);
  check_int "layer" 3 (L.layer r leaf);
  check_int "empty" 0 (L.entry_count r leaf);
  let ew = L.epoch_word r leaf in
  check_int "epoch" 7 ew.EW.epoch;
  check "insAllowed" true ew.EW.ins_allowed;
  check "not logged" false ew.EW.logged;
  check "incll1 invalid" true (V.is_invalid (L.incll_by_index r leaf ~which:0));
  check "incll2 invalid" true (V.is_invalid (L.incll_by_index r leaf ~which:1));
  check_int "next null" 0 (L.next r leaf)

let field_accessors_roundtrip () =
  let r, a = mk () in
  let leaf = L.create a r ~layer:0 ~epoch:2 in
  L.set_key r leaf ~slot:5 0xDEADBEEFL;
  Alcotest.(check int64) "key" 0xDEADBEEFL (L.key r leaf ~slot:5);
  L.set_keylen r leaf ~slot:5 8;
  check_int "keylen" 8 (L.keylen r leaf ~slot:5);
  L.set_value r leaf ~slot:5 4096;
  check_int "value" 4096 (L.value r leaf ~slot:5);
  L.set_value r leaf ~slot:13 8192;
  check_int "value hi line" 8192 (L.value r leaf ~slot:13);
  L.set_next r leaf (12345 * 16);
  check_int "next" (12345 * 16) (L.next r leaf)

(* --- ValInCLL packing (§4.1.3) ------------------------------------------ *)

let val_incll_roundtrip =
  QCheck.Test.make ~name:"ValInCLL pack/unpack" ~count:1000
    QCheck.(triple (int_bound 1_000_000) (int_bound 14) (int_bound 0xffff))
    (fun (p16, idx, low) ->
      let ptr = p16 * 16 in
      let d = V.unpack (V.pack ~ptr ~idx ~low_epoch:low) in
      d.V.ptr = ptr && d.V.idx = idx && d.V.low_epoch = low)

let val_incll_invalid () =
  let w = V.invalid ~low_epoch:0x1234 in
  check "invalid" true (V.is_invalid w);
  check_int "keeps epoch" 0x1234 (V.unpack w).V.low_epoch;
  check "unaligned ptr rejected" true
    (try
       ignore (V.pack ~ptr:7 ~idx:0 ~low_epoch:0);
       false
     with Invalid_argument _ -> true)

let epoch_word_roundtrip =
  QCheck.Test.make ~name:"epoch word pack/unpack" ~count:1000
    QCheck.(triple (int_bound 0x3FFFFFFF) bool bool)
    (fun (epoch, ins, logged) ->
      let d = EW.unpack (EW.pack ~epoch ~ins_allowed:ins ~logged) in
      d.EW.epoch = epoch && d.EW.ins_allowed = ins && d.EW.logged = logged)

(* --- search -------------------------------------------------------------- *)

let find_in_sorted_leaf () =
  let r, a = mk () in
  let leaf = L.create a r ~layer:0 ~epoch:2 in
  (* Install entries for slices 10,20,30 by hand. *)
  let p = ref Masstree.Permutation.empty in
  List.iteri
    (fun i v ->
      let p', slot = Masstree.Permutation.insert !p ~rank:i in
      p := p';
      L.set_key r leaf ~slot (Int64.of_int v);
      L.set_keylen r leaf ~slot 8;
      L.set_value r leaf ~slot (v * 16))
    [ 10; 20; 30 ];
  L.set_perm r leaf !p;
  (match L.find r leaf ~slice:20L ~keylen:8 with
  | L.Found rank -> check_int "found at rank 1" 1 rank
  | L.Insert_before _ -> Alcotest.fail "should find 20");
  (match L.find r leaf ~slice:25L ~keylen:8 with
  | L.Insert_before rank -> check_int "between 20 and 30" 2 rank
  | L.Found _ -> Alcotest.fail "25 absent");
  (match L.find r leaf ~slice:5L ~keylen:8 with
  | L.Insert_before rank -> check_int "before all" 0 rank
  | L.Found _ -> Alcotest.fail "5 absent");
  (match L.find r leaf ~slice:40L ~keylen:8 with
  | L.Insert_before rank -> check_int "after all" 3 rank
  | L.Found _ -> Alcotest.fail "40 absent");
  (* Same slice, different keylen is a distinct entry. *)
  match L.find r leaf ~slice:20L ~keylen:4 with
  | L.Insert_before rank -> check_int "shorter sorts before" 1 rank
  | L.Found _ -> Alcotest.fail "(20,4) absent"

let tests =
  ( "leaf",
    [
      Alcotest.test_case "InCLLp fields share a line" `Quick incllp_fields_share_a_line;
      Alcotest.test_case "value InCLLs cover their lines" `Quick value_inclls_cover_their_lines;
      Alcotest.test_case "node is six lines" `Quick node_is_six_lines;
      Alcotest.test_case "create initialises" `Quick create_initialises;
      Alcotest.test_case "field accessors" `Quick field_accessors_roundtrip;
      QCheck_alcotest.to_alcotest val_incll_roundtrip;
      Alcotest.test_case "ValInCLL invalid" `Quick val_incll_invalid;
      QCheck_alcotest.to_alcotest epoch_word_roundtrip;
      Alcotest.test_case "find in sorted leaf" `Quick find_in_sorted_leaf;
    ] )
