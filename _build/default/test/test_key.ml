(* Tests for key slicing and ordering (the trie layering of §2.2). *)

module K = Masstree.Key

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let slice_basic () =
  let s = K.slice_at "AB" ~layer:0 in
  check_int "len" 2 s.K.len;
  Alcotest.(check int64) "big endian, left aligned" 0x4142_0000_0000_0000L s.K.bits

let slice_full_and_suffix () =
  let k = "abcdefghij" in
  let s0 = K.slice_at k ~layer:0 in
  check_int "first slice full" 8 s0.K.len;
  check "has suffix" true (K.has_suffix k ~layer:0);
  Alcotest.(check string) "suffix" "ij" (K.suffix k ~layer:0);
  let s1 = K.slice_at k ~layer:1 in
  check_int "second slice" 2 s1.K.len;
  check "no more" false (K.has_suffix k ~layer:1)

let empty_key () =
  let s = K.slice_at "" ~layer:0 in
  check_int "len 0" 0 s.K.len;
  Alcotest.(check int64) "zero bits" 0L s.K.bits;
  check "no suffix" false (K.has_suffix "" ~layer:0)

let unsigned_comparison () =
  (* Bytes >= 0x80 must sort above ASCII: requires unsigned compare. *)
  let hi = (K.slice_at "\xff" ~layer:0).K.bits in
  let lo = (K.slice_at "a" ~layer:0).K.bits in
  check "0xff > 'a'" true (K.compare_slices hi lo > 0)

let entry_ordering () =
  let s = (K.slice_at "ab" ~layer:0).K.bits in
  (* Shorter key sorts first; the layer-link marker sorts after the full
     8-byte terminal. *)
  check "len splits ties" true (K.compare_entry s 2 s 3 < 0);
  check "link after terminal" true (K.compare_entry s K.layer_link_len s 8 > 0)

let slice_order_is_lexicographic =
  QCheck.Test.make ~name:"slice order = byte order" ~count:1000
    QCheck.(pair (string_of_size Gen.(int_bound 8)) (string_of_size Gen.(int_bound 8)))
    (fun (a, b) ->
      let sa = K.slice_at a ~layer:0 and sb = K.slice_at b ~layer:0 in
      let c = K.compare_entry sa.K.bits sa.K.len sb.K.bits sb.K.len in
      let expected = compare a b in
      (c < 0 && expected < 0) || (c > 0 && expected > 0)
      || (c = 0 && expected = 0))

let bytes_roundtrip =
  QCheck.Test.make ~name:"slice bytes roundtrip" ~count:1000
    QCheck.(string_of_size Gen.(int_bound 8))
    (fun s ->
      let sl = K.slice_at s ~layer:0 in
      K.bytes_of_slice sl.K.bits ~len:sl.K.len = s)

let int64_roundtrip =
  QCheck.Test.make ~name:"of_int64/to_int64 roundtrip" ~count:1000 QCheck.int64
    (fun v -> K.to_int64 (K.of_int64 v) = v)

let int64_order_preserved =
  QCheck.Test.make ~name:"of_int64 preserves unsigned order" ~count:1000
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      let ka = K.of_int64 a and kb = K.of_int64 b in
      compare ka kb = Int64.unsigned_compare a b)

let tests =
  ( "key",
    [
      Alcotest.test_case "slice basic" `Quick slice_basic;
      Alcotest.test_case "slice full + suffix" `Quick slice_full_and_suffix;
      Alcotest.test_case "empty key" `Quick empty_key;
      Alcotest.test_case "unsigned comparison" `Quick unsigned_comparison;
      Alcotest.test_case "entry ordering" `Quick entry_ordering;
      QCheck_alcotest.to_alcotest slice_order_is_lexicographic;
      QCheck_alcotest.to_alcotest bytes_roundtrip;
      QCheck_alcotest.to_alcotest int64_roundtrip;
      QCheck_alcotest.to_alcotest int64_order_preserved;
    ] )
