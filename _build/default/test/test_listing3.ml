(* Table-driven verification of Listing 3's decision procedure: for every
   reachable (epoch relation × logged × insAllowed × InCLL occupancy × op)
   combination, the hook must pick exactly the action the paper specifies —
   nothing (covered), in-line logging (free), or the external log. States
   are installed by writing the leaf's words directly (white-box), then a
   single hook call is observed through the event counters. *)

module L = Masstree.Leaf
module V = Masstree.Val_incll
module EW = Masstree.Epoch_word
module Sys_ = Incll.System

let check_int = Alcotest.(check int)

type epoch_rel = Same | Prev | Prev_window  (* same epoch / e-1 / e-2^16 *)
type action = Nothing | Incll_write | Ext_log

let action_name = function
  | Nothing -> "nothing"
  | Incll_write -> "incll"
  | Ext_log -> "extlog"

let cfg =
  {
    Sys_.default_config with
    Sys_.nvm =
      {
        Nvm.Config.default with
        Nvm.Config.size_bytes = 8 * 1024 * 1024;
        extlog_bytes = 1024 * 1024;
      };
    epoch_len_ns = 1.0e15;
  }

(* Build a system whose current epoch is large enough that e - 2^16 is
   still a valid epoch number. *)
let mk_system () =
  let s = Sys_.create ~config:cfg Sys_.Incll in
  for i = 0 to 199 do
    Sys_.put s ~key:(Masstree.Key.of_int64 (Util.Scramble.key_of_rank i))
      ~value:"12345678"
  done;
  (match Sys_.epoch_manager s with
  | Some em ->
      let target = Epoch.Manager.current em + 65_600 in
      while Epoch.Manager.current em < target do
        Epoch.Manager.advance em
      done
  | None -> assert false);
  s

(* One prepared system is reused across cases (building one costs 65k
   checkpoints); each case picks a fresh leaf so states don't interact. *)
let shared = lazy (mk_system ())

let fresh_leaf s =
  let region = Sys_.region s in
  let em = Option.get (Sys_.epoch_manager s) in
  (* A private leaf, not linked into the tree: the hooks only look at the
     node itself. *)
  let dalloc = Option.get (Sys_.durable_alloc s) in
  let leaf =
    L.create (Alloc.Api.of_durable dalloc) region ~layer:0
      ~epoch:(Epoch.Manager.current em)
  in
  (* Give slots 2 and 9 (one per value line) plausible entries. *)
  let p = ref Masstree.Permutation.empty in
  for _ = 1 to 10 do
    p := fst (Masstree.Permutation.insert !p ~rank:0)
  done;
  L.set_perm region leaf !p;
  for slot = 0 to 9 do
    L.set_key region leaf ~slot (Int64.of_int (100 + slot));
    L.set_keylen region leaf ~slot 8;
    L.set_value region leaf ~slot (Alloc.Durable.alloc dalloc ~size:32)
  done;
  leaf

let install_state s leaf ~rel ~logged ~ins_allowed ~incll1_idx =
  let region = Sys_.region s in
  let em = Option.get (Sys_.epoch_manager s) in
  let g = Epoch.Manager.current em in
  let e =
    match rel with Same -> g | Prev -> g - 1 | Prev_window -> g - 65_536
  in
  L.set_epoch_word region leaf { EW.epoch = e; ins_allowed; logged };
  L.set_perm_incll region leaf (L.perm region leaf);
  let w =
    match incll1_idx with
    | None -> V.invalid ~low_epoch:(Epoch.Manager.lower16 e)
    | Some idx ->
        V.pack ~ptr:(L.value region leaf ~slot:idx) ~idx
          ~low_epoch:(Epoch.Manager.lower16 e)
  in
  L.set_incll_by_index region leaf ~which:0 w;
  L.set_incll_by_index region leaf ~which:1
    (V.invalid ~low_epoch:(Epoch.Manager.lower16 e))

(* Observe which action one hook call takes. *)
let observe s (f : Masstree.Hooks.t -> unit) =
  let ctx = Option.get (Sys_.ctx s) in
  let hooks = Incll.Incll_hooks.make ctx in
  let logged0 = Extlog.Log.nodes_logged ctx.Incll.Ctx.log in
  let ft0 = ctx.Incll.Ctx.counters.Incll.Ctx.first_touches in
  let vu0 = ctx.Incll.Ctx.counters.Incll.Ctx.val_incll_uses in
  f hooks;
  let logged1 = Extlog.Log.nodes_logged ctx.Incll.Ctx.log in
  let ft1 = ctx.Incll.Ctx.counters.Incll.Ctx.first_touches in
  let vu1 = ctx.Incll.Ctx.counters.Incll.Ctx.val_incll_uses in
  if logged1 > logged0 then Ext_log
  else if ft1 > ft0 || vu1 > vu0 then Incll_write
  else Nothing

type op = Insert | Remove | Update_slot2 | Update_slot2_again

let run_case ~rel ~logged ~ins_allowed ~incll1_idx ~op ~expect () =
  let s = Lazy.force shared in
  let leaf = fresh_leaf s in
  install_state s leaf ~rel ~logged ~ins_allowed ~incll1_idx;
  let got =
    observe s (fun h ->
        match op with
        | Insert -> h.Masstree.Hooks.pre_leaf_insert ~leaf
        | Remove -> h.Masstree.Hooks.pre_leaf_remove ~leaf
        | Update_slot2 | Update_slot2_again ->
            h.Masstree.Hooks.pre_leaf_update ~leaf ~slot:2)
  in
  Alcotest.(check string)
    (Printf.sprintf "rel=%s logged=%b ins=%b incll1=%s op=%s"
       (match rel with Same -> "same" | Prev -> "prev" | Prev_window -> "window")
       logged ins_allowed
       (match incll1_idx with None -> "-" | Some i -> string_of_int i)
       (match op with
       | Insert -> "insert"
       | Remove -> "remove"
       | Update_slot2 -> "update"
       | Update_slot2_again -> "update-hit"))
    (action_name expect) (action_name got)

(* The decision table. Listing 3 plus §4.1.1/§4.1.3's prose. *)
let cases =
  [
    (* New epoch: first touch always goes to the in-line logs... *)
    (Prev, false, true, None, Insert, Incll_write);
    (Prev, false, false, None, Insert, Incll_write);
    (* (insAllowed is stale from the previous epoch and is reset) *)
    (Prev, true, true, None, Insert, Incll_write);
    (Prev, false, true, None, Remove, Incll_write);
    (Prev, false, true, None, Update_slot2, Incll_write);
    (Prev, true, false, None, Update_slot2, Incll_write);
    (* ...unless 16 bits cannot encode the epoch distance (§4.1.3). *)
    (Prev_window, false, true, None, Insert, Ext_log);
    (Prev_window, false, true, None, Update_slot2, Ext_log);
    (* Same epoch, already covered by InCLLp: inserts and removes free. *)
    (Same, false, true, None, Insert, Nothing);
    (Same, false, true, None, Remove, Nothing);
    (Same, false, false, None, Remove, Nothing);
    (* Same epoch, a delete happened: inserts must externally log. *)
    (Same, false, false, None, Insert, Ext_log);
    (* ...but not if the node is already logged. *)
    (Same, true, false, None, Insert, Nothing);
    (Same, true, false, None, Remove, Nothing);
    (Same, true, false, None, Update_slot2, Nothing);
    (* Same epoch updates: a free InCLL in the slot's line is claimed. *)
    (Same, false, true, None, Update_slot2, Incll_write);
    (* The slot already logged this epoch: free (§4.1.3, skew case). *)
    (Same, false, true, Some 2, Update_slot2_again, Nothing);
    (* The line's InCLL is busy with another slot: external log. *)
    (Same, false, true, Some 5, Update_slot2, Ext_log);
  ]

let tests =
  ( "listing3",
    List.map
      (fun (rel, logged, ins_allowed, incll1_idx, op, expect) ->
        Alcotest.test_case
          (Printf.sprintf "%s/%s%s%s -> %s"
             (match rel with
             | Same -> "same-epoch"
             | Prev -> "new-epoch"
             | Prev_window -> "epoch-window")
             (match op with
             | Insert -> "insert"
             | Remove -> "remove"
             | Update_slot2 -> "update"
             | Update_slot2_again -> "update-hit")
             (if logged then "+logged" else "")
             (if ins_allowed then "" else "+del")
             (action_name expect))
          `Quick
          (run_case ~rel ~logged ~ins_allowed ~incll1_idx ~op ~expect))
      cases )
