(* The paper's §5.2 correctness methodology as a property test:
   "intentionally crashing it at random points, launching a new process,
   and checking that system's state matched the state at the beginning of
   the failed epoch." Differential against a Map model, for both durable
   variants. *)

module SM = Map.Make (String)
module Sys_ = Incll.System

let key_of i = Masstree.Key.of_int64 (Util.Scramble.fmix64 (Int64.of_int i))

let cfg =
  {
    Sys_.default_config with
    Sys_.nvm =
      {
        Nvm.Config.default with
        Nvm.Config.size_bytes = 16 * 1024 * 1024;
        extlog_bytes = 1024 * 1024;
      };
    (* Short epochs: many checkpoints inside each run. *)
    epoch_len_ns = 1.0e6;
  }

let epoch_of sys =
  match Sys_.epoch_manager sys with
  | Some em -> Epoch.Manager.current em
  | None -> 0

(* Run [nops] random operations with crashes at random points; verify after
   every crash that the store equals the model at the last checkpoint. *)
let run_one ~variant ~seed ~nops ~nkeys =
  let rng = Util.Rng.create ~seed in
  let sys = ref (Sys_.create ~config:cfg variant) in
  let model = ref SM.empty in
  let checkpoint = ref SM.empty in
  let last_epoch = ref (epoch_of !sys) in
  let sync_epoch () =
    let e = epoch_of !sys in
    if e <> !last_epoch then begin
      checkpoint := !model;
      last_epoch := e
    end
  in
  let ok = ref true in
  for step = 1 to nops do
    sync_epoch ();
    let k = key_of (Util.Rng.int rng nkeys) in
    (match Util.Rng.int rng 100 with
    | r when r < 45 ->
        let v = Printf.sprintf "v%d" step in
        Sys_.put !sys ~key:k ~value:v;
        model := SM.add k v !model
    | r when r < 65 ->
        let removed = Sys_.remove !sys ~key:k in
        if removed <> SM.mem k !model then ok := false;
        model := SM.remove k !model
    | r when r < 85 ->
        if Sys_.get !sys ~key:k <> SM.find_opt k !model then ok := false
    | _ ->
        let n = 1 + Util.Rng.int rng 8 in
        let got = Sys_.scan !sys ~start:k ~n in
        let expect =
          SM.to_seq !model
          |> Seq.filter (fun (k', _) -> k' >= k)
          |> Seq.take n |> List.of_seq
        in
        if got <> expect then ok := false);
    (* The op itself may have crossed a checkpoint. *)
    sync_epoch ();
    if Util.Rng.int rng 400 = 0 then begin
      Sys_.crash !sys rng;
      sys := Sys_.recover !sys;
      model := !checkpoint;
      last_epoch := epoch_of !sys;
      Masstree.Tree.validate (Sys_.tree !sys);
      SM.iter
        (fun k v -> if Sys_.get !sys ~key:k <> Some v then ok := false)
        !model;
      if Masstree.Tree.cardinal (Sys_.tree !sys) <> SM.cardinal !model then
        ok := false;
      checkpoint := !model
    end
  done;
  !ok

let property variant =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "crash at random points = checkpoint state (%s)"
         (Sys_.variant_name variant))
    ~count:6
    QCheck.(int_bound 1_000_000)
    (fun seed -> run_one ~variant ~seed ~nops:6_000 ~nkeys:250)

let long_key_crash_property =
  (* Same property over layered (long, shared-prefix) keys. *)
  QCheck.Test.make ~name:"crash recovery with trie layers" ~count:4
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Util.Rng.create ~seed in
      let sys = ref (Sys_.create ~config:cfg Sys_.Incll) in
      let model = ref SM.empty in
      let checkpoint = ref SM.empty in
      let last_epoch = ref (epoch_of !sys) in
      let key_of i =
        (* Heavy 8-byte-prefix sharing -> multi-layer tries. *)
        Printf.sprintf "prefix%02d/suffix-%04d" (i mod 4) (i / 4)
      in
      let sync_epoch () =
        let e = epoch_of !sys in
        if e <> !last_epoch then begin
          checkpoint := !model;
          last_epoch := e
        end
      in
      let ok = ref true in
      for step = 1 to 4000 do
        sync_epoch ();
        let k = key_of (Util.Rng.int rng 300) in
        (match Util.Rng.int rng 10 with
        | r when r < 5 ->
            let v = Printf.sprintf "v%d" step in
            Sys_.put !sys ~key:k ~value:v;
            model := SM.add k v !model
        | r when r < 7 ->
            ignore (Sys_.remove !sys ~key:k);
            model := SM.remove k !model
        | _ ->
            if Sys_.get !sys ~key:k <> SM.find_opt k !model then ok := false);
        sync_epoch ();
        if Util.Rng.int rng 500 = 0 then begin
          Sys_.crash !sys rng;
          sys := Sys_.recover !sys;
          model := !checkpoint;
          last_epoch := epoch_of !sys;
          SM.iter
            (fun k v -> if Sys_.get !sys ~key:k <> Some v then ok := false)
            !model;
          Masstree.Tree.validate (Sys_.tree !sys);
          checkpoint := !model
        end
      done;
      !ok)

let tests =
  ( "crash-property",
    [
      QCheck_alcotest.to_alcotest (property Sys_.Incll);
      QCheck_alcotest.to_alcotest (property Sys_.Logging);
      QCheck_alcotest.to_alcotest long_key_crash_property;
    ] )
