(* Tests for internal (interior) B+-tree nodes. *)

module I = Masstree.Internal

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk () =
  let cfg =
    {
      Nvm.Config.default with
      Nvm.Config.size_bytes = 2 * 1024 * 1024;
      extlog_bytes = 64 * 1024;
    }
  in
  let r = Nvm.Region.create cfg in
  Nvm.Superblock.format r;
  let em = Epoch.Manager.create r in
  (r, Alloc.Api.of_durable (Alloc.Durable.create em))

let create_basics () =
  let r, a = mk () in
  let n = I.create a r ~layer:2 in
  check "64-aligned" true (n land 63 = 0);
  check "not a leaf" false (Masstree.Leaf.is_leaf_node r n);
  check_int "layer" 2 (I.layer r n);
  check_int "no keys" 0 (I.nkeys r n);
  check "not full" false (I.is_full r n)

let build r n keys children =
  List.iteri (fun i k -> I.set_key r n ~i (Int64.of_int k)) keys;
  List.iteri (fun i c -> I.set_child r n ~i c) children;
  I.set_nkeys r n (List.length keys)

let search_child_routing () =
  let r, a = mk () in
  let n = I.create a r ~layer:0 in
  build r n [ 10; 20; 30 ] [ 100; 101; 102; 103 ];
  check_int "below first" 0 (I.search_child r n ~slice:5L);
  (* Separator semantics: keys >= sep go right. *)
  check_int "equal first" 1 (I.search_child r n ~slice:10L);
  check_int "between" 1 (I.search_child r n ~slice:15L);
  check_int "equal middle" 2 (I.search_child r n ~slice:20L);
  check_int "above last" 3 (I.search_child r n ~slice:35L)

let insert_separator_shifts () =
  let r, a = mk () in
  let n = I.create a r ~layer:0 in
  build r n [ 10; 30 ] [ 100; 101; 102 ];
  I.insert_separator r n ~at:1 ~sep:20L ~right:999;
  check_int "three keys" 3 (I.nkeys r n);
  Alcotest.(check (list int64)) "keys"
    [ 10L; 20L; 30L ]
    (List.init 3 (fun i -> I.key r n ~i));
  Alcotest.(check (list int)) "children"
    [ 100; 101; 999; 102 ]
    (List.init 4 (fun i -> I.child r n ~i))

let insert_separator_at_ends () =
  let r, a = mk () in
  let n = I.create a r ~layer:0 in
  build r n [ 20 ] [ 100; 101 ];
  I.insert_separator r n ~at:0 ~sep:10L ~right:200;
  I.insert_separator r n ~at:2 ~sep:30L ~right:300;
  Alcotest.(check (list int64)) "keys"
    [ 10L; 20L; 30L ]
    (List.init 3 (fun i -> I.key r n ~i));
  Alcotest.(check (list int)) "children"
    [ 100; 200; 101; 300 ]
    (List.init 4 (fun i -> I.child r n ~i))

let full_rejects_insert () =
  let r, a = mk () in
  let n = I.create a r ~layer:0 in
  build r n
    (List.init I.width (fun i -> (i + 1) * 10))
    (List.init (I.width + 1) (fun i -> 1000 + i));
  check "full" true (I.is_full r n);
  check "raises" true
    (try
       I.insert_separator r n ~at:0 ~sep:5L ~right:1;
       false
     with Invalid_argument _ -> true)

let logged_epoch_roundtrip () =
  let r, a = mk () in
  let n = I.create a r ~layer:0 in
  check_int "initial" 0 (I.logged_epoch r n);
  I.set_logged_epoch r n 42;
  check_int "set" 42 (I.logged_epoch r n)

let tests =
  ( "internal",
    [
      Alcotest.test_case "create basics" `Quick create_basics;
      Alcotest.test_case "search_child routing" `Quick search_child_routing;
      Alcotest.test_case "insert separator shifts" `Quick insert_separator_shifts;
      Alcotest.test_case "insert at ends" `Quick insert_separator_at_ends;
      Alcotest.test_case "full rejects insert" `Quick full_rejects_insert;
      Alcotest.test_case "logged epoch" `Quick logged_epoch_roundtrip;
    ] )
