(* Tests for the Masstree ordered map: point ops, splits, trie layers,
   scans, and a model-based qcheck property. These run with transient
   hooks — durability is covered by test_incll / test_recovery. *)

module T = Masstree.Tree
module SM = Map.Make (String)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk ?(size = 8 * 1024 * 1024) () =
  let cfg =
    {
      Nvm.Config.default with
      Nvm.Config.size_bytes = size;
      extlog_bytes = 64 * 1024;
      crash_support = Nvm.Config.Counting;
    }
  in
  let r = Nvm.Region.create cfg in
  Nvm.Superblock.format r;
  let a = Alloc.Api.of_transient (Alloc.Transient.create Alloc.Transient.Pool r) in
  T.create r a Masstree.Hooks.transient ~current_epoch:(fun () -> 2)

let key8 i = Masstree.Key.of_int64 (Util.Scramble.fmix64 (Int64.of_int i))

let empty_tree () =
  let t = mk () in
  check "absent" true (T.get t ~key:"nope" = None);
  check_int "cardinal 0" 0 (T.cardinal t);
  check "remove misses" false (T.remove t ~key:"nope");
  Alcotest.(check (list (pair string string))) "scan empty" [] (T.scan t ~start:"" ~n:10);
  T.validate t

let put_get_single () =
  let t = mk () in
  T.put t ~key:"hello" ~value:"world";
  check "present" true (T.get t ~key:"hello" = Some "world");
  check "mem" true (T.mem t ~key:"hello");
  check_int "cardinal" 1 (T.cardinal t)

let put_overwrites () =
  let t = mk () in
  T.put t ~key:"k" ~value:"v1";
  T.put t ~key:"k" ~value:"v2";
  check "updated" true (T.get t ~key:"k" = Some "v2");
  check_int "still one" 1 (T.cardinal t);
  check_int "one update" 1 (T.stats t).T.updates

let remove_works () =
  let t = mk () in
  T.put t ~key:"a" ~value:"1";
  T.put t ~key:"b" ~value:"2";
  check "removed" true (T.remove t ~key:"a");
  check "gone" true (T.get t ~key:"a" = None);
  check "other kept" true (T.get t ~key:"b" = Some "2");
  check "second remove misses" false (T.remove t ~key:"a")

let splits_preserve_contents () =
  let t = mk () in
  let n = 5_000 in
  for i = 0 to n - 1 do
    T.put t ~key:(key8 i) ~value:(string_of_int i)
  done;
  T.validate t;
  check "splits happened" true ((T.stats t).T.leaf_splits > 100);
  check "tree has internals" true ((T.stats t).T.root_splits >= 1);
  for i = 0 to n - 1 do
    check "all present" true (T.get t ~key:(key8 i) = Some (string_of_int i))
  done;
  check_int "cardinal" n (T.cardinal t)

let sequential_inserts () =
  (* Ascending keys stress the rightmost-split path. *)
  let t = mk () in
  for i = 0 to 2_000 do
    T.put t ~key:(Masstree.Key.of_int64 (Int64.of_int i)) ~value:"x"
  done;
  T.validate t;
  check_int "cardinal" 2_001 (T.cardinal t)

let descending_inserts () =
  let t = mk () in
  for i = 2_000 downto 0 do
    T.put t ~key:(Masstree.Key.of_int64 (Int64.of_int i)) ~value:"x"
  done;
  T.validate t;
  check_int "cardinal" 2_001 (T.cardinal t)

let long_keys_build_layers () =
  let t = mk () in
  let keys =
    [
      "";
      "a";
      "abcdefgh";
      "abcdefghi";
      "abcdefgh-0123456";
      "abcdefgh-01234567";
      "abcdefgh-01234567X";
      "abcdefgh-01234567XYZABCDEFGHIJKLMNOP";
      "zzzzzzzzz";
    ]
  in
  List.iter (fun k -> T.put t ~key:k ~value:("v:" ^ k)) keys;
  check "layers created" true ((T.stats t).T.layer_creations >= 2);
  List.iter
    (fun k -> check ("get " ^ String.escaped k) true (T.get t ~key:k = Some ("v:" ^ k)))
    keys;
  T.validate t;
  (* Lexicographic global order across layers. *)
  Alcotest.(check (list string)) "scan order" (List.sort compare keys)
    (List.map fst (T.scan t ~start:"" ~n:100))

let shared_prefix_dense () =
  (* Many keys sharing an 8-byte prefix: one layer absorbs them all. *)
  let t = mk () in
  let keys = List.init 500 (fun i -> Printf.sprintf "prefix!!%06d" i) in
  List.iter (fun k -> T.put t ~key:k ~value:k) keys;
  T.validate t;
  check_int "all present" 500 (T.cardinal t);
  List.iter (fun k -> check "get" true (T.get t ~key:k = Some k)) keys;
  (* And the scan returns them in order. *)
  Alcotest.(check (list string)) "ordered" keys
    (List.map fst (T.scan t ~start:"prefix" ~n:1000))

let exact8_and_longer_coexist () =
  let t = mk () in
  T.put t ~key:"ABCDEFGH" ~value:"eight";
  T.put t ~key:"ABCDEFGHIJ" ~value:"ten";
  check "eight" true (T.get t ~key:"ABCDEFGH" = Some "eight");
  check "ten" true (T.get t ~key:"ABCDEFGHIJ" = Some "ten");
  check "removed eight only" true (T.remove t ~key:"ABCDEFGH");
  check "ten survives" true (T.get t ~key:"ABCDEFGHIJ" = Some "ten");
  T.validate t

let scan_from_middle () =
  let t = mk () in
  for i = 0 to 99 do
    T.put t ~key:(Printf.sprintf "k%03d" i) ~value:(string_of_int i)
  done;
  let got = T.scan t ~start:"k050" ~n:5 in
  Alcotest.(check (list string)) "five from k050"
    [ "k050"; "k051"; "k052"; "k053"; "k054" ]
    (List.map fst got);
  (* Start between keys. *)
  let got = T.scan t ~start:"k0505" ~n:2 in
  Alcotest.(check (list string)) "rounds up" [ "k051"; "k052" ] (List.map fst got);
  (* Scan past the end. *)
  check_int "truncated at end" 1 (List.length (T.scan t ~start:"k099" ~n:10))

let fold_stops_early () =
  let t = mk () in
  for i = 0 to 99 do
    T.put t ~key:(Printf.sprintf "k%03d" i) ~value:""
  done;
  let seen = ref 0 in
  T.fold_from t ~start:"" ~f:(fun _ _ ->
      incr seen;
      !seen < 7);
  check_int "stopped at 7" 7 !seen

let values_of_many_sizes () =
  let t = mk () in
  let sizes = [ 0; 1; 7; 8; 9; 31; 32; 33; 100; 1000; 4000; T.max_value_bytes ] in
  List.iteri
    (fun i sz ->
      let v = String.make sz (Char.chr (65 + (i mod 26))) in
      T.put t ~key:(Printf.sprintf "size%d" sz) ~value:v)
    sizes;
  List.iteri
    (fun i sz ->
      let v = String.make sz (Char.chr (65 + (i mod 26))) in
      check "value intact" true (T.get t ~key:(Printf.sprintf "size%d" sz) = Some v))
    sizes;
  check "oversized rejected" true
    (try
       T.put t ~key:"big" ~value:(String.make (T.max_value_bytes + 1) 'x');
       false
     with Invalid_argument _ -> true)

let iter_visits_all () =
  let t = mk () in
  let n = 300 in
  for i = 0 to n - 1 do
    T.put t ~key:(key8 i) ~value:(string_of_int i)
  done;
  let seen = ref SM.empty in
  T.iter t (fun k v -> seen := SM.add k v !seen);
  check_int "count" n (SM.cardinal !seen);
  for i = 0 to n - 1 do
    check "content" true (SM.find_opt (key8 i) !seen = Some (string_of_int i))
  done

let model_property =
  let open QCheck in
  let key_gen = Gen.(map (fun i -> Printf.sprintf "%04d" i) (int_bound 300)) in
  let op_gen =
    Gen.(
      frequency
        [
          (5, map (fun k -> `Put k) key_gen);
          (2, map (fun k -> `Remove k) key_gen);
          (2, map (fun k -> `Get k) key_gen);
          (1, map2 (fun k n -> `Scan (k, n)) key_gen (int_range 1 10));
        ])
  in
  Test.make ~name:"tree matches Map model" ~count:60
    (make Gen.(list_size (int_range 50 600) op_gen))
    (fun ops ->
      let t = mk () in
      let model = ref SM.empty in
      let step = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          incr step;
          match op with
          | `Put k ->
              let v = Printf.sprintf "%s@%d" k !step in
              T.put t ~key:k ~value:v;
              model := SM.add k v !model
          | `Remove k ->
              let a = T.remove t ~key:k in
              let b = SM.mem k !model in
              if a <> b then ok := false;
              model := SM.remove k !model
          | `Get k -> if T.get t ~key:k <> SM.find_opt k !model then ok := false
          | `Scan (k, n) ->
              let got = T.scan t ~start:k ~n in
              let expect =
                SM.to_seq !model
                |> Seq.filter (fun (k', _) -> k' >= k)
                |> Seq.take n |> List.of_seq
              in
              if got <> expect then ok := false)
        ops;
      T.validate t;
      !ok && T.cardinal t = SM.cardinal !model)

let tests =
  ( "tree",
    [
      Alcotest.test_case "empty tree" `Quick empty_tree;
      Alcotest.test_case "put/get single" `Quick put_get_single;
      Alcotest.test_case "put overwrites" `Quick put_overwrites;
      Alcotest.test_case "remove" `Quick remove_works;
      Alcotest.test_case "splits preserve contents" `Quick splits_preserve_contents;
      Alcotest.test_case "sequential inserts" `Quick sequential_inserts;
      Alcotest.test_case "descending inserts" `Quick descending_inserts;
      Alcotest.test_case "long keys build layers" `Quick long_keys_build_layers;
      Alcotest.test_case "dense shared prefix" `Quick shared_prefix_dense;
      Alcotest.test_case "exact-8 and longer coexist" `Quick exact8_and_longer_coexist;
      Alcotest.test_case "scan from middle" `Quick scan_from_middle;
      Alcotest.test_case "fold stops early" `Quick fold_stops_early;
      Alcotest.test_case "values of many sizes" `Quick values_of_many_sizes;
      Alcotest.test_case "iter visits all" `Quick iter_visits_all;
      QCheck_alcotest.to_alcotest model_property;
    ] )

(* --- node removal (empty-leaf unlink, splice, collapse, layer prune) ---- *)

let remove_all_collapses_tree () =
  let t = mk () in
  let n = 3_000 in
  for i = 0 to n - 1 do
    T.put t ~key:(key8 i) ~value:"x"
  done;
  for i = 0 to n - 1 do
    check "removed" true (T.remove t ~key:(key8 i))
  done;
  check_int "empty" 0 (T.cardinal t);
  T.validate t;
  let st = T.stats t in
  check "leaves unlinked" true (st.T.leaf_removals > 100);
  check "internals spliced" true (st.T.internal_splices > 0);
  check "root collapsed" true (st.T.root_collapses > 0);
  (* And the structure is reusable. *)
  for i = 0 to 499 do
    T.put t ~key:(key8 i) ~value:"again"
  done;
  check_int "refilled" 500 (T.cardinal t);
  T.validate t

let interleaved_insert_remove_stays_compact () =
  let t = mk () in
  let rng = Util.Rng.create ~seed:31 in
  let live = Hashtbl.create 64 in
  for step = 1 to 20_000 do
    let k = key8 (Util.Rng.int rng 500) in
    if Util.Rng.bool rng then begin
      T.put t ~key:k ~value:(string_of_int step);
      Hashtbl.replace live k ()
    end
    else begin
      ignore (T.remove t ~key:k);
      Hashtbl.remove live k
    end
  done;
  T.validate t;
  check_int "cardinal tracks" (Hashtbl.length live) (T.cardinal t)

let empty_layer_is_pruned () =
  let t = mk () in
  (* Two keys sharing an 8-byte prefix force a nested layer... *)
  T.put t ~key:"sameprefA" ~value:"1";
  T.put t ~key:"sameprefB" ~value:"2";
  check "layer created" true ((T.stats t).T.layer_creations >= 1);
  (* ...removing both leaves an empty layer, which must be pruned. *)
  check "rm A" true (T.remove t ~key:"sameprefA");
  check "rm B" true (T.remove t ~key:"sameprefB");
  check "layer pruned" true ((T.stats t).T.layer_prunes >= 1);
  check_int "empty" 0 (T.cardinal t);
  T.validate t;
  (* The prefix is insertable again from scratch. *)
  T.put t ~key:"sameprefC" ~value:"3";
  check "reinsert works" true (T.get t ~key:"sameprefC" = Some "3");
  T.validate t

let deep_layer_prune_cascades () =
  let t = mk () in
  (* 24-byte shared prefix: three nested layers for one key. *)
  let deep = "0123456701234567012345670" in
  T.put t ~key:deep ~value:"deep";
  T.put t ~key:"01234567" ~value:"shallow";
  check "get deep" true (T.get t ~key:deep = Some "deep");
  check "rm deep" true (T.remove t ~key:deep);
  check "shallow survives" true (T.get t ~key:"01234567" = Some "shallow");
  T.validate t;
  check_int "one entry" 1 (T.cardinal t)

let scan_after_removals_in_order () =
  let t = mk () in
  for i = 0 to 999 do
    T.put t ~key:(Printf.sprintf "k%04d" i) ~value:""
  done;
  (* Remove three quarters, including whole aligned blocks (emptying many
     leaves). *)
  for i = 0 to 999 do
    if i mod 4 <> 0 then ignore (T.remove t ~key:(Printf.sprintf "k%04d" i))
  done;
  T.validate t;
  let got = List.map fst (T.scan t ~start:"" ~n:1000) in
  let expect = List.init 250 (fun i -> Printf.sprintf "k%04d" (i * 4)) in
  Alcotest.(check (list string)) "order preserved" expect got

let removal_tests =
  [
    Alcotest.test_case "remove all collapses tree" `Quick remove_all_collapses_tree;
    Alcotest.test_case "interleaved insert/remove" `Quick interleaved_insert_remove_stays_compact;
    Alcotest.test_case "empty layer pruned" `Quick empty_layer_is_pruned;
    Alcotest.test_case "deep layer prune" `Quick deep_layer_prune_cascades;
    Alcotest.test_case "scan after removals" `Quick scan_after_removals_in_order;
  ]

let tests = (fst tests, snd tests @ removal_tests)

(* --- reverse scans ------------------------------------------------------- *)

let scan_rev_basic () =
  let t = mk () in
  for i = 0 to 99 do
    T.put t ~key:(Printf.sprintf "k%03d" i) ~value:(string_of_int i)
  done;
  Alcotest.(check (list string)) "top three descending"
    [ "k099"; "k098"; "k097" ]
    (List.map fst (T.scan_rev t ~n:3 ()));
  Alcotest.(check (list string)) "bounded descending"
    [ "k050"; "k049"; "k048" ]
    (List.map fst (T.scan_rev t ~bound:"k050" ~n:3 ()));
  Alcotest.(check (list string)) "bound between keys"
    [ "k050" ]
    (List.map fst (T.scan_rev t ~bound:"k0505" ~n:1 ()));
  Alcotest.(check (list string)) "bound below all" []
    (List.map fst (T.scan_rev t ~bound:"a" ~n:5 ()))

let scan_rev_matches_forward =
  let open QCheck in
  Test.make ~name:"reverse scan = reversed forward scan" ~count:40
    (pair (int_bound 1_000_000) (int_range 1 400))
    (fun (seed, nkeys) ->
      let t = mk () in
      let rng = Util.Rng.create ~seed in
      (* A mix of short, long and shared-prefix keys. *)
      for i = 0 to nkeys - 1 do
        let k =
          match Util.Rng.int rng 3 with
          | 0 -> Printf.sprintf "%05d" i
          | 1 -> Printf.sprintf "shared-prefix/%05d" i
          | _ -> key8 i
        in
        T.put t ~key:k ~value:(string_of_int i)
      done;
      let forward = T.scan t ~start:"" ~n:max_int in
      let backward = T.scan_rev t ~n:max_int () in
      backward = List.rev forward)

let scan_rev_bounded_property =
  let open QCheck in
  Test.make ~name:"bounded reverse scan = filtered forward" ~count:40
    (pair (int_bound 1_000_000) (string_of_size Gen.(int_bound 10)))
    (fun (seed, bound) ->
      let t = mk () in
      let rng = Util.Rng.create ~seed in
      for i = 0 to 200 do
        let k =
          if Util.Rng.bool rng then Printf.sprintf "%c%04d" (Char.chr (97 + (i mod 26))) i
          else Printf.sprintf "prefix!!%d-%05d" (i mod 3) i
        in
        T.put t ~key:k ~value:""
      done;
      let forward = List.map fst (T.scan t ~start:"" ~n:max_int) in
      let expect = List.rev (List.filter (fun k -> k <= bound) forward) in
      let got = List.map fst (T.scan_rev t ~bound ~n:max_int ()) in
      got = expect)

let rev_tests =
  [
    Alcotest.test_case "scan_rev basics" `Quick scan_rev_basic;
    QCheck_alcotest.to_alcotest scan_rev_matches_forward;
    QCheck_alcotest.to_alcotest scan_rev_bounded_property;
  ]

let tests = (fst tests, snd tests @ rev_tests)

(* --- key-suffix inlining (ksuf) ------------------------------------------ *)

let single_long_key_needs_no_layer () =
  let t = mk () in
  T.put t ~key:"a-very-long-key-without-collisions" ~value:"v";
  check_int "no layer created" 0 (T.stats t).T.layer_creations;
  check "get" true (T.get t ~key:"a-very-long-key-without-collisions" = Some "v");
  (* Prefix lookups must not match the suffix entry. *)
  check "prefix absent" true (T.get t ~key:"a-very-lo" = None);
  check "longer absent" true
    (T.get t ~key:"a-very-long-key-without-collisionsX" = None);
  T.validate t

let suffix_entry_update_and_remove () =
  let t = mk () in
  let k = "long-key/0123456789" in
  T.put t ~key:k ~value:"v1";
  T.put t ~key:k ~value:"v2";
  check "updated in place" true (T.get t ~key:k = Some "v2");
  check_int "still no layer" 0 (T.stats t).T.layer_creations;
  check_int "update counted" 1 (T.stats t).T.updates;
  check "removed" true (T.remove t ~key:k);
  check "gone" true (T.get t ~key:k = None);
  check_int "empty" 0 (T.cardinal t)

let collision_converts_to_layer () =
  let t = mk () in
  T.put t ~key:"shared!!suffix-one" ~value:"1";
  check_int "first long key: no layer" 0 (T.stats t).T.layer_creations;
  T.put t ~key:"shared!!suffix-two" ~value:"2";
  check "conversion created a layer" true ((T.stats t).T.layer_creations >= 1);
  check "one" true (T.get t ~key:"shared!!suffix-one" = Some "1");
  check "two" true (T.get t ~key:"shared!!suffix-two" = Some "2");
  T.validate t;
  Alcotest.(check (list string)) "ordered"
    [ "shared!!suffix-one"; "shared!!suffix-two" ]
    (List.map fst (T.scan t ~start:"" ~n:10))

let deep_collision_cascades () =
  (* Collide again inside the converted layer: 16-byte shared prefix. *)
  let t = mk () in
  T.put t ~key:"shared!!shared!!A" ~value:"a";
  T.put t ~key:"shared!!shared!!B" ~value:"b";
  check "two layers (cascading conversion)" true
    ((T.stats t).T.layer_creations >= 2);
  check "a" true (T.get t ~key:"shared!!shared!!A" = Some "a");
  check "b" true (T.get t ~key:"shared!!shared!!B" = Some "b");
  T.validate t

let suffix_scan_ordering () =
  let t = mk () in
  (* Mix: short terminal, exact-8 terminal, suffix entry, layered keys,
     all sharing or neighbouring slices. *)
  let keys =
    [ "ab"; "abcdefgh"; "abcdefghSOLO"; "zz-pair-1"; "zz-pair-2"; "zz" ]
  in
  List.iter (fun k -> T.put t ~key:k ~value:k) keys;
  T.validate t;
  Alcotest.(check (list string)) "forward order" (List.sort compare keys)
    (List.map fst (T.scan t ~start:"" ~n:10));
  Alcotest.(check (list string)) "reverse order"
    (List.rev (List.sort compare keys))
    (List.map fst (T.scan_rev t ~n:10 ()));
  (* Start mid-way between a suffix entry and its slice. *)
  Alcotest.(check (list string)) "start inside suffix range"
    [ "abcdefghSOLO"; "zz" ]
    (List.map fst (T.scan t ~start:"abcdefghA" ~n:2))

let suffix_model_property =
  (* The earlier model property with heavily colliding long keys. *)
  let open QCheck in
  let key_gen =
    Gen.(
      oneof
        [
          map (fun i -> Printf.sprintf "%04d" i) (int_bound 50);
          map (fun i -> Printf.sprintf "prefix!!%04d" i) (int_bound 50);
          map (fun i -> Printf.sprintf "prefix!!deeper!!%04d" i) (int_bound 50);
          map (fun i -> Printf.sprintf "solo-%04d-%s" i (String.make (i mod 20) 'x')) (int_bound 50);
        ])
  in
  Test.make ~name:"tree with long keys matches Map model" ~count:40
    (make Gen.(list_size (int_range 50 400) (pair (int_bound 9) key_gen)))
    (fun ops ->
      let t = mk () in
      let model = ref SM.empty in
      let step = ref 0 in
      let ok = ref true in
      List.iter
        (fun (d, k) ->
          incr step;
          if d < 5 then begin
            let v = Printf.sprintf "%d" !step in
            T.put t ~key:k ~value:v;
            model := SM.add k v !model
          end
          else if d < 7 then begin
            let a = T.remove t ~key:k in
            if a <> SM.mem k !model then ok := false;
            model := SM.remove k !model
          end
          else if T.get t ~key:k <> SM.find_opt k !model then ok := false)
        ops;
      T.validate t;
      let scanned = List.map fst (T.scan t ~start:"" ~n:max_int) in
      !ok
      && scanned = List.map fst (SM.bindings !model)
      && T.cardinal t = SM.cardinal !model)

let ksuf_tests =
  [
    Alcotest.test_case "single long key: no layer" `Quick single_long_key_needs_no_layer;
    Alcotest.test_case "suffix update and remove" `Quick suffix_entry_update_and_remove;
    Alcotest.test_case "collision converts to layer" `Quick collision_converts_to_layer;
    Alcotest.test_case "deep collision cascades" `Quick deep_collision_cascades;
    Alcotest.test_case "suffix scan ordering" `Quick suffix_scan_ordering;
    QCheck_alcotest.to_alcotest suffix_model_property;
  ]

let tests = (fst tests, snd tests @ ksuf_tests)
