(* White-box tests of the InCLL algorithm (Listing 3): which modifications
   are absorbed by the in-line logs, which fall back to the external log,
   and in what order the words are written. *)

module L = Masstree.Leaf
module V = Masstree.Val_incll
module EW = Masstree.Epoch_word
module Sys_ = Incll.System

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let key8 i = Masstree.Key.of_int64 (Util.Scramble.fmix64 (Int64.of_int i))

let cfg =
  {
    Sys_.default_config with
    Sys_.nvm =
      {
        Nvm.Config.default with
        Nvm.Config.size_bytes = 8 * 1024 * 1024;
        extlog_bytes = 1024 * 1024;
      };
    (* Epochs advance only when tests ask for it. *)
    epoch_len_ns = 1.0e15;
  }

let mk ?(variant = Sys_.Incll) () = Sys_.create ~config:cfg variant

let counters s =
  match Sys_.ctx s with Some c -> c.Incll.Ctx.counters | None -> assert false

(* Locate the leaf currently holding [key] (single-layer trees). *)
let leaf_of s key =
  let region = Sys_.region s in
  let tree = Sys_.tree s in
  let slice = (Masstree.Key.slice_at key ~layer:0).Masstree.Key.bits in
  let rec descend node =
    if L.is_leaf_node region node then node
    else
      descend
        (Masstree.Internal.child region node
           ~i:(Masstree.Internal.search_child region node ~slice))
  in
  descend (Masstree.Tree.root tree)

let populate s n =
  for i = 0 to n - 1 do
    Sys_.put s ~key:(key8 i) ~value:"12345678"
  done;
  Sys_.advance_epoch s

(* --- first touch --------------------------------------------------------- *)

let first_touch_saves_permutation () =
  let s = mk () in
  populate s 200;
  let k = key8 1000 in
  let leaf = leaf_of s k in
  let region = Sys_.region s in
  let perm_before = L.perm region leaf in
  let logged_before = Sys_.nodes_logged s in
  Sys_.put s ~key:k ~value:"new-val!";
  (* fresh insert *)
  check "permutationInCLL holds pre-image" true
    (L.perm_incll region leaf = perm_before);
  check "permutation moved" true (L.perm region leaf <> perm_before);
  let ew = L.epoch_word region leaf in
  check "stamped with current epoch" true
    (match Sys_.epoch_manager s with
    | Some em -> ew.EW.epoch = Epoch.Manager.current em
    | None -> false);
  check_int "no external logging" logged_before (Sys_.nodes_logged s);
  check "no draining fence on the leaf path" true
    ((counters s).Incll.Ctx.first_touches > 0)

let repeat_inserts_free () =
  let s = mk () in
  populate s 50;
  let logged_before = Sys_.nodes_logged s in
  (* Many inserts into the same epoch: InCLLp covers all of them. *)
  for i = 500 to 540 do
    Sys_.put s ~key:(key8 i) ~value:"xxxxxxxx"
  done;
  (* Splits may log structurally; measure a split-free window instead. *)
  ignore logged_before;
  let before = Sys_.nodes_logged s in
  for i = 600 to 604 do
    Sys_.put s ~key:(key8 i) ~value:"yyyyyyyy"
  done;
  check "at most split logging" true (Sys_.nodes_logged s - before <= 3)

let repeat_removes_free () =
  let s = mk () in
  populate s 200;
  let before = Sys_.nodes_logged s in
  (* Spread the deletes so no leaf empties (an emptied leaf is unlinked,
     which is a structural change and rightly uses the external log). *)
  for i = 0 to 49 do
    ignore (Sys_.remove s ~key:(key8 (i * 4)))
  done;
  check_int "non-emptying removes never log externally" before
    (Sys_.nodes_logged s)

let emptying_remove_unlinks_and_logs () =
  let s = mk () in
  populate s 200;
  let t = Sys_.tree s in
  let before = (Masstree.Tree.stats t).Masstree.Tree.leaf_removals in
  let logged0 = Sys_.nodes_logged s in
  for i = 0 to 199 do
    ignore (Sys_.remove s ~key:(key8 i))
  done;
  check "leaves were unlinked" true
    ((Masstree.Tree.stats t).Masstree.Tree.leaf_removals > before + 5);
  check "unlinking logged structurally" true (Sys_.nodes_logged s > logged0);
  check_int "tree empty" 0 (Masstree.Tree.cardinal t);
  Masstree.Tree.validate t;
  (* The tree collapsed back to a single root leaf. *)
  check "root is a leaf" true
    (Masstree.Leaf.is_leaf_node (Sys_.region s) (Masstree.Tree.root t))

(* --- the delete-then-insert fallback (§4.1.1) ---------------------------- *)

let mixed_remove_insert_logs () =
  let s = mk () in
  populate s 100;
  let k = key8 5 in
  let leaf = leaf_of s k in
  ignore (Sys_.remove s ~key:k);
  let region = Sys_.region s in
  check "insAllowed cleared" false (L.epoch_word region leaf).EW.ins_allowed;
  let before = (counters s).Incll.Ctx.ext_fallback_mixed in
  (* Re-insert a key that lands in the same leaf. *)
  Sys_.put s ~key:k ~value:"back-in!";
  check "mixed fallback logged" true
    ((counters s).Incll.Ctx.ext_fallback_mixed > before);
  check "node marked logged" true (L.epoch_word region leaf).EW.logged

let insert_then_remove_stays_incll () =
  let s = mk () in
  populate s 100;
  let before = Sys_.nodes_logged s in
  let k = key8 700 in
  Sys_.put s ~key:k ~value:"tmptmptm";
  ignore (Sys_.remove s ~key:k);
  (* insert-then-remove is fine under InCLLp (§4.1.1) — only the reverse
     order forces the external log. *)
  check_int "no logging" before (Sys_.nodes_logged s)

let logged_node_needs_nothing_more () =
  let s = mk () in
  populate s 100;
  let k = key8 5 in
  ignore (Sys_.remove s ~key:k);
  Sys_.put s ~key:k ~value:"back-in!" (* forces the log *);
  let before = Sys_.nodes_logged s in
  (* Further mixed operations on the logged node are free. *)
  ignore (Sys_.remove s ~key:k);
  Sys_.put s ~key:k ~value:"again!!!";
  check_int "logged once per epoch" before (Sys_.nodes_logged s)

(* --- value updates (§4.1.3) ---------------------------------------------- *)

let update_uses_val_incll () =
  let s = mk () in
  populate s 100;
  let k = key8 7 in
  let leaf = leaf_of s k in
  let region = Sys_.region s in
  let slice = (Masstree.Key.slice_at k ~layer:0).Masstree.Key.bits in
  let rank =
    match L.find region leaf ~slice ~keylen:8 with
    | L.Found r -> r
    | L.Insert_before _ -> Alcotest.fail "key must exist"
  in
  let slot = Masstree.Permutation.slot_at_rank (L.perm region leaf) rank in
  let old_val = L.value region leaf ~slot in
  let before = Sys_.nodes_logged s in
  Sys_.put s ~key:k ~value:"updated!";
  let d = V.unpack (L.incll region leaf ~slot) in
  check_int "InCLL logs the slot" slot d.V.idx;
  check_int "InCLL holds the pre-image pointer" old_val d.V.ptr;
  check_int "no external log" before (Sys_.nodes_logged s);
  check "new value visible" true (Sys_.get s ~key:k = Some "updated!")

let repeated_update_same_key_free () =
  let s = mk () in
  populate s 100;
  let k = key8 7 in
  Sys_.put s ~key:k ~value:"u1u1u1u1";
  let before = Sys_.nodes_logged s in
  let hits0 = (counters s).Incll.Ctx.val_incll_hits in
  for _ = 1 to 10 do
    Sys_.put s ~key:k ~value:"u2u2u2u2"
  done;
  check_int "skewed updates free (§4.1.3)" before (Sys_.nodes_logged s);
  check "hits counted" true ((counters s).Incll.Ctx.val_incll_hits >= hits0 + 10)

let two_hot_slots_same_line_log () =
  (* Find two keys in the same value cache line of one leaf and update
     both in one epoch: the second must fall back to the external log. *)
  let s = mk () in
  populate s 400;
  let region = Sys_.region s in
  (* Pick a leaf with >= 2 entries in slots 0..6. *)
  let found = ref None in
  let rec scan_keys i =
    if i >= 400 || !found <> None then ()
    else begin
      let k = key8 i in
      let leaf = leaf_of s k in
      let p = L.perm region leaf in
      let in_low =
        List.filter (fun slot -> slot <= 6)
          (Masstree.Permutation.active_slots p)
      in
      (match in_low with
      | s1 :: s2 :: _ ->
          let key_of_slot slot =
            Masstree.Key.bytes_of_slice (L.key region leaf ~slot)
              ~len:(L.keylen region leaf ~slot)
          in
          found := Some (key_of_slot s1, key_of_slot s2)
      | _ -> ());
      scan_keys (i + 1)
    end
  in
  scan_keys 0;
  match !found with
  | None -> Alcotest.fail "no leaf with two low-line entries"
  | Some (k1, k2) ->
      let before = (counters s).Incll.Ctx.ext_fallback_update in
      Sys_.put s ~key:k1 ~value:"hot1hot1";
      Sys_.put s ~key:k2 ~value:"hot2hot2";
      check "second hot slot forced the log" true
        ((counters s).Incll.Ctx.ext_fallback_update > before)

let updates_in_different_lines_both_incll () =
  let s = mk () in
  populate s 400;
  let region = Sys_.region s in
  let found = ref None in
  let rec scan_keys i =
    if i >= 400 || !found <> None then ()
    else begin
      let k = key8 i in
      let leaf = leaf_of s k in
      let p = L.perm region leaf in
      let slots = Masstree.Permutation.active_slots p in
      let low = List.find_opt (fun s -> s <= 6) slots in
      let high = List.find_opt (fun s -> s >= 7) slots in
      (match (low, high) with
      | Some s1, Some s2 ->
          let key_of_slot slot =
            Masstree.Key.bytes_of_slice (L.key region leaf ~slot)
              ~len:(L.keylen region leaf ~slot)
          in
          found := Some (key_of_slot s1, key_of_slot s2)
      | _ -> ());
      scan_keys (i + 1)
    end
  in
  scan_keys 0;
  match !found with
  | None -> Alcotest.fail "no suitable leaf"
  | Some (k1, k2) ->
      let before = Sys_.nodes_logged s in
      Sys_.put s ~key:k1 ~value:"line1!!!";
      Sys_.put s ~key:k2 ~value:"line2!!!";
      check_int "both absorbed by the two InCLLs" before (Sys_.nodes_logged s)

(* --- epoch-distance fallback (§4.1.3) ------------------------------------ *)

let epoch_overflow_forces_log () =
  (* A node whose last touch is >= 2^16 epochs old cannot encode the
     distance in 16 bits: its next first-touch must externally log. *)
  let s = mk () in
  populate s 30;
  (match Sys_.epoch_manager s with
  | Some em ->
      (* Jump the epoch counter far ahead (cheaper than 65k advances). *)
      for _ = 1 to 4 do
        Epoch.Manager.advance em
      done;
      let target = Epoch.Manager.current em + 66_000 in
      while Epoch.Manager.current em < target do
        Epoch.Manager.advance em
      done
  | None -> ());
  let before = (counters s).Incll.Ctx.ext_fallback_epoch in
  Sys_.put s ~key:(key8 3) ~value:"newepoch";
  check "epoch-distance fallback" true
    ((counters s).Incll.Ctx.ext_fallback_epoch > before)

(* --- ablation: InCLLp only ----------------------------------------------- *)

let val_incll_ablation_logs_updates () =
  let s =
    Sys_.create ~config:{ cfg with Sys_.val_incll = false } Sys_.Incll
  in
  populate s 100;
  let before = Sys_.nodes_logged s in
  Sys_.put s ~key:(key8 7) ~value:"updated!";
  check "update logs externally without value InCLLs" true
    (Sys_.nodes_logged s > before);
  (* But inserts still ride on InCLLp: no insert/remove fallback counters
     move (splits may still log structurally). *)
  let c = counters s in
  let mixed0 = c.Incll.Ctx.ext_fallback_mixed in
  let upd0 = c.Incll.Ctx.ext_fallback_update in
  for i = 900 to 940 do
    Sys_.put s ~key:(key8 i) ~value:"freshkey"
  done;
  check_int "no mixed fallback" mixed0 c.Incll.Ctx.ext_fallback_mixed;
  check_int "no update fallback" upd0 c.Incll.Ctx.ext_fallback_update

(* --- LOGGING variant ------------------------------------------------------ *)

let logging_variant_logs_every_first_touch () =
  let s = mk ~variant:Sys_.Logging () in
  populate s 100;
  let before = Sys_.nodes_logged s in
  Sys_.put s ~key:(key8 3) ~value:"anything";
  check "update logged" true (Sys_.nodes_logged s > before);
  let mid = Sys_.nodes_logged s in
  Sys_.put s ~key:(key8 3) ~value:"again!!!";
  check_int "once per epoch" mid (Sys_.nodes_logged s);
  Sys_.advance_epoch s;
  Sys_.put s ~key:(key8 3) ~value:"epoch+1!";
  check "re-logged next epoch" true (Sys_.nodes_logged s > mid)

let tests =
  ( "incll",
    [
      Alcotest.test_case "first touch saves permutation" `Quick first_touch_saves_permutation;
      Alcotest.test_case "repeat inserts free" `Quick repeat_inserts_free;
      Alcotest.test_case "removes never log" `Quick repeat_removes_free;
      Alcotest.test_case "emptying remove unlinks" `Quick emptying_remove_unlinks_and_logs;
      Alcotest.test_case "remove-then-insert logs" `Quick mixed_remove_insert_logs;
      Alcotest.test_case "insert-then-remove stays InCLL" `Quick insert_then_remove_stays_incll;
      Alcotest.test_case "logged node needs nothing more" `Quick logged_node_needs_nothing_more;
      Alcotest.test_case "update uses value InCLL" `Quick update_uses_val_incll;
      Alcotest.test_case "repeated update same key free" `Quick repeated_update_same_key_free;
      Alcotest.test_case "two hot slots in a line log" `Quick two_hot_slots_same_line_log;
      Alcotest.test_case "two lines both InCLL" `Quick updates_in_different_lines_both_incll;
      Alcotest.test_case "epoch-distance fallback" `Slow epoch_overflow_forces_log;
      Alcotest.test_case "ablation: InCLLp only" `Quick val_incll_ablation_logs_updates;
      Alcotest.test_case "LOGGING logs first touches" `Quick logging_variant_logs_every_first_touch;
    ] )
