(* Tests for Masstree's permutation word, including a model-based qcheck
   property (this word is the heart of the InCLLp argument: one-word undo
   of any same-epoch insert/delete sequence, §4.1.1). *)

module P = Masstree.Permutation

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let empty_is_valid () =
  check "valid" true (P.is_valid P.empty);
  check_int "count" 0 (P.count P.empty);
  Alcotest.(check (list int)) "free slots ascending"
    (List.init P.width (fun i -> i))
    (P.free_slots P.empty)

let insert_at_front () =
  let p, s0 = P.insert P.empty ~rank:0 in
  check_int "slot 0 first" 0 s0;
  let p, s1 = P.insert p ~rank:0 in
  check_int "slot 1 second" 1 s1;
  Alcotest.(check (list int)) "order" [ 1; 0 ] (P.active_slots p);
  check "valid" true (P.is_valid p)

let insert_until_full () =
  let p = ref P.empty in
  for i = 0 to P.width - 1 do
    check "not full" false (P.is_full !p);
    let p', _ = P.insert !p ~rank:i in
    p := p'
  done;
  check "full" true (P.is_full !p);
  check "insert on full raises" true
    (try
       ignore (P.insert !p ~rank:0);
       false
     with Invalid_argument _ -> true)

let remove_restores_slot_to_free () =
  let p, s = P.insert P.empty ~rank:0 in
  let p, _ = P.insert p ~rank:1 in
  let p, removed = P.remove p ~rank:0 in
  check_int "removed the slot" s removed;
  check_int "count" 1 (P.count p);
  check "slot free again" true (List.mem s (P.free_slots p));
  check "valid" true (P.is_valid p)

let remove_bad_rank_raises () =
  check "raises" true
    (try
       ignore (P.remove P.empty ~rank:0);
       false
     with Invalid_argument _ -> true)

(* Model: an int list of slots in sorted order. *)
let model_property =
  let open QCheck in
  Test.make ~name:"permutation matches list model" ~count:500
    (list_of_size Gen.(int_range 1 60) (pair bool (int_bound 13)))
    (fun ops ->
      let p = ref P.empty in
      let model = ref [] in
      List.iter
        (fun (is_insert, pos) ->
          if is_insert then begin
            if not (P.is_full !p) then begin
              let rank = pos mod (List.length !model + 1) in
              let p', slot = P.insert !p ~rank in
              p := p';
              let rec ins l i =
                if i = 0 then slot :: l
                else match l with [] -> [ slot ] | x :: r -> x :: ins r (i - 1)
              in
              model := ins !model rank
            end
          end
          else if !model <> [] then begin
            let rank = pos mod List.length !model in
            let p', slot = P.remove !p ~rank in
            p := p';
            assert (slot = List.nth !model rank);
            model := List.filteri (fun i _ -> i <> rank) !model
          end)
        ops;
      P.is_valid !p && P.active_slots !p = !model)

let single_word_undo_property =
  (* The InCLLp argument (Â§4.1.1): restoring the one permutation word
     recovers the original key-value set, PROVIDED no insert followed a
     remove in the sequence (that mixed case may overwrite a slot that the
     restored permutation still references, and is external-logged). *)
  let open QCheck in
  Test.make ~name:"one-word undo restores active set" ~count:500
    (pair
       (list_of_size Gen.(int_range 0 20) (int_bound 13))
       (list_of_size Gen.(int_range 1 40) (pair bool (int_bound 13))))
    (fun (seed_ranks, ops) ->
      let contents = Array.make P.width 0 in
      let stamp = ref 0 in
      let p0 = ref P.empty in
      List.iter
        (fun r ->
          if not (P.is_full !p0) then begin
            let p', slot = P.insert !p0 ~rank:(r mod (P.count !p0 + 1)) in
            p0 := p';
            incr stamp;
            contents.(slot) <- !stamp
          end)
        seed_ranks;
      let saved_perm = !p0 in
      let saved_contents = Array.copy contents in
      (* Run the epoch's operations, writing into acquired slots like the
         leaf does. *)
      let p = ref saved_perm in
      let removed = ref false in
      let mixed = ref false in
      List.iter
        (fun (is_insert, pos) ->
          if is_insert then begin
            if not (P.is_full !p) then begin
              if !removed then mixed := true;
              let p', slot = P.insert !p ~rank:(pos mod (P.count !p + 1)) in
              p := p';
              incr stamp;
              contents.(slot) <- !stamp
            end
          end
          else if P.count !p > 0 then begin
            p := fst (P.remove !p ~rank:(pos mod P.count !p));
            removed := true
          end)
        ops;
      (* Roll back the permutation word alone. *)
      let restored = saved_perm in
      if !mixed then true (* external log handles this case *)
      else
        List.for_all
          (fun slot -> contents.(slot) = saved_contents.(slot))
          (P.active_slots restored))

let tests =
  ( "permutation",
    [
      Alcotest.test_case "empty valid" `Quick empty_is_valid;
      Alcotest.test_case "insert at front" `Quick insert_at_front;
      Alcotest.test_case "insert until full" `Quick insert_until_full;
      Alcotest.test_case "remove frees slot" `Quick remove_restores_slot_to_free;
      Alcotest.test_case "remove bad rank" `Quick remove_bad_rank_raises;
      QCheck_alcotest.to_alcotest model_property;
      QCheck_alcotest.to_alcotest single_word_undo_property;
    ] )
