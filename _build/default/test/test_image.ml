(* Tests for NVM image save/load (restart-across-process durability). *)

module Sys_ = Incll.System

let check = Alcotest.(check bool)

let key8 i = Masstree.Key.of_int64 (Util.Scramble.fmix64 (Int64.of_int i))

let cfg =
  {
    Sys_.default_config with
    Sys_.nvm =
      {
        Nvm.Config.default with
        Nvm.Config.size_bytes = 4 * 1024 * 1024;
        extlog_bytes = 256 * 1024;
      };
    epoch_len_ns = 1.0e15;
  }

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let save_load_roundtrip () =
  let s = Sys_.create ~config:cfg Sys_.Incll in
  for i = 0 to 499 do
    Sys_.put s ~key:(key8 i) ~value:(Printf.sprintf "v%03d" i)
  done;
  Sys_.advance_epoch s;
  let path = tmp "incll_image_test.img" in
  Nvm.Image.save (Sys_.region s) ~path;
  check "size recorded" true
    (Nvm.Image.image_size ~path = Nvm.Region.size (Sys_.region s));
  (* "Reboot": load into a fresh region and recover the system. *)
  let region = Nvm.Image.load cfg.Sys_.nvm ~path in
  let s2 = Sys_.attach ~config:cfg Sys_.Incll region in
  for i = 0 to 499 do
    check "value survives restart" true
      (Sys_.get s2 ~key:(key8 i) = Some (Printf.sprintf "v%03d" i))
  done;
  Masstree.Tree.validate (Sys_.tree s2);
  Stdlib.Sys.remove path

let uncheckpointed_work_lost_across_restart () =
  let s = Sys_.create ~config:cfg Sys_.Incll in
  for i = 0 to 99 do
    Sys_.put s ~key:(key8 i) ~value:"durable!"
  done;
  Sys_.advance_epoch s;
  (* Dirty work after the checkpoint never reaches the persisted image
     unless a crash/flush moves it; a saved image is the persisted view. *)
  Sys_.put s ~key:(key8 1000) ~value:"volatile";
  let path = tmp "incll_image_test2.img" in
  Nvm.Image.save (Sys_.region s) ~path;
  let region = Nvm.Image.load cfg.Sys_.nvm ~path in
  let s2 = Sys_.attach ~config:cfg Sys_.Incll region in
  check "checkpointed survives" true (Sys_.get s2 ~key:(key8 0) = Some "durable!");
  check "uncheckpointed lost" true (Sys_.get s2 ~key:(key8 1000) = None);
  Stdlib.Sys.remove path

let corrupt_image_rejected () =
  let s = Sys_.create ~config:cfg Sys_.Incll in
  Sys_.put s ~key:"k" ~value:"v";
  Sys_.advance_epoch s;
  let path = tmp "incll_image_test3.img" in
  Nvm.Image.save (Sys_.region s) ~path;
  (* Flip one byte in the payload. *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd 100_000 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.make 1 '\xff') 0 1);
  Unix.close fd;
  check "corruption detected" true
    (try
       ignore (Nvm.Image.load cfg.Sys_.nvm ~path);
       false
     with Failure _ -> true);
  Stdlib.Sys.remove path

let non_image_rejected () =
  let path = tmp "incll_image_test4.img" in
  let oc = open_out_bin path in
  output_string oc (String.make 4096 'z');
  close_out oc;
  check "bad magic detected" true
    (try
       ignore (Nvm.Image.load cfg.Sys_.nvm ~path);
       false
     with Failure _ -> true);
  Stdlib.Sys.remove path

let mid_epoch_image_recovers () =
  (* Saving mid-epoch is like crashing: the loaded system rolls back. *)
  let s = Sys_.create ~config:cfg Sys_.Incll in
  for i = 0 to 99 do
    Sys_.put s ~key:(key8 i) ~value:"committed"
  done;
  Sys_.advance_epoch s;
  for i = 0 to 49 do
    Sys_.put s ~key:(key8 i) ~value:"dirty!!!!"
  done;
  (* Force some of the dirty epoch into the persisted image, like cache
     pressure would. *)
  Sys_.crash_with s ~choose:(fun ~line:_ ~nwrites -> nwrites / 2);
  let s = Sys_.recover s in
  let path = tmp "incll_image_test5.img" in
  Nvm.Image.save (Sys_.region s) ~path;
  let region = Nvm.Image.load cfg.Sys_.nvm ~path in
  let s2 = Sys_.attach ~config:cfg Sys_.Incll region in
  for i = 0 to 99 do
    check "rolled back to checkpoint" true
      (Sys_.get s2 ~key:(key8 i) = Some "committed")
  done;
  Stdlib.Sys.remove path

let tests =
  ( "image",
    [
      Alcotest.test_case "save/load roundtrip" `Quick save_load_roundtrip;
      Alcotest.test_case "uncheckpointed work lost" `Quick uncheckpointed_work_lost_across_restart;
      Alcotest.test_case "corrupt image rejected" `Quick corrupt_image_rejected;
      Alcotest.test_case "non-image rejected" `Quick non_image_rejected;
      Alcotest.test_case "mid-epoch image recovers" `Quick mid_epoch_image_recovers;
    ] )
