(* Systematic crash-state exploration — the checking tool §5.2/§8 alludes
   to ("we are currently developing a tool to help reason about the
   correctness of this type of system").

   A PCSO crash state is one prefix choice per dirty line. Instead of
   sampling prefixes randomly, this harness walks the mixed-radix space of
   per-line prefix combinations systematically: every round it performs one
   operation of a rotating class, decodes the round counter into a prefix
   vector over the current dirty lines, crashes with exactly that vector,
   recovers, and verifies the store against the checkpoint model. Over
   the rounds this covers prefix combinations (including all the
   single-line torn states) far more systematically than uniform random
   crashing. *)

module SM = Map.Make (String)
module Sys_ = Incll.System

let key_of i = Masstree.Key.of_int64 (Util.Scramble.fmix64 (Int64.of_int i))

let cfg =
  {
    Sys_.default_config with
    Sys_.nvm =
      {
        Nvm.Config.default with
        Nvm.Config.size_bytes = 4 * 1024 * 1024;
        extlog_bytes = 256 * 1024;
        (* no background eviction: keep the pending sets deterministic *)
        max_dirty_lines = None;
      };
    epoch_len_ns = 1.0e15;
  }

(* Decode [counter] as mixed-radix digits over the pending counts. *)
let prefix_vector counter pending =
  let tbl = Hashtbl.create 16 in
  let c = ref counter in
  List.iter
    (fun (line, n) ->
      let radix = n + 1 in
      Hashtbl.replace tbl line (!c mod radix);
      c := !c / radix)
    pending;
  tbl

let run_rounds ~variant ~rounds =
  let sys = ref (Sys_.create ~config:cfg variant) in
  let nkeys = 80 in
  let model = ref SM.empty in
  for i = 0 to nkeys - 1 do
    let v = Printf.sprintf "base-%03d" i in
    Sys_.put !sys ~key:(key_of i) ~value:v;
    model := SM.add (key_of i) v !model
  done;
  Sys_.advance_epoch !sys;
  let fresh = ref nkeys in
  for round = 0 to rounds - 1 do
    (* One operation of a rotating class against the checkpointed state. *)
    let k = key_of (round mod nkeys) in
    (match round mod 7 with
    | 0 -> Sys_.put !sys ~key:k ~value:"upd!"
    | 1 -> ignore (Sys_.remove !sys ~key:k)
    | 2 ->
        incr fresh;
        Sys_.put !sys ~key:(key_of !fresh) ~value:"new!"
    | 3 ->
        (* the mixed delete-then-insert epoch (§4.1.1) *)
        ignore (Sys_.remove !sys ~key:k);
        Sys_.put !sys ~key:k ~value:"mix!"
    | 4 ->
        (* a fresh long key: a suffix (ksuf) entry *)
        incr fresh;
        Sys_.put !sys ~key:(Printf.sprintf "long-key-%09d" !fresh) ~value:"suf!"
    | 5 ->
        (* two colliding long keys: suffix insert + layer conversion *)
        incr fresh;
        Sys_.put !sys ~key:(Printf.sprintf "collide!%09d-a" !fresh) ~value:"c1!";
        Sys_.put !sys ~key:(Printf.sprintf "collide!%09d-b" !fresh) ~value:"c2!"
    | _ ->
        (* two updates hitting one leaf *)
        Sys_.put !sys ~key:k ~value:"up1!";
        Sys_.put !sys ~key:(key_of ((round + 1) mod nkeys)) ~value:"up2!");
    (* Crash with the systematically chosen per-line prefix vector. *)
    let pending = Nvm.Region.pending_writes (Sys_.region !sys) in
    let vec = prefix_vector round pending in
    Sys_.crash_with !sys ~choose:(fun ~line ~nwrites ->
        match Hashtbl.find_opt vec line with
        | Some k -> min k nwrites
        | None -> 0);
    sys := Sys_.recover !sys;
    (* The recovered state must equal the checkpoint model exactly. *)
    Masstree.Tree.validate (Sys_.tree !sys);
    SM.iter
      (fun k v ->
        match Sys_.get !sys ~key:k with
        | Some v' when v' = v -> ()
        | Some v' ->
            Alcotest.failf "round %d: key %S has %S, expected %S" round k v' v
        | None -> Alcotest.failf "round %d: key %S missing" round k)
      !model;
    let card = Masstree.Tree.cardinal (Sys_.tree !sys) in
    if card <> SM.cardinal !model then
      Alcotest.failf "round %d: cardinal %d vs model %d" round card
        (SM.cardinal !model)
    (* The recovery checkpointed; the model is unchanged (all dirty work
       was rolled back), so the loop continues from the same baseline. *)
  done

let incll () = run_rounds ~variant:Sys_.Incll ~rounds:400
let logging () = run_rounds ~variant:Sys_.Logging ~rounds:200

let single_line_torn_states () =
  (* For one update, explicitly enumerate every prefix of every dirty line
     individually (all others at the extremes) — the §4.1.2 single-line
     tear argument, exhaustively. *)
  let explore others =
    let sys0 = Sys_.create ~config:cfg Sys_.Incll in
    let nkeys = 40 in
    for i = 0 to nkeys - 1 do
      Sys_.put sys0 ~key:(key_of i) ~value:(Printf.sprintf "base-%03d" i)
    done;
    Sys_.advance_epoch sys0;
    (* Determine the dirty-line shape of the op on a scout run. *)
    Sys_.put sys0 ~key:(key_of 7) ~value:"upd!";
    let pending = Nvm.Region.pending_writes (Sys_.region sys0) in
    List.iter
      (fun (target_line, n) ->
        for k = 0 to n do
          let sys = Sys_.create ~config:cfg Sys_.Incll in
          for i = 0 to nkeys - 1 do
            Sys_.put sys ~key:(key_of i) ~value:(Printf.sprintf "base-%03d" i)
          done;
          Sys_.advance_epoch sys;
          Sys_.put sys ~key:(key_of 7) ~value:"upd!";
          Sys_.crash_with sys ~choose:(fun ~line ~nwrites ->
              if line = target_line then min k nwrites
              else if others then nwrites
              else 0);
          let sys = Sys_.recover sys in
          for i = 0 to nkeys - 1 do
            match Sys_.get sys ~key:(key_of i) with
            | Some v when v = Printf.sprintf "base-%03d" i -> ()
            | _ ->
                Alcotest.failf
                  "torn line %d prefix %d (others=%b): key %d wrong"
                  target_line k others i
          done
        done)
      pending
  in
  explore false;
  explore true

let tests =
  ( "exhaustive-crash",
    [
      Alcotest.test_case "systematic prefix walk (INCLL)" `Quick incll;
      Alcotest.test_case "systematic prefix walk (LOGGING)" `Quick logging;
      Alcotest.test_case "single-line torn states" `Quick single_line_torn_states;
    ] )
