lib/nvm/layout.mli: Config
