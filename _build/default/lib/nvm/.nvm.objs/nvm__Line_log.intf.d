lib/nvm/line_log.mli: Bytes
