lib/nvm/region.ml: Array Bytes Char Config Line_log List Printf Stats Util
