lib/nvm/config.ml:
