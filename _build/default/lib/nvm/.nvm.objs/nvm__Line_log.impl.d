lib/nvm/line_log.ml: Array Bytes Config
