lib/nvm/stats.ml: Format
