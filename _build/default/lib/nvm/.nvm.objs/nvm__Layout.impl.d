lib/nvm/layout.ml: Config
