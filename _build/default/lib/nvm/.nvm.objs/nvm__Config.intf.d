lib/nvm/config.mli:
