lib/nvm/region.mli: Bytes Config Stats Util
