lib/nvm/image.ml: Bytes Config Fun Int64 Region
