lib/nvm/superblock.ml: Int64 Layout Region
