lib/nvm/image.mli: Config Region
