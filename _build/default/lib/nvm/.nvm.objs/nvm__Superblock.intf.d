lib/nvm/superblock.mli: Region
