(** Pending-write log of one dirty cache line.

    PCSO (§2.1) guarantees that two writes to the same cache line reach NVM
    in program order. The simulator realises this by recording, for every
    dirty line, the program-ordered sequence of stores since the line was
    last written back. On a crash, an arbitrary {e prefix} of that sequence
    is applied to the line's persisted image — independently per line, which
    is exactly the PCSO granularity guarantee and nothing stronger. *)

type t

val create : unit -> t

val count : t -> int
(** Number of pending writes. *)

val payload_bytes : t -> int
(** Total payload bytes retained (used to bound memory via eviction). *)

val append : t -> off:int -> src:Bytes.t -> src_pos:int -> len:int -> unit
(** Record a store of [len] bytes at line-relative offset [off] whose value
    is [src\[src_pos .. src_pos+len-1\]]. *)

val apply_prefix : t -> k:int -> dst:Bytes.t -> dst_pos:int -> unit
(** Apply the first [k] pending writes (in program order) to the persisted
    line image starting at [dst_pos]. [k] may range over [0 .. count]. *)

val clear : t -> unit
