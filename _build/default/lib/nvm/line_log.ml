(* Each entry packs (off:7 bits | len:8 bits | payload_pos:rest) into one
   int; payloads are stored back to back in a growable byte buffer. *)

type t = {
  mutable meta : int array;
  mutable n : int;
  mutable payload : Bytes.t;
  mutable payload_len : int;
}

let create () =
  { meta = Array.make 8 0; n = 0; payload = Bytes.create 64; payload_len = 0 }

let count t = t.n
let payload_bytes t = t.payload_len

let ensure_meta t =
  if t.n = Array.length t.meta then begin
    let meta = Array.make (t.n * 2) 0 in
    Array.blit t.meta 0 meta 0 t.n;
    t.meta <- meta
  end

let ensure_payload t extra =
  let needed = t.payload_len + extra in
  if needed > Bytes.length t.payload then begin
    let cap = ref (Bytes.length t.payload * 2) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let payload = Bytes.create !cap in
    Bytes.blit t.payload 0 payload 0 t.payload_len;
    t.payload <- payload
  end

let append t ~off ~src ~src_pos ~len =
  if off < 0 || len <= 0 || off + len > Config.line_size then
    invalid_arg "Line_log.append: write does not fit in a line";
  ensure_meta t;
  ensure_payload t len;
  t.meta.(t.n) <- off lor (len lsl 7) lor (t.payload_len lsl 15);
  t.n <- t.n + 1;
  Bytes.blit src src_pos t.payload t.payload_len len;
  t.payload_len <- t.payload_len + len

let apply_prefix t ~k ~dst ~dst_pos =
  if k < 0 || k > t.n then invalid_arg "Line_log.apply_prefix";
  for i = 0 to k - 1 do
    let m = Array.unsafe_get t.meta i in
    let off = m land 0x7f in
    let len = (m lsr 7) land 0xff in
    let pos = m lsr 15 in
    Bytes.blit t.payload pos dst (dst_pos + off) len
  done

let clear t =
  t.n <- 0;
  t.payload_len <- 0
