(** Saving and loading the persisted image — the moral equivalent of an
    NVM DIMM keeping its contents across a process restart.

    [save] serialises the {e persisted} view of a region (what a power
    failure would leave behind) to a file; [load] reconstructs a region
    whose persisted and volatile images both equal the file contents, with
    nothing dirty — exactly the state recovery code faces after a reboot.
    This lets examples and the CLI demonstrate real restart-across-process
    durability rather than only in-process crash simulation.

    File format: a 64-byte header (magic, format version, image size,
    checksum) followed by the raw image. *)

val save : Region.t -> path:string -> unit
(** Write the persisted image. The region must be in [Precise] mode. Any
    still-volatile (unflushed) state is {e not} saved — call it after a
    checkpoint, or accept that the saved image is mid-epoch (recovery
    handles both, as with a real crash). *)

val load : Config.t -> path:string -> Region.t
(** Rebuild a region from a saved image. [Config.t] must describe at least
    the saved size; raises [Failure] on a corrupt or mismatching file. *)

val image_size : path:string -> int
(** Size of the image stored at [path] (to build a matching config). *)
