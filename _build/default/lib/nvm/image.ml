let file_magic = 0x1AC1_1F11_EL (* "incll file image" *)
let file_format = 1L
let header_bytes = 64

let checksum bytes =
  (* Cheap rolling checksum over the image; corruption detection only. *)
  let acc = ref 0xcbf29ce484222325L in
  let n = Bytes.length bytes in
  let i = ref 0 in
  while !i + 8 <= n do
    acc := Int64.mul (Int64.logxor !acc (Bytes.get_int64_le bytes !i)) 0x100000001b3L;
    i := !i + 8
  done;
  !acc

let save region ~path =
  let size = Region.size region in
  let image = Bytes.create size in
  (* Read the persisted view word by word via the public API would charge
     the simulated clock; snapshot through the crash-inspection interface
     instead. *)
  for off = 0 to (size / 8) - 1 do
    Bytes.set_int64_le image (off * 8) (Region.read_persisted_i64 region (off * 8))
  done;
  let header = Bytes.make header_bytes '\000' in
  Bytes.set_int64_le header 0 file_magic;
  Bytes.set_int64_le header 8 file_format;
  Bytes.set_int64_le header 16 (Int64.of_int size);
  Bytes.set_int64_le header 24 (checksum image);
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_bytes oc header;
      output_bytes oc image)

let read_header ic =
  let header = Bytes.create header_bytes in
  really_input ic header 0 header_bytes;
  if Bytes.get_int64_le header 0 <> file_magic then
    failwith "Image.load: not an incll image file";
  if Bytes.get_int64_le header 8 <> file_format then
    failwith "Image.load: unsupported image format version";
  let size = Int64.to_int (Bytes.get_int64_le header 16) in
  let sum = Bytes.get_int64_le header 24 in
  (size, sum)

let image_size ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> fst (read_header ic))

let load config ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let size, sum = read_header ic in
      if config.Config.size_bytes < size then
        failwith "Image.load: config smaller than the saved image";
      let image = Bytes.create size in
      really_input ic image 0 size;
      if checksum image <> sum then failwith "Image.load: corrupt image";
      let region = Region.create config in
      (* Install as both views: the machine rebooted with this NVM
         content and a cold, clean cache. *)
      Region.install_image region image;
      region)
