module L = Masstree.Leaf
module I = Masstree.Internal
module EW = Masstree.Epoch_word

let log_leaf_if_needed ctx leaf =
  let region = ctx.Ctx.region in
  let g = Ctx.current ctx in
  let ew = L.epoch_word region leaf in
  if not (ew.EW.logged && ew.EW.epoch = g) then begin
    Ctx.log_node ctx ~addr:leaf ~size:L.node_bytes;
    (* Re-read the epoch: a full-log retry may have advanced it. *)
    L.set_epoch_word region leaf
      { EW.epoch = Ctx.current ctx; ins_allowed = true; logged = true }
  end

let pre_structural ctx nodes =
  let region = ctx.Ctx.region in
  let rec attempt () =
    let e0 = Ctx.current ctx in
    let log_one (addr, size) =
      if addr = Nvm.Layout.off_root then begin
        if
          Int64.to_int (Nvm.Region.read_i64 region Nvm.Layout.off_root_meta)
          <> e0
        then begin
          Ctx.log_node ctx ~addr ~size;
          Nvm.Region.write_i64 region Nvm.Layout.off_root_meta
            (Int64.of_int e0)
        end
      end
      else if L.is_leaf_node region addr then log_leaf_if_needed ctx addr
      else if I.logged_epoch region addr <> e0 then begin
        Ctx.log_node ctx ~addr ~size:I.node_bytes;
        I.set_logged_epoch region addr e0
      end
    in
    List.iter log_one nodes;
    if Ctx.current ctx <> e0 then attempt ()
  in
  attempt ()

(* Replay already restored any logged node; accesses only need to keep the
   epoch marker monotonic so stale logged=true flags from previous runs
   cannot be mistaken for this epoch's. Epochs grow across restarts, so a
   stale marker never equals a current epoch — nothing to do. *)
let on_leaf_access ~leaf:_ = ()

let make ctx =
  {
    Masstree.Hooks.on_leaf_access;
    pre_leaf_insert = (fun ~leaf -> log_leaf_if_needed ctx leaf);
    pre_leaf_remove = (fun ~leaf -> log_leaf_if_needed ctx leaf);
    pre_leaf_update = (fun ~leaf ~slot:_ -> log_leaf_if_needed ctx leaf);
    pre_structural = (fun nodes -> pre_structural ctx nodes);
  }
