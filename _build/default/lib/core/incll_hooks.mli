(** The In-Cache-Line Logging algorithm (§4.1, Listing 3), packaged as the
    Masstree persistence hooks.

    Per leaf modification the hook decides between three outcomes:

    - {b free}: the node was already first-touched this epoch and the
      modification is covered (repeat inserts/removes under InCLLp, or a
      re-update of the slot a value InCLL already logs);
    - {b InCLL}: write the undo copies into the node's own cache lines —
      a release fence but {e no} write-back and {e no} draining fence;
    - {b external log}: fall back to the §4.2 log (one flush chain + one
      fence), for mixed delete-then-insert epochs, a second value update
      landing on a busy line, an InCLL epoch-field overflow, or any
      structural change.

    Store-order obligations implemented here (and checked by the tests):
    within a first touch, [permutationInCLL] and both value InCLLs are
    written {e before} [nodeEpoch]; all four share program order per line,
    which PCSO preserves (§4.1.2). *)

val make : ?val_incll:bool -> Ctx.t -> Masstree.Hooks.t
(** Build the INCLL-variant hooks. [on_leaf_access] performs Listing 4's
    lazy node recovery via {!Recovery.lazy_leaf_recovery}.

    [val_incll:false] is the InCLLp-only ablation (§4.1.3): value updates
    always fall back to the external log while inserts and removes still
    use the permutation InCLL. Default [true]. *)
