module L = Masstree.Leaf
module EW = Masstree.Epoch_word
module V = Masstree.Val_incll

let lazy_leaf_recovery ctx ~leaf =
  let region = ctx.Ctx.region in
  let marker = Epoch.Manager.first_epoch_of_run ctx.Ctx.em in
  let ew = L.epoch_word region leaf in
  if ew.EW.epoch < marker then begin
    (* InCLLp: the permutation restore shares a line with the re-stamp
       below, so if the stamp persists the restore did too. *)
    if Epoch.Manager.is_failed ctx.Ctx.em ew.EW.epoch then
      L.set_perm region leaf (L.perm_incll region leaf);
    (* InCLL1,2: reconstruct each word's full epoch from nodeEpoch's high
       bits (Listing 4). The restore precedes the invalidation in the same
       line, making a torn recovery re-runnable. *)
    let hi = Ctx.higher ew.EW.epoch in
    let restore which =
      let d = V.unpack (L.incll_by_index region leaf ~which) in
      if d.V.idx <> V.invalid_idx then begin
        let e = Epoch.Manager.combine ~higher:hi ~lower16:d.V.low_epoch in
        if Epoch.Manager.is_failed ctx.Ctx.em e then
          L.set_value region leaf ~slot:d.V.idx d.V.ptr
      end;
      L.set_incll_by_index region leaf ~which
        (V.invalid ~low_epoch:(Ctx.lower16 marker))
    in
    restore 0;
    restore 1;
    L.set_epoch_word region leaf
      { EW.epoch = marker; ins_allowed = true; logged = false };
    (* basenode::initlock() — the lock word is transient state that "might
       be in a bad state after crash" (Listing 4). *)
    L.set_version region leaf 0L;
    ctx.Ctx.counters.Ctx.lazy_recoveries <-
      ctx.Ctx.counters.Ctx.lazy_recoveries + 1
  end

let eager_sweep ctx tree dalloc =
  Masstree.Tree.iter_nodes tree
    ~leaf:(fun n -> lazy_leaf_recovery ctx ~leaf:n)
    ~internal:(fun _ -> ());
  Alloc.Durable.recover_all_chains dalloc
