type counters = {
  mutable first_touches : int;
  mutable val_incll_uses : int;
  mutable val_incll_hits : int;
  mutable ext_fallback_mixed : int;
  mutable ext_fallback_update : int;
  mutable ext_fallback_epoch : int;
  mutable ext_structural : int;
  mutable lazy_recoveries : int;
}

type t = {
  region : Nvm.Region.t;
  em : Epoch.Manager.t;
  log : Extlog.Log.t;
  counters : counters;
}

let fresh_counters () =
  {
    first_touches = 0;
    val_incll_uses = 0;
    val_incll_hits = 0;
    ext_fallback_mixed = 0;
    ext_fallback_update = 0;
    ext_fallback_epoch = 0;
    ext_structural = 0;
    lazy_recoveries = 0;
  }

let make em log =
  { region = Epoch.Manager.region em; em; log; counters = fresh_counters () }

let current t = Epoch.Manager.current t.em
let lower16 = Epoch.Manager.lower16
let higher = Epoch.Manager.higher

let rec log_node t ~addr ~size =
  try Extlog.Log.append t.log ~epoch:(current t) ~addr ~size
  with Extlog.Log.Log_full ->
    (* A checkpoint truncates the log; the entry then lands in the new
       epoch, which is also the epoch the pending modification will run
       in (no mutation has happened yet when a pre-hook logs). *)
    Epoch.Manager.advance t.em;
    log_node t ~addr ~size
