lib/core/recovery.mli: Alloc Ctx Masstree
