lib/core/system.ml: Alloc Ctx Epoch Extlog Incll_hooks Logging_hooks Masstree Nvm Option Recovery String Unix
