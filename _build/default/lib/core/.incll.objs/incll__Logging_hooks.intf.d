lib/core/logging_hooks.mli: Ctx Masstree
