lib/core/recovery.ml: Alloc Ctx Epoch Masstree
