lib/core/logging_hooks.ml: Ctx Int64 List Masstree Nvm
