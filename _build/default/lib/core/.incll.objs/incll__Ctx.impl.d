lib/core/ctx.ml: Epoch Extlog Nvm
