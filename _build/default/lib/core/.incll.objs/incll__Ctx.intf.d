lib/core/ctx.mli: Epoch Extlog Nvm
