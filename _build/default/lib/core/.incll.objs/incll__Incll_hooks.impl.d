lib/core/incll_hooks.ml: Ctx Int64 List Masstree Nvm Recovery
