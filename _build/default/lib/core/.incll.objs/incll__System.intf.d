lib/core/system.mli: Alloc Ctx Epoch Masstree Nvm Util
