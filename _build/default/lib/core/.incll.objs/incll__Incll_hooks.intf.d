lib/core/incll_hooks.mli: Ctx Masstree
