(** Crash recovery (§4.3, Listing 4).

    Eager phase (before execution resumes, driven by [System.recover]):
    replay the external log — entries are mutually independent, so order
    does not matter — and restore the allocator metadata lines. Nothing is
    flushed: if recovery crashes, the recovery-marker epoch fails and the
    whole procedure re-runs idempotently.

    Lazy phase (this module): each leaf is restored from its InCLLs on
    first access. Idempotence across repeated crashes rests on two store
    orders, both within single cache lines: the [permutation] restore
    precedes the [nodeEpoch] re-stamp (line 1), and each value restore
    precedes the invalidation of its InCLL word (lines 4/5). Undo copies
    themselves are never overwritten by recovery.

    The paper's hashed recovery-lock array exists to serialise concurrent
    lazy recoveries; with shard-per-domain ownership a leaf is only ever
    recovered by its owning domain, so no locking is needed here. *)

val lazy_leaf_recovery : Ctx.t -> leaf:int -> unit
(** Listing 4's [lazyNodeRecovery]/[nodeRecovery]: if the leaf predates
    this run, restore [permutation] from [permutationInCLL] and any value
    slot whose InCLL epoch names a failed epoch, then re-stamp the node
    with the recovery-marker epoch and re-initialise its (transient)
    version word. *)

val eager_sweep : Ctx.t -> Masstree.Tree.t -> Alloc.Durable.t -> unit
(** Recover {e every} node and allocator chain now instead of lazily. Used
    before compacting the failed-epoch set, and by tests that want a fully
    clean image. *)
