(** The LOGGING baseline of Figures 7 and 8: InCLL disabled, every modified
    node protected by the external log alone.

    A node is logged (whole image, one flush chain + one fence) on its
    first modification in each epoch; the leaf's epoch word doubles as the
    logged-this-epoch marker. Recovery is replay-only, plus a cheap lazy
    re-stamp so markers stay monotonic across restarts. *)

val make : Ctx.t -> Masstree.Hooks.t
