(** The external undo log (§4.2).

    An object-granularity undo log in its own slice of the persistent
    region. When a node must be logged, its {e entire current image} is
    appended and persisted (one [clwb] chain plus one [sfence]) {e before}
    the node is modified. A node is logged at most once per epoch (the
    caller tracks that via the node's logged-epoch field), so entries are
    mutually independent and can be replayed in any order (§4.3).

    The log is logically discarded at every checkpoint: the append cursor is
    transient and truncation resets it to the start, which means the entries
    of the epoch being rolled back always form a contiguous prefix of the
    log area. Each entry carries its epoch and a checksum, so replay applies
    exactly the prefix of intact entries belonging to the crashed epoch and
    stops at the first stale or torn entry. *)

type t

exception Log_full
(** Raised by {!append} when the entry does not fit; the caller reacts by
    forcing a checkpoint (which truncates the log) and retrying. *)

val attach : Nvm.Region.t -> t
(** Attach to the region's log slice with the cursor at the start. Use after
    [create] or at the start of recovery (replay does not need a cursor). *)

val append : t -> epoch:int -> addr:int -> size:int -> unit
(** Log the current image of the object at [addr .. addr+size): copy it into
    the log, write the entry header, flush and fence. [size] must be a
    positive multiple of 8. After [append] returns, the entry is durable. *)

val truncate : t -> epoch:int -> unit
(** Logically discard the log (run from a checkpoint subscriber): reset the
    cursor and durably record [epoch] as the truncation floor, so stale
    entries of older epochs that the new epoch does not overwrite can never
    be replayed. *)

val truncation_epoch : t -> int

val replay : t -> is_failed:(int -> bool) -> int
(** Copy every intact entry belonging to a failed epoch at or above the
    truncation floor back to its home address; returns the number of
    entries applied. Idempotent, and writes are not flushed — if recovery
    crashes, it simply runs again (§4.3). *)

val scan_entries : t -> (epoch:int -> addr:int -> size:int -> unit) -> unit
(** Iterate the intact entry prefix (diagnostics and tests). *)

(** {1 Statistics (Figure 7 measures logged-node counts)} *)

val nodes_logged : t -> int
(** Total successful appends since [attach]. *)

val bytes_logged : t -> int
val capacity : t -> int
val used : t -> int
