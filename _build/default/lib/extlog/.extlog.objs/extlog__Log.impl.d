lib/extlog/log.ml: Int64 Nvm
