lib/extlog/log.mli: Nvm
