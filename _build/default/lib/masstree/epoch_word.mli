(** The InCLLp control word (§4.1.1): [nodeEpoch] plus the two transient
    booleans, packed into the word at leaf offset 64:

    {v | logged (1) | insAllowed (1) | nodeEpoch (62) | v}

    [insAllowed] and [logged] are "semantically transient and do not
    require persistence ordering" (§4.1.2) — recovery never trusts them —
    so sharing the epoch's word costs nothing. *)

type decoded = { epoch : int; ins_allowed : bool; logged : bool }

val pack : epoch:int -> ins_allowed:bool -> logged:bool -> int64
val unpack : int64 -> decoded
