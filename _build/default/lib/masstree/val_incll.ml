type decoded = { ptr : int; idx : int; low_epoch : int }

let invalid_idx = 15

let pack ~ptr ~idx ~low_epoch =
  if ptr land 15 <> 0 then invalid_arg "Val_incll.pack: unaligned pointer";
  if idx < 0 || idx > 15 then invalid_arg "Val_incll.pack: bad idx";
  let open Int64 in
  logor
    (of_int (idx land 0xf))
    (logor
       (shift_left (of_int (ptr lsr 4)) 4)
       (shift_left (of_int (low_epoch land 0xffff)) 48))

let unpack w =
  {
    idx = Util.Bits.get_int w ~lo:0 ~width:4;
    ptr = Util.Bits.get_int w ~lo:4 ~width:44 lsl 4;
    low_epoch = Util.Bits.get_int w ~lo:48 ~width:16;
  }

let invalid ~low_epoch = pack ~ptr:0 ~idx:invalid_idx ~low_epoch

let is_invalid w = (unpack w).idx = invalid_idx
