type t = int64

let width = 14

let get_nibble p i = Util.Bits.get_int p ~lo:(4 * i) ~width:4
let set_nibble p i v = Util.Bits.set_int p ~lo:(4 * i) ~width:4 v

let count p = get_nibble p 0
let slot_at_rank p rank = get_nibble p (rank + 1)
let set_rank p rank slot = set_nibble p (rank + 1) slot
let with_count p c = set_nibble p 0 c

let empty =
  let rec fill p i = if i >= width then p else fill (set_rank p i i) (i + 1) in
  fill 0L 0

let is_full p = count p >= width

let insert p ~rank =
  let c = count p in
  if c >= width then invalid_arg "Permutation.insert: full";
  if rank < 0 || rank > c then invalid_arg "Permutation.insert: bad rank";
  (* The slot at rank [c] is the first free slot; rotate it down to [rank]. *)
  let slot = slot_at_rank p c in
  let p' = ref p in
  for i = c downto rank + 1 do
    p' := set_rank !p' i (slot_at_rank !p' (i - 1))
  done;
  let p' = set_rank !p' rank slot in
  (with_count p' (c + 1), slot)

let remove p ~rank =
  let c = count p in
  if rank < 0 || rank >= c then invalid_arg "Permutation.remove: bad rank";
  let slot = slot_at_rank p rank in
  let p' = ref p in
  for i = rank to c - 2 do
    p' := set_rank !p' i (slot_at_rank !p' (i + 1))
  done;
  (* The freed slot becomes the first free slot (rank c-1 after shrink). *)
  let p' = set_rank !p' (c - 1) slot in
  (with_count p' (c - 1), slot)

let active_slots p = List.init (count p) (fun i -> slot_at_rank p i)

let free_slots p =
  List.init (width - count p) (fun i -> slot_at_rank p (count p + i))

let is_valid p =
  let c = count p in
  c <= width
  &&
  let seen = Array.make width false in
  let ok = ref true in
  for i = 0 to width - 1 do
    let s = slot_at_rank p i in
    if s >= width || seen.(s) then ok := false else seen.(s) <- true
  done;
  !ok

let pp ppf p =
  Format.fprintf ppf "{count=%d; active=[%s]; free=[%s]}" (count p)
    (String.concat ";" (List.map string_of_int (active_slots p)))
    (String.concat ";" (List.map string_of_int (free_slots p)))
