(** Persistence hooks: the seam between the Masstree substrate and the
    paper's durability machinery.

    The tree calls a hook {e before} each class of modification (and on
    each leaf access, for lazy recovery). The [incll] library provides the
    implementations: Listing 3 for the INCLL variant, log-everything for
    the LOGGING variant, and {!transient} no-ops for MT / MT+. Keeping the
    tree code hook-parameterised is what makes the paper's ablations
    (Figures 7/8, §6.1) single-switch experiments.

    Contract the tree upholds:
    - [on_leaf_access] runs before any field of a leaf is read;
    - [pre_*] hooks run before the corresponding mutation, and the hook may
      itself write to the node (InCLL updates) or to the external log;
    - for structural changes, {e all} pre-existing nodes about to be
      mutated are announced in one [pre_structural] call before any of
      them is touched (freshly allocated nodes are exempt — epoch rollback
      reclaims them via the allocator); a hook may force a checkpoint
      internally (e.g. on a full log), so the tree must not cache epoch
      numbers across a hook call. *)

type t = {
  on_leaf_access : leaf:int -> unit;
      (** Lazy recovery check (Listing 4's [lazyNodeRecovery]). *)
  pre_leaf_insert : leaf:int -> unit;
      (** Before activating a free slot (writes keys/vals/permutation). *)
  pre_leaf_remove : leaf:int -> unit;
      (** Before deactivating a slot (writes permutation only). *)
  pre_leaf_update : leaf:int -> slot:int -> unit;
      (** Before overwriting [vals\[slot\]]. *)
  pre_structural : (int * int) list -> unit;
      (** Before a split or root change mutates the listed pre-existing
          [(address, size)] objects (tree nodes and/or the superblock root
          line). *)
}

val transient : t
(** No-op hooks: the MT / MT+ baselines. *)
