lib/masstree/hooks.mli:
