lib/masstree/val_incll.ml: Int64 Util
