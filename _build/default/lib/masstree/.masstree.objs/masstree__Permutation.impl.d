lib/masstree/permutation.ml: Array Format List String Util
