lib/masstree/val_incll.mli:
