lib/masstree/permutation.mli: Format
