lib/masstree/leaf.mli: Alloc Epoch_word Nvm Permutation
