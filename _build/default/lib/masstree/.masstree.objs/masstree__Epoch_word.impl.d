lib/masstree/epoch_word.ml: Int64 Util
