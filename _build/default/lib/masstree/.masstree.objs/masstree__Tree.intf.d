lib/masstree/tree.mli: Alloc Hooks Nvm
