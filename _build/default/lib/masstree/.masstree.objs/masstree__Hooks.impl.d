lib/masstree/hooks.ml:
