lib/masstree/internal.mli: Alloc Nvm
