lib/masstree/leaf.ml: Alloc Epoch_word Int64 Key Nvm Permutation Util Val_incll
