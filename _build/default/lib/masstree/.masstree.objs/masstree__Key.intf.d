lib/masstree/key.mli:
