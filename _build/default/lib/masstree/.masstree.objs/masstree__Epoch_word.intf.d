lib/masstree/epoch_word.mli:
