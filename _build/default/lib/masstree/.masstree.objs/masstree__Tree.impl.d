lib/masstree/tree.ml: Alloc Bytes Hooks Int64 Internal Key Leaf List Nvm Option Permutation Printf String
