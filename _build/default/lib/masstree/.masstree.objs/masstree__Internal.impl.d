lib/masstree/internal.ml: Alloc Int64 Key Nvm Util
