lib/masstree/key.ml: Char Int64 String
