(** The packed value-InCLL word (§4.1.3, Listing 2's [ValInCLL]).

    One 64-bit word logs one value-pointer overwrite:

    {v
    | lowNodeEpoch (16) | pointer>>4 (44) | idx (4) |
     63               48 47             4 3        0
    v}

    The paper steals the canonical-form upper bits of an x64 pointer and
    the low bits guaranteed by 16-byte alignment; our region offsets are
    16-byte aligned and far below 2^48, so the same packing applies. [idx]
    identifies which of the seven value slots sharing the cache line was
    logged; 15 ([invalid_idx]) means "unused". The 16 epoch bits combine
    with the high bits of the node's [nodeEpoch] (§4.1.3). *)

type decoded = { ptr : int; idx : int; low_epoch : int }

val invalid_idx : int

val pack : ptr:int -> idx:int -> low_epoch:int -> int64
val unpack : int64 -> decoded

val invalid : low_epoch:int -> int64
(** An unused InCLL stamped with the epoch's low bits. *)

val is_invalid : int64 -> bool
