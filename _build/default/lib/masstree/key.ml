type slice = { bits : int64; len : int }

let layer_link_len = 15
let suffix_len_marker = 9

let slice_at key ~layer =
  let off = 8 * layer in
  let klen = String.length key in
  if off > klen then invalid_arg "Key.slice_at: layer beyond key";
  let len = min 8 (klen - off) in
  let bits = ref 0L in
  for i = 0 to len - 1 do
    bits :=
      Int64.logor
        (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code key.[off + i]))
  done;
  (* Left-align: pad the low bytes with zeros so shorter slices compare as
     prefixes. *)
  { bits = Int64.shift_left !bits (8 * (8 - len)); len }

let has_suffix key ~layer = String.length key > 8 * (layer + 1)

let suffix key ~layer =
  let off = 8 * (layer + 1) in
  String.sub key off (String.length key - off)

let compare_slices = Int64.unsigned_compare

let compare_entry s1 l1 s2 l2 =
  let c = compare_slices s1 s2 in
  if c <> 0 then c else compare (l1 : int) l2

let bytes_of_slice bits ~len =
  String.init len (fun i ->
      Char.chr
        (Int64.to_int
           (Int64.logand (Int64.shift_right_logical bits (8 * (7 - i))) 0xffL)))

let of_int64 v = bytes_of_slice v ~len:8

let to_int64 s =
  if String.length s <> 8 then invalid_arg "Key.to_int64: need 8 bytes";
  (slice_at s ~layer:0).bits
