(** Masstree internal (interior) node: a classic sorted B+-tree node.

    Internal nodes are {e always} protected by the external log (§4.2,
    §6.1 — applying InCLL to them narrowed the nodes and lost performance),
    so their layout needs no embedded logs; it only carries a
    [loggedEpoch] word so a node is logged at most once per epoch (§4.2).

    Layout (384 bytes, cache-line aligned like leaves):

    {v
    line 0 (  0- 63): version | loggedEpoch | flags | nkeys | reserved
    lines 1-2 ( 64-183): keys[0..14]
    lines 3-4 (192-319): children[0..15]
    v}

    Width 15 keys / 16 children, the stock Masstree fanout. Key [i]
    separates child [i] (keys < key[i]) from child [i+1] (keys >= key[i]).
    Separators are 8-byte slices only: splits never cut between two entries
    of the same slice, so slice routing is unambiguous. *)

val width : int
val node_bytes : int

val off_logged_epoch : int
val off_nkeys : int

val create : Alloc.Api.t -> Nvm.Region.t -> layer:int -> int

val nkeys : Nvm.Region.t -> int -> int
val set_nkeys : Nvm.Region.t -> int -> int -> unit
val key : Nvm.Region.t -> int -> i:int -> int64
val set_key : Nvm.Region.t -> int -> i:int -> int64 -> unit
val child : Nvm.Region.t -> int -> i:int -> int
val set_child : Nvm.Region.t -> int -> i:int -> int -> unit
val logged_epoch : Nvm.Region.t -> int -> int
val set_logged_epoch : Nvm.Region.t -> int -> int -> unit
val layer : Nvm.Region.t -> int -> int

val search_child : Nvm.Region.t -> int -> slice:int64 -> int
(** Index of the child to descend into for [slice]. *)

val insert_separator :
  Nvm.Region.t -> int -> at:int -> sep:int64 -> right:int -> unit
(** Insert separator [sep] at key index [at] with [right] as the child to
    its right, shifting later keys/children. The node must not be full and
    must already be logged by the caller. *)

val is_full : Nvm.Region.t -> int -> bool

val remove_child : Nvm.Region.t -> int -> i:int -> unit
(** Drop child [i] and the separator between it and its neighbour,
    shifting later keys/children. Leaves the node with [nkeys - 1] keys —
    possibly zero, in which case the caller splices the single remaining
    child into the grandparent. The node must already be logged. *)
