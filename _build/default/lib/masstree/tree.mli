(** The Masstree ordered map (§2.2): a trie of B+ trees over the simulated
    NVM region, parameterised by allocator and persistence hooks.

    Keys are arbitrary byte strings, consumed 8 bytes per trie layer; keys
    that share a full 8-byte slice descend into a nested layer whose root
    is stored as the link slot's value. Values are byte strings stored in
    allocator-managed NVM buffers (a length word followed by the bytes).

    A tree is single-writer (the sharded store gives each domain its own
    tree); durability is entirely delegated to the {!Hooks.t}
    implementation, so the same code runs as transient MT/MT+ or as the
    durable LOGGING/INCLL variants.

    Like stock Masstree, a key's bytes past its slice are kept as an
    inline suffix (ksuf) in the entry's buffer; a nested layer is created
    only when two long keys collide on a full 8-byte slice (the suffix
    entry is then converted, under external logging, into a link to a
    fresh layer holding both). And like stock Masstree, nodes that empty
    are removed (no rebalancing merges): an emptied leaf is unlinked from
    its sibling chain and parent; a parent reduced to one child is spliced
    out; a nested layer whose root collapses to an empty leaf is pruned
    from the layer above. *)

type t

val max_value_bytes : int

val create :
  Nvm.Region.t ->
  Alloc.Api.t ->
  Hooks.t ->
  current_epoch:(unit -> int) ->
  t
(** Build an empty tree on a formatted region: allocates the root leaf and
    durably records it in the superblock root line. *)

val open_existing :
  Nvm.Region.t ->
  Alloc.Api.t ->
  Hooks.t ->
  current_epoch:(unit -> int) ->
  t
(** Attach to the tree recorded in the superblock (after recovery). *)

val region : t -> Nvm.Region.t
val root : t -> int

(** {1 Operations} *)

val put : t -> key:string -> value:string -> unit
(** Insert, or overwrite the value of an existing key. *)

val get : t -> key:string -> string option
val mem : t -> key:string -> bool

val remove : t -> key:string -> bool
(** Returns whether the key was present. *)

val fold_from : t -> start:string -> f:(string -> string -> bool) -> unit
(** In-order traversal of all keys [>= start]; [f key value] returns
    whether to continue. *)

val scan : t -> start:string -> n:int -> (string * string) list
(** The YCSB-E operation: up to [n] consecutive key-value pairs starting at
    the smallest key [>= start]. *)

val fold_back : t -> ?bound:string -> f:(string -> string -> bool) -> unit -> unit
(** Reverse in-order traversal of keys [<= bound] (all keys when [bound]
    is omitted); [f] returns whether to continue. Walks the [prev] links
    of the leaf chain. *)

val scan_rev : t -> ?bound:string -> n:int -> unit -> (string * string) list
(** Up to [n] pairs in descending order from the largest key [<= bound]
    (from the maximum when [bound] is omitted). *)

val cardinal : t -> int
val iter : t -> (string -> string -> unit) -> unit

(** {1 Introspection (tests, recovery sweeps, benchmarks)} *)

val validate : t -> unit
(** Walk the whole structure checking ordering, permutation validity,
    separator bounds and layer tagging; raises [Failure] on violation. *)

val iter_nodes : t -> leaf:(int -> unit) -> internal:(int -> unit) -> unit
(** Visit every node of every layer (used by the eager recovery sweep).
    Does {e not} run access hooks. *)

type op_stats = {
  mutable puts : int;
  mutable inserts : int;
  mutable updates : int;
  mutable gets : int;
  mutable removes : int;
  mutable scans : int;
  mutable leaf_splits : int;
  mutable internal_splits : int;
  mutable root_splits : int;
  mutable layer_creations : int;
  mutable leaf_removals : int;
  mutable internal_splices : int;
  mutable root_collapses : int;
  mutable layer_prunes : int;
}

val stats : t -> op_stats
