type t = {
  on_leaf_access : leaf:int -> unit;
  pre_leaf_insert : leaf:int -> unit;
  pre_leaf_remove : leaf:int -> unit;
  pre_leaf_update : leaf:int -> slot:int -> unit;
  pre_structural : (int * int) list -> unit;
}

let transient =
  {
    on_leaf_access = (fun ~leaf:_ -> ());
    pre_leaf_insert = (fun ~leaf:_ -> ());
    pre_leaf_remove = (fun ~leaf:_ -> ());
    pre_leaf_update = (fun ~leaf:_ ~slot:_ -> ());
    pre_structural = (fun _ -> ());
  }
