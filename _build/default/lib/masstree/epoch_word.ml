type decoded = { epoch : int; ins_allowed : bool; logged : bool }

let pack ~epoch ~ins_allowed ~logged =
  let open Int64 in
  logor
    (logand (of_int epoch) (Util.Bits.mask 62))
    (logor
       (if ins_allowed then shift_left 1L 62 else 0L)
       (if logged then shift_left 1L 63 else 0L))

let unpack w =
  {
    epoch = Util.Bits.get_int w ~lo:0 ~width:62;
    ins_allowed = Util.Bits.get w ~lo:62 ~width:1 = 1L;
    logged = Util.Bits.get w ~lo:63 ~width:1 = 1L;
  }
