(** Masstree's 64-bit [permutation] field (§2.2).

    One word encodes both which leaf slots are occupied and the sorted
    order of the occupied slots:

    {v
    bits 0..3     : count of active entries
    bits 4(i+1).. : 4-bit slot index at sorted rank i
    v}

    The first [count] ranks are the active slots in key order; the
    remaining ranks hold the free slots. Insertion takes the free slot at
    rank [count] and rotates it into place; deletion rotates a slot out
    into the free section. Both are single-word updates — that is what lets
    the paper undo {e any} number of same-epoch inserts and deletes by
    restoring this one word from [permutationInCLL] (§4.1.1).

    Width may be at most 15 (14 for the durable leaf, which gives one slot
    up to the two value InCLLs). All functions are pure. *)

type t = int64

val width : int
(** 14, the durable leaf width (§4.1). *)

val empty : t
(** No active entries; free slots in ascending order. *)

val count : t -> int
val slot_at_rank : t -> int -> int
(** Slot index stored at sorted rank [i] ([0 <= i < width]; ranks at or
    beyond [count] are free slots). *)

val is_full : t -> bool

val insert : t -> rank:int -> t * int
(** Activate a free slot at sorted rank [rank] (shifting later ranks);
    returns the new permutation and the slot chosen. The permutation must
    not be full, and [0 <= rank <= count]. *)

val remove : t -> rank:int -> t * int
(** Deactivate the slot at rank [rank]; it becomes the first free slot.
    Returns the new permutation and the freed slot. *)

val active_slots : t -> int list
(** Slots in sorted order (testing aid). *)

val free_slots : t -> int list

val is_valid : t -> bool
(** The 15 slot values are a permutation of [0..width-1] and
    [count <= width] (testing aid). *)

val pp : Format.formatter -> t -> unit
