(** Durable Masstree leaf node: layout accessors (Figure 1, Listing 2).

    A leaf is a 384-byte, cache-line-aligned NVM object of six lines:

    {v
    line 0 (  0- 63): version | next | flags | prev | reserved
    line 1 ( 64-127): epochWord(InCLLp) | permutationInCLL | permutation | keys[0..4]
    line 2 (128-191): keys[5..12]
    line 3 (192-255): keys[13] | keylen[0..13] | reserved
    line 4 (256-319): InCLL1 | vals[0..6]
    line 5 (320-383): vals[7..13] | InCLL2
    v}

    Line 1 co-locates [nodeEpoch], [permutationInCLL] and [permutation] —
    the ordering invariant of §4.1.2 depends on it. Lines 4/5 place each
    value InCLL in the same line as the seven value slots it can log
    (§4.1.3). This module is pure layout: the InCLL {e algorithm} lives in
    the [incll] library's hooks.

    Width is 14 (one key/value fewer than stock Masstree — the price of the
    two value InCLLs, §4.1). *)

val width : int
val node_bytes : int

(** {1 Field offsets (for white-box tests and the recovery code)} *)

val off_version : int
val off_next : int
val off_flags : int
val off_prev : int
val off_epoch_word : int
val off_perm_incll : int
val off_perm : int
val key_off : int -> int
val keylen_off : int -> int
val val_off : int -> int
val incll_off : int -> int
(** The InCLL word covering value slot [i]: offset 256 for slots 0–6, 376
    for slots 7–13. *)

val incll1_off : int
val incll2_off : int

val create :
  Alloc.Api.t -> Nvm.Region.t -> layer:int -> epoch:int -> int
(** Allocate and initialise an empty leaf: empty permutation, InCLLp
    stamped with [epoch], both value InCLLs invalid. Returns the node
    address (64-byte aligned). *)

(** {1 Accessors} *)

val version : Nvm.Region.t -> int -> int64
val set_version : Nvm.Region.t -> int -> int64 -> unit
val next : Nvm.Region.t -> int -> int
val set_next : Nvm.Region.t -> int -> int -> unit
val prev : Nvm.Region.t -> int -> int
val set_prev : Nvm.Region.t -> int -> int -> unit
val layer : Nvm.Region.t -> int -> int
val is_leaf_node : Nvm.Region.t -> int -> bool
(** Discriminate leaf from internal via the flags word (shared offset). *)

val epoch_word : Nvm.Region.t -> int -> Epoch_word.decoded
val set_epoch_word : Nvm.Region.t -> int -> Epoch_word.decoded -> unit
val perm_incll : Nvm.Region.t -> int -> Permutation.t
val set_perm_incll : Nvm.Region.t -> int -> Permutation.t -> unit
val perm : Nvm.Region.t -> int -> Permutation.t
val set_perm : Nvm.Region.t -> int -> Permutation.t -> unit

val key : Nvm.Region.t -> int -> slot:int -> int64
val set_key : Nvm.Region.t -> int -> slot:int -> int64 -> unit
val keylen : Nvm.Region.t -> int -> slot:int -> int
val set_keylen : Nvm.Region.t -> int -> slot:int -> int -> unit
val value : Nvm.Region.t -> int -> slot:int -> int
val set_value : Nvm.Region.t -> int -> slot:int -> int -> unit

val incll : Nvm.Region.t -> int -> slot:int -> int64
(** The InCLL word covering [slot]'s cache line. *)

val set_incll : Nvm.Region.t -> int -> slot:int -> int64 -> unit
val incll_by_index : Nvm.Region.t -> int -> which:int -> int64
(** [which] is 0 (InCLL1) or 1 (InCLL2). *)

val set_incll_by_index : Nvm.Region.t -> int -> which:int -> int64 -> unit

(** {1 Search} *)

type lookup = Found of int | Insert_before of int
(** Rank-space result of a leaf search. *)

val find : Nvm.Region.t -> int -> slice:int64 -> keylen:int -> lookup
(** Binary search over the permutation's sorted ranks by
    [(slice, keylen)]. *)

val entry_count : Nvm.Region.t -> int -> int
