(** Masstree keys: arbitrary byte strings, consumed 8 bytes per trie layer
    (§2.2).

    At layer [l] a key contributes a {e slice} — its bytes
    [8l .. 8l+7] packed big-endian into an [int64] (zero-padded) — plus the
    number of key bytes the slice actually covers. Keys that extend past a
    layer descend into the next layer with the remaining suffix.

    In-leaf ordering is by [(slice unsigned, keylen)], with the
    layer-link marker sorting after every terminal length; because slices
    are big-endian and zero-padded, this coincides with lexicographic byte
    order of the full keys. *)

type slice = { bits : int64; len : int }
(** [len] is the number of key bytes in this slice (0–8); [len = 8] with
    remaining bytes means the key continues in the next layer. *)

val layer_link_len : int
(** Sentinel keylen (15) marking a slot whose value is the next-layer
    root. *)

val suffix_len_marker : int
(** Sentinel keylen (9) marking a slot whose key continues past the slice
    with a suffix stored inline in the value buffer (Masstree's ksuf). It
    sorts after a full 8-byte terminal and before a layer link, matching
    the fact that suffixed keys are longer than their slice. At most one
    of a suffix entry / a link entry exists per slice: a second long key
    on the same slice converts the suffix entry into a nested layer. *)

val slice_at : string -> layer:int -> slice
(** Slice of [key] at trie depth [layer] (8-byte granularity). *)

val has_suffix : string -> layer:int -> bool
(** True when the key extends beyond this layer's 8 bytes. *)

val suffix : string -> layer:int -> string
(** Remaining bytes after this layer (only when [has_suffix]). *)

val compare_slices : int64 -> int64 -> int
(** Unsigned 64-bit comparison (big-endian packing makes this byte order). *)

val compare_entry : int64 -> int -> int64 -> int -> int
(** [(slice, keylen)] ordering used inside a leaf. *)

val bytes_of_slice : int64 -> len:int -> string
(** Recover the raw bytes of a slice (for key reconstruction in scans). *)

val of_int64 : int64 -> string
(** 8-byte big-endian key from an integer (benchmark keys). *)

val to_int64 : string -> int64
(** Inverse of {!of_int64}; the string must be exactly 8 bytes. *)
