lib/bench_harness/runner.mli: Incll Workload
