lib/bench_harness/runner.ml: Array Domain Epoch Float Incll List Nvm Store Unix Util Workload
