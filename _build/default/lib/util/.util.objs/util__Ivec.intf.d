lib/util/ivec.mli:
