lib/util/bits.mli:
