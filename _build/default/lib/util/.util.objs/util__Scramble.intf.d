lib/util/scramble.mli:
