lib/util/scramble.ml: Int64
