lib/util/table.mli:
