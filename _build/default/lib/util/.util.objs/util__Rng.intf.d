lib/util/rng.mli:
