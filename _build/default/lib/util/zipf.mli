(** Zipfian key-popularity distribution, YCSB-compatible.

    The paper's skewed workloads draw keys "according to a zipfian
    distribution with a skew parameter of 0.99" (§6). This is the standard
    YCSB generator (Gray et al., "Quickly generating billion-record synthetic
    databases"), which produces ranks in [\[0, n)] where rank 0 is the most
    popular item. *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] prepares a generator over [n] items with skew
    [theta] (the paper uses 0.99). [n] must be positive and [theta] must be
    in (0, 1). The zeta constant is computed eagerly in O(n). *)

val n : t -> int
(** Number of items. *)

val next : t -> Rng.t -> int
(** [next t rng] samples a rank in [\[0, n)]. *)
