type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 8) () = { data = Array.make (max capacity 1) 0; len = 0 }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ivec.get";
  Array.unsafe_get t.data i

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Ivec.set";
  Array.unsafe_set t.data i v

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (cap * 2) 0 in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t v =
  if t.len = Array.length t.data then grow t;
  Array.unsafe_set t.data t.len v;
  t.len <- t.len + 1

let clear t = t.len <- 0

let swap_remove t i =
  if i < 0 || i >= t.len then invalid_arg "Ivec.swap_remove";
  t.len <- t.len - 1;
  if i < t.len then begin
    let last = Array.unsafe_get t.data t.len in
    Array.unsafe_set t.data i last;
    last
  end
  else -1

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (get t i :: acc) in
  loop (t.len - 1) []
