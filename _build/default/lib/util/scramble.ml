let fmix64 k =
  let open Int64 in
  let k = logxor k (shift_right_logical k 33) in
  let k = mul k 0xFF51AFD7ED558CCDL in
  let k = logxor k (shift_right_logical k 33) in
  let k = mul k 0xC4CEB9FE1A85EC53L in
  logxor k (shift_right_logical k 33)

(* Multiplicative inverses of the fmix64 constants modulo 2^64. *)
let inv1 = 0x4F74430C22A54005L
let inv2 = 0x9CB4B2F8129337DBL

let unxorshift k shift =
  (* Invert k ^ (k >>> shift) for shift >= 32 (single step suffices). *)
  Int64.logxor k (Int64.shift_right_logical k shift)

let unfmix64 k =
  let open Int64 in
  let k = unxorshift k 33 in
  let k = mul k inv2 in
  let k = unxorshift k 33 in
  let k = mul k inv1 in
  unxorshift k 33

let key_of_rank r = fmix64 (Int64.of_int r)
