(** Deterministic, fast pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    experiment, test and crash injection is reproducible from a single seed.
    The generator is xoshiro256** (Blackman & Vigna), seeded through
    splitmix64 so that consecutive integer seeds yield uncorrelated
    streams. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator deterministically from [seed]. *)

val split : t -> t
(** [split t] derives a new, independent generator from [t] (advances [t]). *)

val copy : t -> t
(** [copy t] duplicates the current state (both copies produce the same
    subsequent stream). *)

val next64 : t -> int64
(** Next 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int64_nonneg : t -> int64
(** Uniform non-negative int64 (63 random bits). *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val bool : t -> bool
(** Uniform boolean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
