(** Key scrambling.

    §6: "Keys are scrambled by computing a hash of their values, so that
    frequent keys do not (necessarily) appear in close proximity." This is
    the 64-bit finalizer of MurmurHash3 (fmix64), an invertible mixing
    function, so distinct logical keys map to distinct scrambled keys. *)

val fmix64 : int64 -> int64
(** Invertible 64-bit mix. *)

val unfmix64 : int64 -> int64
(** Inverse of {!fmix64} (used in tests to prove invertibility). *)

val key_of_rank : int -> int64
(** [key_of_rank r] is the scrambled 8-byte key for logical key [r]. *)
