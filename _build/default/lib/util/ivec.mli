(** Growable integer vector (OCaml 5.1's stdlib has no [Dynarray] yet).

    Used on the NVM simulator's hot paths (dirty-line lists, pending-write
    logs), so it is unboxed and allocation-light. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit
val push : t -> int -> unit
val clear : t -> unit
(** Drops all elements (keeps capacity). *)

val swap_remove : t -> int -> int
(** [swap_remove t i] removes index [i] in O(1) by moving the last element
    into its place; returns the element that now lives at [i] (or [-1] if
    [i] became out of range). *)

val iter : (int -> unit) -> t -> unit
val to_list : t -> int list
