(** Bit-field packing helpers over [int64].

    The InCLL encodings (§4.1.3, §5.1) pack an index, a 44-bit pointer and a
    16-bit epoch fragment into single 64-bit words. These helpers keep that
    packing readable and testable. Bit 0 is the least significant bit. *)

val mask : int -> int64
(** [mask w] is a word with the low [w] bits set ([0 <= w <= 64]). *)

val get : int64 -> lo:int -> width:int -> int64
(** [get x ~lo ~width] extracts bits [lo .. lo+width-1] of [x],
    right-aligned. *)

val set : int64 -> lo:int -> width:int -> int64 -> int64
(** [set x ~lo ~width v] returns [x] with bits [lo .. lo+width-1] replaced by
    the low [width] bits of [v]. *)

val get_int : int64 -> lo:int -> width:int -> int
(** Like {!get} but returns an [int]; [width] must be at most 62. *)

val set_int : int64 -> lo:int -> width:int -> int -> int64
(** Like {!set} with an [int] payload. *)

val popcount : int64 -> int
(** Number of set bits. *)
