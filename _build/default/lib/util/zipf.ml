type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  zeta2 : float;
}

let zeta n theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !sum

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta <= 0.0 || theta >= 1.0 then
    invalid_arg "Zipf.create: theta must be in (0, 1)";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { n; theta; alpha; zetan; eta; zeta2 = zeta2 }

let n t = t.n

let next t rng =
  let u = Rng.float rng in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 t.theta then 1
  else begin
    let rank =
      float_of_int t.n
      *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
    in
    let rank = int_of_float rank in
    if rank >= t.n then t.n - 1 else if rank < 0 then 0 else rank
  end
