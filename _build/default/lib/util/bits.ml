let mask w =
  if w < 0 || w > 64 then invalid_arg "Bits.mask";
  if w = 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

let get x ~lo ~width =
  Int64.logand (Int64.shift_right_logical x lo) (mask width)

let set x ~lo ~width v =
  let m = Int64.shift_left (mask width) lo in
  let v = Int64.shift_left (Int64.logand v (mask width)) lo in
  Int64.logor (Int64.logand x (Int64.lognot m)) v

let get_int x ~lo ~width =
  if width > 62 then invalid_arg "Bits.get_int: width too large";
  Int64.to_int (get x ~lo ~width)

let set_int x ~lo ~width v = set x ~lo ~width (Int64.of_int v)

let popcount x =
  let rec loop x acc =
    if x = 0L then acc
    else loop (Int64.logand x (Int64.sub x 1L)) (acc + 1)
  in
  loop x 0
