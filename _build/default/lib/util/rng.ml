type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand the seed into the xoshiro state, as
   recommended by the xoshiro authors. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  (* xoshiro must not start from the all-zero state. *)
  let s3 = if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then 1L else s3 in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tshift = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tshift;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (next64 t) in
  create ~seed

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int64_nonneg t = Int64.shift_right_logical (next64 t) 1

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let max64 = Int64.max_int in
  let limit = Int64.sub max64 (Int64.rem max64 bound64) in
  let rec loop () =
    let r = int64_nonneg t in
    if r >= limit then loop () else Int64.to_int (Int64.rem r bound64)
  in
  loop ()

let float t =
  let bits53 = Int64.shift_right_logical (next64 t) 11 in
  Int64.to_float bits53 *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
