exception Heap_full

type t = {
  region : Nvm.Region.t;
  em : Epoch.Manager.t;
  heap_end : int;
  limbo_tails : int array;  (* transient; 0 = unknown/empty *)
  mutable allocs : int;
  mutable deallocs : int;
  mutable freelist_allocs : int;
  mutable bump_allocs : int;
}

let allocs t = t.allocs
let deallocs t = t.deallocs
let freelist_allocs t = t.freelist_allocs
let bump_allocs t = t.bump_allocs

let bump_line = Nvm.Layout.off_bump
let free_line cls = Nvm.Layout.alloc_class_free_line cls
let limbo_line cls = Nvm.Layout.alloc_class_limbo_line cls

let bump_position t = Meta_line.head t.region ~line:bump_line

let current t = Epoch.Manager.current t.em
let marker t = Epoch.Manager.first_epoch_of_run t.em

(* Lazy chunk-header recovery (§5.1): restore [next] from [nextInCLL] when
   the header's counters are torn or its epoch failed. *)
let recover_chunk t chunk =
  let d = Chunk_header.read t.region ~chunk in
  if not d.Chunk_header.ctr_matches then
    Chunk_header.restore t.region ~chunk ~marker_epoch:(marker t)
  else if
    d.Chunk_header.epoch < marker t
    && Epoch.Manager.is_failed t.em d.Chunk_header.epoch
  then Chunk_header.restore t.region ~chunk ~marker_epoch:(marker t)

let chunk_next t chunk =
  recover_chunk t chunk;
  (Chunk_header.read t.region ~chunk).Chunk_header.next

(* First-touch discipline before modifying a chunk's [next] in this epoch. *)
let touch_chunk t chunk =
  recover_chunk t chunk;
  let d = Chunk_header.read t.region ~chunk in
  if d.Chunk_header.epoch <> current t then
    Chunk_header.write_first_touch t.region ~chunk
      ~current_next:d.Chunk_header.next ~epoch:(current t)
      ~cls:d.Chunk_header.size_class

let set_meta_head t ~line v =
  Meta_line.touch t.region ~line ~epoch:(current t);
  Meta_line.set_head t.region ~line v

(* Checkpoint subscriber: splice each limbo list onto its free list. Runs
   inside the new epoch, so every store is first-touch logged and a crash
   rolls the merge back atomically with the rest of the epoch. *)
let merge_limbo t () =
  for cls = 0 to Size_class.count - 1 do
    let lhead = Meta_line.head t.region ~line:(limbo_line cls) in
    if lhead <> 0 then begin
      let tail =
        if t.limbo_tails.(cls) <> 0 then t.limbo_tails.(cls)
        else begin
          (* Transient tail lost in a crash: walk the chain. *)
          let rec walk c =
            let next = chunk_next t c in
            if next = 0 then c else walk next
          in
          walk lhead
        end
      in
      let fhead = Meta_line.head t.region ~line:(free_line cls) in
      touch_chunk t tail;
      Chunk_header.write_next t.region ~chunk:tail ~next:fhead;
      set_meta_head t ~line:(free_line cls) lhead;
      set_meta_head t ~line:(limbo_line cls) 0
    end;
    t.limbo_tails.(cls) <- 0
  done

let make region em =
  {
    region;
    em;
    heap_end = (Nvm.Region.config region).Nvm.Config.size_bytes;
    limbo_tails = Array.make Size_class.count 0;
    allocs = 0;
    deallocs = 0;
    freelist_allocs = 0;
    bump_allocs = 0;
  }

let create em =
  let region = Epoch.Manager.region em in
  let t = make region em in
  let e = current t in
  let cfg = Nvm.Region.config region in
  Meta_line.init region ~line:bump_line ~head:(Nvm.Layout.heap_off cfg)
    ~epoch:e;
  for cls = 0 to Size_class.count - 1 do
    Meta_line.init region ~line:(free_line cls) ~head:0 ~epoch:e;
    Meta_line.init region ~line:(limbo_line cls) ~head:0 ~epoch:e
  done;
  Epoch.Manager.subscribe_post_advance em (merge_limbo t);
  t

let open_after_crash em =
  let region = Epoch.Manager.region em in
  let t = make region em in
  let is_failed = Epoch.Manager.is_failed em in
  let m = marker t in
  Meta_line.recover region ~line:bump_line ~is_failed ~marker:m;
  for cls = 0 to Size_class.count - 1 do
    Meta_line.recover region ~line:(free_line cls) ~is_failed ~marker:m;
    Meta_line.recover region ~line:(limbo_line cls) ~is_failed ~marker:m
  done;
  Epoch.Manager.subscribe_post_advance em (merge_limbo t);
  t

let alloc ?(aligned = false) t ~size =
  let cls =
    if aligned then Size_class.class_of_aligned_payload size
    else Size_class.class_of_payload size
  in
  let head = Meta_line.head t.region ~line:(free_line cls) in
  t.allocs <- t.allocs + 1;
  if head <> 0 then begin
    (* Pop: only the head moves; the chunk's own header is untouched, so
       rollback of this epoch re-links the chunk exactly as it was. *)
    let next = chunk_next t head in
    set_meta_head t ~line:(free_line cls) next;
    t.freelist_allocs <- t.freelist_allocs + 1;
    Size_class.payload_of_chunk ~chunk:head ~aligned
  end
  else begin
    let bump = Meta_line.head t.region ~line:bump_line in
    let sz = Size_class.chunk_size cls in
    if bump + sz > t.heap_end then raise Heap_full;
    set_meta_head t ~line:bump_line (bump + sz);
    Chunk_header.init t.region ~chunk:bump ~epoch:(current t) ~cls;
    t.bump_allocs <- t.bump_allocs + 1;
    Size_class.payload_of_chunk ~chunk:bump ~aligned
  end

let dealloc t payload =
  let chunk = Size_class.chunk_of_payload payload in
  recover_chunk t chunk;
  let d = Chunk_header.read t.region ~chunk in
  let cls = d.Chunk_header.size_class in
  if cls < 0 || cls >= Size_class.count then
    invalid_arg "Durable.dealloc: not an allocator chunk";
  let lhead = Meta_line.head t.region ~line:(limbo_line cls) in
  touch_chunk t chunk;
  Chunk_header.write_next t.region ~chunk ~next:lhead;
  set_meta_head t ~line:(limbo_line cls) chunk;
  if lhead = 0 then t.limbo_tails.(cls) <- chunk;
  t.deallocs <- t.deallocs + 1

let payload_capacity_of t payload =
  let chunk = Size_class.chunk_of_payload payload in
  let d = Chunk_header.read t.region ~chunk in
  Size_class.payload_capacity ~cls:d.Chunk_header.size_class
    ~aligned:(payload land 63 = 0)

let iter_chain t head f =
  let rec loop c n =
    if c <> 0 then begin
      if n > 100_000_000 then failwith "Durable: free-list cycle";
      f c;
      loop (chunk_next t c) (n + 1)
    end
  in
  loop head 0

let recover_all_chains t =
  for cls = 0 to Size_class.count - 1 do
    iter_chain t (Meta_line.head t.region ~line:(free_line cls)) (fun _ -> ());
    iter_chain t (Meta_line.head t.region ~line:(limbo_line cls)) (fun _ -> ())
  done

let count_chain t head =
  let n = ref 0 in
  iter_chain t head (fun _ -> incr n);
  !n

let free_count t ~cls = count_chain t (Meta_line.head t.region ~line:(free_line cls))
let limbo_count t ~cls = count_chain t (Meta_line.head t.region ~line:(limbo_line cls))

let check_chains t =
  for cls = 0 to Size_class.count - 1 do
    let check c =
      let d = Chunk_header.read t.region ~chunk:c in
      if d.Chunk_header.size_class <> cls then
        failwith
          (Printf.sprintf
             "Durable.check_chains: chunk %d in class-%d list has class %d" c
             cls d.Chunk_header.size_class)
    in
    iter_chain t (Meta_line.head t.region ~line:(free_line cls)) check;
    iter_chain t (Meta_line.head t.region ~line:(limbo_line cls)) check
  done
