lib/alloc/size_class.mli:
