lib/alloc/api.mli: Durable Transient
