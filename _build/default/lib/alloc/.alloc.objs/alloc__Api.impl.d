lib/alloc/api.ml: Durable Transient
