lib/alloc/chunk_header.ml: Int64 Nvm Util
