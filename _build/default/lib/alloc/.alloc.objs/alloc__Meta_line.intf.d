lib/alloc/meta_line.mli: Nvm
