lib/alloc/chunk_header.mli: Nvm
