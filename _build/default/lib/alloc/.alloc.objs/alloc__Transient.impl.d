lib/alloc/transient.ml: Array Durable Hashtbl Nvm Size_class
