lib/alloc/durable.ml: Array Chunk_header Epoch Meta_line Nvm Printf Size_class
