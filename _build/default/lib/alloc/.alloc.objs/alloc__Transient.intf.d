lib/alloc/transient.mli: Nvm
