lib/alloc/meta_line.ml: Int64 Nvm
