lib/alloc/durable.mli: Epoch
