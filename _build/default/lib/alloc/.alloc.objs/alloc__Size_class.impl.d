lib/alloc/size_class.ml: Array Nvm Printf
