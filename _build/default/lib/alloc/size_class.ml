let header_bytes = 16
let aligned_payload_offset = 64

(* All multiples of 64. 64-byte chunks hold the 32-byte value buffers of
   the paper's footnote 6 (payload capacity 48); 448-byte chunks hold the
   384-byte cache-aligned tree nodes. *)
let sizes = [| 64; 128; 192; 256; 448; 512; 1024; 2048; 4096; 8192 |]

let count = Array.length sizes

let () = assert (count <= Nvm.Layout.max_size_classes)

let chunk_size i =
  if i < 0 || i >= count then invalid_arg "Size_class.chunk_size";
  sizes.(i)

let find_class total =
  let rec find i =
    if i >= count then
      invalid_arg
        (Printf.sprintf "Size_class: %d-byte chunk too large" total)
    else if sizes.(i) >= total then i
    else find (i + 1)
  in
  find 0

let class_of_payload payload =
  if payload < 0 then invalid_arg "Size_class.class_of_payload";
  find_class (payload + header_bytes)

let class_of_aligned_payload payload =
  if payload < 0 then invalid_arg "Size_class.class_of_aligned_payload";
  find_class (payload + aligned_payload_offset)

let payload_capacity ~cls ~aligned =
  chunk_size cls - if aligned then aligned_payload_offset else header_bytes

let chunk_of_payload p =
  match p land 63 with
  | 0 -> p - aligned_payload_offset
  | 16 -> p - header_bytes
  | _ -> invalid_arg "Size_class.chunk_of_payload: not a payload address"

let payload_of_chunk ~chunk ~aligned =
  chunk + if aligned then aligned_payload_offset else header_bytes
