(** A persistent head pointer protected by an in-line undo copy.

    Several allocator roots (each size class's free-list head, each limbo
    head, the heap bump pointer) follow the same discipline as the paper's
    [permutation] field (§4.1.1): the datum, its InCLL copy and an epoch tag
    share one cache line:

    {v +0 head   +8 headInCLL   +16 headEpoch v}

    On the first modification in an epoch, [headInCLL := head] is stored
    strictly before [headEpoch := epoch]; PCSO then guarantees that if a
    crash makes the epoch tag read as failed, the undo copy is intact. *)

val init : Nvm.Region.t -> line:int -> head:int -> epoch:int -> unit

val head : Nvm.Region.t -> line:int -> int

val touch : Nvm.Region.t -> line:int -> epoch:int -> unit
(** Log the current head iff this is the epoch's first modification. Call
    before every {!set_head}. *)

val set_head : Nvm.Region.t -> line:int -> int -> unit

val recover :
  Nvm.Region.t -> line:int -> is_failed:(int -> bool) -> marker:int -> unit
(** If the line's epoch tag names a failed epoch, restore
    [head := headInCLL] and re-stamp with [marker]. Idempotent, crash-safe
    in any prefix. *)
