(** The durable NVM allocator (§5): segregated free lists whose state rolls
    back to the beginning of a failed epoch, with no write-backs or fences
    on the allocation critical path.

    Reclamation is epoch-based (like Masstree's): [dealloc] pushes the chunk
    onto a per-class {e limbo} list, which is merged into the free list at
    the next checkpoint, so a chunk can only be re-allocated in an epoch
    after the one that freed it. Rollback therefore never resurrects a chunk
    that live data could have scribbled on, which is why buffer contents
    need no logging (§5).

    Free-list heads live in superblock metadata lines ({!Meta_line});
    chunk [next] pointers carry their own in-line undo copy
    ({!Chunk_header}). Chunk-header recovery is lazy — performed when the
    chunk is next touched — mirroring the paper's lazy node recovery. *)

type t

exception Heap_full

val create : Epoch.Manager.t -> t
(** Initialise allocator metadata on a fresh region (after
    [Nvm.Superblock.format]) and subscribe the limbo merge to checkpoints. *)

val open_after_crash : Epoch.Manager.t -> t
(** Recover allocator roots after a crash: restore every metadata line from
    its in-line undo copy, rebuild transient limbo tails, and subscribe the
    limbo merge. Chunk headers recover lazily afterwards. *)

val alloc : ?aligned:bool -> t -> size:int -> int
(** Allocate a payload of at least [size] bytes; returns a 16-byte-aligned
    payload address (cache-line aligned when [aligned] — used for tree
    nodes, whose InCLL lines must coincide with hardware lines). No flush,
    no fence (§5). *)

val dealloc : t -> int -> unit
(** Return a payload pointer obtained from [alloc]. The chunk becomes
    allocatable at the next checkpoint. *)

val payload_capacity_of : t -> int -> int
(** Usable bytes of the chunk backing this payload pointer. *)

val recover_all_chains : t -> unit
(** Eagerly recover every chunk header reachable from the free and limbo
    lists (used before clearing the failed-epoch set). *)

val check_chains : t -> unit
(** Walk every free and limbo list and validate chunk headers; raises
    [Failure] on corruption (testing aid). *)

(** {1 Statistics} *)

val allocs : t -> int
val deallocs : t -> int
val freelist_allocs : t -> int
val bump_allocs : t -> int
val bump_position : t -> int
val free_count : t -> cls:int -> int
(** Length of a class's free list (walks it; testing aid). *)

val limbo_count : t -> cls:int -> int
