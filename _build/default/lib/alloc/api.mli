(** Uniform allocator interface consumed by the Masstree layer, so the same
    tree code runs over the durable allocator (INCLL / LOGGING variants) or
    the transient ones (MT / MT+). *)

type t = {
  alloc : aligned:bool -> size:int -> int;
  dealloc : int -> unit;
}

val of_durable : Durable.t -> t
val of_transient : Transient.t -> t
