(** Segregated size classes for the NVM allocators.

    Every chunk starts with the 16-byte header of §5.1 and every chunk size
    is a multiple of 64, so chunks are always cache-line aligned. Two
    payload conventions share the same chunks:

    - {e ordinary} payloads start at [chunk + 16] (16-byte aligned, as the
      ValInCLL packing requires) — used for value buffers;
    - {e aligned} payloads start at [chunk + 64] (cache-line aligned) —
      used for tree nodes, whose InCLL lines must coincide with hardware
      cache lines.

    Because chunks are 64-aligned, a payload address is ≡16 (mod 64) iff it
    is ordinary and ≡0 (mod 64) iff it is aligned, so [chunk_of_payload] is
    unambiguous. *)

val header_bytes : int
(** 16: [next] and [nextInCLL] words. *)

val aligned_payload_offset : int
(** 64. *)

val count : int

val chunk_size : int -> int
(** Total chunk size of class [i]; always a multiple of 64. *)

val class_of_payload : int -> int
(** Smallest class able to hold an ordinary payload of the given size. *)

val class_of_aligned_payload : int -> int
(** Smallest class able to hold a cache-line-aligned payload of the given
    size. *)

val payload_capacity : cls:int -> aligned:bool -> int

val chunk_of_payload : int -> int
(** Chunk base from either kind of payload pointer. *)

val payload_of_chunk : chunk:int -> aligned:bool -> int
