(** The compact 16-byte chunk header of the durable allocator (§5.1).

    Three logical fields — [next], [nextInCLL] and a 32-bit epoch — are
    packed into two words that share the chunk's first cache line:

    {v
    word0 (next):      | epoch[31:16] | class[1:0] | ptr>>4 (44b) | ctr (2b) |
    word1 (nextInCLL): | epoch[15:0]  | class[3:2] | ptr>>4 (44b) | ctr (2b) |
                        63          48  47       46 45           2 1        0
    v}

    The paper steals the upper 16 bits of each canonical-form pointer for
    the two epoch halves and the (16-byte-alignment) low bits for a 2-bit
    counter; we additionally stash the size class in the two remaining bits
    of each word, which a real implementation derives from segregated pages.

    The counter is bumped when both words are rewritten at the first
    modification of an epoch. Equal counters ⇒ both words are from the same
    update and the epoch halves combine; unequal counters ⇒ the crash hit
    between the two stores and [next] must be recovered from [nextInCLL]
    (§5.1). *)

type decoded = {
  next : int;  (** Current free-list successor (payload of word0). *)
  next_incll : int;  (** Successor at the beginning of [epoch]. *)
  epoch : int;  (** 32-bit epoch reassembled from the two halves. *)
  ctr_matches : bool;
  size_class : int;
}

val read : Nvm.Region.t -> chunk:int -> decoded
(** Decode both header words. When [ctr_matches] is false, [epoch] is
    meaningless and only [next_incll] and [size_class] may be trusted. *)

val write_first_touch :
  Nvm.Region.t -> chunk:int -> current_next:int -> epoch:int -> cls:int -> unit
(** First modification of the chunk in [epoch]: store
    [nextInCLL := current_next] and re-tag [next := current_next] with the
    new epoch and a bumped counter — word1 strictly before word0, in the
    same cache line, so PCSO gives the §5.1 recovery invariant. *)

val write_next : Nvm.Region.t -> chunk:int -> next:int -> unit
(** Subsequent modification within the same epoch: rewrite word0's pointer
    bits only, preserving counter, epoch half and class. *)

val init : Nvm.Region.t -> chunk:int -> epoch:int -> cls:int -> unit
(** Initialise the header of a freshly carved chunk ([next = null]). *)

val restore : Nvm.Region.t -> chunk:int -> marker_epoch:int -> unit
(** Recovery: [next := nextInCLL] and re-stamp both words with
    [marker_epoch] and a fresh counter. Idempotent. *)
