let init region ~line ~head ~epoch =
  Nvm.Region.write_i64 region line (Int64.of_int head);
  Nvm.Region.write_i64 region (line + 8) (Int64.of_int head);
  Nvm.Region.write_i64 region (line + 16) (Int64.of_int epoch)

let head region ~line = Int64.to_int (Nvm.Region.read_i64 region line)

let line_epoch region line =
  Int64.to_int (Nvm.Region.read_i64 region (line + 16))

let touch region ~line ~epoch =
  if line_epoch region line <> epoch then begin
    let current = Nvm.Region.read_i64 region line in
    (* Undo copy strictly before the epoch tag (same line => PCSO order). *)
    Nvm.Region.write_i64 region (line + 8) current;
    Nvm.Region.write_i64 region (line + 16) (Int64.of_int epoch);
    Nvm.Region.release_fence region
  end

let set_head region ~line v = Nvm.Region.write_i64 region line (Int64.of_int v)

let recover region ~line ~is_failed ~marker =
  if is_failed (line_epoch region line) then begin
    let saved = Nvm.Region.read_i64 region (line + 8) in
    (* Restore before re-stamping, so a crash mid-recovery retries. *)
    Nvm.Region.write_i64 region line saved;
    Nvm.Region.write_i64 region (line + 16) (Int64.of_int marker);
    Nvm.Region.release_fence region
  end
