(** Transient allocators for the non-durable baselines (§6).

    [Pool] models MT+'s enhancement: memory "mmaped … for Masstree's pool
    allocator" — a bump pointer plus per-class free lists kept in DRAM, with
    negligible bookkeeping cost.

    [General] models the unmodified baseline's [jemalloc]: the same chunks,
    but with a general-purpose allocator's extra bookkeeping charged to the
    simulated clock (size-class lookup, arena metadata, periodic refills).
    This is what makes MT slower than MT+ (the paper measures MT+ 2.4-68.5%
    faster than MT). *)

type kind = Pool | General

type t

val create : kind -> Nvm.Region.t -> t
(** Carves chunks from the region's heap slice (so node layouts are
    identical across variants), but keeps all bookkeeping in DRAM and
    performs no persistence actions. *)

val alloc : ?aligned:bool -> t -> size:int -> int
val dealloc : t -> int -> unit
val allocs : t -> int
val deallocs : t -> int
