type kind = Pool | General

type t = {
  kind : kind;
  region : Nvm.Region.t;
  heap_end : int;
  mutable bump : int;
  free : int list array array;  (* DRAM free lists: [aligned][class] *)
  cls_of_payload : (int, int) Hashtbl.t;  (* DRAM chunk directory *)
  mutable allocs : int;
  mutable deallocs : int;
}

(* Simulated general-purpose-allocator costs (calibrated so the MT->MT+ gap
   lands in the paper's 2.4-68.5% band for write-heavy workloads). *)
let general_alloc_ns = 90.0
let general_dealloc_ns = 60.0
let general_refill_ns = 1200.0
let general_refill_every = 64

let pool_alloc_ns = 8.0
let pool_dealloc_ns = 5.0

let create kind region =
  let cfg = Nvm.Region.config region in
  {
    kind;
    region;
    heap_end = cfg.Nvm.Config.size_bytes;
    bump = Nvm.Layout.heap_off cfg;
    free = [| Array.make Size_class.count []; Array.make Size_class.count [] |];
    cls_of_payload = Hashtbl.create 1024;
    allocs = 0;
    deallocs = 0;
  }

let allocs t = t.allocs
let deallocs t = t.deallocs

let charge t ns = Nvm.Region.advance_clock t.region ns

let alloc ?(aligned = false) t ~size =
  let cls =
    if aligned then Size_class.class_of_aligned_payload size
    else Size_class.class_of_payload size
  in
  let a = if aligned then 1 else 0 in
  t.allocs <- t.allocs + 1;
  (match t.kind with
  | Pool -> charge t pool_alloc_ns
  | General ->
      charge t general_alloc_ns;
      if t.allocs mod general_refill_every = 0 then charge t general_refill_ns);
  match t.free.(a).(cls) with
  | payload :: rest ->
      t.free.(a).(cls) <- rest;
      payload
  | [] ->
      let sz = Size_class.chunk_size cls in
      if t.bump + sz > t.heap_end then raise Durable.Heap_full;
      let chunk = t.bump in
      t.bump <- t.bump + sz;
      let payload = Size_class.payload_of_chunk ~chunk ~aligned in
      Hashtbl.replace t.cls_of_payload payload cls;
      payload

let dealloc t payload =
  match Hashtbl.find_opt t.cls_of_payload payload with
  | None -> invalid_arg "Transient.dealloc: unknown pointer"
  | Some cls ->
      let a = if payload land 63 = 0 then 1 else 0 in
      t.deallocs <- t.deallocs + 1;
      (match t.kind with
      | Pool -> charge t pool_dealloc_ns
      | General -> charge t general_dealloc_ns);
      t.free.(a).(cls) <- payload :: t.free.(a).(cls)
