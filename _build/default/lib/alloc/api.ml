type t = {
  alloc : aligned:bool -> size:int -> int;
  dealloc : int -> unit;
}

let of_durable d =
  {
    alloc = (fun ~aligned ~size -> Durable.alloc ~aligned d ~size);
    dealloc = Durable.dealloc d;
  }

let of_transient tr =
  {
    alloc = (fun ~aligned ~size -> Transient.alloc ~aligned tr ~size);
    dealloc = Transient.dealloc tr;
  }
