lib/store/sharded.mli: Incll Util
