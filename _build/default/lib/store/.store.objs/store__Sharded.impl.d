lib/store/sharded.ml: Array Float Incll Int64 List Masstree Nvm
