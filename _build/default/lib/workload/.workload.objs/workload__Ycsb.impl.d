lib/workload/ycsb.ml: Array Int64 Masstree String Util
