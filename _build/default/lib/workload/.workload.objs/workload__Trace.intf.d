lib/workload/trace.mli: Incll Ycsb
