lib/workload/trace.ml: Buffer Char Fun Incll List Printf String Ycsb
