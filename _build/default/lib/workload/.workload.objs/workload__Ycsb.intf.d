lib/workload/ycsb.mli: Util
