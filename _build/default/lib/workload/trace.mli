(** Trace-driven workloads: record and replay operation logs as text
    files, so downstream users can benchmark and debug against their own
    access patterns rather than synthetic YCSB mixes.

    Format — one operation per line, fields separated by single spaces,
    keys/values percent-encoded (space, newline, CR and '%' as %XX):

    {v
    PUT <key> <value>
    GET <key>
    DEL <key>
    SCAN <start> <count>
    # comments and blank lines are ignored
    v} *)

type op = Put of string * string | Get of string | Del of string | Scan of string * int

val parse_line : string -> op option
(** [None] for blank/comment lines; raises [Failure] on malformed input
    (naming the offending line). *)

val print_line : op -> string

val load : string -> op list
(** Parse a trace file. *)

val save : string -> op list -> unit
(** Write a trace file (inverse of {!load}). *)

val apply : Incll.System.t -> op -> unit
(** Execute one traced operation (results of reads are discarded). *)

val of_ycsb : Ycsb.op -> op

val encode_field : string -> string
val decode_field : string -> string
