type op = Put of string * string | Get of string | Del of string | Scan of string * int

let must_escape c = c = ' ' || c = '%' || c = '\n' || c = '\r'

let encode_field s =
  if String.exists must_escape s then begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if must_escape c then Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end
  else s

let decode_field s =
  if not (String.contains s '%') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let rec go i =
      if i < n then
        if s.[i] = '%' && i + 2 < n then begin
          (match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
          | Some code -> Buffer.add_char buf (Char.chr code)
          | None -> failwith ("Trace: bad escape in field " ^ s));
          go (i + 3)
        end
        else begin
          Buffer.add_char buf s.[i];
          go (i + 1)
        end
    in
    go 0;
    Buffer.contents buf
  end

let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match String.split_on_char ' ' line with
    | [ "PUT"; k; v ] -> Some (Put (decode_field k, decode_field v))
    | [ "GET"; k ] -> Some (Get (decode_field k))
    | [ "DEL"; k ] -> Some (Del (decode_field k))
    | [ "SCAN"; k; n ] -> (
        match int_of_string_opt n with
        | Some n when n > 0 -> Some (Scan (decode_field k, n))
        | _ -> failwith ("Trace: bad scan count in: " ^ line))
    | _ -> failwith ("Trace: malformed line: " ^ line)

let print_line = function
  | Put (k, v) -> Printf.sprintf "PUT %s %s" (encode_field k) (encode_field v)
  | Get k -> "GET " ^ encode_field k
  | Del k -> "DEL " ^ encode_field k
  | Scan (k, n) -> Printf.sprintf "SCAN %s %d" (encode_field k) n

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> (
            match parse_line line with
            | Some op -> go (op :: acc)
            | None -> go acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let save path ops =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun op ->
          output_string oc (print_line op);
          output_char oc '\n')
        ops)

let apply sys = function
  | Put (key, value) -> Incll.System.put sys ~key ~value
  | Get key -> ignore (Incll.System.get sys ~key : string option)
  | Del key -> ignore (Incll.System.remove sys ~key : bool)
  | Scan (start, n) ->
      ignore (Incll.System.scan sys ~start ~n : (string * string) list)

let of_ycsb = function
  | Ycsb.Put (k, v) -> Put (k, v)
  | Ycsb.Get k -> Get k
  | Ycsb.Scan (k, n) -> Scan (k, n)
