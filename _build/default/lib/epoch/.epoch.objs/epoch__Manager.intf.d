lib/epoch/manager.mli: Nvm
