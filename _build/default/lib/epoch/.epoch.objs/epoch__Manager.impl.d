lib/epoch/manager.ml: Hashtbl Int64 List Nvm
