bin/incll_fsck.ml: Alloc Array Incll Int64 List Masstree Nvm Printexc Printf Sys
