bin/incll_cli.mli:
