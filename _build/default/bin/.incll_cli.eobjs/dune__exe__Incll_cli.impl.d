bin/incll_cli.ml: Array Format Incll List Masstree Nvm Printexc Printf Store String Sys Unix Util Workload
