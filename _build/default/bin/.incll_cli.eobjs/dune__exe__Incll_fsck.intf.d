bin/incll_fsck.mli:
