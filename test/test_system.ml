(* Tests for the assembled System variants and the sharded store. *)

module Sys_ = Incll.System

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let key8 i = Masstree.Key.of_int64 (Util.Scramble.fmix64 (Int64.of_int i))

let small_cfg =
  {
    Sys_.default_config with
    Sys_.nvm =
      {
        Nvm.Config.default with
        Nvm.Config.size_bytes = 8 * 1024 * 1024;
        extlog_bytes = 512 * 1024;
      };
  }

let variant_names () =
  List.iter
    (fun (v, n) ->
      Alcotest.(check string) "name" n (Sys_.variant_name v);
      check "roundtrip" true (Sys_.variant_of_string n = v))
    [
      (Sys_.Mt, "MT");
      (Sys_.Mt_plus, "MT+");
      (Sys_.Logging, "LOGGING");
      (Sys_.Incll, "INCLL");
    ]

let all_variants_serve_ops () =
  List.iter
    (fun v ->
      let s = Sys_.create ~config:small_cfg v in
      for i = 0 to 499 do
        Sys_.put s ~key:(key8 i) ~value:(string_of_int i)
      done;
      for i = 0 to 499 do
        check "get" true (Sys_.get s ~key:(key8 i) = Some (string_of_int i))
      done;
      check "remove" true (Sys_.remove s ~key:(key8 0));
      check_int "scan" 10 (List.length (Sys_.scan s ~start:"" ~n:10));
      Masstree.Tree.validate (Sys_.tree s))
    [ Sys_.Mt; Sys_.Mt_plus; Sys_.Logging; Sys_.Incll ]

let transient_variants_reject_crash () =
  List.iter
    (fun v ->
      let s = Sys_.create ~config:small_cfg v in
      check "crash rejected" true
        (try
           Sys_.crash s (Util.Rng.create ~seed:1);
           false
         with Failure _ -> true))
    [ Sys_.Mt; Sys_.Mt_plus ]

let incll_makes_fewer_fences_than_logging () =
  (* The headline mechanism: for a first-touch-dominated write workload,
     INCLL drains far fewer fences than LOGGING-only. *)
  (* Sparse touches: each updated key lives in its own leaf, so InCLL
     absorbs every first touch while LOGGING pays one log+fence per leaf. *)
  let count_fences variant =
    let s = Sys_.create ~config:small_cfg variant in
    for i = 0 to 4999 do
      Sys_.put s ~key:(key8 i) ~value:"12345678"
    done;
    Sys_.advance_epoch s;
    let f0 = (Nvm.Region.stats (Sys_.region s)).Nvm.Stats.sfence in
    for i = 0 to 99 do
      Sys_.put s ~key:(key8 (i * 50)) ~value:"abcdefgh"
    done;
    (Nvm.Region.stats (Sys_.region s)).Nvm.Stats.sfence - f0
  in
  let logging = count_fences Sys_.Logging in
  let incll = count_fences Sys_.Incll in
  check "INCLL fences << LOGGING fences" true (incll * 4 < logging)

let mt_plus_flushes_periodically () =
  let cfg = { small_cfg with Sys_.epoch_len_ns = 10_000.0 } in
  let s = Sys_.create ~config:cfg Sys_.Mt_plus in
  for i = 0 to 2000 do
    Sys_.put s ~key:(key8 i) ~value:"x"
  done;
  check "MT+ checkpoints" true
    ((Nvm.Region.stats (Sys_.region s)).Nvm.Stats.wbinvd > 0)

let mt_never_flushes () =
  let s = Sys_.create ~config:small_cfg Sys_.Mt in
  for i = 0 to 2000 do
    Sys_.put s ~key:(key8 i) ~value:"x"
  done;
  let st = Nvm.Region.stats (Sys_.region s) in
  check_int "no wbinvd" 0 st.Nvm.Stats.wbinvd;
  (* Only initialisation flushes (superblock format + initial root). *)
  check "no clwb beyond initialisation" true (st.Nvm.Stats.clwb <= 2)

(* --- sharded store --------------------------------------------------------- *)

let store_routes_consistently () =
  let st = Store.Sharded.create ~config:small_cfg Sys_.Incll ~shards:4 in
  check_int "shards" 4 (Store.Sharded.nshards st);
  for i = 0 to 999 do
    Store.Sharded.put st ~key:(key8 i) ~value:(string_of_int i)
  done;
  for i = 0 to 999 do
    check "routed get" true (Store.Sharded.get st ~key:(key8 i) = Some (string_of_int i))
  done;
  check_int "cardinal" 1000 (Store.Sharded.cardinal st);
  (* Each shard holds a share. *)
  for i = 0 to 3 do
    check "non-empty shard" true
      (Masstree.Tree.cardinal (Sys_.tree (Store.Sharded.shard st i)) > 100)
  done

let store_shard_ranges_ordered () =
  let st = Store.Sharded.create ~config:small_cfg Sys_.Incll ~shards:4 in
  (* shard_of_key must be monotone in the key's first slice. *)
  let prev = ref 0 in
  for b = 0 to 255 do
    let s = Store.Sharded.shard_of_key st (String.make 1 (Char.chr b)) in
    check "monotone" true (s >= !prev);
    prev := s
  done;
  check_int "last shard reached" 3 !prev

let store_scan_crosses_shards () =
  let st = Store.Sharded.create ~config:small_cfg Sys_.Incll ~shards:4 in
  let keys = List.init 256 (fun b -> Printf.sprintf "%c-key" (Char.chr b)) in
  List.iter (fun k -> Store.Sharded.put st ~key:k ~value:k) keys;
  let got = Store.Sharded.scan st ~start:"" ~n:256 in
  Alcotest.(check (list string)) "global order" (List.sort compare keys)
    (List.map fst got)

let store_crash_recover () =
  let cfg =
    {
      small_cfg with
      Sys_.nvm = { small_cfg.Sys_.nvm with Nvm.Config.crash_support = Nvm.Config.Precise };
    }
  in
  let st = Store.Sharded.create ~config:cfg Sys_.Incll ~shards:3 in
  for i = 0 to 299 do
    Store.Sharded.put st ~key:(key8 i) ~value:(string_of_int i)
  done;
  Store.Sharded.advance_epochs st;
  for i = 300 to 399 do
    Store.Sharded.put st ~key:(key8 i) ~value:"dirty"
  done;
  Store.Sharded.crash st (Util.Rng.create ~seed:42);
  ignore (Store.Sharded.recover st : (string * float) list);
  for i = 0 to 299 do
    check "kept" true (Store.Sharded.get st ~key:(key8 i) = Some (string_of_int i))
  done;
  for i = 300 to 399 do
    check "rolled back" true (Store.Sharded.get st ~key:(key8 i) = None)
  done

let tests =
  ( "system",
    [
      Alcotest.test_case "variant names" `Quick variant_names;
      Alcotest.test_case "all variants serve ops" `Quick all_variants_serve_ops;
      Alcotest.test_case "transient variants reject crash" `Quick transient_variants_reject_crash;
      Alcotest.test_case "INCLL fences << LOGGING" `Quick incll_makes_fewer_fences_than_logging;
      Alcotest.test_case "MT+ flushes periodically" `Quick mt_plus_flushes_periodically;
      Alcotest.test_case "MT never flushes" `Quick mt_never_flushes;
      Alcotest.test_case "store routes consistently" `Quick store_routes_consistently;
      Alcotest.test_case "store ranges ordered" `Quick store_shard_ranges_ordered;
      Alcotest.test_case "store scan crosses shards" `Quick store_scan_crosses_shards;
      Alcotest.test_case "store crash/recover" `Quick store_crash_recover;
    ] )

let scan_rev_through_system_and_store () =
  let s = Sys_.create ~config:small_cfg Sys_.Incll in
  for i = 0 to 99 do
    Sys_.put s ~key:(Printf.sprintf "k%03d" i) ~value:(string_of_int i)
  done;
  Alcotest.(check (list string)) "system scan_rev"
    [ "k099"; "k098" ]
    (List.map fst (Sys_.scan_rev s ~n:2 ()));
  let st = Store.Sharded.create ~config:small_cfg Sys_.Incll ~shards:4 in
  let keys = List.init 200 (fun b -> Printf.sprintf "%03d-key" b) in
  List.iter (fun k -> Store.Sharded.put st ~key:k ~value:k) keys;
  Alcotest.(check (list string)) "store scan_rev crosses shards"
    (List.rev keys)
    (List.map fst (Store.Sharded.scan_rev st ~n:500 ()));
  Alcotest.(check (list string)) "store bounded"
    [ "100-key"; "099-key"; "098-key" ]
    (List.map fst (Store.Sharded.scan_rev st ~bound:"100-zzz" ~n:3 ()))

let durability_lag_reports () =
  let cfg = { small_cfg with Sys_.epoch_len_ns = 1.0e9 } in
  let s = Sys_.create ~config:cfg Sys_.Incll in
  Sys_.advance_epoch s;
  let lag0 = Sys_.durability_lag_ns s in
  Sys_.put s ~key:"k" ~value:"v";
  let lag1 = Sys_.durability_lag_ns s in
  check "lag grows with work" true (lag1 > lag0);
  Sys_.advance_epoch s;
  check "checkpoint resets lag" true (Sys_.durability_lag_ns s < lag1);
  let mt = Sys_.create ~config:small_cfg Sys_.Mt in
  check "MT never durable" true (Sys_.durability_lag_ns mt = infinity)

let extra_tests =
  [
    Alcotest.test_case "scan_rev via system/store" `Quick scan_rev_through_system_and_store;
    Alcotest.test_case "durability lag" `Quick durability_lag_reports;
  ]

let tests = (fst tests, snd tests @ extra_tests)

let concurrent_domains_stress () =
  (* Four domains hammer their own shards concurrently — the isolation
     claim behind the DESIGN.md concurrency substitution — then the whole
     store crashes and recovers consistently. *)
  let cfg =
    {
      small_cfg with
      Sys_.nvm =
        { small_cfg.Sys_.nvm with Nvm.Config.crash_support = Nvm.Config.Precise };
      epoch_len_ns = 50_000.0 (* many checkpoints during the run *);
    }
  in
  let st = Store.Sharded.create ~config:cfg Sys_.Incll ~shards:4 in
  let per_domain = 8_000 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let sys = Store.Sharded.shard st d in
            let rng = Util.Rng.create ~seed:(100 + d) in
            let made = ref 0 in
            for i = 0 to per_domain - 1 do
              (* Keys owned by shard d: set the top bits accordingly. *)
              let bits =
                Int64.logor
                  (Int64.shift_left (Int64.of_int d) 62)
                  (Int64.of_int ((i * 1021) land 0x3FFFFFFF))
              in
              let key = Masstree.Key.of_int64 bits in
              match Util.Rng.int rng 10 with
              | 0 | 1 | 2 | 3 | 4 | 5 ->
                  Sys_.put sys ~key ~value:(Printf.sprintf "d%d-%d" d i);
                  incr made
              | 6 -> ignore (Sys_.remove sys ~key)
              | _ -> ignore (Sys_.get sys ~key)
            done;
            !made))
  in
  let made = List.map Domain.join domains in
  check "all domains worked" true (List.for_all (fun m -> m > 1000) made);
  for d = 0 to 3 do
    Masstree.Tree.validate (Sys_.tree (Store.Sharded.shard st d))
  done;
  let before = Store.Sharded.cardinal st in
  Store.Sharded.advance_epochs st;
  Store.Sharded.crash st (Util.Rng.create ~seed:55);
  ignore (Store.Sharded.recover st : (string * float) list);
  check_int "checkpointed state survives" before (Store.Sharded.cardinal st);
  for d = 0 to 3 do
    Masstree.Tree.validate (Sys_.tree (Store.Sharded.shard st d))
  done

let recover_mutates_store_in_place () =
  (* Regression: recover used to build and RETURN a fresh store while the
     caller's binding kept the crashed shards — every alias had to be
     rebound or it kept talking to dead systems. recover now swaps the
     recovered shards into the existing store (returning only the phase
     timing breakdown), so every alias observes the recovery. *)
  let cfg =
    {
      small_cfg with
      Sys_.nvm = { small_cfg.Sys_.nvm with Nvm.Config.crash_support = Nvm.Config.Precise };
    }
  in
  let st = Store.Sharded.create ~config:cfg Sys_.Incll ~shards:2 in
  let alias = st in
  for i = 0 to 99 do
    Store.Sharded.put st ~key:(key8 i) ~value:(string_of_int i)
  done;
  Store.Sharded.advance_epochs st;
  Store.Sharded.crash st (Util.Rng.create ~seed:7);
  ignore (Store.Sharded.recover st : (string * float) list);
  (* The untouched alias serves reads from the recovered shards. *)
  for i = 0 to 99 do
    check "alias sees recovery" true
      (Store.Sharded.get alias ~key:(key8 i) = Some (string_of_int i))
  done;
  check "alias accepts writes" true
    (Store.Sharded.put alias ~key:(key8 1000) ~value:"post";
     Store.Sharded.get st ~key:(key8 1000) = Some "post")

(* Cross-shard scans: starts and bounds that land mid-shard, with windows
   long enough to cross one or more shard boundaries. *)
let scan_windows_cross_shard_boundaries () =
  List.iter
    (fun shards ->
      let st = Store.Sharded.create ~config:small_cfg Sys_.Incll ~shards in
      (* Keys cover the full first-byte range so every shard owns some. *)
      let keys =
        List.concat_map
          (fun b -> List.init 4 (fun i -> Printf.sprintf "%02x-%d" b i))
          (List.init 64 (fun i -> i * 4))
      in
      List.iter (fun k -> Store.Sharded.put st ~key:k ~value:k) keys;
      let sorted = List.sort compare keys in
      let expect_from start n =
        List.filteri (fun i _ -> i < n)
          (List.filter (fun k -> k >= start) sorted)
      in
      List.iter
        (fun (start, n) ->
          let got = List.map fst (Store.Sharded.scan st ~start ~n) in
          check_int
            (Printf.sprintf "scan %s n=%d (%d shards) length" start n shards)
            (List.length (expect_from start n))
            (List.length got);
          Alcotest.(check (list string))
            (Printf.sprintf "scan %s n=%d (%d shards) sorted" start n shards)
            (expect_from start n) got)
        [ ("", List.length keys); ("3e-2", 80); ("7a-0", 120); ("f8-3", 10) ];
      let rev_sorted = List.rev sorted in
      let expect_rev bound n =
        List.filteri (fun i _ -> i < n)
          (List.filter (fun k -> k <= bound) rev_sorted)
      in
      List.iter
        (fun (bound, n) ->
          let got = List.map fst (Store.Sharded.scan_rev st ~bound ~n ()) in
          Alcotest.(check (list string))
            (Printf.sprintf "scan_rev %s n=%d (%d shards)" bound n shards)
            (expect_rev bound n) got)
        [ ("zz", 90); ("80-9", 130); ("04-1", 3) ])
    [ 2; 3; 4 ]

let tests =
  (fst tests,
   snd tests
   @ [
       Alcotest.test_case "recover mutates store in place" `Quick recover_mutates_store_in_place;
       Alcotest.test_case "scans cross shard boundaries" `Quick scan_windows_cross_shard_boundaries;
       Alcotest.test_case "concurrent domains stress" `Slow concurrent_domains_stress;
     ])
