(* Tests for the simulated NVM substrate: PCSO semantics, persistence
   instructions, crash injection, eviction and statistics. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

let small_cfg ?(crash_support = Nvm.Config.Precise) ?max_dirty_lines () =
  {
    Nvm.Config.default with
    Nvm.Config.size_bytes = 1024 * 1024;
    extlog_bytes = 64 * 1024;
    crash_support;
    max_dirty_lines;
  }

let mk ?crash_support ?max_dirty_lines () =
  Nvm.Region.create (small_cfg ?crash_support ?max_dirty_lines ())

(* --- basic loads/stores ------------------------------------------------ *)

let rw_roundtrip () =
  let r = mk () in
  Nvm.Region.write_i64 r 4096 0x1122334455667788L;
  check_i64 "i64" 0x1122334455667788L (Nvm.Region.read_i64 r 4096);
  Nvm.Region.write_u8 r 5000 0xab;
  check_int "u8" 0xab (Nvm.Region.read_u8 r 5000);
  let b = Bytes.of_string "hello, nvm world" in
  Nvm.Region.write_bytes r 8000 b;
  Alcotest.(check string) "bytes" "hello, nvm world"
    (Bytes.to_string (Nvm.Region.read_bytes r 8000 ~len:16))

let unaligned_i64_rejected () =
  let r = mk () in
  Alcotest.check_raises "unaligned write" (Invalid_argument "Region.write_i64: unaligned")
    (fun () -> Nvm.Region.write_i64 r 4097 1L)

let out_of_bounds_rejected () =
  let r = mk () in
  check "oob caught" true
    (try
       Nvm.Region.write_i64 r (1024 * 1024) 1L;
       false
     with Invalid_argument _ -> true)

let blit_within_copies () =
  let r = mk () in
  Nvm.Region.write_bytes r 4096 (Bytes.of_string "abcdefgh12345678");
  Nvm.Region.blit_within r ~src:4096 ~dst:8192 ~len:16;
  Alcotest.(check string) "copied" "abcdefgh12345678"
    (Bytes.to_string (Nvm.Region.read_bytes r 8192 ~len:16))

(* --- persistence ------------------------------------------------------- *)

let crash_without_flush_loses_data () =
  let r = mk () in
  Nvm.Region.write_i64 r 4096 42L;
  Nvm.Region.crash_persist_none r;
  check_i64 "lost" 0L (Nvm.Region.read_i64 r 4096)

let clwb_sfence_persists () =
  let r = mk () in
  Nvm.Region.write_i64 r 4096 42L;
  Nvm.Region.clwb r 4096;
  Nvm.Region.sfence r;
  Nvm.Region.crash_persist_none r;
  check_i64 "kept" 42L (Nvm.Region.read_i64 r 4096)

let clwb_without_sfence_not_guaranteed () =
  (* clwb alone is asynchronous: with a worst-case crash nothing commits. *)
  let r = mk () in
  Nvm.Region.write_i64 r 4096 42L;
  Nvm.Region.clwb r 4096;
  Nvm.Region.crash_persist_none r;
  check_i64 "not guaranteed" 0L (Nvm.Region.read_i64 r 4096)

let wbinvd_persists_everything () =
  let r = mk () in
  for i = 0 to 99 do
    Nvm.Region.write_i64 r (4096 + (i * 64)) (Int64.of_int i)
  done;
  Nvm.Region.wbinvd r;
  check_int "all clean" 0 (Nvm.Region.dirty_line_count r);
  Nvm.Region.crash_persist_none r;
  for i = 0 to 99 do
    check_i64 "survives" (Int64.of_int i) (Nvm.Region.read_i64 r (4096 + (i * 64)))
  done

let crash_all_equals_flush () =
  let r = mk () in
  Nvm.Region.write_i64 r 4096 7L;
  Nvm.Region.write_i64 r 4160 8L;
  Nvm.Region.crash_persist_all r;
  check_i64 "kept 1" 7L (Nvm.Region.read_i64 r 4096);
  check_i64 "kept 2" 8L (Nvm.Region.read_i64 r 4160)

(* --- PCSO: same-line prefix semantics ---------------------------------- *)

let pcso_same_line_prefix () =
  (* Writes w1 w2 w3 to one line: the crash may keep any prefix, never a
     subset that skips an earlier write. Enumerate all prefixes. *)
  for k = 0 to 3 do
    let r = mk () in
    Nvm.Region.write_i64 r 4096 1L;
    Nvm.Region.write_i64 r 4104 2L;
    Nvm.Region.write_i64 r 4112 3L;
    Nvm.Region.crash_with r ~choose:(fun ~line:_ ~nwrites ->
        Alcotest.(check int) "three pending" 3 nwrites;
        k);
    let v1 = Nvm.Region.read_i64 r 4096 in
    let v2 = Nvm.Region.read_i64 r 4104 in
    let v3 = Nvm.Region.read_i64 r 4112 in
    let expect = [| (0L, 0L, 0L); (1L, 0L, 0L); (1L, 2L, 0L); (1L, 2L, 3L) |] in
    let e1, e2, e3 = expect.(k) in
    check_i64 "w1" e1 v1;
    check_i64 "w2" e2 v2;
    check_i64 "w3" e3 v3
  done

let pcso_same_word_overwrites () =
  (* Two writes to the SAME word: prefix 1 must expose the first value. *)
  let r = mk () in
  Nvm.Region.write_i64 r 4096 10L;
  Nvm.Region.write_i64 r 4096 20L;
  Nvm.Region.crash_with r ~choose:(fun ~line:_ ~nwrites:_ -> 1);
  check_i64 "first value" 10L (Nvm.Region.read_i64 r 4096)

let pcso_lines_independent () =
  (* Different lines may persist different prefixes: the later line's write
     can survive while the earlier line's is lost. *)
  let r = mk () in
  Nvm.Region.write_i64 r 4096 1L;
  (* line A, first *)
  Nvm.Region.write_i64 r 8192 2L;
  (* line B, second *)
  Nvm.Region.crash_with r ~choose:(fun ~line ~nwrites:_ ->
      if line = 8192 / 64 then 1 else 0);
  check_i64 "A lost" 0L (Nvm.Region.read_i64 r 4096);
  check_i64 "B kept" 2L (Nvm.Region.read_i64 r 8192)

let pcso_random_crash_is_prefix =
  QCheck.Test.make ~name:"random crash keeps a per-line prefix" ~count:200
    QCheck.(pair (int_bound 1000000) (list_of_size Gen.(int_range 1 20) (int_bound 7)))
    (fun (seed, writes) ->
      QCheck.assume (writes <> []);
      let r = mk () in
      (* Write an increasing stamp to word [w] of one line; record order. *)
      List.iteri
        (fun i w -> Nvm.Region.write_i64 r (4096 + (8 * w)) (Int64.of_int (i + 1)))
        writes;
      let rng = Util.Rng.create ~seed in
      Nvm.Region.crash r rng;
      (* Persisted state must equal replaying some prefix k. *)
      let words () = List.init 8 (fun w -> Nvm.Region.read_i64 r (4096 + (8 * w))) in
      let got = words () in
      let model = Array.make 8 0L in
      let matches_prefix k =
        Array.fill model 0 8 0L;
        List.iteri
          (fun i w -> if i < k then model.(w) <- Int64.of_int (i + 1))
          writes;
        got = Array.to_list model
      in
      let n = List.length writes in
      let rec any k = k <= n && (matches_prefix k || any (k + 1)) in
      any 0)

let multi_line_write_splits () =
  (* A 16-byte store straddling a line boundary becomes two per-line
     stores; the second may persist without the first. *)
  let r = mk () in
  let addr = 4096 + 56 in
  Nvm.Region.write_bytes r addr (Bytes.make 16 'x');
  Nvm.Region.crash_with r ~choose:(fun ~line ~nwrites:_ ->
      if line = (4096 + 64) / 64 then 1 else 0);
  check_int "first half lost" 0 (Nvm.Region.read_u8 r addr);
  check_int "second half kept" (Char.code 'x') (Nvm.Region.read_u8 r (4096 + 64))

(* --- eviction and capacity --------------------------------------------- *)

let eviction_bounds_dirty_lines () =
  let r = mk ~max_dirty_lines:64 () in
  for i = 0 to 999 do
    Nvm.Region.write_i64 r (4096 + (i * 64)) (Int64.of_int i)
  done;
  check "dirty bounded" true (Nvm.Region.dirty_line_count r <= 64 + 1);
  check "evictions happened" true
    ((Nvm.Region.stats r).Nvm.Stats.evictions > 0)

let evicted_lines_survive_crash () =
  (* Background write-backs persist data even without explicit flushes. *)
  let r = mk ~max_dirty_lines:8 () in
  for i = 0 to 99 do
    Nvm.Region.write_i64 r (4096 + (i * 64)) (Int64.of_int (i + 1))
  done;
  Nvm.Region.crash_persist_none r;
  let survived = ref 0 in
  for i = 0 to 99 do
    if Nvm.Region.read_i64 r (4096 + (i * 64)) = Int64.of_int (i + 1) then
      incr survived
  done;
  check "most lines were evicted to NVM" true (!survived >= 80)

let line_log_overflow_evicts () =
  (* Hammering one line beyond the log bound behaves like an eviction:
     bounded memory, still crash-consistent (prefix of the tail). *)
  let r = mk () in
  for i = 1 to 10_000 do
    Nvm.Region.write_i64 r 4096 (Int64.of_int i)
  done;
  Nvm.Region.crash_with r ~choose:(fun ~line:_ ~nwrites:_ -> 0);
  let v = Int64.to_int (Nvm.Region.read_i64 r 4096) in
  check "value is some prior state" true (v >= 0 && v <= 10_000)

(* --- statistics and clock ---------------------------------------------- *)

let stats_count_events () =
  let r = mk () in
  let s0 = Nvm.Stats.snapshot (Nvm.Region.stats r) in
  Nvm.Region.write_i64 r 4096 1L;
  Nvm.Region.clwb r 4096;
  Nvm.Region.sfence r;
  Nvm.Region.release_fence r;
  Nvm.Region.wbinvd r;
  let d = Nvm.Stats.diff ~after:(Nvm.Region.stats r) ~before:s0 in
  check_int "writes" 1 d.Nvm.Stats.writes;
  check_int "clwb" 1 d.Nvm.Stats.clwb;
  check_int "sfence" 1 d.Nvm.Stats.sfence;
  check_int "release" 1 d.Nvm.Stats.release_fence;
  check_int "wbinvd" 1 d.Nvm.Stats.wbinvd

let clock_prices_events () =
  let cfg = small_cfg () in
  let r = Nvm.Region.create cfg in
  let t0 = Nvm.Stats.sim_ns (Nvm.Region.stats r) in
  Nvm.Region.write_i64 r 4096 1L;
  Nvm.Region.clwb r 4096;
  Nvm.Region.sfence r;
  let c = cfg.Nvm.Config.cost in
  (* The first touch of the line also pays one LLC miss. *)
  let expect =
    c.Nvm.Config.write_ns +. c.Nvm.Config.mem_miss_ns +. c.Nvm.Config.clwb_ns
    +. c.Nvm.Config.sfence_ns
  in
  let d = Nvm.Stats.sim_ns (Nvm.Region.stats r) -. t0 in
  Alcotest.(check (float 0.001)) "price" expect d

let sfence_extra_latency_charged () =
  let cfg = Nvm.Config.with_sfence_extra_ns (small_cfg ()) 1000.0 in
  let r = Nvm.Region.create cfg in
  let t0 = Nvm.Stats.sim_ns (Nvm.Region.stats r) in
  Nvm.Region.sfence r;
  let d = Nvm.Stats.sim_ns (Nvm.Region.stats r) -. t0 in
  check "includes emulated latency" true (d >= 1000.0)

let llc_misses_priced_once () =
  let cfg = small_cfg () in
  let r = Nvm.Region.create cfg in
  let c = cfg.Nvm.Config.cost in
  let t0 = Nvm.Stats.sim_ns (Nvm.Region.stats r) in
  ignore (Nvm.Region.read_i64 r 4096);
  let t1 = Nvm.Stats.sim_ns (Nvm.Region.stats r) in
  Alcotest.(check (float 0.001)) "first access misses"
    (c.Nvm.Config.read_ns +. c.Nvm.Config.mem_miss_ns)
    (t1 -. t0);
  ignore (Nvm.Region.read_i64 r 4104);
  let t2 = Nvm.Stats.sim_ns (Nvm.Region.stats r) in
  Alcotest.(check (float 0.001)) "same line hits" c.Nvm.Config.read_ns (t2 -. t1);
  ignore (Nvm.Region.read_i64 r 8192);
  let t3 = Nvm.Stats.sim_ns (Nvm.Region.stats r) in
  Alcotest.(check (float 0.001)) "other line misses"
    (c.Nvm.Config.read_ns +. c.Nvm.Config.mem_miss_ns)
    (t3 -. t2)

let llc_rewards_locality () =
  (* A skewed access stream over a large footprint must be cheaper than a
     uniform one (the paper's zipfian-beats-uniform effect). *)
  let footprint = 512 * 1024 in
  let run hot =
    let r = Nvm.Region.create (small_cfg ()) in
    let rng = Util.Rng.create ~seed:5 in
    let t0 = Nvm.Stats.sim_ns (Nvm.Region.stats r) in
    for _ = 1 to 20_000 do
      let addr =
        if hot && Util.Rng.int rng 10 < 9 then 8 * Util.Rng.int rng 64
        else 8 * Util.Rng.int rng (footprint / 8)
      in
      ignore (Nvm.Region.read_i64 r (addr land lnot 7))
    done;
    Nvm.Stats.sim_ns (Nvm.Region.stats r) -. t0
  in
  check "locality is cheaper" true (run true < run false /. 2.0)

let counting_mode_rejects_crash () =
  let r = mk ~crash_support:Nvm.Config.Counting () in
  Nvm.Region.write_i64 r 4096 1L;
  check "crash rejected" true
    (try
       Nvm.Region.crash_persist_none r;
       false
     with Failure _ -> true)

let crash_leaves_llc_cold () =
  (* Regression: crash_with used to leave the LLC tag array warm, so the
     first post-crash read of a previously-hot line was priced as a hit.
     Power loss empties the cache hierarchy; the read must pay a miss. *)
  let cfg = small_cfg () in
  let r = Nvm.Region.create cfg in
  let c = cfg.Nvm.Config.cost in
  Nvm.Region.write_i64 r 4096 42L;
  Nvm.Region.clwb r 4096;
  Nvm.Region.sfence r;
  ignore (Nvm.Region.read_i64 r 4096);
  (* line is now hot *)
  Nvm.Region.crash_persist_all r;
  let t0 = Nvm.Stats.sim_ns (Nvm.Region.stats r) in
  ignore (Nvm.Region.read_i64 r 4096);
  let d = Nvm.Stats.sim_ns (Nvm.Region.stats r) -. t0 in
  Alcotest.(check (float 0.001)) "first post-crash read misses"
    (c.Nvm.Config.read_ns +. c.Nvm.Config.mem_miss_ns)
    d

let clwb_dedups_pending_writebacks () =
  (* Regression: clwb on an already-pending line used to push a duplicate
     entry into the write-back queue. The instruction (and its stat) still
     counts, but the queue holds each line once. *)
  let r = mk () in
  Nvm.Region.write_i64 r 4096 1L;
  Nvm.Region.write_i64 r 8192 2L;
  Nvm.Region.clwb r 4096;
  Nvm.Region.clwb r 4096;
  Nvm.Region.clwb r 8192;
  Nvm.Region.clwb r 4096;
  check_int "queue holds each line once" 2 (Nvm.Region.pending_wb_count r);
  check_int "every clwb still counted" 4 (Nvm.Region.stats r).Nvm.Stats.clwb;
  Nvm.Region.sfence r;
  check_int "sfence drains the queue" 0 (Nvm.Region.pending_wb_count r);
  (* The pending flag must be cleared by the drain, not stuck. *)
  Nvm.Region.write_i64 r 4096 3L;
  Nvm.Region.clwb r 4096;
  check_int "line can be queued again" 1 (Nvm.Region.pending_wb_count r)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let stats_outputs_cover_every_field () =
  (* Regression: pp used to omit wbinvd_lines. Give every counter a
     distinct value and require each to appear in pp, snapshot and diff. *)
  let r = mk () in
  let s = Nvm.Region.stats r in
  let before = Nvm.Stats.snapshot s in
  s.Nvm.Stats.writes <- 2;
  s.Nvm.Stats.reads <- 3;
  s.Nvm.Stats.bytes_written <- 5;
  s.Nvm.Stats.clwb <- 7;
  s.Nvm.Stats.sfence <- 11;
  s.Nvm.Stats.release_fence <- 13;
  s.Nvm.Stats.wbinvd <- 17;
  s.Nvm.Stats.wbinvd_lines <- 19;
  s.Nvm.Stats.lines_committed <- 23;
  s.Nvm.Stats.sweep_quanta <- 37;
  s.Nvm.Stats.sweep_lines <- 41;
  s.Nvm.Stats.evictions <- 29;
  s.Nvm.Stats.crashes <- 31;
  check_int "int_fields is exhaustive" 13 (List.length (Nvm.Stats.int_fields s));
  let distinct =
    List.sort_uniq compare (List.map snd (Nvm.Stats.int_fields s))
  in
  check_int "test gave every field a distinct value" 13 (List.length distinct);
  let printed = Format.asprintf "%a" Nvm.Stats.pp s in
  List.iter
    (fun (name, v) ->
      let cell = Printf.sprintf "%s=%d" name v in
      check (cell ^ " printed") true (contains ~sub:cell printed))
    (Nvm.Stats.int_fields s);
  check "sim time printed" true (contains ~sub:"sim_ms=" printed);
  (* snapshot and diff carry every field through. *)
  let snap = Nvm.Stats.int_fields (Nvm.Stats.snapshot s) in
  List.iter2
    (fun (n, a) (n', b) ->
      Alcotest.(check string) "field order" n n';
      check_int ("snapshot " ^ n) a b)
    (Nvm.Stats.int_fields s) snap;
  let d = Nvm.Stats.diff ~after:s ~before in
  List.iter2
    (fun (n, a) ((_, b), (_, b0)) -> check_int ("diff " ^ n) a (b - b0))
    (Nvm.Stats.int_fields d)
    (List.combine (Nvm.Stats.int_fields s) (Nvm.Stats.int_fields before))

(* --- superblock --------------------------------------------------------- *)

let superblock_format_check () =
  let r = mk () in
  check "unformatted" false (Nvm.Superblock.is_formatted r);
  Nvm.Superblock.format r;
  check "formatted" true (Nvm.Superblock.is_formatted r);
  Nvm.Superblock.check r;
  (* Formatting is immediately durable. *)
  Nvm.Region.crash_persist_none r;
  check "survives crash" true (Nvm.Superblock.is_formatted r)

let layout_lines_disjoint () =
  (* Allocator metadata lines must be distinct cache lines. *)
  let lines = ref [] in
  for i = 0 to Nvm.Layout.max_size_classes - 1 do
    lines := Nvm.Layout.alloc_class_free_line i :: Nvm.Layout.alloc_class_limbo_line i :: !lines
  done;
  lines := Nvm.Layout.off_bump :: Nvm.Layout.off_durable_epoch :: !lines;
  let ids = List.map (fun o -> o / 64) !lines in
  let sorted = List.sort_uniq compare ids in
  check_int "all distinct lines" (List.length ids) (List.length sorted);
  check "inside superblock" true
    (List.for_all (fun o -> o < Nvm.Layout.superblock_bytes) !lines)

let tests =
  ( "nvm",
    [
      Alcotest.test_case "read/write roundtrip" `Quick rw_roundtrip;
      Alcotest.test_case "unaligned i64 rejected" `Quick unaligned_i64_rejected;
      Alcotest.test_case "out of bounds rejected" `Quick out_of_bounds_rejected;
      Alcotest.test_case "blit within" `Quick blit_within_copies;
      Alcotest.test_case "crash loses unflushed data" `Quick crash_without_flush_loses_data;
      Alcotest.test_case "clwb+sfence persists" `Quick clwb_sfence_persists;
      Alcotest.test_case "clwb alone insufficient" `Quick clwb_without_sfence_not_guaranteed;
      Alcotest.test_case "wbinvd persists everything" `Quick wbinvd_persists_everything;
      Alcotest.test_case "crash_persist_all" `Quick crash_all_equals_flush;
      Alcotest.test_case "PCSO same-line prefixes" `Quick pcso_same_line_prefix;
      Alcotest.test_case "PCSO same-word overwrite" `Quick pcso_same_word_overwrites;
      Alcotest.test_case "PCSO lines independent" `Quick pcso_lines_independent;
      QCheck_alcotest.to_alcotest pcso_random_crash_is_prefix;
      Alcotest.test_case "multi-line write splits" `Quick multi_line_write_splits;
      Alcotest.test_case "eviction bounds dirty set" `Quick eviction_bounds_dirty_lines;
      Alcotest.test_case "evicted lines survive" `Quick evicted_lines_survive_crash;
      Alcotest.test_case "line-log overflow evicts" `Quick line_log_overflow_evicts;
      Alcotest.test_case "stats count events" `Quick stats_count_events;
      Alcotest.test_case "clock prices events" `Quick clock_prices_events;
      Alcotest.test_case "sfence extra latency" `Quick sfence_extra_latency_charged;
      Alcotest.test_case "LLC misses priced once" `Quick llc_misses_priced_once;
      Alcotest.test_case "LLC rewards locality" `Quick llc_rewards_locality;
      Alcotest.test_case "counting mode rejects crash" `Quick counting_mode_rejects_crash;
      Alcotest.test_case "crash leaves LLC cold" `Quick crash_leaves_llc_cold;
      Alcotest.test_case "clwb dedups pending write-backs" `Quick clwb_dedups_pending_writebacks;
      Alcotest.test_case "stats outputs cover every field" `Quick stats_outputs_cover_every_field;
      Alcotest.test_case "superblock format/check" `Quick superblock_format_check;
      Alcotest.test_case "layout lines disjoint" `Quick layout_lines_disjoint;
    ] )
