(* Tests for the fine-grained checkpointing epoch manager. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_region () =
  let cfg =
    {
      Nvm.Config.default with
      Nvm.Config.size_bytes = 1024 * 1024;
      extlog_bytes = 64 * 1024;
    }
  in
  let r = Nvm.Region.create cfg in
  Nvm.Superblock.format r;
  r

let fresh_starts_at_two () =
  let em = Epoch.Manager.create (mk_region ()) in
  check_int "current" 2 (Epoch.Manager.current em);
  check_int "marker" 2 (Epoch.Manager.first_epoch_of_run em);
  check "no crash" true (Epoch.Manager.crashed_epoch em = None);
  check_int "no failed epochs" 0 (Epoch.Manager.failed_count em)

let advance_increments_and_flushes () =
  let r = mk_region () in
  let em = Epoch.Manager.create r in
  Nvm.Region.write_i64 r 8192 77L;
  let w0 = (Nvm.Region.stats r).Nvm.Stats.wbinvd in
  Epoch.Manager.advance em;
  check_int "epoch moved" 3 (Epoch.Manager.current em);
  check_int "wbinvd ran" (w0 + 1) (Nvm.Region.stats r).Nvm.Stats.wbinvd;
  (* Data written before the checkpoint is now durable. *)
  Nvm.Region.crash_persist_none r;
  Alcotest.(check int64) "durable" 77L (Nvm.Region.read_i64 r 8192)

let durable_epoch_bump_order () =
  (* The durable epoch index may never exceed what wbinvd made durable:
     after a crash the index must be readable and name the crashed epoch. *)
  let r = mk_region () in
  let em = Epoch.Manager.create r in
  Epoch.Manager.advance em;
  Epoch.Manager.advance em;
  check_int "current" 4 (Epoch.Manager.current em);
  Nvm.Region.crash_persist_none r;
  let em2 = Epoch.Manager.open_after_crash r in
  check "crashed epoch is 4" true (Epoch.Manager.crashed_epoch em2 = Some 4);
  check_int "recovery marker" 5 (Epoch.Manager.first_epoch_of_run em2);
  check "4 is failed" true (Epoch.Manager.is_failed em2 4);
  check "3 is not failed" false (Epoch.Manager.is_failed em2 3)

let failed_set_accumulates () =
  let r = mk_region () in
  let em = ref (Epoch.Manager.create r) in
  for _ = 1 to 5 do
    Nvm.Region.crash_persist_none r;
    em := Epoch.Manager.open_after_crash r;
    Epoch.Manager.advance !em
  done;
  (* Crashes at epochs 2,3(recovery of 2)+1... the exact set depends on the
     bump protocol; what matters: monotone growth and durability. *)
  check "several failed epochs" true (Epoch.Manager.failed_count !em >= 5);
  let before = Epoch.Manager.failed_list !em in
  Nvm.Region.crash_persist_none r;
  let em2 = Epoch.Manager.open_after_crash r in
  check "persisted across crash" true
    (List.for_all (fun e -> Epoch.Manager.is_failed em2 e) before)

let append_failed_is_idempotent () =
  let r = mk_region () in
  let em = Epoch.Manager.create r in
  Epoch.Manager.advance em;
  Nvm.Region.crash_persist_none r;
  let em1 = Epoch.Manager.open_after_crash r in
  let n1 = Epoch.Manager.failed_count em1 in
  (* Crash again without completing recovery: epoch 3 (crashed) is already
     in the set; the recovery epoch 4 joins it. *)
  Nvm.Region.crash_persist_none r;
  let em2 = Epoch.Manager.open_after_crash r in
  check "old entry kept once" true (Epoch.Manager.failed_count em2 = n1 + 1);
  check "recovery epoch failed" true
    (Epoch.Manager.is_failed em2 (Epoch.Manager.first_epoch_of_run em1))

let subscribers_run_in_new_epoch () =
  let r = mk_region () in
  let em = Epoch.Manager.create r in
  let seen = ref [] in
  Epoch.Manager.subscribe_post_advance em (fun () ->
      seen := Epoch.Manager.current em :: !seen);
  Epoch.Manager.subscribe_post_advance em (fun () -> seen := -1 :: !seen);
  Epoch.Manager.advance em;
  Epoch.Manager.advance em;
  Alcotest.(check (list int)) "order preserved, new epochs" [ -1; 4; -1; 3 ]
    !seen

let maybe_advance_follows_clock () =
  let r = mk_region () in
  let em = Epoch.Manager.create ~epoch_len_ns:1000.0 r in
  check "no advance yet" false (Epoch.Manager.maybe_advance em);
  Nvm.Region.advance_clock r 999.0;
  check "still not" false (Epoch.Manager.maybe_advance em);
  Nvm.Region.advance_clock r 2.0;
  check "advances" true (Epoch.Manager.maybe_advance em);
  check "only once" false (Epoch.Manager.maybe_advance em)

let clear_failed_durable () =
  let r = mk_region () in
  let em0 = Epoch.Manager.create r in
  Epoch.Manager.advance em0;
  Nvm.Region.crash_persist_none r;
  let em = Epoch.Manager.open_after_crash r in
  check "has failures" true (Epoch.Manager.failed_count em > 0);
  Epoch.Manager.clear_failed em;
  check_int "cleared" 0 (Epoch.Manager.failed_count em);
  Nvm.Region.crash_persist_none r;
  let em2 = Epoch.Manager.open_after_crash r in
  (* Only the newly crashed epoch is failed now. *)
  check_int "only new crash" 1 (Epoch.Manager.failed_count em2)

let consecutive_crashes_share_one_slot () =
  (* A crash storm (repeated crash-during-recovery) produces strictly
     consecutive failed epochs: far more crashes than there are durable
     slots must still fit, because consecutive epochs extend the last
     range in place instead of consuming a new slot. *)
  let r = mk_region () in
  let em = ref (Epoch.Manager.create r) in
  let crashes = Nvm.Layout.max_failed_epochs + 20 in
  for _ = 1 to crashes do
    Nvm.Region.crash_persist_none r;
    em := Epoch.Manager.open_after_crash r
  done;
  check "all crashes recorded" true
    (Epoch.Manager.failed_count !em >= crashes);
  check "bounded slots" true (Epoch.Manager.failed_slots !em <= 2);
  (* The range decoding round-trips across a re-open. *)
  let before = Epoch.Manager.failed_list !em in
  Nvm.Region.crash_persist_none r;
  let em2 = Epoch.Manager.open_after_crash r in
  check "ranges persisted" true
    (List.for_all (fun e -> Epoch.Manager.is_failed em2 e) before)

let sweep_floor_gc_reclaims_slots () =
  (* Fill the slots with non-consecutive failed epochs, then record a
     sweep floor above them: the next append that needs a slot collects
     the dead ranges instead of raising. *)
  let r = mk_region () in
  let em = ref (Epoch.Manager.create r) in
  (* Non-consecutive: complete a checkpoint between crashes so each
     failed epoch is isolated (epoch jumps by 2 per iteration). *)
  for _ = 1 to Nvm.Layout.max_failed_epochs do
    Epoch.Manager.advance !em;
    Nvm.Region.crash_persist_none r;
    em := Epoch.Manager.open_after_crash r
  done;
  check_int "slots full" Nvm.Layout.max_failed_epochs
    (Epoch.Manager.failed_slots !em);
  (* An eager sweep happened: everything below the current marker is
     unreferenced. *)
  Epoch.Manager.note_swept !em
    ~floor:(Epoch.Manager.first_epoch_of_run !em);
  Epoch.Manager.advance !em;
  Nvm.Region.crash_persist_none r;
  em := Epoch.Manager.open_after_crash r;
  check "gc made room" true
    (Epoch.Manager.failed_slots !em < Nvm.Layout.max_failed_epochs);
  check "new crash recorded" true
    (match Epoch.Manager.crashed_epoch !em with
    | Some e -> Epoch.Manager.is_failed !em e
    | None -> false)

let epoch_encoding_helpers () =
  let e = 0x12345_6789 in
  check_int "lower16" 0x6789 (Epoch.Manager.lower16 e);
  check_int "higher" 0x12345 (Epoch.Manager.higher e);
  check_int "combine"
    e
    (Epoch.Manager.combine ~higher:(Epoch.Manager.higher e)
       ~lower16:(Epoch.Manager.lower16 e))

let epochs_elapsed_counts () =
  let em = Epoch.Manager.create (mk_region ()) in
  check_int "zero" 0 (Epoch.Manager.epochs_elapsed em);
  Epoch.Manager.advance em;
  Epoch.Manager.advance em;
  check_int "two" 2 (Epoch.Manager.epochs_elapsed em)

let tests =
  ( "epoch",
    [
      Alcotest.test_case "fresh starts at epoch 2" `Quick fresh_starts_at_two;
      Alcotest.test_case "advance increments and flushes" `Quick advance_increments_and_flushes;
      Alcotest.test_case "crash/open protocol" `Quick durable_epoch_bump_order;
      Alcotest.test_case "failed set accumulates durably" `Quick failed_set_accumulates;
      Alcotest.test_case "append idempotent" `Quick append_failed_is_idempotent;
      Alcotest.test_case "subscribers run in new epoch" `Quick subscribers_run_in_new_epoch;
      Alcotest.test_case "maybe_advance follows sim clock" `Quick maybe_advance_follows_clock;
      Alcotest.test_case "clear_failed durable" `Quick clear_failed_durable;
      Alcotest.test_case "consecutive crashes share one slot" `Quick consecutive_crashes_share_one_slot;
      Alcotest.test_case "sweep-floor gc reclaims slots" `Quick sweep_floor_gc_reclaims_slots;
      Alcotest.test_case "epoch encoding helpers" `Quick epoch_encoding_helpers;
      Alcotest.test_case "epochs elapsed" `Quick epochs_elapsed_counts;
    ] )
