(* Durable multi-key transactions: buffering, single-shard atomicity
   across crashes, cross-shard two-phase commit, and chaos schedules at
   each commit-protocol site (crash between PREPARE and the watermark,
   crash during recovery's in-doubt resolution). *)

module Sys_ = Incll.System
module St = Store.Sharded

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_opt = Alcotest.(check (option string))

let config =
  {
    Sys_.default_config with
    Sys_.nvm =
      {
        Nvm.Config.default with
        Nvm.Config.size_bytes = 8 * 1024 * 1024;
        extlog_bytes = 256 * 1024;
      };
    (* Long epochs: only the txn machinery's own forced advances create
       checkpoints, so everything after the explicit advance_epochs call
       below is rolled back by a crash unless the txn protocol saves it. *)
    epoch_len_ns = 64.0e6;
  }

let mk ~shards = St.create ~config Sys_.Incll ~shards

(* A key routed to shard [s]: walk scrambled candidates until one lands
   there (uniform spread, so a handful of probes suffice). *)
let key_in_shard store s =
  let rec go i =
    if i > 10_000 then failwith "no key found for shard"
    else
      let k = Masstree.Key.of_int64 (Util.Scramble.fmix64 (Int64.of_int i)) in
      if St.shard_of_key store k = s then k else go (i + 1)
  in
  go (17 * (s + 1))

let crash_recover ?(seed = 42) store =
  St.crash store (Util.Rng.create ~seed);
  (* Recovery may itself be crashed by an armed recover.* point; it must
     converge when re-entered, like a real reboot loop. *)
  let rec loop attempts =
    if attempts > 4 then failwith "recovery did not converge"
    else
      match St.recover store with
      | (_ : (string * float) list) -> ()
      | exception Chaos.Plan.Crash_requested _ ->
          St.crash store (Util.Rng.create ~seed:(seed + attempts));
          loop (attempts + 1)
  in
  loop 0

let buffered_until_commit () =
  Chaos.Plan.reset ();
  let store = mk ~shards:1 in
  St.put store ~key:"base" ~value:"old";
  check "idle" false (St.txn_active store);
  St.txn_begin store;
  check "active" true (St.txn_active store);
  check "has id" true (St.txn_id store <> None);
  St.txn_put store ~key:"a" ~value:"1";
  St.txn_remove store ~key:"base";
  check_opt "read-your-writes" (Some "1") (St.txn_get store ~key:"a");
  check_opt "buffered remove shadows" None (St.txn_get store ~key:"base");
  check_opt "store not touched yet" None (St.get store ~key:"a");
  check_opt "store still has base" (Some "old") (St.get store ~key:"base");
  St.txn_abort store;
  check "abort closes" false (St.txn_active store);
  check_opt "abort dropped the put" None (St.get store ~key:"a");
  check_opt "abort dropped the remove" (Some "old") (St.get store ~key:"base");
  (* And an empty transaction commits without touching anything. *)
  St.txn_begin store;
  St.txn_commit store;
  check "empty commit closes" false (St.txn_active store)

let commit_survives_crash () =
  Chaos.Plan.reset ();
  let store = mk ~shards:1 in
  St.put store ~key:"victim" ~value:"doomed";
  St.advance_epochs store;
  St.txn_begin store;
  St.txn_put store ~key:"ta" ~value:"va";
  St.txn_put store ~key:"tb" ~value:"vb";
  St.txn_remove store ~key:"victim";
  St.txn_commit store;
  (* Same (crashed) epoch, outside any transaction: must roll back. *)
  St.put store ~key:"plain" ~value:"lost";
  crash_recover store;
  check_opt "txn put redone" (Some "va") (St.get store ~key:"ta");
  check_opt "txn put redone (2)" (Some "vb") (St.get store ~key:"tb");
  check_opt "txn remove redone" None (St.get store ~key:"victim");
  check_opt "plain write of crashed epoch gone" None (St.get store ~key:"plain")

let abort_survives_crash () =
  Chaos.Plan.reset ();
  let store = mk ~shards:1 in
  St.advance_epochs store;
  let wm0 = Incll.Txn.watermark (Sys_.region (St.shard store 0)) in
  St.txn_begin store;
  St.txn_put store ~key:"ghost" ~value:"never";
  St.txn_abort store;
  crash_recover store;
  check_opt "aborted write absent" None (St.get store ~key:"ghost");
  check_int "watermark untouched" wm0
    (Incll.Txn.watermark (Sys_.region (St.shard store 0)))

let cross_shard_commit () =
  Chaos.Plan.reset ();
  let shards = 4 in
  let store = mk ~shards in
  let keys = List.init shards (key_in_shard store) in
  St.advance_epochs store;
  St.txn_begin store;
  List.iter (fun k -> St.txn_put store ~key:k ~value:("v" ^ k)) keys;
  St.txn_commit store;
  crash_recover store;
  List.iter
    (fun k -> check_opt "present on every shard" (Some ("v" ^ k)) (St.get store ~key:k))
    keys;
  check_int "nothing else" shards (St.cardinal store)

(* Crash at an armed protocol site, then verify all-or-nothing across
   four shards. [expect_commit] says which side of the commit point the
   site sits on. *)
let torn_commit_at site ~hit ~expect_commit () =
  Chaos.Plan.reset ();
  let shards = 4 in
  let store = mk ~shards in
  let keys = List.init shards (key_in_shard store) in
  St.advance_epochs store;
  let wm0 = Incll.Txn.watermark (Sys_.region (St.shard store 0)) in
  St.txn_begin store;
  List.iter (fun k -> St.txn_put store ~key:k ~value:("v" ^ k)) keys;
  Chaos.Plan.arm { Chaos.Plan.site; hit };
  (match St.txn_commit store with
  | () -> Alcotest.fail "commit was not interrupted"
  | exception Chaos.Plan.Crash_requested _ -> ());
  crash_recover store;
  check "txn closed by crash" false (St.txn_active store);
  if expect_commit then begin
    List.iter
      (fun k ->
        check_opt "redone on every shard" (Some ("v" ^ k)) (St.get store ~key:k))
      keys;
    check "watermark advanced" true
      (Incll.Txn.watermark (Sys_.region (St.shard store 0)) > wm0)
  end
  else begin
    List.iter
      (fun k -> check_opt "rolled back on every shard" None (St.get store ~key:k))
      keys;
    check_int "watermark untouched" wm0
      (Incll.Txn.watermark (Sys_.region (St.shard store 0)));
    check_int "no stragglers" 0 (St.cardinal store)
  end;
  (* The store must be fully usable afterwards. *)
  St.put store ~key:"after" ~value:"ok";
  check_opt "store alive" (Some "ok") (St.get store ~key:"after")

let crash_at_first_prepare =
  torn_commit_at Chaos.Site.Txn_prepare ~hit:1 ~expect_commit:false

let crash_at_last_prepare =
  (* Every PREPARE durable, watermark not yet advanced: the canonical
     in-doubt state — recovery must probe the coordinator and roll back
     on all four shards. *)
  torn_commit_at Chaos.Site.Txn_prepare ~hit:4 ~expect_commit:false

let crash_before_watermark =
  torn_commit_at Chaos.Site.Txn_commit_record ~hit:1 ~expect_commit:false

let crash_during_resolve () =
  Chaos.Plan.reset ();
  let shards = 4 in
  let store = mk ~shards in
  let keys = List.init shards (key_in_shard store) in
  St.advance_epochs store;
  St.txn_begin store;
  List.iter (fun k -> St.txn_put store ~key:k ~value:("v" ^ k)) keys;
  St.txn_commit store;
  (* First recovery attempt dies mid-redo; the reboot loop in
     [crash_recover] re-enters it and must converge to the committed
     state (redo is idempotent). *)
  Chaos.Plan.arm { Chaos.Plan.site = Chaos.Site.Recover_txn_resolve; hit = 1 };
  crash_recover store;
  List.iter
    (fun k ->
      check_opt "redone despite recovery crash" (Some ("v" ^ k))
        (St.get store ~key:k))
    keys;
  check_int "exactly once" shards (St.cardinal store)

let tests =
  ( "txn",
    [
      Alcotest.test_case "buffered until commit" `Quick buffered_until_commit;
      Alcotest.test_case "commit survives crash" `Quick commit_survives_crash;
      Alcotest.test_case "abort survives crash" `Quick abort_survives_crash;
      Alcotest.test_case "cross-shard commit" `Quick cross_shard_commit;
      Alcotest.test_case "crash at first PREPARE" `Quick crash_at_first_prepare;
      Alcotest.test_case "crash at last PREPARE" `Quick crash_at_last_prepare;
      Alcotest.test_case "crash before watermark" `Quick crash_before_watermark;
      Alcotest.test_case "crash during resolve" `Quick crash_during_resolve;
    ] )
