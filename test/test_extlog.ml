(* Tests for the external undo log (§4.2). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk () =
  let cfg =
    {
      Nvm.Config.default with
      Nvm.Config.size_bytes = 2 * 1024 * 1024;
      extlog_bytes = 16 * 1024;
    }
  in
  let r = Nvm.Region.create cfg in
  Nvm.Superblock.format r;
  (r, Extlog.Log.attach r)

let node_addr = 1024 * 1024 (* inside the heap slice *)

let fill r addr n seed =
  for i = 0 to (n / 8) - 1 do
    Nvm.Region.write_i64 r (addr + (8 * i)) (Int64.of_int (seed + i))
  done

let content r addr n = Bytes.to_string (Nvm.Region.read_bytes r addr ~len:n)

let append_replay_roundtrip () =
  let r, log = mk () in
  Extlog.Log.truncate log ~epoch:5;
  fill r node_addr 128 100;
  let image = content r node_addr 128 in
  Extlog.Log.append log ~epoch:5 ~addr:node_addr ~size:128;
  (* Mutate the node, then roll it back. *)
  fill r node_addr 128 999;
  check "mutated" true (content r node_addr 128 <> image);
  check_int "one applied" 1 (Extlog.Log.replay log ~is_failed:(fun e -> e = 5));
  Alcotest.(check string) "restored" image (content r node_addr 128)

let entries_are_durable_immediately () =
  let r, log = mk () in
  Extlog.Log.truncate log ~epoch:5;
  fill r node_addr 64 42;
  Extlog.Log.append log ~epoch:5 ~addr:node_addr ~size:64;
  let image = content r node_addr 64 in
  fill r node_addr 64 777;
  (* Worst-case crash: nothing unflushed survives — but the log entry was
     fenced, so replay still restores the node. *)
  Nvm.Region.crash_persist_none r;
  let log2 = Extlog.Log.attach r in
  check_int "entry survived" 1 (Extlog.Log.replay log2 ~is_failed:(fun e -> e = 5));
  Alcotest.(check string) "restored" image (content r node_addr 64)

let replay_skips_other_epochs () =
  let r, log = mk () in
  Extlog.Log.truncate log ~epoch:4;
  fill r node_addr 64 1;
  Extlog.Log.append log ~epoch:4 ~addr:node_addr ~size:64;
  check_int "wrong epoch not applied" 0
    (Extlog.Log.replay log ~is_failed:(fun e -> e = 9));
  ignore r

let truncation_floor_blocks_stale_entries () =
  (* Epoch 4 writes a long log; epoch 5 truncates and writes a short one;
     stale epoch-4 entries beyond the prefix must not replay even if epoch
     4 is in the failed set. *)
  let r, log = mk () in
  Extlog.Log.truncate log ~epoch:4;
  let other = node_addr + 4096 in
  fill r other 64 50;
  Extlog.Log.append log ~epoch:4 ~addr:other ~size:64;
  fill r other 64 60;
  Extlog.Log.append log ~epoch:4 ~addr:other ~size:64;
  Extlog.Log.truncate log ~epoch:5;
  fill r node_addr 64 70;
  Extlog.Log.append log ~epoch:5 ~addr:node_addr ~size:64;
  let before = content r other 64 in
  let applied = Extlog.Log.replay log ~is_failed:(fun e -> e = 4 || e = 5) in
  check_int "only the prefix entry" 1 applied;
  Alcotest.(check string) "stale entry not applied" before (content r other 64)

let torn_tail_entry_rejected () =
  (* An entry whose payload lines were lost must fail its checksum. *)
  let r, log = mk () in
  Extlog.Log.truncate log ~epoch:5;
  fill r node_addr 256 11;
  Extlog.Log.append log ~epoch:5 ~addr:node_addr ~size:256;
  (* Corrupt one payload word directly, then rebuild the reader. *)
  Nvm.Region.write_i64 r (Nvm.Layout.extlog_off + 64 + 48 + 16) 0xDEADL;
  Nvm.Region.wbinvd r;
  let log2 = Extlog.Log.attach r in
  check_int "rejected" 0 (Extlog.Log.replay log2 ~is_failed:(fun e -> e = 5))

let log_full_raises () =
  let r, log = mk () in
  Extlog.Log.truncate log ~epoch:3;
  fill r node_addr 1024 0;
  check "raises" true
    (try
       for _ = 1 to 1000 do
         Extlog.Log.append log ~epoch:3 ~addr:node_addr ~size:1024
       done;
       false
     with Extlog.Log.Log_full -> true);
  check "capacity accounted" true (Extlog.Log.used log <= Extlog.Log.capacity log)

let truncate_resets_cursor () =
  let r, log = mk () in
  Extlog.Log.truncate log ~epoch:3;
  fill r node_addr 64 0;
  Extlog.Log.append log ~epoch:3 ~addr:node_addr ~size:64;
  let used = Extlog.Log.used log in
  check "used > 0" true (used > 0);
  Extlog.Log.truncate log ~epoch:4;
  check_int "cursor reset" 0 (Extlog.Log.used log);
  check_int "floor recorded" 4 (Extlog.Log.truncation_epoch log)

let replay_order_independent () =
  (* Entries are for distinct nodes (at-most-once-per-epoch), so replaying
     is just a set of memcpys; verify multiple entries all land. *)
  let r, log = mk () in
  Extlog.Log.truncate log ~epoch:6;
  let addrs = List.init 5 (fun i -> node_addr + (i * 512)) in
  let images =
    List.map
      (fun a ->
        fill r a 64 (a / 7);
        let img = content r a 64 in
        Extlog.Log.append log ~epoch:6 ~addr:a ~size:64;
        img)
      addrs
  in
  List.iter (fun a -> fill r a 64 123456) addrs;
  check_int "all applied" 5 (Extlog.Log.replay log ~is_failed:(fun e -> e = 6));
  List.iter2
    (fun a img -> Alcotest.(check string) "restored" img (content r a 64))
    addrs images

let replay_idempotent () =
  let r, log = mk () in
  Extlog.Log.truncate log ~epoch:6;
  fill r node_addr 64 5;
  let image = content r node_addr 64 in
  Extlog.Log.append log ~epoch:6 ~addr:node_addr ~size:64;
  fill r node_addr 64 99;
  ignore (Extlog.Log.replay log ~is_failed:(fun e -> e = 6));
  ignore (Extlog.Log.replay log ~is_failed:(fun e -> e = 6));
  Alcotest.(check string) "still correct" image (content r node_addr 64)

let scan_lists_entries () =
  let r, log = mk () in
  Extlog.Log.truncate log ~epoch:7;
  fill r node_addr 64 1;
  Extlog.Log.append log ~epoch:7 ~addr:node_addr ~size:64;
  fill r (node_addr + 512) 128 2;
  Extlog.Log.append log ~epoch:7 ~addr:(node_addr + 512) ~size:128;
  let seen = ref [] in
  Extlog.Log.scan_entries log (fun ~kind:_ ~epoch ~addr ~size ->
      seen := (epoch, addr, size) :: !seen);
  Alcotest.(check (list (triple int int int)))
    "entries"
    [ (7, node_addr, 64); (7, node_addr + 512, 128) ]
    (List.rev !seen)

let stats_track_appends () =
  let r, log = mk () in
  Extlog.Log.truncate log ~epoch:3;
  fill r node_addr 64 0;
  Extlog.Log.append log ~epoch:3 ~addr:node_addr ~size:64;
  Extlog.Log.append log ~epoch:3 ~addr:node_addr ~size:64;
  check_int "nodes" 2 (Extlog.Log.nodes_logged log);
  check_int "bytes" 128 (Extlog.Log.bytes_logged log)

let bad_sizes_rejected () =
  let _, log = mk () in
  check "odd size" true
    (try
       Extlog.Log.append log ~epoch:3 ~addr:node_addr ~size:63;
       false
     with Invalid_argument _ -> true)

let record_roundtrip () =
  let _, log = mk () in
  Extlog.Log.truncate log ~epoch:9;
  Extlog.Log.append_record log ~kind:Extlog.Log.kind_txn_prepare ~epoch:9
    ~txn_id:41 ~payload:"s0,s2";
  Extlog.Log.append_record log ~kind:Extlog.Log.kind_txn_commit ~epoch:9
    ~txn_id:41 ~payload:"";
  let seen = ref [] in
  Extlog.Log.fold_live_records log
    ~is_failed:(fun e -> e = 9)
    (fun ~kind ~epoch ~txn_id ~payload ->
      seen := (kind, epoch, txn_id, payload) :: !seen);
  match List.rev !seen with
  | [ (k1, e1, id1, p1); (k2, e2, id2, p2) ] ->
      check_int "prepare kind" Extlog.Log.kind_txn_prepare k1;
      check_int "commit kind" Extlog.Log.kind_txn_commit k2;
      check_int "prepare epoch" 9 e1;
      check_int "commit epoch" 9 e2;
      check_int "prepare id" 41 id1;
      check_int "commit id" 41 id2;
      (* Payloads are NUL-padded to 8 bytes; content must round-trip as a
         prefix with only padding after it. *)
      check "prepare payload prefix" true
        (String.length p1 >= 5 && String.sub p1 0 5 = "s0,s2"
        && String.for_all (fun c -> c = '\000')
             (String.sub p1 5 (String.length p1 - 5)));
      check "commit payload is padding" true
        (String.for_all (fun c -> c = '\000') p2)
  | l -> Alcotest.failf "expected 2 records, got %d" (List.length l)

let replay_skips_txn_records () =
  (* A txn record interleaved between node images must not be copied
     anywhere by replay, and live-epoch filtering applies to records
     exactly as to node entries. *)
  let r, log = mk () in
  Extlog.Log.truncate log ~epoch:4;
  fill r node_addr 64 1;
  let image = content r node_addr 64 in
  Extlog.Log.append log ~epoch:4 ~addr:node_addr ~size:64;
  Extlog.Log.append_record log ~kind:Extlog.Log.kind_txn_prepare ~epoch:4
    ~txn_id:7 ~payload:"x";
  fill r node_addr 64 2;
  check_int "only the node entry applies" 1
    (Extlog.Log.replay log ~is_failed:(fun e -> e = 4));
  Alcotest.(check string) "node image restored" image (content r node_addr 64);
  let live = ref 0 in
  Extlog.Log.fold_live_records log
    ~is_failed:(fun e -> e = 5)
    (fun ~kind:_ ~epoch:_ ~txn_id:_ ~payload:_ -> incr live);
  check_int "record of a non-failed epoch is not live" 0 !live;
  let all = ref 0 in
  Extlog.Log.fold_all_records log
    (fun ~kind:_ ~epoch:_ ~txn_id:_ ~payload:_ -> incr all);
  check_int "but fold_all still sees it" 1 !all

let tests =
  ( "extlog",
    [
      Alcotest.test_case "append/replay roundtrip" `Quick append_replay_roundtrip;
      Alcotest.test_case "entries durable immediately" `Quick entries_are_durable_immediately;
      Alcotest.test_case "replay skips other epochs" `Quick replay_skips_other_epochs;
      Alcotest.test_case "truncation floor blocks stale" `Quick truncation_floor_blocks_stale_entries;
      Alcotest.test_case "torn entry rejected" `Quick torn_tail_entry_rejected;
      Alcotest.test_case "log full raises" `Quick log_full_raises;
      Alcotest.test_case "truncate resets cursor" `Quick truncate_resets_cursor;
      Alcotest.test_case "replay multiple entries" `Quick replay_order_independent;
      Alcotest.test_case "replay idempotent" `Quick replay_idempotent;
      Alcotest.test_case "scan lists entries" `Quick scan_lists_entries;
      Alcotest.test_case "stats track appends" `Quick stats_track_appends;
      Alcotest.test_case "bad sizes rejected" `Quick bad_sizes_rejected;
      Alcotest.test_case "txn record roundtrip" `Quick record_roundtrip;
      Alcotest.test_case "replay skips txn records" `Quick replay_skips_txn_records;
    ] )
