(* The fault-tolerance layer (DESIGN.md §17): the session dedup record
   codec, net.* chaos plan points, NVM mirror round trips, client
   deadlines, stamped-replay dedup in the engine, session-table rebuild
   during recovery, and the retrying session driving ops through a
   fault-injecting proxy. *)

module Sys_ = Incll.System
module P = Wire.Proto
module C = Wire.Client
module S = Wire.Session
module E = Server.Engine
module NP = Chaos_net.Netproxy

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_cfg =
  {
    Sys_.default_config with
    Sys_.nvm =
      {
        Nvm.Config.default with
        Nvm.Config.size_bytes = 8 * 1024 * 1024;
        extlog_bytes = 512 * 1024;
      };
  }

(* --- session dedup record codec ----------------------------------------- *)

let codec_roundtrip () =
  let module L = Incll.Session in
  List.iter
    (fun (seq, status, op) ->
      match L.decode (L.encode ~seq ~status op) with
      | Some (seq', status', op') ->
          check_int "seq" seq seq';
          check_int "status" status status';
          check "op" true (op = op')
      | None -> Alcotest.fail "well-formed record rejected")
    [
      (1, 0, L.Put { key = "k"; value = "v" });
      (0xffff, 1, L.Put { key = ""; value = String.make 300 'x' });
      (7, 0, L.Remove { key = "gone" });
      (123456789, 2, L.Commit { txn_id = 42 });
    ];
  (* Malformed bytes are dropped, not fatal: recovery must survive a
     writer bug. *)
  List.iter
    (fun s -> check "malformed dropped" true (Incll.Session.decode s = None))
    [ ""; "x"; String.make 3 '\xff' ]

(* --- net.* chaos plan points -------------------------------------------- *)

let net_points_parse () =
  List.iter
    (fun site ->
      let p = { Chaos.Plan.site; hit = 5 } in
      let s = Chaos.Plan.point_to_string p in
      check ("roundtrip " ^ s) true (Chaos.Plan.point_of_string s = p);
      check "not a recovery site" false (Chaos.Site.is_recovery site))
    [
      Chaos.Site.Net_drop;
      Chaos.Site.Net_delay;
      Chaos.Site.Net_dup;
      Chaos.Site.Net_trunc;
      Chaos.Site.Net_sever;
    ];
  (* The proxy refuses non-net sites: a crash plan is not a frame plan. *)
  match
    NP.start
      ~sched_up:[ { Chaos.Plan.site = Chaos.Site.Sfence; hit = 1 } ]
      ~listen:(C.Tcp ("127.0.0.1", 0))
      ~upstream:(C.Tcp ("127.0.0.1", 1))
      ()
  with
  | t ->
      NP.stop t;
      Alcotest.fail "crash site accepted in a net schedule"
  | exception Invalid_argument _ -> ()

(* --- NVM mirror round trip ---------------------------------------------- *)

(* A mirrored region's image file tracks commit_line, so a checkpointed
   store reloaded from the file recovers everything it acked. *)
let mirror_roundtrip () =
  let path = Filename.temp_file "incll_mirror" ".img" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let s = Sys_.create ~config:small_cfg Sys_.Incll in
      Nvm.Region.attach_mirror (Sys_.region s) ~path;
      for i = 0 to 199 do
        Sys_.put s ~key:(Printf.sprintf "m%03d" i) ~value:(string_of_int i)
      done;
      Sys_.advance_epoch s;
      match Nvm.Region.load_mirror small_cfg.Sys_.nvm ~path with
      | None -> Alcotest.fail "mirror file did not reload"
      | Some region ->
          let r = Sys_.attach ~config:small_cfg Sys_.Incll region in
          for i = 0 to 199 do
            check "mirrored key survives" true
              (Sys_.get r ~key:(Printf.sprintf "m%03d" i)
              = Some (string_of_int i))
          done)

(* --- session-table rebuild during recovery ------------------------------ *)

(* A session record makes its op redoable: the epoch that held the put
   is rolled back by the crash, but recovery replays the record and
   rebuilds the (sid, seq, status) table the engine reseeds from. *)
let recovery_rebuilds_sessions () =
  let s = Sys_.create ~config:small_cfg Sys_.Incll in
  Sys_.put s ~key:"sk" ~value:"v1";
  Sys_.record_session s ~sid:7 ~seq:3 ~status:0
    (Incll.Session.Put { key = "sk"; value = "v1" });
  Sys_.put s ~key:"other" ~value:"x";
  Sys_.record_session s ~sid:9 ~seq:1 ~status:0
    (Incll.Session.Put { key = "other"; value = "x" });
  (* Power failure that persists every pending line write. *)
  Sys_.crash_with s ~choose:(fun ~line:_ ~nwrites -> nwrites);
  let r = Sys_.recover s in
  check "acked put redone" true (Sys_.get r ~key:"sk" = Some "v1");
  check "second acked put redone" true (Sys_.get r ~key:"other" = Some "x");
  let sessions =
    List.sort compare (Sys_.recovered_sessions r)
  in
  check "dedup table rebuilt" true (sessions = [ (7, 3, 0); (9, 1, 0) ]);
  (match Sys_.last_recover_stats r with
  | Some st -> check_int "sessions_recovered" 2 st.Sys_.sessions_recovered
  | None -> Alcotest.fail "no recover stats")

(* --- the running engine ------------------------------------------------- *)

let server_config =
  Bench_harness.Runner.config_for ~epoch_len_ns:1.0e6 ~nkeys_per_shard:1_064 ()

let with_server ?queue_capacity ?batch ?on_dequeue ?(shards = 2) f =
  let addr = C.Unix_sock (Filename.temp_file "incll_sess" ".sock") in
  let srv =
    E.start ?queue_capacity ?batch ?on_dequeue ~config:server_config
      ~variant:Sys_.Incll ~shards addr
  in
  Fun.protect ~finally:(fun () -> E.stop srv) (fun () -> f srv)

let dedup_hits srv =
  let c = C.connect (E.addr srv) in
  Fun.protect
    ~finally:(fun () -> C.close c)
    (fun () ->
      match
        Obs.Json.find_path
          (Obs.Json.of_string (C.stats c P.Stats_json))
          [ "counters"; "server.dedup_hits" ]
      with
      | Some (Obs.Json.Int n) -> n
      | _ -> 0)

(* A per-call deadline turns a wedged server into a typed Timeout
   instead of a hang. *)
let client_deadline_timeout () =
  let gate = Atomic.make false in
  let on_dequeue ~shard:_ =
    while not (Atomic.get gate) do
      Unix.sleepf 0.001
    done
  in
  with_server ~shards:1 ~batch:1 ~on_dequeue (fun srv ->
      let c = C.connect (E.addr srv) in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set gate true;
          C.close c)
        (fun () ->
          match
            C.call ~deadline:(Unix.gettimeofday () +. 0.2) c (P.Put ("k", "v"))
          with
          | (_ : P.reply) -> Alcotest.fail "wedged call returned"
          | exception C.Timeout -> ()))

(* Replaying a (sid, seq) stamp answers from the record instead of
   re-applying — the second PUT under the same stamp must not clobber. *)
let stamped_replay_deduped () =
  with_server (fun srv ->
      let c = C.connect (E.addr srv) in
      Fun.protect
        ~finally:(fun () -> C.close c)
        (fun () ->
          let sid =
            match C.call c (P.Hello 0) with
            | { P.status = P.Ok; payload = P.Value v; _ } -> int_of_string v
            | r -> Alcotest.fail (P.status_name r.P.status)
          in
          check "sid granted" true (sid > 0);
          let r1 = C.call ~sess:(sid, 1) c (P.Put ("dk", "first")) in
          check "stamped put ok" true (r1.P.status = P.Ok);
          (* The retry: same stamp, different payload — must be a no-op
             answered with the recorded status. *)
          let r2 = C.call ~sess:(sid, 1) c (P.Put ("dk", "second")) in
          check "replay ok" true (r2.P.status = P.Ok);
          check "replay did not re-apply" true (C.get c "dk" = Some "first");
          (* An older stamp is also recognised as already-done. *)
          let sid2 =
            match C.call c (P.Hello 0) with
            | { P.status = P.Ok; payload = P.Value v; _ } -> int_of_string v
            | r -> Alcotest.fail (P.status_name r.P.status)
          in
          check "fresh sids are distinct" true (sid2 <> sid);
          (* A fresh seq under the same session applies normally. *)
          let r3 = C.call ~sess:(sid, 2) c (P.Put ("dk", "third")) in
          check "next seq applies" true (r3.P.status = P.Ok);
          check "next seq visible" true (C.get c "dk" = Some "third"));
      check "dedup hits counted" true (dedup_hits srv >= 1))

(* The retrying session through a proxy that drops reply frames and
   severs the connection: every op lands exactly once, the session
   reports its retries/reconnects, and the server's dedup absorbed the
   resends of already-applied ops. *)
let session_rides_through_faults () =
  with_server (fun srv ->
      (* Downstream frame 1 is the HELLO reply; drop two op replies and
         later cut the connection between frames. *)
      let sched_down =
        [
          { Chaos.Plan.site = Chaos.Site.Net_drop; hit = 3 };
          { Chaos.Plan.site = Chaos.Site.Net_sever; hit = 9 };
          { Chaos.Plan.site = Chaos.Site.Net_drop; hit = 14 };
        ]
      in
      let proxy =
        NP.start ~sched_down
          ~listen:(C.Unix_sock (Filename.temp_file "incll_np" ".sock"))
          ~upstream:(E.addr srv) ()
      in
      Fun.protect
        ~finally:(fun () -> NP.stop proxy)
        (fun () ->
          let cfg =
            {
              S.default_config with
              S.attempt_timeout = 0.3;
              backoff_base = 0.01;
              backoff_max = 0.05;
            }
          in
          let s = S.connect ~config:cfg (NP.addr proxy) in
          Fun.protect
            ~finally:(fun () -> S.close s)
            (fun () ->
              for i = 0 to 19 do
                S.put s (Printf.sprintf "f%02d" i) (string_of_int i)
              done;
              (* A buffered txn replays wholesale through the same
                 faults. *)
              S.txn_begin s;
              S.txn_put s "t0" "a";
              S.txn_put s "t1" "b";
              check "ryw" true (S.txn_get s "t0" = Some "a");
              S.txn_commit s;
              check "faults actually injected" true (NP.injected_total proxy >= 2);
              check "retries reported" true (S.retries s >= 1);
              check "reconnects reported" true (S.reconnects s >= 1);
              check "backoff accounted" true (S.backoff_ns s > 0.0)));
      (* Exactly-once: read back directly, bypassing the proxy. *)
      let c = C.connect (E.addr srv) in
      Fun.protect
        ~finally:(fun () -> C.close c)
        (fun () ->
          for i = 0 to 19 do
            check "op landed once" true
              (C.get c (Printf.sprintf "f%02d" i) = Some (string_of_int i))
          done;
          check "txn committed" true
            (C.get c "t0" = Some "a" && C.get c "t1" = Some "b"));
      check "dropped replies were dedup hits" true (dedup_hits srv >= 1))

let tests =
  ( "session",
    [
      Alcotest.test_case "dedup record codec round trip" `Quick codec_roundtrip;
      Alcotest.test_case "net.* plan points parse" `Quick net_points_parse;
      Alcotest.test_case "NVM mirror round trip" `Quick mirror_roundtrip;
      Alcotest.test_case "recovery rebuilds session tables" `Quick
        recovery_rebuilds_sessions;
      Alcotest.test_case "client deadline -> Timeout" `Quick
        client_deadline_timeout;
      Alcotest.test_case "stamped replay answered from the record" `Quick
        stamped_replay_deduped;
      Alcotest.test_case "session rides through frame faults" `Quick
        session_rides_through_faults;
    ] )
