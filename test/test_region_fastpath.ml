(* Differential test for the allocation-free fast paths of [Nvm.Region].

   The fast accessors (fused-check [write_i64]/[read_i64], the tagged-int
   [write_int]/[read_int], [write_string]/[read_string] and the unboxed
   [compare_u64]) must be observationally identical to the generic
   byte-wise path ([write_bytes]/[read_bytes] composed with [Int64] and
   string conversions): same volatile bytes, same persisted image, same
   statistics counters and the same simulated clock, bit for bit.

   Two regions with identical configuration are driven with the same
   randomized op sequence — region F through the fast paths, region G
   through the generic ones — and compared after the run, including (in
   Precise mode) after an adversarial crash chosen by a deterministic
   prefix function. A small [max_dirty_lines] forces evictions along the
   way; the eviction RNG is seeded per-region, so both regions evict the
   same lines at the same points iff their dirty sets stayed equal. *)

module Region = Nvm.Region

let check = Alcotest.(check bool)

let size_bytes = 1024 * 1024

let cfg crash_support =
  {
    Nvm.Config.default with
    Nvm.Config.size_bytes;
    extlog_bytes = 64 * 1024;
    crash_support;
    max_dirty_lines = Some 512;
  }

let lo = 4096
let span = size_bytes - lo - 256

(* Aligned word address within the exercised window. *)
let word_addr rng = lo + (8 * Util.Rng.int rng (span / 8))
let byte_addr rng = lo + Util.Rng.int rng span

let rand_i64 rng =
  (* Full 64-bit coverage, including bit 63 (the unsigned-compare and
     int-truncation edge). *)
  let hi = Util.Rng.int rng (1 lsl 32) and lo_ = Util.Rng.int rng (1 lsl 32) in
  Int64.logor
    (Int64.shift_left (Int64.of_int hi) 32)
    (Int64.of_int lo_)

let le8 v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  b

let i64_of_le b = Bytes.get_int64_le b 0

let sign c = compare c 0

(* Compare every observable: counters first (a counter mismatch explains
   a byte mismatch, not the other way around), then the simulated clock,
   then the full volatile image. The image comparison reads both regions
   identically, so it charges both equally and later comparisons stay
   meaningful. *)
let assert_same ~at f g =
  List.iter2
    (fun (name, vf) (_, vg) ->
      Alcotest.(check int) (at ^ ": stats." ^ name) vf vg)
    (Nvm.Stats.int_fields (Region.stats f))
    (Nvm.Stats.int_fields (Region.stats g));
  check
    (at ^ ": sim_ns bit-identical")
    true
    (Nvm.Stats.sim_ns (Region.stats f) = Nvm.Stats.sim_ns (Region.stats g));
  check
    (at ^ ": volatile image")
    true
    (Region.read_bytes f 0 ~len:size_bytes
    = Region.read_bytes g 0 ~len:size_bytes)

(* One random op applied to both regions; F takes the fast path, G the
   generic byte-wise one. *)
let step rng f g =
  match Util.Rng.int rng 11 with
  | 0 ->
      let addr = word_addr rng and v = rand_i64 rng in
      Region.write_i64 f addr v;
      Region.write_bytes g addr (le8 v)
  | 1 ->
      let addr = word_addr rng and v = rand_i64 rng in
      (* write_int truncates bit 63 exactly like Int64.to_int. *)
      let x = Int64.to_int v in
      Region.write_int f addr x;
      Region.write_bytes g addr (le8 (Int64.of_int x))
  | 2 ->
      let addr = byte_addr rng and v = Util.Rng.int rng 256 in
      Region.write_u8 f addr v;
      Region.write_bytes g addr (Bytes.make 1 (Char.chr v))
  | 3 ->
      let len = 1 + Util.Rng.int rng 120 in
      let addr = lo + Util.Rng.int rng (span - len) in
      let s = String.init len (fun _ -> Char.chr (Util.Rng.int rng 256)) in
      Region.write_string f addr s;
      Region.write_bytes g addr (Bytes.of_string s)
  | 4 ->
      let addr = word_addr rng in
      check "read_i64 = read_bytes" true
        (Region.read_i64 f addr = i64_of_le (Region.read_bytes g addr ~len:8))
  | 5 ->
      let addr = word_addr rng in
      check "read_int = to_int of bytes" true
        (Region.read_int f addr
        = Int64.to_int (i64_of_le (Region.read_bytes g addr ~len:8)))
  | 6 ->
      let len = 1 + Util.Rng.int rng 120 in
      let addr = lo + Util.Rng.int rng (span - len) in
      check "read_string = read_bytes" true
        (Region.read_string f addr ~len
        = Bytes.to_string (Region.read_bytes g addr ~len))
  | 7 ->
      let addr = word_addr rng and probe = rand_i64 rng in
      let hi = Int64.to_int (Int64.shift_right_logical probe 32)
      and lo_ = Int64.to_int (Int64.logand probe 0xFFFF_FFFFL) in
      check "compare_u64 = unsigned_compare" true
        (sign (Region.compare_u64 f addr ~hi ~lo:lo_)
        = sign
            (Int64.unsigned_compare
               (i64_of_le (Region.read_bytes g addr ~len:8))
               probe))
  | 8 ->
      let len = 8 + Util.Rng.int rng 120 in
      let src = lo + Util.Rng.int rng (span - len) in
      let dst = lo + Util.Rng.int rng (span - len) in
      Region.blit_within f ~src ~dst ~len;
      Region.blit_within g ~src ~dst ~len
  | 9 ->
      let addr = byte_addr rng in
      Region.clwb f addr;
      Region.clwb g addr
  | _ ->
      Region.sfence f;
      Region.sfence g

let run_differential crash_support ~steps ~seed =
  let f = Region.create (cfg crash_support) in
  let g = Region.create (cfg crash_support) in
  let rng = Util.Rng.create ~seed in
  for _ = 1 to steps do
    step rng f g
  done;
  assert_same ~at:"after ops" f g;
  if crash_support = Nvm.Config.Precise then begin
    (* Adversarial deterministic crash: both regions keep the same store
       prefix per line, so the persisted images (which the crash reloads
       into the volatile ones) must also match. *)
    let choose ~line ~nwrites = (line + nwrites) mod (nwrites + 1) in
    Region.crash_with f ~choose;
    Region.crash_with g ~choose;
    assert_same ~at:"after crash" f g
  end

let fastpath_precise () =
  run_differential Nvm.Config.Precise ~steps:4000 ~seed:7

let fastpath_counting () =
  run_differential Nvm.Config.Counting ~steps:4000 ~seed:11

let fastpath_more_seeds () =
  (* A few shorter runs over different seeds, both modes. *)
  List.iter
    (fun seed ->
      run_differential Nvm.Config.Precise ~steps:800 ~seed;
      run_differential Nvm.Config.Counting ~steps:800 ~seed)
    [ 1; 2; 3; 42 ]

let tests =
  ( "region_fastpath",
    [
      Alcotest.test_case "fast paths = generic path (Precise)" `Quick
        fastpath_precise;
      Alcotest.test_case "fast paths = generic path (Counting)" `Quick
        fastpath_counting;
      Alcotest.test_case "differential, more seeds" `Quick fastpath_more_seeds;
    ] )
