(* Tests for the durable allocator (§5) and the transient baselines. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_em () =
  let cfg =
    {
      Nvm.Config.default with
      Nvm.Config.size_bytes = 4 * 1024 * 1024;
      extlog_bytes = 64 * 1024;
    }
  in
  let r = Nvm.Region.create cfg in
  Nvm.Superblock.format r;
  (r, Epoch.Manager.create r)

(* --- size classes ------------------------------------------------------ *)

let classes_are_64_multiples () =
  for i = 0 to Alloc.Size_class.count - 1 do
    check "multiple of 64" true (Alloc.Size_class.chunk_size i mod 64 = 0);
    if i > 0 then
      check "ascending" true
        (Alloc.Size_class.chunk_size i > Alloc.Size_class.chunk_size (i - 1))
  done

let class_selection () =
  let c = Alloc.Size_class.class_of_payload 32 in
  check "fits" true (Alloc.Size_class.payload_capacity ~cls:c ~aligned:false >= 32);
  let c = Alloc.Size_class.class_of_aligned_payload 384 in
  check_int "node chunk" 448 (Alloc.Size_class.chunk_size c);
  check "too large raises" true
    (try
       ignore (Alloc.Size_class.class_of_payload 100_000);
       false
     with Invalid_argument _ -> true)

let payload_addressing () =
  let chunk = 64 * 1000 in
  let p = Alloc.Size_class.payload_of_chunk ~chunk ~aligned:false in
  check_int "ordinary offset" (chunk + 16) p;
  check_int "ordinary back" chunk (Alloc.Size_class.chunk_of_payload p);
  let pa = Alloc.Size_class.payload_of_chunk ~chunk ~aligned:true in
  check_int "aligned offset" (chunk + 64) pa;
  check_int "aligned back" chunk (Alloc.Size_class.chunk_of_payload pa)

(* --- chunk header (§5.1 encoding) -------------------------------------- *)

let header_roundtrip () =
  let r, em = mk_em () in
  ignore em;
  let chunk = 64 * 1024 in
  Alloc.Chunk_header.init r ~chunk ~epoch:0xABCD1234 ~cls:9;
  let d = Alloc.Chunk_header.read r ~chunk in
  check_int "next" 0 d.Alloc.Chunk_header.next;
  check_int "epoch" 0xABCD1234 d.Alloc.Chunk_header.epoch;
  check_int "class" 9 d.Alloc.Chunk_header.size_class;
  check "ctr matches" true d.Alloc.Chunk_header.ctr_matches

let header_first_touch_bumps_counter () =
  let r, _ = mk_em () in
  let chunk = 64 * 1024 in
  Alloc.Chunk_header.init r ~chunk ~epoch:5 ~cls:2;
  Alloc.Chunk_header.write_next r ~chunk ~next:(64 * 2048);
  Alloc.Chunk_header.write_first_touch r ~chunk ~current_next:(64 * 2048)
    ~epoch:6 ~cls:2;
  let d = Alloc.Chunk_header.read r ~chunk in
  check_int "incll copies next" (64 * 2048) d.Alloc.Chunk_header.next_incll;
  check_int "epoch updated" 6 d.Alloc.Chunk_header.epoch;
  check "ctrs match" true d.Alloc.Chunk_header.ctr_matches

let header_torn_write_detected () =
  (* Crash between the two first-touch stores: word1 (new ctr) persists,
     word0 keeps the old ctr => ctr mismatch => recover from nextInCLL. *)
  let r, _ = mk_em () in
  let chunk = 64 * 1024 in
  Alloc.Chunk_header.init r ~chunk ~epoch:5 ~cls:2;
  Nvm.Region.wbinvd r;
  Alloc.Chunk_header.write_first_touch r ~chunk ~current_next:0 ~epoch:6 ~cls:2;
  Nvm.Region.crash_with r ~choose:(fun ~line ~nwrites:_ ->
      if line = chunk / 64 then 1 (* only word1's store *) else 0);
  let d = Alloc.Chunk_header.read r ~chunk in
  check "torn detected" false d.Alloc.Chunk_header.ctr_matches;
  Alloc.Chunk_header.restore r ~chunk ~marker_epoch:7;
  let d = Alloc.Chunk_header.read r ~chunk in
  check "restored consistent" true d.Alloc.Chunk_header.ctr_matches;
  check_int "next from incll" 0 d.Alloc.Chunk_header.next;
  check_int "class preserved" 2 d.Alloc.Chunk_header.size_class

let header_encoding_property =
  QCheck.Test.make ~name:"chunk header packs epoch and class" ~count:500
    QCheck.(triple (int_bound 0xFFFFFFF) (int_bound 15) (int_bound 100000))
    (fun (epoch, cls, ptr16) ->
      let region, _ = mk_em () in
      let chunk = 64 * 512 in
      let ptr = ptr16 * 16 in
      Alloc.Chunk_header.init region ~chunk ~epoch ~cls;
      Alloc.Chunk_header.write_first_touch region ~chunk ~current_next:ptr
        ~epoch ~cls;
      let d = Alloc.Chunk_header.read region ~chunk in
      d.Alloc.Chunk_header.next = ptr
      && d.Alloc.Chunk_header.epoch = epoch land 0xFFFFFFFF
      && d.Alloc.Chunk_header.size_class = cls)

(* --- meta lines --------------------------------------------------------- *)

let meta_line_rollback () =
  let r, _ = mk_em () in
  let line = Nvm.Layout.alloc_class_free_line 0 in
  Alloc.Meta_line.init r ~line ~head:(111 * 16) ~epoch:5;
  Nvm.Region.wbinvd r;
  (* Epoch 6 modifies the head twice. *)
  Alloc.Meta_line.touch r ~line ~epoch:6;
  Alloc.Meta_line.set_head r ~line (222 * 16);
  Alloc.Meta_line.touch r ~line ~epoch:6;
  Alloc.Meta_line.set_head r ~line (333 * 16);
  Nvm.Region.crash_persist_all r;
  Alloc.Meta_line.recover r ~line ~is_failed:(fun e -> e = 6) ~marker:7;
  check_int "rolled back" (111 * 16) (Alloc.Meta_line.head r ~line)

let meta_line_no_rollback_when_epoch_completed () =
  let r, _ = mk_em () in
  let line = Nvm.Layout.alloc_class_free_line 1 in
  Alloc.Meta_line.init r ~line ~head:0 ~epoch:5;
  Alloc.Meta_line.touch r ~line ~epoch:6;
  Alloc.Meta_line.set_head r ~line (992 * 16);
  Nvm.Region.crash_persist_all r;
  Alloc.Meta_line.recover r ~line ~is_failed:(fun _ -> false) ~marker:7;
  check_int "kept" (992 * 16) (Alloc.Meta_line.head r ~line)

(* --- durable allocator -------------------------------------------------- *)

let alloc_basic () =
  let _, em = mk_em () in
  let a = Alloc.Durable.create em in
  let p1 = Alloc.Durable.alloc a ~size:32 in
  let p2 = Alloc.Durable.alloc a ~size:32 in
  check "aligned 16" true (p1 land 15 = 0);
  check "distinct" true (p1 <> p2);
  check "capacity" true (Alloc.Durable.payload_capacity_of a p1 >= 32);
  let n = Alloc.Durable.alloc ~aligned:true a ~size:384 in
  check "node aligned 64" true (n land 63 = 0);
  check_int "three allocs" 3 (Alloc.Durable.allocs a)

let dealloc_reuses_after_epoch () =
  let _, em = mk_em () in
  let a = Alloc.Durable.create em in
  let p = Alloc.Durable.alloc a ~size:32 in
  Alloc.Durable.dealloc a p;
  (* EBR: not reusable within the same epoch. *)
  let q = Alloc.Durable.alloc a ~size:32 in
  check "not immediately reused" true (q <> p);
  Epoch.Manager.advance em;
  (* After the checkpoint the limbo chunk is back on the free list. *)
  let r1 = Alloc.Durable.alloc a ~size:32 in
  check "reused now" true (r1 = p);
  Alloc.Durable.check_chains a

let limbo_counts () =
  let _, em = mk_em () in
  let a = Alloc.Durable.create em in
  let cls = Alloc.Size_class.class_of_payload 32 in
  let ps = List.init 10 (fun _ -> Alloc.Durable.alloc a ~size:32) in
  List.iter (Alloc.Durable.dealloc a) ps;
  check_int "limbo holds them" 10 (Alloc.Durable.limbo_count a ~cls);
  check_int "free empty" 0 (Alloc.Durable.free_count a ~cls);
  Epoch.Manager.advance em;
  check_int "limbo empty" 0 (Alloc.Durable.limbo_count a ~cls);
  check_int "free holds them" 10 (Alloc.Durable.free_count a ~cls)

let alloc_rollback_on_crash () =
  (* Bump allocations of a failed epoch are reclaimed. *)
  let r, em = mk_em () in
  let a = Alloc.Durable.create em in
  Epoch.Manager.advance em;
  let bump0 = Alloc.Durable.bump_position a in
  for _ = 1 to 50 do
    ignore (Alloc.Durable.alloc a ~size:32)
  done;
  check "bump moved" true (Alloc.Durable.bump_position a > bump0);
  let rng = Util.Rng.create ~seed:99 in
  Nvm.Region.crash r rng;
  let em2 = Epoch.Manager.open_after_crash r in
  let a2 = Alloc.Durable.open_after_crash em2 in
  check_int "bump rolled back" bump0 (Alloc.Durable.bump_position a2);
  Alloc.Durable.check_chains a2

let dealloc_rollback_on_crash () =
  (* Deallocations of a failed epoch are undone: the chunk is live again
     and the free/limbo lists match the epoch start. *)
  let r, em = mk_em () in
  let a = Alloc.Durable.create em in
  let cls = Alloc.Size_class.class_of_payload 32 in
  let ps = List.init 5 (fun _ -> Alloc.Durable.alloc a ~size:32) in
  Epoch.Manager.advance em;
  List.iter (Alloc.Durable.dealloc a) ps;
  check_int "limbo full" 5 (Alloc.Durable.limbo_count a ~cls);
  let rng = Util.Rng.create ~seed:7 in
  Nvm.Region.crash r rng;
  let em2 = Epoch.Manager.open_after_crash r in
  let a2 = Alloc.Durable.open_after_crash em2 in
  Epoch.Manager.advance em2;
  check_int "limbo rolled back" 0 (Alloc.Durable.limbo_count a2 ~cls);
  check_int "free rolled back" 0 (Alloc.Durable.free_count a2 ~cls);
  Alloc.Durable.check_chains a2

let free_list_survives_completed_epochs () =
  let r, em = mk_em () in
  let a = Alloc.Durable.create em in
  let cls = Alloc.Size_class.class_of_payload 32 in
  let ps = List.init 20 (fun _ -> Alloc.Durable.alloc a ~size:32) in
  List.iter (Alloc.Durable.dealloc a) ps;
  Epoch.Manager.advance em;
  (* Checkpoint happened: the merged free list is durable state. *)
  let rng = Util.Rng.create ~seed:3 in
  Nvm.Region.crash r rng;
  let em2 = Epoch.Manager.open_after_crash r in
  let a2 = Alloc.Durable.open_after_crash em2 in
  Epoch.Manager.advance em2;
  check_int "free list intact" 20 (Alloc.Durable.free_count a2 ~cls);
  (* And all 20 chunks can be re-allocated. *)
  let qs = List.init 20 (fun _ -> Alloc.Durable.alloc a2 ~size:32) in
  check_int "no bump needed" 20 (List.length (List.sort_uniq compare qs));
  check_int "popped from free list" 20 (Alloc.Durable.freelist_allocs a2)

let limbo_merge_after_crash_rebuilds_tail () =
  (* Crash with a non-empty limbo whose transient tail is lost; the next
     merge must walk the chain. *)
  let r, em = mk_em () in
  let a = Alloc.Durable.create em in
  let cls = Alloc.Size_class.class_of_payload 32 in
  let ps = List.init 8 (fun _ -> Alloc.Durable.alloc a ~size:32) in
  Epoch.Manager.advance em;
  List.iter (Alloc.Durable.dealloc a) ps;
  (* Make the whole epoch durable, then crash in the NEXT epoch so the
     deallocations belong to a completed epoch. *)
  Epoch.Manager.advance em;
  ignore (Alloc.Durable.alloc a ~size:32);
  let rng = Util.Rng.create ~seed:11 in
  Nvm.Region.crash r rng;
  let em2 = Epoch.Manager.open_after_crash r in
  let a2 = Alloc.Durable.open_after_crash em2 in
  (* The merge ran inside the crashed epoch and was rolled back; recovery's
     final advance must re-merge by walking the persisted chain. *)
  Epoch.Manager.advance em2;
  check_int "limbo drained" 0 (Alloc.Durable.limbo_count a2 ~cls);
  check_int "free has all 8" 8 (Alloc.Durable.free_count a2 ~cls);
  Alloc.Durable.check_chains a2

let heap_exhaustion_raises () =
  let cfg =
    {
      Nvm.Config.default with
      Nvm.Config.size_bytes = 64 * 1024;
      extlog_bytes = 8 * 1024;
    }
  in
  let r = Nvm.Region.create cfg in
  Nvm.Superblock.format r;
  let em = Epoch.Manager.create r in
  let a = Alloc.Durable.create em in
  check "raises Heap_full" true
    (try
       for _ = 1 to 100_000 do
         ignore (Alloc.Durable.alloc a ~size:32)
       done;
       false
     with Alloc.Durable.Heap_full -> true)

(* --- transient allocators ----------------------------------------------- *)

let transient_pool_recycles () =
  let r, _ = mk_em () in
  let a = Alloc.Transient.create Alloc.Transient.Pool r in
  let p = Alloc.Transient.alloc a ~size:32 in
  Alloc.Transient.dealloc a p;
  let q = Alloc.Transient.alloc a ~size:32 in
  check "recycled immediately (no EBR)" true (p = q)

let transient_general_charges_more () =
  let r1, _ = mk_em () in
  let r2, _ = mk_em () in
  let pool = Alloc.Transient.create Alloc.Transient.Pool r1 in
  let gen = Alloc.Transient.create Alloc.Transient.General r2 in
  for _ = 1 to 1000 do
    ignore (Alloc.Transient.alloc pool ~size:32);
    ignore (Alloc.Transient.alloc gen ~size:32)
  done;
  let t1 = Nvm.Stats.sim_ns (Nvm.Region.stats r1) in
  let t2 = Nvm.Stats.sim_ns (Nvm.Region.stats r2) in
  check "general-purpose allocator costs more" true (t2 > t1 *. 2.0)

let tests =
  ( "alloc",
    [
      Alcotest.test_case "size classes are 64-multiples" `Quick classes_are_64_multiples;
      Alcotest.test_case "class selection" `Quick class_selection;
      Alcotest.test_case "payload addressing" `Quick payload_addressing;
      Alcotest.test_case "header roundtrip" `Quick header_roundtrip;
      Alcotest.test_case "header first touch bumps ctr" `Quick header_first_touch_bumps_counter;
      Alcotest.test_case "header torn write detected" `Quick header_torn_write_detected;
      QCheck_alcotest.to_alcotest header_encoding_property;
      Alcotest.test_case "meta line rollback" `Quick meta_line_rollback;
      Alcotest.test_case "meta line keeps completed epoch" `Quick meta_line_no_rollback_when_epoch_completed;
      Alcotest.test_case "alloc basics" `Quick alloc_basic;
      Alcotest.test_case "EBR delays reuse" `Quick dealloc_reuses_after_epoch;
      Alcotest.test_case "limbo merge counts" `Quick limbo_counts;
      Alcotest.test_case "bump rollback on crash" `Quick alloc_rollback_on_crash;
      Alcotest.test_case "dealloc rollback on crash" `Quick dealloc_rollback_on_crash;
      Alcotest.test_case "free list survives checkpoints" `Quick free_list_survives_completed_epochs;
      Alcotest.test_case "limbo merge rebuilds tail" `Quick limbo_merge_after_crash_rebuilds_tail;
      Alcotest.test_case "heap exhaustion" `Quick heap_exhaustion_raises;
      Alcotest.test_case "transient pool recycles" `Quick transient_pool_recycles;
      Alcotest.test_case "general allocator costs more" `Quick transient_general_charges_more;
    ] )
