(* Tests for the incremental clwb sweep and the adaptive checkpoint
   scheduler (DESIGN.md §15): bounded [Region.flush_some] quanta, the
   pressure triggers, mid-sweep ordering of the durable epoch word, and
   the differential guarantee that a checkpoint drained by the sweep is
   byte-identical to one drained by stop-the-world [wbinvd]. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module Torture = Chaos_runner.Torture

let base_cfg ?(crash_support = Nvm.Config.Counting) () =
  {
    Nvm.Config.default with
    Nvm.Config.size_bytes = 2 * 1024 * 1024;
    extlog_bytes = 64 * 1024;
    crash_support;
  }

let mk_region cfg =
  let r = Nvm.Region.create cfg in
  Nvm.Superblock.format r;
  r

(* Dirty [n] fresh lines in the scratch area above the metadata. *)
let dirty_lines r n =
  for i = 0 to n - 1 do
    Nvm.Region.write_i64 r (64 * 1024 + (i * 64)) (Int64.of_int (1000 + i))
  done

(* --- Region.flush_some ------------------------------------------------- *)

let flush_some_bounded () =
  let r = mk_region (base_cfg ()) in
  Nvm.Region.wbinvd r;
  dirty_lines r 10;
  check_int "ten dirty lines" 10 (Nvm.Region.dirty_line_count r);
  let st = Nvm.Region.stats r in
  let clwb0 = st.Nvm.Stats.clwb in
  let remaining = Nvm.Region.flush_some r ~budget_lines:4 in
  check_int "budget respected" 6 remaining;
  check_int "dirty set shrank" 6 (Nvm.Region.dirty_line_count r);
  check_int "one quantum" 1 st.Nvm.Stats.sweep_quanta;
  check_int "four lines swept" 4 st.Nvm.Stats.sweep_lines;
  check_int "clwb per line" (clwb0 + 4) st.Nvm.Stats.clwb;
  (* Drain the rest: two more quanta (4 + 2 lines). *)
  check_int "second quantum" 2 (Nvm.Region.flush_some r ~budget_lines:4);
  check_int "final quantum" 0 (Nvm.Region.flush_some r ~budget_lines:4);
  check_int "three quanta total" 3 st.Nvm.Stats.sweep_quanta;
  check_int "all ten lines" 10 st.Nvm.Stats.sweep_lines;
  (* A quantum over a clean set is free: no counters move. *)
  check_int "clean no-op" 0 (Nvm.Region.flush_some r ~budget_lines:4);
  check_int "no phantom quantum" 3 st.Nvm.Stats.sweep_quanta;
  check "budget must be positive" true
    (try
       ignore (Nvm.Region.flush_some r ~budget_lines:0 : int);
       false
     with Invalid_argument _ -> true)

let flush_some_durable () =
  (* Lines committed by a sweep quantum survive a power failure exactly
     like wbinvd-flushed ones. *)
  let r = mk_region (base_cfg ~crash_support:Nvm.Config.Precise ()) in
  Nvm.Region.wbinvd r;
  dirty_lines r 5;
  while Nvm.Region.flush_some r ~budget_lines:2 > 0 do
    ()
  done;
  Nvm.Region.crash_persist_none r;
  for i = 0 to 4 do
    Alcotest.(check int64)
      "swept line durable"
      (Int64.of_int (1000 + i))
      (Nvm.Region.read_i64 r (64 * 1024 + (i * 64)))
  done

(* --- the adaptive scheduler (Epoch.Manager) ---------------------------- *)

let sweep_cfg ?(budget = 2) ?(dirty_trigger = 0) ?(log_frac = 0.0) () =
  {
    (Nvm.Config.with_policy
       (base_cfg ~crash_support:Nvm.Config.Precise ())
       Nvm.Config.Latency)
    with
    Nvm.Config.sweep_budget_lines = budget;
    dirty_trigger_lines = dirty_trigger;
    log_trigger_frac = log_frac;
  }

let mid_sweep_word_unadvanced () =
  (* While the sweep is in flight the durable epoch word still names the
     open epoch — a crash mid-sweep recovers exactly like a crash
     mid-wbinvd. The word only advances on the draining quantum. *)
  let r = mk_region (sweep_cfg ()) in
  let em = Epoch.Manager.create ~epoch_len_ns:1000.0 r in
  Nvm.Region.wbinvd r;
  dirty_lines r 10;
  Nvm.Region.advance_clock r 1001.0;
  check "first quantum, not done" false (Epoch.Manager.maybe_advance em);
  check "sweep in flight" true (Epoch.Manager.sweeping em);
  check_int "epoch unchanged mid-sweep" 2 (Epoch.Manager.current em);
  Alcotest.(check int64)
    "durable word unadvanced mid-sweep" 2L
    (Nvm.Region.read_persisted_i64 r Nvm.Layout.off_durable_epoch);
  let advanced = ref false and iters = ref 0 in
  while (not !advanced) && !iters < 1000 do
    incr iters;
    if Epoch.Manager.maybe_advance em then advanced := true
  done;
  check "sweep converges" true !advanced;
  check "sweep finished" false (Epoch.Manager.sweeping em);
  check_int "epoch advanced once" 3 (Epoch.Manager.current em);
  check_int "fully drained" 0 (Nvm.Region.dirty_line_count r);
  Alcotest.(check int64)
    "durable word fenced after drain" 3L
    (Nvm.Region.read_persisted_i64 r Nvm.Layout.off_durable_epoch)

let forced_advance_completes_sweep () =
  (* A forced advance (extlog wrap, recovery) mid-sweep drains the
     remainder and fences the same boundary — never a second one. *)
  let r = mk_region (sweep_cfg ()) in
  let em = Epoch.Manager.create ~epoch_len_ns:1000.0 r in
  Nvm.Region.wbinvd r;
  dirty_lines r 10;
  Nvm.Region.advance_clock r 1001.0;
  check "sweep started" false (Epoch.Manager.maybe_advance em);
  check "in flight" true (Epoch.Manager.sweeping em);
  Epoch.Manager.advance em;
  check_int "one epoch, not two" 3 (Epoch.Manager.current em);
  check_int "one advance recorded" 1 (Epoch.Manager.epochs_elapsed em);
  check "no longer sweeping" false (Epoch.Manager.sweeping em);
  check_int "drained" 0 (Nvm.Region.dirty_line_count r)

let lingering_sweep_completes_synchronously () =
  (* Convergence guard: a sweep that is still in flight a whole extra
     period later is completed in one synchronous drain. *)
  let r = mk_region (sweep_cfg ~budget:1 ()) in
  let em = Epoch.Manager.create ~epoch_len_ns:1000.0 r in
  Nvm.Region.wbinvd r;
  dirty_lines r 50;
  Nvm.Region.advance_clock r 1001.0;
  check "sweep started" false (Epoch.Manager.maybe_advance em);
  Nvm.Region.advance_clock r 1100.0;
  check "guard fires" true (Epoch.Manager.maybe_advance em);
  check_int "epoch advanced" 3 (Epoch.Manager.current em);
  check_int "drained" 0 (Nvm.Region.dirty_line_count r)

let dirty_pressure_triggers_early () =
  (* The dirty-set trigger starts a checkpoint long before the timer. *)
  let r = mk_region (sweep_cfg ~budget:256 ~dirty_trigger:4 ()) in
  let em = Epoch.Manager.create ~epoch_len_ns:1.0e15 r in
  Nvm.Region.wbinvd r;
  dirty_lines r 3;
  check "below threshold" false (Epoch.Manager.maybe_advance em);
  check_int "still epoch 2" 2 (Epoch.Manager.current em);
  dirty_lines r 5;
  (* Budget exceeds the dirty set, so the trigger drains in one call. *)
  check "pressure advance" true (Epoch.Manager.maybe_advance em);
  check_int "advanced without the timer" 3 (Epoch.Manager.current em)

let log_pressure_triggers_early () =
  let r = mk_region (sweep_cfg ~budget:256 ~log_frac:0.5 ()) in
  let em = Epoch.Manager.create ~epoch_len_ns:1.0e15 r in
  Nvm.Region.wbinvd r;
  let fill = ref 0.1 in
  Epoch.Manager.set_log_pressure em (fun () -> !fill);
  dirty_lines r 2;
  check "log mostly empty" false (Epoch.Manager.maybe_advance em);
  fill := 0.7;
  check "log pressure advance" true (Epoch.Manager.maybe_advance em);
  check_int "advanced without the timer" 3 (Epoch.Manager.current em)

(* --- sweep vs wbinvd differential -------------------------------------- *)

let mk_system nvm =
  Incll.System.create
    ~config:
      { Incll.System.default_config with Incll.System.nvm; epoch_len_ns = 1.0e15 }
    Incll.System.Incll

let whole_image r = Nvm.Region.read_bytes r 0 ~len:(Nvm.Region.size r)

let apply_workload sys =
  for i = 0 to 499 do
    Incll.System.put sys
      ~key:(Printf.sprintf "key_%04d" i)
      ~value:(Printf.sprintf "val_%06d" (i * 7))
  done;
  for i = 0 to 99 do
    ignore (Incll.System.remove sys ~key:(Printf.sprintf "key_%04d" (i * 5)))
  done;
  for i = 0 to 199 do
    Incll.System.put sys
      ~key:(Printf.sprintf "key_%04d" (i * 2))
      ~value:(Printf.sprintf "upd_%06d" i)
  done

let differential_images_identical () =
  (* Same op stream into two Precise-mode systems whose only difference
     is the drain mechanism (timer and pressure triggers disabled on the
     sweep side so the epoch schedules coincide): after every completed
     checkpoint — and after a crash at any common point — the durable
     images must be byte-identical, and both recoveries must agree. *)
  let nvm_wb =
    {
      (base_cfg ~crash_support:Nvm.Config.Precise ()) with
      Nvm.Config.size_bytes = 8 * 1024 * 1024;
      extlog_bytes = 256 * 1024;
    }
  in
  let nvm_sweep =
    {
      (Nvm.Config.with_policy nvm_wb Nvm.Config.Latency) with
      Nvm.Config.dirty_trigger_lines = 0;
      log_trigger_frac = 0.0;
    }
  in
  let a = mk_system nvm_wb and b = mk_system nvm_sweep in
  let wb0 = (Nvm.Region.stats (Incll.System.region b)).Nvm.Stats.wbinvd in
  apply_workload a;
  apply_workload b;
  Incll.System.advance_epoch a;
  Incll.System.advance_epoch b;
  check "sweep path actually ran" true
    ((Nvm.Region.stats (Incll.System.region b)).Nvm.Stats.sweep_quanta > 0);
  check_int "wbinvd not used by the sweep checkpoint" wb0
    (Nvm.Region.stats (Incll.System.region b)).Nvm.Stats.wbinvd;
  (* More mid-epoch traffic, then power failure at the same point. *)
  for i = 500 to 699 do
    let key = Printf.sprintf "key_%04d" i in
    Incll.System.put a ~key ~value:"tail";
    Incll.System.put b ~key ~value:"tail"
  done;
  Nvm.Region.crash_persist_none (Incll.System.region a);
  Nvm.Region.crash_persist_none (Incll.System.region b);
  check "post-crash durable images byte-identical" true
    (Bytes.equal
       (whole_image (Incll.System.region a))
       (whole_image (Incll.System.region b)));
  let a = Incll.System.recover a and b = Incll.System.recover b in
  let sa = Incll.System.scan a ~start:"" ~n:1000
  and sb = Incll.System.scan b ~start:"" ~n:1000 in
  check "recovered contents identical" true (sa = sb);
  check "recovered to the checkpoint" true
    (Incll.System.get a ~key:"key_0401" = Some "val_002807");
  check "post-checkpoint tail rolled back" true
    (Incll.System.get a ~key:"key_0600" = None)

(* --- torture under the latency policy ---------------------------------- *)

let outcome_ok label (out : Torture.outcome) =
  (match out.Torture.failure with
  | Some f -> Alcotest.fail (label ^ ": " ^ Torture.failure_to_string f)
  | None -> ());
  check (label ^ " ok") true out.Torture.ok;
  check_int (label ^ " quarantined") 0 out.Torture.quarantined

let torture_both_policies_same_seed () =
  (* Periodic random crashes at the same op indices under both policies:
     the oracle must accept both recoveries (the sweep may move the
     epoch boundaries, but never the durability contract). *)
  List.iter
    (fun seed ->
      List.iter
        (fun policy ->
          let out =
            Torture.run
              {
                Torture.default with
                Torture.ops = 2_000;
                seed;
                crash_period = 600;
                policy;
              }
          in
          outcome_ok
            (Printf.sprintf "seed %d %s" seed (Nvm.Config.policy_name policy))
            out;
          check "crashed and recovered" true (out.Torture.recoveries >= 1))
        [ Nvm.Config.Throughput; Nvm.Config.Latency ])
    [ 7; 42 ]

let torture_crash_mid_sweep () =
  (* Scheduled crashes at the new epoch.sweep_partial site: torn sweeps
     (first quantum, and deeper in) recover like torn wbinvds. *)
  let out =
    Torture.run
      {
        Torture.default with
        Torture.ops = 3_000;
        seed = 11;
        crash_period = 0;
        policy = Nvm.Config.Latency;
        schedule = Chaos.Plan.parse "epoch.sweep_partial:1,epoch.sweep_partial:3";
      }
  in
  outcome_ok "mid-sweep" out;
  check_int "schedule drained" 0 out.Torture.schedule_left;
  check "two injected crashes" true
    (List.assoc_opt "epoch.sweep_partial" out.Torture.injected = Some 2);
  check "recovered each time" true (out.Torture.recoveries >= 2)

let tests =
  ( "sweep",
    [
      Alcotest.test_case "flush_some respects the budget" `Quick
        flush_some_bounded;
      Alcotest.test_case "swept lines are durable" `Quick flush_some_durable;
      Alcotest.test_case "durable word unadvanced mid-sweep" `Quick
        mid_sweep_word_unadvanced;
      Alcotest.test_case "forced advance completes the sweep" `Quick
        forced_advance_completes_sweep;
      Alcotest.test_case "lingering sweep completes synchronously" `Quick
        lingering_sweep_completes_synchronously;
      Alcotest.test_case "dirty pressure triggers early" `Quick
        dirty_pressure_triggers_early;
      Alcotest.test_case "log pressure triggers early" `Quick
        log_pressure_triggers_early;
      Alcotest.test_case "sweep vs wbinvd byte-identical" `Quick
        differential_images_identical;
      Alcotest.test_case "torture both policies, same seeds" `Slow
        torture_both_policies_same_seed;
      Alcotest.test_case "torture crash mid-sweep" `Quick
        torture_crash_mid_sweep;
    ] )
