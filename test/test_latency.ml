(* Tail-latency observability: the stall ledger's ring and scoping, the
   cause-enum/Perfetto naming contract, and the bench runner's per-op
   latency recording with stall attribution in both loop modes. The
   runner tests lean on the simulated clock being a pure function of
   (seed, config), so "deterministic" means bit-identical. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
module R = Bench_harness.Runner
module Y = Workload.Ycsb

(* --- stall ledger ------------------------------------------------------- *)

let ring_wraps_but_totals_do_not () =
  let t = Obs.Stall.create ~capacity:8 () in
  for i = 0 to 19 do
    Obs.Stall.record t Obs.Stall.Extlog
      ~start_ns:(float_of_int (100 * i))
      ~dur_ns:10.0
  done;
  check_int "ring holds capacity" 8 (Obs.Stall.length t);
  check_int "all entries admitted" 20 (Obs.Stall.admitted t);
  check_int "lifetime count survives the wrap" 20
    (List.assoc Obs.Stall.Extlog (Obs.Stall.counts t));
  check "lifetime total survives the wrap" true
    (List.assoc Obs.Stall.Extlog (Obs.Stall.totals_ns t) = 200.0);
  (* The ring keeps the newest entries, oldest first. *)
  match Obs.Stall.entries t with
  | first :: _ ->
      check "oldest surviving entry is #12" true
        (first.Obs.Stall.start_ns = 1200.0)
  | [] -> Alcotest.fail "ring empty after 20 records"

let min_dur_filters_ring_not_totals () =
  let t = Obs.Stall.create ~capacity:8 () in
  Obs.Stall.set_min_dur_ns t 50.0;
  Obs.Stall.record t Obs.Stall.Clwb_sweep ~start_ns:0.0 ~dur_ns:10.0;
  Obs.Stall.record t Obs.Stall.Clwb_sweep ~start_ns:100.0 ~dur_ns:60.0;
  check_int "short entry kept out of the ring" 1 (Obs.Stall.length t);
  check_int "both counted" 2
    (List.assoc Obs.Stall.Clwb_sweep (Obs.Stall.counts t));
  check "both totalled" true
    (List.assoc Obs.Stall.Clwb_sweep (Obs.Stall.totals_ns t) = 70.0)

let outermost_scope_wins () =
  let t = Obs.Stall.create () in
  Obs.Stall.enter t Obs.Stall.Epoch_advance ~now:1000.0;
  (* Nested scope and a leaf inside it: both swallowed. *)
  Obs.Stall.enter t Obs.Stall.Extlog ~now:1100.0;
  Obs.Stall.leaf t Obs.Stall.Clwb_sweep ~start_ns:1150.0 ~dur_ns:10.0;
  Obs.Stall.exit t ~now:1200.0;
  Obs.Stall.exit t ~now:1500.0;
  (match Obs.Stall.entries t with
  | [ e ] ->
      check "root cause" true (e.Obs.Stall.cause = Obs.Stall.Epoch_advance);
      check "spans the whole scope" true
        (e.Obs.Stall.start_ns = 1000.0 && e.Obs.Stall.dur_ns = 500.0)
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l));
  (* Outside any scope the leaf records normally. *)
  Obs.Stall.leaf t Obs.Stall.Clwb_sweep ~start_ns:2000.0 ~dur_ns:10.0;
  check_int "free-standing leaf recorded" 2 (Obs.Stall.length t)

(* Every cause must have a distinct, stable name: the names are the
   stall.<cause>_ns metric suffixes, the Perfetto slice names and the
   bench report's attribution keys, so a collision would silently merge
   two causes everywhere downstream. *)
let cause_names_are_exhaustive_and_unique () =
  let names = List.map Obs.Stall.cause_name Obs.Stall.all_causes in
  check_int "eight causes" 8 (List.length names);
  (* The wire protocol ships a cause as its index byte; the round trip
     must hold for every cause or remote attribution silently drifts. *)
  List.iter
    (fun c ->
      check "cause index round-trips" true
        (Obs.Stall.cause_of_index (Obs.Stall.cause_index c) = Some c))
    Obs.Stall.all_causes;
  check "out-of-range index is None" true
    (Obs.Stall.cause_of_index (List.length names) = None);
  check_int "names unique" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun n ->
      check ("name well-formed: " ^ n) true
        (n <> ""
        && String.for_all
             (fun c -> (c >= 'a' && c <= 'z') || c = '_')
             n))
    names;
  (* The Perfetto export names slices after the causes, verbatim. *)
  let ledger = Obs.Stall.create () in
  List.iteri
    (fun i c ->
      Obs.Stall.record ledger c ~start_ns:(float_of_int (100 * i)) ~dur_ns:5.0)
    Obs.Stall.all_causes;
  let slice_names =
    List.filter_map
      (fun ev -> Option.map Obs.Json.to_string (Obs.Json.find ev "name"))
      (Obs.Perfetto.events_of_stalls ~pid:1 ~tid:7 ledger)
  in
  check "one slice per cause, named after it" true
    (List.sort compare slice_names
    = List.sort compare (List.map (fun n -> "\"" ^ n ^ "\"") names))

(* And the registry wiring: a ledger created against a registry grows one
   stall.<cause>_ns histogram per cause, fed by record. *)
let registry_histograms_per_cause () =
  let reg = Obs.Registry.create () in
  let ledger = Obs.Stall.create ~registry:reg () in
  List.iter
    (fun c -> Obs.Stall.record ledger c ~start_ns:0.0 ~dur_ns:42.0)
    Obs.Stall.all_causes;
  List.iter
    (fun c ->
      let name = "stall." ^ Obs.Stall.cause_name c ^ "_ns" in
      match Obs.Registry.find_histogram reg name with
      | Some h -> check_int ("histogram fed: " ^ name) 1 (Obs.Histogram.count h)
      | None -> Alcotest.fail ("missing histogram " ^ name))
    Obs.Stall.all_causes

(* --- runner: latency recording and attribution -------------------------- *)

(* Small but flush-heavy: short epochs force several wbinvd flushes into
   a few thousand ops, so the tail is epoch-advance-shaped by design. *)
let flushy ~threads ~nkeys =
  R.config_for ~epoch_len_ns:2.0e5 ~nkeys_per_shard:((nkeys / threads) + 1) ()

let run_once ?arrival_rate () =
  let threads = 2 and nkeys = 4_000 in
  R.run ~seed:7 ~threads ~ops_per_thread:5_000
    ~config:(flushy ~threads ~nkeys)
    ?arrival_rate ~variant:Incll.System.Incll ~mix:Y.A ~dist:Y.Zipfian ~nkeys
    ()

let attributed_counts (r : R.result) =
  List.map
    (fun c ->
      Obs.Registry.counter_value r.R.metrics
        ("latency.attributed." ^ Obs.Stall.cause_name c))
    Obs.Stall.all_causes

let latency_json (r : R.result) =
  match Obs.Registry.find_histogram r.R.metrics "op.latency_ns" with
  | Some h -> Obs.Json.to_string (Obs.Histogram.to_json h)
  | None -> Alcotest.fail "run recorded no op.latency_ns histogram"

let attribution_is_deterministic () =
  let a = run_once () and b = run_once () in
  check "attributed counters identical across runs" true
    (attributed_counts a = attributed_counts b);
  check "latency histogram identical across runs" true
    (latency_json a = latency_json b);
  (* Under the flush-heavy config the over-threshold ops exist and are
     overwhelmingly blamed on the epoch flush. *)
  let over =
    Obs.Registry.counter_value a.R.metrics "latency.over_threshold"
  in
  let epoch_adv =
    Obs.Registry.counter_value a.R.metrics "latency.attributed.epoch_advance"
  in
  check "some ops crossed the threshold" true (over > 0);
  check "epoch_advance dominates the attribution" true
    (2 * epoch_adv > over)

let open_loop_is_deterministic () =
  let closed = run_once () in
  let rate = 0.95 *. closed.R.mops_sim *. 1e6 in
  let a = run_once ~arrival_rate:rate () in
  let b = run_once ~arrival_rate:rate () in
  check "open-loop run is flagged" true a.R.open_loop;
  check "open-loop latency histogram identical across runs" true
    (latency_json a = latency_json b);
  check "open-loop attribution identical across runs" true
    (attributed_counts a = attributed_counts b)

(* Coordinated omission: the closed loop only charges a flush to the one
   op that met it, the open loop charges it to every op queued behind it,
   so near capacity the open-loop tail must be far fatter. *)
let open_loop_fattens_the_tail () =
  let closed = run_once () in
  let rate = 0.95 *. closed.R.mops_sim *. 1e6 in
  let opened = run_once ~arrival_rate:rate () in
  let p999 (r : R.result) =
    match Obs.Registry.find_histogram r.R.metrics "op.latency_ns" with
    | Some h -> Obs.Histogram.percentile h 0.999
    | None -> 0.0
  in
  check "open p999 well above closed p999" true
    (p999 opened > 2.0 *. p999 closed);
  (* Both modes saw the same flushes; the open loop just blames them for
     more queued ops. *)
  let over (r : R.result) =
    Obs.Registry.counter_value r.R.metrics "latency.over_threshold"
  in
  check "open loop has at least as many over-threshold ops" true
    (over opened >= over closed)

let spikes_carry_their_evidence () =
  let r = run_once () in
  check "spikes were captured" true (r.R.spikes <> []);
  List.iter
    (fun (s : R.spike) ->
      check "spike is over threshold" true
        (s.R.sp_lat_ns > r.R.latency_threshold_ns);
      check "spike cites at least one overlapping stall" true
        (s.R.sp_stalls <> []))
    r.R.spikes;
  (* Slowest first. *)
  let rec sorted = function
    | a :: (b :: _ as tl) -> a.R.sp_lat_ns >= b.R.sp_lat_ns && sorted tl
    | _ -> true
  in
  check "spikes sorted by latency" true (sorted r.R.spikes)

let tests =
  ( "latency",
    [
      Alcotest.test_case "stall ring wraps, totals don't" `Quick
        ring_wraps_but_totals_do_not;
      Alcotest.test_case "min_dur filters ring only" `Quick
        min_dur_filters_ring_not_totals;
      Alcotest.test_case "outermost scope wins" `Quick outermost_scope_wins;
      Alcotest.test_case "cause names exhaustive + unique" `Quick
        cause_names_are_exhaustive_and_unique;
      Alcotest.test_case "per-cause registry histograms" `Quick
        registry_histograms_per_cause;
      Alcotest.test_case "attribution deterministic on sim clock" `Quick
        attribution_is_deterministic;
      Alcotest.test_case "open loop deterministic" `Quick
        open_loop_is_deterministic;
      Alcotest.test_case "open loop fattens the tail (CO)" `Quick
        open_loop_fattens_the_tail;
      Alcotest.test_case "spikes carry their evidence" `Quick
        spikes_carry_their_evidence;
    ] )
