let () =
  Alcotest.run "incll"
    [
      Test_util.tests;
      Test_obs.tests;
      Test_nvm.tests;
      Test_region_fastpath.tests;
      Test_epoch.tests;
      Test_alloc.tests;
      Test_extlog.tests;
      Test_permutation.tests;
      Test_key.tests;
      Test_leaf.tests;
      Test_internal.tests;
      Test_tree.tests;
      Test_incll.tests;
      Test_recovery.tests;
      Test_crash_property.tests;
      Test_system.tests;
      Test_workload.tests;
      Test_exhaustive_crash.tests;
      Test_image.tests;
      Test_listing3.tests;
      Test_chaos.tests;
      Test_sweep.tests;
      Test_txn.tests;
      Test_latency.tests;
    ]
