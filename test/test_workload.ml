(* Tests for the YCSB workload generator and the benchmark runner. *)

module Y = Workload.Ycsb

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let frac_puts ops =
  let puts =
    Array.fold_left
      (fun a -> function Y.Put _ -> a + 1 | _ -> a)
      0 ops
  in
  float_of_int puts /. float_of_int (Array.length ops)

let mix_fractions () =
  let gen mix =
    let rng = Util.Rng.create ~seed:5 in
    Y.generate { Y.mix; dist = Y.Uniform; nkeys = 10_000 } rng ~n:20_000
  in
  let a = frac_puts (gen Y.A) in
  check "A ~50% puts" true (a > 0.47 && a < 0.53);
  let b = frac_puts (gen Y.B) in
  check "B ~5% puts" true (b > 0.03 && b < 0.07);
  check "C read-only" true (frac_puts (gen Y.C) = 0.0);
  let e = gen Y.E in
  let e_puts = frac_puts e in
  check "E ~5% inserts" true (e_puts > 0.03 && e_puts < 0.07);
  check "E rest is scans with lengths in [1,100]" true
    (Array.for_all
       (function
         | Y.Scan (_, n) -> n >= 1 && n <= Y.max_scan_length
         | Y.Put _ -> true
         | Y.Get _ -> false)
       e);
  (* Scan lengths are uniform, not constant: both halves of the range
     must occur. *)
  let short = ref false and long = ref false in
  Array.iter
    (function
      | Y.Scan (_, n) when n <= 50 -> short := true
      | Y.Scan (_, n) when n > 50 -> long := true
      | _ -> ())
    e;
  check "E scan lengths spread" true (!short && !long);
  (* Inserts target fresh keys beyond the loaded range, never load keys. *)
  let loaded = Hashtbl.create 1024 in
  Array.iter (fun k -> Hashtbl.replace loaded k ()) (Y.load_keys ~nkeys:10_000);
  check "E inserts are fresh keys" true
    (Array.for_all
       (function Y.Put (k, _) -> not (Hashtbl.mem loaded k) | _ -> true)
       e)

let keys_are_scrambled_8_bytes () =
  let ks = Y.load_keys ~nkeys:1000 in
  check_int "count" 1000 (Array.length ks);
  Array.iter (fun k -> check_int "8 bytes" 8 (String.length k)) ks;
  (* Adjacent ranks are far apart after scrambling. *)
  let sorted = Array.copy ks in
  Array.sort compare sorted;
  check "not in rank order" true (ks <> sorted)

let zipfian_targets_hot_keys () =
  let rng = Util.Rng.create ~seed:6 in
  let ops =
    Y.generate { Y.mix = Y.C; dist = Y.Zipfian; nkeys = 10_000 } rng ~n:50_000
  in
  let counts = Hashtbl.create 64 in
  Array.iter
    (function
      | Y.Get k ->
          Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
      | _ -> ())
    ops;
  let max_count = Hashtbl.fold (fun _ c a -> max c a) counts 0 in
  check "hot key exists" true (max_count > 500);
  check "but keys are spread (scrambled)" true (Hashtbl.length counts > 1000)

let values_verifiable () =
  let k = Y.key_of_rank 123 in
  Alcotest.(check string) "deterministic" (Y.value_for k) (Y.value_for k);
  check_int "8 bytes" 8 (String.length (Y.value_for k))

let mix_parsing () =
  check "A" true (Y.mix_of_string "a" = Y.A);
  check "ycsb_e" true (Y.mix_of_string "YCSB_E" = Y.E);
  Alcotest.(check string) "name" "YCSB_B" (Y.mix_name Y.B)

(* --- runner end-to-end ------------------------------------------------- *)

let runner_single_thread () =
  let r =
    Bench_harness.Runner.run ~threads:1 ~ops_per_thread:5_000
      ~variant:Incll.System.Incll ~mix:Y.A ~dist:Y.Uniform ~nkeys:2_000 ()
  in
  check_int "op count" 5_000 r.Bench_harness.Runner.ops;
  check "sim time advanced" true (r.Bench_harness.Runner.sim_s > 0.0);
  check "positive throughput" true (r.Bench_harness.Runner.mops_sim > 0.0);
  check "writes happened" true (r.Bench_harness.Runner.writes > 0)

let runner_multi_domain () =
  let r =
    Bench_harness.Runner.run ~threads:4 ~ops_per_thread:5_000
      ~variant:Incll.System.Mt_plus ~mix:Y.A ~dist:Y.Uniform ~nkeys:4_000 ()
  in
  check_int "total ops" 20_000 r.Bench_harness.Runner.ops;
  (* Parallel view is at most the sequential view. *)
  check "max <= sum" true
    (r.Bench_harness.Runner.sim_s <= r.Bench_harness.Runner.sim_total_s +. 1e-9)

let runner_epochs_advance () =
  let config =
    Bench_harness.Runner.config_for ~epoch_len_ns:100_000.0
      ~nkeys_per_shard:2_000 ()
  in
  let r =
    Bench_harness.Runner.run ~threads:1 ~ops_per_thread:10_000 ~config
      ~variant:Incll.System.Incll ~mix:Y.A ~dist:Y.Uniform ~nkeys:2_000 ()
  in
  check "checkpoints happened" true (r.Bench_harness.Runner.epochs > 0);
  check "wbinvd ran" true (r.Bench_harness.Runner.wbinvds > 0)

let tests =
  ( "workload",
    [
      Alcotest.test_case "mix fractions" `Quick mix_fractions;
      Alcotest.test_case "keys scrambled" `Quick keys_are_scrambled_8_bytes;
      Alcotest.test_case "zipfian hot keys" `Quick zipfian_targets_hot_keys;
      Alcotest.test_case "values verifiable" `Quick values_verifiable;
      Alcotest.test_case "mix parsing" `Quick mix_parsing;
      Alcotest.test_case "runner single thread" `Quick runner_single_thread;
      Alcotest.test_case "runner multi domain" `Quick runner_multi_domain;
      Alcotest.test_case "runner epochs advance" `Quick runner_epochs_advance;
    ] )

(* --- trace files --------------------------------------------------------- *)

let trace_roundtrip () =
  let ops =
    [
      Workload.Trace.Put ("plain", "value");
      Workload.Trace.Put ("key with spaces", "v%1");
      Workload.Trace.Get "plain";
      Workload.Trace.Del "key with spaces";
      Workload.Trace.Scan ("a", 7);
    ]
  in
  let path = Filename.temp_file "incll_trace" ".txt" in
  Workload.Trace.save path ops;
  let back = Workload.Trace.load path in
  check "roundtrip" true (back = ops);
  Stdlib.Sys.remove path

let trace_parse_edge_cases () =
  check "blank" true (Workload.Trace.parse_line "" = None);
  check "comment" true (Workload.Trace.parse_line "# hi" = None);
  check "put" true
    (Workload.Trace.parse_line "PUT a b" = Some (Workload.Trace.Put ("a", "b")));
  check "escape decode" true
    (Workload.Trace.decode_field "a%20b" = "a b");
  check "escape encode" true (Workload.Trace.encode_field "a b" = "a%20b");
  check "malformed rejected" true
    (try ignore (Workload.Trace.parse_line "PUT onlykey"); false
     with Failure _ -> true);
  check "bad scan count" true
    (try ignore (Workload.Trace.parse_line "SCAN a zero"); false
     with Failure _ -> true)

let trace_apply_executes () =
  let sys = Incll.System.create Incll.System.Incll in
  List.iter (Workload.Trace.apply sys)
    [
      Workload.Trace.Put ("k1", "v1");
      Workload.Trace.Put ("k2", "v2");
      Workload.Trace.Del "k1";
      Workload.Trace.Get "k2";
      Workload.Trace.Scan ("", 5);
    ];
  check "applied" true (Incll.System.get sys ~key:"k2" = Some "v2");
  check "deleted" true (Incll.System.get sys ~key:"k1" = None)

let trace_tests =
  [
    Alcotest.test_case "trace roundtrip" `Quick trace_roundtrip;
    Alcotest.test_case "trace parse edge cases" `Quick trace_parse_edge_cases;
    Alcotest.test_case "trace apply" `Quick trace_apply_executes;
  ]

let tests = (fst tests, snd tests @ trace_tests)
