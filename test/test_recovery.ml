(* Targeted crash-recovery scenarios (§4.3, Listing 4), including
   adversarial per-line persistence choices that exercise the store-order
   arguments of §4.1.2. *)

module L = Masstree.Leaf
module EW = Masstree.Epoch_word
module Sys_ = Incll.System

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let key8 i = Masstree.Key.of_int64 (Util.Scramble.fmix64 (Int64.of_int i))

let cfg =
  {
    Sys_.default_config with
    Sys_.nvm =
      {
        Nvm.Config.default with
        Nvm.Config.size_bytes = 8 * 1024 * 1024;
        extlog_bytes = 1024 * 1024;
      };
    epoch_len_ns = 1.0e15;
  }

let mk ?(variant = Sys_.Incll) () = Sys_.create ~config:cfg variant

let populate s n =
  for i = 0 to n - 1 do
    Sys_.put s ~key:(key8 i) ~value:(Printf.sprintf "orig-%03d" i)
  done;
  Sys_.advance_epoch s

let expect_original s n =
  for i = 0 to n - 1 do
    match Sys_.get s ~key:(key8 i) with
    | Some v ->
        Alcotest.(check string)
          (Printf.sprintf "key %d" i)
          (Printf.sprintf "orig-%03d" i)
          v
    | None -> Alcotest.fail (Printf.sprintf "key %d missing after recovery" i)
  done

(* --- rollback of each operation class ------------------------------------ *)

let insert_rolls_back () =
  let s = mk () in
  populate s 100;
  Sys_.put s ~key:(key8 500) ~value:"uncommitted";
  Sys_.crash s (Util.Rng.create ~seed:1);
  let s = Sys_.recover s in
  check "insert undone" true (Sys_.get s ~key:(key8 500) = None);
  expect_original s 100;
  Masstree.Tree.validate (Sys_.tree s)

let remove_rolls_back () =
  let s = mk () in
  populate s 100;
  ignore (Sys_.remove s ~key:(key8 7));
  ignore (Sys_.remove s ~key:(key8 8));
  Sys_.crash s (Util.Rng.create ~seed:2);
  let s = Sys_.recover s in
  expect_original s 100;
  Masstree.Tree.validate (Sys_.tree s)

let update_rolls_back () =
  let s = mk () in
  populate s 100;
  Sys_.put s ~key:(key8 7) ~value:"dirty!!!";
  Sys_.crash s (Util.Rng.create ~seed:3);
  let s = Sys_.recover s in
  expect_original s 100;
  Masstree.Tree.validate (Sys_.tree s)

let split_rolls_back () =
  let s = mk () in
  populate s 100;
  let before = Masstree.Tree.cardinal (Sys_.tree s) in
  (* Enough inserts to force splits in the dirty epoch. *)
  for i = 1000 to 1399 do
    Sys_.put s ~key:(key8 i) ~value:"splitter"
  done;
  check "splits occurred" true ((Masstree.Tree.stats (Sys_.tree s)).Masstree.Tree.leaf_splits > 0);
  Sys_.crash s (Util.Rng.create ~seed:4);
  let s = Sys_.recover s in
  check_int "cardinal restored" before (Masstree.Tree.cardinal (Sys_.tree s));
  expect_original s 100;
  Masstree.Tree.validate (Sys_.tree s)

let node_removal_rolls_back () =
  (* Delete enough keys to unlink whole leaves (and splice internals),
     then crash: every node must come back, chain intact. *)
  let s = mk () in
  populate s 400;
  let t0 = Masstree.Tree.cardinal (Sys_.tree s) in
  for i = 0 to 299 do
    ignore (Sys_.remove s ~key:(key8 i))
  done;
  check "unlinks happened" true
    ((Masstree.Tree.stats (Sys_.tree s)).Masstree.Tree.leaf_removals > 0);
  Sys_.crash s (Util.Rng.create ~seed:21);
  let s = Sys_.recover s in
  check_int "all keys back" t0 (Masstree.Tree.cardinal (Sys_.tree s));
  expect_original s 400;
  Masstree.Tree.validate (Sys_.tree s)

let committed_removal_stays () =
  (* The mirror image: checkpointed removals survive later crashes. *)
  let s = mk () in
  populate s 400;
  for i = 0 to 299 do
    ignore (Sys_.remove s ~key:(key8 i))
  done;
  Sys_.advance_epoch s;
  Sys_.put s ~key:(key8 1000) ~value:"dirty";
  Sys_.crash s (Util.Rng.create ~seed:22);
  let s = Sys_.recover s in
  check_int "compact state kept" 100 (Masstree.Tree.cardinal (Sys_.tree s));
  for i = 300 to 399 do
    check "survivor" true (Sys_.get s ~key:(key8 i) <> None)
  done;
  Masstree.Tree.validate (Sys_.tree s)

let suffix_conversion_rolls_back () =
  (* A layer conversion rewrites a live entry's keylen and value pointer;
     it must be externally logged so a crash restores the suffix entry. *)
  let s = mk () in
  populate s 50;
  Sys_.put s ~key:"shared!!suffix-one" ~value:"committed1";
  Sys_.advance_epoch s;
  (* The conversion happens in the dirty epoch... *)
  Sys_.put s ~key:"shared!!suffix-two" ~value:"uncommitted";
  check "both visible before crash" true
    (Sys_.get s ~key:"shared!!suffix-two" = Some "uncommitted");
  Sys_.crash s (Util.Rng.create ~seed:33);
  let s = Sys_.recover s in
  check "original long key intact" true
    (Sys_.get s ~key:"shared!!suffix-one" = Some "committed1");
  check "new long key rolled back" true
    (Sys_.get s ~key:"shared!!suffix-two" = None);
  expect_original s 50;
  Masstree.Tree.validate (Sys_.tree s)

let committed_epochs_survive () =
  let s = mk () in
  populate s 100;
  Sys_.put s ~key:(key8 7) ~value:"v2-keep!";
  Sys_.advance_epoch s;
  (* checkpoint commits the update *)
  Sys_.put s ~key:(key8 7) ~value:"v3-drop!";
  Sys_.crash s (Util.Rng.create ~seed:5);
  let s = Sys_.recover s in
  check "committed update kept" true (Sys_.get s ~key:(key8 7) = Some "v2-keep!")

(* --- adversarial persistence choices -------------------------------------- *)

let all_prefix_extremes_recover () =
  (* Worst case (nothing pending persists) and best case (everything
     does): both must recover to the checkpoint state. *)
  List.iter
    (fun all ->
      let s = mk () in
      populate s 100;
      Sys_.put s ~key:(key8 1) ~value:"dirty!!!";
      ignore (Sys_.remove s ~key:(key8 2));
      Sys_.put s ~key:(key8 600) ~value:"freshkey";
      if all then Sys_.crash_with s ~choose:(fun ~line:_ ~nwrites -> nwrites)
      else Sys_.crash_with s ~choose:(fun ~line:_ ~nwrites:_ -> 0);
      let s = Sys_.recover s in
      expect_original s 100;
      check "fresh key gone" true (Sys_.get s ~key:(key8 600) = None);
      Masstree.Tree.validate (Sys_.tree s))
    [ true; false ]

let torn_incllp_line_recovers () =
  (* Persist only the first k words of each dirty line for every k: the
     §4.1.2 ordering argument says recovery works for ALL of them. *)
  for k = 0 to 6 do
    let s = mk () in
    populate s 100;
    Sys_.put s ~key:(key8 3) ~value:"dirty!!!";
    Sys_.put s ~key:(key8 800) ~value:"freshkey";
    ignore (Sys_.remove s ~key:(key8 4));
    Sys_.crash_with s ~choose:(fun ~line:_ ~nwrites -> min k nwrites);
    let s = Sys_.recover s in
    expect_original s 100;
    Masstree.Tree.validate (Sys_.tree s)
  done

let per_line_random_adversary =
  QCheck.Test.make ~name:"random per-line prefixes always recover" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let s = mk () in
      let n = 150 in
      populate s n;
      let rng = Util.Rng.create ~seed in
      for _ = 1 to 60 do
        match Util.Rng.int rng 3 with
        | 0 -> Sys_.put s ~key:(key8 (Util.Rng.int rng n)) ~value:"dirty!!!"
        | 1 -> ignore (Sys_.remove s ~key:(key8 (Util.Rng.int rng n)))
        | _ -> Sys_.put s ~key:(key8 (1000 + Util.Rng.int rng 200)) ~value:"freshkey"
      done;
      Sys_.crash s rng;
      let s = Sys_.recover s in
      Masstree.Tree.validate (Sys_.tree s);
      let ok = ref true in
      for i = 0 to n - 1 do
        if Sys_.get s ~key:(key8 i) <> Some (Printf.sprintf "orig-%03d" i) then
          ok := false
      done;
      !ok)

(* --- multiple crashes ------------------------------------------------------ *)

let repeated_crashes_accumulate_consistency () =
  let s = ref (mk ()) in
  populate !s 100;
  for round = 1 to 8 do
    Sys_.put !s ~key:(key8 round) ~value:"dirty!!!";
    Sys_.crash !s (Util.Rng.create ~seed:(round * 17));
    s := Sys_.recover !s;
    expect_original !s 100
  done;
  Masstree.Tree.validate (Sys_.tree !s)

let crash_during_recovery_replays () =
  (* Crash, recover, crash again immediately (before any new op): the
     recovery-marker epoch fails and recovery re-runs idempotently. *)
  let s = mk () in
  populate s 100;
  Sys_.put s ~key:(key8 3) ~value:"dirty!!!";
  Sys_.crash s (Util.Rng.create ~seed:7);
  let s = Sys_.recover s in
  Sys_.crash s (Util.Rng.create ~seed:8);
  let s = Sys_.recover s in
  expect_original s 100;
  Masstree.Tree.validate (Sys_.tree s)

let failed_set_compaction_sweeps () =
  (* Push the failed-epoch set close to capacity; recovery must compact it
     (eager sweep + clear) rather than overflow. *)
  let s = ref (mk ()) in
  populate !s 60;
  for round = 1 to Nvm.Layout.max_failed_epochs + 4 do
    Sys_.put !s ~key:(key8 (round mod 60)) ~value:"dirty!!!";
    Sys_.crash !s (Util.Rng.create ~seed:round);
    s := Sys_.recover !s;
    (match Sys_.epoch_manager !s with
    | Some em ->
        check "failed set stays bounded" true
          (Epoch.Manager.failed_count em < Nvm.Layout.max_failed_epochs)
    | None -> ())
  done;
  expect_original !s 60

(* --- recovery statistics --------------------------------------------------- *)

let recovery_reports_replayed_entries () =
  let s = mk () in
  populate s 100;
  (* Mixed remove+insert forces external logging of some nodes. *)
  for i = 0 to 20 do
    ignore (Sys_.remove s ~key:(key8 i));
    Sys_.put s ~key:(key8 i) ~value:"mixed!!!"
  done;
  let logged = Sys_.nodes_logged s in
  check "external log used" true (logged > 0);
  Sys_.crash s (Util.Rng.create ~seed:9);
  let s = Sys_.recover s in
  (match Sys_.last_recover_stats s with
  | Some st ->
      check "replayed entries" true (st.Sys_.replayed_entries > 0);
      check "recovery took simulated time" true (st.Sys_.recovery_sim_ns > 0.0)
  | None -> Alcotest.fail "no recover stats");
  expect_original s 100

let recovery_phase_breakdown_sums () =
  let s = mk () in
  populate s 200;
  for i = 0 to 50 do
    ignore (Sys_.remove s ~key:(key8 i));
    Sys_.put s ~key:(key8 i) ~value:"mixed!!!"
  done;
  Sys_.crash s (Util.Rng.create ~seed:13);
  let s = Sys_.recover s in
  (match Sys_.last_recover_stats s with
  | Some st ->
      check "phases non-empty" true (st.Sys_.phases <> []);
      List.iter
        (fun name ->
          check
            (Printf.sprintf "has phase %s" name)
            true
            (List.mem_assoc name st.Sys_.phases))
        [
          "recover.epoch_open"; "recover.extlog_replay";
          "recover.alloc_chains"; "recover.image_scan"; "recover.checkpoint";
        ];
      List.iter
        (fun (name, d) ->
          check (Printf.sprintf "phase %s non-negative" name) true (d >= 0.0))
        st.Sys_.phases;
      (* Mark-to-mark durations telescope: they must sum to the whole
         recovery's simulated time, not approximately but exactly (modulo
         float addition noise). *)
      let sum = List.fold_left (fun a (_, d) -> a +. d) 0.0 st.Sys_.phases in
      check "phases sum to total" true
        (Float.abs (sum -. st.Sys_.recovery_sim_ns)
        <= 1e-6 *. Float.max 1.0 st.Sys_.recovery_sim_ns);
      (* And each phase fed a span histogram in the region's registry. *)
      List.iter
        (fun (name, _) ->
          match
            Obs.Registry.find_histogram (Sys_.metrics s)
              ("span." ^ name ^ "_ns")
          with
          | Some h ->
              check (Printf.sprintf "span histogram for %s" name) true
                (Obs.Histogram.count h >= 1)
          | None -> Alcotest.fail ("missing span histogram for " ^ name))
        st.Sys_.phases
  | None -> Alcotest.fail "no recover stats");
  expect_original s 200

let sharded_recover_merges_phases () =
  let cfg =
    { cfg with Sys_.nvm = { cfg.Sys_.nvm with Nvm.Config.crash_support = Nvm.Config.Precise } }
  in
  let st = Store.Sharded.create ~config:cfg Sys_.Incll ~shards:2 in
  for i = 0 to 199 do
    Store.Sharded.put st ~key:(key8 i) ~value:(string_of_int i)
  done;
  Store.Sharded.advance_epochs st;
  Store.Sharded.crash st (Util.Rng.create ~seed:14);
  let phases = Store.Sharded.recover st in
  check "merged phases non-empty" true (phases <> []);
  check "merged breakdown starts with epoch_open" true
    (match phases with ("recover.epoch_open", _) :: _ -> true | _ -> false);
  (* The merged sum is the total simulated recovery time over shards. *)
  let sum = List.fold_left (fun a (_, d) -> a +. d) 0.0 phases in
  let per_shard =
    List.init (Store.Sharded.nshards st) (fun i ->
        match Sys_.last_recover_stats (Store.Sharded.shard st i) with
        | Some r -> r.Sys_.recovery_sim_ns
        | None -> 0.0)
  in
  let total = List.fold_left ( +. ) 0.0 per_shard in
  check "merged sum = sum over shards" true
    (Float.abs (sum -. total) <= 1e-6 *. Float.max 1.0 total)

let lazy_recovery_is_lazy () =
  (* After recovery, untouched nodes still carry failed-epoch stamps; the
     first access repairs them (measured via the lazy counter). *)
  let s = mk () in
  populate s 2000;
  for i = 0 to 1999 do
    Sys_.put s ~key:(key8 i) ~value:"dirty!!!"
  done;
  Sys_.crash s (Util.Rng.create ~seed:10);
  let s = Sys_.recover s in
  let lazy0 =
    match Sys_.ctx s with
    | Some c -> c.Incll.Ctx.counters.Incll.Ctx.lazy_recoveries
    | None -> 0
  in
  ignore (Sys_.get s ~key:(key8 0));
  let lazy1 =
    match Sys_.ctx s with
    | Some c -> c.Incll.Ctx.counters.Incll.Ctx.lazy_recoveries
    | None -> 0
  in
  check "first access recovered nodes" true (lazy1 > lazy0);
  (* Touching the same key again does no further recovery work. *)
  ignore (Sys_.get s ~key:(key8 0));
  let lazy2 =
    match Sys_.ctx s with
    | Some c -> c.Incll.Ctx.counters.Incll.Ctx.lazy_recoveries
    | None -> 0
  in
  check_int "idempotent per node" lazy1 lazy2

let logging_variant_recovers_too () =
  let s = mk ~variant:Sys_.Logging () in
  populate s 200;
  for i = 0 to 99 do
    Sys_.put s ~key:(key8 i) ~value:"dirty!!!"
  done;
  Sys_.crash s (Util.Rng.create ~seed:11);
  let s = Sys_.recover s in
  expect_original s 200;
  Masstree.Tree.validate (Sys_.tree s)

let eager_sweep_restores_everything () =
  let s = mk () in
  populate s 500;
  for i = 0 to 499 do
    Sys_.put s ~key:(key8 i) ~value:"dirty!!!"
  done;
  Sys_.crash s (Util.Rng.create ~seed:12);
  let s = Sys_.recover s in
  (match (Sys_.ctx s, Sys_.durable_alloc s) with
  | Some ctx, Some da ->
      Incll.Recovery.eager_sweep ctx (Sys_.tree s) da;
      Alloc.Durable.check_chains da
  | _ -> Alcotest.fail "durable system expected");
  expect_original s 500;
  Masstree.Tree.validate (Sys_.tree s)

let tests =
  ( "recovery",
    [
      Alcotest.test_case "insert rolls back" `Quick insert_rolls_back;
      Alcotest.test_case "remove rolls back" `Quick remove_rolls_back;
      Alcotest.test_case "update rolls back" `Quick update_rolls_back;
      Alcotest.test_case "split rolls back" `Quick split_rolls_back;
      Alcotest.test_case "node removal rolls back" `Quick node_removal_rolls_back;
      Alcotest.test_case "committed removal stays" `Quick committed_removal_stays;
      Alcotest.test_case "suffix conversion rolls back" `Quick suffix_conversion_rolls_back;
      Alcotest.test_case "committed epochs survive" `Quick committed_epochs_survive;
      Alcotest.test_case "prefix extremes recover" `Quick all_prefix_extremes_recover;
      Alcotest.test_case "torn InCLLp line recovers" `Quick torn_incllp_line_recovers;
      QCheck_alcotest.to_alcotest per_line_random_adversary;
      Alcotest.test_case "repeated crashes" `Quick repeated_crashes_accumulate_consistency;
      Alcotest.test_case "crash during recovery" `Quick crash_during_recovery_replays;
      Alcotest.test_case "failed-set compaction" `Quick failed_set_compaction_sweeps;
      Alcotest.test_case "recovery statistics" `Quick recovery_reports_replayed_entries;
      Alcotest.test_case "recovery phase breakdown" `Quick recovery_phase_breakdown_sums;
      Alcotest.test_case "sharded recover merges phases" `Quick sharded_recover_merges_phases;
      Alcotest.test_case "lazy recovery is lazy" `Quick lazy_recovery_is_lazy;
      Alcotest.test_case "LOGGING variant recovers" `Quick logging_variant_recovers_too;
      Alcotest.test_case "eager sweep" `Quick eager_sweep_restores_everything;
    ] )
