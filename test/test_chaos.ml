(* Tests for the crash-chaos subsystem: injection sites and plans, the
   allocator cycle guard and quarantine, the torn-restore (chimera
   epoch) regression, the oracle, and crash-during-recovery schedules. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

module Torture = Chaos_runner.Torture
module Oracle = Chaos_runner.Oracle
module Shrink = Chaos_runner.Shrink

let mk_em () =
  let cfg =
    {
      Nvm.Config.default with
      Nvm.Config.size_bytes = 4 * 1024 * 1024;
      extlog_bytes = 64 * 1024;
    }
  in
  let r = Nvm.Region.create cfg in
  Nvm.Superblock.format r;
  (r, Epoch.Manager.create r)

(* --- sites and plans --------------------------------------------------- *)

let site_roundtrip () =
  List.iteri
    (fun i s ->
      check_int "dense index" i (Chaos.Site.index s);
      match Chaos.Site.of_string (Chaos.Site.to_string s) with
      | Some s' -> check "roundtrip" true (s = s')
      | None -> Alcotest.fail ("of_string failed for " ^ Chaos.Site.to_string s))
    Chaos.Site.all;
  check "unknown rejected" true (Chaos.Site.of_string "bogus" = None);
  check "recovery sites flagged" true
    (Chaos.Site.is_recovery Chaos.Site.Recover_extlog_replay);
  check "workload sites not flagged" true
    (not (Chaos.Site.is_recovery Chaos.Site.Sfence))

let plan_parse () =
  let plan = Chaos.Plan.parse "sfence:3,merge_limbo,recover.checkpoint:2" in
  check_int "three points" 3 (List.length plan);
  (match plan with
  | [ p1; p2; p3 ] ->
      check "p1 site" true (p1.Chaos.Plan.site = Chaos.Site.Sfence);
      check_int "p1 hit" 3 p1.Chaos.Plan.hit;
      check "p2 site" true (p2.Chaos.Plan.site = Chaos.Site.Merge_limbo);
      check_int "p2 default hit" 1 p2.Chaos.Plan.hit;
      check "p3 site" true (p3.Chaos.Plan.site = Chaos.Site.Recover_checkpoint)
  | _ -> Alcotest.fail "parse shape");
  check "bad site raises" true
    (try
       ignore (Chaos.Plan.parse "nonsense:1");
       false
     with _ -> true)

let injector_fires_at_hit () =
  Chaos.Plan.reset ();
  Chaos.Plan.arm { Chaos.Plan.site = Chaos.Site.Sfence; hit = 3 };
  Chaos.Plan.fire Chaos.Site.Sfence;
  Chaos.Plan.fire Chaos.Site.Sfence;
  Chaos.Plan.fire Chaos.Site.Merge_limbo (* other sites don't count *);
  let fired =
    try
      Chaos.Plan.fire Chaos.Site.Sfence;
      false
    with Chaos.Plan.Crash_requested p ->
      p.Chaos.Plan.site = Chaos.Site.Sfence && p.Chaos.Plan.hit = 3
  in
  check "fired on 3rd sfence hit" true fired;
  check "auto-disarmed" true (Chaos.Plan.armed () = None);
  Chaos.Plan.fire Chaos.Site.Sfence (* no longer raises *);
  check_int "injected total" 1 (Chaos.Plan.injected_total ());
  Chaos.Plan.reset ()

(* --- allocator cycle guard and quarantine ------------------------------ *)

(* Three same-class chunks pushed to limbo, then the tail's [next] bent
   back to the head: the chain walk must raise [Corrupt_chain], not hang. *)
let mk_cycled_limbo () =
  let _r, em = mk_em () in
  let da = Alloc.Durable.create em in
  let p1 = Alloc.Durable.alloc da ~size:32 in
  let p2 = Alloc.Durable.alloc da ~size:32 in
  let p3 = Alloc.Durable.alloc da ~size:32 in
  let cls = Alloc.Size_class.class_of_payload 32 in
  Alloc.Durable.dealloc da p1;
  Alloc.Durable.dealloc da p2;
  Alloc.Durable.dealloc da p3;
  check_int "limbo before cycle" 3 (Alloc.Durable.limbo_count da ~cls);
  let region = Epoch.Manager.region em in
  let c1 = Alloc.Size_class.chunk_of_payload p1 in
  let c3 = Alloc.Size_class.chunk_of_payload p3 in
  (* limbo is c3 -> c2 -> c1; close the loop c1 -> c3 *)
  Alloc.Chunk_header.write_next region ~chunk:c1 ~next:c3;
  (em, da, cls)

let cycle_guard_raises () =
  let _em, da, cls = mk_cycled_limbo () in
  let raised =
    try
      ignore (Alloc.Durable.limbo_count da ~cls);
      false
    with Alloc.Durable.Corrupt_chain { reason; _ } ->
      check_str "reason" "cycle in chain" reason;
      true
  in
  check "cycle detected" true raised;
  (* validate collects it instead of raising *)
  let report = Alloc.Durable.validate da in
  check "validate reports errors" true
    (report.Alloc.Durable.errors <> [])

let merge_quarantines_cycled_chain () =
  let em, da, cls = mk_cycled_limbo () in
  (* Forget the transient tail cache so the checkpoint merge must walk
     the (cycled) chain, as it would after a crash. *)
  Alloc.Durable.forget_limbo_tails da;
  Epoch.Manager.advance em;
  check_int "one chain quarantined" 1 (Alloc.Durable.quarantined da);
  check_int "limbo head cleared" 0 (Alloc.Durable.limbo_count da ~cls);
  (* The allocator stays usable: quarantine leaks, it does not crash. *)
  let p = Alloc.Durable.alloc da ~size:32 in
  check "alloc still works" true (p > 0);
  check_int "no further quarantine" 1 (Alloc.Durable.quarantined da);
  let report = Alloc.Durable.validate da in
  check "chains valid after quarantine" true
    (report.Alloc.Durable.errors = [])

(* --- the torn-restore (chimera epoch) regression ----------------------- *)

(* [Chunk_header.restore] writes word1 then word0. A crash persisting
   only word1 used to leave both counters equal to 0 while the decoded
   epoch was a chimera of word0's old high half and word1's new low half
   — a committed-looking header still carrying the failed [next]. The
   fix bumps the counter on restore, so a torn restore must now read as
   a counter mismatch. *)
let torn_restore_is_visible () =
  let r, _em = mk_em () in
  let chunk = 3 * 1024 * 1024 in
  Alloc.Chunk_header.init r ~chunk ~epoch:5 ~cls:3;
  Nvm.Region.crash_persist_all r (* header durable, ctr = 0 on both words *);
  Alloc.Chunk_header.restore r ~chunk ~marker_epoch:7;
  (* Adversarial crash: persist exactly the first pending store of every
     dirty line — for the header line that is word1 alone. *)
  Nvm.Region.crash_with r ~choose:(fun ~line:_ ~nwrites:_ -> 1);
  let d = Alloc.Chunk_header.read r ~chunk in
  check "torn restore reads as mismatch" false d.Alloc.Chunk_header.ctr_matches;
  (* Re-running restore (what recovery does on a mismatch) converges. *)
  Alloc.Chunk_header.restore r ~chunk ~marker_epoch:7;
  Nvm.Region.crash_persist_all r;
  let d = Alloc.Chunk_header.read r ~chunk in
  check "restore idempotent" true d.Alloc.Chunk_header.ctr_matches;
  check_int "epoch restamped" 7 d.Alloc.Chunk_header.epoch

(* --- oracle ------------------------------------------------------------ *)

let oracle_commit_boundaries () =
  let o = Oracle.create () in
  Oracle.mark_epoch o ~shard:0 ~epoch:10;
  Oracle.record o ~shard:0 (Oracle.Put { key = "a"; value = "1" });
  Oracle.record o ~shard:0 (Oracle.Put { key = "b"; value = "2" });
  Oracle.mark_epoch o ~shard:0 ~epoch:11;
  Oracle.record o ~shard:0 (Oracle.Remove { key = "a" });
  (* Crash while epoch 11 is running: ops recorded after its start are
     rolled back. *)
  check_int "rollback to epoch start" 2 (Oracle.boundary_at o ~shard:0 ~crashed_epoch:11);
  (* Crash in an unobserved epoch (advanced mid-op): everything counts. *)
  check_int "unobserved epoch keeps all" 3
    (Oracle.boundary_at o ~shard:0 ~crashed_epoch:12);
  Oracle.compact o ~boundary:(fun _ -> 2) ~committed:(fun _ -> false);
  let tbl = Oracle.replay o in
  check_int "replay size" 2 (Hashtbl.length tbl);
  check "a survives" true (Hashtbl.find_opt tbl "a" = Some "1");
  let ok =
    Oracle.check o ~get:(fun k -> Hashtbl.find_opt tbl k) ~cardinal:2
  in
  check "check accepts replay" true (ok = Ok 2)

(* Shard-aware compaction with transactions: shard 1 rolls back past a
   committed transaction's writes, which must be redone; an uncommitted
   transaction's writes must vanish from every shard. *)
let oracle_txn_compaction () =
  let o = Oracle.create () in
  Oracle.mark_epoch o ~shard:0 ~epoch:5;
  Oracle.mark_epoch o ~shard:1 ~epoch:5;
  Oracle.record o ~shard:0 (Oracle.Put { key = "a"; value = "1" });
  Oracle.mark_epoch o ~shard:1 ~epoch:6;
  (* txn 1 (committed) spans both shards; only shard 1 rolls it back. *)
  Oracle.record o ~txn:1 ~shard:0 (Oracle.Put { key = "b"; value = "t1" });
  Oracle.record o ~txn:1 ~shard:1 (Oracle.Put { key = "c"; value = "t1" });
  (* txn 2 (uncommitted) also spans both shards. *)
  Oracle.record o ~txn:2 ~shard:0 (Oracle.Put { key = "a"; value = "t2" });
  Oracle.record o ~txn:2 ~shard:1 (Oracle.Put { key = "d"; value = "t2" });
  (* plain op past shard 1's boundary: rolled back *)
  Oracle.record o ~shard:1 (Oracle.Put { key = "e"; value = "gone" });
  (* Shard 0 crashed in an unobserved epoch (keeps everything up to its
     boundary = length); shard 1 rolls back to epoch 6's start (1 op). *)
  let boundary = function 0 -> 4 | _ -> 1 in
  Oracle.compact o ~boundary ~committed:(fun id -> id = 1);
  let tbl = Oracle.replay o in
  check "a: txn2 write on shard 0 dropped despite boundary" true
    (Hashtbl.find_opt tbl "a" = Some "1");
  check "b: committed txn kept on shard 0" true
    (Hashtbl.find_opt tbl "b" = Some "t1");
  check "c: committed txn redone past shard 1 boundary" true
    (Hashtbl.find_opt tbl "c" = Some "t1");
  check "d: uncommitted txn dropped on shard 1" true
    (Hashtbl.find_opt tbl "d" = None);
  check "e: plain op past boundary dropped" true
    (Hashtbl.find_opt tbl "e" = None)

(* --- torture runs with injection schedules ----------------------------- *)

let short_run ?(ops = 2_500) schedule =
  Torture.run
    {
      Torture.default with
      Torture.ops;
      seed = 11;
      crash_period = 0 (* deterministic: only scheduled crashes *);
      schedule = Chaos.Plan.parse schedule;
    }

let outcome_ok label (out : Torture.outcome) =
  (match out.Torture.failure with
  | Some f -> Alcotest.fail (label ^ ": " ^ Torture.failure_to_string f)
  | None -> ());
  check (label ^ " ok") true out.Torture.ok;
  check_int (label ^ " quarantined") 0 out.Torture.quarantined

let injected_at out site =
  match List.assoc_opt site out.Torture.injected with Some n -> n | None -> 0

(* Crash inside recovery at each phase boundary: the second recovery
   must converge to an oracle-accepted state. *)
let crash_during_recovery site () =
  let out = short_run (Printf.sprintf "epoch_advance:1,%s:1" site) in
  outcome_ok site out;
  check_int (site ^ " injected") 1 (injected_at out site);
  check (site ^ " recovered") true (out.Torture.recoveries >= 1);
  check (site ^ " both crashes happened") true (out.Torture.crashes >= 2);
  check_int (site ^ " schedule drained") 0 out.Torture.schedule_left

let workload_sites_recover () =
  let out =
    short_run "sfence:100,extlog_append:5,merge_limbo:1,post_checkpoint:1"
  in
  outcome_ok "workload sites" out;
  check_int "all points fired" 0 out.Torture.schedule_left;
  check_int "four injected" 4
    (List.fold_left (fun a (_, n) -> a + n) 0 out.Torture.injected)

let chained_recovery_crashes () =
  (* Three consecutive crashes inside the same recovery cascade. *)
  let out =
    short_run
      "merge_limbo:1,recover.epoch_open:1,recover.extlog_replay:1,recover.checkpoint:1"
  in
  outcome_ok "chained recovery" out;
  check_int "schedule drained" 0 out.Torture.schedule_left;
  check "injected all four" true
    (List.fold_left (fun a (_, n) -> a + n) 0 out.Torture.injected = 4)

(* --- shrinker / repro JSON --------------------------------------------- *)

let repro_json_roundtrip () =
  let cfg =
    {
      Torture.default with
      Torture.ops = 123;
      seed = 42;
      schedule = Chaos.Plan.parse "sfence:9,recover.image_scan:1,net.drop:4";
    }
  in
  let out =
    {
      Torture.ok = false;
      ops_run = 120;
      crashes = 2;
      injected = [ ("sfence", 1) ];
      schedule_left = 1;
      recoveries = 2;
      verified = 99;
      txns_committed = 0;
      txns_in_doubt = 0;
      quarantined = 0;
      failure =
        Some
          { Torture.op_index = 120; site = Some "sfence"; detail = "boom" };
    }
  in
  let j = Shrink.repro_to_json cfg out in
  let cfg' = Shrink.config_of_json (Obs.Json.of_string (Obs.Json.to_string j)) in
  check_int "seed" cfg.Torture.seed cfg'.Torture.seed;
  check_int "ops" cfg.Torture.ops cfg'.Torture.ops;
  check_int "schedule" 3 (List.length cfg'.Torture.schedule);
  check "schedule points" true
    (List.map Chaos.Plan.point_to_string cfg'.Torture.schedule
    = [ "sfence:9"; "recover.image_scan:1"; "net.drop:4" ]);
  check "no seed rejected" true
    (try
       ignore (Shrink.config_of_json (Obs.Json.of_string "{}"));
       false
     with Failure _ -> true)

let tests =
  ( "chaos",
    [
      Alcotest.test_case "site roundtrip" `Quick site_roundtrip;
      Alcotest.test_case "plan parse" `Quick plan_parse;
      Alcotest.test_case "injector fires at hit" `Quick injector_fires_at_hit;
      Alcotest.test_case "cycle guard raises" `Quick cycle_guard_raises;
      Alcotest.test_case "merge quarantines cycled chain" `Quick
        merge_quarantines_cycled_chain;
      Alcotest.test_case "torn restore is visible" `Quick torn_restore_is_visible;
      Alcotest.test_case "oracle commit boundaries" `Quick
        oracle_commit_boundaries;
      Alcotest.test_case "oracle txn compaction" `Quick oracle_txn_compaction;
      Alcotest.test_case "crash during recover.epoch_open" `Quick
        (crash_during_recovery "recover.epoch_open");
      Alcotest.test_case "crash during recover.extlog_replay" `Quick
        (crash_during_recovery "recover.extlog_replay");
      Alcotest.test_case "crash during recover.alloc_chains" `Quick
        (crash_during_recovery "recover.alloc_chains");
      Alcotest.test_case "crash during recover.checkpoint" `Quick
        (crash_during_recovery "recover.checkpoint");
      Alcotest.test_case "workload sites recover" `Quick workload_sites_recover;
      Alcotest.test_case "chained recovery crashes" `Quick
        chained_recovery_crashes;
      Alcotest.test_case "repro json roundtrip" `Quick repro_json_roundtrip;
    ] )
