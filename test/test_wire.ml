(* The serving layer: wire codec round trips and hostile-input rejection,
   the bounded queue's backpressure contract, and the running server —
   pipelined out-of-order replies, BUSY under a wedged shard, graceful
   drain, STATS plumbing, and the differential oracle proving a seeded
   YCSB stream lands the same state over the wire as in process. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
module P = Wire.Proto
module C = Wire.Client
module E = Server.Engine
module S = Store.Sharded
module O = Workload.Opstream
module Y = Workload.Ycsb
module R = Bench_harness.Runner

(* --- codec -------------------------------------------------------------- *)

let arbitrary_op =
  let open QCheck.Gen in
  let str = string_size ~gen:(char_range 'a' 'z') (int_bound 24) in
  frequency
    [
      (4, map (fun k -> P.Get k) str);
      (4, map2 (fun k v -> P.Put (k, v)) str str);
      (2, map (fun k -> P.Delete k) str);
      (2, map2 (fun k n -> P.Scan (k, n)) str (int_bound 1000));
      (1, return P.Txn_begin);
      (1, map2 (fun k v -> P.Txn_write (P.Tw_put (k, v))) str str);
      (1, map (fun k -> P.Txn_write (P.Tw_remove k)) str);
      (1, return P.Txn_commit);
      (1, return P.Txn_abort);
      (1, return (P.Stats P.Stats_json));
      (1, return (P.Stats P.Stats_prom));
    ]

let arbitrary_reply =
  let open QCheck.Gen in
  let str = string_size ~gen:(char_range 'a' 'z') (int_bound 24) in
  let status =
    oneofl
      [ P.Ok; P.Not_found; P.Busy; P.Bad_request; P.Txn_state; P.Shutting_down ]
  in
  let payload =
    frequency
      [
        (2, return P.Unit);
        (2, map (fun v -> P.Value v) str);
        (2, map (fun l -> P.Pairs l) (list_size (int_bound 20) (pair str str)));
        (1, map (fun t -> P.Text t) str);
      ]
  in
  map2
    (fun (id, status) (queue_ns, cause, payload) ->
      { P.id; status; queue_ns; cause; payload })
    (pair (int_bound 0xffffff) status)
    (triple
       (map float_of_int (int_bound 1_000_000_000))
       (oneofl [ 0; 3; 7; P.no_cause ])
       payload)

(* Frames survive the round trip even when the byte stream is rechunked
   arbitrarily — the decoder owns reassembly. *)
let frame_round_trip_property =
  QCheck.Test.make ~name:"request/reply frames round-trip through the decoder"
    ~count:300
    (QCheck.make
       QCheck.Gen.(
         triple (list_size (int_bound 8) arbitrary_op) arbitrary_reply
           (int_range 1 13)))
    (fun (ops, reply, chunk) ->
      let reqs = List.mapi (fun i op -> { P.id = i; op; sess = None }) ops in
      let stream =
        String.concat ""
          (List.map P.frame_of_request reqs @ [ P.frame_of_reply reply ])
      in
      let dec = P.Decoder.create () in
      let payloads = ref [] in
      let i = ref 0 in
      while !i < String.length stream do
        let n = min chunk (String.length stream - !i) in
        P.Decoder.feed dec (Bytes.of_string (String.sub stream !i n)) 0 n;
        let rec drain () =
          match P.Decoder.next dec with
          | Some p ->
              payloads := p :: !payloads;
              drain ()
          | None -> ()
        in
        drain ();
        i := !i + n
      done;
      match List.rev !payloads with
      | [] -> false
      | ps ->
          let rps, last = (List.filteri (fun i _ -> i < List.length reqs) ps,
                           List.nth ps (List.length ps - 1)) in
          List.for_all2 (fun req p -> P.request_of_payload p = req) reqs rps
          && P.reply_of_payload last = reply
          && P.Decoder.buffered dec = 0)

let truncated_frames_rejected () =
  let frame = P.frame_of_request { P.id = 7; op = P.Put ("k", "v"); sess = None } in
  let payload = String.sub frame 4 (String.length frame - 4) in
  (* Every proper prefix of the payload must be rejected, not misparsed. *)
  for n = 0 to String.length payload - 1 do
    match P.request_of_payload (String.sub payload 0 n) with
    | _ -> Alcotest.failf "truncated payload of %d bytes parsed" n
    | exception P.Malformed _ -> ()
  done;
  (* And trailing garbage is rejected too. *)
  (match P.request_of_payload (payload ^ "x") with
  | _ -> Alcotest.fail "trailing byte accepted"
  | exception P.Malformed _ -> ());
  (* A truncated *frame* just waits for more bytes. *)
  let dec = P.Decoder.create () in
  let b = Bytes.of_string (String.sub frame 0 (String.length frame - 1)) in
  P.Decoder.feed dec b 0 (Bytes.length b);
  check "incomplete frame yields nothing" true (P.Decoder.next dec = None);
  check_int "bytes held" (String.length frame - 1) (P.Decoder.buffered dec)

let oversized_frame_rejected () =
  let dec = P.Decoder.create () in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int (P.max_frame + 1));
  P.Decoder.feed dec header 0 4;
  (match P.Decoder.next dec with
  | _ -> Alcotest.fail "oversized declared length accepted"
  | exception P.Malformed _ -> ());
  (* Encoding side refuses to build one in the first place. *)
  match P.frame_of_reply
          { P.id = 0; status = P.Ok; queue_ns = 0.0; cause = P.no_cause;
            payload = P.Text (String.make (P.max_frame + 1) 'x') }
  with
  | _ -> Alcotest.fail "oversized reply encoded"
  | exception P.Malformed _ -> ()

(* Hostile bytes: the decoder either waits for more input, rejects with
   Malformed, or yields payloads that themselves parse or reject — it
   never raises anything else and never buffers past cap + chunk. *)
let garbage_fuzz () =
  let rng = Util.Rng.create ~seed:0xbad in
  for _ = 1 to 200 do
    let cap = 512 in
    let dec = P.Decoder.create ~max_frame:cap () in
    let alive = ref true in
    for _ = 1 to 50 do
      if !alive then begin
        let n = 1 + Util.Rng.int rng 64 in
        let b = Bytes.init n (fun _ -> Char.chr (Util.Rng.int rng 256)) in
        P.Decoder.feed dec b 0 n;
        try
          let rec drain () =
            match P.Decoder.next dec with
            | Some p -> (
                (match P.request_of_payload p with
                | (_ : P.request) -> ()
                | exception P.Malformed _ -> ());
                drain ())
            | None -> ()
          in
          drain ()
        with P.Malformed _ -> alive := false
      end
    done;
    check "decoder never hoards garbage" true (P.Decoder.buffered dec <= cap + 4 + 64)
  done

(* A replayed byte stream — the same frame fed twice, as a retrying
   client or a duplicating network will produce — decodes as two
   identical, independently parseable payloads. Dedup is the server's
   job; the codec must not conflate or reject the copies. *)
let duplicated_frames_decode () =
  let req = { P.id = 3; op = P.Put ("dup", "v"); sess = Some (9, 4) } in
  let frame = P.frame_of_request req in
  let dec = P.Decoder.create () in
  let b = Bytes.of_string (frame ^ frame) in
  P.Decoder.feed dec b 0 (Bytes.length b);
  (match (P.Decoder.next dec, P.Decoder.next dec) with
  | Some p1, Some p2 ->
      check "both copies decode" true
        (P.request_of_payload p1 = req && P.request_of_payload p2 = req)
  | _ -> Alcotest.fail "duplicated frame lost");
  check "nothing buffered" true (P.Decoder.next dec = None);
  (* Interleaved replay: old frame re-fed mid-stream between fresh
     ones. *)
  let req2 = { P.id = 4; op = P.Get "dup"; sess = None } in
  let stream = P.frame_of_request req2 ^ frame ^ P.frame_of_request req2 in
  let b = Bytes.of_string stream in
  P.Decoder.feed dec b 0 (Bytes.length b);
  let got =
    List.init 3 (fun _ ->
        match P.Decoder.next dec with
        | Some p -> P.request_of_payload p
        | None -> Alcotest.fail "frame missing")
  in
  check "replayed frame in sequence" true (got = [ req2; req; req2 ])

let addr_parsing () =
  check "unix" true
    (C.addr_of_string "unix:/tmp/x.sock" = C.Unix_sock "/tmp/x.sock");
  check "tcp" true
    (C.addr_of_string "tcp:127.0.0.1:8080" = C.Tcp ("127.0.0.1", 8080));
  List.iter
    (fun s ->
      match C.addr_of_string s with
      | _ -> Alcotest.failf "accepted %s" s
      | exception Invalid_argument _ -> ())
    [ "bogus"; "tcp:nohost"; "tcp::123"; "tcp:host:notaport"; "http:x:1" ]

(* --- bounded queue ------------------------------------------------------- *)

let bqueue_contract () =
  let q = Server.Bqueue.create ~capacity:2 in
  check "push 1" true (Server.Bqueue.try_push q 1);
  check "push 2" true (Server.Bqueue.try_push q 2);
  check "push 3 bounces" false (Server.Bqueue.try_push q 3);
  check "unbounded push passes the cap" true (Server.Bqueue.push_unbounded q 4);
  check "fifo batch" true (Server.Bqueue.pop_batch q ~max:2 = [ 1; 2 ]);
  check "remainder" true (Server.Bqueue.pop_batch q ~max:8 = [ 4 ]);
  Server.Bqueue.close q;
  check "push after close" false (Server.Bqueue.try_push q 5);
  check "pop after close" true (Server.Bqueue.pop_batch q ~max:8 = []);
  (* A blocked consumer is woken by close. *)
  let q2 = Server.Bqueue.create ~capacity:1 in
  let d = Domain.spawn (fun () -> Server.Bqueue.pop_batch q2 ~max:1) in
  Unix.sleepf 0.02;
  Server.Bqueue.close q2;
  check "blocked pop released empty" true (Domain.join d = [])

(* --- the running server -------------------------------------------------- *)

let server_config ~nkeys ~shards =
  R.config_for ~epoch_len_ns:1.0e6 ~nkeys_per_shard:((nkeys / shards) + 64) ()

let with_server ?queue_capacity ?batch ?on_dequeue ?(shards = 2)
    ?(nkeys = 2_000) f =
  let addr = C.Unix_sock (Filename.temp_file "incll_srv" ".sock") in
  let srv =
    E.start ?queue_capacity ?batch ?on_dequeue
      ~config:(server_config ~nkeys ~shards)
      ~variant:Incll.System.Incll ~shards addr
  in
  Fun.protect ~finally:(fun () -> E.stop srv) (fun () -> f srv)

let basic_ops_over_unix_socket () =
  with_server (fun srv ->
      let c = C.connect (E.addr srv) in
      Fun.protect ~finally:(fun () -> C.close c) (fun () ->
          check "absent" true (C.get c "alpha" = None);
          C.put c "alpha" "1";
          C.put c "beta" "2";
          C.put c "gamma" "3";
          check "present" true (C.get c "beta" = Some "2");
          C.put c "beta" "2'";
          check "updated" true (C.get c "beta" = Some "2'");
          check "delete hit" true (C.delete c "gamma");
          check "delete miss" false (C.delete c "gamma");
          check "scan" true
            (C.scan c ~start:"" ~n:10
            = [ ("alpha", "1"); ("beta", "2'") ]);
          (* Replies attribute queueing: a lone sync caller has ~no queue,
             but the field is present and sane. *)
          (match C.call c (P.Get "alpha") with
          | { P.status = P.Ok; queue_ns; _ } ->
              check "queue_ns non-negative" true (queue_ns >= 0.0)
          | r -> Alcotest.fail (P.status_name r.P.status))))

let basic_ops_over_tcp () =
  let srv =
    E.start
      ~config:(server_config ~nkeys:100 ~shards:1)
      ~variant:Incll.System.Incll ~shards:1
      (C.Tcp ("127.0.0.1", 0))
  in
  Fun.protect ~finally:(fun () -> E.stop srv) (fun () ->
      (match E.addr srv with
      | C.Tcp (_, p) -> check "ephemeral port resolved" true (p > 0)
      | _ -> Alcotest.fail "expected tcp addr");
      let c = C.connect (E.addr srv) in
      Fun.protect ~finally:(fun () -> C.close c) (fun () ->
          C.put c "k" "v";
          check "tcp get" true (C.get c "k" = Some "v")))

let transactions_over_the_wire () =
  with_server (fun srv ->
      let c = C.connect (E.addr srv) in
      Fun.protect ~finally:(fun () -> C.close c) (fun () ->
          C.put c "a" "0";
          C.txn_begin c;
          C.txn_put c "a" "1";
          C.txn_put c "b" "2";
          C.txn_remove c "never_there";
          (* Read-your-writes inside the open transaction... *)
          check "ryw" true (C.get c "a" = Some "1");
          check "ryw absent" true (C.get c "never_there" = None);
          C.txn_commit c;
          check "committed a" true (C.get c "a" = Some "1");
          check "committed b" true (C.get c "b" = Some "2");
          (* Abort discards. *)
          C.txn_begin c;
          C.txn_put c "a" "9";
          C.txn_abort c;
          check "abort discards" true (C.get c "a" = Some "1");
          (* State machine errors are typed, not fatal. *)
          check "commit outside txn" true
            ((C.call c P.Txn_commit).P.status = P.Txn_state);
          check "write outside txn" true
            ((C.call c (P.Txn_write (P.Tw_put ("x", "y")))).P.status
            = P.Txn_state);
          C.txn_begin c;
          check "double begin" true
            ((C.call c P.Txn_begin).P.status = P.Txn_state);
          C.txn_abort c))

let pipelined_out_of_order () =
  with_server ~shards:4 (fun srv ->
      let c = C.connect (E.addr srv) in
      Fun.protect ~finally:(fun () -> C.close c) (fun () ->
          let n = 400 in
          let key i = Printf.sprintf "key%04d" i in
          let ids = Hashtbl.create n in
          for i = 0 to n - 1 do
            Hashtbl.replace ids (C.send c (P.Put (key i, string_of_int i))) i
          done;
          check_int "all in flight" n (C.pending c);
          for _ = 1 to n do
            let r = C.recv c in
            match Hashtbl.find_opt ids r.P.id with
            | None -> Alcotest.failf "unknown reply id %d" r.P.id
            | Some _ ->
                Hashtbl.remove ids r.P.id;
                check "put ok" true (r.P.status = P.Ok)
          done;
          check_int "every id answered exactly once" 0 (Hashtbl.length ids);
          check_int "nothing pending" 0 (C.pending c);
          (* Mixing a sync call among pipelined sends exercises the
             out-of-order stash. *)
          let pending_ids =
            List.init 32 (fun i -> C.send c (P.Get (key i)))
          in
          check "sync call overtakes the pipeline" true
            (C.get c (key 7) = Some "7");
          List.iter
            (fun _ ->
              let r = C.recv c in
              check "pipelined get ok" true (r.P.status = P.Ok))
            pending_ids))

let busy_backpressure () =
  let gate = Atomic.make false in
  let on_dequeue ~shard:_ =
    while not (Atomic.get gate) do
      Unix.sleepf 0.001
    done
  in
  with_server ~shards:1 ~queue_capacity:2 ~batch:1 ~on_dequeue (fun srv ->
      let c = C.connect (E.addr srv) in
      Fun.protect ~finally:(fun () -> C.close c) (fun () ->
          let n = 10 in
          let sent =
            List.init n (fun i ->
                C.send c (P.Put (Printf.sprintf "k%d" i, "v")))
          in
          (* The shard is wedged on the gate with one request in hand and
             at most two queued: at least n-3 must bounce immediately. *)
          let busy = ref 0 and ok = ref 0 in
          let busy_ids = ref [] in
          while !busy + !ok < n do
            let r = C.recv c in
            (match r.P.status with
            | P.Busy ->
                incr busy;
                busy_ids := r.P.id :: !busy_ids
            | P.Ok -> incr ok
            | s -> Alcotest.fail (P.status_name s));
            (* Once every bounce is in, release the shard. *)
            if !busy + !ok + 3 >= n && not (Atomic.get gate) then
              Atomic.set gate true
          done;
          Atomic.set gate true;
          check "backpressure engaged" true (!busy >= n - 3);
          check_int "every request answered" n (!busy + !ok);
          ignore sent;
          (* BUSY means not applied: accepted puts are visible, bounced
             ones are not. *)
          let applied = C.scan c ~start:"" ~n:100 in
          check_int "accepted = applied" !ok (List.length applied)))

let graceful_drain_flushes_everything () =
  let addr = C.Unix_sock (Filename.temp_file "incll_drain" ".sock") in
  let srv =
    E.start
      ~config:(server_config ~nkeys:200 ~shards:2)
      ~variant:Incll.System.Incll ~shards:2 addr
  in
  let c = C.connect (E.addr srv) in
  let n = 50 in
  for i = 0 to n - 1 do
    ignore (C.send c (P.Put (Printf.sprintf "d%02d" i, "v")))
  done;
  (* Stop with all n requests in flight: the drain must finish them and
     flush every reply before the server lets go of the connection. *)
  E.stop srv;
  let got = ref 0 in
  (try
     while !got < n do
       let r = C.recv c in
       check "drained op ok" true (r.P.status = P.Ok);
       incr got
     done
   with End_of_file -> ());
  check_int "every in-flight reply flushed" n !got;
  C.close c;
  (* And the work really landed in the store. *)
  check_int "puts applied before shutdown" n (S.cardinal (E.store srv))

(* Regression: a signal handler firing mid-drain (a supervisor's second
   SIGTERM, say) interrupts blocking syscalls with EINTR — the drain
   must resume them, not abandon in-flight replies. *)
let drain_survives_signals () =
  let prev = Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> ())) in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigusr1 prev)
    (fun () ->
      let addr = C.Unix_sock (Filename.temp_file "incll_sigdrain" ".sock") in
      let srv =
        E.start
          ~config:(server_config ~nkeys:200 ~shards:2)
          ~variant:Incll.System.Incll ~shards:2 addr
      in
      let c = C.connect (E.addr srv) in
      let n = 100 in
      for i = 0 to n - 1 do
        ignore (C.send c (P.Put (Printf.sprintf "sd%03d" i, "v")))
      done;
      let pepper = Atomic.make true in
      let pid = Unix.getpid () in
      let d =
        Domain.spawn (fun () ->
            while Atomic.get pepper do
              Unix.kill pid Sys.sigusr1;
              Unix.sleepf 0.002
            done)
      in
      E.stop srv;
      Atomic.set pepper false;
      Domain.join d;
      let got = ref 0 in
      (try
         while !got < n do
           let r = C.recv c in
           check "drained under signals" true (r.P.status = P.Ok);
           incr got
         done
       with End_of_file -> ());
      check_int "every reply flushed despite EINTR" n !got;
      C.close c;
      check_int "all puts applied" n (S.cardinal (E.store srv)))

let stats_over_the_wire () =
  with_server (fun srv ->
      let c = C.connect (E.addr srv) in
      Fun.protect ~finally:(fun () -> C.close c) (fun () ->
          for i = 0 to 99 do
            C.put c (Printf.sprintf "s%03d" i) "v"
          done;
          let json = Obs.Json.of_string (C.stats c P.Stats_json) in
          (* The queueing delay the server measured surfaces as an
             ordinary stall histogram in the merged registry. *)
          (match
             Obs.Json.find_path json
               [ "histograms"; "stall.net_queue_ns"; "count" ]
           with
          | Some n ->
              check "net_queue stall per routed request" true
                (match Obs.Json.to_float_opt n with
                | Some f -> f >= 100.0
                | None -> false)
          | None -> Alcotest.fail "stall.net_queue_ns missing from STATS");
          let prom = C.stats c P.Stats_prom in
          check "prometheus exposition" true
            (let sub = "incll_stall_net_queue_ns" in
             let rec find i =
               i + String.length sub <= String.length prom
               && (String.sub prom i (String.length sub) = sub || find (i + 1))
             in
             find 0)))

(* --- differential oracle ------------------------------------------------- *)

(* The same seeded stream (with deletes mixed in) through the wire and
   through the in-process facade must land byte-identical final states.
   Gets/scans ride along so reordering bugs would have room to bite. *)
let oracle_stream spec ~seed ~n =
  Array.mapi
    (fun i op ->
      match op with
      | Y.Put (k, _) when i mod 37 = 17 -> `Del k
      | Y.Put (k, v) -> `Put (k, v)
      | Y.Get k -> `Get k
      | Y.Scan (k, n) -> `Scan (k, n))
    (O.generate spec ~seed ~n)

let remote_full_state c =
  let rec page start acc =
    match C.scan c ~start ~n:137 with
    | [] -> List.rev acc
    | pairs ->
        let last, _ = List.nth pairs (List.length pairs - 1) in
        page (last ^ "\x00") (List.rev_append pairs acc)
  in
  page "" []

let oracle_one ~seed ~shards =
  let nkeys = 400 and n = 1_500 in
  let spec = { Y.mix = Y.A; dist = Y.Zipfian; nkeys } in
  let ops = oracle_stream spec ~seed ~n in
  with_server ~shards ~nkeys (fun srv ->
      let c = C.connect (E.addr srv) in
      Fun.protect ~finally:(fun () -> C.close c) (fun () ->
          (* Wire side, pipelined with a window below the queue bound so
             BUSY (which would drop an op) cannot occur. *)
          let window = 128 in
          Array.iter
            (fun op ->
              if C.pending c >= window then
                check "no BUSY in oracle run" true
                  ((C.recv c).P.status <> P.Busy);
              ignore
                (C.send c
                   (match op with
                   | `Put (k, v) -> P.Put (k, v)
                   | `Del k -> P.Delete k
                   | `Get k -> P.Get k
                   | `Scan (k, n) -> P.Scan (k, n))))
            ops;
          while C.pending c > 0 do
            check "no BUSY in oracle tail" true ((C.recv c).P.status <> P.Busy)
          done;
          (* One multi-key transaction on top, same on both sides. *)
          C.txn_begin c;
          C.txn_put c "txn_a" "across";
          C.txn_put c "txn_b" "shards";
          C.txn_commit c;
          (* In-process side: same stream through the sequential facade. *)
          let local =
            S.create ~config:(server_config ~nkeys ~shards)
              Incll.System.Incll ~shards
          in
          Array.iter
            (fun op ->
              match op with
              | `Put (k, v) -> S.put local ~key:k ~value:v
              | `Del k -> ignore (S.remove local ~key:k)
              | `Get k -> ignore (S.get local ~key:k)
              | `Scan (k, n) -> ignore (S.scan local ~start:k ~n))
            ops;
          S.txn_begin local;
          S.txn_put local ~key:"txn_a" ~value:"across";
          S.txn_put local ~key:"txn_b" ~value:"shards";
          S.txn_commit local;
          (* Compare complete states, paginated over the wire. *)
          let remote = remote_full_state c in
          let expected = S.scan local ~start:"" ~n:(S.cardinal local + 1) in
          check_int
            (Printf.sprintf "seed %d / %d shards: cardinality" seed shards)
            (List.length expected) (List.length remote);
          List.iter2
            (fun (k, v) (k', v') ->
              check_str "oracle key" k k';
              check_str "oracle value" v v')
            expected remote))

let differential_oracle () =
  List.iter
    (fun seed -> List.iter (fun shards -> oracle_one ~seed ~shards) [ 1; 4 ])
    [ 3; 5; 7; 11 ]

let tests =
  ( "wire",
    [
      QCheck_alcotest.to_alcotest frame_round_trip_property;
      Alcotest.test_case "truncated frames rejected" `Quick
        truncated_frames_rejected;
      Alcotest.test_case "oversized frame rejected" `Quick
        oversized_frame_rejected;
      Alcotest.test_case "garbage-header fuzz" `Quick garbage_fuzz;
      Alcotest.test_case "duplicated frames decode independently" `Quick
        duplicated_frames_decode;
      Alcotest.test_case "address parsing" `Quick addr_parsing;
      Alcotest.test_case "bounded queue contract" `Quick bqueue_contract;
      Alcotest.test_case "basic ops over a unix socket" `Quick
        basic_ops_over_unix_socket;
      Alcotest.test_case "basic ops over tcp" `Quick basic_ops_over_tcp;
      Alcotest.test_case "transactions over the wire" `Quick
        transactions_over_the_wire;
      Alcotest.test_case "pipelined out-of-order replies" `Quick
        pipelined_out_of_order;
      Alcotest.test_case "BUSY backpressure, bounded queues" `Quick
        busy_backpressure;
      Alcotest.test_case "graceful drain flushes everything" `Quick
        graceful_drain_flushes_everything;
      Alcotest.test_case "drain survives signal delivery" `Quick
        drain_survives_signals;
      Alcotest.test_case "STATS carries net_queue" `Quick stats_over_the_wire;
      Alcotest.test_case "differential oracle: wire = in-process" `Slow
        differential_oracle;
    ] )
