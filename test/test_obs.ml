(* Tests for the observability layer: JSON serializer, log-scale
   histograms, metric registries and the bounded trace ring. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- JSON --------------------------------------------------------------- *)

let json_renders_scalars () =
  let open Obs.Json in
  check_str "null" "null" (to_string Null);
  check_str "true" "true" (to_string (Bool true));
  check_str "int" "42" (to_string (Int 42));
  check_str "neg" "-7" (to_string (Int (-7)));
  check_str "string" "\"hi\"" (to_string (String "hi"));
  check_str "empty list" "[]" (to_string (List []));
  check_str "empty obj" "{}" (to_string (Obj []))

let json_escapes_strings () =
  let open Obs.Json in
  check_str "quote/backslash" "\"a\\\"b\\\\c\"" (to_string (String "a\"b\\c"));
  check_str "newline" "\"a\\nb\"" (to_string (String "a\nb"));
  check_str "control" "\"\\u0001\"" (to_string (String "\x01"))

let json_floats_are_valid () =
  let open Obs.Json in
  (* NaN / infinities are not JSON; they must degrade to null. *)
  check_str "nan" "null" (to_string (Float Float.nan));
  check_str "inf" "null" (to_string (Float Float.infinity));
  check_str "-inf" "null" (to_string (Float Float.neg_infinity));
  (* Integer-valued floats keep a decimal point (stay floats on re-read). *)
  check_str "whole float" "2.0" (to_string (Float 2.0));
  check_str "fraction" "2.5" (to_string (Float 2.5))

let json_nests () =
  let open Obs.Json in
  let v = Obj [ ("a", List [ Int 1; Obj [ ("b", Bool false) ] ]) ] in
  check_str "compact" "{\"a\":[1,{\"b\":false}]}" (to_string v);
  (* Pretty rendering stays parseable-equivalent: same tokens, plus
     whitespace. *)
  let strip s =
    String.concat ""
      (String.split_on_char '\n' (String.concat "" (String.split_on_char ' ' s)))
  in
  check_str "pretty = compact modulo whitespace" (to_string v)
    (strip (to_string_pretty v))

(* --- histogram ---------------------------------------------------------- *)

let histogram_exact_aggregates () =
  let h = Obs.Histogram.create () in
  List.iter (Obs.Histogram.record h) [ 10.0; 20.0; 30.0; 40.0 ];
  check_int "count" 4 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 100.0 (Obs.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "mean" 25.0 (Obs.Histogram.mean h);
  Alcotest.(check (float 1e-9)) "min" 10.0 (Obs.Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "max" 40.0 (Obs.Histogram.max_value h)

let histogram_percentiles_approximate () =
  (* 1..1000: each log-bucket is at most ~12.5% wide, so every quantile
     must land within ~13% of the true value. *)
  let h = Obs.Histogram.create () in
  for i = 1 to 1000 do
    Obs.Histogram.record h (float_of_int i)
  done;
  List.iter
    (fun (q, truth) ->
      let got = Obs.Histogram.percentile h q in
      check
        (Printf.sprintf "p%.0f within bucket error (got %.1f, true %.1f)"
           (q *. 100.0) got truth)
        true
        (Float.abs (got -. truth) /. truth < 0.13))
    [ (0.5, 500.0); (0.9, 900.0); (0.99, 990.0) ];
  (* Extremes stay inside the observed range and in order. *)
  let p0 = Obs.Histogram.percentile h 0.0
  and p50 = Obs.Histogram.percentile h 0.5
  and p100 = Obs.Histogram.percentile h 1.0 in
  check "p0 within range" true (p0 >= 1.0 && p0 <= 2.0);
  check "p100 within range" true (p100 > 900.0 && p100 <= 1000.0);
  check "quantiles ordered" true (p0 <= p50 && p50 <= p100)

let histogram_empty_is_quiet () =
  let h = Obs.Histogram.create () in
  check_int "count" 0 (Obs.Histogram.count h);
  Alcotest.(check (float 0.0)) "p50" 0.0 (Obs.Histogram.percentile h 0.5);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Obs.Histogram.mean h)

let histogram_merge_and_diff () =
  let a = Obs.Histogram.create () and b = Obs.Histogram.create () in
  List.iter (Obs.Histogram.record a) [ 1.0; 2.0 ];
  List.iter (Obs.Histogram.record b) [ 100.0; 200.0 ];
  let m = Obs.Histogram.copy a in
  Obs.Histogram.merge_into ~into:m b;
  check_int "merged count" 4 (Obs.Histogram.count m);
  Alcotest.(check (float 1e-9)) "merged sum" 303.0 (Obs.Histogram.sum m);
  let d = Obs.Histogram.diff ~after:m ~before:a in
  check_int "diff count" 2 (Obs.Histogram.count d);
  Alcotest.(check (float 1e-9)) "diff sum" 300.0 (Obs.Histogram.sum d);
  (* The window's quantiles come from the window's buckets only. *)
  check "diff p50 in b's range" true (Obs.Histogram.percentile d 0.5 >= 90.0)

(* --- registry ----------------------------------------------------------- *)

let registry_handles_are_stable () =
  let r = Obs.Registry.create () in
  let c1 = Obs.Registry.counter r "x" in
  let c2 = Obs.Registry.counter r "x" in
  check "same ref" true (c1 == c2);
  incr c1;
  incr c2;
  check_int "both bump one counter" 2 (Obs.Registry.counter_value r "x");
  check_int "absent counter reads 0" 0 (Obs.Registry.counter_value r "y");
  let h1 = Obs.Registry.histogram r "h" in
  let h2 = Obs.Registry.histogram r "h" in
  check "same histogram" true (h1 == h2)

let registry_merge_sums_shards () =
  let shard i =
    let r = Obs.Registry.create () in
    Obs.Registry.counter r "ops" := 10 * (i + 1);
    Obs.Histogram.record (Obs.Registry.histogram r "lat") (float_of_int (i + 1));
    r
  in
  let m = Obs.Registry.merged [ shard 0; shard 1; shard 2 ] in
  check_int "counters summed" 60 (Obs.Registry.counter_value m "ops");
  match Obs.Registry.find_histogram m "lat" with
  | None -> Alcotest.fail "merged histogram missing"
  | Some h -> check_int "histograms summed" 3 (Obs.Histogram.count h)

let registry_snapshot_diff_windows () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r "n" in
  c := 5;
  let before = Obs.Registry.snapshot r in
  c := 12;
  Obs.Histogram.record (Obs.Registry.histogram r "h") 3.0;
  let d = Obs.Registry.diff ~after:r ~before in
  check_int "window counter" 7 (Obs.Registry.counter_value d "n");
  (* Snapshot is a deep copy: mutating the live registry never moves it. *)
  check_int "snapshot frozen" 5 (Obs.Registry.counter_value before "n");
  (* Name only in [after] passes through. *)
  match Obs.Registry.find_histogram d "h" with
  | None -> Alcotest.fail "after-only histogram missing from diff"
  | Some h -> check_int "after-only histogram" 1 (Obs.Histogram.count h)

let registry_json_shape () =
  let r = Obs.Registry.create () in
  Obs.Registry.counter r "a" := 1;
  Obs.Histogram.record (Obs.Registry.histogram r "b") 4.0;
  match Obs.Registry.to_json r with
  | Obs.Json.Obj [ ("counters", Obs.Json.Obj cs); ("histograms", Obs.Json.Obj hs) ]
    ->
      check_int "one counter" 1 (List.length cs);
      check_int "one histogram" 1 (List.length hs);
      check "histogram has p99" true
        (match List.assoc "b" hs with
        | Obs.Json.Obj fields -> List.mem_assoc "p99" fields
        | _ -> false)
  | _ -> Alcotest.fail "unexpected registry JSON shape"

(* --- trace ring --------------------------------------------------------- *)

let trace_disabled_by_default () =
  let tr = Obs.Trace.create () in
  check "disabled" false (Obs.Trace.enabled tr);
  Obs.Trace.record tr ~ts_ns:1.0 ~kind:"x" ~arg:0;
  check_int "no-op while disabled" 0 (Obs.Trace.length tr)

let trace_ring_bounds_memory () =
  let tr = Obs.Trace.create ~capacity:4 () in
  Obs.Trace.set_enabled tr true;
  for i = 1 to 10 do
    Obs.Trace.record tr ~ts_ns:(float_of_int i) ~kind:"e" ~arg:i
  done;
  check_int "bounded" 4 (Obs.Trace.length tr);
  check_int "total counts all" 10 (Obs.Trace.total tr);
  check_int "dropped = overflow" 6 (Obs.Trace.dropped tr);
  (* Oldest-first, and the survivors are the newest events. *)
  Alcotest.(check (list int)) "keeps the tail" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Obs.Trace.arg) (Obs.Trace.to_list tr));
  Obs.Trace.clear tr;
  check_int "clear empties" 0 (Obs.Trace.length tr)

let trace_events_through_region () =
  (* End-to-end: the NVM region stamps events with the simulated clock. *)
  let cfg =
    {
      Nvm.Config.default with
      Nvm.Config.size_bytes = 1024 * 1024;
      extlog_bytes = 64 * 1024;
    }
  in
  let r = Nvm.Region.create cfg in
  Obs.Trace.set_enabled (Nvm.Region.trace r) true;
  Nvm.Region.write_i64 r 4096 1L;
  Nvm.Region.clwb r 4096;
  Nvm.Region.sfence r;
  let kinds = List.map (fun e -> e.Obs.Trace.kind) (Obs.Trace.to_list (Nvm.Region.trace r)) in
  Alcotest.(check (list string)) "clwb then sfence" [ "clwb"; "sfence" ] kinds;
  let ts = List.map (fun e -> e.Obs.Trace.ts_ns) (Obs.Trace.to_list (Nvm.Region.trace r)) in
  check "timestamps monotone" true (List.sort compare ts = ts)

let tests =
  ( "obs",
    [
      Alcotest.test_case "json scalars" `Quick json_renders_scalars;
      Alcotest.test_case "json escaping" `Quick json_escapes_strings;
      Alcotest.test_case "json floats valid" `Quick json_floats_are_valid;
      Alcotest.test_case "json nesting/pretty" `Quick json_nests;
      Alcotest.test_case "histogram aggregates exact" `Quick histogram_exact_aggregates;
      Alcotest.test_case "histogram percentiles" `Quick histogram_percentiles_approximate;
      Alcotest.test_case "histogram empty" `Quick histogram_empty_is_quiet;
      Alcotest.test_case "histogram merge/diff" `Quick histogram_merge_and_diff;
      Alcotest.test_case "registry stable handles" `Quick registry_handles_are_stable;
      Alcotest.test_case "registry merges shards" `Quick registry_merge_sums_shards;
      Alcotest.test_case "registry snapshot/diff" `Quick registry_snapshot_diff_windows;
      Alcotest.test_case "registry JSON shape" `Quick registry_json_shape;
      Alcotest.test_case "trace disabled by default" `Quick trace_disabled_by_default;
      Alcotest.test_case "trace ring bounds memory" `Quick trace_ring_bounds_memory;
      Alcotest.test_case "trace via region" `Quick trace_events_through_region;
    ] )
