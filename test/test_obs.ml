(* Tests for the observability layer: JSON serializer, log-scale
   histograms, metric registries and the bounded trace ring. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- JSON --------------------------------------------------------------- *)

let json_renders_scalars () =
  let open Obs.Json in
  check_str "null" "null" (to_string Null);
  check_str "true" "true" (to_string (Bool true));
  check_str "int" "42" (to_string (Int 42));
  check_str "neg" "-7" (to_string (Int (-7)));
  check_str "string" "\"hi\"" (to_string (String "hi"));
  check_str "empty list" "[]" (to_string (List []));
  check_str "empty obj" "{}" (to_string (Obj []))

let json_escapes_strings () =
  let open Obs.Json in
  check_str "quote/backslash" "\"a\\\"b\\\\c\"" (to_string (String "a\"b\\c"));
  check_str "newline" "\"a\\nb\"" (to_string (String "a\nb"));
  check_str "control" "\"\\u0001\"" (to_string (String "\x01"))

let json_floats_are_valid () =
  let open Obs.Json in
  (* NaN / infinities are not JSON; they must degrade to null. *)
  check_str "nan" "null" (to_string (Float Float.nan));
  check_str "inf" "null" (to_string (Float Float.infinity));
  check_str "-inf" "null" (to_string (Float Float.neg_infinity));
  (* Integer-valued floats keep a decimal point (stay floats on re-read). *)
  check_str "whole float" "2.0" (to_string (Float 2.0));
  check_str "fraction" "2.5" (to_string (Float 2.5))

let json_nests () =
  let open Obs.Json in
  let v = Obj [ ("a", List [ Int 1; Obj [ ("b", Bool false) ] ]) ] in
  check_str "compact" "{\"a\":[1,{\"b\":false}]}" (to_string v);
  (* Pretty rendering stays parseable-equivalent: same tokens, plus
     whitespace. *)
  let strip s =
    String.concat ""
      (String.split_on_char '\n' (String.concat "" (String.split_on_char ' ' s)))
  in
  check_str "pretty = compact modulo whitespace" (to_string v)
    (strip (to_string_pretty v))

(* --- JSON parser -------------------------------------------------------- *)

let json_parses_back () =
  let open Obs.Json in
  let v =
    Obj
      [
        ("a", List [ Int 1; Float 2.5; Null; Bool true ]);
        ("s", String "he said \"hi\"\n\ttab");
        ("nested", Obj [ ("neg", Int (-3)); ("empty", List []) ]);
      ]
  in
  check "compact roundtrip" true (of_string (to_string v) = v);
  check "pretty roundtrip" true (of_string (to_string_pretty v) = v)

let json_parses_numbers () =
  let open Obs.Json in
  check "int stays int" true (of_string "42" = Int 42);
  check "negative" true (of_string "-7" = Int (-7));
  check "decimal is float" true (of_string "2.0" = Float 2.0);
  check "exponent is float" true (of_string "1e3" = Float 1000.0);
  check "unicode escape" true (of_string "\"\\u0041\"" = String "A")

let json_rejects_garbage () =
  let open Obs.Json in
  List.iter
    (fun s ->
      check (Printf.sprintf "rejects %S" s) true (of_string_opt s = None))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "{'a':1}" ]

let json_accessors () =
  let open Obs.Json in
  let v = of_string "{\"a\":{\"b\":[1,2]},\"n\":3.5}" in
  check "find" true (find v "n" = Some (Float 3.5));
  check "find missing" true (find v "zzz" = None);
  check "find_path" true (find_path v [ "a"; "b" ] = Some (List [ Int 1; Int 2 ]));
  check "to_float int" true (to_float_opt (Int 2) = Some 2.0);
  check "to_float string" true (to_float_opt (String "2") = None)

(* --- histogram ---------------------------------------------------------- *)

let histogram_exact_aggregates () =
  let h = Obs.Histogram.create () in
  List.iter (Obs.Histogram.record h) [ 10.0; 20.0; 30.0; 40.0 ];
  check_int "count" 4 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 100.0 (Obs.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "mean" 25.0 (Obs.Histogram.mean h);
  Alcotest.(check (float 1e-9)) "min" 10.0 (Obs.Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "max" 40.0 (Obs.Histogram.max_value h)

let histogram_percentiles_approximate () =
  (* 1..1000: each log-bucket is at most ~12.5% wide, so every quantile
     must land within ~13% of the true value. *)
  let h = Obs.Histogram.create () in
  for i = 1 to 1000 do
    Obs.Histogram.record h (float_of_int i)
  done;
  List.iter
    (fun (q, truth) ->
      let got = Obs.Histogram.percentile h q in
      check
        (Printf.sprintf "p%.0f within bucket error (got %.1f, true %.1f)"
           (q *. 100.0) got truth)
        true
        (Float.abs (got -. truth) /. truth < 0.13))
    [ (0.5, 500.0); (0.9, 900.0); (0.99, 990.0) ];
  (* Extremes stay inside the observed range and in order. *)
  let p0 = Obs.Histogram.percentile h 0.0
  and p50 = Obs.Histogram.percentile h 0.5
  and p100 = Obs.Histogram.percentile h 1.0 in
  check "p0 within range" true (p0 >= 1.0 && p0 <= 2.0);
  check "p100 within range" true (p100 > 900.0 && p100 <= 1000.0);
  check "quantiles ordered" true (p0 <= p50 && p50 <= p100)

let histogram_empty_is_quiet () =
  let h = Obs.Histogram.create () in
  check_int "count" 0 (Obs.Histogram.count h);
  Alcotest.(check (float 0.0)) "p50" 0.0 (Obs.Histogram.percentile h 0.5);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Obs.Histogram.mean h)

let histogram_merge_and_diff () =
  let a = Obs.Histogram.create () and b = Obs.Histogram.create () in
  List.iter (Obs.Histogram.record a) [ 1.0; 2.0 ];
  List.iter (Obs.Histogram.record b) [ 100.0; 200.0 ];
  let m = Obs.Histogram.copy a in
  Obs.Histogram.merge_into ~into:m b;
  check_int "merged count" 4 (Obs.Histogram.count m);
  Alcotest.(check (float 1e-9)) "merged sum" 303.0 (Obs.Histogram.sum m);
  let d = Obs.Histogram.diff ~after:m ~before:a in
  check_int "diff count" 2 (Obs.Histogram.count d);
  Alcotest.(check (float 1e-9)) "diff sum" 300.0 (Obs.Histogram.sum d);
  (* The window's quantiles come from the window's buckets only. *)
  check "diff p50 in b's range" true (Obs.Histogram.percentile d 0.5 >= 90.0)

let histogram_diff_window_extremes () =
  (* The all-time min (1.0) and max (800.0) both land outside the
     window; the window's min/max must be rebuilt from its own occupied
     buckets, not copied from [after]. *)
  let before = Obs.Histogram.create () in
  List.iter (Obs.Histogram.record before) [ 1.0; 800.0 ];
  let after = Obs.Histogram.copy before in
  List.iter (Obs.Histogram.record after) [ 100.0; 200.0 ];
  let d = Obs.Histogram.diff ~after ~before in
  check_int "window count" 2 (Obs.Histogram.count d);
  let mn = Obs.Histogram.min_value d and mx = Obs.Histogram.max_value d in
  (* Bucket bounds: at most ~12.5% away from the true extremes, and
     never as wide as the lifetime range. *)
  check (Printf.sprintf "window min ~100 (got %.1f)" mn) true
    (mn > 80.0 && mn <= 100.0);
  check (Printf.sprintf "window max ~200 (got %.1f)" mx) true
    (mx >= 200.0 && mx < 250.0);
  (* Quantiles clamp to the window's extremes, not the lifetime's. *)
  let p100 = Obs.Histogram.percentile d 1.0 in
  check (Printf.sprintf "window p100 below 250 (got %.1f)" p100) true
    (p100 < 250.0);
  (* An empty window stays quiet even though [after] is not empty. *)
  let e = Obs.Histogram.diff ~after ~before:after in
  check_int "empty window count" 0 (Obs.Histogram.count e);
  Alcotest.(check (float 0.0)) "empty window min" 0.0 (Obs.Histogram.min_value e);
  Alcotest.(check (float 0.0)) "empty window max" 0.0 (Obs.Histogram.max_value e);
  Alcotest.(check (float 0.0)) "empty window p50" 0.0
    (Obs.Histogram.percentile e 0.5)

(* --- registry ----------------------------------------------------------- *)

let registry_handles_are_stable () =
  let r = Obs.Registry.create () in
  let c1 = Obs.Registry.counter r "x" in
  let c2 = Obs.Registry.counter r "x" in
  check "same ref" true (c1 == c2);
  incr c1;
  incr c2;
  check_int "both bump one counter" 2 (Obs.Registry.counter_value r "x");
  check_int "absent counter reads 0" 0 (Obs.Registry.counter_value r "y");
  let h1 = Obs.Registry.histogram r "h" in
  let h2 = Obs.Registry.histogram r "h" in
  check "same histogram" true (h1 == h2)

let registry_merge_sums_shards () =
  let shard i =
    let r = Obs.Registry.create () in
    Obs.Registry.counter r "ops" := 10 * (i + 1);
    Obs.Histogram.record (Obs.Registry.histogram r "lat") (float_of_int (i + 1));
    r
  in
  let m = Obs.Registry.merged [ shard 0; shard 1; shard 2 ] in
  check_int "counters summed" 60 (Obs.Registry.counter_value m "ops");
  match Obs.Registry.find_histogram m "lat" with
  | None -> Alcotest.fail "merged histogram missing"
  | Some h -> check_int "histograms summed" 3 (Obs.Histogram.count h)

let registry_snapshot_diff_windows () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r "n" in
  c := 5;
  let before = Obs.Registry.snapshot r in
  c := 12;
  Obs.Histogram.record (Obs.Registry.histogram r "h") 3.0;
  let d = Obs.Registry.diff ~after:r ~before in
  check_int "window counter" 7 (Obs.Registry.counter_value d "n");
  (* Snapshot is a deep copy: mutating the live registry never moves it. *)
  check_int "snapshot frozen" 5 (Obs.Registry.counter_value before "n");
  (* Name only in [after] passes through. *)
  match Obs.Registry.find_histogram d "h" with
  | None -> Alcotest.fail "after-only histogram missing from diff"
  | Some h -> check_int "after-only histogram" 1 (Obs.Histogram.count h)

let registry_diff_is_exhaustive () =
  (* Regression: diff used to walk only [after]'s names, so anything
     present in [before] alone silently vanished from the window. *)
  let before = Obs.Registry.create () in
  Obs.Registry.counter before "gone" := 9;
  Obs.Histogram.record (Obs.Registry.histogram before "gone_h") 5.0;
  let after = Obs.Registry.create () in
  Obs.Registry.counter after "kept" := 3;
  let d = Obs.Registry.diff ~after ~before in
  check_int "after-only counter" 3 (Obs.Registry.counter_value d "kept");
  check_int "before-only counter negated" (-9)
    (Obs.Registry.counter_value d "gone");
  match Obs.Registry.find_histogram d "gone_h" with
  | None -> Alcotest.fail "before-only histogram missing from diff"
  | Some h -> check_int "before-only histogram negated" (-1) (Obs.Histogram.count h)

let registry_json_shape () =
  let r = Obs.Registry.create () in
  Obs.Registry.counter r "a" := 1;
  Obs.Histogram.record (Obs.Registry.histogram r "b") 4.0;
  match Obs.Registry.to_json r with
  | Obs.Json.Obj [ ("counters", Obs.Json.Obj cs); ("histograms", Obs.Json.Obj hs) ]
    ->
      check_int "one counter" 1 (List.length cs);
      check_int "one histogram" 1 (List.length hs);
      check "histogram has p99" true
        (match List.assoc "b" hs with
        | Obs.Json.Obj fields -> List.mem_assoc "p99" fields
        | _ -> false)
  | _ -> Alcotest.fail "unexpected registry JSON shape"

(* --- trace ring --------------------------------------------------------- *)

let custom kind arg = Obs.Trace.Custom { kind; arg }
let event_arg e = Obs.Trace.arg e.Obs.Trace.payload
let event_kind e = Obs.Trace.kind e.Obs.Trace.payload

let trace_disabled_by_default () =
  let tr = Obs.Trace.create () in
  check "disabled" false (Obs.Trace.enabled tr);
  Obs.Trace.record tr ~ts_ns:1.0 (custom "x" 0);
  check_int "no-op while disabled" 0 (Obs.Trace.length tr)

let trace_ring_bounds_memory () =
  let tr = Obs.Trace.create ~capacity:4 () in
  Obs.Trace.set_enabled tr true;
  for i = 1 to 10 do
    Obs.Trace.record tr ~ts_ns:(float_of_int i) (custom "e" i)
  done;
  check_int "bounded" 4 (Obs.Trace.length tr);
  check_int "total counts all" 10 (Obs.Trace.total tr);
  check_int "dropped = overflow" 6 (Obs.Trace.dropped tr);
  (* Oldest-first, and the survivors are the newest events. *)
  Alcotest.(check (list int)) "keeps the tail" [ 7; 8; 9; 10 ]
    (List.map event_arg (Obs.Trace.to_list tr));
  Obs.Trace.clear tr;
  check_int "clear empties" 0 (Obs.Trace.length tr)

let trace_wraparound_ordering () =
  (* Ordering must hold in the wrapped regime, where the ring's write
     cursor sits mid-array: to_list must stitch [cursor..end] before
     [0..cursor-1], oldest first, for any overflow amount. *)
  List.iter
    (fun n ->
      let tr = Obs.Trace.create ~capacity:5 () in
      Obs.Trace.set_enabled tr true;
      for i = 1 to n do
        Obs.Trace.record tr ~ts_ns:(float_of_int i) (custom "e" i)
      done;
      let got = List.map event_arg (Obs.Trace.to_list tr) in
      let expect = List.init (min n 5) (fun i -> max 0 (n - 5) + i + 1) in
      Alcotest.(check (list int))
        (Printf.sprintf "order after %d records" n)
        expect got;
      let ts = List.map (fun e -> e.Obs.Trace.ts_ns) (Obs.Trace.to_list tr) in
      check "timestamps sorted" true (List.sort compare ts = ts))
    [ 3; 5; 6; 7; 11; 23 ]

let trace_events_through_region () =
  (* End-to-end: the NVM region stamps events with the simulated clock. *)
  let cfg =
    {
      Nvm.Config.default with
      Nvm.Config.size_bytes = 1024 * 1024;
      extlog_bytes = 64 * 1024;
    }
  in
  let r = Nvm.Region.create cfg in
  Obs.Trace.set_enabled (Nvm.Region.trace r) true;
  Nvm.Region.write_i64 r 4096 1L;
  Nvm.Region.clwb r 4096;
  Nvm.Region.sfence r;
  let events = Obs.Trace.to_list (Nvm.Region.trace r) in
  Alcotest.(check (list string)) "clwb then sfence" [ "clwb"; "sfence" ]
    (List.map event_kind events);
  (match events with
  | [ { Obs.Trace.payload = Obs.Trace.Clwb { line }; _ };
      { Obs.Trace.payload = Obs.Trace.Sfence { drained; dur_ns }; _ } ] ->
      check_int "clwb line" (4096 / 64) line;
      check_int "sfence drained the line" 1 drained;
      check "sfence cost recorded" true (dur_ns > 0.0)
  | _ -> Alcotest.fail "unexpected payloads");
  let ts = List.map (fun e -> e.Obs.Trace.ts_ns) events in
  check "timestamps monotone" true (List.sort compare ts = ts)

(* --- spans -------------------------------------------------------------- *)

let span_env () =
  let now = ref 0.0 in
  let reg = Obs.Registry.create () in
  let tr = Obs.Trace.create () in
  Obs.Trace.set_enabled tr true;
  let sp = Obs.Span.create ~registry:reg ~trace:tr ~clock:(fun () -> !now) () in
  (now, reg, tr, sp)

let span_nesting_and_histograms () =
  let now, reg, tr, sp = span_env () in
  Obs.Span.begin_ sp "outer";
  now := 10.0;
  check_int "depth" 1 (Obs.Span.depth sp);
  check "current" true (Obs.Span.current sp = Some "outer");
  Obs.Span.begin_ sp "inner";
  now := 30.0;
  let d_inner = Obs.Span.end_ sp "inner" in
  now := 100.0;
  let d_outer = Obs.Span.end_ sp "outer" in
  Alcotest.(check (float 1e-9)) "inner duration" 20.0 d_inner;
  Alcotest.(check (float 1e-9)) "outer spans the inner one" 100.0 d_outer;
  check_int "stack empty" 0 (Obs.Span.depth sp);
  (* Durations fold into per-name histograms in the registry. *)
  (match Obs.Registry.find_histogram reg "span.inner_ns" with
  | Some h ->
      check_int "inner count" 1 (Obs.Histogram.count h);
      Alcotest.(check (float 1e-9)) "inner sum" 20.0 (Obs.Histogram.sum h)
  | None -> Alcotest.fail "span.inner_ns histogram missing");
  (* And begin/end round-trip through the trace ring, properly nested. *)
  Alcotest.(check (list string)) "trace nesting"
    [ "span_begin"; "span_begin"; "span_end"; "span_end" ]
    (List.map event_kind (Obs.Trace.to_list tr))

let span_unbalanced_end_raises () =
  let _, _, _, sp = span_env () in
  (match Obs.Span.end_ sp "never_opened" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "end on empty stack must raise");
  Obs.Span.begin_ sp "a";
  (match Obs.Span.end_ sp "b" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mismatched name must raise");
  (* The mismatch must not have popped the real frame. *)
  check "frame intact" true (Obs.Span.current sp = Some "a")

let span_with_closes_on_exception () =
  let now, reg, _, sp = span_env () in
  (try
     Obs.Span.with_ sp "risky" (fun () ->
         now := 7.0;
         failwith "boom")
   with Failure _ -> ());
  check_int "stack unwound" 0 (Obs.Span.depth sp);
  match Obs.Registry.find_histogram reg "span.risky_ns" with
  | Some h -> check_int "span still recorded" 1 (Obs.Histogram.count h)
  | None -> Alcotest.fail "span.risky_ns histogram missing"

(* --- series ------------------------------------------------------------- *)

let series_bounded_downsampling () =
  let s = Obs.Series.create ~capacity:8 ~name:"x" () in
  for i = 0 to 999 do
    Obs.Series.sample s ~ts_ns:(float_of_int i) ~value:(float_of_int (i * 2))
  done;
  check "bounded" true (Obs.Series.length s <= 8);
  check_int "every offer counted" 1000 (Obs.Series.seen s);
  let stride = Obs.Series.stride s in
  check "stride is a power of two" true (stride land (stride - 1) = 0);
  let pts = Obs.Series.points s in
  (* The first sample survives every compaction, spacing stays uniform,
     and timestamps stay sorted. *)
  (match pts with
  | (ts0, v0) :: _ ->
      Alcotest.(check (float 0.0)) "first point kept" 0.0 ts0;
      Alcotest.(check (float 0.0)) "first value kept" 0.0 v0
  | [] -> Alcotest.fail "empty series");
  let ts = List.map fst pts in
  check "sorted" true (List.sort compare ts = ts);
  (match ts with
  | t0 :: t1 :: _ ->
      Alcotest.(check (float 1e-9)) "uniform spacing = stride"
        (float_of_int stride) (t1 -. t0)
  | _ -> Alcotest.fail "expected >= 2 points");
  (* The newest stored point can lag the newest offer by at most two
     strides (offers between acceptance points are dropped). *)
  check "last stored point is recent" true
    (match Obs.Series.last s with
    | Some (t, _) -> t >= float_of_int (1000 - (2 * stride))
    | None -> false)

let series_small_keeps_everything () =
  let s = Obs.Series.create ~capacity:16 ~name:"y" () in
  for i = 1 to 10 do
    Obs.Series.sample s ~ts_ns:(float_of_int i) ~value:(float_of_int i)
  done;
  check_int "no downsampling below capacity" 10 (Obs.Series.length s);
  check_int "stride 1" 1 (Obs.Series.stride s);
  match Obs.Series.to_json s with
  | Obs.Json.Obj fields ->
      check "json has points" true (List.mem_assoc "points" fields);
      check "json has stride" true (List.mem_assoc "stride" fields)
  | _ -> Alcotest.fail "unexpected series JSON shape"

(* --- Perfetto export ---------------------------------------------------- *)

let perfetto_export_well_formed () =
  let tr = Obs.Trace.create () in
  Obs.Trace.set_enabled tr true;
  let ev ts p = Obs.Trace.record tr ~ts_ns:ts p in
  ev 0.0 (Obs.Trace.Span_begin { name = "checkpoint" });
  ev 10.0 (Obs.Trace.Clwb { line = 3 });
  ev 60.0 (Obs.Trace.Sfence { drained = 1; dur_ns = 50.0 });
  ev 200.0 (Obs.Trace.Wbinvd { lines = 4; dur_ns = 120.0 });
  ev 200.0 (Obs.Trace.Epoch_advance { epoch = 3 });
  ev 210.0 (Obs.Trace.Span_end { name = "checkpoint"; dur_ns = 210.0 });
  ev 400.0 (Obs.Trace.Epoch_advance { epoch = 4 });
  let series = Obs.Series.create ~capacity:8 ~name:"epoch.dirty_lines" () in
  Obs.Series.sample series ~ts_ns:200.0 ~value:4.0;
  let json =
    Obs.Perfetto.export
      ~series:[ ("shard0/epoch.dirty_lines", series) ]
      ~tracks:[ ("shard0", tr) ] ()
  in
  (* The export must be parseable by our own reader (and hence valid
     JSON for Perfetto / chrome://tracing). *)
  let parsed = Obs.Json.of_string (Obs.Json.to_string_pretty json) in
  check "roundtrips" true (parsed = json);
  let events =
    match Obs.Json.find parsed "traceEvents" with
    | Some (Obs.Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let field e name =
    match Obs.Json.find e name with Some v -> v | None -> Obs.Json.Null
  in
  let phases =
    List.filter_map
      (fun e -> match field e "ph" with Obs.Json.String p -> Some p | _ -> None)
      events
  in
  List.iter
    (fun p ->
      check (Printf.sprintf "has a %S event" p) true (List.mem p phases))
    [ "B"; "E"; "X"; "i"; "C"; "M" ];
  let names =
    List.filter_map
      (fun e ->
        match field e "name" with Obs.Json.String n -> Some n | _ -> None)
      events
  in
  List.iter
    (fun n ->
      check (Printf.sprintf "has a %S slice" n) true (List.mem n names))
    [ "checkpoint"; "sfence"; "wbinvd"; "epoch 3" ];
  (* Complete slices carry a duration and start at end - dur. *)
  List.iter
    (fun e ->
      if field e "ph" = Obs.Json.String "X" then
        check "X slice has dur" true
          (match Obs.Json.to_float_opt (field e "dur") with
          | Some d -> d >= 0.0
          | None -> false))
    events;
  (* Every event sits on a numbered pid/tid. *)
  List.iter
    (fun e ->
      check "event has pid" true (Obs.Json.to_float_opt (field e "pid") <> None))
    events

let tests =
  ( "obs",
    [
      Alcotest.test_case "json scalars" `Quick json_renders_scalars;
      Alcotest.test_case "json escaping" `Quick json_escapes_strings;
      Alcotest.test_case "json floats valid" `Quick json_floats_are_valid;
      Alcotest.test_case "json nesting/pretty" `Quick json_nests;
      Alcotest.test_case "json parser roundtrip" `Quick json_parses_back;
      Alcotest.test_case "json parser numbers" `Quick json_parses_numbers;
      Alcotest.test_case "json parser rejects garbage" `Quick json_rejects_garbage;
      Alcotest.test_case "json accessors" `Quick json_accessors;
      Alcotest.test_case "histogram aggregates exact" `Quick histogram_exact_aggregates;
      Alcotest.test_case "histogram percentiles" `Quick histogram_percentiles_approximate;
      Alcotest.test_case "histogram empty" `Quick histogram_empty_is_quiet;
      Alcotest.test_case "histogram merge/diff" `Quick histogram_merge_and_diff;
      Alcotest.test_case "histogram diff window extremes" `Quick
        histogram_diff_window_extremes;
      Alcotest.test_case "registry stable handles" `Quick registry_handles_are_stable;
      Alcotest.test_case "registry merges shards" `Quick registry_merge_sums_shards;
      Alcotest.test_case "registry snapshot/diff" `Quick registry_snapshot_diff_windows;
      Alcotest.test_case "registry diff exhaustive" `Quick registry_diff_is_exhaustive;
      Alcotest.test_case "registry JSON shape" `Quick registry_json_shape;
      Alcotest.test_case "trace disabled by default" `Quick trace_disabled_by_default;
      Alcotest.test_case "trace ring bounds memory" `Quick trace_ring_bounds_memory;
      Alcotest.test_case "trace wrap-around ordering" `Quick trace_wraparound_ordering;
      Alcotest.test_case "trace via region" `Quick trace_events_through_region;
      Alcotest.test_case "span nesting/histograms" `Quick span_nesting_and_histograms;
      Alcotest.test_case "span unbalanced end" `Quick span_unbalanced_end_raises;
      Alcotest.test_case "span with_ on exception" `Quick span_with_closes_on_exception;
      Alcotest.test_case "series downsampling" `Quick series_bounded_downsampling;
      Alcotest.test_case "series below capacity" `Quick series_small_keeps_everything;
      Alcotest.test_case "perfetto export" `Quick perfetto_export_well_formed;
    ] )
