(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6). Run `dune exec bench/main.exe -- --help`.

   Scale: the paper uses 20M-key trees and 1M ops/thread on a 28-core
   Xeon; the default here is 1/100 of that on the simulated memory system.
   Throughput is simulated-clock throughput (see Bench_harness.Runner);
   wall-clock is printed for reference. The epoch length defaults to a
   value that keeps operations-per-epoch near the paper's regime (§6
   discusses ~80K ops per epoch). *)

module R = Bench_harness.Runner
module Y = Workload.Ycsb
module Sys_ = Incll.System

type opts = {
  mutable only : string list;  (* empty = all *)
  mutable scale : float;
  mutable threads : int;
  mutable ops : int;  (* per thread *)
  mutable chunk : int;  (* batch size for the measured loop *)
  mutable epoch_ms : float;
  mutable seed : int;
  mutable repeats : int;
  mutable csv_dir : string option;
  mutable json_file : string option;
  mutable trace_file : string option;
  mutable date : string option;  (* stamped into --json meta *)
  mutable arrival_rate : float option;  (* open-loop offered ops/sim-s *)
  mutable latency_threshold_ns : float;  (* attribution threshold *)
  mutable policy : Nvm.Config.policy;  (* checkpoint scheduler under test *)
  mutable connect : string option;  (* remote bench target address *)
  mutable oracle : bool;  (* differential state check after remote *)
}

let opts =
  {
    only = [];
    scale = 0.01;
    threads = 8;
    ops = 50_000;
    chunk = Bench_harness.Runner.default_chunk;
    epoch_ms = 8.0;
    seed = 1;
    repeats = 1;
    csv_dir = None;
    json_file = None;
    trace_file = None;
    date = None;
    arrival_rate = None;
    latency_threshold_ns = Bench_harness.Runner.default_latency_threshold_ns;
    policy = Nvm.Config.Throughput;
    connect = None;
    oracle = false;
  }

let tracing () = opts.trace_file <> None

(* Accumulated across the whole invocation for --json: every emitted
   table, and the merged metric registry of every measured run (sfence /
   wbinvd latency histograms, epoch distributions, incll_hit vs
   incll_fallback, ...). *)
let json_tables : (string * Util.Table.t) list ref = ref []
let global_metrics = Obs.Registry.create ()

(* With --trace, every measured run rewrites the timeline file, so the
   file that remains describes the last run of the invocation (narrow the
   selection with --only to profile one run). *)
let maybe_write_trace (r : R.result) =
  match opts.trace_file with
  | None -> ()
  | Some path ->
      let json =
        Obs.Perfetto.export ~series:r.R.series ~stalls:r.R.stalls
          ~tracks:r.R.traces ()
      in
      let oc = open_out path in
      output_string oc (Obs.Json.to_string_pretty json);
      output_char oc '\n';
      close_out oc

let note_metrics (r : R.result) =
  Obs.Registry.merge_into ~into:global_metrics r.R.metrics;
  maybe_write_trace r;
  r

let paper_keys = 20_000_000
let nkeys () = max 2_000 (int_of_float (float_of_int paper_keys *. opts.scale))

(* Accept "figureN" as an alias for "figN" in --only. *)
let canonical_name n =
  let pre = "figure" in
  let lp = String.length pre in
  if String.length n > lp && String.sub n 0 lp = pre then
    "fig" ^ String.sub n lp (String.length n - lp)
  else n

let selected name =
  opts.only = [] || List.mem name (List.map canonical_name opts.only)

let line fmt = Printf.printf (fmt ^^ "\n%!")

let config ?(sfence_extra_ns = 0.0) ?(val_incll = true) ?policy ~keys
    ~threads () =
  let policy = Option.value policy ~default:opts.policy in
  let cfg =
    R.config_for ~sfence_extra_ns
      ~epoch_len_ns:(opts.epoch_ms *. 1e6)
      ~val_incll ~policy
      ~nkeys_per_shard:((keys / threads) + 1)
      ()
  in
  if tracing () then
    {
      cfg with
      Sys_.nvm = { cfg.Sys_.nvm with Nvm.Config.trace_capacity = 1 lsl 16 };
    }
  else cfg

let run ?threads ?keys ?sfence_extra_ns ?val_incll variant mix dist =
  let threads = Option.value ~default:opts.threads threads in
  let keys = Option.value ~default:(nkeys ()) keys in
  let cfg = config ?sfence_extra_ns ?val_incll ~keys ~threads () in
  note_metrics
    (R.run ~seed:opts.seed ~threads ~ops_per_thread:opts.ops ~chunk:opts.chunk ~config:cfg
       ~trace:(tracing ()) ~variant ~mix ~dist ~nkeys:keys ())

(* Repeated runs with distinct workload seeds; returns (mean Mops,
   relative stdev). The paper averages 10 runs and reports 0.03-0.08%
   standard deviation (§6). *)
let run_repeated ?threads ?keys variant mix dist =
  let samples =
    List.init (max 1 opts.repeats) (fun i ->
        let threads = Option.value ~default:opts.threads threads in
        let keys = Option.value ~default:(nkeys ()) keys in
        let cfg = config ~keys ~threads () in
        (note_metrics
           (R.run ~seed:(opts.seed + (1000 * i)) ~threads
              ~ops_per_thread:opts.ops ~chunk:opts.chunk ~config:cfg
              ~trace:(tracing ())
              ~variant ~mix ~dist ~nkeys:keys ()))
          .R.mops_sim)
  in
  let n = float_of_int (List.length samples) in
  let mean = List.fold_left ( +. ) 0.0 samples /. n in
  let var =
    List.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 samples /. n
  in
  (mean, sqrt var /. mean)

let overhead ~base ~sys = (base -. sys) /. base

(* Print a table; when --csv DIR is given also write DIR/<name>.csv, and
   when --json FILE is given remember it for the final report. *)
let emit name t =
  Util.Table.print t;
  if opts.json_file <> None then json_tables := (name, t) :: !json_tables;
  match opts.csv_dir with
  | None -> ()
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let oc = open_out (Filename.concat dir (name ^ ".csv")) in
      output_string oc (Util.Table.to_csv t);
      close_out oc;
      line "    [csv: %s]" (Filename.concat dir (name ^ ".csv"))

(* ---------------------------------------------------------------- fig2 *)

let mix_a = Y.A

let fig2 () =
  line "";
  line "=== Figure 2: throughput of MT, MT+ and INCLL (Mops/s, simulated) ===";
  line "    paper: MT+ 2.4-68.5%% over MT; INCLL 5.9-15.4%% below MT+";
  let t =
    Util.Table.create
      ~columns:
        [ "workload"; "dist"; "MT"; "MT+"; "INCLL"; "MT+ vs MT"; "INCLL vs MT+" ]
  in
  List.iter
    (fun mix ->
      List.iter
        (fun dist ->
          let cell (mean, rsd) =
            if opts.repeats > 1 then
              Printf.sprintf "%.2f±%.2f%%" mean (rsd *. 100.0)
            else Util.Table.cell_float mean
          in
          let mt = run_repeated Sys_.Mt mix dist in
          let mtp = run_repeated Sys_.Mt_plus mix dist in
          let inc = run_repeated Sys_.Incll mix dist in
          Util.Table.add_row t
            [
              Y.mix_name mix;
              Y.dist_name dist;
              cell mt;
              cell mtp;
              cell inc;
              Util.Table.cell_pct ((fst mtp -. fst mt) /. fst mt);
              Util.Table.cell_pct (-.overhead ~base:(fst mtp) ~sys:(fst inc));
            ])
        [ Y.Uniform; Y.Zipfian ])
    [ Y.A; Y.B; Y.C; Y.E ];
  (* The paper's 20M-key runs sit in the large-tree regime of Figure 6's
     parabola; add that regime explicitly for the write-heavy mix. *)
  let keys = nkeys () * 5 in
  List.iter
    (fun dist ->
      let m r = r.R.mops_sim in
      let mt = m (run ~keys Sys_.Mt mix_a dist) in
      let mtp = m (run ~keys Sys_.Mt_plus mix_a dist) in
      let inc = m (run ~keys Sys_.Incll mix_a dist) in
      Util.Table.add_row t
        [
          "YCSB_A (5x keys)";
          Y.dist_name dist;
          Util.Table.cell_float mt;
          Util.Table.cell_float mtp;
          Util.Table.cell_float inc;
          Util.Table.cell_pct ((mtp -. mt) /. mt);
          Util.Table.cell_pct (-.overhead ~base:mtp ~sys:inc);
        ])
    [ Y.Uniform; Y.Zipfian ];
  emit "fig2" t

(* ---------------------------------------------------------------- fig3 *)

let latencies = [ 0.0; 100.0; 250.0; 500.0; 1000.0 ]

let fig3 () =
  line "";
  line "=== Figure 3: INCLL under emulated NVM latency (YCSB_A) ===";
  line "    paper: -4.3%% (uniform) / -6.0%% (zipfian) at 1000 ns";
  let keys = nkeys () * 5 in
  line "    (run at %s keys - the large-tree regime of the paper's 20M)"
    (Util.Table.cell_int keys);
  let t =
    Util.Table.create
      ~columns:
        [ "latency ns"; "uniform Mops"; "uniform rel"; "zipfian Mops"; "zipfian rel" ]
  in
  let sweep dist =
    let pts =
      R.run_latency_sweep ~seed:opts.seed ~threads:opts.threads
        ~ops_per_thread:opts.ops ~chunk:opts.chunk
        ~config:(config ~keys ~threads:opts.threads ())
        ~trace:(tracing ()) ~variant:Sys_.Incll ~mix:Y.A ~dist ~nkeys:keys
        ~latencies ()
    in
    List.iter (fun (_, r) -> maybe_write_trace r) pts;
    pts
  in
  let u = sweep Y.Uniform and z = sweep Y.Zipfian in
  let base l = (snd (List.hd l)).R.mops_sim in
  let bu = base u and bz = base z in
  List.iter2
    (fun (lat, ru) (_, rz) ->
      Util.Table.add_row t
        [
          Util.Table.cell_float ~decimals:0 lat;
          Util.Table.cell_float ru.R.mops_sim;
          Util.Table.cell_pct ((ru.R.mops_sim -. bu) /. bu);
          Util.Table.cell_float rz.R.mops_sim;
          Util.Table.cell_pct ((rz.R.mops_sim -. bz) /. bz);
        ])
    u z;
  emit "fig3" t

(* ---------------------------------------------------------------- fig4 *)

let fig4 () =
  line "";
  line "=== Figure 4: MT+ vs INCLL over thread counts (YCSB_A) ===";
  line "    paper: overhead 14.6-21.3%% (uniform), 3.0-19.3%% (zipfian), all thread counts";
  let t =
    Util.Table.create ~columns:[ "threads"; "dist"; "MT+"; "INCLL"; "overhead" ]
  in
  List.iter
    (fun threads ->
      List.iter
        (fun dist ->
          let mtp = (run ~threads Sys_.Mt_plus Y.A dist).R.mops_sim in
          let inc = (run ~threads Sys_.Incll Y.A dist).R.mops_sim in
          Util.Table.add_row t
            [
              string_of_int threads;
              Y.dist_name dist;
              Util.Table.cell_float mtp;
              Util.Table.cell_float inc;
              Util.Table.cell_pct (overhead ~base:mtp ~sys:inc);
            ])
        [ Y.Uniform; Y.Zipfian ])
    [ 1; 2; 4; 6; 8 ];
  emit "fig4" t

(* ------------------------------------------------------------ fig5 / 6 *)

let size_grid () =
  (* The paper sweeps 10K..100M around a 20M working set; same ratio grid
     around ours. *)
  List.sort_uniq compare
    (List.map
       (fun r -> max 1_000 (int_of_float (float_of_int (nkeys ()) *. r)))
       [ 0.0005; 0.0015; 0.005; 0.015; 0.05; 0.15; 0.5; 1.5; 5.0 ])

let fig5_data = ref []

let fig5 () =
  line "";
  line "=== Figure 5: throughput vs tree size (YCSB_A) ===";
  line "    paper: both systems lose ~69%% (uniform) / ~50%% (zipfian) from 10K to 100M";
  let t =
    Util.Table.create ~columns:[ "keys"; "dist"; "MT+"; "INCLL"; "overhead" ]
  in
  fig5_data := [];
  List.iter
    (fun keys ->
      List.iter
        (fun dist ->
          let mtp = (run ~keys Sys_.Mt_plus Y.A dist).R.mops_sim in
          let inc = (run ~keys Sys_.Incll Y.A dist).R.mops_sim in
          let ov = overhead ~base:mtp ~sys:inc in
          fig5_data := (keys, dist, ov) :: !fig5_data;
          Util.Table.add_row t
            [
              Util.Table.cell_int keys;
              Y.dist_name dist;
              Util.Table.cell_float mtp;
              Util.Table.cell_float inc;
              Util.Table.cell_pct ov;
            ])
        [ Y.Uniform; Y.Zipfian ])
    (size_grid ());
  emit "fig5" t

let fig6 () =
  if !fig5_data = [] then fig5 ();
  line "";
  line "=== Figure 6: INCLL overhead vs tree size (derived from Figure 5) ===";
  line "    paper: a parabola for uniform — low overhead for small and large trees,";
  line "    peaking (<=27%%) in the middle of the size range";
  let t =
    Util.Table.create ~columns:[ "keys"; "uniform overhead"; "zipfian overhead" ]
  in
  List.iter
    (fun keys ->
      let find dist =
        List.find_opt (fun (k, d, _) -> k = keys && d = dist) !fig5_data
      in
      let cell dist =
        match find dist with
        | Some (_, _, ov) -> Util.Table.cell_pct ov
        | None -> "n/a"
      in
      Util.Table.add_row t
        [ Util.Table.cell_int keys; cell Y.Uniform; cell Y.Zipfian ])
    (size_grid ());
  emit "fig6" t

(* ---------------------------------------------------------------- fig7 *)

let fig7 () =
  line "";
  line "=== Figure 7: nodes logged, LOGGING vs INCLL, vs tree size (YCSB_A) ===";
  line "    paper: counts rise to a peak around mid-size trees; with InCLL the";
  line "    uniform curve then declines rapidly, without InCLL it levels off";
  let t =
    Util.Table.create
      ~columns:
        [ "keys"; "dist"; "LOGGING logged"; "INCLL logged"; "INCLL/LOGGING" ]
  in
  List.iter
    (fun keys ->
      List.iter
        (fun dist ->
          let lg = (run ~keys Sys_.Logging Y.A dist).R.nodes_logged in
          let inc = (run ~keys Sys_.Incll Y.A dist).R.nodes_logged in
          Util.Table.add_row t
            [
              Util.Table.cell_int keys;
              Y.dist_name dist;
              Util.Table.cell_int lg;
              Util.Table.cell_int inc;
              (if lg = 0 then "n/a"
               else Printf.sprintf "%.1f%%" (100.0 *. float_of_int inc /. float_of_int lg));
            ])
        [ Y.Uniform; Y.Zipfian ])
    (size_grid ());
  emit "fig7" t

(* ---------------------------------------------------------------- fig8 *)

let fig8 () =
  line "";
  line "=== Figure 8: emulated latency, LOGGING vs INCLL (YCSB_A) ===";
  line "    paper at 1000 ns: INCLL loses 4.1%%/5.7%%; LOGGING loses 42.5%%/28.5%%";
  let keys = nkeys () * 5 in
  line "    (run at %s keys - the large-tree regime of the paper's 20M)"
    (Util.Table.cell_int keys);
  let t =
    Util.Table.create
      ~columns:
        [ "latency ns"; "dist"; "LOGGING Mops"; "LOGGING rel"; "INCLL Mops"; "INCLL rel" ]
  in
  let sweep variant dist =
    let pts =
      R.run_latency_sweep ~seed:opts.seed ~threads:opts.threads
        ~ops_per_thread:opts.ops ~chunk:opts.chunk
        ~config:(config ~keys ~threads:opts.threads ())
        ~trace:(tracing ()) ~variant ~mix:Y.A ~dist ~nkeys:keys ~latencies ()
    in
    List.iter (fun (_, r) -> maybe_write_trace r) pts;
    pts
  in
  List.iter
    (fun dist ->
      let l = sweep Sys_.Logging dist and i = sweep Sys_.Incll dist in
      let bl = (snd (List.hd l)).R.mops_sim in
      let bi = (snd (List.hd i)).R.mops_sim in
      List.iter2
        (fun (lat, rl) (_, ri) ->
          Util.Table.add_row t
            [
              Util.Table.cell_float ~decimals:0 lat;
              Y.dist_name dist;
              Util.Table.cell_float rl.R.mops_sim;
              Util.Table.cell_pct ((rl.R.mops_sim -. bl) /. bl);
              Util.Table.cell_float ri.R.mops_sim;
              Util.Table.cell_pct ((ri.R.mops_sim -. bi) /. bi);
            ])
        l i)
    [ Y.Uniform; Y.Zipfian ];
  emit "fig8" t

(* ------------------------------------------------------------ flushcost *)

let flushcost () =
  line "";
  line "=== §6.2: cost of the per-epoch global cache flush ===";
  line "    paper: 1.38-1.39 ms per flush; 2.2%% of execution at 64 ms epochs";
  let t =
    Util.Table.create
      ~columns:[ "workload"; "flushes"; "mean ms/flush"; "% of sim time" ]
  in
  List.iter
    (fun mix ->
      let r = run Sys_.Incll mix Y.Uniform in
      let cm = Nvm.Config.default_cost_model in
      let flush_ns =
        (float_of_int r.R.wbinvds *. cm.Nvm.Config.wbinvd_base_ns)
        +. (float_of_int r.R.wbinvd_lines *. cm.Nvm.Config.wbinvd_per_line_ns)
      in
      let frac = flush_ns /. (r.R.sim_total_s *. 1e9) in
      Util.Table.add_row t
        [
          Y.mix_name mix;
          Util.Table.cell_int r.R.wbinvds;
          (if r.R.wbinvds = 0 then "n/a"
           else Util.Table.cell_float (flush_ns /. 1e6 /. float_of_int r.R.wbinvds));
          Util.Table.cell_pct frac;
        ])
    [ Y.A; Y.B; Y.C ];
  emit "flushcost" t

(* ------------------------------------------------------------- recovery *)

let recovery () =
  line "";
  line "=== §6.3: recovery time (worst case: crash at the end of an epoch) ===";
  line "    paper: 84K logged nodes in the epoch; ~15 ms to apply the log";
  let keys = max 10_000 (nkeys () / 2) in
  let cfg =
    {
      Sys_.nvm =
        {
          Nvm.Config.default with
          Nvm.Config.size_bytes = (keys * 400) + (48 * 1024 * 1024);
          extlog_bytes = 32 * 1024 * 1024;
          crash_support = Nvm.Config.Precise;
        };
      (* Manual epochs: crash lands just before the checkpoint. *)
      epoch_len_ns = 1.0e15;
      val_incll = true;
    }
  in
  let t =
    Util.Table.create
      ~columns:
        [
          "variant"; "keys"; "ops in epoch"; "nodes logged"; "entries replayed";
          "replay sim ms"; "replay wall ms";
        ]
  in
  List.iter
    (fun variant ->
      let s = Sys_.create ~config:cfg variant in
      let rng = Util.Rng.create ~seed:opts.seed in
      for i = 0 to keys - 1 do
        Sys_.put s ~key:(Y.key_of_rank i) ~value:"12345678"
      done;
      Sys_.advance_epoch s;
      let logged0 = Sys_.nodes_logged s in
      let epoch_ops = keys / 2 in
      for _ = 1 to epoch_ops do
        let k = Y.key_of_rank (Util.Rng.int rng keys) in
        if Util.Rng.bool rng then Sys_.put s ~key:k ~value:"abcdefgh"
        else ignore (Sys_.get s ~key:k)
      done;
      let logged = Sys_.nodes_logged s - logged0 in
      Sys_.crash s rng;
      let s = Sys_.recover s in
      match Sys_.last_recover_stats s with
      | Some st ->
          Util.Table.add_row t
            [
              Sys_.variant_name variant;
              Util.Table.cell_int keys;
              Util.Table.cell_int epoch_ops;
              Util.Table.cell_int logged;
              Util.Table.cell_int st.Sys_.replayed_entries;
              Util.Table.cell_float (st.Sys_.recovery_sim_ns /. 1e6);
              Util.Table.cell_float (st.Sys_.recovery_wall_ns /. 1e6);
            ]
      | None -> ())
    [ Sys_.Incll; Sys_.Logging ];
  emit "recovery" t

(* ------------------------------------------------------------- ablations *)

let ablation_epoch () =
  line "";
  line "=== Ablation: epoch length vs flush overhead and logging (INCLL, YCSB_A) ===";
  line "    §4: shorter epochs cost more flushing but shrink the loss window";
  let t =
    Util.Table.create
      ~columns:[ "epoch ms"; "Mops"; "checkpoints"; "nodes logged"; "wbinvds" ]
  in
  let saved = opts.epoch_ms in
  List.iter
    (fun ms ->
      opts.epoch_ms <- ms;
      let r = run Sys_.Incll Y.A Y.Uniform in
      Util.Table.add_row t
        [
          Util.Table.cell_float ms;
          Util.Table.cell_float r.R.mops_sim;
          Util.Table.cell_int r.R.epochs;
          Util.Table.cell_int r.R.nodes_logged;
          Util.Table.cell_int r.R.wbinvds;
        ])
    [ 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0 ];
  opts.epoch_ms <- saved;
  emit "ablation_epoch" t

let ablation_valincll () =
  line "";
  line "=== Ablation: value InCLLs on/off (YCSB_A) ===";
  line "    §4.1.3: without InCLL1/2, every first value update must be logged";
  let t =
    Util.Table.create
      ~columns:[ "system"; "dist"; "Mops"; "nodes logged"; "sfences" ]
  in
  List.iter
    (fun dist ->
      List.iter
        (fun (name, variant, val_incll) ->
          let r = run ~val_incll variant Y.A dist in
          Util.Table.add_row t
            [
              name;
              Y.dist_name dist;
              Util.Table.cell_float r.R.mops_sim;
              Util.Table.cell_int r.R.nodes_logged;
              Util.Table.cell_int r.R.sfences;
            ])
        [
          ("INCLL", Sys_.Incll, true);
          ("INCLL (InCLLp only)", Sys_.Incll, false);
          ("LOGGING", Sys_.Logging, true);
        ])
    [ Y.Uniform; Y.Zipfian ];
  emit "ablation_valincll" t

let ablation_internal () =
  line "";
  line "=== §6.1: internal-node logging share (why InCLL stays on leaves) ===";
  let r = run Sys_.Incll Y.A Y.Uniform in
  line
    "keys=%s ops=%s: nodes logged=%s | leaf first-touches=%s | value-InCLL uses=%s"
    (Util.Table.cell_int (nkeys ()))
    (Util.Table.cell_int r.R.ops)
    (Util.Table.cell_int r.R.nodes_logged)
    (Util.Table.cell_int r.R.incll_first_touches)
    (Util.Table.cell_int r.R.incll_val_uses);
  line
    "Leaf first-touches dominate by orders of magnitude; widening internal nodes";
  line
    "with InCLL words would shrink fanout for no visible logging win (§6.1)."

(* --------------------------------------------------------------- micro *)

let micro () =
  line "";
  line "=== Microbenchmarks (bechamel, wall clock of substrate primitives) ===";
  let open Bechamel in
  let cfg =
    {
      Nvm.Config.default with
      Nvm.Config.size_bytes = 8 * 1024 * 1024;
      extlog_bytes = 1024 * 1024;
      crash_support = Nvm.Config.Counting;
    }
  in
  let region = Nvm.Region.create cfg in
  let counter = ref 4096 in
  let tests =
    [
      Test.make ~name:"region write_i64"
        (Staged.stage (fun () ->
             counter := if !counter > 7 * 1024 * 1024 then 4096 else !counter + 8;
             Nvm.Region.write_i64 region !counter 42L));
      Test.make ~name:"region read_i64"
        (Staged.stage (fun () ->
             counter := if !counter > 7 * 1024 * 1024 then 4096 else !counter + 8;
             ignore (Nvm.Region.read_i64 region !counter)));
      (let perm = ref Masstree.Permutation.empty in
       Test.make ~name:"permutation insert+remove"
         (Staged.stage (fun () ->
              let p, _ = Masstree.Permutation.insert !perm ~rank:0 in
              let p, _ = Masstree.Permutation.remove p ~rank:0 in
              perm := p)));
      (let sys =
         Sys_.create
           ~config:{ Sys_.nvm = cfg; epoch_len_ns = 1e15; val_incll = true }
           Sys_.Incll
       in
       for i = 0 to 9_999 do
         Sys_.put sys ~key:(Y.key_of_rank i) ~value:"12345678"
       done;
       let i = ref 0 in
       Test.make ~name:"INCLL put (update)"
         (Staged.stage (fun () ->
              i := (!i + 7) mod 10_000;
              Sys_.put sys ~key:(Y.key_of_rank !i) ~value:"abcdefgh")));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      let results =
        Benchmark.all
          (Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ())
          [ instance ] test
      in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          instance results
      in
      Hashtbl.iter
        (fun name o ->
          match Analyze.OLS.estimates o with
          | Some [ est ] -> line "  %-32s %12.1f ns/op" name est
          | _ -> line "  %-32s (no estimate)" name)
        ols)
    tests

(* -------------------------------------------------------------- latency *)

(* Per-mode JSON for the report's top-level "latency" section (schema v3).
   bench_compare gates the simulated-clock percentiles of "merged" and the
   per-cause "stall_totals" — both deterministic given seed and config —
   and ignores the wall histograms, which are host noise. *)
let latency_json : (string * Obs.Json.t) list ref = ref []

let op_name = function '\000' -> "put" | '\001' -> "get" | _ -> "scan"

(* Cross-shard per-cause (count, total stalled ns) from the ledgers. *)
let stall_sums (r : R.result) =
  List.map
    (fun c ->
      let count =
        List.fold_left
          (fun a (_, l) -> a + List.assoc c (Obs.Stall.counts l))
          0 r.R.stalls
      and total =
        List.fold_left
          (fun a (_, l) -> a +. List.assoc c (Obs.Stall.totals_ns l))
          0.0 r.R.stalls
      in
      (c, count, total))
    Obs.Stall.all_causes

(* (over-threshold ops, attributed ops, per-cause attributed counts). *)
let attribution (r : R.result) =
  let over = Obs.Registry.counter_value r.R.metrics "latency.over_threshold" in
  let per_cause =
    List.map
      (fun c ->
        ( c,
          Obs.Registry.counter_value r.R.metrics
            ("latency.attributed." ^ Obs.Stall.cause_name c) ))
      Obs.Stall.all_causes
  in
  let attributed = List.fold_left (fun a (_, n) -> a + n) 0 per_cause in
  (over, attributed, per_cause)

let spike_json (s : R.spike) =
  Obs.Json.Obj
    [
      ("shard", Obs.Json.Int s.R.sp_shard);
      ("index", Obs.Json.Int s.R.sp_index);
      ("op", Obs.Json.String (op_name s.R.sp_tag));
      ("start_ns", Obs.Json.Float s.R.sp_start_ns);
      ("lat_ns", Obs.Json.Float s.R.sp_lat_ns);
      ("wall_ns", Obs.Json.Float s.R.sp_wall_ns);
      ( "stalls",
        Obs.Json.List
          (List.map
             (fun (e : Obs.Stall.entry) ->
               Obs.Json.Obj
                 [
                   ("cause", Obs.Json.String (Obs.Stall.cause_name e.Obs.Stall.cause));
                   ("start_ns", Obs.Json.Float e.Obs.Stall.start_ns);
                   ("dur_ns", Obs.Json.Float e.Obs.Stall.dur_ns);
                   ("epoch", Obs.Json.Int e.Obs.Stall.epoch);
                 ])
             s.R.sp_stalls) );
    ]

let latency_mode_json (r : R.result) =
  let hist name reg =
    match Obs.Registry.find_histogram reg name with
    | Some h -> Obs.Histogram.to_json h
    | None -> Obs.Json.Null
  in
  let over, _, per_cause = attribution r in
  Obs.Json.Obj
    [
      ("open_loop", Obs.Json.Bool r.R.open_loop);
      ( "arrival_rate",
        match r.R.arrival_rate with
        | Some x -> Obs.Json.Float x
        | None -> Obs.Json.Null );
      ("threshold_ns", Obs.Json.Float r.R.latency_threshold_ns);
      ("mops_sim", Obs.Json.Float r.R.mops_sim);
      ("merged", hist "op.latency_ns" r.R.metrics);
      ("wall", hist "op.latency_wall_ns" r.R.metrics);
      ( "shards",
        Obs.Json.List
          (Array.to_list
             (Array.map (hist "op.latency_ns") r.R.shard_metrics)) );
      ("over_threshold", Obs.Json.Int over);
      ( "attributed",
        Obs.Json.Obj
          (List.map
             (fun (c, n) -> (Obs.Stall.cause_name c, Obs.Json.Int n))
             per_cause
          @ [
              ( "none",
                Obs.Json.Int
                  (Obs.Registry.counter_value r.R.metrics
                     "latency.attributed.none") );
            ]) );
      ( "stall_totals",
        Obs.Json.Obj
          (List.map
             (fun (c, count, total) ->
               ( Obs.Stall.cause_name c,
                 Obs.Json.Obj
                   [
                     ("count", Obs.Json.Int count);
                     ("total_ns", Obs.Json.Float total);
                   ] ))
             (stall_sums r)) );
      ("spikes", Obs.Json.List (List.map spike_json r.R.spikes));
    ]

let print_spikes mode (r : R.result) =
  let rec take n = function
    | x :: tl when n > 0 -> x :: take (n - 1) tl
    | _ -> []
  in
  List.iter
    (fun (s : R.spike) ->
      let ev =
        match s.R.sp_stalls with
        | [] -> "no overlapping stall"
        | l ->
            String.concat ", "
              (List.map
                 (fun (e : Obs.Stall.entry) ->
                   Printf.sprintf "%s %.0fus"
                     (Obs.Stall.cause_name e.Obs.Stall.cause)
                     (e.Obs.Stall.dur_ns /. 1e3))
                 (take 3 l))
      in
      line "    [%s] shard%d %s lat=%.0fus  <- %s" mode s.R.sp_shard
        (op_name s.R.sp_tag)
        (s.R.sp_lat_ns /. 1e3)
        ev)
    (take 5 r.R.spikes)

let latency () =
  line "";
  line "=== Tail latency: per-op latency with stall attribution (INCLL, YCSB_A zipfian) ===";
  line "    beyond the paper: closed loop, then open loop with";
  line "    coordinated-omission-corrected latency from intended arrivals";
  let keys = nkeys () in
  let threads = opts.threads in
  let run_mode ?arrival_rate () =
    note_metrics
      (R.run ~seed:opts.seed ~threads ~ops_per_thread:opts.ops
         ~chunk:opts.chunk
         ~config:(config ~keys ~threads ())
         ~trace:(tracing ()) ?arrival_rate
         ~latency_threshold_ns:opts.latency_threshold_ns ~variant:Sys_.Incll
         ~mix:Y.A ~dist:Y.Zipfian ~nkeys:keys ())
  in
  let closed = run_mode () in
  (* Offered open-loop rate: just under the closed-loop capacity, so the
     queue stays stable but every flush builds a backlog whose wait the
     CO correction charges to the delayed ops. Deterministic either way —
     closed-loop capacity is itself a pure function of seed and config. *)
  let rate =
    match opts.arrival_rate with
    | Some r -> r
    | None -> 0.9 *. closed.R.mops_sim *. 1e6
  in
  let open_ = run_mode ~arrival_rate:rate () in
  line "    open-loop offered rate: %.0f ops/s (sim); threshold %.0f us" rate
    (opts.latency_threshold_ns /. 1e3);
  let t =
    Util.Table.create
      ~columns:
        [
          "mode"; "p50 us"; "p99 us"; "p999 us"; "p9999 us"; "max us";
          "over thr"; "attributed";
        ]
  in
  let row mode (r : R.result) =
    let h = Obs.Registry.find_histogram r.R.metrics "op.latency_ns" in
    let p q = match h with
      | Some h -> Obs.Histogram.percentile h q /. 1e3
      | None -> 0.0
    in
    let over, attributed, _ = attribution r in
    Util.Table.add_row t
      [
        mode;
        Util.Table.cell_float (p 0.5);
        Util.Table.cell_float (p 0.99);
        Util.Table.cell_float (p 0.999);
        Util.Table.cell_float (p 0.9999);
        Util.Table.cell_float
          ((match h with Some h -> Obs.Histogram.max_value h | None -> 0.0)
          /. 1e3);
        Util.Table.cell_int over;
        (if over = 0 then "n/a"
         else
           Printf.sprintf "%.1f%%"
             (100.0 *. float_of_int attributed /. float_of_int over));
      ]
  in
  row "closed" closed;
  row "open" open_;
  emit "latency" t;
  let st =
    Util.Table.create
      ~columns:[ "mode"; "cause"; "stalls"; "total ms"; "attributed ops" ]
  in
  let stall_rows mode (r : R.result) =
    let _, _, per_cause = attribution r in
    List.iter
      (fun (c, count, total) ->
        if count > 0 then
          Util.Table.add_row st
            [
              mode;
              Obs.Stall.cause_name c;
              Util.Table.cell_int count;
              Util.Table.cell_float (total /. 1e6);
              Util.Table.cell_int (List.assoc c per_cause);
            ])
      (stall_sums r)
  in
  stall_rows "closed" closed;
  stall_rows "open" open_;
  emit "latency_stalls" st;
  line "    slowest ops and the stalls that overlapped them:";
  print_spikes "closed" closed;
  print_spikes "open" open_;
  latency_json :=
    [ ("open", latency_mode_json open_); ("closed", latency_mode_json closed) ]

(* The recovery-time / throughput / tail-latency tradeoff the adaptive
   scheduler exposes (DESIGN.md §15): one row per policy over the same
   workload. Closed-loop capacity and the open-loop tail come from the
   harness (Counting mode); the recovery window from a Precise-mode
   system crashed mid-epoch and recovered. Every cell is simulated-clock
   and bit-deterministic. *)
let policies () =
  line "";
  line
    "=== beyond the paper: checkpoint policy tradeoff (INCLL, YCSB_A \
     zipfian) ===";
  line "    throughput = fixed-period stop-the-world wbinvd (the paper)";
  line "    latency    = pressure-driven epochs + bounded incremental sweep";
  line "    rto        = short epochs + aggressive pressure triggers";
  let keys = nkeys () in
  let threads = opts.threads in
  let t =
    Util.Table.create
      ~columns:
        [
          "policy"; "Mops (sim)"; "open p999 us"; "epoch_advance ms";
          "clwb_sweep ms"; "epochs"; "replayed"; "recovery sim ms";
        ]
  in
  List.iter
    (fun policy ->
      let run_mode ?arrival_rate () =
        R.run ~seed:opts.seed ~threads ~ops_per_thread:opts.ops
          ~chunk:opts.chunk
          ~config:(config ~policy ~keys ~threads ())
          ?arrival_rate ~latency_threshold_ns:opts.latency_threshold_ns
          ~variant:Sys_.Incll ~mix:Y.A ~dist:Y.Zipfian ~nkeys:keys ()
      in
      let closed = run_mode () in
      let rate =
        match opts.arrival_rate with
        | Some r -> r
        | None -> 0.9 *. closed.R.mops_sim *. 1e6
      in
      let open_ = run_mode ~arrival_rate:rate () in
      let p999 =
        match Obs.Registry.find_histogram open_.R.metrics "op.latency_ns" with
        | Some h -> Obs.Histogram.percentile h 0.999 /. 1e3
        | None -> 0.0
      in
      let stall cause =
        List.fold_left
          (fun a (c, _, total) -> if c = cause then a +. total else a)
          0.0 (stall_sums open_)
        /. 1e6
      in
      (* Recovery window: load, run a mixed tail so the crash lands
         mid-epoch, crash, recover. RTO-style policies checkpoint more
         often, so less work sits in the failed epoch. *)
      let rkeys = max 2_000 (keys / 4) in
      let cfg =
        {
          Sys_.nvm =
            Nvm.Config.with_policy
              {
                Nvm.Config.default with
                Nvm.Config.size_bytes = (rkeys * 400) + (48 * 1024 * 1024);
                extlog_bytes = 8 * 1024 * 1024;
                crash_support = Nvm.Config.Precise;
              }
              policy;
          epoch_len_ns = opts.epoch_ms *. 1e6;
          val_incll = true;
        }
      in
      let s = Sys_.create ~config:cfg Sys_.Incll in
      let rng = Util.Rng.create ~seed:opts.seed in
      for i = 0 to rkeys - 1 do
        Sys_.put s ~key:(Y.key_of_rank i) ~value:"12345678"
      done;
      for _ = 1 to rkeys / 2 do
        let k = Y.key_of_rank (Util.Rng.int rng rkeys) in
        if Util.Rng.bool rng then Sys_.put s ~key:k ~value:"abcdefgh"
        else ignore (Sys_.get s ~key:k : string option)
      done;
      Sys_.crash s rng;
      let s = Sys_.recover s in
      let replayed, rec_ms =
        match Sys_.last_recover_stats s with
        | Some st ->
            (st.Sys_.replayed_entries, st.Sys_.recovery_sim_ns /. 1e6)
        | None -> (0, 0.0)
      in
      Util.Table.add_row t
        [
          Nvm.Config.policy_name policy;
          Util.Table.cell_float closed.R.mops_sim;
          Util.Table.cell_float p999;
          Util.Table.cell_float (stall Obs.Stall.Epoch_advance);
          Util.Table.cell_float (stall Obs.Stall.Clwb_sweep);
          Util.Table.cell_int open_.R.epochs;
          Util.Table.cell_int replayed;
          Util.Table.cell_float rec_ms;
        ])
    [ Nvm.Config.Throughput; Nvm.Config.Latency; Nvm.Config.Rto ];
  emit "policies" t

(* -------------------------------------------------------------- remote *)

(* The serving layer under the same seeded workload, over the wire: an
   open-loop pipelined client against a running bin/incll_server.exe
   (--connect), with wall-clock CO-corrected latency and per-op
   attribution from the evidence the replies carry (shard-queue wait +
   dominant persistence-stall cause). Unlike every other bench here the
   numbers are wall clock — the JSON is gated by diffing a report
   against itself (schema and attribution), not against a committed
   baseline. *)

module RM = Bench_harness.Remote

let remote_spike_json (s : RM.spike) =
  Obs.Json.Obj
    [
      ("index", Obs.Json.Int s.RM.rsp_index);
      ("op", Obs.Json.String (op_name s.RM.rsp_tag));
      ("start_ns", Obs.Json.Float s.RM.rsp_arrival_ns);
      ("lat_ns", Obs.Json.Float s.RM.rsp_lat_ns);
      ("queue_ns", Obs.Json.Float s.RM.rsp_queue_ns);
      ( "cause",
        match s.RM.rsp_cause with
        | Some c -> Obs.Json.String (Obs.Stall.cause_name c)
        | None -> Obs.Json.Null );
    ]

let remote_mode_json (r : RM.result) =
  Obs.Json.Obj
    [
      ("open_loop", Obs.Json.Bool true);
      ("arrival_rate", Obs.Json.Float r.RM.arrival_rate);
      ("threshold_ns", Obs.Json.Float r.RM.latency_threshold_ns);
      ("mops_wall", Obs.Json.Float r.RM.mops_wall);
      ("calibrated_mops", Obs.Json.Float r.RM.calibrated_mops);
      ("busy", Obs.Json.Int r.RM.busy);
      (* "merged" is what bench_compare's percentile gates read; for the
         remote mode it is the same wall-clock histogram as "wall". *)
      ("merged", Obs.Histogram.to_json r.RM.latency);
      ("wall", Obs.Histogram.to_json r.RM.latency);
      ("shards", Obs.Json.List []);
      ("over_threshold", Obs.Json.Int r.RM.over_threshold);
      ( "attributed",
        Obs.Json.Obj
          (List.map (fun (n, c) -> (n, Obs.Json.Int c)) r.RM.attributed) );
      ( "stall_totals",
        Obs.Json.Obj
          (List.map
             (fun (n, (count, total)) ->
               ( n,
                 Obs.Json.Obj
                   [
                     ("count", Obs.Json.Int count);
                     ("total_ns", Obs.Json.Float total);
                   ] ))
             r.RM.stall_totals) );
      ("spikes", Obs.Json.List (List.map remote_spike_json r.RM.spikes));
      ( "oracle",
        match r.RM.oracle_ok with
        | None -> Obs.Json.Null
        | Some b -> Obs.Json.Bool b );
      (* Fault-tolerance telemetry from the robustness probe; gated by
         bench_compare (retries/backoff/reconnects are higher-is-worse). *)
      ( "robust",
        Obs.Json.Obj
          [
            ("ops", Obs.Json.Int r.RM.robust.RM.rb_ops);
            ("retries", Obs.Json.Int r.RM.robust.RM.rb_retries);
            ("reconnects", Obs.Json.Int r.RM.robust.RM.rb_reconnects);
            ("backoff_ns", Obs.Json.Float r.RM.robust.RM.rb_backoff_ns);
            ("dedup_hits", Obs.Json.Int r.RM.robust.RM.rb_dedup_hits);
          ] );
    ]

let remote () =
  match opts.connect with
  | None ->
      if List.mem "remote" (List.map canonical_name opts.only) then begin
        prerr_endline "the remote bench requires --connect ADDR";
        exit 2
      end
      (* Part of an unfiltered run: nothing to connect to, skip silently. *)
  | Some addr_s ->
      let addr = Wire.Client.addr_of_string addr_s in
      let keys = nkeys () in
      let n = opts.threads * opts.ops in
      line "";
      line "=== beyond the paper: remote serving bench over %s ===" addr_s;
      line
        "    one pipelined connection, open loop at the offered rate, \
         wall-clock";
      line
        "    latency from intended arrivals (coordinated-omission \
         corrected)";
      let oracle =
        if opts.oracle then
          Some (config ~keys ~threads:opts.threads (), opts.threads)
        else None
      in
      let r =
        RM.run ~addr ~seed:opts.seed ~n ~mix:Y.A ~dist:Y.Zipfian ~nkeys:keys
          ?arrival_rate:opts.arrival_rate
          ~latency_threshold_ns:opts.latency_threshold_ns ?oracle ()
      in
      let attributed_n =
        List.fold_left
          (fun a (name, c) -> if name = "none" then a else a + c)
          0 r.RM.attributed
      in
      let t =
        Util.Table.create
          ~columns:
            [
              "offered Kops/s"; "achieved Kops/s"; "p50 us"; "p99 us";
              "p999 us"; "over thr"; "attributed"; "busy";
            ]
      in
      Util.Table.add_row t
        [
          Util.Table.cell_float (r.RM.arrival_rate /. 1e3);
          Util.Table.cell_float (r.RM.mops_wall *. 1e3);
          Util.Table.cell_float (Obs.Histogram.percentile r.RM.latency 0.5 /. 1e3);
          Util.Table.cell_float (Obs.Histogram.percentile r.RM.latency 0.99 /. 1e3);
          Util.Table.cell_float
            (Obs.Histogram.percentile r.RM.latency 0.999 /. 1e3);
          Util.Table.cell_int r.RM.over_threshold;
          (if r.RM.over_threshold = 0 then "n/a"
           else
             Printf.sprintf "%.1f%%"
               (100.0 *. float_of_int attributed_n
               /. float_of_int r.RM.over_threshold));
          Util.Table.cell_int r.RM.busy;
        ];
      emit "remote" t;
      let st =
        Util.Table.create
          ~columns:[ "cause"; "stalls"; "total ms"; "attributed ops" ]
      in
      List.iter
        (fun (name, (count, total)) ->
          if count > 0 then
            Util.Table.add_row st
              [
                name;
                Util.Table.cell_int count;
                Util.Table.cell_float (total /. 1e6);
                Util.Table.cell_int
                  (try List.assoc name r.RM.attributed with Not_found -> 0);
              ])
        r.RM.stall_totals;
      emit "remote_stalls" st;
      line "    slowest ops and the evidence their replies carried:";
      List.iteri
        (fun i (s : RM.spike) ->
          if i < 5 then
            line "    [remote] %s lat=%.0fus queue=%.0fus  <- %s"
              (op_name s.RM.rsp_tag)
              (s.RM.rsp_lat_ns /. 1e3)
              (s.RM.rsp_queue_ns /. 1e3)
              (match s.RM.rsp_cause with
              | Some c -> Obs.Stall.cause_name c
              | None -> "net_queue/none"))
        r.RM.spikes;
      if opts.oracle then
        line "    oracle: server state == in-process replay";
      latency_json := ("remote", remote_mode_json r) :: !latency_json;
      (* Gate mode (--oracle): the serving layer's whole observability
         claim is that tail excursions are attributable — enforce it,
         along with lossless admission, right here where the evidence
         is. *)
      if opts.oracle then begin
        if r.RM.busy > 0 then begin
          Printf.eprintf
            "remote gate: %d ops bounced BUSY (raise --queue-capacity on \
             the server)\n"
            r.RM.busy;
          exit 1
        end;
        if
          r.RM.over_threshold > 0
          && float_of_int attributed_n
             < 0.99 *. float_of_int r.RM.over_threshold
        then begin
          Printf.eprintf
            "remote gate: only %d/%d over-threshold ops attributed (< 99%%)\n"
            attributed_n r.RM.over_threshold;
          exit 1
        end
      end

(* ----------------------------------------------------------------- main *)

let all_benches =
  [
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("flushcost", flushcost);
    ("recovery", recovery);
    ("ablation_epoch", ablation_epoch);
    ("ablation_valincll", ablation_valincll);
    ("ablation_internal", ablation_internal);
    ("latency", latency);
    ("policies", policies);
    ("micro", micro);
    (* must run after [latency], which overwrites [latency_json];
       [remote] appends its mode to whatever is there *)
    ("remote", remote);
  ]

let usage () =
  print_endline
    "Usage: bench/main.exe [options]\n\
     \  --only NAMES   comma-separated subset (fig2..fig8, flushcost, recovery,\n\
     \                 ablation_epoch, ablation_valincll, ablation_internal,\n\
     \                 latency, policies, micro, remote)\n\
     \  --latency      shorthand for --only latency: closed- and open-loop\n\
     \                 per-op latency percentiles with stall attribution\n\
     \  --arrival-rate R  open-loop offered load for the latency bench, in ops\n\
     \                 per simulated second (default: 90% of the measured\n\
     \                 closed-loop throughput)\n\
     \  --latency-threshold-us F  attribution threshold: ops slower than this\n\
     \                 (simulated) are matched against the stall ledger\n\
     \                 (default 50)\n\
     \  --connect ADDR run the remote serving bench against a running\n\
     \                 bin/incll_server.exe at unix:/path or tcp:host:port;\n\
     \                 open-loop over the wire, wall-clock CO-corrected\n\
     \                 latency, per-op attribution incl. net_queue\n\
     \  --oracle       after the remote bench, replay the same seeded streams\n\
     \                 through an in-process store and require the server's\n\
     \                 complete key/value state to match; also enforces the\n\
     \                 serve-gate floors (no BUSY, >=99% attribution)\n\
     \  --policy P     checkpoint-scheduling policy: throughput (fixed-period\n\
     \                 stop-the-world wbinvd, the paper's scheduler; default),\n\
     \                 latency (pressure-driven epochs + bounded incremental\n\
     \                 clwb sweep) or rto (short epochs, aggressive pressure\n\
     \                 triggers; bounds the recovery window)\n\
     \  --scale F      fraction of the paper's 20M keys (default 0.01)\n\
     \  --threads N    worker domains / shards (default 8)\n\
     \  --ops N        operations per thread (default 50000)\n\
     \  --chunk N      ops per measured batch; each finished chunk samples the\n\
     \                 shard's bench.chunk_wall_mops series (default 4096)\n\
     \  --epoch-ms F   simulated epoch length (default 8.0; paper: 64)\n\
     \  --seed N       workload seed\n\
     \  --repeats N    Figure-2 runs per cell, reported as mean±stdev (default 1)\n\
     \  --csv DIR      also write each table as DIR/<name>.csv\n\
     \  --json FILE    write a machine-readable report: run metadata (schema,\n\
     \                 seed, scale, ...), every table, and the merged metric\n\
     \                 registry (throughput, sfence/wbinvd latency percentiles,\n\
     \                 incll_hit vs incll_fallback counters, ...). Compare two\n\
     \                 reports with bin/bench_compare.exe.\n\
     \  --trace FILE   write a Chrome trace_event timeline (open in Perfetto or\n\
     \                 chrome://tracing) of the last measured run: span slices,\n\
     \                 sfence/wbinvd durations, epoch intervals, counter tracks\n\
     \  --date STR     date string recorded in the --json metadata (defaults to\n\
     \                 today; pass explicitly for reproducible reports)";
  exit 0

let parse_args () =
  let rec go = function
    | [] -> ()
    | "--only" :: v :: rest ->
        opts.only <- String.split_on_char ',' v;
        go rest
    | "--scale" :: v :: rest ->
        opts.scale <- float_of_string v;
        go rest
    | "--threads" :: v :: rest ->
        opts.threads <- int_of_string v;
        go rest
    | "--chunk" :: v :: rest ->
        opts.chunk <- int_of_string v;
        go rest
    | "--ops" :: v :: rest ->
        opts.ops <- int_of_string v;
        go rest
    | "--epoch-ms" :: v :: rest ->
        opts.epoch_ms <- float_of_string v;
        go rest
    | "--seed" :: v :: rest ->
        opts.seed <- int_of_string v;
        go rest
    | "--repeats" :: v :: rest ->
        opts.repeats <- int_of_string v;
        go rest
    | "--csv" :: v :: rest ->
        opts.csv_dir <- Some v;
        go rest
    | "--json" :: v :: rest ->
        opts.json_file <- Some v;
        go rest
    | "--trace" :: v :: rest ->
        opts.trace_file <- Some v;
        go rest
    | "--date" :: v :: rest ->
        opts.date <- Some v;
        go rest
    | "--latency" :: rest ->
        opts.only <- "latency" :: opts.only;
        go rest
    | "--arrival-rate" :: v :: rest ->
        let r = float_of_string v in
        if r <= 0.0 then begin
          prerr_endline "--arrival-rate must be positive";
          exit 2
        end;
        opts.arrival_rate <- Some r;
        go rest
    | "--latency-threshold-us" :: v :: rest ->
        opts.latency_threshold_ns <- float_of_string v *. 1e3;
        go rest
    | "--connect" :: v :: rest ->
        opts.connect <- Some v;
        go rest
    | "--oracle" :: rest ->
        opts.oracle <- true;
        go rest
    | "--policy" :: v :: rest ->
        (match Nvm.Config.policy_of_string v with
        | p -> opts.policy <- p
        | exception Invalid_argument _ ->
            prerr_endline "--policy must be throughput, latency or rto";
            exit 2);
        go rest
    | ("--help" | "-h") :: _ -> usage ()
    | x :: _ ->
        prerr_endline ("unknown argument: " ^ x);
        exit 2
  in
  go (List.tl (Array.to_list Sys.argv))

let table_json t =
  Obs.Json.Obj
    [
      ("columns", Obs.Json.List (List.map (fun c -> Obs.Json.String c) (Util.Table.columns t)));
      ( "rows",
        Obs.Json.List
          (List.map
             (fun row -> Obs.Json.List (List.map (fun c -> Obs.Json.String c) row))
             (Util.Table.rows t)) );
    ]

(* Bumped whenever the report layout changes incompatibly;
   bench_compare refuses to diff reports with different versions.
   v3 added the top-level "latency" section and its meta fields. *)
let json_schema_version = 3

let date_string () =
  match opts.date with
  | Some d -> d
  | None ->
      let tm = Unix.localtime (Unix.time ()) in
      Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
        (tm.Unix.tm_mon + 1) tm.Unix.tm_mday

let write_json_report path =
  let meta_json =
    Obs.Json.Obj
      [
        ("schema_version", Obs.Json.Int json_schema_version);
        ("date", Obs.Json.String (date_string ()));
        ("scale", Obs.Json.Float opts.scale);
        ("keys", Obs.Json.Int (nkeys ()));
        ("threads", Obs.Json.Int opts.threads);
        ("ops_per_thread", Obs.Json.Int opts.ops);
        ("chunk", Obs.Json.Int opts.chunk);
        ("epoch_ms", Obs.Json.Float opts.epoch_ms);
        ("seed", Obs.Json.Int opts.seed);
        ("repeats", Obs.Json.Int opts.repeats);
        ( "arrival_rate",
          match opts.arrival_rate with
          | Some r -> Obs.Json.Float r
          | None -> Obs.Json.Null );
        ("latency_threshold_ns", Obs.Json.Float opts.latency_threshold_ns);
        ("policy", Obs.Json.String (Nvm.Config.policy_name opts.policy));
        ( "variants",
          Obs.Json.List
            (List.map
               (fun v -> Obs.Json.String (Sys_.variant_name v))
               [ Sys_.Mt; Sys_.Mt_plus; Sys_.Logging; Sys_.Incll ]) );
      ]
  in
  let report =
    Obs.Json.Obj
      ([
         ("meta", meta_json);
         ( "tables",
           Obs.Json.Obj
             (List.rev_map (fun (name, t) -> (name, table_json t)) !json_tables)
         );
         ("metrics", Obs.Registry.to_json global_metrics);
       ]
      @
      match !latency_json with
      | [] -> []
      | modes -> [ ("latency", Obs.Json.Obj (List.rev modes)) ])
  in
  match open_out path with
  | oc ->
      output_string oc (Obs.Json.to_string_pretty report);
      output_char oc '\n';
      close_out oc;
      line "    [json: %s]" path
  | exception Sys_error msg ->
      (* Don't lose the whole run to a bad path: the tables were already
         printed; report and fail the exit code only. *)
      Printf.eprintf "cannot write --json report: %s\n" msg;
      exit 1

let () =
  parse_args ();
  line "InCLL reproduction benchmarks";
  line "scale=%.4f (keys=%s) threads=%d ops/thread=%s epoch=%.1fms seed=%d"
    opts.scale
    (Util.Table.cell_int (nkeys ()))
    opts.threads
    (Util.Table.cell_int opts.ops)
    opts.epoch_ms opts.seed;
  List.iter (fun (name, f) -> if selected name then f ()) all_benches;
  match opts.json_file with None -> () | Some path -> write_json_report path
