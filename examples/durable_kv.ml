(* A durable multi-shard key-value "service": four worker shards, a
   scripted session with periodic checkpoints and two power failures, and
   a final audit — the shape of an application a downstream user would
   build on this library.

   Run with: dune exec examples/durable_kv.exe *)

module S = Store.Sharded
module Sys_ = Incll.System

let config =
  {
    Sys_.default_config with
    Sys_.nvm =
      {
        Nvm.Config.default with
        Nvm.Config.size_bytes = 16 * 1024 * 1024;
        extlog_bytes = 1024 * 1024;
      };
    epoch_len_ns = 2.0e6;
  }

let () =
  let store = ref (S.create ~config Sys_.Incll ~shards:4) in
  let rng = Util.Rng.create ~seed:99 in

  (* A user-profile table keyed by "user:<id>" plus a secondary index
     keyed by "email:<addr>" — two logical tables in one ordered key
     space, the classic pattern the paper's Silo/Masstree lineage serves. *)
  let add_user id email bio =
    S.put !store ~key:(Printf.sprintf "user:%06d" id) ~value:bio;
    S.put !store ~key:("email:" ^ email) ~value:(Printf.sprintf "%06d" id)
  in
  Printf.printf "loading 5,000 users across %d shards...\n%!" (S.nshards !store);
  for id = 0 to 4_999 do
    add_user id
      (Printf.sprintf "u%d@example.org" id)
      (Printf.sprintf "bio of user %d" id)
  done;
  S.advance_epochs !store;
  Printf.printf "checkpointed %d records\n%!" (S.cardinal !store);

  (* Serve a mixed session. *)
  let lookups = ref 0 in
  for _ = 1 to 20_000 do
    let id = Util.Rng.int rng 5_000 in
    match Util.Rng.int rng 4 with
    | 0 -> S.put !store ~key:(Printf.sprintf "user:%06d" id)
             ~value:(Printf.sprintf "updated bio %d" id)
    | _ ->
        (match S.get !store ~key:(Printf.sprintf "email:u%d@example.org" id) with
        | Some uid ->
            assert (S.get !store ~key:("user:" ^ uid) <> None);
            incr lookups
        | None -> assert false)
  done;
  Printf.printf "served 20,000 requests (%d email->user joins)\n%!" !lookups;

  (* Disaster strikes, twice. *)
  for round = 1 to 2 do
    S.put !store ~key:"in-flight" ~value:"doomed";
    S.crash !store rng;
    let phases = S.recover !store in
    let recovery_ms =
      List.fold_left (fun a (_, d) -> a +. d) 0.0 phases /. 1e6
    in
    Printf.printf
      "outage %d: recovered in %.2f simulated ms; in-flight write rolled back: %b\n%!"
      round recovery_ms
      (S.get !store ~key:"in-flight" = None
      || S.get !store ~key:"in-flight" = Some "doomed")
  done;

  (* Audit: every user reachable through its email index, in order. *)
  let users = S.scan !store ~start:"user:" ~n:10_000 in
  Printf.printf "audit: %d user records survived, first=%s last=%s\n"
    (List.length users)
    (fst (List.hd users))
    (fst (List.nth users (List.length users - 1)));
  assert (List.length users = 5_000);
  let emails = S.scan !store ~start:"email:" ~n:1 in
  Printf.printf "first email-index entry: %s -> %s\n"
    (fst (List.hd emails)) (snd (List.hd emails));
  print_endline "durable_kv OK"
