(* The paper's §5.2 correctness methodology, as a runnable demo:

   "We tested the modified system by intentionally crashing it at random
   points, launching a new process, and checking that system's state
   matched the state at the beginning of the failed epoch."

   The actual harness lives in [Chaos_runner.Torture] (shared with
   [bin/chaos.exe] and the CI chaos job); this executable is the
   human-friendly front door.

   Run with: dune exec examples/crash_torture.exe -- [rounds] [seed]
   or:       dune exec examples/crash_torture.exe -- --seeds 1,4,6,7 \
               --ops 30000 --json out.json *)

module Torture = Chaos_runner.Torture
module J = Obs.Json

let usage () =
  prerr_endline
    "usage: crash_torture [rounds] [seed]\n\
    \       crash_torture [--ops N] [--seeds S1,S2,...] [--json FILE]";
  exit 2

let () =
  let ops = ref Torture.default.Torture.ops in
  let seeds = ref [ Torture.default.Torture.seed ] in
  let json = ref None in
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--ops" :: n :: rest ->
        ops := int_of_string n;
        parse rest
    | "--seeds" :: s :: rest ->
        seeds := List.map int_of_string (String.split_on_char ',' s);
        parse rest
    | "--json" :: f :: rest ->
        json := Some f;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | a :: _ when String.length a > 0 && a.[0] = '-' ->
        Printf.eprintf "unknown option %s\n" a;
        usage ()
    | a :: rest ->
        positional := a :: !positional;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match List.rev !positional with
  | [] -> ()
  | [ r ] -> ops := int_of_string r
  | [ r; s ] ->
      ops := int_of_string r;
      seeds := [ int_of_string s ]
  | _ -> usage ());
  let results =
    List.map
      (fun seed ->
        let cfg = { Torture.default with Torture.ops = !ops; seed } in
        Printf.printf "torturing INCLL with %d ops over %d keys (seed %d)...\n%!"
          cfg.Torture.ops cfg.Torture.nkeys seed;
        let out = Torture.run cfg in
        (match out.Torture.failure with
        | Some f -> Printf.printf "MISMATCH: %s\n%!" (Torture.failure_to_string f)
        | None ->
            Printf.printf
              "OK: %d crashes, %d post-crash key verifications, all states \
               matched the\n\
               beginning of the failed epoch (paper §5.2)\n%!"
              out.Torture.crashes out.Torture.verified);
        if out.Torture.quarantined > 0 then
          Printf.printf "WARNING: %d allocator chain(s) quarantined\n%!"
            out.Torture.quarantined;
        (seed, out))
      !seeds
  in
  (match !json with
  | None -> ()
  | Some path ->
      let doc =
        J.Obj
          [
            ("ok", J.Bool (List.for_all (fun (_, o) -> o.Torture.ok) results));
            ( "runs",
              J.List
                (List.map
                   (fun (seed, o) ->
                     J.Obj
                       [
                         ("seed", J.Int seed);
                         ("ops", J.Int o.Torture.ops_run);
                         ("ok", J.Bool o.Torture.ok);
                         ("crashes", J.Int o.Torture.crashes);
                         ("recoveries", J.Int o.Torture.recoveries);
                         ("verified", J.Int o.Torture.verified);
                         ("quarantined", J.Int o.Torture.quarantined);
                         ( "failure",
                           match o.Torture.failure with
                           | None -> J.Null
                           | Some f -> J.String (Torture.failure_to_string f) );
                       ])
                   results) );
          ]
      in
      let oc = open_out path in
      output_string oc (J.to_string doc);
      output_char oc '\n';
      close_out oc);
  if List.for_all (fun (_, o) -> o.Torture.ok) results then exit 0 else exit 1
