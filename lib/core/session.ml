(* Session dedup record codec (exactly-once serving, DESIGN.md §17).

   The serving layer records one [Extlog.Log.kind_session] record per
   applied mutation, fenced durable *before* the reply is sent: the
   header's addr field carries the session id, the payload the seqno the
   client stamped on the request, the status it was answered with, and
   the op itself. Recovery replays the crashed epoch's undo images first
   (the op's effect vanishes with everything else), then redoes the op
   from this record — so an acked mutation survives the crash — and
   rebuilds the per-session seqno table, so a client retry of the same
   (session, seqno) after reconnect is answered from the record instead
   of re-applied.

   Same defensive little-endian word codec as [Txn]: records are
   checksummed, so a malformed payload indicates a writer bug, and
   decoders return [None] rather than raise. *)

type op =
  | Put of { key : string; value : string }
  | Remove of { key : string }
  | Commit of { txn_id : int }
      (** Commit marker for a connection-scoped transaction: the write
          set lives in the txn PREPARE record, which recovery redoes on
          its own, so this op carries only the txn id and is never
          re-applied — it exists to rebuild the dedup table. *)

let tag_of_op = function Put _ -> 0 | Remove _ -> 1 | Commit _ -> 2

let add_word buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Buffer.add_bytes buf b

let encode ~seq ~status op =
  let buf = Buffer.create 48 in
  add_word buf seq;
  add_word buf status;
  add_word buf (tag_of_op op);
  (match op with
  | Put { key; value } ->
      add_word buf (String.length key);
      Buffer.add_string buf key;
      add_word buf (String.length value);
      Buffer.add_string buf value
  | Remove { key } ->
      add_word buf (String.length key);
      Buffer.add_string buf key
  | Commit { txn_id } -> add_word buf txn_id);
  Buffer.contents buf

let word s pos =
  if pos + 8 > String.length s then None
  else Some (Int64.to_int (String.get_int64_le s pos))

let take s pos len =
  if len < 0 || pos + len > String.length s then None
  else Some (String.sub s pos len)

let decode payload =
  let ( let* ) = Option.bind in
  let* seq = word payload 0 in
  let* status = word payload 8 in
  let* tag = word payload 16 in
  match tag with
  | 0 ->
      let* klen = word payload 24 in
      let* key = take payload 32 klen in
      let* vlen = word payload (32 + klen) in
      let* value = take payload (40 + klen) vlen in
      Some (seq, status, Put { key; value })
  | 1 ->
      let* klen = word payload 24 in
      let* key = take payload 32 klen in
      Some (seq, status, Remove { key })
  | 2 ->
      let* txn_id = word payload 24 in
      Some (seq, status, Commit { txn_id })
  | _ -> None

let record_bytes ~seq ~status op =
  Extlog.Log.record_bytes
    ~payload_bytes:(String.length (encode ~seq ~status op))
