type variant = Mt | Mt_plus | Logging | Incll

let variant_name = function
  | Mt -> "MT"
  | Mt_plus -> "MT+"
  | Logging -> "LOGGING"
  | Incll -> "INCLL"

let variant_of_string s =
  match String.uppercase_ascii s with
  | "MT" -> Mt
  | "MT+" | "MTPLUS" | "MT_PLUS" -> Mt_plus
  | "LOGGING" | "LOG" -> Logging
  | "INCLL" -> Incll
  | _ -> invalid_arg ("System.variant_of_string: " ^ s)

type config = {
  nvm : Nvm.Config.t;
  epoch_len_ns : float;
  val_incll : bool;
}

let default_config =
  { nvm = Nvm.Config.default; epoch_len_ns = 64.0e6; val_incll = true }

type recover_stats = {
  replayed_entries : int;
  recovery_sim_ns : float;
  recovery_wall_ns : float;
  quarantined_chains : int;
      (* allocator chains found corrupt and unlinked during this recovery *)
  txns_redone : int;  (* committed transactions redone from PREPARE records *)
  txns_aborted : int;  (* in-doubt transactions rolled back *)
  sessions_recovered : int;  (* distinct sessions rebuilt from dedup records *)
  phases : (string * float) list;
      (* ordered (phase, sim ns) breakdown; sums to recovery_sim_ns *)
}

(* A transaction buffers its writes until commit (last-write-wins), so
   abort never touches the tree. *)
type txn_state = { id : int; mutable writes : (string * string option) list }

type t = {
  variant : variant;
  config : config;
  region : Nvm.Region.t;
  em : Epoch.Manager.t option;
  ctx : Ctx.t option;
  dalloc : Alloc.Durable.t option;
  tree : Masstree.Tree.t;
  last_recover_stats : recover_stats option;
  mutable active_txn : txn_state option;
  mutable next_txn_id : int;
  (* (sid, last_seq, status of that seq) per session found in the crashed
     epoch's dedup records; the serving layer reseeds its table from it. *)
  recovered_sessions : (int * int * int) list;
}

let variant t = t.variant
let region t = t.region
let metrics t = Nvm.Region.metrics t.region
let tree t = t.tree
let epoch_manager t = t.em
let ctx t = t.ctx
let durable_alloc t = t.dalloc
let last_recover_stats t = t.last_recover_stats

let nodes_logged t =
  match t.ctx with Some c -> Extlog.Log.nodes_logged c.Ctx.log | None -> 0

let hooks_for variant config ctx =
  match variant with
  | Mt | Mt_plus -> Masstree.Hooks.transient
  | Logging -> Logging_hooks.make ctx
  | Incll -> Incll_hooks.make ~val_incll:config.val_incll ctx

(* The external log is discarded at every checkpoint (§3). *)
let subscribe_log_truncation em log =
  Epoch.Manager.subscribe_post_advance em (fun () ->
      Extlog.Log.truncate log ~epoch:(Epoch.Manager.current em))

(* Feed the adaptive scheduler's log-pressure trigger (DESIGN.md §15):
   checkpointing early when the log nears capacity converts synchronous
   log-wrap advances on the op path into scheduled ones. *)
let subscribe_log_pressure em log =
  Epoch.Manager.set_log_pressure em (fun () ->
      float_of_int (Extlog.Log.used log)
      /. float_of_int (max 1 (Extlog.Log.capacity log)))

let create ?(config = default_config) variant =
  let region = Nvm.Region.create config.nvm in
  Nvm.Superblock.format region;
  match variant with
  | Mt | Mt_plus ->
      let em =
        match variant with
        | Mt_plus ->
            Some (Epoch.Manager.create ~epoch_len_ns:config.epoch_len_ns region)
        | _ -> None
      in
      let kind =
        match variant with
        | Mt -> Alloc.Transient.General
        | _ -> Alloc.Transient.Pool
      in
      let talloc = Alloc.Transient.create kind region in
      let current_epoch =
        match em with
        | Some em -> fun () -> Epoch.Manager.current em
        | None -> fun () -> 2
      in
      let tree =
        Masstree.Tree.create region
          (Alloc.Api.of_transient talloc)
          Masstree.Hooks.transient ~current_epoch
      in
      {
        variant;
        config;
        region;
        em;
        ctx = None;
        dalloc = None;
        tree;
        last_recover_stats = None;
        active_txn = None;
        next_txn_id = 1;
        recovered_sessions = [];
      }
  | Logging | Incll ->
      let em = Epoch.Manager.create ~epoch_len_ns:config.epoch_len_ns region in
      let dalloc = Alloc.Durable.create em in
      let log = Extlog.Log.attach region in
      Extlog.Log.truncate log ~epoch:(Epoch.Manager.current em);
      subscribe_log_truncation em log;
      subscribe_log_pressure em log;
      let ctx = Ctx.make em log in
      let tree =
        Masstree.Tree.create region
          (Alloc.Api.of_durable dalloc)
          (hooks_for variant config ctx)
          ~current_epoch:(fun () -> Epoch.Manager.current em)
      in
      (* Initialisation must itself be a completed checkpoint: a crash in
         the first working epoch then rolls back to the freshly formatted
         (empty) store instead of to an allocator state that predates the
         root leaf. *)
      Epoch.Manager.advance em;
      {
        variant;
        config;
        region;
        em = Some em;
        ctx = Some ctx;
        dalloc = Some dalloc;
        tree;
        last_recover_stats = None;
        active_txn = None;
        next_txn_id = 1;
        recovered_sessions = [];
      }

let after_op t =
  match t.em with
  | Some em -> ignore (Epoch.Manager.maybe_advance em)
  | None -> ()

let put t ~key ~value =
  Nvm.Region.charge_op t.region;
  Masstree.Tree.put t.tree ~key ~value;
  after_op t

let get t ~key =
  Nvm.Region.charge_op t.region;
  let r = Masstree.Tree.get t.tree ~key in
  after_op t;
  r

let mem t ~key = Option.is_some (get t ~key)

let remove t ~key =
  Nvm.Region.charge_op t.region;
  let r = Masstree.Tree.remove t.tree ~key in
  after_op t;
  r

let scan t ~start ~n =
  Nvm.Region.charge_op t.region;
  let r = Masstree.Tree.scan t.tree ~start ~n in
  after_op t;
  r

let scan_rev t ?bound ~n () =
  Nvm.Region.charge_op t.region;
  let r = Masstree.Tree.scan_rev t.tree ?bound ~n () in
  after_op t;
  r

(* How much uncommitted work is currently at risk: the simulated time
   since the last completed checkpoint (bounded by the epoch length). *)
let durability_lag_ns t =
  match t.em with
  | None -> infinity
  | Some em ->
      Nvm.Stats.sim_ns (Nvm.Region.stats t.region)
      -. Epoch.Manager.epoch_start_ns em

let advance_epoch t =
  match t.em with
  | Some em -> Epoch.Manager.advance em
  | None -> ()

let require_recoverable t what =
  match t.variant with
  | Logging | Incll -> ()
  | Mt | Mt_plus ->
      failwith (what ^ ": the " ^ variant_name t.variant
                ^ " variant is not recoverable")

let crash t rng =
  require_recoverable t "System.crash";
  Nvm.Region.crash t.region rng

let crash_with t ~choose =
  require_recoverable t "System.crash_with";
  Nvm.Region.crash_with t.region ~choose

(* {1 Transactions}

   Multi-key atomic updates over the [Txn] protocol. The system is
   sequential, so the commit window (reserve .. apply) runs without an
   intervening epoch advance: [reserve] takes any needed checkpoint
   before the first PREPARE, and the writes are applied through the tree
   directly (no [after_op]) so the records and the applied writes always
   share one epoch. *)

let txn_active t = Option.is_some t.active_txn

let require_txn_capable t what =
  require_recoverable t what;
  if t.ctx = None then failwith (what ^ ": no logging context")

let txn_begin t =
  require_txn_capable t "System.txn_begin";
  if txn_active t then failwith "System.txn_begin: transaction already active";
  let id = t.next_txn_id in
  t.next_txn_id <- id + 1;
  t.active_txn <- Some { id; writes = [] }

let active_exn t what =
  match t.active_txn with
  | Some txn -> txn
  | None -> failwith (what ^ ": no active transaction")

let txn_put t ~key ~value =
  let txn = active_exn t "System.txn_put" in
  txn.writes <- (key, Some value) :: txn.writes

let txn_remove t ~key =
  let txn = active_exn t "System.txn_remove" in
  txn.writes <- (key, None) :: txn.writes

(* Read-your-writes: the buffer (newest first) shadows the tree. *)
let txn_get t ~key =
  let txn = active_exn t "System.txn_get" in
  match List.assoc_opt key txn.writes with
  | Some v -> v
  | None -> get t ~key

let txn_abort t =
  ignore (active_exn t "System.txn_abort" : txn_state);
  t.active_txn <- None

(* Last-write-wins flattening, preserving first-write order. *)
let flatten_writes writes =
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc (key, value) ->
      if Hashtbl.mem seen key then acc
      else begin
        Hashtbl.add seen key ();
        { Txn.key; value } :: acc
      end)
    [] writes

let txn_commit t =
  let txn = active_exn t "System.txn_commit" in
  let ctx = Option.get t.ctx in
  t.active_txn <- None;
  let writes = flatten_writes txn.writes in
  if writes <> [] then begin
    Nvm.Region.charge_op t.region;
    let coordinator = Txn.self_coordinator in
    Txn.reserve ctx ~bytes:(Txn.prepare_bytes ~coordinator ~writes);
    Txn.append_prepare ctx ~txn_id:txn.id ~coordinator ~writes;
    Txn.advance_watermark t.region ~txn_id:txn.id;
    Txn.apply_committed ctx t.tree ~txn_id:txn.id ~coordinator writes
  end;
  after_op t

let recover_region ?txn_probe ~variant ~config region =
  (match variant with
  | Logging | Incll -> ()
  | Mt | Mt_plus ->
      failwith "System.recover: transient variants are not recoverable");
  Nvm.Superblock.check region;
  let wall0 = Unix.gettimeofday () in
  let sim_now () = Nvm.Stats.sim_ns (Nvm.Region.stats region) in
  let sim0 = sim_now () in
  (* Per-phase profiling: each [phase] is a named span on the region's
     simulated clock. Phase durations are measured mark-to-mark (the time
     since the previous phase ended), so they telescope: their sum is
     exactly the whole recovery's simulated time, glue work included. *)
  let spans = Nvm.Region.spans region in
  Obs.Span.begin_ spans "recover";
  (* One Recovery-cause stall spanning every phase: the outermost-wins
     scope swallows the nested epoch-open fences, replay appends and the
     final checkpoint so post-crash downtime reads as a single entry. *)
  let stalls = Nvm.Region.stalls region in
  Obs.Stall.enter stalls Obs.Stall.Recovery ~now:sim0;
  let phases = ref [] in
  let last_mark = ref sim0 in
  let phase name f =
    (* Fault-injection hook: every phase boundary is a chaos site, so a
       crash inside recovery (which must re-enter recovery cleanly) can
       be scheduled deterministically. *)
    (match Chaos.Site.of_phase name with
    | Some site -> Chaos.Plan.fire site
    | None -> ());
    Obs.Span.begin_ spans name;
    let r = f () in
    ignore (Obs.Span.end_ spans name : float);
    let now = sim_now () in
    phases := (name, now -. !last_mark) :: !phases;
    last_mark := now;
    r
  in
  (* Re-enter epoch machinery: load + extend the durable failed set and
     durably enter the recovery-marker epoch. *)
  let em =
    phase "recover.epoch_open" (fun () ->
        Epoch.Manager.open_after_crash ~epoch_len_ns:config.epoch_len_ns region)
  in
  let log = Extlog.Log.attach region in
  (* Replay the external log (order-independent entries, §4.3). *)
  let replayed =
    phase "recover.extlog_replay" (fun () ->
        Extlog.Log.replay log ~is_failed:(Epoch.Manager.is_failed em))
  in
  (* Recovery-time appends (txn redo below) must not overwrite the live
     prefix — a crash during recovery replays it again. *)
  Extlog.Log.seek_live_end log ~is_failed:(Epoch.Manager.is_failed em);
  (* Restore the allocator metadata lines (bump/free/limbo chains). *)
  let dalloc =
    phase "recover.alloc_chains" (fun () -> Alloc.Durable.open_after_crash em)
  in
  subscribe_log_truncation em log;
  subscribe_log_pressure em log;
  let ctx = Ctx.make em log in
  let hooks = hooks_for variant config ctx in
  (* Scan the persisted image for the tree root and reattach; leaves are
     repaired lazily from their InCLLs on first access afterwards. *)
  let tree =
    phase "recover.image_scan" (fun () ->
        Masstree.Tree.open_existing region
          (Alloc.Api.of_durable dalloc)
          hooks
          ~current_epoch:(fun () -> Epoch.Manager.current em))
  in
  (* Resolve in-doubt transactions: redo committed write sets from the
     surviving PREPARE records (the undo replay above erased their
     applied writes along with the rest of the crashed epoch), discard
     uncommitted ones. The probe answers "did this coordinator commit
     that txn?" — by default against this region's own watermark; a
     sharded store passes one that reads the coordinator shard. *)
  let probe =
    match txn_probe with
    | Some p -> p
    | None -> fun ~coordinator:_ ~txn_id -> txn_id <= Txn.watermark region
  in
  let txns_redone, txns_aborted, session_records =
    phase "recover.txn_resolve" (fun () -> Txn.resolve ctx tree ~probe)
  in
  (* Per-session newest record wins: the records arrive in log order, so
     a later record of the same session overwrites an earlier one. *)
  let recovered_sessions =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (sid, seq, status) ->
        match Hashtbl.find_opt tbl sid with
        | Some (s, _) when s > seq -> ()
        | _ -> Hashtbl.replace tbl sid (seq, status))
      session_records;
    Hashtbl.fold (fun sid (seq, status) acc -> (sid, seq, status) :: acc) tbl []
  in
  (* Compact the failed-epoch set before it can overflow: recover every
     node eagerly, persist that, then durably drop it. Pressure is slot
     occupancy, not epoch count — consecutive failed epochs share a
     range slot. The sweep floor lets later GC discard any ranges a
     crash resurrects after this point. *)
  if Epoch.Manager.failed_slots em >= Nvm.Layout.max_failed_epochs - 2
  then
    phase "recover.eager_sweep" (fun () ->
        Recovery.eager_sweep ctx tree dalloc;
        Nvm.Region.wbinvd region;
        Epoch.Manager.note_swept em
          ~floor:(Epoch.Manager.first_epoch_of_run em);
        Epoch.Manager.clear_failed em);
  (* Execution resumes in a fresh epoch; the checkpoint persists all
     recovery writes and truncates the log. *)
  phase "recover.checkpoint" (fun () -> Epoch.Manager.advance em);
  Obs.Stall.exit stalls ~now:(sim_now ());
  ignore (Obs.Span.end_ spans "recover" : float);
  let wall1 = Unix.gettimeofday () in
  let sim1 = sim_now () in
  Nvm.Region.trace_event region (Obs.Trace.Recover { replayed });
  {
    variant;
    config;
    region;
    em = Some em;
    ctx = Some ctx;
    dalloc = Some dalloc;
    tree;
    last_recover_stats =
      Some
        {
          replayed_entries = replayed;
          recovery_sim_ns = sim1 -. sim0;
          recovery_wall_ns = (wall1 -. wall0) *. 1e9;
          quarantined_chains = Alloc.Durable.quarantined dalloc;
          txns_redone;
          txns_aborted;
          sessions_recovered = List.length recovered_sessions;
          phases = List.rev !phases;
        };
    active_txn = None;
    (* Ids must stay above every committed id, or a reused id would make
       a later in-doubt probe report a stale commit. *)
    next_txn_id = Txn.watermark region + 1;
    recovered_sessions;
  }

let recover ?txn_probe old =
  recover_region ?txn_probe ~variant:old.variant ~config:old.config old.region

let attach ?txn_probe ?(config = default_config) variant region =
  recover_region ?txn_probe ~variant ~config region

let recovered_sessions t = t.recovered_sessions

(* {1 Session dedup records (exactly-once serving)} *)

let record_session t ~sid ~seq ~status op =
  match t.ctx with
  | None -> failwith "System.record_session: no logging context"
  | Some ctx -> Txn.append_session_retry ctx ~sid ~seq ~status op
