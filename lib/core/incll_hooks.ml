module L = Masstree.Leaf
module I = Masstree.Internal
module EW = Masstree.Epoch_word
module V = Masstree.Val_incll

(* After externally logging a leaf: stamp it logged-for-this-epoch and
   invalidate its value InCLLs with the current epoch's low bits, so stale
   low-epoch fields can never alias a failed epoch after the higher bits of
   nodeEpoch move (Listing 3 line 15). Reads the epoch *after* logging:
   a full-log retry inside [Ctx.log_node] may have advanced it, and the
   entry it wrote is tagged with the new epoch. *)
let stamp_logged ctx leaf =
  let region = ctx.Ctx.region in
  let g = Ctx.current ctx in
  L.set_epoch_word region leaf
    { EW.epoch = g; ins_allowed = true; logged = true };
  let inv = V.invalid ~low_epoch:(Ctx.lower16 g) in
  L.set_incll_by_index region leaf ~which:0 inv;
  L.set_incll_by_index region leaf ~which:1 inv;
  Nvm.Region.release_fence region

let log_leaf ctx leaf =
  Ctx.log_node ctx ~addr:leaf ~size:L.node_bytes;
  stamp_logged ctx leaf

(* The first-touch body of Listing 3: make the node recoverable for this
   epoch. [vc] builds the two value-InCLL words given the epoch's low bits
   (invalid words for inserts/removes; the pre-image of the updated slot
   for updates). *)
let first_touch ctx leaf ~vc =
  let region = ctx.Ctx.region in
  let g = Ctx.current ctx in
  let ew = L.epoch_word region leaf in
  if Ctx.higher g <> Ctx.higher ew.EW.epoch then begin
    (* 16 bits cannot encode the epoch distance for the value InCLLs:
       fall back on the external log (§4.1.3; ~once an hour). *)
    ctx.Ctx.counters.Ctx.ext_fallback_epoch <-
      ctx.Ctx.counters.Ctx.ext_fallback_epoch + 1;
    Ctx.note_fallback ctx ~leaf;
    log_leaf ctx leaf
  end
  else begin
    let low = Ctx.lower16 g in
    let vc1, vc2 = vc ~low_epoch:low in
    (* Undo copies first, nodeEpoch second: all in program order, and
       permutationInCLL/nodeEpoch share a cache line, so PCSO turns this
       order into the recovery invariant of §4.1.2. *)
    L.set_perm_incll region leaf (L.perm region leaf);
    L.set_incll_by_index region leaf ~which:0 vc1;
    L.set_incll_by_index region leaf ~which:1 vc2;
    Nvm.Region.release_fence region;
    L.set_epoch_word region leaf
      { EW.epoch = g; ins_allowed = true; logged = false };
    ctx.Ctx.counters.Ctx.first_touches <-
      ctx.Ctx.counters.Ctx.first_touches + 1;
    Ctx.note_first_touch ctx ~leaf
  end

let invalid_pair ~low_epoch =
  let inv = V.invalid ~low_epoch in
  (inv, inv)

let pre_insert ctx ~leaf =
  let region = ctx.Ctx.region in
  let ew = L.epoch_word region leaf in
  if ew.EW.epoch <> Ctx.current ctx then first_touch ctx leaf ~vc:invalid_pair
  else if (not ew.EW.logged) && not ew.EW.ins_allowed then begin
    (* A slot freed by a same-epoch delete could be re-populated,
       destroying the key/value pair a rollback must restore (§4.1.1). *)
    ctx.Ctx.counters.Ctx.ext_fallback_mixed <-
      ctx.Ctx.counters.Ctx.ext_fallback_mixed + 1;
    Ctx.note_fallback ctx ~leaf;
    log_leaf ctx leaf
  end

let pre_remove ctx ~leaf =
  let region = ctx.Ctx.region in
  let ew = L.epoch_word region leaf in
  if ew.EW.epoch <> Ctx.current ctx then first_touch ctx leaf ~vc:invalid_pair;
  (* Deletes always fit in InCLLp, but they forbid later same-epoch
     inserts (Listing 3's remove sets InsAllowed=false). The flag is
     semantically transient (§4.1.2). *)
  let ew = L.epoch_word region leaf in
  if ew.EW.ins_allowed then
    L.set_epoch_word region leaf { ew with EW.ins_allowed = false }

let pre_update ctx ~val_incll ~leaf ~slot =
  let region = ctx.Ctx.region in
  if not val_incll then begin
    (* Ablation: InCLLp only — updates always use the external log. *)
    let ew = L.epoch_word region leaf in
    if not (ew.EW.logged && ew.EW.epoch = Ctx.current ctx) then begin
      ctx.Ctx.counters.Ctx.ext_fallback_update <-
        ctx.Ctx.counters.Ctx.ext_fallback_update + 1;
      Ctx.note_fallback ctx ~leaf;
      log_leaf ctx leaf
    end
  end
  else begin
    let g = Ctx.current ctx in
    let ew = L.epoch_word region leaf in
    if ew.EW.epoch <> g then begin
      (* First touch: log the pre-image of this slot in its line's InCLL
         and leave the other line's InCLL invalid (Listing 3's update). *)
      let vc ~low_epoch =
        let mine =
          V.pack ~ptr:(L.value region leaf ~slot) ~idx:slot ~low_epoch
        in
        let inv = V.invalid ~low_epoch in
        if slot <= 6 then (mine, inv) else (inv, mine)
      in
      first_touch ctx leaf ~vc;
      (* first_touch may have chosen the external log instead; only count
         an InCLL use when it did not. *)
      if not (L.epoch_word region leaf).EW.logged then begin
        ctx.Ctx.counters.Ctx.val_incll_uses <-
          ctx.Ctx.counters.Ctx.val_incll_uses + 1;
        Ctx.note_incll_hit ctx
      end
    end
    else if ew.EW.logged then ()
    else begin
      let which = if slot <= 6 then 0 else 1 in
      let d = V.unpack (L.incll_by_index region leaf ~which) in
      if d.V.idx = slot then
        (* The epoch-start value of this slot is already logged; further
           overwrites need nothing (valuable under skew, §4.1.3). *)
        (ctx.Ctx.counters.Ctx.val_incll_hits <-
           ctx.Ctx.counters.Ctx.val_incll_hits + 1;
         Ctx.note_incll_hit ctx)
      else if d.V.idx = V.invalid_idx then begin
        (* This line's InCLL is still free this epoch: claim it. Same
           cache line as the value slot, so no fence is needed before the
           overwrite. Note: Listing 3's same-epoch arm omits this store
           and would lose the pre-image; §4.1.3's prose ("it is still
           possible to use the unused InCLL") requires it, so we follow
           the prose. *)
        L.set_incll_by_index region leaf ~which
          (V.pack ~ptr:(L.value region leaf ~slot) ~idx:slot
             ~low_epoch:(Ctx.lower16 g));
        Nvm.Region.release_fence region;
        ctx.Ctx.counters.Ctx.val_incll_uses <-
          ctx.Ctx.counters.Ctx.val_incll_uses + 1;
        Ctx.note_incll_hit ctx
      end
      else begin
        (* Two hot slots share the line: external log (§4.1.3). *)
        ctx.Ctx.counters.Ctx.ext_fallback_update <-
          ctx.Ctx.counters.Ctx.ext_fallback_update + 1;
        Ctx.note_fallback ctx ~leaf;
        log_leaf ctx leaf
      end
    end
  end

(* Structural changes (§4.2): log every pre-existing node that is about to
   be mutated, all within one epoch. If a full log forces a checkpoint
   mid-list, every node logged so far belongs to the old epoch while the
   mutation will run in the new one — restart the whole list. *)
let pre_structural ctx nodes =
  let region = ctx.Ctx.region in
  let rec attempt () =
    let e0 = Ctx.current ctx in
    let log_one (addr, size) =
      if addr = Nvm.Layout.off_root then begin
        if
          Int64.to_int (Nvm.Region.read_i64 region Nvm.Layout.off_root_meta)
          <> e0
        then begin
          Ctx.log_node ctx ~addr ~size;
          Nvm.Region.write_i64 region Nvm.Layout.off_root_meta
            (Int64.of_int e0);
          ctx.Ctx.counters.Ctx.ext_structural <-
            ctx.Ctx.counters.Ctx.ext_structural + 1;
          Ctx.note_fallback ctx ~leaf:addr
        end
      end
      else if L.is_leaf_node region addr then begin
        (* A structural change can reach a leaf no operation has accessed
           since a crash — the sibling whose link pointer a split or
           collapse rewrites. Roll it back first: logging and stamping it
           below would otherwise launder the crashed epoch's
           un-rolled-back contents into the current epoch, disabling its
           lazy recovery forever. *)
        Recovery.lazy_leaf_recovery ctx ~leaf:addr;
        let ew = L.epoch_word region addr in
        if not (ew.EW.logged && ew.EW.epoch = e0) then begin
          Ctx.log_node ctx ~addr ~size:L.node_bytes;
          stamp_logged ctx addr;
          ctx.Ctx.counters.Ctx.ext_structural <-
            ctx.Ctx.counters.Ctx.ext_structural + 1;
          Ctx.note_fallback ctx ~leaf:addr
        end
      end
      else if I.logged_epoch region addr <> e0 then begin
        (* Internal node: a plain logged-epoch word makes the log
           at-most-once per epoch (§4.2). *)
        Ctx.log_node ctx ~addr ~size:I.node_bytes;
        I.set_logged_epoch region addr e0;
        ctx.Ctx.counters.Ctx.ext_structural <-
          ctx.Ctx.counters.Ctx.ext_structural + 1;
        Ctx.note_fallback ctx ~leaf:addr
      end
    in
    List.iter log_one nodes;
    if Ctx.current ctx <> e0 then attempt ()
  in
  attempt ()

let make ?(val_incll = true) ctx =
  {
    Masstree.Hooks.on_leaf_access =
      (fun ~leaf -> Recovery.lazy_leaf_recovery ctx ~leaf);
    pre_leaf_insert = (fun ~leaf -> pre_insert ctx ~leaf);
    pre_leaf_remove = (fun ~leaf -> pre_remove ctx ~leaf);
    pre_leaf_update = (fun ~leaf ~slot -> pre_update ctx ~val_incll ~leaf ~slot);
    pre_structural = (fun nodes -> pre_structural ctx nodes);
  }
