(* The durable-transaction commit protocol: typed records in the external
   log plus a durable commit watermark in the superblock.

   A transaction buffers its writes (no tree mutation until commit), so
   abort is free and an epoch rollback of a partially-committed txn
   automatically undoes the applied writes. Commit is:

   1. reserve log headroom for every record (checkpointing up front if
      needed — never mid-protocol, so no epoch boundary can split the
      commit window on any participant);
   2. append a PREPARE record per participant carrying its write set and
      the coordinator's identity, each individually fenced;
   3. durably advance the coordinator's txn watermark — the single
      store-atomic commit point;
   4. apply the writes through the tree (InCLL/extlog machinery logs the
      old images, so the crashed-epoch rollback also rolls them back).

   Recovery replays the undo log first (all applied writes of the crashed
   epoch vanish), then resolves surviving PREPARE records: a PREPARE
   whose txn id is at or below its coordinator's watermark was committed
   and is redone; otherwise the transaction never committed and the
   record is discarded. PREPARE records cannot outlive their epoch (the
   log is truncated at every checkpoint), so every surviving record
   belongs to the crashed epoch and redo is never stale: either the
   commit's epoch completed a checkpoint (writes durable, record gone) or
   it did not (writes rolled back, record present). *)

type write = { key : string; value : string option }

(* Coordinator id used by a standalone (unsharded) system: the probe
   resolves it to the system's own region. *)
let self_coordinator = 0

(* {1 Record payload codec}

   Fixed-width little-endian words with explicit lengths; the extlog pads
   payloads with NULs, which the explicit lengths make harmless. *)

let add_word buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Buffer.add_bytes buf b

let encode_prepare ~coordinator ~writes =
  let buf = Buffer.create 64 in
  add_word buf coordinator;
  add_word buf (List.length writes);
  List.iter
    (fun { key; value } ->
      add_word buf (String.length key);
      Buffer.add_string buf key;
      match value with
      | None -> add_word buf 0
      | Some v ->
          add_word buf 1;
          add_word buf (String.length v);
          Buffer.add_string buf v)
    writes;
  Buffer.contents buf

let encode_commit ~participants =
  let buf = Buffer.create 32 in
  add_word buf (List.length participants);
  List.iter (add_word buf) participants;
  Buffer.contents buf

(* Defensive decoding: records are checksummed, so a malformed payload
   indicates a writer bug rather than a torn write — but recovery must
   never crash on one, so decoders return [None] instead of raising. *)

let word s pos =
  if pos + 8 > String.length s then None
  else Some (Int64.to_int (String.get_int64_le s pos))

let take s pos len =
  if len < 0 || pos + len > String.length s then None
  else Some (String.sub s pos len)

let decode_prepare payload =
  let ( let* ) = Option.bind in
  let* coordinator = word payload 0 in
  let* n = word payload 8 in
  if n < 0 then None
  else begin
    let rec loop pos k acc =
      if k = 0 then Some (List.rev acc)
      else
        let* klen = word payload pos in
        let* key = take payload (pos + 8) klen in
        let* tag = word payload (pos + 8 + klen) in
        let pos = pos + 16 + klen in
        match tag with
        | 0 -> loop pos (k - 1) ({ key; value = None } :: acc)
        | 1 ->
            let* vlen = word payload pos in
            let* v = take payload (pos + 8) vlen in
            loop (pos + 8 + vlen) (k - 1) ({ key; value = Some v } :: acc)
        | _ -> None
    in
    let* writes = loop 16 n [] in
    Some (coordinator, writes)
  end

let decode_commit payload =
  let ( let* ) = Option.bind in
  let* n = word payload 0 in
  if n < 0 then None
  else
    let rec loop pos k acc =
      if k = 0 then Some (List.rev acc)
      else
        let* p = word payload pos in
        loop (pos + 8) (k - 1) (p :: acc)
    in
    loop 8 n []

let prepare_bytes ~coordinator ~writes =
  Extlog.Log.record_bytes
    ~payload_bytes:(String.length (encode_prepare ~coordinator ~writes))

let commit_bytes ~participants =
  Extlog.Log.record_bytes
    ~payload_bytes:(String.length (encode_commit ~participants))

(* {1 The durable watermark} *)

let watermark region =
  Int64.to_int (Nvm.Region.read_i64 region Nvm.Layout.off_txn_watermark)

(* The commit point: one store-atomic word, flushed and fenced. The
   watermark is outside every node, so neither the undo replay nor the
   InCLL rollback ever moves it backwards. *)
let advance_watermark region ~txn_id =
  Chaos.Plan.fire Chaos.Site.Txn_commit_record;
  let stalls = Nvm.Region.stalls region in
  Obs.Stall.enter stalls Obs.Stall.Txn_fence
    ~now:(Nvm.Stats.sim_ns (Nvm.Region.stats region));
  Nvm.Region.write_i64 region Nvm.Layout.off_txn_watermark
    (Int64.of_int txn_id);
  Nvm.Region.clwb region Nvm.Layout.off_txn_watermark;
  Nvm.Region.sfence region;
  Obs.Stall.exit stalls ~now:(Nvm.Stats.sim_ns (Nvm.Region.stats region))

(* {1 Commit-window log appends} *)

(* Make room for [bytes] of upcoming records before the window opens; a
   checkpoint here is safe (nothing of the txn is in the log yet) whereas
   one inside the window would truncate earlier PREPAREs. *)
(* A checkpoint forced by log pressure is an extlog-wrap stall, not an
   ordinary periodic epoch advance; scope it so attribution says why. *)
let wrap_advance ctx =
  let region = ctx.Ctx.region in
  let stalls = Nvm.Region.stalls region in
  Obs.Stall.enter stalls Obs.Stall.Extlog
    ~now:(Nvm.Stats.sim_ns (Nvm.Region.stats region));
  Epoch.Manager.advance ctx.Ctx.em;
  Obs.Stall.exit stalls ~now:(Nvm.Stats.sim_ns (Nvm.Region.stats region))

(* Txn-fence scope around a protocol step: swallows the nested extlog
   append / watermark fence so the whole step is one attributed stall. *)
let txn_scope ctx f =
  let region = ctx.Ctx.region in
  let stalls = Nvm.Region.stalls region in
  Obs.Stall.enter stalls Obs.Stall.Txn_fence
    ~now:(Nvm.Stats.sim_ns (Nvm.Region.stats region));
  Fun.protect
    ~finally:(fun () ->
      Obs.Stall.exit stalls
        ~now:(Nvm.Stats.sim_ns (Nvm.Region.stats region)))
    f

let reserve ctx ~bytes =
  if bytes > Extlog.Log.capacity ctx.Ctx.log then
    invalid_arg "Txn.reserve: write set exceeds log capacity";
  if Extlog.Log.used ctx.Ctx.log + bytes > Extlog.Log.capacity ctx.Ctx.log
  then wrap_advance ctx

let append_prepare ctx ~txn_id ~coordinator ~writes =
  Chaos.Plan.fire Chaos.Site.Txn_prepare;
  txn_scope ctx (fun () ->
      Extlog.Log.append_record ctx.Ctx.log ~kind:Extlog.Log.kind_txn_prepare
        ~epoch:(Epoch.Manager.current ctx.Ctx.em)
        ~txn_id
        ~payload:(encode_prepare ~coordinator ~writes))

let append_commit_marker ctx ~txn_id ~participants =
  txn_scope ctx (fun () ->
      Extlog.Log.append_record ctx.Ctx.log ~kind:Extlog.Log.kind_txn_commit
        ~epoch:(Epoch.Manager.current ctx.Ctx.em)
        ~txn_id
        ~payload:(encode_commit ~participants))

let rec append_prepare_retry ctx ~txn_id ~coordinator ~writes =
  try append_prepare ctx ~txn_id ~coordinator ~writes
  with Extlog.Log.Log_full ->
    wrap_advance ctx;
    append_prepare_retry ctx ~txn_id ~coordinator ~writes

(* Session dedup record (see [Session]): appended by the serving layer
   after the op applied and before its reply is sent, so an acked op is
   always redoable. Shares the txn-fence stall scope and the
   [Log_full] -> forced-checkpoint retry of the PREPARE path. *)
let append_session ctx ~sid ~seq ~status op =
  txn_scope ctx (fun () ->
      Extlog.Log.append_record ctx.Ctx.log ~kind:Extlog.Log.kind_session
        ~epoch:(Epoch.Manager.current ctx.Ctx.em)
        ~txn_id:sid
        ~payload:(Session.encode ~seq ~status op))

let rec append_session_retry ctx ~sid ~seq ~status op =
  try append_session ctx ~sid ~seq ~status op
  with Extlog.Log.Log_full ->
    wrap_advance ctx;
    append_session_retry ctx ~sid ~seq ~status op

let apply_one tree { key; value } =
  match value with
  | Some v -> Masstree.Tree.put tree ~key ~value:v
  | None -> ignore (Masstree.Tree.remove tree ~key : bool)

(* Worst-case log bytes a single write's node logging should need: one
   image per node on the root path of a structural change. Taking a
   controlled checkpoint when headroom drops below this keeps [Log_full]
   from firing {e inside} a write, where the forced advance would fall
   between a transaction's PREPARE re-arm points. *)
let write_headroom = 8192

let ensure_headroom ctx =
  let log = ctx.Ctx.log in
  if
    Extlog.Log.capacity log - Extlog.Log.used log < write_headroom
    && Extlog.Log.used log > 0
  then wrap_advance ctx

(* Apply a committed write set through the tree (normal hooks, so the
   old images are InCLL- or extlog-protected exactly like untransacted
   ops), preserving redo-ability across epoch boundaries. The tree's own
   logging can force a checkpoint mid-set ([Log_full] → advance), which
   persists the writes applied so far and truncates the PREPARE — a
   crash then would keep a prefix of the transaction with no record to
   finish it from. So on every epoch change, first re-arm a PREPARE for
   whatever part of the set is not yet applied (redo of an applied
   prefix is idempotent: puts and removes re-apply to the same state). *)
let apply_committed ctx tree ~txn_id ~coordinator writes =
  let rec go epoch remaining =
    match remaining with
    | [] -> ()
    | w :: tl ->
        ensure_headroom ctx;
        let now = Epoch.Manager.current ctx.Ctx.em in
        let epoch =
          if now <> epoch then begin
            append_prepare_retry ctx ~txn_id ~coordinator ~writes:remaining;
            Epoch.Manager.current ctx.Ctx.em
          end
          else epoch
        in
        apply_one tree w;
        go epoch tl
  in
  go (Epoch.Manager.current ctx.Ctx.em) writes

(* {1 Recovery-side resolution} *)

(* Resolve the PREPARE records that survived in the crashed epoch's live
   log prefix: redo committed transactions (coordinator watermark covers
   the id), discard the rest. Records are visited in log order, which is
   commit order, so redone write sets land in the original serialization
   order.

   The records are materialized before any redo runs: redo writes append
   node images to the log (past the live prefix — recovery parked the
   cursor there), and an iteration interleaved with appends could race a
   [Log_full]-forced truncation. For the same reason, a mid-redo epoch
   change re-arms PREPAREs for every transaction not fully redone yet,
   current one included, before continuing. Returns [(redone, aborted)]
   transaction counts. *)
(* A pending redo item: a committed PREPARE's (remaining) write set, or
   a session dedup record. Redone strictly in log order, so a session
   put and a txn write to the same key land in their original
   serialization order. *)
type redo_item =
  | Rtxn of int * int * write list  (* txn_id, coordinator, remaining *)
  | Rsess of int * int * int * Session.op  (* sid, seq, status *)

let resolve ctx tree ~probe =
  let items = ref [] and aborted = ref 0 in
  let sessions = ref [] in
  Extlog.Log.fold_live_records ctx.Ctx.log
    ~is_failed:(Epoch.Manager.is_failed ctx.Ctx.em)
    (fun ~kind ~epoch:_ ~txn_id ~payload ->
      if kind = Extlog.Log.kind_txn_prepare then begin
        match decode_prepare payload with
        | None -> incr aborted (* writer bug; treat as never-committed *)
        | Some (coordinator, writes) ->
            if probe ~coordinator ~txn_id then
              items := Rtxn (txn_id, coordinator, writes) :: !items
            else begin
              Chaos.Plan.fire Chaos.Site.Txn_rollback;
              incr aborted
            end
      end
      else if kind = Extlog.Log.kind_session then begin
        match Session.decode payload with
        | None -> () (* writer bug; drop *)
        | Some (seq, status, op) ->
            sessions := (txn_id, seq, status) :: !sessions;
            items := Rsess (txn_id, seq, status, op) :: !items
      end);
  let pending = ref (List.rev !items) in
  let redone = ref 0 in
  (* Mid-redo epoch change: re-arm a record for everything not fully
     redone yet (the checkpoint just truncated the originals), both
     kinds, current item included. *)
  let rearm_pending () =
    List.iter
      (fun item ->
        match item with
        | Rtxn (id, coord, ws) ->
            if ws <> [] then
              append_prepare_retry ctx ~txn_id:id ~coordinator:coord ~writes:ws
        | Rsess (sid, seq, status, op) ->
            append_session_retry ctx ~sid ~seq ~status op)
      !pending
  in
  let step epoch apply tail =
    ensure_headroom ctx;
    let now = Epoch.Manager.current ctx.Ctx.em in
    let epoch =
      if now <> epoch then begin
        rearm_pending ();
        Epoch.Manager.current ctx.Ctx.em
      end
      else epoch
    in
    apply ();
    pending := tail;
    epoch
  in
  let rec redo_all epoch =
    match !pending with
    | [] -> ()
    | Rtxn (txn_id, coordinator, writes) :: rest -> (
        match writes with
        | [] ->
            pending := rest;
            incr redone;
            redo_all epoch
        | w :: tl ->
            let epoch =
              step epoch
                (fun () -> apply_one tree w)
                (Rtxn (txn_id, coordinator, tl) :: rest)
            in
            redo_all epoch)
    | Rsess (_sid, _seq, _status, op) :: rest -> (
        match op with
        | Session.Commit _ ->
            (* The write set redoes via its own PREPARE; the record only
               feeds the dedup table (already collected above). *)
            pending := rest;
            redo_all epoch
        | Session.Put { key; value } ->
            let epoch =
              step epoch
                (fun () -> apply_one tree { key; value = Some value })
                rest
            in
            redo_all epoch
        | Session.Remove { key } ->
            let epoch =
              step epoch (fun () -> apply_one tree { key; value = None }) rest
            in
            redo_all epoch)
  in
  redo_all (Epoch.Manager.current ctx.Ctx.em);
  (!redone, !aborted, List.rev !sessions)
