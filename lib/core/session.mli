(** Session dedup record codec (exactly-once serving, DESIGN.md §17).

    The serving layer appends one [Extlog.Log.kind_session] record per
    applied mutation, fenced durable {e before} the reply is sent: the
    extlog header's addr field carries the session id, the payload the
    client-stamped seqno, the reply status, and the op itself. Recovery
    redoes the op (its effect was rolled back with the crashed epoch)
    and rebuilds the per-session seqno table, so a client retry of the
    same (session, seqno) after a server crash is answered from the
    record instead of being applied twice. See {!Txn.resolve} for the
    interleaved txn + session redo and [Incll.System.record_session]
    for the append side. *)

type op =
  | Put of { key : string; value : string }
  | Remove of { key : string }
  | Commit of { txn_id : int }
      (** Commit marker for a connection-scoped transaction: the write
          set lives in the txn PREPARE record, which recovery redoes on
          its own, so this op is never re-applied — it exists to rebuild
          the dedup table. *)

val encode : seq:int -> status:int -> op -> string

val decode : string -> (int * int * op) option
(** [(seq, status, op)], or [None] on malformed bytes (writer bug;
    recovery drops the record rather than crashing). *)

val record_bytes : seq:int -> status:int -> op -> int
(** Log bytes the record will consume (header + padding included), for
    headroom reservation. *)
