(** A complete durable key-value system instance: region + epoch manager +
    allocator + external log + hooks + Masstree, assembled per variant.

    The four variants of the paper's evaluation (§6):

    - [Mt] — unmodified transient Masstree: general-purpose allocator, no
      epochs, no persistence actions. Not recoverable.
    - [Mt_plus] — the improved baseline: pool allocator and the per-epoch
      global barrier + cache flush adopted from INCLL. Not recoverable
      (nothing is logged).
    - [Logging] — durable via the external undo log alone (the LOGGING
      series of Figures 7/8).
    - [Incll] — the paper's system: fine-grained checkpointing + InCLL +
      external-log fallback (§3-§5), durable allocator included.

    Ops charge the simulated clock and, for epoch-running variants, drive
    the 64 ms checkpoint cadence. *)

type variant = Mt | Mt_plus | Logging | Incll

val variant_name : variant -> string
val variant_of_string : string -> variant

type config = {
  nvm : Nvm.Config.t;
  epoch_len_ns : float;
  val_incll : bool;
      (** [false] = the InCLLp-only ablation (value updates always fall
          back to the external log). *)
}

val default_config : config

type t

val create : ?config:config -> variant -> t
(** Fresh system on a fresh region. *)

val variant : t -> variant
val region : t -> Nvm.Region.t

val metrics : t -> Obs.Registry.t
(** The region's metric registry: the NVM substrate's latency histograms
    plus the epoch, external-log and InCLL counters layered onto it. *)

val tree : t -> Masstree.Tree.t
val epoch_manager : t -> Epoch.Manager.t option
val ctx : t -> Ctx.t option
(** InCLL/logging context; [None] for the transient variants. *)

val durable_alloc : t -> Alloc.Durable.t option

(** {1 Operations} *)

val put : t -> key:string -> value:string -> unit
val get : t -> key:string -> string option
val mem : t -> key:string -> bool
val remove : t -> key:string -> bool
val scan : t -> start:string -> n:int -> (string * string) list

val scan_rev : t -> ?bound:string -> n:int -> unit -> (string * string) list
(** Descending scan from the largest key [<= bound]. *)

(** {1 Transactions (Logging / Incll variants)}

    Durable multi-key transactions over the {!Txn} commit protocol.
    Writes are buffered until commit (reads inside the transaction see
    them), so {!txn_abort} is free; {!txn_commit} makes the whole write
    set atomic with respect to crashes — after recovery either every
    write of the transaction is present or none is. One transaction at a
    time (the system is sequential). *)

val txn_begin : t -> unit
(** Start buffering. Fails if a transaction is already active or the
    variant has no logging context ([Mt] / [Mt_plus]). *)

val txn_active : t -> bool

val txn_put : t -> key:string -> value:string -> unit
val txn_remove : t -> key:string -> unit
(** Buffer a write into the active transaction (last write per key
    wins). Fails outside a transaction. *)

val txn_get : t -> key:string -> string option
(** Read-your-writes lookup: buffered writes shadow the tree. *)

val txn_abort : t -> unit
(** Discard the buffered writes; the tree was never touched. *)

val txn_commit : t -> unit
(** Commit atomically: reserve log headroom, append a fenced PREPARE
    record carrying the write set, durably advance the commit watermark
    (the atomic commit point), then apply the writes through the tree.
    An empty transaction commits without touching the log. *)

val durability_lag_ns : t -> float
(** Simulated time since the last completed checkpoint — the window of
    work a crash right now would lose (§4's tradeoff; bounded by the
    epoch length). [infinity] for the MT variant, which never
    checkpoints. *)

val advance_epoch : t -> unit
(** Force a checkpoint now (benchmarks use it to delimit measurements). *)

(** {1 Crash and recovery (Logging / Incll variants, Precise regions)} *)

val crash : t -> Util.Rng.t -> unit
(** Simulate a power failure (see [Nvm.Region.crash]). The instance must
    be discarded; call {!recover} to obtain a working successor on the
    same region. *)

val crash_with : t -> choose:(line:int -> nwrites:int -> int) -> unit

val recover : ?txn_probe:(coordinator:int -> txn_id:int -> bool) -> t -> t
(** Rebuild a system over the crashed region: replay the external log,
    restore allocator roots, arm lazy node recovery, resolve in-doubt
    transactions, compact the failed-epoch set if it is close to
    capacity, and checkpoint so execution resumes in a fresh epoch.
    Returns the replacement instance ([recover_stats] tells how much
    work it did).

    [txn_probe] decides whether a surviving PREPARE record's transaction
    committed; the default probes this region's own watermark (correct
    for a standalone system). A sharded store passes a probe that reads
    the coordinator shard's watermark. *)

val attach :
  ?txn_probe:(coordinator:int -> txn_id:int -> bool) ->
  ?config:config ->
  variant ->
  Nvm.Region.t ->
  t
(** Recover a system from a region obtained elsewhere — typically an NVM
    image reloaded after a process restart ([Nvm.Image.load]). Runs the
    same recovery procedure as {!recover}. The [config]'s cost model and
    epoch length apply to the new instance; its region sizing is ignored
    (the region already exists). *)

type recover_stats = {
  replayed_entries : int;
  recovery_sim_ns : float;
  recovery_wall_ns : float;
  quarantined_chains : int;
      (** Allocator chains found structurally corrupt during this
          recovery ([Alloc.Durable.Corrupt_chain]) and unlinked so the
          store could keep running — their blocks leak. 0 in a healthy
          store. *)
  txns_redone : int;
      (** Committed transactions whose write sets were re-applied from
          surviving PREPARE records during [recover.txn_resolve]. *)
  txns_aborted : int;
      (** In-doubt transactions found uncommitted (coordinator watermark
          below their id) and discarded. *)
  sessions_recovered : int;
      (** Distinct serving sessions whose dedup state was rebuilt from
          surviving session records (see {!recovered_sessions}). *)
  phases : (string * float) list;
      (** Ordered per-phase breakdown of the recovery, in simulated ns:
          [recover.epoch_open] (failed-set load + marker epoch),
          [recover.extlog_replay], [recover.alloc_chains],
          [recover.image_scan] (tree reattach; leaves repair lazily),
          [recover.txn_resolve] (in-doubt transaction redo/rollback),
          [recover.eager_sweep] (only when the failed set was compacted)
          and [recover.checkpoint]. Durations are mark-to-mark, so they
          sum exactly to [recovery_sim_ns]. Each phase is also a
          {!Obs.Span} — its latency histogram lands in {!metrics} and its
          begin/end events in the region's trace ring. *)
}

val last_recover_stats : t -> recover_stats option
(** Statistics of the recovery that produced this instance. *)

(** {1 Session dedup records (exactly-once serving, DESIGN.md §17)} *)

val record_session : t -> sid:int -> seq:int -> status:int -> Session.op -> unit
(** Append and fence a session dedup record ({!Session}): called by the
    serving layer after a mutation applied and before its reply is sent,
    so every acked op is redoable after a crash and a retried (sid, seq)
    can be answered without re-applying. Forces a checkpoint and retries
    if the log is full. Fails on variants without a logging context. *)

val recovered_sessions : t -> (int * int * int) list
(** [(sid, last_seq, status)] per session found in the crashed epoch's
    surviving dedup records during the recovery that produced this
    instance (newest record per session wins; unordered). Empty for a
    freshly created system. *)

val nodes_logged : t -> int
(** External-log appends so far (Figure 7's metric). *)
