(** The durable multi-key transaction commit protocol.

    Building blocks shared by [Incll.System] (single store) and
    [Store.Sharded] (two-phase commit across shards): typed PREPARE /
    COMMIT records in the external log, the durable commit watermark, and
    the recovery-side resolution of in-doubt records.

    The protocol in one line: buffer writes, reserve log headroom,
    append a fenced PREPARE per participant, durably advance the
    coordinator's watermark (the store-atomic commit point), then apply
    the writes through the tree. Recovery rolls the crashed epoch back
    first, then redoes the write sets of surviving PREPAREs whose txn id
    the coordinator's watermark covers and discards the rest — so a
    transaction is either fully present or fully absent after any crash.

    Log truncation at every checkpoint bounds record lifetime to one
    epoch: a surviving PREPARE always belongs to the crashed epoch, and a
    committed epoch that completed its checkpoint needs no redo (its
    writes are durable and its records are gone). *)

type write = { key : string; value : string option  (** [None] = remove *) }

val self_coordinator : int
(** Coordinator id a standalone (unsharded) system stamps into its
    PREPARE records; the default recovery probe resolves it to the
    system's own region. *)

(** {1 Payload codec} *)

val encode_prepare : coordinator:int -> writes:write list -> string
val decode_prepare : string -> (int * write list) option
(** [None] on malformed bytes — recovery treats such a record as
    never-committed rather than crashing. *)

val encode_commit : participants:int list -> string
val decode_commit : string -> int list option

val prepare_bytes : coordinator:int -> writes:write list -> int
(** Log bytes the PREPARE for [writes] will consume (for {!reserve}). *)

val commit_bytes : participants:int list -> int

(** {1 The durable watermark} *)

val watermark : Nvm.Region.t -> int
(** Highest txn id whose commit decision this region has durably
    recorded as coordinator (0 = none). *)

val advance_watermark : Nvm.Region.t -> txn_id:int -> unit
(** The commit point: durably store [txn_id] in the watermark word (one
    store-atomic write, flushed and fenced). Fires the
    [Txn_commit_record] chaos site first. *)

(** {1 Commit-window log appends} *)

val reserve : Ctx.t -> bytes:int -> unit
(** Ensure [bytes] of log headroom, checkpointing now if needed — before
    the commit window opens, because a checkpoint inside it would
    truncate already-appended PREPAREs. Raises [Invalid_argument] if
    [bytes] exceeds the log capacity outright. *)

val append_prepare :
  Ctx.t -> txn_id:int -> coordinator:int -> writes:write list -> unit
(** Append and fence a participant's PREPARE record. Fires the
    [Txn_prepare] chaos site first. *)

val append_commit_marker : Ctx.t -> txn_id:int -> participants:int list -> unit
(** Append the coordinator's informational COMMIT record (diagnostics:
    [incll_fsck] uses it to distinguish decided from in-doubt txns in a
    post-mortem image; recovery decides by watermark alone). *)

val apply_committed :
  Ctx.t -> Masstree.Tree.t -> txn_id:int -> coordinator:int -> write list -> unit
(** Apply a committed write set through the tree with the normal
    persistence hooks (used both at commit and at recovery redo). If the
    tree's own logging forces a checkpoint mid-set — which persists the
    applied prefix and truncates the PREPARE — a fresh PREPARE covering
    the unapplied remainder is re-armed first, so the transaction stays
    redoable across any crash point. *)

val append_session :
  Ctx.t -> sid:int -> seq:int -> status:int -> Session.op -> unit
(** Append and fence a session dedup record ({!Session}): the serving
    layer calls this after an op applied and before its reply is sent,
    so every acked mutation is redoable after a crash. Raises
    [Extlog.Log.Log_full] if the record does not fit. *)

val append_session_retry :
  Ctx.t -> sid:int -> seq:int -> status:int -> Session.op -> unit
(** {!append_session}, forcing a checkpoint (which truncates the log)
    and retrying on [Log_full]. *)

(** {1 Recovery-side resolution} *)

val resolve :
  Ctx.t ->
  Masstree.Tree.t ->
  probe:(coordinator:int -> txn_id:int -> bool) ->
  int * int * (int * int * int) list
(** Resolve surviving PREPARE and session records strictly in log
    (= serialization) order: redo the write sets of transactions
    [probe] reports committed and the ops of session records (their
    effects were rolled back with the crashed epoch; commit-tagged
    session records are not re-applied — their write set redoes via its
    own PREPARE), discard the rest (firing [Txn_rollback] per discarded
    txn). Returns [(txns_redone, txns_aborted, sessions)] where
    [sessions] lists every surviving session record as
    [(sid, seq, status)] in log order — the serving layer rebuilds its
    dedup table from it. Run after the undo replay and tree reattach,
    before the end-of-recovery checkpoint. *)
