type counters = {
  mutable first_touches : int;
  mutable val_incll_uses : int;
  mutable val_incll_hits : int;
  mutable ext_fallback_mixed : int;
  mutable ext_fallback_update : int;
  mutable ext_fallback_epoch : int;
  mutable ext_structural : int;
  mutable lazy_recoveries : int;
}

type t = {
  region : Nvm.Region.t;
  em : Epoch.Manager.t;
  log : Extlog.Log.t;
  counters : counters;
  (* Registry mirrors of the Figure-7 split: every modification the InCLL
     machinery absorbs bumps [m_incll_hit]; every one that falls back on
     the external log bumps [m_incll_fallback]. *)
  m_incll_hit : int ref;
  m_incll_fallback : int ref;
  m_first_touch : int ref;
}

let fresh_counters () =
  {
    first_touches = 0;
    val_incll_uses = 0;
    val_incll_hits = 0;
    ext_fallback_mixed = 0;
    ext_fallback_update = 0;
    ext_fallback_epoch = 0;
    ext_structural = 0;
    lazy_recoveries = 0;
  }

let make em log =
  let region = Epoch.Manager.region em in
  let m = Nvm.Region.metrics region in
  {
    region;
    em;
    log;
    counters = fresh_counters ();
    m_incll_hit = Obs.Registry.counter m "incll_hit";
    m_incll_fallback = Obs.Registry.counter m "incll_fallback";
    m_first_touch = Obs.Registry.counter m "incll_first_touch";
  }

let note_incll_hit t = incr t.m_incll_hit

let note_first_touch t ~leaf =
  incr t.m_incll_hit;
  incr t.m_first_touch;
  Nvm.Region.trace_event t.region (Obs.Trace.Incll_first_touch { leaf })

let note_fallback t ~leaf =
  incr t.m_incll_fallback;
  Nvm.Region.trace_event t.region (Obs.Trace.Incll_fallback { leaf })

let current t = Epoch.Manager.current t.em
let lower16 = Epoch.Manager.lower16
let higher = Epoch.Manager.higher

let rec log_node t ~addr ~size =
  try Extlog.Log.append t.log ~epoch:(current t) ~addr ~size
  with Extlog.Log.Log_full ->
    (* A checkpoint truncates the log; the entry then lands in the new
       epoch, which is also the epoch the pending modification will run
       in (no mutation has happened yet when a pre-hook logs). *)
    Epoch.Manager.advance t.em;
    log_node t ~addr ~size
