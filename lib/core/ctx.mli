(** Shared context of the durability hooks and the recovery procedures:
    the region, the epoch manager, the external log and the InCLL event
    counters (Figure 7 reports the logging behaviour these record). *)

type counters = {
  mutable first_touches : int;
      (** Leaf first-modifications per epoch that were absorbed by InCLLp
          (no external log, no fence). *)
  mutable val_incll_uses : int;
      (** Value updates absorbed by an in-line value InCLL. *)
  mutable val_incll_hits : int;
      (** Same-epoch re-updates of an already-logged slot (free). *)
  mutable ext_fallback_mixed : int;
      (** Nodes externally logged because a delete was followed by an
          insert in the same epoch (§4.1.1). *)
  mutable ext_fallback_update : int;
      (** Nodes externally logged because both value InCLLs of a line were
          needed (§4.1.3). *)
  mutable ext_fallback_epoch : int;
      (** Nodes externally logged because 16 bits could not encode the
          epoch distance (§4.1.3; about once an hour in the paper). *)
  mutable ext_structural : int;
      (** Nodes externally logged for splits / root changes (§4.2). *)
  mutable lazy_recoveries : int;  (** Lazy node recoveries performed. *)
}

type t = {
  region : Nvm.Region.t;
  em : Epoch.Manager.t;
  log : Extlog.Log.t;
  counters : counters;
  m_incll_hit : int ref;
      (** Registry counter ["incll_hit"]: modifications absorbed in-line
          (first touches + value-InCLL uses and hits). *)
  m_incll_fallback : int ref;
      (** Registry counter ["incll_fallback"]: modifications that went to
          the external log (Figure 7's logged-node count). *)
  m_first_touch : int ref;  (** Registry counter ["incll_first_touch"]. *)
}

val make : Epoch.Manager.t -> Extlog.Log.t -> t
val fresh_counters : unit -> counters

(** Figure-7 accounting, mirrored into the region's metric registry (the
    hooks call these next to their own [counters] increments). *)

val note_incll_hit : t -> unit
val note_first_touch : t -> leaf:int -> unit
val note_fallback : t -> leaf:int -> unit

val log_node : t -> addr:int -> size:int -> unit
(** Append to the external log; on a full log, force a checkpoint (which
    truncates it) and retry, so the append always lands in the epoch that
    is current when it returns. *)

val current : t -> int
val lower16 : int -> int
val higher : int -> int
