type t = { columns : string list; mutable rows : string list list }

let create ~columns = { columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- row :: t.rows

let columns t = t.columns
let rows t = List.rev t.rows

let widths t =
  let ncols = List.length t.columns in
  let w = Array.make ncols 0 in
  let account row =
    List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row
  in
  account t.columns;
  List.iter account t.rows;
  w

let render_row w row =
  let cells =
    List.mapi
      (fun i cell ->
        let pad = w.(i) - String.length cell in
        (* Right-align everything but the first column. *)
        if i = 0 then cell ^ String.make pad ' '
        else String.make pad ' ' ^ cell)
      row
  in
  String.concat "  " cells

let print ?(out = stdout) ?title t =
  let w = widths t in
  (match title with
  | Some s ->
      Printf.fprintf out "%s\n%s\n" s (String.make (String.length s) '=')
  | None -> ());
  Printf.fprintf out "%s\n" (render_row w t.columns);
  let total = Array.fold_left (fun a x -> a + x + 2) (-2) w in
  Printf.fprintf out "%s\n" (String.make (max total 1) '-');
  List.iter
    (fun row -> Printf.fprintf out "%s\n" (render_row w row))
    (List.rev t.rows);
  Printf.fprintf out "%!"

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else cell

let to_csv t =
  let line row = String.concat "," (List.map csv_escape row) in
  String.concat "\n" (line t.columns :: List.rev_map line t.rows) ^ "\n"

let cell_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let cell_int v =
  let s = string_of_int (abs v) in
  let n = String.length s in
  let buf = Buffer.create (n + (n / 3)) in
  if v < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (n - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let cell_pct r = Printf.sprintf "%+.1f%%" (r *. 100.0)
