(** Column-aligned plain-text tables for benchmark reports. *)

type t

val create : columns:string list -> t
(** [create ~columns] starts a table with the given header row. *)

val add_row : t -> string list -> unit
(** Append a row; it must have as many cells as there are columns. *)

val columns : t -> string list
(** The header row, as given to {!create}. *)

val rows : t -> string list list
(** All rows in insertion order. *)

val print : ?out:out_channel -> ?title:string -> t -> unit
(** Render the table with aligned columns. *)

val to_csv : t -> string
(** RFC-4180-style CSV rendering (cells with commas/quotes are quoted). *)

val cell_float : ?decimals:int -> float -> string
(** Format a float cell (default 2 decimals). *)

val cell_int : int -> string
(** Format an integer cell with thousands separators. *)

val cell_pct : float -> string
(** Format a ratio as a signed percentage, e.g. [cell_pct 0.103 = "+10.3%"]. *)
