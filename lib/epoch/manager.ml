exception Failed_set_full

type t = {
  region : Nvm.Region.t;
  epoch_len_ns : float;
  mutable current : int;
  mutable first_epoch_of_run : int;
  mutable crashed_epoch : int option;
  mutable epoch_start_ns : float;
  mutable advances : int;
  failed : (int, unit) Hashtbl.t;
  mutable ranges : (int * int) list;  (* durable failed-set slots, in order *)
  mutable subscribers : (unit -> unit) list;  (* reversed *)
  h_epoch_len : Obs.Histogram.t;  (* completed epoch lengths, sim ns *)
  h_epoch_dirty : Obs.Histogram.t;  (* dirty lines flushed per checkpoint *)
  c_advances : int ref;  (* "epoch.advances" registry counter *)
  s_dirty : Obs.Series.t;  (* dirty-line occupancy at each boundary *)
  s_pending : Obs.Series.t;  (* pending write-back depth at each boundary *)
}

let default_epoch_len_ns = 64.0e6 (* 64 ms, §4 *)

let region t = t.region
let current t = t.current
let first_epoch_of_run t = t.first_epoch_of_run
let crashed_epoch t = t.crashed_epoch
let is_failed t e = Hashtbl.mem t.failed e
let failed_count t = Hashtbl.length t.failed
let epoch_len_ns t = t.epoch_len_ns
let epochs_elapsed t = t.advances
let epoch_start_ns t = t.epoch_start_ns

let failed_list t =
  Hashtbl.fold (fun e () acc -> e :: acc) t.failed [] |> List.sort compare

let subscribe_post_advance t f = t.subscribers <- f :: t.subscribers

let run_subscribers t = List.iter (fun f -> f ()) (List.rev t.subscribers)

let write_durable_epoch t e =
  Nvm.Region.write_i64 t.region Nvm.Layout.off_durable_epoch (Int64.of_int e);
  Nvm.Region.clwb t.region Nvm.Layout.off_durable_epoch;
  Nvm.Region.sfence t.region

let read_durable_epoch region =
  Int64.to_int (Nvm.Region.read_i64 region Nvm.Layout.off_durable_epoch)

(* Each durable slot packs a range of consecutive failed epochs as
   [lo * 2^16 + (hi - lo)]: repeated crash-during-recovery produces
   strictly consecutive failed epochs, so an arbitrarily long crash storm
   occupies a single slot (extended by an atomic one-word rewrite). *)
let span_capacity = 0xffff

let encode_range ~lo ~hi =
  if hi < lo || hi - lo > span_capacity then invalid_arg "encode_range";
  Int64.of_int ((lo lsl 16) lor (hi - lo))

let decode_range v =
  let v = Int64.to_int v in
  let lo = v lsr 16 in
  (lo, lo + (v land 0xffff))

let write_slot t i v =
  let slot = Nvm.Layout.failed_epoch_slot i in
  Nvm.Region.write_i64 t.region slot v;
  Nvm.Region.clwb t.region slot;
  Nvm.Region.sfence t.region

let write_count t n =
  Nvm.Region.write_i64 t.region Nvm.Layout.off_failed_count (Int64.of_int n);
  Nvm.Region.clwb t.region Nvm.Layout.off_failed_count;
  Nvm.Region.sfence t.region

let add_range_volatile t (lo, hi) =
  for e = lo to hi do
    Hashtbl.replace t.failed e ()
  done

let load_failed_set t =
  Hashtbl.reset t.failed;
  t.ranges <- [];
  let n =
    Int64.to_int (Nvm.Region.read_i64 t.region Nvm.Layout.off_failed_count)
  in
  if n < 0 || n > Nvm.Layout.max_failed_epochs then
    failwith "Manager: corrupt failed-epoch count";
  for i = 0 to n - 1 do
    let r =
      decode_range (Nvm.Region.read_i64 t.region (Nvm.Layout.failed_epoch_slot i))
    in
    t.ranges <- t.ranges @ [ r ];
    add_range_volatile t r
  done

let failed_slots t = List.length t.ranges

let sweep_floor t =
  Int64.to_int (Nvm.Region.read_i64 t.region Nvm.Layout.off_sweep_floor)

let note_swept t ~floor =
  Nvm.Region.write_i64 t.region Nvm.Layout.off_sweep_floor
    (Int64.of_int floor);
  Nvm.Region.clwb t.region Nvm.Layout.off_sweep_floor;
  Nvm.Region.sfence t.region

(* Drop ranges made dead by a completed eager sweep: every node was
   re-stamped at the sweep's recovery marker, so no InCLL low-epoch can
   alias an epoch below it and those ranges can never matter again. A
   crash mid-rewrite leaves the old count with a prefix of live ranges
   rewritten over their old positions — a superset of the live set, which
   is always safe (being failed is conservative). *)
let gc_failed t =
  let floor = sweep_floor t in
  let live = List.filter (fun (_, hi) -> hi >= floor) t.ranges in
  if List.length live < List.length t.ranges then begin
    List.iteri (fun i (lo, hi) -> write_slot t i (encode_range ~lo ~hi)) live;
    write_count t (List.length live);
    t.ranges <- live;
    Hashtbl.reset t.failed;
    List.iter (add_range_volatile t) live
  end

(* Durable append: persist the new entry strictly before the count that
   makes it visible, so a crash mid-append can only lose the append.
   Consecutive epochs (the crash-during-recovery storm) extend the last
   range in place instead of consuming a slot; when slots do run out,
   garbage-collect ranges below the sweep floor before giving up. *)
let append_failed t e =
  if Hashtbl.mem t.failed e then ()
  else begin
    let n = List.length t.ranges in
    let last = if n = 0 then None else Some (List.nth t.ranges (n - 1)) in
    match last with
    | Some (lo, hi) when e = hi + 1 && e - lo <= span_capacity ->
        (* One-word rewrite: store-atomic under PCSO, so the slot always
           decodes to either the old or the extended range. *)
        write_slot t (n - 1) (encode_range ~lo ~hi:e);
        t.ranges <-
          List.mapi (fun i r -> if i = n - 1 then (lo, e) else r) t.ranges;
        Hashtbl.replace t.failed e ()
    | _ ->
        let n =
          if n >= Nvm.Layout.max_failed_epochs then begin
            gc_failed t;
            List.length t.ranges
          end
          else n
        in
        if n >= Nvm.Layout.max_failed_epochs then raise Failed_set_full;
        write_slot t n (encode_range ~lo:e ~hi:e);
        write_count t (n + 1);
        t.ranges <- t.ranges @ [ (e, e) ];
        Hashtbl.replace t.failed e ()
  end

let clear_failed t =
  Nvm.Region.write_i64 t.region Nvm.Layout.off_failed_count 0L;
  Nvm.Region.clwb t.region Nvm.Layout.off_failed_count;
  Nvm.Region.sfence t.region;
  Hashtbl.reset t.failed;
  t.ranges <- []

let observables region =
  let m = Nvm.Region.metrics region in
  ( Obs.Registry.histogram m "epoch.len_ns",
    Obs.Registry.histogram m "epoch.dirty_lines",
    Obs.Registry.counter m "epoch.advances",
    Nvm.Region.series region "epoch.dirty_lines",
    Nvm.Region.series region "epoch.pending_wb" )

let create ?(epoch_len_ns = default_epoch_len_ns) region =
  Nvm.Superblock.check region;
  let h_epoch_len, h_epoch_dirty, c_advances, s_dirty, s_pending =
    observables region
  in
  let t =
    {
      region;
      epoch_len_ns;
      current = 2;
      first_epoch_of_run = 2;
      crashed_epoch = None;
      epoch_start_ns = Nvm.Stats.sim_ns (Nvm.Region.stats region);
      advances = 0;
      failed = Hashtbl.create 8;
      ranges = [];
      subscribers = [];
      h_epoch_len;
      h_epoch_dirty;
      c_advances;
      s_dirty;
      s_pending;
    }
  in
  write_durable_epoch t 2;
  Obs.Stall.set_epoch (Nvm.Region.stalls region) t.current;
  t.epoch_start_ns <- Nvm.Stats.sim_ns (Nvm.Region.stats region);
  t

let open_after_crash ?(epoch_len_ns = default_epoch_len_ns) region =
  Nvm.Superblock.check region;
  let crashed = read_durable_epoch region in
  if crashed < 2 then failwith "Manager: corrupt durable epoch index";
  let h_epoch_len, h_epoch_dirty, c_advances, s_dirty, s_pending =
    observables region
  in
  let t =
    {
      region;
      epoch_len_ns;
      current = crashed + 1;  (* the recovery-marker epoch *)
      first_epoch_of_run = crashed + 1;
      crashed_epoch = Some crashed;
      epoch_start_ns = Nvm.Stats.sim_ns (Nvm.Region.stats region);
      advances = 0;
      failed = Hashtbl.create 8;
      ranges = [];
      subscribers = [];
      h_epoch_len;
      h_epoch_dirty;
      c_advances;
      s_dirty;
      s_pending;
    }
  in
  load_failed_set t;
  append_failed t crashed;
  (* Enter the recovery-marker epoch durably: if recovery itself crashes,
     the marker epoch is added to the failed set by the next run and the
     (idempotent) recovery simply repeats. *)
  write_durable_epoch t t.current;
  Obs.Stall.set_epoch (Nvm.Region.stalls region) t.current;
  t

let advance t =
  (* Fault-injection hooks: [Epoch_advance] kills the checkpoint before
     anything was flushed; [Post_checkpoint] (below) kills it after the
     new durable epoch is fenced but before the subscribers (limbo
     merge, log truncation) have run in the new epoch. *)
  Chaos.Plan.fire Chaos.Site.Epoch_advance;
  let now = Nvm.Stats.sim_ns (Nvm.Region.stats t.region) in
  Obs.Histogram.record t.h_epoch_len (now -. t.epoch_start_ns);
  let dirty = Nvm.Region.dirty_line_count t.region in
  Obs.Histogram.record t.h_epoch_dirty (float_of_int dirty);
  (* The Figure-6-shaped boundary samples: occupancy just before the
     flush, one point per checkpoint. *)
  Obs.Series.sample t.s_dirty ~ts_ns:now ~value:(float_of_int dirty);
  Obs.Series.sample t.s_pending ~ts_ns:now
    ~value:(float_of_int (Nvm.Region.pending_wb_count t.region));
  incr t.c_advances;
  Nvm.Region.trace_event t.region
    (Obs.Trace.Epoch_advance { epoch = t.current + 1 });
  let spans = Nvm.Region.spans t.region in
  Obs.Span.begin_ spans "checkpoint";
  (* The stop-the-world window: every in-flight op waits for the flush
     and the durable-epoch fence. The scope swallows the wbinvd/sfence
     leaf recordings; subscribers (limbo merge, log truncation) run in
     the new epoch and attribute their own stalls. *)
  let stalls = Nvm.Region.stalls t.region in
  Obs.Stall.enter stalls Obs.Stall.Epoch_advance ~now;
  Nvm.Region.wbinvd t.region;
  write_durable_epoch t (t.current + 1);
  Obs.Stall.exit stalls ~now:(Nvm.Stats.sim_ns (Nvm.Region.stats t.region));
  ignore (Obs.Span.end_ spans "checkpoint" : float);
  t.current <- t.current + 1;
  t.advances <- t.advances + 1;
  Obs.Stall.set_epoch stalls t.current;
  t.epoch_start_ns <- Nvm.Stats.sim_ns (Nvm.Region.stats t.region);
  Chaos.Plan.fire Chaos.Site.Post_checkpoint;
  run_subscribers t

let maybe_advance t =
  let now = Nvm.Stats.sim_ns (Nvm.Region.stats t.region) in
  if now -. t.epoch_start_ns >= t.epoch_len_ns then begin
    advance t;
    true
  end
  else false

let lower16 e = e land 0xffff
let higher e = e lsr 16
let combine ~higher ~lower16 = (higher lsl 16) lor (lower16 land 0xffff)
