exception Failed_set_full

type t = {
  region : Nvm.Region.t;
  epoch_len_ns : float;
  (* Adaptive-scheduler knobs, copied from the region's [Nvm.Config]
     (DESIGN.md §15). [sweep_budget > 0] selects the incremental-sweep
     drain; 0 is the paper's stop-the-world wbinvd. *)
  sweep_budget : int;
  dirty_trigger : int;  (* advance early at this many dirty lines; 0 = off *)
  log_trigger_frac : float;  (* advance early at this extlog fill; 0. = off *)
  mutable log_pressure : unit -> float;  (* extlog fill fraction, 0..1 *)
  mutable sweeping : bool;  (* a boundary is recorded, quanta in flight *)
  mutable current : int;
  mutable first_epoch_of_run : int;
  mutable crashed_epoch : int option;
  mutable epoch_start_ns : float;
  mutable advances : int;
  failed : (int, unit) Hashtbl.t;
  mutable ranges : (int * int) list;  (* durable failed-set slots, in order *)
  mutable subscribers : (unit -> unit) list;  (* reversed *)
  h_epoch_len : Obs.Histogram.t;  (* completed epoch lengths, sim ns *)
  h_epoch_dirty : Obs.Histogram.t;  (* dirty lines flushed per checkpoint *)
  c_advances : int ref;  (* "epoch.advances" registry counter *)
  c_adv_timer : int ref;  (* boundaries started by the period timer *)
  c_adv_dirty : int ref;  (* boundaries started by dirty-line pressure *)
  c_adv_log : int ref;  (* boundaries started by extlog pressure *)
  s_dirty : Obs.Series.t;  (* dirty-line occupancy at each boundary *)
  s_pending : Obs.Series.t;  (* pending write-back depth at each boundary *)
}

let default_epoch_len_ns = 64.0e6 (* 64 ms, §4 *)

let region t = t.region
let current t = t.current
let first_epoch_of_run t = t.first_epoch_of_run
let crashed_epoch t = t.crashed_epoch
let is_failed t e = Hashtbl.mem t.failed e
let failed_count t = Hashtbl.length t.failed
let epoch_len_ns t = t.epoch_len_ns
let epochs_elapsed t = t.advances
let epoch_start_ns t = t.epoch_start_ns

let failed_list t =
  Hashtbl.fold (fun e () acc -> e :: acc) t.failed [] |> List.sort compare

let subscribe_post_advance t f = t.subscribers <- f :: t.subscribers

let run_subscribers t = List.iter (fun f -> f ()) (List.rev t.subscribers)

let write_durable_epoch t e =
  Nvm.Region.write_i64 t.region Nvm.Layout.off_durable_epoch (Int64.of_int e);
  Nvm.Region.clwb t.region Nvm.Layout.off_durable_epoch;
  Nvm.Region.sfence t.region

let read_durable_epoch region =
  Int64.to_int (Nvm.Region.read_i64 region Nvm.Layout.off_durable_epoch)

(* Each durable slot packs a range of consecutive failed epochs as
   [lo * 2^16 + (hi - lo)]: repeated crash-during-recovery produces
   strictly consecutive failed epochs, so an arbitrarily long crash storm
   occupies a single slot (extended by an atomic one-word rewrite). *)
let span_capacity = 0xffff

let encode_range ~lo ~hi =
  if hi < lo || hi - lo > span_capacity then invalid_arg "encode_range";
  Int64.of_int ((lo lsl 16) lor (hi - lo))

let decode_range v =
  let v = Int64.to_int v in
  let lo = v lsr 16 in
  (lo, lo + (v land 0xffff))

let write_slot t i v =
  let slot = Nvm.Layout.failed_epoch_slot i in
  Nvm.Region.write_i64 t.region slot v;
  Nvm.Region.clwb t.region slot;
  Nvm.Region.sfence t.region

let write_count t n =
  Nvm.Region.write_i64 t.region Nvm.Layout.off_failed_count (Int64.of_int n);
  Nvm.Region.clwb t.region Nvm.Layout.off_failed_count;
  Nvm.Region.sfence t.region

let add_range_volatile t (lo, hi) =
  for e = lo to hi do
    Hashtbl.replace t.failed e ()
  done

let load_failed_set t =
  Hashtbl.reset t.failed;
  t.ranges <- [];
  let n =
    Int64.to_int (Nvm.Region.read_i64 t.region Nvm.Layout.off_failed_count)
  in
  if n < 0 || n > Nvm.Layout.max_failed_epochs then
    failwith "Manager: corrupt failed-epoch count";
  for i = 0 to n - 1 do
    let r =
      decode_range (Nvm.Region.read_i64 t.region (Nvm.Layout.failed_epoch_slot i))
    in
    t.ranges <- t.ranges @ [ r ];
    add_range_volatile t r
  done

let failed_slots t = List.length t.ranges

let sweep_floor t =
  Int64.to_int (Nvm.Region.read_i64 t.region Nvm.Layout.off_sweep_floor)

let note_swept t ~floor =
  Nvm.Region.write_i64 t.region Nvm.Layout.off_sweep_floor
    (Int64.of_int floor);
  Nvm.Region.clwb t.region Nvm.Layout.off_sweep_floor;
  Nvm.Region.sfence t.region

(* Drop ranges made dead by a completed eager sweep: every node was
   re-stamped at the sweep's recovery marker, so no InCLL low-epoch can
   alias an epoch below it and those ranges can never matter again. A
   crash mid-rewrite leaves the old count with a prefix of live ranges
   rewritten over their old positions — a superset of the live set, which
   is always safe (being failed is conservative). *)
let gc_failed t =
  let floor = sweep_floor t in
  let live = List.filter (fun (_, hi) -> hi >= floor) t.ranges in
  if List.length live < List.length t.ranges then begin
    List.iteri (fun i (lo, hi) -> write_slot t i (encode_range ~lo ~hi)) live;
    write_count t (List.length live);
    t.ranges <- live;
    Hashtbl.reset t.failed;
    List.iter (add_range_volatile t) live
  end

(* Durable append: persist the new entry strictly before the count that
   makes it visible, so a crash mid-append can only lose the append.
   Consecutive epochs (the crash-during-recovery storm) extend the last
   range in place instead of consuming a slot; when slots do run out,
   garbage-collect ranges below the sweep floor before giving up. *)
let append_failed t e =
  if Hashtbl.mem t.failed e then ()
  else begin
    let n = List.length t.ranges in
    let last = if n = 0 then None else Some (List.nth t.ranges (n - 1)) in
    match last with
    | Some (lo, hi) when e = hi + 1 && e - lo <= span_capacity ->
        (* One-word rewrite: store-atomic under PCSO, so the slot always
           decodes to either the old or the extended range. *)
        write_slot t (n - 1) (encode_range ~lo ~hi:e);
        t.ranges <-
          List.mapi (fun i r -> if i = n - 1 then (lo, e) else r) t.ranges;
        Hashtbl.replace t.failed e ()
    | _ ->
        let n =
          if n >= Nvm.Layout.max_failed_epochs then begin
            gc_failed t;
            List.length t.ranges
          end
          else n
        in
        if n >= Nvm.Layout.max_failed_epochs then raise Failed_set_full;
        write_slot t n (encode_range ~lo:e ~hi:e);
        write_count t (n + 1);
        t.ranges <- t.ranges @ [ (e, e) ];
        Hashtbl.replace t.failed e ()
  end

let clear_failed t =
  Nvm.Region.write_i64 t.region Nvm.Layout.off_failed_count 0L;
  Nvm.Region.clwb t.region Nvm.Layout.off_failed_count;
  Nvm.Region.sfence t.region;
  Hashtbl.reset t.failed;
  t.ranges <- []

let observables region =
  let m = Nvm.Region.metrics region in
  ( Obs.Registry.histogram m "epoch.len_ns",
    Obs.Registry.histogram m "epoch.dirty_lines",
    Obs.Registry.counter m "epoch.advances",
    Obs.Registry.counter m "epoch.advance.timer",
    Obs.Registry.counter m "epoch.advance.pressure_dirty",
    Obs.Registry.counter m "epoch.advance.pressure_log",
    Nvm.Region.series region "epoch.dirty_lines",
    Nvm.Region.series region "epoch.pending_wb" )

let no_log_pressure () = 0.0

let scheduler_knobs region ~epoch_len_ns =
  let cfg = Nvm.Region.config region in
  let epoch_len_ns =
    match cfg.Nvm.Config.policy with
    | Nvm.Config.Rto -> epoch_len_ns /. Nvm.Config.rto_epoch_divisor
    | Nvm.Config.Throughput | Nvm.Config.Latency -> epoch_len_ns
  in
  ( epoch_len_ns,
    cfg.Nvm.Config.sweep_budget_lines,
    cfg.Nvm.Config.dirty_trigger_lines,
    cfg.Nvm.Config.log_trigger_frac )

let create ?(epoch_len_ns = default_epoch_len_ns) region =
  Nvm.Superblock.check region;
  let h_epoch_len, h_epoch_dirty, c_advances, c_adv_timer, c_adv_dirty,
      c_adv_log, s_dirty, s_pending =
    observables region
  in
  let epoch_len_ns, sweep_budget, dirty_trigger, log_trigger_frac =
    scheduler_knobs region ~epoch_len_ns
  in
  let t =
    {
      region;
      epoch_len_ns;
      sweep_budget;
      dirty_trigger;
      log_trigger_frac;
      log_pressure = no_log_pressure;
      sweeping = false;
      current = 2;
      first_epoch_of_run = 2;
      crashed_epoch = None;
      epoch_start_ns = Nvm.Stats.sim_ns (Nvm.Region.stats region);
      advances = 0;
      failed = Hashtbl.create 8;
      ranges = [];
      subscribers = [];
      h_epoch_len;
      h_epoch_dirty;
      c_advances;
      c_adv_timer;
      c_adv_dirty;
      c_adv_log;
      s_dirty;
      s_pending;
    }
  in
  write_durable_epoch t 2;
  Obs.Stall.set_epoch (Nvm.Region.stalls region) t.current;
  t.epoch_start_ns <- Nvm.Stats.sim_ns (Nvm.Region.stats region);
  t

let open_after_crash ?(epoch_len_ns = default_epoch_len_ns) region =
  Nvm.Superblock.check region;
  let crashed = read_durable_epoch region in
  if crashed < 2 then failwith "Manager: corrupt durable epoch index";
  let h_epoch_len, h_epoch_dirty, c_advances, c_adv_timer, c_adv_dirty,
      c_adv_log, s_dirty, s_pending =
    observables region
  in
  let epoch_len_ns, sweep_budget, dirty_trigger, log_trigger_frac =
    scheduler_knobs region ~epoch_len_ns
  in
  let t =
    {
      region;
      epoch_len_ns;
      sweep_budget;
      dirty_trigger;
      log_trigger_frac;
      log_pressure = no_log_pressure;
      sweeping = false;
      current = crashed + 1;  (* the recovery-marker epoch *)
      first_epoch_of_run = crashed + 1;
      crashed_epoch = Some crashed;
      epoch_start_ns = Nvm.Stats.sim_ns (Nvm.Region.stats region);
      advances = 0;
      failed = Hashtbl.create 8;
      ranges = [];
      subscribers = [];
      h_epoch_len;
      h_epoch_dirty;
      c_advances;
      c_adv_timer;
      c_adv_dirty;
      c_adv_log;
      s_dirty;
      s_pending;
    }
  in
  load_failed_set t;
  append_failed t crashed;
  (* Enter the recovery-marker epoch durably: if recovery itself crashes,
     the marker epoch is added to the failed set by the next run and the
     (idempotent) recovery simply repeats. *)
  write_durable_epoch t t.current;
  Obs.Stall.set_epoch (Nvm.Region.stalls region) t.current;
  t

(* Record the epoch boundary: fault hook, boundary observability, the
   open "checkpoint" span. Under the stop-the-world scheduler this is
   immediately followed by [finalize]; under the incremental sweep it
   starts the sweep window and quanta run between ops until the dirty
   set is drained. *)
let record_boundary t =
  (* Fault-injection hooks: [Epoch_advance] kills the checkpoint before
     anything was flushed; [Sweep_partial] (in [sweep_step]) kills it
     mid-sweep with part of the epoch persisted; [Post_checkpoint] (in
     [finalize]) kills it after the new durable epoch is fenced but
     before the subscribers (limbo merge, log truncation) have run in
     the new epoch. *)
  Chaos.Plan.fire Chaos.Site.Epoch_advance;
  let now = Nvm.Stats.sim_ns (Nvm.Region.stats t.region) in
  Obs.Histogram.record t.h_epoch_len (now -. t.epoch_start_ns);
  let dirty = Nvm.Region.dirty_line_count t.region in
  Obs.Histogram.record t.h_epoch_dirty (float_of_int dirty);
  (* The Figure-6-shaped boundary samples: occupancy just before the
     flush, one point per checkpoint. *)
  Obs.Series.sample t.s_dirty ~ts_ns:now ~value:(float_of_int dirty);
  Obs.Series.sample t.s_pending ~ts_ns:now
    ~value:(float_of_int (Nvm.Region.pending_wb_count t.region));
  incr t.c_advances;
  Nvm.Region.trace_event t.region
    (Obs.Trace.Epoch_advance { epoch = t.current + 1 });
  Obs.Span.begin_ (Nvm.Region.spans t.region) "checkpoint"

(* Complete the checkpoint whose boundary [record_boundary] recorded.

   Ordering invariant (the durability argument of §3/§4): the store to
   the durable epoch word is ISSUED only after every epoch-[e] line —
   including the failed-set slots and the sweep-floor word at
   [Layout.off_sweep_floor] — has been committed to the persisted image
   by the drain. That issue-after-drain ordering is what makes the word
   trustworthy: under PCSO a crash may persist the word's pending store
   even before its own clwb+sfence complete, so the fence after the word
   does NOT order it against the data flush — it only bounds when
   recovery observes [e+1] rather than [e] (both are complete
   checkpoints, hence both are legal recovery points). The asserts spell
   the invariant out for the incremental sweep, where the drain is
   spread over many quanta instead of one wbinvd. *)
let finalize t =
  let stalls = Nvm.Region.stalls t.region in
  (* The stop-the-world remainder: every in-flight op waits for the
     drain and the durable-epoch fence. The scope swallows the
     wbinvd/sweep/sfence leaf recordings; subscribers (limbo merge, log
     truncation) run in the new epoch and attribute their own stalls.
     Under the incremental sweep only the final drain remainder (usually
     zero lines) and the epoch-word fence land here — the bulk of the
     flush was already attributed to [clwb_sweep] quanta. *)
  Obs.Stall.enter stalls Obs.Stall.Epoch_advance
    ~now:(Nvm.Stats.sim_ns (Nvm.Region.stats t.region));
  if t.sweep_budget > 0 then begin
    while Nvm.Region.dirty_line_count t.region > 0 do
      ignore (Nvm.Region.flush_some t.region ~budget_lines:t.sweep_budget : int)
    done;
    (* Mirror wbinvd's post-flush state: every line is committed, so the
       pending write-back set holds only stale (already-clean) entries. *)
    Nvm.Region.clear_pending_wb t.region;
    assert (Nvm.Region.dirty_line_count t.region = 0);
    assert (
      not
        (Nvm.Region.is_dirty_line t.region
           (Nvm.Region.line_of_addr Nvm.Layout.off_sweep_floor)))
  end
  else Nvm.Region.wbinvd t.region;
  write_durable_epoch t (t.current + 1);
  Obs.Stall.exit stalls ~now:(Nvm.Stats.sim_ns (Nvm.Region.stats t.region));
  ignore (Obs.Span.end_ (Nvm.Region.spans t.region) "checkpoint" : float);
  t.sweeping <- false;
  t.current <- t.current + 1;
  t.advances <- t.advances + 1;
  Obs.Stall.set_epoch stalls t.current;
  t.epoch_start_ns <- Nvm.Stats.sim_ns (Nvm.Region.stats t.region);
  Chaos.Plan.fire Chaos.Site.Post_checkpoint;
  run_subscribers t

let advance t =
  (* Forced synchronous checkpoint (extlog wrap, recovery, explicit
     callers): if a sweep is mid-flight, drain and fence it now rather
     than starting a second boundary. *)
  if not t.sweeping then record_boundary t;
  finalize t

(* One interleaved sweep quantum; returns true iff this quantum drained
   the dirty set and fenced the boundary. *)
let sweep_step t =
  Chaos.Plan.fire Chaos.Site.Sweep_partial;
  let remaining = Nvm.Region.flush_some t.region ~budget_lines:t.sweep_budget in
  if remaining = 0 then begin
    finalize t;
    true
  end
  else false

let sweeping t = t.sweeping

let set_log_pressure t f = t.log_pressure <- f

let maybe_advance t =
  let now = Nvm.Stats.sim_ns (Nvm.Region.stats t.region) in
  if t.sweeping then
    (* Convergence guard: ops keep dirtying lines while the sweep runs;
       the budget normally outpaces them, but if a sweep somehow lingers
       a whole extra period past the boundary it is drained
       synchronously rather than left open forever. *)
    if now -. t.epoch_start_ns >= 2.0 *. t.epoch_len_ns then begin
      finalize t;
      true
    end
    else sweep_step t
  else begin
    let trigger =
      if now -. t.epoch_start_ns >= t.epoch_len_ns then Some t.c_adv_timer
      else if
        t.dirty_trigger > 0
        && Nvm.Region.dirty_line_count t.region >= t.dirty_trigger
      then Some t.c_adv_dirty
      else if t.log_trigger_frac > 0.0 && t.log_pressure () >= t.log_trigger_frac
      then Some t.c_adv_log
      else None
    in
    match trigger with
    | None -> false
    | Some cause ->
        incr cause;
        if t.sweep_budget > 0 then begin
          record_boundary t;
          t.sweeping <- true;
          sweep_step t
        end
        else begin
          advance t;
          true
        end
  end

let lower16 e = e land 0xffff
let higher e = e lsr 16
let combine ~higher ~lower16 = (higher lsl 16) lor (lower16 land 0xffff)
