(** Fine-grained checkpointing (§3, §4): epochs, the per-epoch global cache
    flush, the durable epoch index, and the durable failed-epoch set.

    Execution is partitioned into epochs (64 simulated milliseconds by
    default, like the paper's Masstree reclamation interval). Advancing from
    epoch [e] to [e+1] is the checkpoint:

    + drain — every modification of epoch [e] reaches NVM, either via the
      paper's stop-the-world [wbinvd] or via bounded incremental
      [Region.flush_some] quanta interleaved with op execution (the
      adaptive scheduler of DESIGN.md §15, selected by
      [Nvm.Config.policy]);
    + the durable epoch index is set to [e+1] and flushed;
    + subscribers run in the new epoch (external-log truncation, allocator
      limbo merging).

    Ordering: the epoch-word store is {e issued} strictly after the drain
    completes — that issue ordering, not the fence that follows the word,
    is what makes the index trustworthy. Under PCSO a crash can persist
    an issued store before its clwb+sfence retire, so the word's fence
    cannot order it against the data flush; it only bounds when recovery
    observes [e+1] instead of [e] (both are completed checkpoints, hence
    both legal recovery points). The incremental sweep preserves the same
    invariant — the word is issued only once the dirty set (including the
    failed-epoch slots and the sweep-floor word) is fully committed, and
    [advance] asserts it — so a crash mid-sweep recovers exactly like a
    crash mid-wbinvd: durable index still [e], epoch [e] rolled back.

    If a crash happens while the durable index reads [f], recovery adds [f]
    to the durable failed-epoch set and rolls the structures back to the
    beginning of [f] — i.e. to the most recently completed checkpoint.

    Epoch numbering: 0 and 1 are reserved (0 = never-used, 1 = pre-history);
    a fresh system starts executing in epoch 2. After a crash of epoch [f],
    [f+1] is the {e recovery marker} epoch ([first_epoch_of_run], Listing
    4's [currExecEpoch]): lazily recovered nodes are stamped with it, and
    normal execution resumes in [f+2] via a checkpoint at the end of
    recovery. *)

type t

exception Failed_set_full
(** The durable failed-epoch set is out of slots even after garbage
    collection. Should be unreachable in practice: consecutive failed
    epochs (repeated crash-during-recovery) share one range slot, and
    slots below the sweep floor are reclaimed on demand — overflow needs
    [max_failed_epochs] {e non}-consecutive crashes with no completed
    eager sweep in between, which the eager-sweep trigger prevents. *)

val create : ?epoch_len_ns:float -> Nvm.Region.t -> t
(** Initialise epoch state on a freshly formatted region and durably set the
    epoch index to 2. *)

val open_after_crash : ?epoch_len_ns:float -> Nvm.Region.t -> t
(** Attach to a region that was running when it crashed: load the failed
    set, durably add the crashed epoch to it, and durably enter the
    recovery-marker epoch (so a crash during recovery fails the marker
    epoch and recovery re-runs). Consecutive crashes extend the last
    failed range in place, so crash storms of any length fit the set. *)

val region : t -> Nvm.Region.t
val current : t -> int
(** The epoch new modifications belong to. *)

val first_epoch_of_run : t -> int
(** Listing 4's [currExecEpoch]: nodes whose [nodeEpoch] is below this may
    need lazy recovery. *)

val crashed_epoch : t -> int option
(** After {!open_after_crash}, the epoch that was rolled back ([None] for a
    fresh system). The external log replays exactly this epoch's entries. *)

val is_failed : t -> int -> bool

val failed_count : t -> int
(** Number of failed {e epochs} (not slots). *)

val failed_slots : t -> int
(** Number of occupied durable range slots, out of
    [Nvm.Layout.max_failed_epochs]; the eager-sweep pressure signal. *)

val failed_list : t -> int list

val advance : t -> unit
(** Perform a checkpoint now, synchronously. If an incremental sweep is
    mid-flight (see {!maybe_advance}), its remainder is drained and the
    same boundary fenced — a forced advance (extlog wrap, recovery) never
    starts a second boundary. *)

val maybe_advance : t -> bool
(** The adaptive scheduler's per-op hook; returns whether the epoch
    advanced (a completed, fenced checkpoint — in-flight sweep quanta
    return [false]).

    Under the stop-the-world drain ([sweep_budget_lines = 0]):
    checkpoint iff the simulated clock has moved [epoch_len_ns] past the
    current epoch's start (plus the pressure triggers below), exactly as
    before.

    Under the incremental sweep ([sweep_budget_lines > 0]): a trigger —
    period elapsed, [dirty_trigger_lines] dirty lines, or the external
    log [log_trigger_frac] full — records the epoch boundary and starts
    the sweep; each subsequent call runs one bounded
    [Region.flush_some] quantum, so no single stall exceeds the budget;
    the quantum that drains the dirty set fences the durable epoch word
    and completes the checkpoint. A sweep that lingers a whole extra
    period is completed synchronously (convergence guard). *)

val sweeping : t -> bool
(** Whether a boundary is recorded with its sweep still in flight. *)

val set_log_pressure : t -> (unit -> float) -> unit
(** Provide the external-log fill fraction (0..1) consulted by the
    [log_trigger_frac] pressure trigger ([Incll.System] wires this to
    [Extlog.Log.used / capacity]; default constant 0). *)

val epoch_len_ns : t -> float
val epochs_elapsed : t -> int
(** Number of [advance] calls so far (for reporting flush frequency). *)

val epoch_start_ns : t -> float
(** Simulated time at which the current epoch began. *)

val subscribe_post_advance : t -> (unit -> unit) -> unit
(** [f] runs inside every new epoch immediately after the checkpoint, and
    once at the end of [open_after_crash]-driven recovery. Registration
    order is preserved. *)

val clear_failed : t -> unit
(** Durably empty the failed-epoch set. Only legal after an eager recovery
    sweep has re-stamped every node (no lazy restores may remain). *)

val note_swept : t -> floor:int -> unit
(** Durably record that an eager sweep re-stamped every node at epoch
    [floor] (the sweep's recovery marker). Failed ranges entirely below
    [floor] become garbage and are collected when the set runs out of
    slots. *)

val sweep_floor : t -> int
(** The durable floor last recorded by {!note_swept} (0 = never swept). *)

(** {1 Epoch-number encodings used by the InCLL words (§4.1.3)} *)

val lower16 : int -> int
val higher : int -> int
val combine : higher:int -> lower16:int -> int
