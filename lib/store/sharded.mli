(** Range-sharded multi-tree store: the concurrency substitute documented
    in DESIGN.md §1.

    The paper's Masstree uses optimistic concurrency control inside one
    tree; this reproduction instead range-partitions the key space over
    [n] independent durable systems, one per domain. Each shard owns its
    region, cache simulation, epoch clock and external log, so the
    persistence machinery — the paper's contribution — runs unchanged and
    unsynchronised inside every shard.

    Sharding is by the top bits of the first 8-byte key slice; scrambled
    benchmark keys spread uniformly. Shard ranges are ordered, so range
    scans concatenate per-shard scans.

    The store itself is a sequential facade; parallel benchmarks spawn one
    domain per shard and drive the shards directly (see
    [Bench_harness.Runner]). *)

type t

val create : ?config:Incll.System.config -> Incll.System.variant -> shards:int -> t

val of_system : Incll.System.t -> t
(** Wrap one existing system (e.g. restored from an NVM image) as a
    single-shard store. *)

val of_systems : Incll.System.t list -> t
(** Wrap existing systems (e.g. reattached from per-shard NVM mirrors
    after a process restart — the shards must be in shard order and all
    of one variant) as one store; the next transaction id resumes above
    every shard's durable watermark. *)

val nshards : t -> int
val shard : t -> int -> Incll.System.t
val shard_of_key : t -> string -> int
val variant : t -> Incll.System.variant

val put : t -> key:string -> value:string -> unit
val get : t -> key:string -> string option
val remove : t -> key:string -> bool
val scan : t -> start:string -> n:int -> (string * string) list

val scan_rev : t -> ?bound:string -> n:int -> unit -> (string * string) list
(** Descending scan across shards from the largest key [<= bound]. *)

(** {1 Cross-shard transactions}

    Durable multi-key transactions with two-phase commit. Writes are
    buffered until {!txn_commit} (reads inside the transaction see
    them); commit appends a fenced PREPARE record per participating
    shard, then durably advances the {e coordinator} shard's (lowest
    participating index) txn watermark — the single store-atomic commit
    point — and applies the writes. After any crash, recovery resolves
    surviving PREPAREs against the coordinator's watermark, so the
    transaction is either fully present or fully absent across all
    shards. One transaction at a time (the store is a sequential
    facade). *)

val txn_begin : t -> unit
val txn_active : t -> bool

val txn_id : t -> int option
(** Id of the active transaction (differential harnesses correlate it
    with the durable watermark). *)

val txn_put : t -> key:string -> value:string -> unit
val txn_remove : t -> key:string -> unit

val txn_get : t -> key:string -> string option
(** Read-your-writes lookup: buffered writes shadow the shards. *)

val txn_abort : t -> unit
(** Discard the buffered writes; no shard was touched. *)

val txn_commit : t -> unit
(** Run the two-phase commit described above. An empty transaction
    commits without touching any log. Requires a recoverable variant
    ([Logging] / [Incll]). *)

val advance_epochs : t -> unit
(** Checkpoint every shard (the MT+ "global barrier" analogue). *)

val crash : t -> Util.Rng.t -> unit

val recover : t -> (string * float) list
(** Recover every shard, {e in place}: every alias of [t] observes the
    post-recovery shards (the shard array is mutable state, not a
    functional view). In-doubt transaction records are resolved against
    the coordinator shard's watermark (see the transactions section).
    Returns the per-phase time breakdown of the recovery —
    [Incll.System.recover_stats.phases] summed over shards, in
    simulated ns, in procedure order; the sum of the durations is the
    total simulated recovery time across shards. *)

val metrics : t -> Obs.Registry.t
(** Fresh merged copy of every shard's metric registry. *)

val total_sim_ns : t -> float
(** Sum of per-shard simulated clocks (sequential-work view). *)

val max_sim_ns : t -> float
(** Max over shards (parallel wall-clock view: shards run on their own
    domains). *)

val cardinal : t -> int
