(* A store-level transaction buffers its writes until commit
   (last-write-wins), exactly like the single-system one. *)
type txn_state = { id : int; mutable writes : (string * string option) list }

type t = {
  variant : Incll.System.variant;
  mutable shards : Incll.System.t array;
  mutable active_txn : txn_state option;
  mutable next_txn_id : int;
}

let create ?config variant ~shards =
  if shards <= 0 then invalid_arg "Sharded.create";
  {
    variant;
    shards = Array.init shards (fun _ -> Incll.System.create ?config variant);
    active_txn = None;
    next_txn_id = 1;
  }

let of_system sys =
  {
    variant = Incll.System.variant sys;
    shards = [| sys |];
    active_txn = None;
    next_txn_id = Incll.Txn.watermark (Incll.System.region sys) + 1;
  }

(* Wrap systems recovered elsewhere (e.g. reattached from per-shard NVM
   mirrors after a process restart) as one store. Ids must stay above
   every committed id on any shard, or a reused id would make a later
   in-doubt probe report a stale commit. *)
let of_systems systems =
  if systems = [] then invalid_arg "Sharded.of_systems";
  let shards = Array.of_list systems in
  let variant = Incll.System.variant shards.(0) in
  Array.iter
    (fun s ->
      if Incll.System.variant s <> variant then
        invalid_arg "Sharded.of_systems: mixed variants")
    shards;
  let max_wm =
    Array.fold_left
      (fun acc s -> max acc (Incll.Txn.watermark (Incll.System.region s)))
      0 shards
  in
  { variant; shards; active_txn = None; next_txn_id = max_wm + 1 }

let nshards t = Array.length t.shards
let shard t i = t.shards.(i)
let variant t = t.variant

(* Monotone map from the first key slice to a shard index: multiply the
   top 32 bits by the shard count. *)
let shard_of_key t key =
  let n = Array.length t.shards in
  if n = 1 then 0
  else begin
    let bits = (Masstree.Key.slice_at key ~layer:0).Masstree.Key.bits in
    let top = Int64.to_int (Int64.shift_right_logical bits 32) in
    (top * n) lsr 32
  end

let put t ~key ~value =
  Incll.System.put t.shards.(shard_of_key t key) ~key ~value

let get t ~key = Incll.System.get t.shards.(shard_of_key t key) ~key
let remove t ~key = Incll.System.remove t.shards.(shard_of_key t key) ~key

(* [List.rev_append] that also returns how many elements it moved, so
   each shard hop costs one traversal of its partial result instead of a
   rev_append plus a separate [List.length]. *)
let rec rev_append_count part acc k =
  match part with
  | [] -> (acc, k)
  | x :: tl -> rev_append_count tl (x :: acc) (k + 1)

let scan t ~start ~n =
  let rec gather i start acc need =
    if need <= 0 || i >= Array.length t.shards then List.rev acc
    else begin
      let part = Incll.System.scan t.shards.(i) ~start ~n:need in
      let acc, got = rev_append_count part acc 0 in
      gather (i + 1) "" acc (need - got)
    end
  in
  gather (shard_of_key t start) start [] n

let scan_rev t ?bound ~n () =
  (* Walk shards from the bound's owner downwards. *)
  let start_shard =
    match bound with Some b -> shard_of_key t b | None -> Array.length t.shards - 1
  in
  let rec gather i bound acc need =
    if need <= 0 || i < 0 then List.rev acc
    else begin
      let part = Incll.System.scan_rev t.shards.(i) ?bound ~n:need () in
      let acc, got = rev_append_count part acc 0 in
      gather (i - 1) None acc (need - got)
    end
  in
  gather start_shard bound [] n

(* {1 Cross-shard transactions: two-phase commit}

   Every participating shard gets a fenced PREPARE record carrying its
   slice of the write set; the lowest participating shard index is the
   coordinator, and durably advancing the coordinator's txn watermark is
   the single store-atomic commit point for the whole store. The store
   is sequential, so nothing advances any shard's epoch inside the
   commit window: log headroom is reserved on every participant before
   the first PREPARE, and the writes are applied through the trees
   directly. A shard that crashes with a surviving PREPARE resolves it
   at recovery by probing the coordinator shard's watermark. *)

let txn_active t = Option.is_some t.active_txn
let txn_id t = Option.map (fun txn -> txn.id) t.active_txn

let txn_begin t =
  if txn_active t then failwith "Sharded.txn_begin: transaction already active";
  let id = t.next_txn_id in
  t.next_txn_id <- id + 1;
  t.active_txn <- Some { id; writes = [] }

let active_exn t what =
  match t.active_txn with
  | Some txn -> txn
  | None -> failwith (what ^ ": no active transaction")

let txn_put t ~key ~value =
  let txn = active_exn t "Sharded.txn_put" in
  txn.writes <- (key, Some value) :: txn.writes

let txn_remove t ~key =
  let txn = active_exn t "Sharded.txn_remove" in
  txn.writes <- (key, None) :: txn.writes

let txn_get t ~key =
  let txn = active_exn t "Sharded.txn_get" in
  match List.assoc_opt key txn.writes with
  | Some v -> v
  | None -> get t ~key

let txn_abort t =
  ignore (active_exn t "Sharded.txn_abort" : txn_state);
  t.active_txn <- None

(* Last-write-wins flattening, preserving first-write order. *)
let flatten_writes writes =
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc (key, value) ->
      if Hashtbl.mem seen key then acc
      else begin
        Hashtbl.add seen key ();
        { Incll.Txn.key; value } :: acc
      end)
    [] writes

let shard_ctx s =
  match Incll.System.ctx s with
  | Some ctx -> ctx
  | None -> failwith "Sharded.txn_commit: variant has no logging context"

let txn_commit t =
  let txn = active_exn t "Sharded.txn_commit" in
  t.active_txn <- None;
  let writes = flatten_writes txn.writes in
  if writes <> [] then begin
    let n = Array.length t.shards in
    let groups = Array.make n [] in
    List.iter
      (fun w ->
        let s = shard_of_key t w.Incll.Txn.key in
        groups.(s) <- w :: groups.(s))
      (List.rev writes);
    (* [writes] is oldest-first; the double reversal keeps each group
       oldest-first too. *)
    let participants = ref [] in
    for s = n - 1 downto 0 do
      if groups.(s) <> [] then participants := s :: !participants
    done;
    let participants = !participants in
    let coordinator = List.hd participants in
    (* Reserve on every participant before any record lands, so no
       checkpoint can truncate an already-appended PREPARE. *)
    List.iter
      (fun s ->
        let bytes =
          Incll.Txn.prepare_bytes ~coordinator ~writes:groups.(s)
          + if s = coordinator then Incll.Txn.commit_bytes ~participants
            else 0
        in
        Incll.Txn.reserve (shard_ctx t.shards.(s)) ~bytes)
      participants;
    List.iter
      (fun s ->
        Incll.Txn.append_prepare (shard_ctx t.shards.(s)) ~txn_id:txn.id
          ~coordinator ~writes:groups.(s))
      participants;
    (* The commit point: one fenced store on the coordinator. *)
    Incll.Txn.advance_watermark
      (Incll.System.region t.shards.(coordinator))
      ~txn_id:txn.id;
    (* Informational marker (post-mortem diagnostics; recovery decides
       by watermark alone). *)
    Incll.Txn.append_commit_marker
      (shard_ctx t.shards.(coordinator))
      ~txn_id:txn.id ~participants;
    List.iter
      (fun s ->
        Incll.Txn.apply_committed
          (shard_ctx t.shards.(s))
          (Incll.System.tree t.shards.(s))
          ~txn_id:txn.id ~coordinator groups.(s))
      participants;
    (* The usual per-op epoch cadence, now that the commit window is
       closed: each participant may checkpoint if its epoch is due. *)
    List.iter
      (fun s ->
        match Incll.System.epoch_manager t.shards.(s) with
        | Some em -> ignore (Epoch.Manager.maybe_advance em : bool)
        | None -> ())
      participants
  end

let advance_epochs t = Array.iter Incll.System.advance_epoch t.shards
let crash t rng = Array.iter (fun s -> Incll.System.crash s rng) t.shards

(* In place: [shards] is mutable, so the old `{t with shards = ...}` copy
   left any alias of [t] still pointing at the pre-recovery shard array. *)
let recover t =
  (* In-doubt PREPAREs probe the coordinator shard's watermark. Regions
     persist across recovery and the watermark word is fenced at commit,
     so the probe is valid even for shards not yet re-attached. *)
  let regions = Array.map Incll.System.region t.shards in
  let txn_probe ~coordinator ~txn_id =
    coordinator >= 0
    && coordinator < Array.length regions
    && txn_id <= Incll.Txn.watermark regions.(coordinator)
  in
  t.shards <- Array.map (Incll.System.recover ~txn_probe) t.shards;
  t.active_txn <- None;
  t.next_txn_id <-
    1
    + Array.fold_left
        (fun a r -> max a (Incll.Txn.watermark r))
        (t.next_txn_id - 1) regions;
  (* Merge the shards' per-phase breakdowns: sum durations per phase,
     phase order taken from first appearance (shards recover through the
     same procedure, so that is the procedure order). *)
  let totals = Hashtbl.create 8 in
  let order = ref [] in
  Array.iter
    (fun s ->
      match Incll.System.last_recover_stats s with
      | Some st ->
          List.iter
            (fun (name, d) ->
              if not (Hashtbl.mem totals name) then order := name :: !order;
              Hashtbl.replace totals name
                (d +. try Hashtbl.find totals name with Not_found -> 0.0))
            st.Incll.System.phases
      | None -> ())
    t.shards;
  List.rev_map (fun name -> (name, Hashtbl.find totals name)) !order

let metrics t =
  Obs.Registry.merged
    (Array.to_list (Array.map Incll.System.metrics t.shards))

let sim_ns s = Nvm.Stats.sim_ns (Nvm.Region.stats (Incll.System.region s))

let total_sim_ns t = Array.fold_left (fun a s -> a +. sim_ns s) 0.0 t.shards

let max_sim_ns t = Array.fold_left (fun a s -> Float.max a (sim_ns s)) 0.0 t.shards

let cardinal t =
  Array.fold_left
    (fun a s -> a + Masstree.Tree.cardinal (Incll.System.tree s))
    0 t.shards
