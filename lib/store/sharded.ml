type t = {
  variant : Incll.System.variant;
  mutable shards : Incll.System.t array;
}

let create ?config variant ~shards =
  if shards <= 0 then invalid_arg "Sharded.create";
  {
    variant;
    shards = Array.init shards (fun _ -> Incll.System.create ?config variant);
  }

let of_system sys =
  { variant = Incll.System.variant sys; shards = [| sys |] }

let nshards t = Array.length t.shards
let shard t i = t.shards.(i)
let variant t = t.variant

(* Monotone map from the first key slice to a shard index: multiply the
   top 32 bits by the shard count. *)
let shard_of_key t key =
  let n = Array.length t.shards in
  if n = 1 then 0
  else begin
    let bits = (Masstree.Key.slice_at key ~layer:0).Masstree.Key.bits in
    let top = Int64.to_int (Int64.shift_right_logical bits 32) in
    (top * n) lsr 32
  end

let put t ~key ~value =
  Incll.System.put t.shards.(shard_of_key t key) ~key ~value

let get t ~key = Incll.System.get t.shards.(shard_of_key t key) ~key
let remove t ~key = Incll.System.remove t.shards.(shard_of_key t key) ~key

(* [List.rev_append] that also returns how many elements it moved, so
   each shard hop costs one traversal of its partial result instead of a
   rev_append plus a separate [List.length]. *)
let rec rev_append_count part acc k =
  match part with
  | [] -> (acc, k)
  | x :: tl -> rev_append_count tl (x :: acc) (k + 1)

let scan t ~start ~n =
  let rec gather i start acc need =
    if need <= 0 || i >= Array.length t.shards then List.rev acc
    else begin
      let part = Incll.System.scan t.shards.(i) ~start ~n:need in
      let acc, got = rev_append_count part acc 0 in
      gather (i + 1) "" acc (need - got)
    end
  in
  gather (shard_of_key t start) start [] n

let scan_rev t ?bound ~n () =
  (* Walk shards from the bound's owner downwards. *)
  let start_shard =
    match bound with Some b -> shard_of_key t b | None -> Array.length t.shards - 1
  in
  let rec gather i bound acc need =
    if need <= 0 || i < 0 then List.rev acc
    else begin
      let part = Incll.System.scan_rev t.shards.(i) ?bound ~n:need () in
      let acc, got = rev_append_count part acc 0 in
      gather (i - 1) None acc (need - got)
    end
  in
  gather start_shard bound [] n

let advance_epochs t = Array.iter Incll.System.advance_epoch t.shards
let crash t rng = Array.iter (fun s -> Incll.System.crash s rng) t.shards

(* In place: [shards] is mutable, so the old `{t with shards = ...}` copy
   left any alias of [t] still pointing at the pre-recovery shard array. *)
let recover t =
  t.shards <- Array.map Incll.System.recover t.shards;
  (* Merge the shards' per-phase breakdowns: sum durations per phase,
     phase order taken from first appearance (shards recover through the
     same procedure, so that is the procedure order). *)
  let totals = Hashtbl.create 8 in
  let order = ref [] in
  Array.iter
    (fun s ->
      match Incll.System.last_recover_stats s with
      | Some st ->
          List.iter
            (fun (name, d) ->
              if not (Hashtbl.mem totals name) then order := name :: !order;
              Hashtbl.replace totals name
                (d +. try Hashtbl.find totals name with Not_found -> 0.0))
            st.Incll.System.phases
      | None -> ())
    t.shards;
  List.rev_map (fun name -> (name, Hashtbl.find totals name)) !order

let metrics t =
  Obs.Registry.merged
    (Array.to_list (Array.map Incll.System.metrics t.shards))

let sim_ns s = Nvm.Stats.sim_ns (Nvm.Region.stats (Incll.System.region s))

let total_sim_ns t = Array.fold_left (fun a s -> a +. sim_ns s) 0.0 t.shards

let max_sim_ns t = Array.fold_left (fun a s -> Float.max a (sim_ns s)) 0.0 t.shards

let cardinal t =
  Array.fold_left
    (fun a s -> a + Masstree.Tree.cardinal (Incll.System.tree s))
    0 t.shards
