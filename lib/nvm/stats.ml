(* The simulated clock lives in its own single-field all-float record:
   OCaml stores float fields of mixed records boxed, so a [mutable
   sim_ns : float] directly in [t] would allocate a fresh box on every
   clock charge — several times per simulated store/load. The nested
   all-float record is flat and is updated in place, making [add_ns]
   allocation-free on the hot paths. *)
type clock = { mutable ns : float }

type t = {
  mutable writes : int;
  mutable reads : int;
  mutable bytes_written : int;
  mutable clwb : int;
  mutable sfence : int;
  mutable release_fence : int;
  mutable wbinvd : int;
  mutable wbinvd_lines : int;
  mutable lines_committed : int;
  mutable sweep_quanta : int;
  mutable sweep_lines : int;
  mutable evictions : int;
  mutable crashes : int;
  clock : clock;
}

let create () =
  {
    writes = 0;
    reads = 0;
    bytes_written = 0;
    clwb = 0;
    sfence = 0;
    release_fence = 0;
    wbinvd = 0;
    wbinvd_lines = 0;
    lines_committed = 0;
    sweep_quanta = 0;
    sweep_lines = 0;
    evictions = 0;
    crashes = 0;
    clock = { ns = 0.0 };
  }

let reset t =
  t.writes <- 0;
  t.reads <- 0;
  t.bytes_written <- 0;
  t.clwb <- 0;
  t.sfence <- 0;
  t.release_fence <- 0;
  t.wbinvd <- 0;
  t.wbinvd_lines <- 0;
  t.lines_committed <- 0;
  t.sweep_quanta <- 0;
  t.sweep_lines <- 0;
  t.evictions <- 0;
  t.crashes <- 0;
  t.clock.ns <- 0.0

let sim_ns t = t.clock.ns
let add_ns t ns = t.clock.ns <- t.clock.ns +. ns

let snapshot t =
  {
    writes = t.writes;
    reads = t.reads;
    bytes_written = t.bytes_written;
    clwb = t.clwb;
    sfence = t.sfence;
    release_fence = t.release_fence;
    wbinvd = t.wbinvd;
    wbinvd_lines = t.wbinvd_lines;
    lines_committed = t.lines_committed;
    sweep_quanta = t.sweep_quanta;
    sweep_lines = t.sweep_lines;
    evictions = t.evictions;
    crashes = t.crashes;
    clock = { ns = t.clock.ns };
  }

let diff ~after ~before =
  {
    writes = after.writes - before.writes;
    reads = after.reads - before.reads;
    bytes_written = after.bytes_written - before.bytes_written;
    clwb = after.clwb - before.clwb;
    sfence = after.sfence - before.sfence;
    release_fence = after.release_fence - before.release_fence;
    wbinvd = after.wbinvd - before.wbinvd;
    wbinvd_lines = after.wbinvd_lines - before.wbinvd_lines;
    lines_committed = after.lines_committed - before.lines_committed;
    sweep_quanta = after.sweep_quanta - before.sweep_quanta;
    sweep_lines = after.sweep_lines - before.sweep_lines;
    evictions = after.evictions - before.evictions;
    crashes = after.crashes - before.crashes;
    clock = { ns = after.clock.ns -. before.clock.ns };
  }

(* Every counter field as a labelled list: the single source for [pp] and
   [to_json], so adding a field to the record and here keeps every output
   in sync (a test checks the arity). *)
let int_fields t =
  [
    ("writes", t.writes);
    ("reads", t.reads);
    ("bytes", t.bytes_written);
    ("clwb", t.clwb);
    ("sfence", t.sfence);
    ("release", t.release_fence);
    ("wbinvd", t.wbinvd);
    ("wbinvd_lines", t.wbinvd_lines);
    ("committed", t.lines_committed);
    ("sweep_quanta", t.sweep_quanta);
    ("sweep_lines", t.sweep_lines);
    ("evictions", t.evictions);
    ("crashes", t.crashes);
  ]

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%s=%d " k v) (int_fields t);
  Format.fprintf ppf "sim_ms=%.3f" (t.clock.ns /. 1e6)

let to_json t =
  Obs.Json.Obj
    (List.map (fun (k, v) -> (k, Obs.Json.Int v)) (int_fields t)
    @ [ ("sim_ns", Obs.Json.Float t.clock.ns) ])
