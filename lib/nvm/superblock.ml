let format region =
  Region.write_i64 region Layout.off_magic Layout.magic;
  Region.write_i64 region Layout.off_format Layout.format_version;
  Region.write_i64 region Layout.off_size
    (Int64.of_int (Region.size region));
  Region.write_i64 region Layout.off_extlog_size
    (Int64.of_int (Region.config region).Config.extlog_bytes);
  Region.clwb region Layout.off_magic;
  Region.sfence region

let is_formatted region =
  Region.read_i64 region Layout.off_magic = Layout.magic
  && Region.read_i64 region Layout.off_format = Layout.format_version

let check region =
  if not (is_formatted region) then
    failwith "Superblock.check: region is not a formatted InCLL region"

let recorded_extlog_bytes region =
  match Int64.to_int (Region.read_i64 region Layout.off_extlog_size) with
  | 0 -> None
  | n -> Some n
