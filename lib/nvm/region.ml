type addr = int

type t = {
  cfg : Config.t;
  nlines : int;
  (* Hot-path copies of configuration the fast paths read on every store
     and load. All immutable after [create]: chasing [cfg.cost.field]
     through two records per memory access was measurable (see
     bin/microbench.ml), so the fields are hoisted once here. *)
  size_bytes : int;
  is_precise : bool;
  max_dirty : int;  (* [max_dirty_lines], with [None] as [max_int] *)
  max_line_log_bytes : int;
  op_base_ns : float;
  write_ns : float;
  read_ns : float;
  mem_miss_ns : float;
  clwb_ns : float;
  volatile : Bytes.t;
  persisted : Bytes.t;  (* unused (length 0) in Counting mode *)
  dirty : Bytes.t;  (* one byte per line: 0 clean, 1 dirty *)
  dirty_list : Util.Ivec.t;  (* line ids, unordered *)
  dirty_pos : int array;  (* line -> index in dirty_list, -1 if clean *)
  logs : Line_log.t option array;  (* Precise mode: log per dirty line *)
  pending_wb : Util.Ivec.t;  (* lines clwb'd since the last sfence *)
  wb_pending : Bytes.t;  (* one byte per line: 1 iff in pending_wb *)
  evict_rng : Util.Rng.t;
  stats : Stats.t;
  metrics : Obs.Registry.t;
  trace : Obs.Trace.t;
  spans : Obs.Span.t;
  series_tbl : (string, Obs.Series.t) Hashtbl.t;
  stalls : Obs.Stall.t;  (* attributed stall intervals, simulated clock *)
  h_sfence : Obs.Histogram.t;  (* per-sfence latency, ns *)
  h_wbinvd : Obs.Histogram.t;  (* per-wbinvd latency, ns *)
  h_sweep : Obs.Histogram.t;  (* per-sweep-quantum latency, ns *)
  mutable sfence_extra_ns : float;  (* runtime-adjustable emulated latency *)
  (* Direct-mapped LLC tag array: models capacity misses so locality has a
     price. Tag slots hold line ids (+1; 0 = empty). *)
  llc_tags : int array;
  llc_mask : int;
  (* Optional file-backed shadow of the persisted image (a shared mmap).
     Because the mapping is MAP_SHARED, bytes written here live in the
     kernel page cache and survive the process being SIGKILLed — the
     cross-process analogue of NVM outliving a power failure. Only the
     persisted image is mirrored, and only at the instants it changes, so
     the file always holds exactly what a crash would leave behind. *)
  mutable mirror :
    (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
    option;
}

let line_of_addr addr = addr lsr Config.line_shift
let same_line a b = line_of_addr a = line_of_addr b

let precise t = t.is_precise

let create (cfg : Config.t) =
  if cfg.size_bytes <= 0 || cfg.size_bytes land (Config.line_size - 1) <> 0
  then invalid_arg "Region.create: size must be a positive multiple of 64";
  let nlines = cfg.size_bytes / Config.line_size in
  let metrics = Obs.Registry.create () in
  let stats = Stats.create () in
  let trace = Obs.Trace.create ~capacity:cfg.trace_capacity () in
  let spans =
    Obs.Span.create ~registry:metrics ~trace
      ~wall_clock:(fun () -> Unix.gettimeofday () *. 1e9)
      ~clock:(fun () -> Stats.sim_ns stats)
      ()
  in
  {
    cfg;
    nlines;
    size_bytes = cfg.size_bytes;
    is_precise = cfg.crash_support = Config.Precise;
    max_dirty = Option.value cfg.max_dirty_lines ~default:max_int;
    max_line_log_bytes = cfg.max_line_log_bytes;
    op_base_ns = cfg.cost.Config.op_base_ns;
    write_ns = cfg.cost.Config.write_ns;
    read_ns = cfg.cost.Config.read_ns;
    mem_miss_ns = cfg.cost.Config.mem_miss_ns;
    clwb_ns = cfg.cost.Config.clwb_ns;
    volatile = Bytes.make cfg.size_bytes '\000';
    persisted =
      (match cfg.crash_support with
      | Config.Precise -> Bytes.make cfg.size_bytes '\000'
      | Config.Counting -> Bytes.create 0);
    dirty = Bytes.make nlines '\000';
    dirty_list = Util.Ivec.create ~capacity:1024 ();
    dirty_pos = Array.make nlines (-1);
    logs = Array.make (if cfg.crash_support = Config.Precise then nlines else 0) None;
    pending_wb = Util.Ivec.create ~capacity:64 ();
    wb_pending = Bytes.make nlines '\000';
    evict_rng = Util.Rng.create ~seed:0x5eed_ca5e;
    stats;
    metrics;
    trace;
    spans;
    series_tbl = Hashtbl.create 8;
    stalls = Obs.Stall.create ~registry:metrics ();
    h_sfence = Obs.Registry.histogram metrics "nvm.sfence_ns";
    h_wbinvd = Obs.Registry.histogram metrics "nvm.wbinvd_ns";
    h_sweep = Obs.Registry.histogram metrics "nvm.sweep_ns";
    sfence_extra_ns = cfg.cost.Config.sfence_extra_ns;
    (* 2^18 slots x 64 B = a 16 MiB simulated LLC. *)
    llc_tags = Array.make 262144 0;
    llc_mask = 262143;
    mirror = None;
  }

(* --- persisted-image mirror ------------------------------------------- *)

let mirror_line t line =
  match t.mirror with
  | None -> ()
  | Some m ->
      let pos = line * Config.line_size in
      for i = 0 to Config.line_size - 1 do
        Bigarray.Array1.unsafe_set m (pos + i)
          (Bytes.unsafe_get t.persisted (pos + i))
      done

let mirror_all t =
  match t.mirror with
  | None -> ()
  | Some m ->
      for i = 0 to Bytes.length t.persisted - 1 do
        Bigarray.Array1.unsafe_set m i (Bytes.unsafe_get t.persisted i)
      done

let config t = t.cfg
let stats t = t.stats
let metrics t = t.metrics
let stalls t = t.stalls
let trace t = t.trace
let spans t = t.spans

let trace_event t payload =
  Obs.Trace.record t.trace ~ts_ns:(Stats.sim_ns t.stats) payload

let series t name =
  match Hashtbl.find_opt t.series_tbl name with
  | Some s -> s
  | None ->
      let s = Obs.Series.create ~name () in
      Hashtbl.add t.series_tbl name s;
      s

let all_series t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.series_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
let size t = t.cfg.Config.size_bytes
let dirty_line_count t = Util.Ivec.length t.dirty_list
let is_dirty_line t line = Bytes.unsafe_get t.dirty line <> '\000'

(* --- dirty tracking ------------------------------------------------- *)

let commit_line t line =
  if Bytes.unsafe_get t.dirty line = '\001' then begin
    if precise t then begin
      let pos = line * Config.line_size in
      Bytes.blit t.volatile pos t.persisted pos Config.line_size;
      mirror_line t line;
      (match t.logs.(line) with Some log -> Line_log.clear log | None -> ())
    end;
    Bytes.unsafe_set t.dirty line '\000';
    let idx = t.dirty_pos.(line) in
    let moved = Util.Ivec.swap_remove t.dirty_list idx in
    if moved >= 0 then t.dirty_pos.(moved) <- idx;
    t.dirty_pos.(line) <- -1;
    t.stats.Stats.lines_committed <- t.stats.Stats.lines_committed + 1
  end

let evict_some t =
  (* [commit_line] removes exactly one dirty line per call, so the count
     can be threaded through the loop instead of re-read from the vector
     each iteration (the RNG consumes the same bound sequence either
     way). *)
  let n = dirty_line_count t in
  if n > 0 then begin
    let batch = min t.cfg.Config.evict_batch n in
    let remaining = ref n in
    for _ = 1 to batch do
      let victim =
        Util.Ivec.get t.dirty_list (Util.Rng.int t.evict_rng !remaining)
      in
      commit_line t victim;
      decr remaining;
      t.stats.Stats.evictions <- t.stats.Stats.evictions + 1
    done
  end

let mark_dirty t line =
  if Bytes.unsafe_get t.dirty line = '\000' then begin
    Bytes.unsafe_set t.dirty line '\001';
    t.dirty_pos.(line) <- Util.Ivec.length t.dirty_list;
    Util.Ivec.push t.dirty_list line;
    if Util.Ivec.length t.dirty_list > t.max_dirty then evict_some t
  end

let log_of_line t line =
  match t.logs.(line) with
  | Some log -> log
  | None ->
      let log = Line_log.create () in
      t.logs.(line) <- Some log;
      log

(* Record one intra-line store in Precise mode, evicting the line first if
   its pending log outgrew the configured bound (a legal cache behaviour
   that keeps simulator memory bounded). [commit_line] clears the log in
   place rather than dropping it, so the single lookup stays valid across
   the eviction. *)
let record_store t line ~off ~src ~src_pos ~len =
  let log = log_of_line t line in
  if Line_log.payload_bytes log > t.max_line_log_bytes then begin
    commit_line t line;
    t.stats.Stats.evictions <- t.stats.Stats.evictions + 1
  end;
  Line_log.append log ~off ~src ~src_pos ~len

let check_range t addr len =
  if addr < 0 || len < 0 || addr + len > t.size_bytes then
    invalid_arg
      (Printf.sprintf "Region: address range [%d, %d) out of bounds" addr
         (addr + len))

let touch_llc t line =
  let slot = line land t.llc_mask in
  let tag = line + 1 in
  if Array.unsafe_get t.llc_tags slot <> tag then begin
    Array.unsafe_set t.llc_tags slot tag;
    let st = t.stats in
    st.Stats.clock.Stats.ns <- st.Stats.clock.Stats.ns +. t.mem_miss_ns
  end

(* Accounting for a store whose [len] bytes are already in the volatile
   image at [addr] (and stay within one line): LLC probe, Precise-mode
   logging, dirty tracking, and the stats/clock charges — in the same
   order as the historical blit-from-scratch path, so the charged
   [sim_ns] is bit-identical. Logging reads the store's bytes back out of
   the volatile image itself, which lets every caller skip the scratch
   staging buffer (fast paths write their payload directly). *)
let store_committed t addr len =
  let line = addr lsr Config.line_shift in
  touch_llc t line;
  if t.is_precise then
    record_store t line
      ~off:(addr land (Config.line_size - 1))
      ~src:t.volatile ~src_pos:addr ~len;
  mark_dirty t line;
  let st = t.stats in
  st.Stats.writes <- st.Stats.writes + 1;
  st.Stats.bytes_written <- st.Stats.bytes_written + len;
  st.Stats.clock.Stats.ns <- st.Stats.clock.Stats.ns +. t.write_ns

(* --- loads and stores ------------------------------------------------ *)

(* Fused read accounting: counter bump, clock charge and LLC probe of the
   line containing [addr], with no intermediate calls. *)
let charge_read t addr =
  let st = t.stats in
  st.Stats.reads <- st.Stats.reads + 1;
  st.Stats.clock.Stats.ns <- st.Stats.clock.Stats.ns +. t.read_ns;
  touch_llc t (addr lsr Config.line_shift)

(* Read side of a multi-byte access: one read + LLC probe per touched
   line (mirrors how the store side splits spans per line). *)
let charge_read_span t addr len =
  if len > 0 then begin
    let st = t.stats in
    let last = (addr + len - 1) lsr Config.line_shift in
    for line = addr lsr Config.line_shift to last do
      st.Stats.reads <- st.Stats.reads + 1;
      st.Stats.clock.Stats.ns <- st.Stats.clock.Stats.ns +. t.read_ns;
      touch_llc t line
    done
  end

let read_i64 t addr =
  if addr < 0 || addr > t.size_bytes - 8 then check_range t addr 8;
  charge_read t addr;
  Bytes.get_int64_le t.volatile addr

(* Unsigned comparison of the stored word at [addr] against the probe
   whose 32-bit unsigned halves are [hi] and [lo]. Charges exactly like
   {!read_i64} (one read, one LLC probe); works entirely in tagged ints,
   so index-structure searches can compare keys without boxing an Int64
   per probe. *)
let compare_u64 t addr ~hi ~lo =
  if addr < 0 || addr > t.size_bytes - 8 then check_range t addr 8;
  charge_read t addr;
  let b = t.volatile in
  let whi =
    Bytes.get_uint16_le b (addr + 4) lor (Bytes.get_uint16_le b (addr + 6) lsl 16)
  in
  if whi <> hi then (if whi < hi then -1 else 1)
  else begin
    let wlo =
      Bytes.get_uint16_le b addr lor (Bytes.get_uint16_le b (addr + 2) lsl 16)
    in
    if wlo = lo then 0 else if wlo < lo then -1 else 1
  end

let write_i64 t addr v =
  (* Single fused bounds+alignment test on the hot path; the cold branch
     re-derives which precondition failed for the historical message. *)
  if addr land 7 <> 0 || addr < 0 || addr > t.size_bytes - 8 then begin
    check_range t addr 8;
    invalid_arg "Region.write_i64: unaligned"
  end;
  Bytes.set_int64_le t.volatile addr v;
  store_committed t addr 8

(* Tagged-int word accessors: same bytes, same charges as {!read_i64} /
   {!write_i64} composed with [Int64.to_int] / [Int64.of_int], but built
   from 16-bit accesses so no boxed [Int64] is ever allocated (bit 63 is
   truncated exactly as [Int64.to_int] truncates it). *)
let get_int_le b i =
  Bytes.get_uint16_le b i
  lor (Bytes.get_uint16_le b (i + 2) lsl 16)
  lor (Bytes.get_uint16_le b (i + 4) lsl 32)
  lor (Bytes.get_uint16_le b (i + 6) lsl 48)

let set_int_le b i v =
  Bytes.set_uint16_le b i (v land 0xffff);
  Bytes.set_uint16_le b (i + 2) ((v lsr 16) land 0xffff);
  Bytes.set_uint16_le b (i + 4) ((v lsr 32) land 0xffff);
  Bytes.set_uint16_le b (i + 6) ((v asr 48) land 0xffff)

let read_int t addr =
  if addr < 0 || addr > t.size_bytes - 8 then check_range t addr 8;
  charge_read t addr;
  get_int_le t.volatile addr

let write_int t addr v =
  if addr land 7 <> 0 || addr < 0 || addr > t.size_bytes - 8 then begin
    check_range t addr 8;
    invalid_arg "Region.write_int: unaligned"
  end;
  set_int_le t.volatile addr v;
  store_committed t addr 8

let read_u8 t addr =
  if addr < 0 || addr >= t.size_bytes then check_range t addr 1;
  charge_read t addr;
  Char.code (Bytes.unsafe_get t.volatile addr)

let write_u8 t addr v =
  if addr < 0 || addr >= t.size_bytes then check_range t addr 1;
  Bytes.unsafe_set t.volatile addr (Char.unsafe_chr (v land 0xff));
  store_committed t addr 1

(* Split a multi-line store into per-line stores, in address order: blit
   each line chunk into the volatile image, then account for it. The
   loops are specialised per payload kind (bytes / string / the volatile
   image itself) so none of them allocates. *)
let rec write_span t addr src src_pos len =
  if len > 0 then begin
    let line_end = (addr lor (Config.line_size - 1)) + 1 in
    let chunk = min len (line_end - addr) in
    Bytes.blit src src_pos t.volatile addr chunk;
    store_committed t addr chunk;
    write_span t (addr + chunk) src (src_pos + chunk) (len - chunk)
  end

let write_bytes t addr b =
  let len = Bytes.length b in
  check_range t addr len;
  write_span t addr b 0 len

let rec string_span t addr s pos len =
  if len > 0 then begin
    let line_end = (addr lor (Config.line_size - 1)) + 1 in
    let chunk = min len (line_end - addr) in
    Bytes.blit_string s pos t.volatile addr chunk;
    store_committed t addr chunk;
    string_span t (addr + chunk) s (pos + chunk) (len - chunk)
  end

let write_string t addr s =
  let len = String.length s in
  check_range t addr len;
  string_span t addr s 0 len

let read_bytes t addr ~len =
  check_range t addr len;
  charge_read_span t addr len;
  Bytes.sub t.volatile addr len

let read_string t addr ~len =
  check_range t addr len;
  charge_read_span t addr len;
  Bytes.sub_string t.volatile addr len

let blit_to_buf t addr buf ~pos ~len =
  check_range t addr len;
  charge_read_span t addr len;
  Bytes.blit t.volatile addr buf pos len

let blit_within t ~src ~dst ~len =
  check_range t src len;
  check_range t dst len;
  charge_read_span t src len;
  if src + len <= dst || dst + len <= src then
    (* Disjoint ranges: copy straight out of the volatile image, no
       temporary ([Bytes.blit] within one buffer is fine when the chunks
       cannot alias). *)
    let rec loop dst src len =
      if len > 0 then begin
        let line_end = (dst lor (Config.line_size - 1)) + 1 in
        let chunk = min len (line_end - dst) in
        Bytes.blit t.volatile src t.volatile dst chunk;
        store_committed t dst chunk;
        loop (dst + chunk) (src + chunk) (len - chunk)
      end
    in
    loop dst src len
  else begin
    (* Overlapping: the destination stores must see the pre-copy source
       bytes, so stage them once. *)
    let tmp = Bytes.sub t.volatile src len in
    write_span t dst tmp 0 len
  end

(* --- persistence instructions ---------------------------------------- *)

let pending_wb_count t = Util.Ivec.length t.pending_wb

(* Forget the pending write-back set without committing anything (the
   lines were either just committed or just lost to a crash/flush). *)
let clear_pending_wb t =
  Util.Ivec.iter
    (fun line -> Bytes.unsafe_set t.wb_pending line '\000')
    t.pending_wb;
  Util.Ivec.clear t.pending_wb

let clwb t addr =
  check_range t addr 1;
  let line = line_of_addr addr in
  (* Re-flushing an already-pending line is a no-op at the next fence;
     pushing it again would grow the vector and re-commit redundantly. *)
  if Bytes.unsafe_get t.wb_pending line = '\000' then begin
    Bytes.unsafe_set t.wb_pending line '\001';
    Util.Ivec.push t.pending_wb line
  end;
  t.stats.Stats.clwb <- t.stats.Stats.clwb + 1;
  Stats.add_ns t.stats t.clwb_ns;
  trace_event t (Obs.Trace.Clwb { line })

let sfence t =
  (* Fault-injection hook: an armed chaos plan can kill the process at
     the moment the drain would start, i.e. with every clwb issued but
     nothing yet guaranteed persistent. *)
  Chaos.Plan.fire Chaos.Site.Sfence;
  let drained = Util.Ivec.length t.pending_wb in
  Util.Ivec.iter (fun line -> commit_line t line) t.pending_wb;
  clear_pending_wb t;
  t.stats.Stats.sfence <- t.stats.Stats.sfence + 1;
  let c = t.cfg.Config.cost in
  let cost = c.Config.sfence_ns +. t.sfence_extra_ns in
  Stats.add_ns t.stats cost;
  Obs.Histogram.record t.h_sfence cost;
  (* A free-standing fence is a clwb-sweep stall; inside a coarser scope
     (epoch flush, extlog seal, txn fence) the scope owns this time. *)
  Obs.Stall.leaf t.stalls Obs.Stall.Clwb_sweep
    ~start_ns:(Stats.sim_ns t.stats -. cost)
    ~dur_ns:cost;
  trace_event t (Obs.Trace.Sfence { drained; dur_ns = cost })

let release_fence t =
  (* Same-line ordering is already program order in this simulator; the
     release fence exists so call sites mirror the paper's Listing 3. *)
  t.stats.Stats.release_fence <- t.stats.Stats.release_fence + 1

let wbinvd t =
  let ndirty = dirty_line_count t in
  (* commit_line swap-removes from the list; drain from the back. *)
  while dirty_line_count t > 0 do
    let line = Util.Ivec.get t.dirty_list (dirty_line_count t - 1) in
    commit_line t line
  done;
  clear_pending_wb t;
  (* Real wbinvd also invalidates, but the post-flush refill of a 19 MB
     L3 over a 64 ms epoch costs the paper's machine ~1%; at this
     simulator's compressed epoch scale the same modelling would charge
     10-20%, so the invalidation side effect is deliberately not
     modelled (see DESIGN.md "scaling trilemma"). *)
  t.stats.Stats.wbinvd <- t.stats.Stats.wbinvd + 1;
  t.stats.Stats.wbinvd_lines <- t.stats.Stats.wbinvd_lines + ndirty;
  let c = t.cfg.Config.cost in
  let cost =
    c.Config.wbinvd_base_ns
    +. (float_of_int ndirty *. c.Config.wbinvd_per_line_ns)
  in
  Stats.add_ns t.stats cost;
  Obs.Histogram.record t.h_wbinvd cost;
  Obs.Stall.leaf t.stalls Obs.Stall.Epoch_advance
    ~start_ns:(Stats.sim_ns t.stats -. cost)
    ~dur_ns:cost;
  trace_event t (Obs.Trace.Wbinvd { lines = ndirty; dur_ns = cost })

(* One bounded quantum of the incremental epoch flush (DESIGN.md §15):
   commit up to [budget_lines] dirty lines via clwb and drain them with
   one fence, instead of the stop-the-world [wbinvd]. Draining from the
   back of [dirty_list] costs O(budget) regardless of how many lines are
   dirty. Committing an epoch-[e] line before the epoch boundary is
   always legal — capacity evictions already do exactly that, and
   recovery rolls the whole failed epoch back regardless of how much of
   it persisted. A committed line may still sit in the pending-wb set
   from an earlier clwb; the later fence re-commits it as a no-op
   ([commit_line] checks the dirty byte), so no separate bookkeeping is
   needed. Returns the number of dirty lines remaining. *)
let flush_some t ~budget_lines =
  if budget_lines <= 0 then invalid_arg "Region.flush_some: budget_lines";
  let n = min budget_lines (dirty_line_count t) in
  if n = 0 then 0
  else begin
    for _ = 1 to n do
      let line = Util.Ivec.get t.dirty_list (dirty_line_count t - 1) in
      commit_line t line
    done;
    t.stats.Stats.clwb <- t.stats.Stats.clwb + n;
    t.stats.Stats.sfence <- t.stats.Stats.sfence + 1;
    t.stats.Stats.sweep_quanta <- t.stats.Stats.sweep_quanta + 1;
    t.stats.Stats.sweep_lines <- t.stats.Stats.sweep_lines + n;
    let c = t.cfg.Config.cost in
    let cost =
      (float_of_int n *. t.clwb_ns) +. c.Config.sfence_ns +. t.sfence_extra_ns
    in
    Stats.add_ns t.stats cost;
    Obs.Histogram.record t.h_sweep cost;
    (* The quantum is the clwb-sweep stall the cause enum reserved; when a
       forced synchronous advance drains inside the Epoch_advance scope,
       the leaf is suppressed and the scope owns the time. *)
    Obs.Stall.leaf t.stalls Obs.Stall.Clwb_sweep
      ~start_ns:(Stats.sim_ns t.stats -. cost)
      ~dur_ns:cost;
    trace_event t (Obs.Trace.Sweep { lines = n; dur_ns = cost });
    dirty_line_count t
  end

let charge_op t =
  let st = t.stats in
  st.Stats.clock.Stats.ns <- st.Stats.clock.Stats.ns +. t.op_base_ns

let set_sfence_extra_ns t ns = t.sfence_extra_ns <- ns
let advance_clock t ns = Stats.add_ns t.stats ns

(* --- crash injection -------------------------------------------------- *)

let crash_with t ~choose =
  if not (precise t) then
    failwith "Region.crash: region was created in Counting mode";
  while dirty_line_count t > 0 do
    let line = Util.Ivec.get t.dirty_list (dirty_line_count t - 1) in
    (match t.logs.(line) with
    | Some log ->
        let n = Line_log.count log in
        let k = choose ~line ~nwrites:n in
        if k < 0 || k > n then invalid_arg "Region.crash_with: bad prefix";
        Line_log.apply_prefix log ~k ~dst:t.persisted
          ~dst_pos:(line * Config.line_size);
        Line_log.clear log
    | None -> ());
    (* Remove from the dirty set without committing volatile content. *)
    Bytes.unsafe_set t.dirty line '\000';
    let idx = t.dirty_pos.(line) in
    let moved = Util.Ivec.swap_remove t.dirty_list idx in
    if moved >= 0 then t.dirty_pos.(moved) <- idx;
    t.dirty_pos.(line) <- -1
  done;
  clear_pending_wb t;
  (* Power is gone: the LLC is cold. Without this, post-crash recovery
     reads of pre-crash-hot lines were never charged [mem_miss_ns]. *)
  Array.fill t.llc_tags 0 (Array.length t.llc_tags) 0;
  mirror_all t;
  Bytes.blit t.persisted 0 t.volatile 0 (Bytes.length t.persisted);
  t.stats.Stats.crashes <- t.stats.Stats.crashes + 1;
  trace_event t Obs.Trace.Crash

let crash t rng =
  crash_with t ~choose:(fun ~line:_ ~nwrites -> Util.Rng.int rng (nwrites + 1))

let crash_persist_none t = crash_with t ~choose:(fun ~line:_ ~nwrites:_ -> 0)
let crash_persist_all t = crash_with t ~choose:(fun ~line:_ ~nwrites -> nwrites)

(* Install a reboot image: both views equal [image], cache empty. Used by
   Image.load; not part of the simulated instruction set. *)
let install_image t image =
  if not (precise t) then failwith "Region.install_image: Counting mode";
  let n = Bytes.length image in
  if n > Bytes.length t.volatile then invalid_arg "Region.install_image";
  Bytes.blit image 0 t.volatile 0 n;
  Bytes.blit image 0 t.persisted 0 n;
  mirror_all t;
  Array.fill t.llc_tags 0 (Array.length t.llc_tags) 0

let pending_writes t =
  if not (precise t) then failwith "Region.pending_writes: Counting mode";
  let acc = ref [] in
  Util.Ivec.iter
    (fun line ->
      let n = match t.logs.(line) with Some l -> Line_log.count l | None -> 0 in
      acc := (line, n) :: !acc)
    t.dirty_list;
  List.sort compare !acc

let read_persisted_i64 t addr =
  if not (precise t) then
    failwith "Region.read_persisted_i64: Counting mode";
  Bytes.get_int64_le t.persisted addr

(* --- cross-process mirror attach/load --------------------------------- *)

let map_mirror_fd fd size =
  Unix.map_file fd Bigarray.char Bigarray.c_layout true [| size |]
  |> Bigarray.array1_of_genarray

let attach_mirror t ~path =
  if not (precise t) then failwith "Region.attach_mirror: Counting mode";
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let m =
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Unix.ftruncate fd t.size_bytes;
        map_mirror_fd fd t.size_bytes)
  in
  t.mirror <- Some m;
  mirror_all t

let load_mirror (cfg : Config.t) ~path =
  if (not (Sys.file_exists path)) || (Unix.stat path).Unix.st_size <> cfg.size_bytes
  then None
  else begin
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
    let m =
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> map_mirror_fd fd cfg.size_bytes)
    in
    let t = create cfg in
    let img = Bytes.create cfg.size_bytes in
    for i = 0 to cfg.size_bytes - 1 do
      Bytes.unsafe_set img i (Bigarray.Array1.unsafe_get m i)
    done;
    install_image t img;
    t.mirror <- Some m;
    Some t
  end
