(** Persistence-event statistics and the simulated clock.

    The paper's latency figures (3 and 8) emulate slower NVM by adding a
    delay after each [sfence]. In this reproduction the equivalent is a
    virtual clock: every simulated-hardware event advances [sim_ns] by its
    cost-model price, so "throughput under emulated latency" is
    [ops / sim_seconds] and depends only on counted events — exactly the
    quantity the paper sweeps. *)

type clock = { mutable ns : float }
(** The simulated clock, in its own all-float record so hot-path updates
    are unboxed in-place stores (a [mutable float] field in the mixed
    record below would allocate on every charge). *)

type t = {
  mutable writes : int;  (** Individual store instructions to NVM space. *)
  mutable reads : int;  (** Individual load instructions from NVM space. *)
  mutable bytes_written : int;
  mutable clwb : int;  (** Asynchronous line write-back initiations. *)
  mutable sfence : int;  (** Draining fences (full NVM round trips). *)
  mutable release_fence : int;  (** Compiler-only fences: free at run time. *)
  mutable wbinvd : int;  (** Global cache flushes (one per epoch). *)
  mutable wbinvd_lines : int;  (** Dirty lines written back by those flushes. *)
  mutable lines_committed : int;
      (** Lines whose volatile content reached the persisted image, for any
          reason (clwb+sfence, eviction, wbinvd, incremental sweep). *)
  mutable sweep_quanta : int;
      (** Bounded incremental-sweep quanta ({!Region.flush_some} calls that
          committed at least one line). *)
  mutable sweep_lines : int;
      (** Dirty lines written back by those sweep quanta. *)
  mutable evictions : int;  (** Capacity write-backs by cache replacement. *)
  mutable crashes : int;
  clock : clock;  (** Simulated elapsed time; read it via {!sim_ns}. *)
}

val create : unit -> t
val reset : t -> unit

val sim_ns : t -> float
(** Simulated elapsed nanoseconds ([t.clock.ns]). *)

val add_ns : t -> float -> unit
val diff : after:t -> before:t -> t
(** Event-count difference (for measuring a window; [sim_ns] also differs). *)

val snapshot : t -> t
val pp : Format.formatter -> t -> unit
(** One-line rendering of {e every} field (kept exhaustive by a test). *)

val int_fields : t -> (string * int) list
(** Every integer counter with its display label, in declaration order
    ([sim_ns] is the only non-member). Feeds [pp], [to_json] and the
    exhaustiveness test. *)

val to_json : t -> Obs.Json.t
(** All fields, as an object. *)
