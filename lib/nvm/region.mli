(** The simulated persistent region: a byte-addressable NVM address space
    behind a write-back CPU cache.

    Two images are maintained: the {e volatile} image (what loads observe —
    cache plus memory, i.e. the most recent stores) and the {e persisted}
    image (what would survive a power failure). Stores update the volatile
    image and dirty the containing 64-byte line; a line's content reaches
    the persisted image when it is written back — by [clwb]+[sfence], by a
    capacity eviction, or by the global [wbinvd] flush. On a {!crash}, each
    dirty line persists an arbitrary program-order prefix of its pending
    stores (the PCSO model, §2.1), the volatile image is discarded, and
    execution must recover from the persisted image alone.

    Addresses are byte offsets into the region; offset 0 plays the role of
    the null pointer and is never handed out by allocators. A region is
    owned by a single domain (the sharded store gives each domain its own
    region). *)

type t

type addr = int
(** Byte offset into the region. *)

val create : Config.t -> t
(** Fresh region, zero-filled, both images identical, nothing dirty. *)

val config : t -> Config.t
val stats : t -> Stats.t
val size : t -> int

val metrics : t -> Obs.Registry.t
(** The region's metric registry. The region itself feeds the
    ["nvm.sfence_ns"] and ["nvm.wbinvd_ns"] latency histograms; upper
    layers (epoch manager, external log, InCLL hooks) register their own
    counters and histograms here, so one registry describes the shard. *)

val stalls : t -> Obs.Stall.t
(** The region's stall ledger (simulated clock). The region itself
    records {!Obs.Stall.Clwb_sweep} leaves for free-standing sfences and
    an {!Obs.Stall.Epoch_advance} leaf for a bare [wbinvd]; upper layers
    open outermost-wins scopes around their own stalls (epoch advance,
    extlog append/wrap, limbo merge, txn fences, recovery) so each
    stalled interval lands under exactly one cause. *)

val trace : t -> Obs.Trace.t
(** The region's bounded event ring (disabled by default; capacity from
    [Config.trace_capacity]). The region records {!Obs.Trace.Clwb},
    {!Obs.Trace.Sfence}, {!Obs.Trace.Wbinvd} (both with their charged
    cost, so the Perfetto exporter can draw them as duration slices) and
    {!Obs.Trace.Crash}; upper layers add their events via
    {!trace_event}. *)

val trace_event : t -> Obs.Trace.payload -> unit
(** Record an event stamped with the current simulated time. *)

val spans : t -> Obs.Span.t
(** The region's span profiler, clocked by the simulated clock (wall
    clock secondary). Ended spans feed ["span.<name>_ns"] histograms in
    {!metrics} and begin/end events into {!trace}. *)

val series : t -> string -> Obs.Series.t
(** Get or create the named bounded time-series sampler. The epoch
    manager feeds ["epoch.dirty_lines"] / ["epoch.pending_wb"] and the
    external log ["extlog.used_bytes"] here, one point per epoch
    boundary. *)

val all_series : t -> (string * Obs.Series.t) list
(** Sorted by name. *)

val line_of_addr : addr -> int
val same_line : addr -> addr -> bool
val dirty_line_count : t -> int
val is_dirty_line : t -> int -> bool

(** {1 Loads and stores (volatile image)} *)

val read_i64 : t -> addr -> int64
val write_i64 : t -> addr -> int64 -> unit
(** [addr] must be 8-byte aligned, so a word never straddles lines. *)

val read_int : t -> addr -> int
val write_int : t -> addr -> int -> unit
(** Allocation-free word accessors for [int]-valued words (pointers,
    lengths, counters): byte-for-byte and charge-for-charge equivalent to
    {!read_i64} / {!write_i64} composed with [Int64.to_int] /
    [Int64.of_int] (bit 63 truncates), but never allocate a boxed
    [Int64]. [addr] must be 8-byte aligned for {!write_int}. *)

val compare_u64 : t -> addr -> hi:int -> lo:int -> int
(** Unsigned comparison of the stored word at [addr] against the probe
    value whose unsigned 32-bit halves are [hi] and [lo]: the sign of
    [Int64.unsigned_compare (read_i64 t addr) probe]. Charges exactly
    like {!read_i64} and never allocates — the hot comparison of
    index-structure searches. *)

val read_u8 : t -> addr -> int
val write_u8 : t -> addr -> int -> unit

val read_bytes : t -> addr -> len:int -> Bytes.t
val write_bytes : t -> addr -> Bytes.t -> unit
(** Multi-line stores are split into per-line stores in address order.
    Symmetrically, multi-byte {e reads} ({!read_bytes}, {!read_string},
    {!blit_to_buf} and the source side of {!blit_within}) charge one read
    plus one LLC probe per touched line. *)

val read_string : t -> addr -> len:int -> string
val write_string : t -> addr -> string -> unit
(** Like {!read_bytes} / {!write_bytes} but for [string] payloads, with
    no intermediate [Bytes.t] copy (one allocation for the result of
    {!read_string}, none for {!write_string}). *)

val blit_to_buf : t -> addr -> Bytes.t -> pos:int -> len:int -> unit
val blit_within : t -> src:addr -> dst:addr -> len:int -> unit
(** Volatile-image copy, recorded as stores to the destination lines and
    reads of the source lines. *)

(** {1 Persistence instructions} *)

val clwb : t -> addr -> unit
(** Initiate an asynchronous write-back of the line containing [addr]. The
    line is guaranteed persisted only after the next {!sfence}. *)

val sfence : t -> unit
(** Drain: every line [clwb]'d since the previous fence is committed to the
    persisted image. Expensive — a full NVM round trip (plus the emulated
    extra latency of Figures 3/8). *)

val pending_wb_count : t -> int
(** Distinct lines awaiting the next {!sfence} (repeated [clwb] of one
    line counts once — white-box testing of the write-back set). *)

val release_fence : t -> unit
(** C++11 release fence: restricts compiler reordering only; free at run
    time and {e does not} persist anything (§2.1). Counted for reporting. *)

val wbinvd : t -> unit
(** Global cache flush: commits every dirty line (§4, §6.2). Cost is
    [wbinvd_base_ns + dirty_lines * wbinvd_per_line_ns]. *)

val flush_some : t -> budget_lines:int -> int
(** One bounded quantum of the incremental epoch flush (DESIGN.md §15):
    commit up to [budget_lines] dirty lines (clwb each, one draining
    fence), charging [n*clwb_ns + sfence_ns + sfence_extra_ns] and
    attributing the stall to the [clwb_sweep] cause. Returns the number
    of dirty lines remaining — 0 means the cache is clean and the epoch
    boundary may be fenced. Early write-back of an open epoch's lines is
    always crash-safe (capacity evictions already do it; recovery rolls
    the whole failed epoch back). Raises [Invalid_argument] if
    [budget_lines <= 0]. *)

val clear_pending_wb : t -> unit
(** Forget the pending write-back set without committing anything. Only
    legal when every dirty line has just been committed by other means (a
    completed incremental sweep uses it to mirror {!wbinvd}'s post-flush
    state exactly); stale entries would otherwise be re-committed as
    no-ops at the next fence. *)

val charge_op : t -> unit
(** Advance the simulated clock by the per-operation baseline cost. *)

val set_sfence_extra_ns : t -> float -> unit
(** Adjust the emulated NVM latency at run time (the Figures 3/8 sweeps
    change it between measurement windows on one populated store). *)

val advance_clock : t -> float -> unit

(** {1 Crash injection (Precise mode only)} *)

val crash : t -> Util.Rng.t -> unit
(** Power failure: for each dirty line, an independently chosen uniform
    prefix of its pending stores is applied to the persisted image; then
    the volatile image is reloaded from the persisted one and all cache
    state is lost. *)

val crash_with : t -> choose:(line:int -> nwrites:int -> int) -> unit
(** Adversarial crash: [choose ~line ~nwrites] picks how many of the
    pending stores of [line] persist (0..nwrites). *)

val crash_persist_none : t -> unit
(** Deterministic worst case: no pending store persists. *)

val crash_persist_all : t -> unit
(** Deterministic best case: every pending store persists (equivalent to a
    flush followed by a clean restart). *)

val install_image : t -> Bytes.t -> unit
(** Used by {!Image.load}: set both views to a reboot image with a cold
    cache. Precise mode only. *)

val pending_writes : t -> (int * int) list
(** Dirty lines and their pending-store counts, sorted by line id (drives
    the systematic crash-state enumeration in the tests). *)

(** {1 Cross-process persistence (Precise mode only)}

    A file-backed shared mmap shadowing the persisted image, updated at
    every instant the persisted image changes (line commit, simulated
    crash, image install). Because the mapping is [MAP_SHARED], the bytes
    survive the process being SIGKILLed — the cross-process analogue of
    NVM outliving a power failure. The file deliberately holds {e only}
    what a crash would leave behind: a server restarted on the same
    mirror recovers exactly as if the machine had lost power. *)

val attach_mirror : t -> path:string -> unit
(** Create (or truncate) [path] at the region's size, mmap it shared,
    dump the current persisted image into it, and keep it in sync from
    now on. *)

val load_mirror : Config.t -> path:string -> t option
(** Rebuild a region from a mirror file left behind by a previous
    process: both views are set to the mirrored persisted image (cold
    cache, nothing dirty) and the mapping is re-attached for future
    updates. [None] if the file does not exist or its size does not
    match [cfg.size_bytes] — callers fall back to a fresh region. *)

val read_persisted_i64 : t -> addr -> int64
(** Inspect the persisted image (white-box testing only). *)
