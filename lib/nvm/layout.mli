(** Map of the persistent region.

    {v
    [ superblock: 4 KiB ][ external log ][ heap ... ]
    v}

    The superblock holds the durable roots of every subsystem. Fields that
    are modified together with their own InCLL undo copy are grouped into a
    single cache line each, because the InCLL technique requires the datum
    and its log to share a line. *)

val superblock_bytes : int

(** {1 Superblock fields (byte offsets)} *)

val off_magic : int
val off_format : int
val off_size : int

val off_extlog_size : int
(** External-log size in bytes, recorded at format time so a saved image
    can be re-attached (e.g. by [incll_fsck]) without knowing the original
    configuration — the heap base depends on it. *)

val off_durable_epoch : int
(** The global epoch index, durably advanced at each checkpoint (§4). Lives
    in its own line so the bump can be flushed independently. *)

val off_failed_count : int
(** Number of occupied failed-set slots. Each slot packs a {e range} of
    consecutive failed epochs (see {!failed_epoch_slot}), so the set
    survives arbitrarily many consecutive crash-during-recovery cycles in
    one slot. *)

val failed_epoch_slot : int -> int
(** Offset of the i-th slot of the durable failed-epoch set. A slot packs
    [lo * 2^16 + (hi - lo)]: the range of consecutive failed epochs
    [lo..hi], with [hi - lo < 2^16]. *)

val max_failed_epochs : int
(** Capacity of the failed set, in slots (ranges). *)

val off_txn_watermark : int
(** Id of the last transaction whose commit decision was durably recorded
    with this region as 2PC coordinator (0 = none). A single 8-byte word:
    the simulated PCSO crash model is store-atomic, so no checksum is
    needed. In-doubt PREPARE records are resolved against it. *)

val off_sweep_floor : int
(** Recovery-marker epoch of the last completed eager sweep. All InCLL
    words were re-stamped at that marker, so failed epochs below it are
    unreferenced and may be dropped from the durable failed set. *)

val off_root : int
(** Root pointer of the durable Masstree; its whole line is protected by the
    external log on structural root changes. *)

val off_root_meta : int
(** Auxiliary root metadata word (same line as the root pointer). *)

val off_bump : int
(** Heap wilderness bump pointer; [off_bump_incll] and [off_bump_epoch]
    share its cache line so bump movements are InCLL-logged (§5). *)

val off_bump_incll : int
val off_bump_epoch : int

val alloc_class_free_line : int -> int
(** Offset of the free-list metadata line of size class [i]:
    head at +0, headInCLL at +8, headEpoch at +16. *)

val alloc_class_limbo_line : int -> int
(** Offset of the limbo-list (epoch-based reclamation) metadata line of size
    class [i]; same field layout as the free line. *)

val max_size_classes : int

(** {1 Region slices} *)

val extlog_off : int
val heap_off : Config.t -> int
val heap_len : Config.t -> int

val magic : int64
val format_version : int64
