(** Superblock lifecycle: formatting and opening a persistent region. *)

val format : Region.t -> unit
(** Write magic, format version and region size, and flush them durably.
    Must be called exactly once on a fresh region before any other
    subsystem initialises its superblock fields. *)

val is_formatted : Region.t -> bool
(** True when the magic and format version match (used after a crash to
    decide between recovery and formatting). *)

val check : Region.t -> unit
(** Raise [Failure] when the region is not a formatted InCLL region. *)

val recorded_extlog_bytes : Region.t -> int option
(** The external-log size recorded at format time, or [None] for images
    written before the field existed (slot reads 0). Re-attaching an image
    with a different [extlog_bytes] than it was formatted with shifts the
    heap base and makes every chain pointer look wild. *)
