(** Configuration of the simulated NVM memory system.

    The simulator models the machine of the paper's §6: a write-back CPU
    cache in front of byte-addressable NVM, with explicit write-back
    ([clwb]) and ordering ([sfence]) instructions, a privileged global flush
    ([wbinvd]) and the PCSO persistence-ordering model of §2.1. *)

val line_size : int
(** Cache-line size in bytes (64, as on the paper's Skylake host). *)

val line_shift : int
(** [log2 line_size]. *)

type cost_model = {
  op_base_ns : float;
      (** Baseline cost charged per data-structure operation; calibrated so
          one thread runs at a few Mops/s like the paper's Masstree. *)
  write_ns : float;
      (** Cost of one store to NVM space (a cached store: cheap). The InCLL
          bookkeeping stores surface in simulated time through this. *)
  read_ns : float;  (** Cost of one load from NVM space (cached). *)
  mem_miss_ns : float;
      (** Extra cost when the accessed line misses the simulated
          last-level cache (a direct-mapped tag array sized like the
          paper's 19.25 MB L3). This is what makes large trees slower
          than small ones (Figure 5) and skewed workloads faster than
          uniform ones (§6): locality is priced, not assumed. *)
  clwb_ns : float;
      (** Cost of initiating an asynchronous cache-line write-back. Cheap:
          clwb does not wait for the memory round trip. *)
  sfence_ns : float;
      (** Base cost of an [sfence] that must drain outstanding write-backs:
          a full round trip to NVM. *)
  sfence_extra_ns : float;
      (** Additional emulated NVM latency added after each draining
          [sfence]. This is the 0–1000 ns sweep variable of Figures 3/8. *)
  wbinvd_base_ns : float;
      (** Fixed cost of the global cache flush syscall (§6.2 measures the
          total at 1.38–1.39 ms for a 19.25 MB L3). *)
  wbinvd_per_line_ns : float;  (** Per-dirty-line cost of the global flush. *)
}

val default_cost_model : cost_model
(** Constants calibrated against §6: a full cache of dirty lines flushes in
    ≈1.4 ms, and an 8-thread Masstree-like op costs ≈150 ns. *)

type crash_support =
  | Counting  (** Track dirty lines and statistics only; crashes disallowed.
                  Fast mode for pure-throughput benchmarks. *)
  | Precise  (** Additionally keep per-line pending-write logs and a
                 persisted image, enabling PCSO-faithful crash injection. *)

(** Checkpoint-scheduling policy (DESIGN.md §15). Selects how the epoch
    manager drains the dirty set at a checkpoint and when it decides to
    start one; durability semantics are identical under every policy. *)
type policy =
  | Throughput
      (** The paper's scheduler: fixed-period epochs, stop-the-world
          [wbinvd] flush. Default; bit-identical to the pre-policy
          behaviour. *)
  | Latency
      (** Tail-optimised: incremental bounded clwb sweep interleaved with
          op execution (no single stall exceeds the sweep budget), with
          dirty-line and extlog pressure starting checkpoints early. *)
  | Rto
      (** Recovery-time-optimised: short epochs (period divided by
          {!rto_epoch_divisor}) and aggressive pressure triggers bound the
          rollback window and the replayable log at a throughput cost. *)

val policy_name : policy -> string
val policy_of_string : string -> policy
(** Inverse of {!policy_name}; raises [Invalid_argument] on anything
    else. *)

type t = {
  size_bytes : int;  (** Size of the persistent region. *)
  extlog_bytes : int;  (** Size of the external-log slice of the region. *)
  crash_support : crash_support;
  max_dirty_lines : int option;
      (** Simulated cache capacity in lines. When the number of dirty lines
          exceeds it, random victim lines are written back — modelling the
          cache-replacement write-backs that make the paper's epoch flush
          cheap ("modified cache lines may have been written back during the
          epoch", §1). [None] disables background eviction. *)
  evict_batch : int;
      (** How many victims to write back when over capacity. *)
  max_line_log_bytes : int;
      (** In [Precise] mode, a line whose pending-write log outgrows this
          bound is evicted (a legal cache behaviour) to bound memory. *)
  trace_capacity : int;
      (** Capacity (events) of the region's trace ring. The default 4096
          suffices for interactive poking; timeline exports
          ([bench --trace]) raise it so whole epochs survive the ring. *)
  policy : policy;
  sweep_budget_lines : int;
      (** Max dirty lines committed per incremental sweep quantum
          ({!Region.flush_some}); 0 = stop-the-world [wbinvd] at the
          checkpoint (the {!Throughput} scheduler). *)
  dirty_trigger_lines : int;
      (** Start a checkpoint early once this many lines are dirty
          (0 = timer only). *)
  log_trigger_frac : float;
      (** Start a checkpoint early once the external log is this full
          (fraction of capacity; 0.0 = timer only). Truncation at the
          checkpoint reclaims the log, so this trigger averts synchronous
          log-wrap advances on the op path. *)
  cost : cost_model;
}

val default : t

val with_size : t -> int -> t
val with_crash_support : t -> crash_support -> t
val with_sfence_extra_ns : t -> float -> t
val with_max_dirty_lines : t -> int option -> t

val with_policy : t -> policy -> t
(** Set [policy] and reset the sweep/pressure knobs to that policy's
    presets (override individual fields afterwards for custom shapes). *)

val rto_epoch_divisor : float
(** Epoch-period divisor applied by the epoch manager under {!Rto}. *)
