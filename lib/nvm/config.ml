let line_size = 64
let line_shift = 6

type cost_model = {
  op_base_ns : float;
  write_ns : float;
  read_ns : float;
  mem_miss_ns : float;
  clwb_ns : float;
  sfence_ns : float;
  sfence_extra_ns : float;
  wbinvd_base_ns : float;
  wbinvd_per_line_ns : float;
}

(* Calibration: §6.2 reports 1.38-1.39 ms to flush a 19.25 MB L3
   (~300 K lines) => ~4.3 ns/line + ~100 us base. Masstree on the paper's
   Skylake runs at roughly 5-7 Mops/s/thread => ~110 ns of fixed per-op
   cost plus per-access charges; an LLC miss costs a DRAM round trip
   (~30 ns at full bandwidth); an sfence that waits for NVM is on the
   order of a full memory round trip, ~100 ns. *)
let default_cost_model =
  {
    op_base_ns = 120.0;
    write_ns = 1.5;
    read_ns = 0.4;
    mem_miss_ns = 14.0;
    clwb_ns = 5.0;
    sfence_ns = 100.0;
    sfence_extra_ns = 0.0;
    wbinvd_base_ns = 100_000.0;
    wbinvd_per_line_ns = 4.3;
  }

type crash_support = Counting | Precise

type policy = Throughput | Latency | Rto

let policy_name = function
  | Throughput -> "throughput"
  | Latency -> "latency"
  | Rto -> "rto"

let policy_of_string = function
  | "throughput" -> Throughput
  | "latency" -> Latency
  | "rto" -> Rto
  | s -> invalid_arg (Printf.sprintf "Config.policy_of_string: %S" s)

type t = {
  size_bytes : int;
  extlog_bytes : int;
  crash_support : crash_support;
  max_dirty_lines : int option;
  evict_batch : int;
  max_line_log_bytes : int;
  trace_capacity : int;
  policy : policy;
  sweep_budget_lines : int;
  dirty_trigger_lines : int;
  log_trigger_frac : float;
  cost : cost_model;
}

let default =
  {
    size_bytes = 64 * 1024 * 1024;
    extlog_bytes = 8 * 1024 * 1024;
    crash_support = Precise;
    max_dirty_lines = Some 300_000;
    evict_batch = 64;
    max_line_log_bytes = 8192;
    trace_capacity = 4096;
    policy = Throughput;
    sweep_budget_lines = 0;
    dirty_trigger_lines = 0;
    log_trigger_frac = 0.0;
    cost = default_cost_model;
  }

let with_size t size_bytes = { t with size_bytes }
let with_crash_support t crash_support = { t with crash_support }

let with_sfence_extra_ns t ns =
  { t with cost = { t.cost with sfence_extra_ns = ns } }

let with_max_dirty_lines t max_dirty_lines = { t with max_dirty_lines }

(* Policy presets. [Throughput] is the paper's scheduler (fixed-period
   stop-the-world wbinvd) and is the default, so existing configurations
   are bit-identical. [Latency] trades fences for tail: each checkpoint
   is swept incrementally in bounded clwb quanta interleaved with op
   execution, and dirty/log pressure starts the sweep early so the
   boundary never meets a full cache. [Rto] bounds recovery time: small
   epochs (the manager divides the period by [rto_epoch_divisor]) plus
   aggressive pressure triggers keep the rollback window and the
   replayable log short, at a throughput cost. *)
let rto_epoch_divisor = 4.0

let with_policy t policy =
  match policy with
  | Throughput ->
      {
        t with
        policy;
        sweep_budget_lines = 0;
        dirty_trigger_lines = 0;
        log_trigger_frac = 0.0;
      }
  | Latency ->
      {
        t with
        policy;
        sweep_budget_lines = 128;
        dirty_trigger_lines = 8192;
        log_trigger_frac = 0.5;
      }
  | Rto ->
      {
        t with
        policy;
        sweep_budget_lines = 256;
        dirty_trigger_lines = 2048;
        log_trigger_frac = 0.25;
      }
