let superblock_bytes = 4096
let off_magic = 0
let off_format = 8
let off_size = 16
let off_extlog_size = 24

(* Line 1: the durable epoch index. *)
let off_durable_epoch = 64

(* Lines 2-6: durable failed-epoch set (count + up to 31 entries). *)
let off_failed_count = 128
let max_failed_epochs = 31
let failed_epoch_slot i =
  if i < 0 || i >= max_failed_epochs then invalid_arg "failed_epoch_slot";
  136 + (8 * i)

(* Line 7: tree root (whole line is external-logged on root changes). *)
let off_root = 448
let off_root_meta = 456

(* Line 8: heap bump pointer with its InCLL. *)
let off_bump = 512
let off_bump_incll = 520
let off_bump_epoch = 528

(* Lines 16..47: allocator size-class metadata, two lines per class. *)
let max_size_classes = 16

let alloc_class_free_line i =
  if i < 0 || i >= max_size_classes then invalid_arg "alloc_class_free_line";
  1024 + (i * 128)

let alloc_class_limbo_line i = alloc_class_free_line i + 64

(* Line 48: transaction metadata. The watermark is the id of the last
   transaction whose commit decision was durably recorded with this region
   as coordinator (0 = none); 2PC in-doubt resolution probes it. The sweep
   floor is the recovery-marker epoch of the last completed eager sweep:
   failed epochs below it can no longer alias any live InCLL low-epoch and
   are garbage-collectable from the durable failed set. *)
let off_txn_watermark = 3072
let off_sweep_floor = 3080

let extlog_off = superblock_bytes
let heap_off (cfg : Config.t) = extlog_off + cfg.Config.extlog_bytes

let heap_len (cfg : Config.t) = cfg.Config.size_bytes - heap_off cfg

let magic = 0x1AC11_0CA41_2019L (* "InCLL OCaml 2019" *)
let format_version = 1L
