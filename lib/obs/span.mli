(** Nested begin/end profiling scopes over an arbitrary clock.

    A span profiler owns a stack of open scopes. Ending a span feeds its
    duration into the per-name ["span.<name>_ns"] histogram of the
    attached {!Registry} (and ["span.<name>_wall_ns"] when a wall clock
    was supplied), and mirrors begin/end events into the attached
    {!Trace} ring so a timeline viewer can reconstruct the nesting
    ({!Perfetto}).

    The clock is a closure, not wall time: the NVM region wires its
    simulated-ns clock in, so span durations are measured in the same
    unit as every other cost in the system. *)

type t

val create :
  ?registry:Registry.t ->
  ?trace:Trace.t ->
  ?wall_clock:(unit -> float) ->
  clock:(unit -> float) ->
  unit ->
  t
(** [clock] is read at every begin/end; [wall_clock] (ns) additionally
    feeds the ["span.<name>_wall_ns"] histograms when provided. *)

val begin_ : t -> string -> unit

val end_ : t -> string -> float
(** Close the innermost span, which must be named [name] — raises
    [Invalid_argument] on an empty stack or a name mismatch (unbalanced
    instrumentation is a bug worth failing loudly on). Returns the span's
    duration on the profiling clock. *)

val with_ : t -> string -> (unit -> 'a) -> 'a
(** Scoped form; the span is closed (and recorded) even if [f] raises. *)

val depth : t -> int
(** Open spans. *)

val current : t -> string option
(** Innermost open span. *)
