(** Bounded time-series sampler: (timestamp, value) points with automatic
    uniform downsampling.

    A series holds at most [capacity] points. When it fills, resolution is
    halved — every second stored point is dropped and the acceptance
    stride doubles, so an arbitrarily long run is always represented by a
    bounded, uniformly spaced subsequence of its samples (the first sample
    is always retained). Memory and per-sample cost are O(1) amortised.

    Used for the Figure-6-shaped quantities: dirty-line occupancy, pending
    write-back depth and external-log bytes at each epoch boundary. *)

type t

val create : ?capacity:int -> name:string -> unit -> t
(** Default capacity 512 points; capacity must be at least 2. *)

val name : t -> string

val sample : t -> ts_ns:float -> value:float -> unit
(** Offer a sample; it is stored iff its index is a multiple of the
    current stride. *)

val length : t -> int
(** Stored points (≤ capacity). *)

val capacity : t -> int

val stride : t -> int
(** Current acceptance stride (a power of two; 1 until the first
    compaction). *)

val seen : t -> int
(** Samples offered since creation, stored or not. *)

val points : t -> (float * float) list
(** Stored (ts_ns, value) pairs, oldest first. *)

val last : t -> (float * float) option

val to_json : t -> Json.t
(** [{"name","stride","seen","points":[[ts,v],...]}]. *)
