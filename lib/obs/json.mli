(** A minimal JSON value type and serializer (hand-rolled — the repo takes
    no external JSON dependency). Enough for emitting metrics and bench
    tables; there is deliberately no parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering, for files meant to be read by humans. *)
