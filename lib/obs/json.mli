(** A minimal JSON value type, serializer and parser (hand-rolled — the
    repo takes no external JSON dependency). Enough for emitting metrics
    and bench tables, and for reading them back ([bin/bench_compare], the
    Perfetto-export well-formedness tests). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering, for files meant to be read by humans. *)

(** {1 Parsing} *)

exception Parse_error of string
(** Carries a human-readable message with the byte offset of the error. *)

val of_string : string -> t
(** Parse one JSON document (trailing whitespace allowed, nothing else).
    Numbers without [.], [e] or [E] become {!Int}; all others {!Float}.
    Raises {!Parse_error} on malformed input. *)

val of_string_opt : string -> t option

(** {1 Accessors} *)

val find : t -> string -> t option
(** Field lookup; [None] when the value is not an object or lacks the
    field. *)

val find_path : t -> string list -> t option
(** Nested {!find}. *)

val to_float_opt : t -> float option
(** {!Int} and {!Float} both convert; everything else is [None]. *)
