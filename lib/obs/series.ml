type t = {
  name : string;
  cap : int;
  ts : float array;
  vs : float array;
  mutable len : int;
  mutable stride : int;  (* accept every stride-th offered sample *)
  mutable seen : int;  (* samples offered since creation *)
}

let create ?(capacity = 512) ~name () =
  if capacity < 2 then invalid_arg "Series.create: capacity must be >= 2";
  {
    name;
    cap = capacity;
    ts = Array.make capacity 0.0;
    vs = Array.make capacity 0.0;
    len = 0;
    stride = 1;
    seen = 0;
  }

let name t = t.name
let length t = t.len
let capacity t = t.cap
let stride t = t.stride
let seen t = t.seen

(* Halve the resolution: keep every second stored point. Kept points sit
   at offered-positions 0, 2*stride, 4*stride, ... — consistent with the
   doubled stride, so future accepted samples stay uniformly spaced. *)
let compact t =
  let kept = ref 0 in
  let i = ref 0 in
  while !i < t.len do
    t.ts.(!kept) <- t.ts.(!i);
    t.vs.(!kept) <- t.vs.(!i);
    incr kept;
    i := !i + 2
  done;
  t.len <- !kept;
  t.stride <- t.stride * 2

let sample t ~ts_ns ~value =
  let pos = t.seen in
  t.seen <- t.seen + 1;
  if pos mod t.stride = 0 then begin
    if t.len = t.cap then compact t;
    (* After compaction [pos] may no longer be stride-aligned; drop it
       then (the next aligned sample lands in the freed space). *)
    if pos mod t.stride = 0 then begin
      t.ts.(t.len) <- ts_ns;
      t.vs.(t.len) <- value;
      t.len <- t.len + 1
    end
  end

let points t = List.init t.len (fun i -> (t.ts.(i), t.vs.(i)))

let last t = if t.len = 0 then None else Some (t.ts.(t.len - 1), t.vs.(t.len - 1))

let to_json t =
  Json.Obj
    [
      ("name", Json.String t.name);
      ("stride", Json.Int t.stride);
      ("seen", Json.Int t.seen);
      ( "points",
        Json.List
          (List.map
             (fun (ts, v) -> Json.List [ Json.Float ts; Json.Float v ])
             (points t)) );
    ]
