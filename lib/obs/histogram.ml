(* 8 geometric sub-buckets per power of two, octaves 0..63: bucket 0 holds
   [0,1), bucket 1+8*o+s holds [2^o*(1+s/8), 2^o*(1+(s+1)/8)). *)

let subs = 8
let octaves = 64
let nbuckets = 1 + (octaves * subs)

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  {
    buckets = Array.make nbuckets 0;
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let index_of v =
  if v < 1.0 then 0
  else begin
    let m, e = Float.frexp v in
    (* v = m * 2^e with m in [0.5,1), so v lies in octave e-1. *)
    let octave = min (octaves - 1) (e - 1) in
    let sub =
      min (subs - 1) (int_of_float ((m *. 2.0 -. 1.0) *. float_of_int subs))
    in
    1 + (octave * subs) + sub
  end

(* Inclusive-lower bounds of bucket [i] (see the table at the top). *)
let bucket_lo i =
  if i = 0 then 0.0
  else begin
    let octave = (i - 1) / subs and sub = (i - 1) mod subs in
    let base = Float.ldexp 1.0 octave in
    base +. (float_of_int sub *. (base /. float_of_int subs))
  end

let bucket_hi i =
  if i = 0 then 1.0
  else begin
    let octave = (i - 1) / subs and sub = (i - 1) mod subs in
    let base = Float.ldexp 1.0 octave in
    base +. (float_of_int (sub + 1) *. (base /. float_of_int subs))
  end

let record t v =
  let v = if v < 0.0 then 0.0 else v in
  t.buckets.(index_of v) <- t.buckets.(index_of v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let sum t = t.sum
let min_value t = if t.count <= 0 || t.min_v = infinity then 0.0 else t.min_v

let max_value t =
  if t.count <= 0 || t.max_v = neg_infinity then 0.0 else t.max_v

let mean t = if t.count <= 0 then 0.0 else t.sum /. float_of_int t.count

let percentile t q =
  if t.count <= 0 || t.min_v = infinity then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int t.count))) in
    (* Walk to the bucket holding [rank], then interpolate by rank within
       it. The midpoint answer over-reports extreme ranks (p999/p9999):
       in a wide log-scale bucket the max-rank percentile sits wherever
       the last samples landed, and assuming the middle of the bucket can
       be off by half a bucket width (~6%) in the direction that always
       inflates the tail. Linear-by-rank within the final occupied bucket
       is exact when samples are uniform there and clamped to the observed
       extremes either way. *)
    let i = ref 0 and seen = ref 0 in
    while !seen + t.buckets.(!i) < rank && !i < nbuckets - 1 do
      seen := !seen + t.buckets.(!i);
      incr i
    done;
    let n = t.buckets.(!i) in
    let lo = bucket_lo !i and hi = bucket_hi !i in
    let frac =
      if n <= 0 then 1.0 else float_of_int (rank - !seen) /. float_of_int n
    in
    Float.min t.max_v (Float.max t.min_v (lo +. ((hi -. lo) *. frac)))
  end

let merge_into ~into src =
  Array.iteri (fun i n -> into.buckets.(i) <- into.buckets.(i) + n) src.buckets;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v

let copy t =
  {
    buckets = Array.copy t.buckets;
    count = t.count;
    sum = t.sum;
    min_v = t.min_v;
    max_v = t.max_v;
  }

let diff ~after ~before =
  let d = copy after in
  Array.iteri (fun i n -> d.buckets.(i) <- d.buckets.(i) - n) before.buckets;
  d.count <- after.count - before.count;
  d.sum <- after.sum -. before.sum;
  (* [after]'s running min/max span its whole lifetime; the window's
     extremes must come from the window's own occupied buckets. Bucket
     bounds are the tightest available estimate (exact values are not
     retained per bucket). *)
  d.min_v <- infinity;
  d.max_v <- neg_infinity;
  Array.iteri
    (fun i n ->
      if n > 0 then begin
        if d.min_v = infinity then d.min_v <- bucket_lo i;
        d.max_v <- bucket_hi i
      end)
    d.buckets;
  d

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("sum", Json.Float t.sum);
      ("mean", Json.Float (mean t));
      ("min", Json.Float (min_value t));
      ("max", Json.Float (max_value t));
      ("p50", Json.Float (percentile t 0.50));
      ("p90", Json.Float (percentile t 0.90));
      ("p99", Json.Float (percentile t 0.99));
      ("p999", Json.Float (percentile t 0.999));
      ("p9999", Json.Float (percentile t 0.9999));
    ]
