(** Bounded ring of persistence-relevant events, stamped with the
    simulated clock.

    Events carry typed payloads (not [string * int]): the persistence
    instructions record their cost alongside their argument, so the
    Perfetto exporter ({!Perfetto}) can render [sfence] / [wbinvd] as
    duration slices and the span profiler ({!Span}) can round-trip
    nested scopes through the ring.

    Disabled by default: a disabled ring costs one branch per call site,
    so the hot paths (clwb, sfence) can record unconditionally. When the
    ring is full the oldest event is overwritten and counted as dropped —
    tracing never grows memory or perturbs a long run. *)

type payload =
  | Clwb of { line : int }  (** Asynchronous write-back initiation. *)
  | Sfence of { drained : int; dur_ns : float }
      (** [drained]: lines committed by this fence; [dur_ns]: its cost. *)
  | Wbinvd of { lines : int; dur_ns : float }
      (** [lines]: dirty lines flushed; [dur_ns]: total flush cost. *)
  | Sweep of { lines : int; dur_ns : float }
      (** One bounded incremental-sweep quantum ([Region.flush_some]):
          [lines] committed, [dur_ns] its cost. *)
  | Epoch_advance of { epoch : int }  (** The epoch being entered. *)
  | Crash
  | Recover of { replayed : int }  (** External-log entries re-applied. *)
  | Extlog_append of { bytes : int }
  | Extlog_replay of { entries : int }
  | Incll_first_touch of { leaf : int }
  | Incll_fallback of { leaf : int }
  | Span_begin of { name : string }
  | Span_end of { name : string; dur_ns : float }
  | Custom of { kind : string; arg : int }
      (** Escape hatch for one-off events; prefer a typed constructor. *)

type event = { ts_ns : float; payload : payload }

val kind : payload -> string
(** Stable display name, e.g. ["clwb"], ["sfence"], ["epoch_advance"]. *)

val arg : payload -> int
(** The payload's primary integer (line id, lines drained, epoch, ...) —
    the legacy [string * int] view, used by the JSON dump. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 4096 events. *)

val capacity : t -> int
val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> ts_ns:float -> payload -> unit
(** No-op while disabled. *)

val length : t -> int
(** Events currently held (≤ capacity). *)

val total : t -> int
(** Events recorded since creation/clear, including overwritten ones. *)

val dropped : t -> int

val to_list : t -> event list
(** Oldest first. *)

val clear : t -> unit

val to_json : t -> Json.t
(** [{"total","dropped","events":[{ts_ns,kind,arg}]}]. Reading the ring
    is non-destructive; callers that want a fresh window call {!clear}
    explicitly. *)
