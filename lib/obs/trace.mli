(** Bounded ring of persistence-relevant events, stamped with the
    simulated clock.

    Disabled by default: a disabled ring costs one branch per call site,
    so the hot paths (clwb, sfence) can record unconditionally. When the
    ring is full the oldest event is overwritten and counted as dropped —
    tracing never grows memory or perturbs a long run. *)

type event = {
  ts_ns : float;  (** Simulated time at which the event happened. *)
  kind : string;  (** e.g. "clwb", "sfence", "wbinvd", "epoch_advance". *)
  arg : int;  (** Event-specific: line id, dirty-line count, bytes, ... *)
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 4096 events. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> ts_ns:float -> kind:string -> arg:int -> unit
(** No-op while disabled. *)

val length : t -> int
(** Events currently held (≤ capacity). *)

val total : t -> int
(** Events recorded since creation/clear, including overwritten ones. *)

val dropped : t -> int

val to_list : t -> event list
(** Oldest first. *)

val clear : t -> unit

val to_json : t -> Json.t
(** [{"total","dropped","events":[{ts_ns,kind,arg}]}]. *)
