type event = { ts_ns : float; kind : string; arg : int }

let dummy = { ts_ns = 0.0; kind = ""; arg = 0 }

type t = {
  buf : event array;
  mutable enabled : bool;
  mutable len : int;  (* events held *)
  mutable next : int;  (* write cursor *)
  mutable total : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { buf = Array.make capacity dummy; enabled = false; len = 0; next = 0; total = 0 }

let enabled t = t.enabled
let set_enabled t b = t.enabled <- b

let record t ~ts_ns ~kind ~arg =
  if t.enabled then begin
    t.buf.(t.next) <- { ts_ns; kind; arg };
    t.next <- (t.next + 1) mod Array.length t.buf;
    if t.len < Array.length t.buf then t.len <- t.len + 1;
    t.total <- t.total + 1
  end

let length t = t.len
let total t = t.total
let dropped t = t.total - t.len

let to_list t =
  let cap = Array.length t.buf in
  let first = (t.next - t.len + cap) mod cap in
  List.init t.len (fun i -> t.buf.((first + i) mod cap))

let clear t =
  t.len <- 0;
  t.next <- 0;
  t.total <- 0

let to_json t =
  Json.Obj
    [
      ("total", Json.Int t.total);
      ("dropped", Json.Int (dropped t));
      ( "events",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("ts_ns", Json.Float e.ts_ns);
                   ("kind", Json.String e.kind);
                   ("arg", Json.Int e.arg);
                 ])
             (to_list t)) );
    ]
