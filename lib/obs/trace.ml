type payload =
  | Clwb of { line : int }
  | Sfence of { drained : int; dur_ns : float }
  | Wbinvd of { lines : int; dur_ns : float }
  | Sweep of { lines : int; dur_ns : float }
  | Epoch_advance of { epoch : int }
  | Crash
  | Recover of { replayed : int }
  | Extlog_append of { bytes : int }
  | Extlog_replay of { entries : int }
  | Incll_first_touch of { leaf : int }
  | Incll_fallback of { leaf : int }
  | Span_begin of { name : string }
  | Span_end of { name : string; dur_ns : float }
  | Custom of { kind : string; arg : int }

type event = { ts_ns : float; payload : payload }

let kind = function
  | Clwb _ -> "clwb"
  | Sfence _ -> "sfence"
  | Wbinvd _ -> "wbinvd"
  | Sweep _ -> "sweep"
  | Epoch_advance _ -> "epoch_advance"
  | Crash -> "crash"
  | Recover _ -> "recover"
  | Extlog_append _ -> "extlog_append"
  | Extlog_replay _ -> "extlog_replay"
  | Incll_first_touch _ -> "incll_first_touch"
  | Incll_fallback _ -> "incll_fallback"
  | Span_begin _ -> "span_begin"
  | Span_end _ -> "span_end"
  | Custom { kind; _ } -> kind

let arg = function
  | Clwb { line } -> line
  | Sfence { drained; _ } -> drained
  | Wbinvd { lines; _ } -> lines
  | Sweep { lines; _ } -> lines
  | Epoch_advance { epoch } -> epoch
  | Crash -> 0
  | Recover { replayed } -> replayed
  | Extlog_append { bytes } -> bytes
  | Extlog_replay { entries } -> entries
  | Incll_first_touch { leaf } -> leaf
  | Incll_fallback { leaf } -> leaf
  | Span_begin _ -> 0
  | Span_end { dur_ns; _ } -> int_of_float dur_ns
  | Custom { arg; _ } -> arg

let dummy = { ts_ns = 0.0; payload = Crash }

type t = {
  buf : event array;
  mutable enabled : bool;
  mutable len : int;  (* events held *)
  mutable next : int;  (* write cursor *)
  mutable total : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { buf = Array.make capacity dummy; enabled = false; len = 0; next = 0; total = 0 }

let capacity t = Array.length t.buf
let enabled t = t.enabled
let set_enabled t b = t.enabled <- b

let record t ~ts_ns payload =
  if t.enabled then begin
    t.buf.(t.next) <- { ts_ns; payload };
    t.next <- (t.next + 1) mod Array.length t.buf;
    if t.len < Array.length t.buf then t.len <- t.len + 1;
    t.total <- t.total + 1
  end

let length t = t.len
let total t = t.total
let dropped t = t.total - t.len

let to_list t =
  let cap = Array.length t.buf in
  let first = (t.next - t.len + cap) mod cap in
  List.init t.len (fun i -> t.buf.((first + i) mod cap))

let clear t =
  t.len <- 0;
  t.next <- 0;
  t.total <- 0

let to_json t =
  Json.Obj
    [
      ("total", Json.Int t.total);
      ("dropped", Json.Int (dropped t));
      ( "events",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("ts_ns", Json.Float e.ts_ns);
                   ("kind", Json.String (kind e.payload));
                   ("arg", Json.Int (arg e.payload));
                 ])
             (to_list t)) );
    ]
