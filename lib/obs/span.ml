type frame = { name : string; t0_ns : float; wall0_ns : float }

type t = {
  clock : unit -> float;
  wall_clock : unit -> float;
  registry : Registry.t option;
  trace : Trace.t option;
  mutable stack : frame list;
}

let no_wall () = 0.0

let create ?registry ?trace ?(wall_clock = no_wall) ~clock () =
  { clock; wall_clock; registry; trace; stack = [] }

let depth t = List.length t.stack
let current t = match t.stack with [] -> None | f :: _ -> Some f.name

let begin_ t name =
  let now = t.clock () in
  t.stack <- { name; t0_ns = now; wall0_ns = t.wall_clock () } :: t.stack;
  match t.trace with
  | Some tr -> Trace.record tr ~ts_ns:now (Trace.Span_begin { name })
  | None -> ()

let end_ t name =
  match t.stack with
  | [] -> invalid_arg (Printf.sprintf "Span.end_: no open span (ending %S)" name)
  | f :: rest ->
      if f.name <> name then
        invalid_arg
          (Printf.sprintf "Span.end_: unbalanced end (%S open, ending %S)"
             f.name name);
      t.stack <- rest;
      let now = t.clock () in
      let dur = now -. f.t0_ns in
      (match t.registry with
      | Some r ->
          Histogram.record (Registry.histogram r ("span." ^ name ^ "_ns")) dur;
          if t.wall_clock != no_wall then
            Histogram.record
              (Registry.histogram r ("span." ^ name ^ "_wall_ns"))
              (t.wall_clock () -. f.wall0_ns)
      | None -> ());
      (match t.trace with
      | Some tr -> Trace.record tr ~ts_ns:now (Trace.Span_end { name; dur_ns = dur })
      | None -> ());
      dur

let with_ t name f =
  begin_ t name;
  match f () with
  | v ->
      ignore (end_ t name : float);
      v
  | exception e ->
      (* Unwind so the profiler stays balanced past the exception. *)
      ignore (end_ t name : float);
      raise e
