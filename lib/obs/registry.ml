type t = {
  cnt : (string, int ref) Hashtbl.t;
  hist : (string, Histogram.t) Hashtbl.t;
}

let create () = { cnt = Hashtbl.create 16; hist = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.cnt name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.cnt name r;
      r

let histogram t name =
  match Hashtbl.find_opt t.hist name with
  | Some h -> h
  | None ->
      let h = Histogram.create () in
      Hashtbl.add t.hist name h;
      h

let counter_value t name =
  match Hashtbl.find_opt t.cnt name with Some r -> !r | None -> 0

let find_histogram t name = Hashtbl.find_opt t.hist name

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t = List.map (fun (k, r) -> (k, !r)) (sorted_bindings t.cnt)
let histograms t = sorted_bindings t.hist

let merge_into ~into src =
  Hashtbl.iter (fun name r -> counter into name := !(counter into name) + !r)
    src.cnt;
  Hashtbl.iter
    (fun name h -> Histogram.merge_into ~into:(histogram into name) h)
    src.hist

let merged ts =
  let t = create () in
  List.iter (fun src -> merge_into ~into:t src) ts;
  t

let snapshot t = merged [ t ]

let diff ~after ~before =
  let d = create () in
  Hashtbl.iter
    (fun name r -> counter d name := !r - counter_value before name)
    after.cnt;
  (* Names only in [before] must not vanish from the delta: emit them
     negated so a run report is exhaustive over both registries. *)
  Hashtbl.iter
    (fun name r ->
      if not (Hashtbl.mem after.cnt name) then counter d name := - !r)
    before.cnt;
  Hashtbl.iter
    (fun name h ->
      let h' =
        match find_histogram before name with
        | Some b -> Histogram.diff ~after:h ~before:b
        | None -> Histogram.copy h
      in
      Hashtbl.add d.hist name h')
    after.hist;
  Hashtbl.iter
    (fun name h ->
      if not (Hashtbl.mem after.hist name) then
        Hashtbl.add d.hist name
          (Histogram.diff ~after:(Histogram.create ()) ~before:h))
    before.hist;
  d

(* Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map '.'
   (and anything else) to '_', with a leading '_' for an initial digit. *)
let prom_name name =
  let b = Buffer.create (String.length name + 8) in
  Buffer.add_string b "incll_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let to_prometheus t =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      Printf.bprintf b "# TYPE %s counter\n%s %d\n" n n v)
    (counters t);
  List.iter
    (fun (name, h) ->
      let n = prom_name name in
      Printf.bprintf b "# TYPE %s summary\n" n;
      List.iter
        (fun (label, q) ->
          Printf.bprintf b "%s{quantile=\"%s\"} %s\n" n label
            (prom_float (Histogram.percentile h q)))
        [
          ("0.5", 0.5);
          ("0.9", 0.9);
          ("0.99", 0.99);
          ("0.999", 0.999);
          ("0.9999", 0.9999);
        ];
      Printf.bprintf b "%s_sum %s\n" n (prom_float (Histogram.sum h));
      Printf.bprintf b "%s_count %d\n" n (Histogram.count h))
    (histograms t);
  Buffer.contents b

let to_json t =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)) );
      ( "histograms",
        Json.Obj
          (List.map (fun (k, h) -> (k, Histogram.to_json h)) (histograms t))
      );
    ]
