(* Chrome trace_event JSON ("JSON Array Format" with the traceEvents
   wrapper), loadable by Perfetto (ui.perfetto.dev) and chrome://tracing.
   Timestamps are microseconds; the simulator's ns stamps divide by 1e3. *)

let us ns = ns /. 1000.0

let ev ~name ~cat ~ph ~ts ~pid ~tid extra =
  Json.Obj
    ([
       ("name", Json.String name);
       ("cat", Json.String cat);
       ("ph", Json.String ph);
       ("ts", Json.Float (us ts));
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ extra)

let instant ~name ~cat ~ts ~pid ~tid args =
  ev ~name ~cat ~ph:"i" ~ts ~pid ~tid
    (("s", Json.String "t") :: if args = [] then [] else [ ("args", Json.Obj args) ])

let complete ~name ~cat ~ts ~dur_ns ~pid ~tid args =
  (* ts is the event's END stamp (costs are charged before recording);
     shift back by the duration so the slice covers the paid interval. *)
  ev ~name ~cat ~ph:"X" ~ts:(ts -. dur_ns) ~pid ~tid
    (("dur", Json.Float (us dur_ns))
    :: (if args = [] then [] else [ ("args", Json.Obj args) ]))

let thread_name ~pid ~tid name =
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

(* One trace ring -> events on one tid. Epoch_advance markers are folded
   into synthesized "epoch N" slices spanning consecutive boundaries, so
   an epoch's life (dirty buildup, flush burst, extlog appends) reads as
   one box in the timeline. *)
let events_of_trace ~pid ~tid trace =
  let out = ref [] in
  let push j = out := j :: !out in
  let open_epoch = ref None in
  let last_ts = ref 0.0 in
  List.iter
    (fun { Trace.ts_ns = ts; payload } ->
      last_ts := ts;
      match payload with
      | Trace.Span_begin { name } ->
          push (ev ~name ~cat:"span" ~ph:"B" ~ts ~pid ~tid [])
      | Trace.Span_end { name; _ } ->
          push (ev ~name ~cat:"span" ~ph:"E" ~ts ~pid ~tid [])
      | Trace.Sfence { drained; dur_ns } ->
          push
            (complete ~name:"sfence" ~cat:"persist" ~ts ~dur_ns ~pid ~tid
               [ ("drained", Json.Int drained) ])
      | Trace.Wbinvd { lines; dur_ns } ->
          push
            (complete ~name:"wbinvd" ~cat:"persist" ~ts ~dur_ns ~pid ~tid
               [ ("lines", Json.Int lines) ])
      | Trace.Sweep { lines; dur_ns } ->
          push
            (complete ~name:"sweep" ~cat:"persist" ~ts ~dur_ns ~pid ~tid
               [ ("lines", Json.Int lines) ])
      | Trace.Epoch_advance { epoch } ->
          (match !open_epoch with
          | Some (e0, t0) when ts > t0 ->
              push
                (complete ~name:(Printf.sprintf "epoch %d" e0) ~cat:"epoch"
                   ~ts ~dur_ns:(ts -. t0) ~pid ~tid
                   [ ("epoch", Json.Int e0) ])
          | _ -> ());
          open_epoch := Some (epoch, ts);
          push
            (instant ~name:"epoch_advance" ~cat:"epoch" ~ts ~pid ~tid
               [ ("epoch", Json.Int epoch) ])
      | Trace.Clwb { line } ->
          push (instant ~name:"clwb" ~cat:"persist" ~ts ~pid ~tid
                  [ ("line", Json.Int line) ])
      | Trace.Crash -> push (instant ~name:"crash" ~cat:"crash" ~ts ~pid ~tid [])
      | Trace.Recover { replayed } ->
          push
            (instant ~name:"recover" ~cat:"crash" ~ts ~pid ~tid
               [ ("replayed", Json.Int replayed) ])
      | Trace.Extlog_append { bytes } ->
          push
            (instant ~name:"extlog_append" ~cat:"extlog" ~ts ~pid ~tid
               [ ("bytes", Json.Int bytes) ])
      | Trace.Extlog_replay { entries } ->
          push
            (instant ~name:"extlog_replay" ~cat:"extlog" ~ts ~pid ~tid
               [ ("entries", Json.Int entries) ])
      | Trace.Incll_first_touch { leaf } ->
          push
            (instant ~name:"incll_first_touch" ~cat:"incll" ~ts ~pid ~tid
               [ ("leaf", Json.Int leaf) ])
      | Trace.Incll_fallback { leaf } ->
          push
            (instant ~name:"incll_fallback" ~cat:"incll" ~ts ~pid ~tid
               [ ("leaf", Json.Int leaf) ])
      | Trace.Custom { kind; arg } ->
          push (instant ~name:kind ~cat:"custom" ~ts ~pid ~tid
                  [ ("arg", Json.Int arg) ]))
    (Trace.to_list trace);
  (* Close the trailing epoch at the last seen stamp. *)
  (match !open_epoch with
  | Some (e0, t0) when !last_ts > t0 ->
      push
        (complete ~name:(Printf.sprintf "epoch %d" e0) ~cat:"epoch" ~ts:!last_ts
           ~dur_ns:(!last_ts -. t0) ~pid ~tid [ ("epoch", Json.Int e0) ])
  | _ -> ());
  List.rev !out

let counter_events ~pid ~name series =
  List.map
    (fun (ts, v) ->
      Json.Obj
        [
          ("name", Json.String name);
          ("cat", Json.String "series");
          ("ph", Json.String "C");
          ("ts", Json.Float (us ts));
          ("pid", Json.Int pid);
          ("args", Json.Obj [ ("value", Json.Float v) ]);
        ])
    (Series.points series)

(* One stall ledger -> complete slices (named by cause) on a dedicated
   tid, so a shard's stalls line up under its main track in the UI. *)
let events_of_stalls ~pid ~tid ledger =
  List.map
    (fun { Stall.cause; start_ns; dur_ns; epoch } ->
      complete
        ~name:(Stall.cause_name cause)
        ~cat:"stall" ~ts:(start_ns +. dur_ns) ~dur_ns ~pid ~tid
        [ ("epoch", Json.Int epoch) ])
    (Stall.entries ledger)

let export ?(pid = 1) ?(series = []) ?(stalls = []) ~tracks () =
  let track_events =
    List.concat
      (List.mapi
         (fun tid (label, trace) ->
           thread_name ~pid ~tid label :: events_of_trace ~pid ~tid trace)
         tracks)
  in
  (* Stall tracks take tids above the trace tracks. *)
  let base = List.length tracks in
  let stall_events =
    List.concat
      (List.mapi
         (fun i (label, ledger) ->
           let tid = base + i in
           thread_name ~pid ~tid (label ^ " stalls")
           :: events_of_stalls ~pid ~tid ledger)
         stalls)
  in
  let series_events =
    List.concat_map (fun (name, s) -> counter_events ~pid ~name s) series
  in
  Json.Obj
    [
      ("traceEvents", Json.List (track_events @ stall_events @ series_events));
      ("displayTimeUnit", Json.String "ns");
    ]
