(** A named-metric registry: integer counters and log-scale histograms.

    Handles returned by {!counter} / {!histogram} are get-or-create and
    stable, so hot paths look a name up once and then pay only an int
    increment or a bucket bump per event. One registry belongs to one
    region (= one shard = one domain); cross-shard views are built with
    {!merged}. *)

type t

val create : unit -> t

val counter : t -> string -> int ref
(** Get or create the named counter. *)

val histogram : t -> string -> Histogram.t
(** Get or create the named histogram. *)

val counter_value : t -> string -> int
(** 0 when the counter does not exist. *)

val find_histogram : t -> string -> Histogram.t option

val counters : t -> (string * int) list
(** Sorted by name. *)

val histograms : t -> (string * Histogram.t) list
(** Sorted by name. *)

val merge_into : into:t -> t -> unit
(** Add every metric of [src] into [into], creating names as needed. *)

val merged : t list -> t
(** Fresh registry holding the sum of the inputs (shard merging). *)

val snapshot : t -> t
(** Deep copy, for before/after window measurements. *)

val diff : after:t -> before:t -> t
(** Per-name difference, exhaustive over both registries: names only in
    [after] pass through unchanged; names only in [before] appear with
    negated counters / negated histogram counts (a metric that
    disappeared is itself a delta worth seeing). *)

val to_json : t -> Json.t
(** [{"counters": {...}, "histograms": {name: {count,...,p9999}}}]. *)

val to_prometheus : t -> string
(** Prometheus text exposition: counters as [counter] metrics, histograms
    as [summary] metrics with p50/p90/p99/p999/p9999 quantile samples plus
    [_sum]/[_count]. Names are prefixed [incll_] and sanitized ('.' →
    '_'), so snapshots can be scraped without a JSON parser. *)
