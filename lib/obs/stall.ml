type cause =
  | Epoch_advance
  | Clwb_sweep
  | Extlog
  | Limbo_merge
  | Alloc_slow
  | Txn_fence
  | Recovery
  | Net_queue

let all_causes =
  [
    Epoch_advance;
    Clwb_sweep;
    Extlog;
    Limbo_merge;
    Alloc_slow;
    Txn_fence;
    Recovery;
    Net_queue;
  ]

let ncauses = List.length all_causes

let cause_index = function
  | Epoch_advance -> 0
  | Clwb_sweep -> 1
  | Extlog -> 2
  | Limbo_merge -> 3
  | Alloc_slow -> 4
  | Txn_fence -> 5
  | Recovery -> 6
  | Net_queue -> 7

let cause_name = function
  | Epoch_advance -> "epoch_advance"
  | Clwb_sweep -> "clwb_sweep"
  | Extlog -> "extlog"
  | Limbo_merge -> "limbo_merge"
  | Alloc_slow -> "alloc_slow"
  | Txn_fence -> "txn_fence"
  | Recovery -> "recovery"
  | Net_queue -> "net_queue"

let cause_of_index i = List.nth_opt all_causes i

type entry = { cause : cause; start_ns : float; dur_ns : float; epoch : int }

(* Attribute a [t0, t1) window to the cause with the largest total overlap
   among [entries]; [None] when nothing overlaps. Shared by the bench
   runner's slow-op attribution and the server's per-request stall
   reporting. *)
let dominant_cause entries ~t0 ~t1 =
  let sums = Array.make ncauses 0.0 in
  List.iter
    (fun e ->
      let o = Float.min t1 (e.start_ns +. e.dur_ns) -. Float.max t0 e.start_ns in
      if o > 0.0 then
        let i = cause_index e.cause in
        sums.(i) <- sums.(i) +. o)
    entries;
  List.fold_left
    (fun best c ->
      let v = sums.(cause_index c) in
      if v <= 0.0 then best
      else
        match best with
        | Some (_, b) when b >= v -> best
        | _ -> Some (c, v))
    None all_causes
  |> Option.map fst

let nil_entry = { cause = Epoch_advance; start_ns = 0.0; dur_ns = 0.0; epoch = 0 }

type t = {
  buf : entry array;
  mutable len : int;
  mutable next : int;  (* ring write cursor *)
  mutable admitted : int;
  mutable min_dur_ns : float;
  mutable epoch : int;
  (* Outermost-wins scope state. *)
  mutable scope_depth : int;
  mutable scope_cause : cause;
  mutable scope_start : float;
  hist : Histogram.t array;  (* per-cause durations, ncauses entries *)
  counts : int array;
  totals : float array;
}

let create ?(capacity = 1024) ?registry () =
  let capacity = max 1 capacity in
  let hist =
    match registry with
    | Some r ->
        Array.of_list
          (List.map
             (fun c -> Registry.histogram r ("stall." ^ cause_name c ^ "_ns"))
             all_causes)
    | None -> Array.init ncauses (fun _ -> Histogram.create ())
  in
  {
    buf = Array.make capacity nil_entry;
    len = 0;
    next = 0;
    admitted = 0;
    min_dur_ns = 0.0;
    epoch = 0;
    scope_depth = 0;
    scope_cause = Epoch_advance;
    scope_start = 0.0;
    hist;
    counts = Array.make ncauses 0;
    totals = Array.make ncauses 0.0;
  }

let set_epoch t e = t.epoch <- e
let set_min_dur_ns t ns = t.min_dur_ns <- ns

let record t cause ~start_ns ~dur_ns =
  let i = cause_index cause in
  t.counts.(i) <- t.counts.(i) + 1;
  t.totals.(i) <- t.totals.(i) +. dur_ns;
  Histogram.record t.hist.(i) dur_ns;
  if dur_ns >= t.min_dur_ns then begin
    t.buf.(t.next) <- { cause; start_ns; dur_ns; epoch = t.epoch };
    t.next <- (t.next + 1) mod Array.length t.buf;
    if t.len < Array.length t.buf then t.len <- t.len + 1;
    t.admitted <- t.admitted + 1
  end

let enter t cause ~now =
  if t.scope_depth = 0 then begin
    t.scope_cause <- cause;
    t.scope_start <- now
  end;
  t.scope_depth <- t.scope_depth + 1

let exit t ~now =
  if t.scope_depth > 0 then begin
    t.scope_depth <- t.scope_depth - 1;
    if t.scope_depth = 0 then
      record t t.scope_cause ~start_ns:t.scope_start
        ~dur_ns:(Float.max 0.0 (now -. t.scope_start))
  end

let in_scope t = t.scope_depth > 0

let leaf t cause ~start_ns ~dur_ns =
  if t.scope_depth = 0 then record t cause ~start_ns ~dur_ns

let length t = t.len
let capacity t = Array.length t.buf
let admitted t = t.admitted

let entries t =
  let cap = Array.length t.buf in
  let first = (t.next - t.len + cap) mod cap in
  List.init t.len (fun i -> t.buf.((first + i) mod cap))

let overlapping t ~t0 ~t1 =
  List.filter
    (fun e -> e.start_ns < t1 && e.start_ns +. e.dur_ns > t0)
    (entries t)

let counts t = List.map (fun c -> (c, t.counts.(cause_index c))) all_causes

let totals_ns t =
  List.map (fun c -> (c, t.totals.(cause_index c))) all_causes

let clear t =
  t.len <- 0;
  t.next <- 0;
  t.admitted <- 0;
  t.scope_depth <- 0;
  Array.fill t.counts 0 ncauses 0;
  Array.fill t.totals 0 ncauses 0.0

let to_json t =
  let cause_obj =
    List.map
      (fun c ->
        let i = cause_index c in
        ( cause_name c,
          Json.Obj
            [
              ("count", Json.Int t.counts.(i));
              ("total_ns", Json.Float t.totals.(i));
            ] ))
      all_causes
  in
  let entry_json e =
    Json.Obj
      [
        ("cause", Json.String (cause_name e.cause));
        ("start_ns", Json.Float e.start_ns);
        ("dur_ns", Json.Float e.dur_ns);
        ("epoch", Json.Int e.epoch);
      ]
  in
  Json.Obj
    [
      ("causes", Json.Obj cause_obj);
      ("entries", Json.List (List.map entry_json (entries t)));
    ]
