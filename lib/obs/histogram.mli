(** Log-scale histogram for latency and size distributions.

    Values land in geometric buckets — 8 sub-buckets per power of two, so
    any recorded value is at most ~12.5% away from its bucket boundary and
    the memory footprint is a few hundred ints regardless of range. That
    is the standard trade for perf telemetry (HdrHistogram-style): exact
    count/sum/min/max, approximate quantiles.

    Negative values are clamped to 0; everything below 1.0 shares the
    first bucket (the simulator's costs are ≥ 1 ns, so nothing of
    interest lives there). *)

type t

val create : unit -> t
val record : t -> float -> unit

val count : t -> int
val sum : t -> float
val min_value : t -> float
(** 0.0 when empty. *)

val max_value : t -> float

val mean : t -> float
(** 0.0 when empty. *)

val percentile : t -> float -> float
(** [percentile t q] for [q] in [0,1]: linear interpolation by rank
    within the bucket holding that rank (exact for uniform in-bucket
    placement; the old bucket-midpoint answer over-reported extreme
    ranks like p999 by up to half a bucket width), clamped to the exact
    observed [min]/[max]. 0.0 when empty. *)

val merge_into : into:t -> t -> unit
(** Add [src]'s buckets and totals into [into]; [src] is unchanged. *)

val diff : after:t -> before:t -> t
(** Bucket-wise difference for window measurements ([before] must be a
    snapshot of the same histogram earlier in time). Quantiles of the
    window are exact at bucket granularity; [min]/[max] are recomputed
    from the window's occupied bucket boundaries (the tightest estimate
    available — per-bucket exact extremes are not retained), never from
    [after]'s all-time extremes. *)

val copy : t -> t

val to_json : t -> Json.t
(** [{count, sum, mean, min, max, p50, p90, p99, p999, p9999}]. *)
