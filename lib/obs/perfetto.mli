(** Chrome/Perfetto [trace_event] JSON exporter.

    Renders {!Trace} rings (and optional {!Series}) as a
    [{"traceEvents": [...]}] document that loads directly in
    {{:https://ui.perfetto.dev}Perfetto} or [chrome://tracing]:

    - {!Trace.Span_begin}/{!Trace.Span_end} become ["B"]/["E"] nesting
      slices;
    - {!Trace.Sfence}/{!Trace.Wbinvd} become complete (["X"]) slices whose
      width is the simulated cost that was charged for them;
    - consecutive {!Trace.Epoch_advance} markers are folded into
      synthesized ["epoch N"] slices, so each epoch's dirty-line buildup
      and boundary flush burst reads as one box;
    - everything else becomes an instant event with its payload in
      [args];
    - each series becomes a Perfetto counter track (["C"] events).

    Timestamps convert from simulated ns to the format's microseconds. *)

val export :
  ?pid:int ->
  ?series:(string * Series.t) list ->
  ?stalls:(string * Stall.t) list ->
  tracks:(string * Trace.t) list ->
  unit ->
  Json.t
(** One track (tid) per named trace ring — shards pass one ring each.
    Track names appear via [thread_name] metadata events. Each named
    {!Stall} ledger becomes its own dedicated track (tids above the trace
    tracks) of complete slices named by {!Stall.cause_name}, so a shard's
    stalls read side by side with its op timeline. *)

val events_of_stalls : pid:int -> tid:int -> Stall.t -> Json.t list
(** The raw slice list for one stall ledger (no metadata, no wrapper). *)

val events_of_trace : pid:int -> tid:int -> Trace.t -> Json.t list
(** The raw event list for one ring (no wrapper object). *)

val counter_events : pid:int -> name:string -> Series.t -> Json.t list
