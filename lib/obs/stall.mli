(** Stall ledger: a bounded per-shard ring of attributed stall intervals.

    A "stall" is a window of simulated time during which the shard made no
    progress on user operations because the runtime was busy with
    persistence machinery: an epoch flush, an sfence-backed clwb sweep, an
    external-log append or wrap-forced checkpoint, a limbo merge, the
    allocator's bump slow path, a transaction fence, or recovery. Each
    stall is recorded as [{cause; start_ns; dur_ns; epoch}] on the
    simulated clock, bumped into a per-cause [stall.<cause>_ns] histogram,
    and kept in a bounded ring so the bench harness can correlate slow
    operations against the stalls that overlapped them.

    Scoping is outermost-wins: instrumentation sites open a scope with
    {!enter}/{!exit}; nested scopes (an sfence inside an extlog append
    inside a txn fence) are swallowed by the outermost one, so each unit
    of stalled time is attributed to exactly one root cause and never
    double-counted. {!leaf} records a point stall only when no scope is
    open (the sfence/wbinvd hooks inside {!Nvm.Region} use it, so they are
    free-standing stalls between epochs and absorbed during one).

    One ledger belongs to one region (= one shard = one domain); no
    internal locking. *)

type cause =
  | Epoch_advance  (** stop-the-world wbinvd flush + durable epoch write *)
  | Clwb_sweep  (** sfence-backed clwb drain outside any coarser scope *)
  | Extlog  (** external-log append/seal, or a wrap-forced checkpoint *)
  | Limbo_merge  (** allocator limbo-chain merge at a checkpoint *)
  | Alloc_slow  (** allocator bump slow path (fresh chunk carve-out) *)
  | Txn_fence  (** transaction prepare/commit-record/watermark fences *)
  | Recovery  (** post-crash recovery, all phases *)
  | Net_queue
      (** time a request spent parked in a server shard queue before its
          shard domain picked it up (the serving layer's queueing delay;
          wall clock — the queue exists outside the simulated memory
          system) *)

val all_causes : cause list
(** Every constructor, in declaration order (exhaustiveness tests and
    per-cause tables iterate this). *)

val cause_name : cause -> string
(** Stable lowercase name: ["epoch_advance"], ["clwb_sweep"], ... — used
    as the [stall.<cause>_ns] metric suffix and the Perfetto slice name. *)

val cause_index : cause -> int
(** Position in {!all_causes} — the wire protocol's cause byte. *)

val cause_of_index : int -> cause option
(** Inverse of {!cause_index}; [None] out of range. *)

type entry = {
  cause : cause;
  start_ns : float;  (** simulated-clock start of the stall *)
  dur_ns : float;
  epoch : int;  (** shard epoch current when the stall was recorded *)
}

val dominant_cause : entry list -> t0:float -> t1:float -> cause option
(** The cause with the largest total overlap against the [t0, t1) window
    among [entries] (typically an {!overlapping} result); [None] when
    nothing overlaps. The bench runner's slow-op attribution and the
    server's per-request stall reporting share this. *)

type t

val create : ?capacity:int -> ?registry:Registry.t -> unit -> t
(** Ring of at most [capacity] (default 1024) entries. When [registry] is
    given, per-cause [stall.<cause>_ns] histograms are created in it so
    stall durations surface through the ordinary metrics pipeline. *)

val set_epoch : t -> int -> unit
(** Stamp subsequent entries with this epoch (the epoch manager owns the
    epoch counter; the region that owns the ledger does not). *)

val set_min_dur_ns : t -> float -> unit
(** Ring admission filter: entries shorter than this are still counted in
    histograms and per-cause totals but not kept in the ring (per-op
    sfences would otherwise evict the interesting entries). Default 0. *)

val record : t -> cause -> start_ns:float -> dur_ns:float -> unit
(** Record one stall directly (tests / out-of-band sites). *)

val enter : t -> cause -> now:float -> unit
(** Open a scope at simulated time [now]. Nested calls only bump a depth
    counter — the outermost cause wins. *)

val exit : t -> now:float -> unit
(** Close the innermost scope; when the outermost closes, one entry is
    recorded spanning [enter]'s [now] to this [now]. Unbalanced [exit]
    (no open scope) is a no-op. *)

val in_scope : t -> bool
(** True while any scope is open (leaf recordings are suppressed). *)

val leaf : t -> cause -> start_ns:float -> dur_ns:float -> unit
(** Record a point stall unless a scope is open (in which case the open
    scope already accounts for this time). *)

val length : t -> int
(** Entries currently held in the ring. *)

val capacity : t -> int

val admitted : t -> int
(** Lifetime count of entries admitted to the ring (≥ [length]; the
    difference is what wrapped out). *)

val entries : t -> entry list
(** Ring contents, oldest first. *)

val overlapping : t -> t0:float -> t1:float -> entry list
(** Ring entries whose [start_ns, start_ns + dur_ns) interval intersects
    [t0, t1), oldest first. *)

val counts : t -> (cause * int) list
(** Lifetime per-cause entry counts (unfiltered by [min_dur_ns]), in
    {!all_causes} order. *)

val totals_ns : t -> (cause * float) list
(** Lifetime per-cause total stalled nanoseconds (unfiltered), in
    {!all_causes} order. *)

val clear : t -> unit
(** Drop ring contents, lifetime counts/totals and any open scope (the
    registry histograms, if any, are left alone — window measurements
    already diff those). *)

val to_json : t -> Json.t
(** [{"causes": {name: {count, total_ns}}, "entries": [...]}] — entries
    oldest first, each [{cause, start_ns, dur_ns, epoch}]. *)
