type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/Infinity literals; map them to null rather than emit an
   unparseable file. *)
let add_float buf f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> Buffer.add_string buf "null"
  | _ ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec write buf indent v =
  let nl i =
    match indent with
    | None -> ()
    | Some _ ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (2 * i) ' ')
  in
  let level = match indent with None -> 0 | Some i -> i in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> add_escaped buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          write buf (Option.map (fun _ -> level + 1) indent) item)
        items;
      nl level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          add_escaped buf k;
          Buffer.add_char buf ':';
          (match indent with Some _ -> Buffer.add_char buf ' ' | None -> ());
          write buf (Option.map (fun _ -> level + 1) indent) item)
        fields;
      nl level;
      Buffer.add_char buf '}'

let to_buffer buf v = write buf None v

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 256 in
  write buf (Some 0) v;
  Buffer.contents buf

(* --- parsing ----------------------------------------------------------- *)

exception Parse_error of string

type parser_state = { s : string; mutable pos : int }

let fail p msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg p.pos))

let peek p = if p.pos < String.length p.s then Some p.s.[p.pos] else None

let skip_ws p =
  while
    p.pos < String.length p.s
    && match p.s.[p.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    p.pos <- p.pos + 1
  done

let expect p c =
  match peek p with
  | Some c' when c' = c -> p.pos <- p.pos + 1
  | _ -> fail p (Printf.sprintf "expected '%c'" c)

let literal p word v =
  let n = String.length word in
  if p.pos + n <= String.length p.s && String.sub p.s p.pos n = word then begin
    p.pos <- p.pos + n;
    v
  end
  else fail p ("expected " ^ word)

(* Encode a Unicode scalar value as UTF-8 (for \uXXXX escapes). *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    if p.pos >= String.length p.s then fail p "unterminated string";
    let c = p.s.[p.pos] in
    p.pos <- p.pos + 1;
    if c = '"' then Buffer.contents buf
    else if c = '\\' then begin
      (if p.pos >= String.length p.s then fail p "unterminated escape";
       let e = p.s.[p.pos] in
       p.pos <- p.pos + 1;
       match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'u' ->
           if p.pos + 4 > String.length p.s then fail p "truncated \\u escape";
           let hex = String.sub p.s p.pos 4 in
           p.pos <- p.pos + 4;
           let code =
             try int_of_string ("0x" ^ hex)
             with Failure _ -> fail p "bad \\u escape"
           in
           add_utf8 buf code
       | _ -> fail p "bad escape");
      loop ()
    end
    else begin
      Buffer.add_char buf c;
      loop ()
    end
  in
  loop ()

let parse_number p =
  let start = p.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    p.pos < String.length p.s && is_num_char p.s.[p.pos]
  do
    p.pos <- p.pos + 1
  done;
  let tok = String.sub p.s start (p.pos - start) in
  let is_float =
    String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
  in
  if is_float then
    match float_of_string_opt tok with
    | Some f -> Float f
    | None -> fail p ("bad number " ^ tok)
  else
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        (* Integer literal too wide for OCaml's int: keep the magnitude. *)
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail p ("bad number " ^ tok))

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail p "unexpected end of input"
  | Some 'n' -> literal p "null" Null
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some '"' -> String (parse_string p)
  | Some '[' ->
      expect p '[';
      skip_ws p;
      if peek p = Some ']' then begin
        p.pos <- p.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              p.pos <- p.pos + 1;
              items (v :: acc)
          | Some ']' ->
              p.pos <- p.pos + 1;
              List.rev (v :: acc)
          | _ -> fail p "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '{' ->
      expect p '{';
      skip_ws p;
      if peek p = Some '}' then begin
        p.pos <- p.pos + 1;
        Obj []
      end
      else begin
        let field () =
          skip_ws p;
          let k = parse_string p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws p;
          match peek p with
          | Some ',' ->
              p.pos <- p.pos + 1;
              fields (kv :: acc)
          | Some '}' ->
              p.pos <- p.pos + 1;
              List.rev (kv :: acc)
          | _ -> fail p "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some c -> fail p (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let p = { s; pos = 0 } in
  let v = parse_value p in
  skip_ws p;
  if p.pos <> String.length s then fail p "trailing garbage";
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

let find v key =
  match v with Obj fields -> List.assoc_opt key fields | _ -> None

let rec find_path v = function
  | [] -> Some v
  | k :: rest -> (
      match find v k with None -> None | Some v' -> find_path v' rest)

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
