type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/Infinity literals; map them to null rather than emit an
   unparseable file. *)
let add_float buf f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> Buffer.add_string buf "null"
  | _ ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec write buf indent v =
  let nl i =
    match indent with
    | None -> ()
    | Some _ ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (2 * i) ' ')
  in
  let level = match indent with None -> 0 | Some i -> i in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> add_escaped buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          write buf (Option.map (fun _ -> level + 1) indent) item)
        items;
      nl level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          add_escaped buf k;
          Buffer.add_char buf ':';
          (match indent with Some _ -> Buffer.add_char buf ' ' | None -> ());
          write buf (Option.map (fun _ -> level + 1) indent) item)
        fields;
      nl level;
      Buffer.add_char buf '}'

let to_buffer buf v = write buf None v

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 256 in
  write buf (Some 0) v;
  Buffer.contents buf
