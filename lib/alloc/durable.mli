(** The durable NVM allocator (§5): segregated free lists whose state rolls
    back to the beginning of a failed epoch, with no write-backs or fences
    on the allocation critical path.

    Reclamation is epoch-based (like Masstree's): [dealloc] pushes the chunk
    onto a per-class {e limbo} list, which is merged into the free list at
    the next checkpoint, so a chunk can only be re-allocated in an epoch
    after the one that freed it. Rollback therefore never resurrects a chunk
    that live data could have scribbled on, which is why buffer contents
    need no logging (§5).

    Free-list heads live in superblock metadata lines ({!Meta_line});
    chunk [next] pointers carry their own in-line undo copy
    ({!Chunk_header}). Chunk-header recovery is lazy — performed when the
    chunk is next touched — mirroring the paper's lazy node recovery. *)

type t

exception Heap_full

exception
  Corrupt_chain of { head : int; at : int; steps : int; reason : string }
(** A guarded chain walk ({!iter_chain-style} walks inside the limbo
    merge, {!recover_all_chains}, {!free_count} …) found structural
    corruption: a cycle, an out-of-bounds link or a mis-aligned link.
    [head] is the chain's head chunk, [at] the chunk whose [next] was
    bad, [steps] how many links had been followed. Walks raise this
    instead of hanging; the recovery path converts it into a chain
    quarantine (see {!quarantined}). *)

val create : Epoch.Manager.t -> t
(** Initialise allocator metadata on a fresh region (after
    [Nvm.Superblock.format]) and subscribe the limbo merge to checkpoints. *)

val open_after_crash : Epoch.Manager.t -> t
(** Recover allocator roots after a crash: restore every metadata line from
    its in-line undo copy, rebuild transient limbo tails, and subscribe the
    limbo merge. Chunk headers recover lazily afterwards. *)

val alloc : ?aligned:bool -> t -> size:int -> int
(** Allocate a payload of at least [size] bytes; returns a 16-byte-aligned
    payload address (cache-line aligned when [aligned] — used for tree
    nodes, whose InCLL lines must coincide with hardware lines). No flush,
    no fence (§5). *)

val dealloc : t -> int -> unit
(** Return a payload pointer obtained from [alloc]. The chunk becomes
    allocatable at the next checkpoint. *)

val payload_capacity_of : t -> int -> int
(** Usable bytes of the chunk backing this payload pointer. *)

val recover_all_chains : t -> unit
(** Eagerly recover every chunk header reachable from the free and limbo
    lists (used before clearing the failed-epoch set). *)

val check_chains : t -> unit
(** Walk every free and limbo list and validate chunk headers; raises
    [Failure] on corruption (testing aid). *)

(** {1 Corruption handling} *)

val quarantined : t -> int
(** Chains quarantined since this handle was opened: a walk raised
    {!Corrupt_chain} during the limbo merge or {!recover_all_chains},
    and the whole chain was unlinked (its blocks leak) so the store
    could keep running. Mirrored in the ["alloc.quarantined_chains"]
    registry counter. Always 0 in a healthy store — CI fails red when a
    chaos run reports otherwise. *)

type chain_error = { cls : int; kind : string; head : int; detail : string }
(** One invariant violation: [kind] is ["free"] or ["limbo"]. *)

type report = {
  free_chunks : int;  (** chunks reachable from all free chains *)
  limbo_chunks : int;  (** chunks reachable from all limbo chains *)
  errors : chain_error list;  (** empty iff the allocator is clean *)
}

val validate : t -> report
(** Full allocator invariant check (the fsck entry point): every free
    and limbo chain acyclic and in-bounds, chunk headers agreeing with
    their chain's size class, every chunk inside [heap start, bump), and
    no chunk reachable from two chains. Collects all violations rather
    than raising. *)

val forget_limbo_tails : t -> unit
(** Drop the transient limbo tail cache, forcing the next limbo merge to
    re-walk each chain as it must after a crash (testing aid for the
    walk's cycle guard). *)

(** {1 Statistics} *)

val allocs : t -> int
val deallocs : t -> int
val freelist_allocs : t -> int
val bump_allocs : t -> int
val bump_position : t -> int
val free_count : t -> cls:int -> int
(** Length of a class's free list (walks it; testing aid). *)

val limbo_count : t -> cls:int -> int
