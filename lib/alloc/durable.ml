exception Heap_full

exception
  Corrupt_chain of { head : int; at : int; steps : int; reason : string }

type t = {
  region : Nvm.Region.t;
  em : Epoch.Manager.t;
  heap_start : int;
  heap_end : int;
  limbo_tails : int array;  (* transient; 0 = unknown/empty *)
  mutable allocs : int;
  mutable deallocs : int;
  mutable freelist_allocs : int;
  mutable bump_allocs : int;
  mutable quarantined : int;
  c_quarantined : int ref;  (* "alloc.quarantined_chains" registry counter *)
}

let allocs t = t.allocs
let deallocs t = t.deallocs
let freelist_allocs t = t.freelist_allocs
let bump_allocs t = t.bump_allocs
let quarantined t = t.quarantined

let corrupt ~head ~at ~steps reason =
  raise (Corrupt_chain { head; at; steps; reason })

(* Cheap structural sanity for a [next] pointer before we chase it: 0 is
   the list terminator; anything else must be a 64-aligned heap address.
   Catches wild pointers from cross-linked lines immediately instead of
   letting the walk wander into unrelated metadata. *)
let check_link t ~head ~at ~steps next =
  if next <> 0 then begin
    if next < t.heap_start || next >= t.heap_end then
      corrupt ~head ~at ~steps "next pointer out of heap bounds";
    if next land 63 <> 0 then
      corrupt ~head ~at ~steps "next pointer not 64-byte aligned"
  end

let bump_line = Nvm.Layout.off_bump
let free_line cls = Nvm.Layout.alloc_class_free_line cls
let limbo_line cls = Nvm.Layout.alloc_class_limbo_line cls

let bump_position t = Meta_line.head t.region ~line:bump_line

let current t = Epoch.Manager.current t.em
let marker t = Epoch.Manager.first_epoch_of_run t.em

(* Lazy chunk-header recovery (§5.1): restore [next] from [nextInCLL] when
   the header's counters are torn or its epoch failed. *)
let recover_chunk t chunk =
  let d = Chunk_header.read t.region ~chunk in
  if not d.Chunk_header.ctr_matches then
    Chunk_header.restore t.region ~chunk ~marker_epoch:(marker t)
  else if
    d.Chunk_header.epoch < marker t
    && Epoch.Manager.is_failed t.em d.Chunk_header.epoch
  then Chunk_header.restore t.region ~chunk ~marker_epoch:(marker t)

let chunk_next t chunk =
  recover_chunk t chunk;
  (Chunk_header.read t.region ~chunk).Chunk_header.next

(* First-touch discipline before modifying a chunk's [next] in this epoch. *)
let touch_chunk t chunk =
  recover_chunk t chunk;
  let d = Chunk_header.read t.region ~chunk in
  if d.Chunk_header.epoch <> current t then
    Chunk_header.write_first_touch t.region ~chunk
      ~current_next:d.Chunk_header.next ~epoch:(current t)
      ~cls:d.Chunk_header.size_class

let set_meta_head t ~line v =
  Meta_line.touch t.region ~line ~epoch:(current t);
  Meta_line.set_head t.region ~line v

(* Quarantine (leak-don't-crash degradation): when a chain walk proves
   the chain corrupt, unlink the whole chain by zeroing its head. Every
   block on it leaks, but the allocator and the store stay usable; the
   count is surfaced through [quarantined] / recover_stats and the
   "alloc.quarantined_chains" counter so CI can fail red on it. *)
let quarantine_chain t ~line exn =
  (match exn with
  | Corrupt_chain { head; at; steps; reason } ->
      Nvm.Region.trace_event t.region
        (Obs.Trace.Custom { kind = "alloc_quarantine"; arg = head });
      ignore (at, steps, reason)
  | _ -> ());
  set_meta_head t ~line 0;
  t.quarantined <- t.quarantined + 1;
  incr t.c_quarantined

(* Guarded chain walk: returns the tail of the chain starting at [head],
   raising [Corrupt_chain] on a cycle, an out-of-bounds link or a
   mis-aligned link instead of walking forever. The visited set is
   transient scaffolding — the walk itself only happens on the recovery
   path (transient tail lost in a crash), never on the alloc/dealloc
   fast path. *)
let find_tail t head =
  let visited = Hashtbl.create 64 in
  Hashtbl.add visited head ();
  let rec walk c steps =
    let next = chunk_next t c in
    check_link t ~head ~at:c ~steps next;
    if next = 0 then c
    else begin
      if Hashtbl.mem visited next then
        corrupt ~head ~at:c ~steps "cycle in chain";
      Hashtbl.add visited next ();
      walk next (steps + 1)
    end
  in
  walk head 0

(* Checkpoint subscriber: splice each limbo list onto its free list. Runs
   inside the new epoch, so every store is first-touch logged and a crash
   rolls the merge back atomically with the rest of the epoch. *)
let merge_limbo t () =
  let stalls = Nvm.Region.stalls t.region in
  for cls = 0 to Size_class.count - 1 do
    let lhead = Meta_line.head t.region ~line:(limbo_line cls) in
    if lhead <> 0 then begin
      Chaos.Plan.fire Chaos.Site.Merge_limbo;
      Obs.Stall.enter stalls Obs.Stall.Limbo_merge
        ~now:(Nvm.Stats.sim_ns (Nvm.Region.stats t.region));
      (match
         if t.limbo_tails.(cls) <> 0 then Ok t.limbo_tails.(cls)
         else
           (* Transient tail lost in a crash: walk the chain. *)
           try Ok (find_tail t lhead)
           with Corrupt_chain _ as e -> Error e
       with
      | Ok tail ->
          let fhead = Meta_line.head t.region ~line:(free_line cls) in
          touch_chunk t tail;
          Chunk_header.write_next t.region ~chunk:tail ~next:fhead;
          set_meta_head t ~line:(free_line cls) lhead;
          set_meta_head t ~line:(limbo_line cls) 0
      | Error e -> quarantine_chain t ~line:(limbo_line cls) e);
      Obs.Stall.exit stalls
        ~now:(Nvm.Stats.sim_ns (Nvm.Region.stats t.region))
    end;
    t.limbo_tails.(cls) <- 0
  done

let make region em =
  let cfg = Nvm.Region.config region in
  {
    region;
    em;
    heap_start = Nvm.Layout.heap_off cfg;
    heap_end = cfg.Nvm.Config.size_bytes;
    limbo_tails = Array.make Size_class.count 0;
    allocs = 0;
    deallocs = 0;
    freelist_allocs = 0;
    bump_allocs = 0;
    quarantined = 0;
    c_quarantined =
      Obs.Registry.counter (Nvm.Region.metrics region)
        "alloc.quarantined_chains";
  }

let create em =
  let region = Epoch.Manager.region em in
  let t = make region em in
  let e = current t in
  let cfg = Nvm.Region.config region in
  Meta_line.init region ~line:bump_line ~head:(Nvm.Layout.heap_off cfg)
    ~epoch:e;
  for cls = 0 to Size_class.count - 1 do
    Meta_line.init region ~line:(free_line cls) ~head:0 ~epoch:e;
    Meta_line.init region ~line:(limbo_line cls) ~head:0 ~epoch:e
  done;
  Epoch.Manager.subscribe_post_advance em (merge_limbo t);
  t

let open_after_crash em =
  let region = Epoch.Manager.region em in
  let t = make region em in
  let is_failed = Epoch.Manager.is_failed em in
  let m = marker t in
  Meta_line.recover region ~line:bump_line ~is_failed ~marker:m;
  for cls = 0 to Size_class.count - 1 do
    Meta_line.recover region ~line:(free_line cls) ~is_failed ~marker:m;
    Meta_line.recover region ~line:(limbo_line cls) ~is_failed ~marker:m
  done;
  Epoch.Manager.subscribe_post_advance em (merge_limbo t);
  t

let alloc ?(aligned = false) t ~size =
  let cls =
    if aligned then Size_class.class_of_aligned_payload size
    else Size_class.class_of_payload size
  in
  let head = Meta_line.head t.region ~line:(free_line cls) in
  t.allocs <- t.allocs + 1;
  if head <> 0 then begin
    (* Pop: only the head moves; the chunk's own header is untouched, so
       rollback of this epoch re-links the chunk exactly as it was. *)
    let next = chunk_next t head in
    set_meta_head t ~line:(free_line cls) next;
    t.freelist_allocs <- t.freelist_allocs + 1;
    Size_class.payload_of_chunk ~chunk:head ~aligned
  end
  else begin
    let bump = Meta_line.head t.region ~line:bump_line in
    let sz = Size_class.chunk_size cls in
    if bump + sz > t.heap_end then raise Heap_full;
    (* Bump slow path: carving and initializing a fresh chunk header is
       first-touch logged, markedly slower than the freelist pop. *)
    let stalls = Nvm.Region.stalls t.region in
    Obs.Stall.enter stalls Obs.Stall.Alloc_slow
      ~now:(Nvm.Stats.sim_ns (Nvm.Region.stats t.region));
    set_meta_head t ~line:bump_line (bump + sz);
    Chunk_header.init t.region ~chunk:bump ~epoch:(current t) ~cls;
    t.bump_allocs <- t.bump_allocs + 1;
    Obs.Stall.exit stalls ~now:(Nvm.Stats.sim_ns (Nvm.Region.stats t.region));
    Size_class.payload_of_chunk ~chunk:bump ~aligned
  end

let dealloc t payload =
  let chunk = Size_class.chunk_of_payload payload in
  recover_chunk t chunk;
  let d = Chunk_header.read t.region ~chunk in
  let cls = d.Chunk_header.size_class in
  if cls < 0 || cls >= Size_class.count then
    invalid_arg "Durable.dealloc: not an allocator chunk";
  let lhead = Meta_line.head t.region ~line:(limbo_line cls) in
  touch_chunk t chunk;
  Chunk_header.write_next t.region ~chunk ~next:lhead;
  set_meta_head t ~line:(limbo_line cls) chunk;
  if lhead = 0 then t.limbo_tails.(cls) <- chunk;
  t.deallocs <- t.deallocs + 1

let payload_capacity_of t payload =
  let chunk = Size_class.chunk_of_payload payload in
  let d = Chunk_header.read t.region ~chunk in
  Size_class.payload_capacity ~cls:d.Chunk_header.size_class
    ~aligned:(payload land 63 = 0)

(* Every chain iteration carries the same guard as [find_tail]: a cyclic
   or wild chain is an immediate [Corrupt_chain] (with the chain head and
   the step count reached), never a hang. *)
let iter_chain t head f =
  if head <> 0 then begin
    check_link t ~head ~at:0 ~steps:0 head;
    let visited = Hashtbl.create 64 in
    Hashtbl.add visited head ();
    let rec loop c steps =
      f c;
      let next = chunk_next t c in
      check_link t ~head ~at:c ~steps next;
      if next <> 0 then begin
        if Hashtbl.mem visited next then
          corrupt ~head ~at:c ~steps "cycle in chain";
        Hashtbl.add visited next ();
        loop next (steps + 1)
      end
    in
    loop head 0
  end

let recover_all_chains t =
  for cls = 0 to Size_class.count - 1 do
    let eager line =
      try iter_chain t (Meta_line.head t.region ~line) (fun _ -> ())
      with Corrupt_chain _ as e -> quarantine_chain t ~line e
    in
    eager (free_line cls);
    eager (limbo_line cls)
  done

let count_chain t head =
  let n = ref 0 in
  iter_chain t head (fun _ -> incr n);
  !n

let free_count t ~cls = count_chain t (Meta_line.head t.region ~line:(free_line cls))
let limbo_count t ~cls = count_chain t (Meta_line.head t.region ~line:(limbo_line cls))

let check_chains t =
  for cls = 0 to Size_class.count - 1 do
    let check c =
      let d = Chunk_header.read t.region ~chunk:c in
      if d.Chunk_header.size_class <> cls then
        failwith
          (Printf.sprintf
             "Durable.check_chains: chunk %d in class-%d list has class %d" c
             cls d.Chunk_header.size_class)
    in
    iter_chain t (Meta_line.head t.region ~line:(free_line cls)) check;
    iter_chain t (Meta_line.head t.region ~line:(limbo_line cls)) check
  done

let forget_limbo_tails t = Array.fill t.limbo_tails 0 Size_class.count 0

type chain_error = { cls : int; kind : string; head : int; detail : string }

type report = {
  free_chunks : int;
  limbo_chunks : int;
  errors : chain_error list;
}

(* Full allocator invariant check (the fsck entry point): every free and
   limbo chain must be acyclic and in-bounds, every chunk header must
   agree with its chain's size class, every chunk must lie inside
   [heap_start, bump), and no chunk may be reachable from two chains.
   Collects every violation instead of stopping at the first. *)
let validate t =
  let errors = ref [] in
  let owner : (int, int * string) Hashtbl.t = Hashtbl.create 256 in
  let bump = bump_position t in
  let free_chunks = ref 0 and limbo_chunks = ref 0 in
  for cls = 0 to Size_class.count - 1 do
    List.iter
      (fun (kind, line, counter) ->
        let head = Meta_line.head t.region ~line in
        let err detail = errors := { cls; kind; head; detail } :: !errors in
        try
          iter_chain t head (fun c ->
              incr counter;
              (match Hashtbl.find_opt owner c with
              | Some (ocls, okind) ->
                  err
                    (Printf.sprintf
                       "chunk %d also reachable from the %s chain of class %d"
                       c okind ocls)
              | None -> Hashtbl.add owner c (cls, kind));
              let d = Chunk_header.read t.region ~chunk:c in
              if d.Chunk_header.size_class <> cls then
                err
                  (Printf.sprintf
                     "chunk %d header claims class %d, chain is class %d" c
                     d.Chunk_header.size_class cls);
              if c < t.heap_start || c + Size_class.chunk_size cls > bump then
                err
                  (Printf.sprintf "chunk %d outside [heap start, bump)" c))
        with Corrupt_chain { at; steps; reason; _ } ->
          err
            (Printf.sprintf "corrupt chain after %d steps at chunk %d: %s"
               steps at reason))
      [
        ("free", free_line cls, free_chunks);
        ("limbo", limbo_line cls, limbo_chunks);
      ]
  done;
  {
    free_chunks = !free_chunks;
    limbo_chunks = !limbo_chunks;
    errors = List.rev !errors;
  }
