type decoded = {
  next : int;
  next_incll : int;
  epoch : int;
  ctr_matches : bool;
  size_class : int;
}

let encode ~ptr ~ctr ~cls2 ~half =
  if ptr land 15 <> 0 then invalid_arg "Chunk_header: unaligned pointer";
  let open Int64 in
  logor
    (of_int (ctr land 3))
    (logor
       (shift_left (of_int (ptr lsr 4)) 2)
       (logor
          (shift_left (of_int (cls2 land 3)) 46)
          (shift_left (of_int (half land 0xffff)) 48)))

let decode_word w =
  let ctr = Util.Bits.get_int w ~lo:0 ~width:2 in
  let ptr = Util.Bits.get_int w ~lo:2 ~width:44 lsl 4 in
  let cls2 = Util.Bits.get_int w ~lo:46 ~width:2 in
  let half = Util.Bits.get_int w ~lo:48 ~width:16 in
  (ctr, ptr, cls2, half)

let read region ~chunk =
  let w0 = Nvm.Region.read_i64 region chunk in
  let w1 = Nvm.Region.read_i64 region (chunk + 8) in
  let ctr0, ptr0, cls_lo, hi = decode_word w0 in
  let ctr1, ptr1, cls_hi, lo = decode_word w1 in
  {
    next = ptr0;
    next_incll = ptr1;
    epoch = (hi lsl 16) lor lo;
    ctr_matches = ctr0 = ctr1;
    size_class = (cls_hi lsl 2) lor cls_lo;
  }

let write_words region ~chunk ~next ~next_incll ~ctr ~epoch ~cls =
  let hi = (epoch lsr 16) land 0xffff and lo = epoch land 0xffff in
  (* word1 (the log copy) strictly before word0; same line => PCSO keeps
     this order on a crash. *)
  Nvm.Region.write_i64 region (chunk + 8)
    (encode ~ptr:next_incll ~ctr ~cls2:(cls lsr 2) ~half:lo);
  Nvm.Region.write_i64 region chunk
    (encode ~ptr:next ~ctr ~cls2:cls ~half:hi);
  Nvm.Region.release_fence region

let write_first_touch region ~chunk ~current_next ~epoch ~cls =
  let w0 = Nvm.Region.read_i64 region chunk in
  let ctr0, _, _, _ = decode_word w0 in
  write_words region ~chunk ~next:current_next ~next_incll:current_next
    ~ctr:((ctr0 + 1) land 3) ~epoch ~cls

let write_next region ~chunk ~next =
  let w0 = Nvm.Region.read_i64 region chunk in
  let ctr, _, cls_lo, hi = decode_word w0 in
  Nvm.Region.write_i64 region chunk
    (encode ~ptr:next ~ctr ~cls2:cls_lo ~half:hi)

let init region ~chunk ~epoch ~cls =
  write_words region ~chunk ~next:0 ~next_incll:0 ~ctr:0 ~epoch ~cls

let restore region ~chunk ~marker_epoch =
  let d = read region ~chunk in
  let w0 = Nvm.Region.read_i64 region chunk in
  let ctr0, _, _, _ = decode_word w0 in
  (* The new ctr must differ from word0's current one: [write_words] emits
     word1 first, so a crash that persists only word1 would otherwise leave
     the two ctrs equal by coincidence (old ctr0 = 0) while the decoded
     epoch is a chimera of word0's high half and word1's low half — a state
     that reads as committed but still carries the failed [next]. With
     ctr0+1 a torn restore is always a visible mismatch and simply re-runs. *)
  write_words region ~chunk ~next:d.next_incll ~next_incll:d.next_incll
    ~ctr:((ctr0 + 1) land 3) ~epoch:marker_epoch ~cls:d.size_class
