let width = 14
let node_bytes = 384

let off_version = 0
let off_next = 8
let off_flags = 16
let off_prev = 24
let off_epoch_word = 64
let off_perm_incll = 72
let off_perm = 80
let incll1_off = 256
let incll2_off = 376

let key_off slot =
  if slot < 0 || slot >= width then invalid_arg "Leaf.key_off";
  88 + (8 * slot)

let keylen_off slot =
  if slot < 0 || slot >= width then invalid_arg "Leaf.keylen_off";
  200 + slot

let val_off slot =
  if slot < 0 || slot >= width then invalid_arg "Leaf.val_off"
  else if slot <= 6 then 264 + (8 * slot)
  else 320 + (8 * (slot - 7))

let incll_off slot = if slot <= 6 then incll1_off else incll2_off

(* Layout invariants the InCLL algorithm depends on. *)
let () =
  assert (off_epoch_word / 64 = off_perm / 64);
  assert (off_perm_incll / 64 = off_perm / 64);
  for s = 0 to 6 do
    assert (val_off s / 64 = incll1_off / 64)
  done;
  for s = 7 to 13 do
    assert (val_off s / 64 = incll2_off / 64)
  done

let flag_leaf = 1L

let version region node = Nvm.Region.read_i64 region (node + off_version)
let set_version region node v = Nvm.Region.write_i64 region (node + off_version) v
let next region node = Nvm.Region.read_int region (node + off_next)
let set_next region node v = Nvm.Region.write_int region (node + off_next) v
let prev region node = Nvm.Region.read_int region (node + off_prev)
let set_prev region node v = Nvm.Region.write_int region (node + off_prev) v

let flags region node = Nvm.Region.read_i64 region (node + off_flags)
let layer region node = Util.Bits.get_int (flags region node) ~lo:8 ~width:16
let is_leaf_node region node = Int64.logand (flags region node) flag_leaf = 1L

let epoch_word region node =
  Epoch_word.unpack (Nvm.Region.read_i64 region (node + off_epoch_word))

let set_epoch_word region node (d : Epoch_word.decoded) =
  Nvm.Region.write_i64 region (node + off_epoch_word)
    (Epoch_word.pack ~epoch:d.Epoch_word.epoch
       ~ins_allowed:d.Epoch_word.ins_allowed ~logged:d.Epoch_word.logged)

let perm_incll region node = Nvm.Region.read_i64 region (node + off_perm_incll)
let set_perm_incll region node v = Nvm.Region.write_i64 region (node + off_perm_incll) v
let perm region node = Nvm.Region.read_i64 region (node + off_perm)
let set_perm region node v = Nvm.Region.write_i64 region (node + off_perm) v

let key region node ~slot = Nvm.Region.read_i64 region (node + key_off slot)
let set_key region node ~slot v = Nvm.Region.write_i64 region (node + key_off slot) v
let keylen region node ~slot = Nvm.Region.read_u8 region (node + keylen_off slot)
let set_keylen region node ~slot v = Nvm.Region.write_u8 region (node + keylen_off slot) v

let value region node ~slot =
  Nvm.Region.read_int region (node + val_off slot)

let set_value region node ~slot v =
  Nvm.Region.write_int region (node + val_off slot) v

let incll region node ~slot = Nvm.Region.read_i64 region (node + incll_off slot)
let set_incll region node ~slot v =
  Nvm.Region.write_i64 region (node + incll_off slot) v

let incll_by_index region node ~which =
  Nvm.Region.read_i64 region (node + if which = 0 then incll1_off else incll2_off)

let set_incll_by_index region node ~which v =
  Nvm.Region.write_i64 region
    (node + if which = 0 then incll1_off else incll2_off)
    v

let create (alloc : Alloc.Api.t) region ~layer ~epoch =
  let node = alloc.Alloc.Api.alloc ~aligned:true ~size:node_bytes in
  assert (node land 63 = 0);
  set_version region node 0L;
  set_next region node 0;
  set_prev region node 0;
  Nvm.Region.write_i64 region (node + off_flags)
    (Int64.logor flag_leaf (Int64.of_int (layer lsl 8)));
  set_perm_incll region node Permutation.empty;
  set_epoch_word region node
    { Epoch_word.epoch; ins_allowed = true; logged = false };
  set_perm region node Permutation.empty;
  let inv = Val_incll.invalid ~low_epoch:(epoch land 0xffff) in
  set_incll_by_index region node ~which:0 inv;
  set_incll_by_index region node ~which:1 inv;
  node

type lookup = Found of int | Insert_before of int

let entry_count region node = Permutation.count (perm region node)

let find region node ~slice ~keylen:klen =
  let p = perm region node in
  let n = Permutation.count p in
  let shi = Int64.to_int (Int64.shift_right_logical slice 32)
  and slo = Int64.to_int (Int64.logand slice 0xFFFF_FFFFL) in
  (* Invariant: entries at ranks < lo are smaller, at ranks >= hi are
     greater or equal. The probe reads keylen before the key slice (the
     argument order of [Key.compare_entry], which this unboxed comparison
     replaces) and compares via {!Nvm.Region.compare_u64}, so a search
     allocates nothing. *)
  let rec loop lo hi =
    if lo >= hi then Insert_before lo
    else begin
      let mid = (lo + hi) / 2 in
      let slot = Permutation.slot_at_rank p mid in
      let kl = keylen region node ~slot in
      let c =
        Nvm.Region.compare_u64 region (node + key_off slot) ~hi:shi ~lo:slo
      in
      let c = if c <> 0 then c else compare (kl : int) klen in
      if c = 0 then Found mid
      else if c < 0 then loop (mid + 1) hi
      else loop lo mid
    end
  in
  loop 0 n
