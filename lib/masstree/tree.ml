type op_stats = {
  mutable puts : int;
  mutable inserts : int;
  mutable updates : int;
  mutable gets : int;
  mutable removes : int;
  mutable scans : int;
  mutable leaf_splits : int;
  mutable internal_splits : int;
  mutable root_splits : int;
  mutable layer_creations : int;
  mutable leaf_removals : int;
  mutable internal_splices : int;
  mutable root_collapses : int;
  mutable layer_prunes : int;
}

type t = {
  region : Nvm.Region.t;
  alloc : Alloc.Api.t;
  hooks : Hooks.t;
  current_epoch : unit -> int;
  mutable root : int;  (* cached copy of the superblock root word *)
  stats : op_stats;
}

(* Where does the current layer's root pointer live? Layer 0: the
   superblock root line; deeper layers: the link slot's value in the
   parent-layer leaf. *)
type root_ref = Top | Val_slot of { leaf : int; slot : int }

let max_value_bytes =
  Alloc.Size_class.payload_capacity
    ~cls:(Alloc.Size_class.count - 1)
    ~aligned:false
  - 8

let region t = t.region
let root t = t.root
let stats t = t.stats

let fresh_stats () =
  {
    puts = 0;
    inserts = 0;
    updates = 0;
    gets = 0;
    removes = 0;
    scans = 0;
    leaf_splits = 0;
    internal_splits = 0;
    root_splits = 0;
    layer_creations = 0;
    leaf_removals = 0;
    internal_splices = 0;
    root_collapses = 0;
    layer_prunes = 0;
  }

let read_root region =
  Nvm.Region.read_int region Nvm.Layout.off_root

let create region alloc hooks ~current_epoch =
  let t =
    { region; alloc; hooks; current_epoch; root = 0; stats = fresh_stats () }
  in
  let leaf = Leaf.create alloc region ~layer:0 ~epoch:(current_epoch ()) in
  Nvm.Region.write_int region Nvm.Layout.off_root leaf;
  (* The initial root must survive even a crash in the first epoch. *)
  Nvm.Region.clwb region Nvm.Layout.off_root;
  Nvm.Region.sfence region;
  t.root <- leaf;
  t

let open_existing region alloc hooks ~current_epoch =
  let t =
    { region; alloc; hooks; current_epoch; root = 0; stats = fresh_stats () }
  in
  t.root <- read_root region;
  if t.root = 0 then failwith "Tree.open_existing: no root recorded";
  t

(* --- value buffers ---------------------------------------------------- *)

let write_value t v =
  let len = String.length v in
  if len > max_value_bytes then invalid_arg "Tree: value too large";
  let buf = t.alloc.Alloc.Api.alloc ~aligned:false ~size:(8 + len) in
  Nvm.Region.write_int t.region buf len;
  if len > 0 then Nvm.Region.write_string t.region (buf + 8) v;
  buf

let read_value t buf =
  let len = Nvm.Region.read_int t.region buf in
  Nvm.Region.read_string t.region (buf + 8) ~len

(* Suffix entries (Masstree's ksuf): the key bytes past the 8-byte slice
   live in the entry's buffer, in front of the value:
   [ suffix_len | suffix (padded to 8) | value_len | value ]. *)
let pad8 n = (n + 7) land lnot 7

let write_suffix_value t ~suffix ~value =
  let slen = String.length suffix and vlen = String.length value in
  if vlen > max_value_bytes then invalid_arg "Tree: value too large";
  if slen > max_value_bytes then invalid_arg "Tree: key too large";
  let buf =
    t.alloc.Alloc.Api.alloc ~aligned:false ~size:(16 + pad8 slen + vlen)
  in
  Nvm.Region.write_int t.region buf slen;
  if slen > 0 then Nvm.Region.write_string t.region (buf + 8) suffix;
  Nvm.Region.write_int t.region (buf + 8 + pad8 slen) vlen;
  if vlen > 0 then
    Nvm.Region.write_string t.region (buf + 16 + pad8 slen) value;
  buf

let read_suffix t buf =
  let slen = Nvm.Region.read_int t.region buf in
  Nvm.Region.read_string t.region (buf + 8) ~len:slen

let read_suffix_value t buf =
  let slen = Nvm.Region.read_int t.region buf in
  let vlen = Nvm.Region.read_int t.region (buf + 8 + pad8 slen) in
  Nvm.Region.read_string t.region (buf + 16 + pad8 slen) ~len:vlen

(* --- descent ----------------------------------------------------------- *)

(* Stack of (internal, child-index) with the immediate parent first. *)
let descend t root slice =
  let rec loop node stack =
    if Leaf.is_leaf_node t.region node then (node, stack)
    else begin
      let idx = Internal.search_child t.region node ~slice in
      loop (Internal.child t.region node ~i:idx) ((node, idx) :: stack)
    end
  in
  loop root []

(* Read-path variant: same walk, same charges, but no ancestor stack —
   lookups and scans never splice, so they need not allocate the spine. *)
let descend_leaf t root slice =
  let rec loop node =
    if Leaf.is_leaf_node t.region node then node
    else
      loop
        (Internal.child t.region node
           ~i:(Internal.search_child t.region node ~slice))
  in
  loop root

(* --- structural modification (splits) ---------------------------------- *)

(* Pre-existing nodes a full-leaf insert will mutate: the leaf, the chain
   of full ancestors, the first non-full ancestor (or the root holder when
   everything is full). Computed before any mutation so the whole set can
   be externally logged up front (§4.2). *)
let structural_log_list t rr stack leaf =
  let sibling =
    match Leaf.next t.region leaf with
    | 0 -> []
    | nx -> [ (nx, Leaf.node_bytes) ]
  in
  let rec walk = function
    | [] -> ([], true)
    | (node, _) :: rest ->
        if Internal.is_full t.region node then begin
          let more, root_change = walk rest in
          ((node, Internal.node_bytes) :: more, root_change)
        end
        else ([ (node, Internal.node_bytes) ], false)
  in
  let internals, root_change = walk stack in
  let root_entry =
    if not root_change then []
    else
      match rr with
      | Top -> [ (Nvm.Layout.off_root, Nvm.Config.line_size) ]
      | Val_slot { leaf = parent_leaf; _ } -> [ (parent_leaf, Leaf.node_bytes) ]
  in
  ((leaf, Leaf.node_bytes) :: sibling) @ internals @ root_entry

let set_root t rr new_root =
  match rr with
  | Top ->
      Nvm.Region.write_int t.region Nvm.Layout.off_root new_root;
      t.root <- new_root
  | Val_slot { leaf; slot } -> Leaf.set_value t.region leaf ~slot new_root

(* Split rank near the middle such that the slices on either side differ
   (internal separators route by slice alone). Some rank always qualifies:
   at most 10 entries can share a slice (9 terminal lengths + 1 link). *)
let pick_split_rank t leaf p =
  let n = Permutation.count p in
  let slice_at rank =
    Leaf.key t.region leaf ~slot:(Permutation.slot_at_rank p rank)
  in
  let ok r =
    r > 0 && r < n && Key.compare_slices (slice_at (r - 1)) (slice_at r) <> 0
  in
  let rec search d =
    if d > n then failwith "Tree: cannot split leaf (all slices equal)"
    else if ok ((n / 2) + d) then (n / 2) + d
    else if ok (n / 2 - d) then (n / 2) - d
    else search (d + 1)
  in
  search 0

let copy_entry t ~src ~src_slot ~dst ~dst_slot =
  Leaf.set_key t.region dst ~slot:dst_slot (Leaf.key t.region src ~slot:src_slot);
  Leaf.set_keylen t.region dst ~slot:dst_slot
    (Leaf.keylen t.region src ~slot:src_slot);
  Leaf.set_value t.region dst ~slot:dst_slot
    (Leaf.value t.region src ~slot:src_slot)

(* Split [leaf]; returns the new right sibling and the separator slice.
   The caller has already externally logged [leaf]. *)
let split_leaf t leaf ~layer =
  let p = Leaf.perm t.region leaf in
  let n = Permutation.count p in
  let sr = pick_split_rank t leaf p in
  let right =
    Leaf.create t.alloc t.region ~layer ~epoch:(t.current_epoch ())
  in
  let moved = n - sr in
  for j = 0 to moved - 1 do
    copy_entry t ~src:leaf
      ~src_slot:(Permutation.slot_at_rank p (sr + j))
      ~dst:right ~dst_slot:j
  done;
  let rp = ref Permutation.empty in
  for j = 0 to moved - 1 do
    rp := fst (Permutation.insert !rp ~rank:j)
  done;
  Leaf.set_perm t.region right !rp;
  let lp = ref p in
  for _ = 1 to moved do
    lp := fst (Permutation.remove !lp ~rank:(Permutation.count !lp - 1))
  done;
  Leaf.set_perm t.region leaf !lp;
  let old_next = Leaf.next t.region leaf in
  Leaf.set_next t.region right old_next;
  Leaf.set_prev t.region right leaf;
  if old_next <> 0 then Leaf.set_prev t.region old_next right;
  Leaf.set_next t.region leaf right;
  t.stats.leaf_splits <- t.stats.leaf_splits + 1;
  (right, Leaf.key t.region right ~slot:0)

(* Split a full internal node; returns the new right sibling and the
   separator pushed up. The caller has already logged [node]. *)
let split_internal t node ~layer =
  let n = Internal.width in
  let mid = n / 2 in
  let sep_up = Internal.key t.region node ~i:mid in
  let right = Internal.create t.alloc t.region ~layer in
  for i = mid + 1 to n - 1 do
    Internal.set_key t.region right ~i:(i - mid - 1)
      (Internal.key t.region node ~i)
  done;
  for i = mid + 1 to n do
    Internal.set_child t.region right ~i:(i - mid - 1)
      (Internal.child t.region node ~i)
  done;
  Internal.set_nkeys t.region right (n - mid - 1);
  Internal.set_nkeys t.region node mid;
  t.stats.internal_splits <- t.stats.internal_splits + 1;
  (right, sep_up)

let rec insert_into_parent t rr ~layer stack ~left ~sep ~right =
  match stack with
  | [] ->
      let nroot = Internal.create t.alloc t.region ~layer in
      Internal.set_child t.region nroot ~i:0 left;
      Internal.set_key t.region nroot ~i:0 sep;
      Internal.set_child t.region nroot ~i:1 right;
      Internal.set_nkeys t.region nroot 1;
      set_root t rr nroot;
      t.stats.root_splits <- t.stats.root_splits + 1
  | (node, _) :: rest ->
      if Internal.is_full t.region node then begin
        let right2, sep_up = split_internal t node ~layer in
        let target =
          if Key.compare_slices sep sep_up >= 0 then right2 else node
        in
        let at = Internal.search_child t.region target ~slice:sep in
        Internal.insert_separator t.region target ~at ~sep ~right;
        insert_into_parent t rr ~layer rest ~left:node ~sep:sep_up
          ~right:right2
      end
      else begin
        let at = Internal.search_child t.region node ~slice:sep in
        Internal.insert_separator t.region node ~at ~sep ~right
      end

(* Insert a fresh entry. [make_v] runs after all hooks so its allocation
   belongs to the epoch that the modification lands in. Returns the leaf,
   slot and value finally written. *)
let insert_entry t rr ~layer stack leaf rank ~slice ~klen ~make_v =
  let write_at target rank =
    let v = make_v () in
    let p = Leaf.perm t.region target in
    let p', slot = Permutation.insert p ~rank in
    Leaf.set_key t.region target ~slot slice;
    Leaf.set_keylen t.region target ~slot klen;
    Leaf.set_value t.region target ~slot v;
    (* Activation last: the entry becomes visible in one permutation
       store (Listing 1's ordering concern is InCLLp's job, §4.1.2). *)
    Leaf.set_perm t.region target p';
    (target, slot, v)
  in
  if not (Permutation.is_full (Leaf.perm t.region leaf)) then begin
    t.hooks.Hooks.pre_leaf_insert ~leaf;
    write_at leaf rank
  end
  else begin
    t.hooks.Hooks.pre_structural (structural_log_list t rr stack leaf);
    let right, sep = split_leaf t leaf ~layer in
    insert_into_parent t rr ~layer stack ~left:leaf ~sep ~right;
    let target = if Key.compare_slices slice sep >= 0 then right else leaf in
    t.hooks.Hooks.pre_leaf_insert ~leaf:target;
    match Leaf.find t.region target ~slice ~keylen:klen with
    | Leaf.Found _ -> assert false
    | Leaf.Insert_before rank -> write_at target rank
  end

(* --- point operations --------------------------------------------------- *)

let slice_info key ~layer =
  let s = Key.slice_at key ~layer in
  (s.Key.bits, Key.has_suffix key ~layer, s.Key.len)

let rec put_rec t rr root ~key ~layer ~value =
  let slice, more, slen = slice_info key ~layer in
  let leaf, stack = descend t root slice in
  t.hooks.Hooks.on_leaf_access ~leaf;
  if not more then begin
    match Leaf.find t.region leaf ~slice ~keylen:slen with
    | Leaf.Found rank ->
        let slot = Permutation.slot_at_rank (Leaf.perm t.region leaf) rank in
        t.hooks.Hooks.pre_leaf_update ~leaf ~slot;
        let old_buf = Leaf.value t.region leaf ~slot in
        let new_buf = write_value t value in
        Leaf.set_value t.region leaf ~slot new_buf;
        t.alloc.Alloc.Api.dealloc old_buf;
        t.stats.updates <- t.stats.updates + 1
    | Leaf.Insert_before rank ->
        ignore
          (insert_entry t rr ~layer stack leaf rank ~slice ~klen:slen
             ~make_v:(fun () -> write_value t value));
        t.stats.inserts <- t.stats.inserts + 1
  end
  else begin
    match Leaf.find t.region leaf ~slice ~keylen:Key.layer_link_len with
    | Leaf.Found rank ->
        let slot = Permutation.slot_at_rank (Leaf.perm t.region leaf) rank in
        let subroot = Leaf.value t.region leaf ~slot in
        put_rec t (Val_slot { leaf; slot }) subroot ~key ~layer:(layer + 1)
          ~value
    | Leaf.Insert_before _ -> (
        let suff = Key.suffix key ~layer in
        match Leaf.find t.region leaf ~slice ~keylen:Key.suffix_len_marker with
        | Leaf.Found rank ->
            let slot =
              Permutation.slot_at_rank (Leaf.perm t.region leaf) rank
            in
            let buf = Leaf.value t.region leaf ~slot in
            let stored = read_suffix t buf in
            if stored = suff then begin
              (* Same long key: an ordinary value update. *)
              t.hooks.Hooks.pre_leaf_update ~leaf ~slot;
              let new_buf = write_suffix_value t ~suffix:suff ~value in
              Leaf.set_value t.region leaf ~slot new_buf;
              t.alloc.Alloc.Api.dealloc buf;
              t.stats.updates <- t.stats.updates + 1
            end
            else begin
              (* Two long keys share the slice: convert the suffix entry
                 into a nested layer holding both. Changing keylen and
                 the value pointer of a live entry is a structural
                 modification — log the whole leaf (§4.2). *)
              t.hooks.Hooks.pre_structural [ (leaf, Leaf.node_bytes) ];
              let sub =
                Leaf.create t.alloc t.region ~layer:(layer + 1)
                  ~epoch:(t.current_epoch ())
              in
              Leaf.set_keylen t.region leaf ~slot Key.layer_link_len;
              Leaf.set_value t.region leaf ~slot sub;
              t.stats.layer_creations <- t.stats.layer_creations + 1;
              let old_value = read_suffix_value t buf in
              (* Re-insert the displaced key: only its bytes past this
                 layer matter, so a zero-padded synthetic prefix works. *)
              let synth = String.make (8 * (layer + 1)) '\000' ^ stored in
              put_rec t (Val_slot { leaf; slot }) sub ~key:synth
                ~layer:(layer + 1) ~value:old_value;
              t.alloc.Alloc.Api.dealloc buf;
              let subroot = Leaf.value t.region leaf ~slot in
              put_rec t (Val_slot { leaf; slot }) subroot ~key
                ~layer:(layer + 1) ~value
            end
        | Leaf.Insert_before rank ->
            ignore
              (insert_entry t rr ~layer stack leaf rank ~slice
                 ~klen:Key.suffix_len_marker
                 ~make_v:(fun () -> write_suffix_value t ~suffix:suff ~value));
            t.stats.inserts <- t.stats.inserts + 1)
  end

let put t ~key ~value =
  t.stats.puts <- t.stats.puts + 1;
  put_rec t Top t.root ~key ~layer:0 ~value

let rec get_rec t root ~key ~layer =
  let slice, more, slen = slice_info key ~layer in
  let leaf = descend_leaf t root slice in
  t.hooks.Hooks.on_leaf_access ~leaf;
  if not more then
    match Leaf.find t.region leaf ~slice ~keylen:slen with
    | Leaf.Insert_before _ -> None
    | Leaf.Found rank ->
        let slot = Permutation.slot_at_rank (Leaf.perm t.region leaf) rank in
        Some (read_value t (Leaf.value t.region leaf ~slot))
  else
    match Leaf.find t.region leaf ~slice ~keylen:Key.layer_link_len with
    | Leaf.Found rank ->
        let slot = Permutation.slot_at_rank (Leaf.perm t.region leaf) rank in
        get_rec t (Leaf.value t.region leaf ~slot) ~key ~layer:(layer + 1)
    | Leaf.Insert_before _ -> (
        match Leaf.find t.region leaf ~slice ~keylen:Key.suffix_len_marker with
        | Leaf.Insert_before _ -> None
        | Leaf.Found rank ->
            let slot =
              Permutation.slot_at_rank (Leaf.perm t.region leaf) rank
            in
            let buf = Leaf.value t.region leaf ~slot in
            if read_suffix t buf = Key.suffix key ~layer then
              Some (read_suffix_value t buf)
            else None)

let get t ~key =
  t.stats.gets <- t.stats.gets + 1;
  get_rec t t.root ~key ~layer:0

let mem t ~key = Option.is_some (get t ~key)

(* Unlink an empty leaf from its layer (it has a parent — a layer-root
   leaf is never unlinked): splice it out of the sibling chain and drop it
   from its parent. A parent left with a single child is replaced by that
   child in the grandparent (or becomes the layer root). All pre-existing
   nodes that change are externally logged first; the leaf itself is
   logged too, so its rollback image is complete, and its chunk goes to
   the allocator's limbo list (resurrected if the epoch fails). *)
let remove_empty_leaf t rr ~layer stack leaf =
  ignore layer;
  let region = t.region in
  let prev = Leaf.prev region leaf and next = Leaf.next region leaf in
  let parent, pidx, rest =
    match stack with
    | (p, i) :: rest -> (p, i, rest)
    | [] -> invalid_arg "remove_empty_leaf: layer root"
  in
  let splice = Internal.nkeys region parent = 1 in
  let log = ref [ (leaf, Leaf.node_bytes); (parent, Internal.node_bytes) ] in
  if prev <> 0 then log := (prev, Leaf.node_bytes) :: !log;
  if next <> 0 then log := (next, Leaf.node_bytes) :: !log;
  if splice then
    (match rest with
    | (gp, _) :: _ -> log := (gp, Internal.node_bytes) :: !log
    | [] ->
        log :=
          (match rr with
          | Top -> (Nvm.Layout.off_root, Nvm.Config.line_size)
          | Val_slot { leaf = pl; _ } -> (pl, Leaf.node_bytes))
          :: !log);
  t.hooks.Hooks.pre_structural !log;
  if prev <> 0 then Leaf.set_next region prev next;
  if next <> 0 then Leaf.set_prev region next prev;
  if splice then begin
    (* The parent had two children; the survivor takes its place. *)
    let keep = Internal.child region parent ~i:(1 - pidx) in
    (match rest with
    | (gp, gidx) :: _ -> Internal.set_child region gp ~i:gidx keep
    | [] ->
        set_root t rr keep;
        t.stats.root_collapses <- t.stats.root_collapses + 1);
    t.alloc.Alloc.Api.dealloc parent;
    t.stats.internal_splices <- t.stats.internal_splices + 1
  end
  else Internal.remove_child region parent ~i:pidx;
  t.alloc.Alloc.Api.dealloc leaf;
  t.stats.leaf_removals <- t.stats.leaf_removals + 1

(* Remove the entry at [rank]. Returns the entry's value pointer (the
   caller deallocates it — a value buffer or a pruned layer root). *)
let remove_entry t rr ~layer stack leaf rank =
  let region = t.region in
  let p = Leaf.perm region leaf in
  let slot = Permutation.slot_at_rank p rank in
  let v = Leaf.value region leaf ~slot in
  if Permutation.count p > 1 || stack = [] then begin
    t.hooks.Hooks.pre_leaf_remove ~leaf;
    let p2, _ = Permutation.remove (Leaf.perm region leaf) ~rank in
    Leaf.set_perm region leaf p2
  end
  else remove_empty_leaf t rr ~layer stack leaf;
  v

let rec remove_rec t rr root ~key ~layer =
  let slice, more, slen = slice_info key ~layer in
  let leaf, stack = descend t root slice in
  t.hooks.Hooks.on_leaf_access ~leaf;
  if not more then begin
    match Leaf.find t.region leaf ~slice ~keylen:slen with
    | Leaf.Insert_before _ -> false
    | Leaf.Found rank ->
        let old_buf = remove_entry t rr ~layer stack leaf rank in
        t.alloc.Alloc.Api.dealloc old_buf;
        true
  end
  else begin
    match Leaf.find t.region leaf ~slice ~keylen:Key.layer_link_len with
    | Leaf.Found rank ->
        let slot = Permutation.slot_at_rank (Leaf.perm t.region leaf) rank in
        let sub = Leaf.value t.region leaf ~slot in
        let removed =
          remove_rec t (Val_slot { leaf; slot }) sub ~key ~layer:(layer + 1)
        in
        (if removed then begin
           (* If the nested layer collapsed to an empty leaf, prune the
              link entry (which may in turn empty this leaf, recursively
              up through the layers as each frame returns). *)
           let sub2 = Leaf.value t.region leaf ~slot in
           if
             Leaf.is_leaf_node t.region sub2
             && Leaf.entry_count t.region sub2 = 0
           then begin
             ignore (remove_entry t rr ~layer stack leaf rank : int);
             t.alloc.Alloc.Api.dealloc sub2;
             t.stats.layer_prunes <- t.stats.layer_prunes + 1
           end
         end);
        removed
    | Leaf.Insert_before _ -> (
        match Leaf.find t.region leaf ~slice ~keylen:Key.suffix_len_marker with
        | Leaf.Insert_before _ -> false
        | Leaf.Found rank ->
            let slot =
              Permutation.slot_at_rank (Leaf.perm t.region leaf) rank
            in
            let buf = Leaf.value t.region leaf ~slot in
            if read_suffix t buf = Key.suffix key ~layer then begin
              ignore (remove_entry t rr ~layer stack leaf rank : int);
              t.alloc.Alloc.Api.dealloc buf;
              true
            end
            else false)
  end

let remove t ~key =
  t.stats.removes <- t.stats.removes + 1;
  remove_rec t Top t.root ~key ~layer:0

(* --- range scans -------------------------------------------------------- *)

(* [local_start]: the residual start key, expressed relative to this
   layer (i.e. with the covering 8-byte prefixes stripped). Returns false
   when [f] asked to stop. *)
let rec scan_layer t root ~prefix ~local_start ~f =
  let target =
    match local_start with
    | None -> { Key.bits = 0L; len = 0 }
    | Some k -> Key.slice_at k ~layer:0
  in
  let target_klen =
    match local_start with
    | None -> 0
    | Some k ->
        (* Between 8 (a full terminal) and 15 (a link), so a key that
           continues past this layer skips the exact-8 terminal. *)
        if Key.has_suffix k ~layer:0 then 9 else target.Key.len
  in
  let leaf0, _ = descend t root target.Key.bits in
  let rec entries leaf rank n p =
    if rank >= n then
      let nx = Leaf.next t.region leaf in
      if nx = 0 then true else visit_leaf nx 0
    else begin
      let slot = Permutation.slot_at_rank p rank in
      let s = Leaf.key t.region leaf ~slot in
      let kl = Leaf.keylen t.region leaf ~slot in
      let keep_going =
        if kl = Key.layer_link_len then begin
          let sub_start =
            match local_start with
            | Some k
              when (Key.slice_at k ~layer:0).Key.bits = s
                   && Key.has_suffix k ~layer:0 ->
                Some (Key.suffix k ~layer:0)
            | _ -> None
          in
          scan_layer t
            (Leaf.value t.region leaf ~slot)
            ~prefix:(prefix ^ Key.bytes_of_slice s ~len:8)
            ~local_start:sub_start ~f
        end
        else if kl = Key.suffix_len_marker then begin
          let buf = Leaf.value t.region leaf ~slot in
          let full_key =
            prefix ^ Key.bytes_of_slice s ~len:8 ^ read_suffix t buf
          in
          (* The rank-space start position cannot order against inline
             suffixes; filter here instead. *)
          let within =
            match local_start with
            | None -> true
            | Some k -> full_key >= prefix ^ k
          in
          (not within) || f full_key (read_suffix_value t buf)
        end
        else begin
          let full_key = prefix ^ Key.bytes_of_slice s ~len:kl in
          f full_key (read_value t (Leaf.value t.region leaf ~slot))
        end
      in
      if keep_going then entries leaf (rank + 1) n p else false
    end
  and visit_leaf leaf from_rank =
    t.hooks.Hooks.on_leaf_access ~leaf;
    let p = Leaf.perm t.region leaf in
    entries leaf from_rank (Permutation.count p) p
  and first_leaf leaf =
    t.hooks.Hooks.on_leaf_access ~leaf;
    let p = Leaf.perm t.region leaf in
    let rank =
      match
        Leaf.find t.region leaf ~slice:target.Key.bits ~keylen:target_klen
      with
      | Leaf.Found r -> r
      | Leaf.Insert_before r -> r
    in
    entries leaf rank (Permutation.count p) p
  in
  first_leaf leaf0

(* Reverse iteration: ranks high-to-low inside a leaf, [prev] links
   between leaves, nested layers visited from their rightmost leaf. The
   residual bound selects the largest entry <= the bound. *)
let rec scan_layer_rev t root ~prefix ~local_bound ~f =
  let target =
    match local_bound with
    | None -> None
    | Some k -> Some (Key.slice_at k ~layer:0)
  in
  let rec rightmost node =
    if Leaf.is_leaf_node t.region node then node
    else rightmost (Internal.child t.region node ~i:(Internal.nkeys t.region node))
  in
  let rec entries leaf rank p =
    if rank < 0 then begin
      let pv = Leaf.prev t.region leaf in
      if pv = 0 then true else visit_leaf pv
    end
    else begin
      let slot = Permutation.slot_at_rank p rank in
      let s = Leaf.key t.region leaf ~slot in
      let kl = Leaf.keylen t.region leaf ~slot in
      let keep_going =
        if kl = Key.layer_link_len then begin
          (* A link's keys all extend its 8-byte slice: relative to a
             bound they are all above (slice above, or equal without a
             suffix to compare into), all below (slice below), or bounded
             by the bound's own suffix. *)
          let verdict =
            match local_bound with
            | None -> `Visit None
            | Some k ->
                let bs = (Key.slice_at k ~layer:0).Key.bits in
                let c = Key.compare_slices s bs in
                if c > 0 then `Skip
                else if c < 0 then `Visit None
                else if Key.has_suffix k ~layer:0 then
                  `Visit (Some (Key.suffix k ~layer:0))
                else `Skip
          in
          match verdict with
          | `Skip -> true
          | `Visit sub_bound ->
              scan_layer_rev t
                (Leaf.value t.region leaf ~slot)
                ~prefix:(prefix ^ Key.bytes_of_slice s ~len:8)
                ~local_bound:sub_bound ~f
        end
        else begin
          let is_suffix = kl = Key.suffix_len_marker in
          let buf = Leaf.value t.region leaf ~slot in
          let full_key =
            if is_suffix then
              prefix ^ Key.bytes_of_slice s ~len:8 ^ read_suffix t buf
            else prefix ^ Key.bytes_of_slice s ~len:kl
          in
          let within =
            match local_bound with
            | None -> true
            | Some k -> full_key <= prefix ^ k
          in
          (not within)
          || f full_key
               (if is_suffix then read_suffix_value t buf
                else read_value t buf)
        end
      in
      if keep_going then entries leaf (rank - 1) p else false
    end
  and visit_leaf leaf =
    t.hooks.Hooks.on_leaf_access ~leaf;
    let p = Leaf.perm t.region leaf in
    entries leaf (Permutation.count p - 1) p
  in
  match target with
  | None -> visit_leaf (rightmost root)
  | Some tg ->
      let leaf0 = descend_leaf t root tg.Key.bits in
      t.hooks.Hooks.on_leaf_access ~leaf:leaf0;
      let p = Leaf.perm t.region leaf0 in
      let tklen =
        match local_bound with
        | Some k when Key.has_suffix k ~layer:0 -> 9
        | Some k -> (Key.slice_at k ~layer:0).Key.len
        | None -> 0
      in
      (* Largest rank at or below the bound. A link entry covering the
         bound sorts above (slice, tklen<=9), so start one past the find
         position and let the per-entry bound check trim. *)
      let from_rank =
        match Leaf.find t.region leaf0 ~slice:tg.Key.bits ~keylen:tklen with
        | Leaf.Found r -> r
        | Leaf.Insert_before r -> min r (Permutation.count p - 1)
      in
      entries leaf0 from_rank p

let fold_from t ~start ~f =
  ignore (scan_layer t t.root ~prefix:"" ~local_start:(Some start) ~f)

let fold_back t ?bound ~f () =
  ignore (scan_layer_rev t t.root ~prefix:"" ~local_bound:bound ~f)

let scan_rev t ?bound ~n () =
  t.stats.scans <- t.stats.scans + 1;
  if n <= 0 then []
  else begin
    let acc = ref [] in
    let count = ref 0 in
    fold_back t ?bound
      ~f:(fun k v ->
        acc := (k, v) :: !acc;
        incr count;
        !count < n)
      ();
    List.rev !acc
  end

let scan t ~start ~n =
  t.stats.scans <- t.stats.scans + 1;
  if n <= 0 then []
  else begin
    let acc = ref [] in
    let count = ref 0 in
    fold_from t ~start ~f:(fun k v ->
        acc := (k, v) :: !acc;
        incr count;
        !count < n);
    List.rev !acc
  end

let iter t f =
  fold_from t ~start:"" ~f:(fun k v ->
      f k v;
      true)

let cardinal t =
  let n = ref 0 in
  (* Count without materialising values. *)
  let rec count_layer root =
    let leaf0 = descend_leaf t root 0L in
    let rec walk leaf =
      if leaf <> 0 then begin
        t.hooks.Hooks.on_leaf_access ~leaf;
        let p = Leaf.perm t.region leaf in
        for r = 0 to Permutation.count p - 1 do
          let slot = Permutation.slot_at_rank p r in
          if Leaf.keylen t.region leaf ~slot = Key.layer_link_len then
            count_layer (Leaf.value t.region leaf ~slot)
          else incr n
        done;
        walk (Leaf.next t.region leaf)
      end
    in
    walk leaf0
  in
  count_layer t.root;
  !n

(* --- structure validation and whole-tree walks -------------------------- *)

let iter_nodes t ~leaf ~internal =
  let rec node n =
    if Leaf.is_leaf_node t.region n then begin
      leaf n;
      let p = Leaf.perm t.region n in
      for r = 0 to Permutation.count p - 1 do
        let slot = Permutation.slot_at_rank p r in
        if Leaf.keylen t.region n ~slot = Key.layer_link_len then
          node (Leaf.value t.region n ~slot)
      done
    end
    else begin
      internal n;
      for i = 0 to Internal.nkeys t.region n do
        node (Internal.child t.region n ~i)
      done
    end
  in
  node t.root

let validate t =
  let region = t.region in
  let fail fmt = Printf.ksprintf failwith fmt in
  (* Returns the in-order list of leaves of one layer's B+ tree. *)
  let rec check_layer root ~depth =
    let leaves = ref [] in
    let rec node n ~lo ~hi =
      if n = 0 then fail "validate: null node pointer"
      else if Leaf.is_leaf_node region n then begin
        (* Behave like any reader: let lazy recovery restore the leaf
           before its contents are judged. *)
        t.hooks.Hooks.on_leaf_access ~leaf:n;
        if Leaf.layer region n <> depth then
          fail "validate: leaf %d has layer %d, expected %d" n
            (Leaf.layer region n) depth;
        let p = Leaf.perm region n in
        if not (Permutation.is_valid p) then
          fail "validate: leaf %d has corrupt permutation" n;
        let c = Permutation.count p in
        for r = 0 to c - 1 do
          let slot = Permutation.slot_at_rank p r in
          let s = Leaf.key region n ~slot in
          let kl = Leaf.keylen region n ~slot in
          if kl > 8 && kl <> Key.layer_link_len && kl <> Key.suffix_len_marker
          then fail "validate: leaf %d slot %d has keylen %d" n slot kl;
          (match lo with
          | Some l when Key.compare_slices s l < 0 ->
              fail "validate: leaf %d entry below lower bound" n
          | _ -> ());
          (match hi with
          | Some h when Key.compare_slices s h >= 0 ->
              fail "validate: leaf %d entry above upper bound" n
          | _ -> ());
          if r > 0 then begin
            let ps = Permutation.slot_at_rank p (r - 1) in
            if
              Key.compare_entry (Leaf.key region n ~slot:ps)
                (Leaf.keylen region n ~slot:ps)
                s kl
              >= 0
            then fail "validate: leaf %d not strictly sorted at rank %d" n r
          end;
          if kl = Key.layer_link_len then
            check_layer (Leaf.value region n ~slot) ~depth:(depth + 1)
        done;
        leaves := n :: !leaves
      end
      else begin
        if Internal.layer region n <> depth then
          fail "validate: internal %d has wrong layer" n;
        let k = Internal.nkeys region n in
        if k < 1 || k > Internal.width then
          fail "validate: internal %d has %d keys" n k;
        for i = 0 to k - 1 do
          if i > 0 then begin
            if
              Key.compare_slices
                (Internal.key region n ~i:(i - 1))
                (Internal.key region n ~i)
              >= 0
            then fail "validate: internal %d keys not ascending" n
          end;
          (match lo with
          | Some l when Key.compare_slices (Internal.key region n ~i) l < 0 ->
              fail "validate: internal %d key below bound" n
          | _ -> ());
          (match hi with
          | Some h when Key.compare_slices (Internal.key region n ~i) h > 0 ->
              fail "validate: internal %d key above bound" n
          | _ -> ())
        done;
        for i = 0 to k do
          let lo' = if i = 0 then lo else Some (Internal.key region n ~i:(i - 1)) in
          let hi' = if i = k then hi else Some (Internal.key region n ~i) in
          node (Internal.child region n ~i) ~lo:lo' ~hi:hi'
        done
      end
    in
    node root ~lo:None ~hi:None;
    (* The doubly-linked leaf chain must equal the in-order sequence, and
       only a layer's root leaf may be empty (emptied leaves are
       unlinked). *)
    let ordered = List.rev !leaves in
    (match ordered with
    | [] -> fail "validate: layer with no leaves"
    | first :: _ ->
        if List.length ordered > 1 then
          List.iter
            (fun l ->
              if Permutation.count (Leaf.perm region l) = 0 then
                fail "validate: empty non-root leaf %d survived" l)
            ordered;
        if Leaf.prev region first <> 0 then
          fail "validate: first leaf has a prev pointer";
        let rec follow2 chain prevl expect =
          match (chain, expect) with
          | 0, [] -> ()
          | 0, _ :: _ -> fail "validate: leaf chain ends early"
          | n, [] -> fail "validate: leaf chain has extra node %d" n
          | n, e :: rest ->
              if n <> e then fail "validate: leaf chain order mismatch";
              if Leaf.prev region n <> prevl then
                fail "validate: leaf %d has wrong prev pointer" n;
              follow2 (Leaf.next region n) n rest
        in
        follow2 first 0 ordered)
  in
  check_layer t.root ~depth:0
