let width = 15
let node_bytes = 384

let off_version = 0
let off_logged_epoch = 8
let off_flags = 16
let off_nkeys = 24

let key_off i =
  if i < 0 || i >= width then invalid_arg "Internal.key_off";
  64 + (8 * i)

let child_off i =
  if i < 0 || i > width then invalid_arg "Internal.child_off";
  192 + (8 * i)

let nkeys region node = Nvm.Region.read_int region (node + off_nkeys)
let set_nkeys region node v =
  Nvm.Region.write_int region (node + off_nkeys) v

let key region node ~i = Nvm.Region.read_i64 region (node + key_off i)
let set_key region node ~i v = Nvm.Region.write_i64 region (node + key_off i) v

let child region node ~i =
  Nvm.Region.read_int region (node + child_off i)

let set_child region node ~i v =
  Nvm.Region.write_int region (node + child_off i) v

let logged_epoch region node =
  Nvm.Region.read_int region (node + off_logged_epoch)

let set_logged_epoch region node v =
  Nvm.Region.write_int region (node + off_logged_epoch) v

let layer region node =
  Util.Bits.get_int
    (Nvm.Region.read_i64 region (node + off_flags))
    ~lo:8 ~width:16

let create (alloc : Alloc.Api.t) region ~layer =
  let node = alloc.Alloc.Api.alloc ~aligned:true ~size:node_bytes in
  assert (node land 63 = 0);
  Nvm.Region.write_i64 region (node + off_version) 0L;
  set_logged_epoch region node 0;
  (* bit 0 clear: not a leaf (shared flag position with Leaf). *)
  Nvm.Region.write_int region (node + off_flags) (layer lsl 8);
  set_nkeys region node 0;
  node

let is_full region node = nkeys region node >= width

let search_child region node ~slice =
  let n = nkeys region node in
  let shi = Int64.to_int (Int64.shift_right_logical slice 32)
  and slo = Int64.to_int (Int64.logand slice 0xFFFF_FFFFL) in
  (* First key strictly greater than [slice] gives the child index;
     unboxed comparison, so the descent allocates nothing. *)
  let rec loop lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if Nvm.Region.compare_u64 region (node + key_off mid) ~hi:shi ~lo:slo <= 0
      then loop (mid + 1) hi
      else loop lo mid
    end
  in
  loop 0 n

let insert_separator region node ~at ~sep ~right =
  let n = nkeys region node in
  if n >= width then invalid_arg "Internal.insert_separator: full";
  if at < 0 || at > n then invalid_arg "Internal.insert_separator: bad index";
  for i = n downto at + 1 do
    set_key region node ~i (key region node ~i:(i - 1))
  done;
  for i = n + 1 downto at + 2 do
    set_child region node ~i (child region node ~i:(i - 1))
  done;
  set_key region node ~i:at sep;
  set_child region node ~i:(at + 1) right;
  set_nkeys region node (n + 1)

let remove_child region node ~i =
  let n = nkeys region node in
  if n < 1 then invalid_arg "Internal.remove_child: no keys";
  if i < 0 || i > n then invalid_arg "Internal.remove_child: bad index";
  (* Dropping child [i] removes the separator between it and a neighbour:
     key [i-1] for i>0, key 0 when the leftmost child goes. *)
  let kdrop = if i = 0 then 0 else i - 1 in
  for j = kdrop to n - 2 do
    set_key region node ~i:j (key region node ~i:(j + 1))
  done;
  for j = i to n - 1 do
    set_child region node ~i:j (child region node ~i:(j + 1))
  done;
  set_nkeys region node (n - 1)
