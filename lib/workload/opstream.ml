type encoded = {
  tags : Bytes.t;  (* '\000' put, '\001' get, '\002' scan *)
  keys : string array;
  values : string array;  (* put payload; "" for get/scan *)
  scan_ns : int array;  (* scan length; 0 for put/get *)
  arrivals : float array;  (* intended arrivals, ns offsets; [||] closed *)
}

let generate spec ~seed ~n =
  let rng = Util.Rng.create ~seed in
  Ycsb.generate spec rng ~n

let key_of = function
  | Ycsb.Put (k, _) | Ycsb.Get k | Ycsb.Scan (k, _) -> k

let encode ops =
  let n = Array.length ops in
  let enc =
    {
      tags = Bytes.create n;
      keys = Array.make n "";
      values = Array.make n "";
      scan_ns = Array.make n 0;
      arrivals = [||];
    }
  in
  Array.iteri
    (fun i op ->
      match op with
      | Ycsb.Put (key, value) ->
          Bytes.unsafe_set enc.tags i '\000';
          enc.keys.(i) <- key;
          enc.values.(i) <- value
      | Ycsb.Get key ->
          Bytes.unsafe_set enc.tags i '\001';
          enc.keys.(i) <- key
      | Ycsb.Scan (start, sn) ->
          Bytes.unsafe_set enc.tags i '\002';
          enc.keys.(i) <- start;
          enc.scan_ns.(i) <- sn)
    ops;
  enc

let length enc = Array.length enc.keys

let route ops ~nshards ~shard_of_key ?interval_ns () =
  let interval = Option.value interval_ns ~default:0.0 in
  let by_shard = Array.make nshards [] in
  Array.iteri
    (fun j op ->
      let s = shard_of_key (key_of op) in
      by_shard.(s) <- (op, float_of_int j *. interval) :: by_shard.(s))
    ops;
  Array.map
    (fun l ->
      let arr = Array.of_list (List.rev l) in
      let enc = encode (Array.map fst arr) in
      if interval_ns = None then enc
      else { enc with arrivals = Array.map snd arr })
    by_shard

let apply sys op =
  match op with
  | Ycsb.Put (key, value) -> Incll.System.put sys ~key ~value
  | Ycsb.Get key -> ignore (Incll.System.get sys ~key : string option)
  | Ycsb.Scan (start, n) ->
      ignore (Incll.System.scan sys ~start ~n : (string * string) list)
