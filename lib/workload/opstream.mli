(** Seeded YCSB op-stream generation and encoding, shared by every driver
    of a store: the in-process bench runner ([Bench_harness.Runner]), the
    network client side of the remote bench ([Bench_harness.Remote]) and
    the server tests' differential oracle. One seed must yield one stream
    everywhere — that is what makes "apply the same stream in-process and
    over the wire, compare final states" a meaningful check. *)

type encoded = {
  tags : Bytes.t;  (** ['\000'] put, ['\001'] get, ['\002'] scan *)
  keys : string array;
  values : string array;  (** put payload; [""] for get/scan *)
  scan_ns : int array;  (** scan length; 0 for put/get *)
  arrivals : float array;
      (** Intended arrival of each op as an ns offset from the start of
          the measured phase (open loop); length 0 in closed loop.
          Assigned in global stream order {e before} shard routing, so a
          fixed offered rate survives any key→shard distribution and each
          shard's sub-schedule stays strictly increasing. *)
}
(** Struct-of-arrays encoding of an op stream, decoded from the variant
    form once so measured loops dispatch on a byte tag and index flat
    arrays — no per-op closure application on the hot path. *)

val generate : Ycsb.spec -> seed:int -> n:int -> Ycsb.op array
(** The canonical seeded stream: a fresh [Util.Rng] from [seed] feeding
    {!Ycsb.generate}. Every driver that wants stream [seed] must use this
    (not its own Rng plumbing), or the differential oracle loses its
    footing. *)

val key_of : Ycsb.op -> string
(** The key an op is routed by (a scan routes by its start key). *)

val encode : Ycsb.op array -> encoded
(** Closed-loop encoding (no arrivals). *)

val length : encoded -> int

val route :
  Ycsb.op array ->
  nshards:int ->
  shard_of_key:(string -> int) ->
  ?interval_ns:float ->
  unit ->
  encoded array
(** Split a global stream into per-shard encoded streams, preserving
    stream order within each shard. With [interval_ns] (open loop), op
    [j] of the {e global} stream is stamped with intended arrival
    [j * interval_ns] before routing. *)

val apply : Incll.System.t -> Ycsb.op -> unit
(** Apply one op to a system (get/scan results discarded) — the single
    in-process apply path the runner and the oracle share. *)
