type mix = A | B | C | E

let mix_of_string s =
  match String.uppercase_ascii s with
  | "A" | "YCSB_A" -> A
  | "B" | "YCSB_B" -> B
  | "C" | "YCSB_C" -> C
  | "E" | "YCSB_E" -> E
  | _ -> invalid_arg ("Ycsb.mix_of_string: " ^ s)

let mix_name = function A -> "YCSB_A" | B -> "YCSB_B" | C -> "YCSB_C" | E -> "YCSB_E"

type dist = Uniform | Zipfian

let dist_name = function Uniform -> "uniform" | Zipfian -> "zipfian"

type op = Put of string * string | Get of string | Scan of string * int

type spec = { mix : mix; dist : dist; nkeys : int }

let max_scan_length = 100
let insert_fraction_e = 0.05

let key_of_rank r = Masstree.Key.of_int64 (Util.Scramble.key_of_rank r)

(* 8-byte value deterministically tied to the key, so reads can verify. *)
let value_for key =
  Masstree.Key.of_int64
    (Util.Scramble.fmix64 (Int64.lognot (Masstree.Key.to_int64 key)))

let load_keys ~nkeys = Array.init nkeys key_of_rank

let write_fraction = function A -> 0.5 | B -> 0.05 | C -> 0.0 | E -> 0.0

let generate spec rng ~n =
  let zipf =
    match spec.dist with
    | Uniform -> None
    | Zipfian -> Some (Util.Zipf.create ~n:spec.nkeys ~theta:0.99)
  in
  let next_rank () =
    match zipf with
    | None -> Util.Rng.int rng spec.nkeys
    | Some z -> Util.Zipf.next z rng
  in
  let wf = write_fraction spec.mix in
  (* YCSB-E's 5% inserts append fresh records past the loaded range, in
     order — the YCSB core "latest insert" pattern. *)
  let next_fresh = ref spec.nkeys in
  Array.init n (fun _ ->
      match spec.mix with
      | E ->
          if Util.Rng.float rng < insert_fraction_e then begin
            let key = key_of_rank !next_fresh in
            incr next_fresh;
            Put (key, value_for key)
          end
          else
            (* Scan length is drawn uniformly from [1, 100] per request,
               per the YCSB core workload E definition. *)
            Scan (key_of_rank (next_rank ()), 1 + Util.Rng.int rng max_scan_length)
      | _ ->
          let key = key_of_rank (next_rank ()) in
          if wf > 0.0 && Util.Rng.float rng < wf then Put (key, value_for key)
          else Get key)
