(** YCSB workload generation as used in the paper's §6.

    - YCSB_A: 50% puts / 50% reads ("write heavy")
    - YCSB_B: 5% puts / 95% reads ("read heavy")
    - YCSB_C: 100% reads
    - YCSB_E: 95% scans (length uniform in [1, 100]) / 5% inserts of
      fresh keys appended past the loaded range

    Keys are drawn from [\[0, nkeys)] either uniformly or from a Zipfian
    distribution with skew 0.99, then scrambled by an invertible 64-bit
    hash "so that frequent keys do not (necessarily) appear in close
    proximity". Keys and values are 8 bytes. *)

type mix = A | B | C | E

val mix_of_string : string -> mix
val mix_name : mix -> string

type dist = Uniform | Zipfian

val dist_name : dist -> string

type op = Put of string * string | Get of string | Scan of string * int

type spec = { mix : mix; dist : dist; nkeys : int }

val key_of_rank : int -> string
(** Scrambled 8-byte key of logical key [rank]. *)

val value_for : string -> string
(** Deterministic 8-byte value derived from a key (verifiable loads). *)

val load_keys : nkeys:int -> string array
(** The [nkeys] scrambled keys, in logical order (for initial population:
    "the tree was initialized with 20 million entries"). *)

val generate : spec -> Util.Rng.t -> n:int -> op array
(** Pre-generate an operation stream so key-generation cost stays out of
    the measured window. *)

val max_scan_length : int
(** 100: YCSB_E scan lengths are uniform in [[1, max_scan_length]]. *)

val insert_fraction_e : float
(** 0.05: YCSB_E's insert share. *)
