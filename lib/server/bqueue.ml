type 'a t = {
  q : 'a Queue.t;
  capacity : int;
  mu : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  {
    q = Queue.create ();
    capacity;
    mu = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let push_aux t x ~bounded =
  Mutex.lock t.mu;
  let ok = (not t.closed) && ((not bounded) || Queue.length t.q < t.capacity) in
  if ok then begin
    Queue.push x t.q;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.mu;
  ok

let try_push t x = push_aux t x ~bounded:true
let push_unbounded t x = push_aux t x ~bounded:false

let pop_batch t ~max =
  Mutex.lock t.mu;
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.nonempty t.mu
  done;
  let n = min max (Queue.length t.q) in
  let out = List.init n (fun _ -> Queue.pop t.q) in
  Mutex.unlock t.mu;
  out

let close t =
  Mutex.lock t.mu;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mu

let length t =
  Mutex.lock t.mu;
  let n = Queue.length t.q in
  Mutex.unlock t.mu;
  n
