(** The serving engine: accept/IO domains feeding per-shard bounded
    queues drained by shard domains (DESIGN.md §16).

    One domain accepts connections; each connection gets a reader domain
    (decode frames, route requests) and a writer domain (flush reply
    frames, in completion order — replies carry request ids, so they may
    leave out of order). Single-key operations are routed by
    {!Store.Sharded.shard_of_key} into that shard's bounded queue; a
    full queue answers BUSY immediately from the reader — the server
    never buffers without bound. Cross-shard operations (SCAN,
    TXN_COMMIT, STATS) are barrier jobs enqueued on {e every} shard
    queue; the last shard domain to arrive runs them exclusively while
    the rest are parked, which gives them the same isolation the
    sequential {!Store.Sharded} facade assumes.

    Each dequeued request records its queueing delay as an
    {!Obs.Stall.Net_queue} stall (wall clock, ns since server start)
    into a server-owned per-shard ledger that shares the shard's metric
    registry, so [stall.net_queue_ns] surfaces through STATS next to the
    simulated-clock persistence stalls. Replies carry that delay plus
    the dominant persistence-stall cause overlapping the request's
    execution window, so a remote client can attribute its own tail
    latency without a second round trip.

    Transaction writes are buffered per connection in the reader;
    TXN_COMMIT replays them through the store's 2PC under a barrier.

    {b Exactly-once dedup (DESIGN.md §17)}: a HELLO frame grants the
    connection a session id; every mutation stamped with a
    [(session_id, seqno)] pair is recorded durably (a fenced
    {!Incll.Session} extlog record) after it applies and before its
    reply is enqueued, and remembered in a bounded per-shard table.
    A replayed stamp — a client retry after a lost reply, possibly
    straddling a server crash-restart — is answered with the recorded
    status instead of re-applied; each hit bumps the shard's
    [server.dedup_hits] counter. Single-key stamps dedup on the key's
    shard (routing is key-deterministic, so the retry lands on the same
    table); commit stamps dedup on the session's home shard
    ([sid mod nshards]) inside the commit barrier. Tables are rebuilt
    from {!Incll.System.recovered_sessions} when starting over a
    recovered store.

    {!stop} drains gracefully: stop accepting, let readers finish their
    in-flight requests and writers flush every outstanding reply, then
    shut the shard domains down. Signal delivery (a SIGTERM handler
    firing mid-drain, say) cannot abort the drain: every blocking
    syscall in the reader, writer and accept loops resumes on EINTR. *)

type t

val start :
  ?config:Incll.System.config ->
  ?queue_capacity:int ->
  (* per-shard request queue bound; default 1024 *)
  ?batch:int ->
  (* max requests a shard domain dequeues at once; default 64 *)
  ?on_dequeue:(shard:int -> unit) ->
  (* test hook: runs on the shard domain after each batch dequeue,
     before execution — block here to force BUSY deterministically *)
  ?store:Store.Sharded.t ->
  (* serve this store instead of creating one — e.g. systems reattached
     from NVM mirrors after a crash-restart; [variant]/[shards]/[config]
     are ignored, and session dedup tables are reseeded from each
     shard's recovered session records *)
  variant:Incll.System.variant ->
  shards:int ->
  Wire.Client.addr ->
  t
(** Bind, listen and spawn the accept + shard domains. [Tcp (host, 0)]
    binds an ephemeral port; read the real one back from {!addr}. *)

val addr : t -> Wire.Client.addr
(** The bound address (ephemeral TCP port resolved). *)

val store : t -> Store.Sharded.t
(** The underlying store. Only safe to touch after {!stop} — while the
    server runs, the shard domains own it. *)

val nshards : t -> int

val stop : t -> unit
(** Graceful drain, idempotent: stop accepting, wait for every
    connection's in-flight requests to finish and its replies to flush,
    then drain and join the shard domains. Connections still queued on
    the listen backlog when stop arrives — their [connect] already
    succeeded, possibly with requests already sent — are accepted and
    drained like established ones; requests delivered before the drain
    reached a connection are served normally, later arrivals are bounced
    [Shutting_down]. *)
