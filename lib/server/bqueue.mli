(** Bounded multi-producer single-consumer queue (Mutex + Condition).

    The serving layer's backpressure primitive: connection readers
    [try_push] requests at shard domains and answer BUSY themselves on
    [false] — the queue never grows past its capacity, so a slow shard
    surfaces as an explicit reply instead of unbounded buffering.
    Barrier jobs and replies use {!push_unbounded}, which ignores the
    capacity: both are bounded by construction (one barrier per shard
    queue at a time per connection, replies by requests in flight). *)

type 'a t

val create : capacity:int -> 'a t

val try_push : 'a t -> 'a -> bool
(** [false] when the queue is full or closed. Never blocks. *)

val push_unbounded : 'a t -> 'a -> bool
(** Enqueue past the capacity limit; [false] only when closed. *)

val pop_batch : 'a t -> max:int -> 'a list
(** Block until at least one element is available, then return up to
    [max] in FIFO order. Returns [[]] only when the queue is closed and
    drained. *)

val close : 'a t -> unit
(** Wake the consumer; subsequent pushes fail. Elements already queued
    can still be popped. *)

val length : 'a t -> int
