module P = Wire.Proto

type conn = {
  fd : Unix.file_descr;
  replies : string Bqueue.t;  (* encoded reply frames *)
  outstanding : int Atomic.t;  (* requests handed to shard domains *)
  mutable txn : P.txn_write list option;  (* newest first; reader-only *)
}

type barrier = {
  mutable remaining : int;
  bmu : Mutex.t;
  bcv : Condition.t;
  brun : unit -> unit;  (* run exclusively by the last shard to arrive *)
  mutable bdone : bool;
}

type job = Op of conn * float * P.request  (* enqueue wall ns *) | Barrier of barrier

(* Per-session dedup state (DESIGN.md Â§17): the highest seqno this shard
   has applied for the session and the status it was answered with. The
   stamp is a per-shard logical clock driving LRU expiry. *)
type sess_entry = {
  mutable last_seq : int;
  mutable last_status : int;  (* wire status code *)
  mutable stamp : int;
}

(* Bounded retention: sessions idle long enough to be evicted have no
   in-flight op left to deduplicate (the session layer is one-op-at-a-
   time), so expiry only forfeits dedup for clients gone for ages. *)
let sess_cap = 1024

type t = {
  store : Store.Sharded.t;
  queues : job Bqueue.t array;
  ledgers : Obs.Stall.t array;  (* server-owned net_queue ledgers, wall ns *)
  (* Session dedup tables, one per shard, owned by the shard domain
     (key-deterministic routing sends a retry to the same shard; commit
     dedup runs inside the cross-shard barrier, which is exclusive). *)
  sessions : (int, sess_entry) Hashtbl.t array;
  sess_clocks : int ref array;
  c_dedup : int ref array;  (* per-shard "server.dedup_hits" counters *)
  sid_counter : int Atomic.t;  (* next fresh session id *)
  listen_fd : Unix.file_descr;
  bound : Wire.Client.addr;
  stop_flag : bool Atomic.t;
  barrier_mu : Mutex.t;  (* serialises multi-queue barrier enqueues *)
  conns_mu : Mutex.t;
  mutable conn_domains : unit Domain.t list;
  mutable shard_domains : unit Domain.t list;
  mutable accept_domain : unit Domain.t option;
  batch : int;
  on_dequeue : (shard:int -> unit) option;
  t0 : float;  (* server start, Unix seconds *)
  mutable stopped : bool;
}

let wall_ns t = (Unix.gettimeofday () -. t.t0) *. 1e9

(* A signal delivered to the process (SIGTERM with a handler installed,
   say) interrupts blocking syscalls on whatever domain is inside one;
   an EINTR must resume the call, never abandon a drain. *)
let rec restart_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_eintr f

(* ------------------------------------------------------------- replies *)

let encode_reply r =
  try P.frame_of_reply r
  with P.Malformed m ->
    (* An oversized result (e.g. a huge SCAN) must not kill the shard
       domain; degrade to an error the client can act on. *)
    P.frame_of_reply
      { r with P.status = P.Bad_request; payload = P.Text m }

let push_reply conn r = ignore (Bqueue.push_unbounded conn.replies (encode_reply r))

let simple conn id status =
  push_reply conn
    { P.id; status; queue_ns = 0.0; cause = P.no_cause; payload = P.Unit }

(* --------------------------------------------------------- shard domain *)

let exec_single sys (op : P.op) =
  match op with
  | P.Get k -> (
      match Incll.System.get sys ~key:k with
      | Some v -> (P.Ok, P.Value v)
      | None -> (P.Not_found, P.Unit))
  | P.Put (k, v) ->
      Incll.System.put sys ~key:k ~value:v;
      (P.Ok, P.Unit)
  | P.Delete k ->
      if Incll.System.remove sys ~key:k then (P.Ok, P.Unit)
      else (P.Not_found, P.Unit)
  | _ ->
      (* SCAN/TXN_*/STATS never reach a single-shard queue entry. *)
      (P.Bad_request, P.Unit)

(* Replayed (sid, seq)? Answer without re-applying: the recorded status
   for the newest seq, plain Ok for anything older (the session layer is
   one-op-at-a-time, so an older seq is a duplicated frame whose real
   reply was already delivered). Must run on the owning shard domain, or
   inside a barrier. *)
let dedup_check t shard ~sid ~seq =
  match Hashtbl.find_opt t.sessions.(shard) sid with
  | Some e when seq <= e.last_seq ->
      t.c_dedup.(shard) := !(t.c_dedup.(shard)) + 1;
      Some (if seq = e.last_seq then P.status_of_code e.last_status else P.Ok)
  | _ -> None

(* Record the applied (sid, seq, status) in the shard's table, evicting
   the stalest session once over capacity. *)
let touch_session t shard ~sid ~seq ~status_code =
  let tbl = t.sessions.(shard) in
  let clock = t.sess_clocks.(shard) in
  incr clock;
  match Hashtbl.find_opt tbl sid with
  | Some e ->
      e.last_seq <- seq;
      e.last_status <- status_code;
      e.stamp <- !clock
  | None ->
      if Hashtbl.length tbl >= sess_cap then begin
        let victim =
          Hashtbl.fold
            (fun vsid e acc ->
              match acc with
              | Some (_, st) when st <= e.stamp -> acc
              | _ -> Some (vsid, e.stamp))
            tbl None
        in
        match victim with
        | Some (vsid, _) -> Hashtbl.remove tbl vsid
        | None -> ()
      end;
      Hashtbl.replace tbl sid
        { last_seq = seq; last_status = status_code; stamp = !clock }

let session_op_of = function
  | P.Put (k, v) -> Some (Incll.Session.Put { key = k; value = v })
  | P.Delete k -> Some (Incll.Session.Remove { key = k })
  | _ -> None

let exec_op t shard (conn, enq_ns, { P.id; op; sess }) =
  let sys = Store.Sharded.shard t.store shard in
  let region = Incll.System.region sys in
  let queue_ns = Float.max 0.0 (wall_ns t -. enq_ns) in
  Obs.Stall.record t.ledgers.(shard) Obs.Stall.Net_queue ~start_ns:enq_ns
    ~dur_ns:queue_ns;
  let dedup =
    match sess with
    | Some (sid, seq) -> dedup_check t shard ~sid ~seq
    | None -> None
  in
  (match dedup with
  | Some status ->
      push_reply conn
        { P.id; status; queue_ns; cause = P.no_cause; payload = P.Unit }
  | None ->
      let s0 = Nvm.Stats.sim_ns (Nvm.Region.stats region) in
      let status, payload =
        try exec_single sys op
        with e -> (P.Bad_request, P.Text (Printexc.to_string e))
      in
      (* Durable exactly-once: the dedup record is fenced into the log
         *before* the reply is enqueued, so an acked mutation is always
         redoable and its stamp always survives a crash. *)
      (match (sess, session_op_of op) with
      | Some (sid, seq), Some sop when Incll.System.ctx sys <> None ->
          Incll.System.record_session sys ~sid ~seq
            ~status:(P.status_code status) sop;
          touch_session t shard ~sid ~seq ~status_code:(P.status_code status)
      | _ -> ());
      let s1 =
        Float.max (Nvm.Stats.sim_ns (Nvm.Region.stats region)) (s0 +. 1.0)
      in
      let cause =
        let over =
          Obs.Stall.overlapping (Nvm.Region.stalls region) ~t0:s0 ~t1:s1
        in
        match Obs.Stall.dominant_cause over ~t0:s0 ~t1:s1 with
        | Some c -> Obs.Stall.cause_index c
        | None -> P.no_cause
      in
      push_reply conn { P.id; status; queue_ns; cause; payload });
  ignore (Atomic.fetch_and_add conn.outstanding (-1))

let run_barrier_job b =
  Mutex.lock b.bmu;
  b.remaining <- b.remaining - 1;
  if b.remaining = 0 then begin
    b.brun ();
    b.bdone <- true;
    Condition.broadcast b.bcv
  end
  else
    while not b.bdone do
      Condition.wait b.bcv b.bmu
    done;
  Mutex.unlock b.bmu

let shard_loop t shard =
  let rec loop () =
    match Bqueue.pop_batch t.queues.(shard) ~max:t.batch with
    | [] -> ()  (* closed and drained *)
    | jobs ->
        Option.iter (fun f -> f ~shard) t.on_dequeue;
        List.iter
          (function
            | Op (conn, enq, req) -> exec_op t shard (conn, enq, req)
            | Barrier b -> run_barrier_job b)
          jobs;
        loop ()
  in
  loop ()

(* --------------------------------------------------------- reader side *)

(* Enqueue a barrier on every shard queue under the global barrier mutex:
   two concurrent barriers land in the same order on every queue, so the
   shard domains can never arrive at two barriers in opposite orders. *)
let submit_barrier t conn id f =
  ignore (Atomic.fetch_and_add conn.outstanding 1);
  let enq_ns = wall_ns t in
  let brun () =
    let queue_ns = Float.max 0.0 (wall_ns t -. enq_ns) in
    let status, payload =
      try f () with e -> (P.Bad_request, P.Text (Printexc.to_string e))
    in
    push_reply conn { P.id; status; queue_ns; cause = P.no_cause; payload };
    ignore (Atomic.fetch_and_add conn.outstanding (-1))
  in
  let b =
    {
      remaining = Array.length t.queues;
      bmu = Mutex.create ();
      bcv = Condition.create ();
      brun;
      bdone = false;
    }
  in
  Mutex.lock t.barrier_mu;
  Array.iter (fun q -> ignore (Bqueue.push_unbounded q (Barrier b))) t.queues;
  Mutex.unlock t.barrier_mu

let commit_txn store writes () =
  Store.Sharded.txn_begin store;
  (try
     List.iter
       (function
         | P.Tw_put (k, v) -> Store.Sharded.txn_put store ~key:k ~value:v
         | P.Tw_remove k -> Store.Sharded.txn_remove store ~key:k)
       writes;
     Store.Sharded.txn_commit store
   with e ->
     if Store.Sharded.txn_active store then Store.Sharded.txn_abort store;
     raise e);
  (P.Ok, P.Unit)

(* Session-stamped commit: dedup against the session's *home* shard
   (sid mod nshards — stamp-deterministic, key-independent). Runs inside
   the cross-shard barrier, so every shard is parked and touching the
   home shard's table and log is exclusive. A failed commit is not
   recorded: the client's replay re-runs it from scratch. *)
let commit_txn_sess t ~sid ~seq writes () =
  let home = sid mod Store.Sharded.nshards t.store in
  match dedup_check t home ~sid ~seq with
  | Some status -> (status, P.Unit)
  | None ->
      let store = t.store in
      Store.Sharded.txn_begin store;
      let txn_id = Option.value (Store.Sharded.txn_id store) ~default:0 in
      (try
         List.iter
           (function
             | P.Tw_put (k, v) -> Store.Sharded.txn_put store ~key:k ~value:v
             | P.Tw_remove k -> Store.Sharded.txn_remove store ~key:k)
           writes;
         Store.Sharded.txn_commit store
       with e ->
         if Store.Sharded.txn_active store then Store.Sharded.txn_abort store;
         raise e);
      let sys = Store.Sharded.shard store home in
      if Incll.System.ctx sys <> None then begin
        Incll.System.record_session sys ~sid ~seq
          ~status:(P.status_code P.Ok)
          (Incll.Session.Commit { txn_id });
        touch_session t home ~sid ~seq ~status_code:(P.status_code P.Ok)
      end;
      (P.Ok, P.Unit)

let stats_text store fmt () =
  let reg = Store.Sharded.metrics store in
  let text =
    match fmt with
    | P.Stats_json -> Obs.Json.to_string (Obs.Registry.to_json reg)
    | P.Stats_prom -> Obs.Registry.to_prometheus reg
  in
  (P.Ok, P.Text text)

(* Read-your-writes against the connection's buffered transaction: the
   newest buffered write for [k], if any. *)
let txn_shadow buffered k =
  List.find_map
    (function
      | P.Tw_put (k', v) when k' = k -> Some (Some v)
      | P.Tw_remove k' when k' = k -> Some None
      | _ -> None)
    buffered

let handle_request t conn ~draining ({ P.id; op; sess } as req) =
    let route_to_shard key =
      let shard = Store.Sharded.shard_of_key t.store key in
      ignore (Atomic.fetch_and_add conn.outstanding 1);
      if not (Bqueue.try_push t.queues.(shard) (Op (conn, wall_ns t, req)))
      then begin
        ignore (Atomic.fetch_and_add conn.outstanding (-1));
        simple conn id P.Busy
      end
    in
    match op with
    | P.Txn_begin ->
        (* In-flight work drains to completion, but a drain does not
           accept the start of a new conversation. *)
        if draining then simple conn id P.Shutting_down
        else if conn.txn <> None then simple conn id P.Txn_state
        else begin
          conn.txn <- Some [];
          simple conn id P.Ok
        end
    | P.Txn_write w -> (
        match conn.txn with
        | None -> simple conn id P.Txn_state
        | Some l ->
            conn.txn <- Some (w :: l);
            simple conn id P.Ok)
    | P.Txn_abort ->
        if conn.txn = None then simple conn id P.Txn_state
        else begin
          conn.txn <- None;
          simple conn id P.Ok
        end
    | P.Txn_commit -> (
        match conn.txn with
        | None -> simple conn id P.Txn_state
        | Some l ->
            conn.txn <- None;
            let writes = List.rev l in
            let run =
              match sess with
              | Some (sid, seq) -> commit_txn_sess t ~sid ~seq writes
              | None -> commit_txn t.store writes
            in
            submit_barrier t conn id run)
    | P.Get k -> (
        match Option.bind conn.txn (fun l -> txn_shadow l k) with
        | Some (Some v) ->
            push_reply conn
              {
                P.id;
                status = P.Ok;
                queue_ns = 0.0;
                cause = P.no_cause;
                payload = P.Value v;
              }
        | Some None -> simple conn id P.Not_found
        | None -> route_to_shard k)
    | P.Put (k, _) | P.Delete k -> route_to_shard k
    | P.Scan (start, n) ->
        submit_barrier t conn id (fun () ->
            (P.Ok, P.Pairs (Store.Sharded.scan t.store ~start ~n)))
    | P.Stats fmt -> submit_barrier t conn id (stats_text t.store fmt)
    | P.Hello proposed ->
        if draining then simple conn id P.Shutting_down
        else begin
          (* Grant the proposed id (resuming after a reconnect) or mint a
             fresh one; either way the counter stays above every granted
             id so a fresh session can never collide with a resumed or
             recovered one. *)
          let sid =
            if proposed <= 0 then Atomic.fetch_and_add t.sid_counter 1
            else begin
              let rec bump () =
                let cur = Atomic.get t.sid_counter in
                if
                  proposed + 1 > cur
                  && not (Atomic.compare_and_set t.sid_counter cur (proposed + 1))
                then bump ()
              in
              bump ();
              proposed
            end
          in
          push_reply conn
            {
              P.id;
              status = P.Ok;
              queue_ns = 0.0;
              cause = P.no_cause;
              payload = P.Value (string_of_int sid);
            }
        end

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let k = restart_eintr (fun () -> Unix.write fd b !off (n - !off)) in
    off := !off + k
  done

let writer_loop conn =
  let rec loop () =
    match Bqueue.pop_batch conn.replies ~max:64 with
    | [] -> ()
    | frames ->
        (* A dead peer must not wedge the drain: keep popping so the
           reader's outstanding-wait can finish. *)
        (try List.iter (write_all conn.fd) frames
         with Unix.Unix_error _ -> ());
        loop ()
  in
  loop ()

let reader_loop t conn =
  let dec = P.Decoder.create () in
  let buf = Bytes.create 65536 in
  let draining = ref false in
  let drain_frames () =
    let continue = ref true in
    while !continue do
      match P.Decoder.next dec with
      | None -> continue := false
      | Some payload ->
          handle_request t conn ~draining:!draining
            (P.request_of_payload payload)
    done
  in
  (* [false] on peer EOF. *)
  let read_once () =
    let n =
      restart_eintr (fun () -> Unix.read conn.fd buf 0 (Bytes.length buf))
    in
    n > 0
    && begin
         P.Decoder.feed dec buf 0 n;
         drain_frames ();
         true
       end
  in
  (try
     let eof = ref false in
     while (not !eof) && not (Atomic.get t.stop_flag) do
       match restart_eintr (fun () -> Unix.select [ conn.fd ] [] [] 0.2) with
       | [], _, _ -> ()
       | _ -> eof := not (read_once ())
     done;
     (* Final sweep on stop: requests the peer had already delivered are
        processed and answered, not dropped — that is what makes the
        drain graceful. The first pass serves them normally (they beat
        the stop; this connection may even have been accepted from the
        backlog by the stop sweep, its requests never yet read); anything
        arriving after that is bounced Shutting_down so a still-streaming
        peer cannot wedge the drain. *)
     if not !eof then begin
       let more = ref true in
       while !more do
         match restart_eintr (fun () -> Unix.select [ conn.fd ] [] [] 0.0) with
         | [], _, _ -> more := false
         | _ ->
             more := read_once ();
             draining := true
       done
     end
   with
  | P.Malformed _ ->
      (* Unframeable garbage: we cannot resync mid-stream, drop the
         connection (in-flight requests still drain below). *)
      ()
  | Unix.Unix_error _ -> ());
  conn.txn <- None;
  while Atomic.get conn.outstanding > 0 do
    try Unix.sleepf 0.0005 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Bqueue.close conn.replies

let handle_conn t conn =
  let writer = Domain.spawn (fun () -> writer_loop conn) in
  reader_loop t conn;
  Domain.join writer;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ())

(* ---------------------------------------------------------- accept side *)

let accept_one t =
  match Unix.accept t.listen_fd with
  | fd, _ ->
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      let conn =
        {
          fd;
          replies = Bqueue.create ~capacity:1024;
          outstanding = Atomic.make 0;
          txn = None;
        }
      in
      let d = Domain.spawn (fun () -> handle_conn t conn) in
      Mutex.lock t.conns_mu;
      t.conn_domains <- d :: t.conn_domains;
      Mutex.unlock t.conns_mu
  | exception Unix.Unix_error _ -> ()

let accept_loop t =
  while not (Atomic.get t.stop_flag) do
    match restart_eintr (fun () -> Unix.select [ t.listen_fd ] [] [] 0.2) with
    | [], _, _ -> ()
    | _ -> accept_one t
  done;
  (* Connections already queued on the backlog when stop arrived were,
     from the peer's side, accepted before the drain began (connect
     completes on enqueue): accept and drain them like established ones
     instead of letting the listen close reset them with their delivered
     requests unread. *)
  let more = ref true in
  while !more do
    match restart_eintr (fun () -> Unix.select [ t.listen_fd ] [] [] 0.0) with
    | [], _, _ -> more := false
    | _ -> accept_one t
  done;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())

let bind_listen addr =
  match addr with
  | Wire.Client.Unix_sock path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, addr)
  | Wire.Client.Tcp (host, port) ->
      let ip =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd 64;
      let bound_port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (fd, Wire.Client.Tcp (host, bound_port))

let start ?config ?(queue_capacity = 1024) ?(batch = 64) ?on_dequeue ?store
    ~variant ~shards addr =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let store =
    match store with
    | Some s -> s
    | None -> Store.Sharded.create ?config variant ~shards
  in
  let shards = Store.Sharded.nshards store in
  let listen_fd, bound = bind_listen addr in
  let t =
    {
      store;
      queues = Array.init shards (fun _ -> Bqueue.create ~capacity:queue_capacity);
      ledgers =
        Array.init shards (fun i ->
            Obs.Stall.create
              ~registry:(Incll.System.metrics (Store.Sharded.shard store i))
              ());
      sessions = Array.init shards (fun _ -> Hashtbl.create 64);
      sess_clocks = Array.init shards (fun _ -> ref 0);
      c_dedup =
        Array.init shards (fun i ->
            Obs.Registry.counter
              (Incll.System.metrics (Store.Sharded.shard store i))
              "server.dedup_hits");
      sid_counter = Atomic.make 1;
      listen_fd;
      bound;
      stop_flag = Atomic.make false;
      barrier_mu = Mutex.create ();
      conns_mu = Mutex.create ();
      conn_domains = [];
      shard_domains = [];
      accept_domain = None;
      batch;
      on_dequeue;
      t0 = Unix.gettimeofday ();
      stopped = false;
    }
  in
  (* Reseed the dedup tables from the recovery that produced each shard
     (no-op for fresh systems), and keep fresh session ids above every
     recovered one. *)
  for i = 0 to shards - 1 do
    List.iter
      (fun (sid, seq, status) ->
        Hashtbl.replace t.sessions.(i) sid
          { last_seq = seq; last_status = status; stamp = 0 };
        if sid + 1 > Atomic.get t.sid_counter then
          Atomic.set t.sid_counter (sid + 1))
      (Incll.System.recovered_sessions (Store.Sharded.shard store i))
  done;
  t.shard_domains <-
    List.init shards (fun i -> Domain.spawn (fun () -> shard_loop t i));
  t.accept_domain <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let addr t = t.bound
let store t = t.store
let nshards t = Array.length t.queues

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stop_flag true;
    Option.iter Domain.join t.accept_domain;
    (* Accept has exited: the connection list is stable now. Readers see
       the stop flag within their select timeout, finish their in-flight
       requests, and close once their writers have flushed. *)
    List.iter Domain.join t.conn_domains;
    Array.iter Bqueue.close t.queues;
    List.iter Domain.join t.shard_domains;
    match t.bound with
    | Wire.Client.Unix_sock path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ())
    | Wire.Client.Tcp _ -> ()
  end
