module P = Wire.Proto

type conn = {
  fd : Unix.file_descr;
  replies : string Bqueue.t;  (* encoded reply frames *)
  outstanding : int Atomic.t;  (* requests handed to shard domains *)
  mutable txn : P.txn_write list option;  (* newest first; reader-only *)
}

type barrier = {
  mutable remaining : int;
  bmu : Mutex.t;
  bcv : Condition.t;
  brun : unit -> unit;  (* run exclusively by the last shard to arrive *)
  mutable bdone : bool;
}

type job = Op of conn * float * P.request  (* enqueue wall ns *) | Barrier of barrier

type t = {
  store : Store.Sharded.t;
  queues : job Bqueue.t array;
  ledgers : Obs.Stall.t array;  (* server-owned net_queue ledgers, wall ns *)
  listen_fd : Unix.file_descr;
  bound : Wire.Client.addr;
  stop_flag : bool Atomic.t;
  barrier_mu : Mutex.t;  (* serialises multi-queue barrier enqueues *)
  conns_mu : Mutex.t;
  mutable conn_domains : unit Domain.t list;
  mutable shard_domains : unit Domain.t list;
  mutable accept_domain : unit Domain.t option;
  batch : int;
  on_dequeue : (shard:int -> unit) option;
  t0 : float;  (* server start, Unix seconds *)
  mutable stopped : bool;
}

let wall_ns t = (Unix.gettimeofday () -. t.t0) *. 1e9

(* ------------------------------------------------------------- replies *)

let encode_reply r =
  try P.frame_of_reply r
  with P.Malformed m ->
    (* An oversized result (e.g. a huge SCAN) must not kill the shard
       domain; degrade to an error the client can act on. *)
    P.frame_of_reply
      { r with P.status = P.Bad_request; payload = P.Text m }

let push_reply conn r = ignore (Bqueue.push_unbounded conn.replies (encode_reply r))

let simple conn id status =
  push_reply conn
    { P.id; status; queue_ns = 0.0; cause = P.no_cause; payload = P.Unit }

(* --------------------------------------------------------- shard domain *)

let exec_single sys (op : P.op) =
  match op with
  | P.Get k -> (
      match Incll.System.get sys ~key:k with
      | Some v -> (P.Ok, P.Value v)
      | None -> (P.Not_found, P.Unit))
  | P.Put (k, v) ->
      Incll.System.put sys ~key:k ~value:v;
      (P.Ok, P.Unit)
  | P.Delete k ->
      if Incll.System.remove sys ~key:k then (P.Ok, P.Unit)
      else (P.Not_found, P.Unit)
  | _ ->
      (* SCAN/TXN_*/STATS never reach a single-shard queue entry. *)
      (P.Bad_request, P.Unit)

let exec_op t shard (conn, enq_ns, { P.id; op }) =
  let sys = Store.Sharded.shard t.store shard in
  let region = Incll.System.region sys in
  let queue_ns = Float.max 0.0 (wall_ns t -. enq_ns) in
  Obs.Stall.record t.ledgers.(shard) Obs.Stall.Net_queue ~start_ns:enq_ns
    ~dur_ns:queue_ns;
  let s0 = Nvm.Stats.sim_ns (Nvm.Region.stats region) in
  let status, payload =
    try exec_single sys op
    with e -> (P.Bad_request, P.Text (Printexc.to_string e))
  in
  let s1 = Float.max (Nvm.Stats.sim_ns (Nvm.Region.stats region)) (s0 +. 1.0) in
  let cause =
    let over = Obs.Stall.overlapping (Nvm.Region.stalls region) ~t0:s0 ~t1:s1 in
    match Obs.Stall.dominant_cause over ~t0:s0 ~t1:s1 with
    | Some c -> Obs.Stall.cause_index c
    | None -> P.no_cause
  in
  push_reply conn { P.id; status; queue_ns; cause; payload };
  ignore (Atomic.fetch_and_add conn.outstanding (-1))

let run_barrier_job b =
  Mutex.lock b.bmu;
  b.remaining <- b.remaining - 1;
  if b.remaining = 0 then begin
    b.brun ();
    b.bdone <- true;
    Condition.broadcast b.bcv
  end
  else
    while not b.bdone do
      Condition.wait b.bcv b.bmu
    done;
  Mutex.unlock b.bmu

let shard_loop t shard =
  let rec loop () =
    match Bqueue.pop_batch t.queues.(shard) ~max:t.batch with
    | [] -> ()  (* closed and drained *)
    | jobs ->
        Option.iter (fun f -> f ~shard) t.on_dequeue;
        List.iter
          (function
            | Op (conn, enq, req) -> exec_op t shard (conn, enq, req)
            | Barrier b -> run_barrier_job b)
          jobs;
        loop ()
  in
  loop ()

(* --------------------------------------------------------- reader side *)

(* Enqueue a barrier on every shard queue under the global barrier mutex:
   two concurrent barriers land in the same order on every queue, so the
   shard domains can never arrive at two barriers in opposite orders. *)
let submit_barrier t conn id f =
  ignore (Atomic.fetch_and_add conn.outstanding 1);
  let enq_ns = wall_ns t in
  let brun () =
    let queue_ns = Float.max 0.0 (wall_ns t -. enq_ns) in
    let status, payload =
      try f () with e -> (P.Bad_request, P.Text (Printexc.to_string e))
    in
    push_reply conn { P.id; status; queue_ns; cause = P.no_cause; payload };
    ignore (Atomic.fetch_and_add conn.outstanding (-1))
  in
  let b =
    {
      remaining = Array.length t.queues;
      bmu = Mutex.create ();
      bcv = Condition.create ();
      brun;
      bdone = false;
    }
  in
  Mutex.lock t.barrier_mu;
  Array.iter (fun q -> ignore (Bqueue.push_unbounded q (Barrier b))) t.queues;
  Mutex.unlock t.barrier_mu

let commit_txn store writes () =
  Store.Sharded.txn_begin store;
  (try
     List.iter
       (function
         | P.Tw_put (k, v) -> Store.Sharded.txn_put store ~key:k ~value:v
         | P.Tw_remove k -> Store.Sharded.txn_remove store ~key:k)
       writes;
     Store.Sharded.txn_commit store
   with e ->
     if Store.Sharded.txn_active store then Store.Sharded.txn_abort store;
     raise e);
  (P.Ok, P.Unit)

let stats_text store fmt () =
  let reg = Store.Sharded.metrics store in
  let text =
    match fmt with
    | P.Stats_json -> Obs.Json.to_string (Obs.Registry.to_json reg)
    | P.Stats_prom -> Obs.Registry.to_prometheus reg
  in
  (P.Ok, P.Text text)

(* Read-your-writes against the connection's buffered transaction: the
   newest buffered write for [k], if any. *)
let txn_shadow buffered k =
  List.find_map
    (function
      | P.Tw_put (k', v) when k' = k -> Some (Some v)
      | P.Tw_remove k' when k' = k -> Some None
      | _ -> None)
    buffered

let handle_request t conn ~draining ({ P.id; op } as req) =
    let route_to_shard key =
      let shard = Store.Sharded.shard_of_key t.store key in
      ignore (Atomic.fetch_and_add conn.outstanding 1);
      if not (Bqueue.try_push t.queues.(shard) (Op (conn, wall_ns t, req)))
      then begin
        ignore (Atomic.fetch_and_add conn.outstanding (-1));
        simple conn id P.Busy
      end
    in
    match op with
    | P.Txn_begin ->
        (* In-flight work drains to completion, but a drain does not
           accept the start of a new conversation. *)
        if draining then simple conn id P.Shutting_down
        else if conn.txn <> None then simple conn id P.Txn_state
        else begin
          conn.txn <- Some [];
          simple conn id P.Ok
        end
    | P.Txn_write w -> (
        match conn.txn with
        | None -> simple conn id P.Txn_state
        | Some l ->
            conn.txn <- Some (w :: l);
            simple conn id P.Ok)
    | P.Txn_abort ->
        if conn.txn = None then simple conn id P.Txn_state
        else begin
          conn.txn <- None;
          simple conn id P.Ok
        end
    | P.Txn_commit -> (
        match conn.txn with
        | None -> simple conn id P.Txn_state
        | Some l ->
            conn.txn <- None;
            submit_barrier t conn id (commit_txn t.store (List.rev l)))
    | P.Get k -> (
        match Option.bind conn.txn (fun l -> txn_shadow l k) with
        | Some (Some v) ->
            push_reply conn
              {
                P.id;
                status = P.Ok;
                queue_ns = 0.0;
                cause = P.no_cause;
                payload = P.Value v;
              }
        | Some None -> simple conn id P.Not_found
        | None -> route_to_shard k)
    | P.Put (k, _) | P.Delete k -> route_to_shard k
    | P.Scan (start, n) ->
        submit_barrier t conn id (fun () ->
            (P.Ok, P.Pairs (Store.Sharded.scan t.store ~start ~n)))
    | P.Stats fmt -> submit_barrier t conn id (stats_text t.store fmt)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let writer_loop conn =
  let rec loop () =
    match Bqueue.pop_batch conn.replies ~max:64 with
    | [] -> ()
    | frames ->
        (* A dead peer must not wedge the drain: keep popping so the
           reader's outstanding-wait can finish. *)
        (try List.iter (write_all conn.fd) frames
         with Unix.Unix_error _ -> ());
        loop ()
  in
  loop ()

let reader_loop t conn =
  let dec = P.Decoder.create () in
  let buf = Bytes.create 65536 in
  let draining = ref false in
  let drain_frames () =
    let continue = ref true in
    while !continue do
      match P.Decoder.next dec with
      | None -> continue := false
      | Some payload ->
          handle_request t conn ~draining:!draining
            (P.request_of_payload payload)
    done
  in
  (* [false] on peer EOF. *)
  let read_once () =
    let n = Unix.read conn.fd buf 0 (Bytes.length buf) in
    n > 0
    && begin
         P.Decoder.feed dec buf 0 n;
         drain_frames ();
         true
       end
  in
  (try
     let eof = ref false in
     while (not !eof) && not (Atomic.get t.stop_flag) do
       match Unix.select [ conn.fd ] [] [] 0.2 with
       | [], _, _ -> ()
       | _ -> eof := not (read_once ())
     done;
     (* Final sweep on stop: requests the peer had already delivered are
        processed and answered, not dropped — that is what makes the
        drain graceful. *)
     if not !eof then begin
       draining := true;
       let more = ref true in
       while !more do
         match Unix.select [ conn.fd ] [] [] 0.0 with
         | [], _, _ -> more := false
         | _ -> more := read_once ()
       done
     end
   with
  | P.Malformed _ ->
      (* Unframeable garbage: we cannot resync mid-stream, drop the
         connection (in-flight requests still drain below). *)
      ()
  | Unix.Unix_error _ -> ());
  conn.txn <- None;
  while Atomic.get conn.outstanding > 0 do
    Unix.sleepf 0.0005
  done;
  Bqueue.close conn.replies

let handle_conn t conn =
  let writer = Domain.spawn (fun () -> writer_loop conn) in
  reader_loop t conn;
  Domain.join writer;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ())

(* ---------------------------------------------------------- accept side *)

let accept_loop t =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.listen_fd with
        | fd, _ ->
            (try Unix.setsockopt fd Unix.TCP_NODELAY true
             with Unix.Unix_error _ -> ());
            let conn =
              {
                fd;
                replies = Bqueue.create ~capacity:1024;
                outstanding = Atomic.make 0;
                txn = None;
              }
            in
            let d = Domain.spawn (fun () -> handle_conn t conn) in
            Mutex.lock t.conns_mu;
            t.conn_domains <- d :: t.conn_domains;
            Mutex.unlock t.conns_mu
        | exception Unix.Unix_error _ -> ())
  done;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())

let bind_listen addr =
  match addr with
  | Wire.Client.Unix_sock path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, addr)
  | Wire.Client.Tcp (host, port) ->
      let ip =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd 64;
      let bound_port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (fd, Wire.Client.Tcp (host, bound_port))

let start ?config ?(queue_capacity = 1024) ?(batch = 64) ?on_dequeue ~variant
    ~shards addr =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let store = Store.Sharded.create ?config variant ~shards in
  let listen_fd, bound = bind_listen addr in
  let t =
    {
      store;
      queues = Array.init shards (fun _ -> Bqueue.create ~capacity:queue_capacity);
      ledgers =
        Array.init shards (fun i ->
            Obs.Stall.create
              ~registry:(Incll.System.metrics (Store.Sharded.shard store i))
              ());
      listen_fd;
      bound;
      stop_flag = Atomic.make false;
      barrier_mu = Mutex.create ();
      conns_mu = Mutex.create ();
      conn_domains = [];
      shard_domains = [];
      accept_domain = None;
      batch;
      on_dequeue;
      t0 = Unix.gettimeofday ();
      stopped = false;
    }
  in
  t.shard_domains <-
    List.init shards (fun i -> Domain.spawn (fun () -> shard_loop t i));
  t.accept_domain <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let addr t = t.bound
let store t = t.store
let nshards t = Array.length t.queues

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stop_flag true;
    Option.iter Domain.join t.accept_domain;
    (* Accept has exited: the connection list is stable now. Readers see
       the stop flag within their select timeout, finish their in-flight
       requests, and close once their writers have flushed. *)
    List.iter Domain.join t.conn_domains;
    Array.iter Bqueue.close t.queues;
    List.iter Domain.join t.shard_domains;
    match t.bound with
    | Wire.Client.Unix_sock path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ())
    | Wire.Client.Tcp _ -> ()
  end
