(** Named fault-injection sites.

    A site is a place in the persistence machinery where a crash is
    architecturally interesting: around the checkpoint protocol, around
    fences, inside the allocator's limbo merge, inside the external log
    append — and inside recovery itself, because crash-during-recovery
    must re-enter recovery cleanly (the failed-epoch set makes recovery
    idempotent, and these sites are how we prove it).

    Instrumented code calls {!Plan.fire} with its site; which site
    actually crashes is decided by the armed {!Plan.point}. *)

type t =
  | Epoch_advance  (** entry of [Epoch.Manager.advance], before the flush *)
  | Post_checkpoint
      (** inside [advance], after the durable-epoch store is fenced but
          before the post-advance subscribers (limbo merge, log
          truncation) have run *)
  | Sfence  (** entry of [Nvm.Region.sfence], before the drain *)
  | Merge_limbo
      (** [Alloc.Durable.merge_limbo], once per non-empty size class,
          before that class is spliced *)
  | Extlog_append  (** entry of [Extlog.Log.append] *)
  | Txn_prepare
      (** commit protocol, before a participant's PREPARE record is
          appended — some participants prepared, some not *)
  | Txn_commit_record
      (** commit protocol, before the coordinator's commit decision (the
          durable txn watermark) is stored — every PREPARE durable but
          the decision is not: the in-doubt window *)
  | Txn_rollback
      (** recovery, before an in-doubt transaction whose coordinator has
          no commit decision is discarded *)
  | Recover_epoch_open  (** recovery, before re-opening the epoch manager *)
  | Recover_extlog_replay  (** recovery, before the external-log replay *)
  | Recover_alloc_chains
      (** recovery, before restoring allocator metadata lines *)
  | Recover_image_scan  (** recovery, before the tree image scan *)
  | Recover_txn_resolve
      (** recovery, before surviving PREPARE records are resolved against
          their coordinator's watermark (redo or rollback) *)
  | Recover_eager_sweep  (** recovery, before an eager sweep (if any) *)
  | Recover_checkpoint  (** recovery, before the final checkpoint *)
  | Sweep_partial
      (** inside an in-progress incremental checkpoint sweep, before the
          next bounded [Region.flush_some] quantum — some of the open
          epoch's lines already persisted, the rest still dirty, the
          durable epoch word not yet advanced. Recovery must treat this
          torn sweep exactly like a torn [wbinvd]. *)
  | Net_drop
      (** network layer ([Chaos_net.Netproxy]), before a frame is relayed:
          the frame vanishes — a lost request or a lost reply *)
  | Net_delay  (** a frame is relayed late (reordering / timeout probe) *)
  | Net_dup  (** a frame is relayed twice — the dedup layer's bread and
          butter *)
  | Net_trunc
      (** a frame is cut mid-bytes and the connection severed — the
          receiver's decoder sees a torn frame *)
  | Net_sever  (** the connection is dropped between frames *)

val all : t list
(** Every site, in declaration order. *)

val index : t -> int
(** Dense index into {!all} (for per-site counters). *)

val count : int

val to_string : t -> string
(** Stable name, e.g. ["merge_limbo"], ["recover.alloc_chains"]. The
    [recover.*] names coincide with the recovery phase names of
    [Incll.System.recover_stats]. *)

val of_string : string -> t option

val of_phase : string -> t option
(** Map a recovery phase name (["recover.extlog_replay"], …) to its
    site; [None] for phases without one. *)

val is_recovery : t -> bool
(** True for the sites that can only fire while recovery is running: the
    [Recover_*] phase entries plus [Txn_rollback] (fired inside the
    [recover.txn_resolve] phase). *)
