(** Deterministic fault-injection plans.

    A {!point} arms a crash at the [hit]-th firing of a {!Site.t}; a
    plan is an ordered list of points applied one at a time by a runner
    (arm the head; when it fires, crash, arm the next, recover, …).
    Instrumented code calls {!fire} at each site; when the armed point's
    count is reached the injector raises {!Crash_requested}, which the
    runner converts into an [Nvm.Region.crash] plus recovery. Raising —
    rather than crashing in place — lets the runner decide crash
    semantics (random PCSO prefix, persist-none, adversarial) and keeps
    this library free of any dependency on the simulator.

    The injector is a process-wide singleton and is meant for
    single-domain chaos runs; when disarmed, {!fire} is one load and one
    branch, so leaving the hooks compiled into hot paths (sfence) is
    free for production benchmarks.

    Per-site counters are mirrored into an {!Obs.Registry.t} when one is
    installed ({!set_registry}): ["chaos.hits.<site>"] counts firings
    while armed and ["chaos.injected.<site>"] counts crashes actually
    requested, so JSON metric dumps and Perfetto timelines can show the
    injected-fault schedule next to the system's own events. *)

type point = { site : Site.t; hit : int }
(** Crash at the [hit]-th firing of [site] (1-based; [hit <= 0] is
    normalised to 1). *)

type t = point list

exception Crash_requested of point
(** Raised by {!fire} out of the instrumented call site. The runner must
    treat the in-memory system as dead (as a power failure would) and
    recover from the region's persisted image. *)

val point_of_string : string -> point
(** ["site"] or ["site:hit"], e.g. ["merge_limbo:2"]. Raises
    [Invalid_argument] on unknown sites or malformed input. *)

val point_to_string : point -> string

val parse : string -> t
(** Comma-separated points: ["sfence:3,recover.alloc_chains:1"]. *)

(** {1 The process-wide injector} *)

val arm : point -> unit
(** Arm one point and reset the per-arm hit counters. Any previously
    armed point is replaced. *)

val disarm : unit -> unit
(** Stop injecting. Counters keep their values for inspection. *)

val armed : unit -> point option

val fire : Site.t -> unit
(** Called by instrumented code. No-op unless a point is armed. When the
    armed site's counter reaches its [hit], the injector disarms itself
    (so the recovery that follows is not immediately re-interrupted) and
    raises {!Crash_requested}. *)

val hits : Site.t -> int
(** Firings of [site] since the last {!arm}. *)

val injected : Site.t -> int
(** Total crashes requested at [site] since {!reset}. *)

val injected_total : unit -> int

val injected_counts : unit -> (string * int) list
(** [(site name, injected crashes)] for every site that fired, sorted by
    name. *)

val reset : unit -> unit
(** Disarm and zero every counter (between independent runs). *)

val set_registry : Obs.Registry.t option -> unit
(** Mirror counters into ["chaos.hits.*"] / ["chaos.injected.*"] of the
    given registry (typically the region's metrics). *)
