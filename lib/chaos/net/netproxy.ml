(* Frame-level network fault injector: a socket proxy between a wire
   client and the serving engine that understands the frame boundaries
   of [Wire.Proto] and applies a deterministic [Chaos.Plan] schedule of
   net.* faults to the frame stream — drop a frame, deliver it late,
   deliver it twice, cut it mid-bytes, or sever the connection.

   Determinism: faults are scheduled by *frame ordinal per direction*
   ([{site = Net_drop; hit = 5}] faults the 5th relayed frame in that
   direction), not by time, so a seeded workload replays the same fault
   sequence every run. The proxy keeps its own counters — the global
   [Chaos.Plan] injector singleton is for single-domain crash plans and
   is not touched here.

   Each relayed connection runs on one domain that pumps both directions
   through a select loop (a torture run reconnects many times; one
   domain per connection keeps the process under the runtime's domain
   budget). *)

module P = Wire.Proto

type sched = {
  mutable points : Chaos.Plan.point list;  (* ordered by hit *)
  mutable frames : int;  (* frames seen in this direction *)
}

type t = {
  listen_fd : Unix.file_descr;
  bound : Wire.Client.addr;
  upstream : Wire.Client.addr;
  stop_flag : bool Atomic.t;
  mutable accept_domain : unit Domain.t option;
  mutable conns : unit Domain.t list;
  live_conns : int Atomic.t;
  mu : Mutex.t;  (* conns list + schedules + injected counts *)
  up : sched;  (* client -> server *)
  down : sched;  (* server -> client *)
  injected : int array;  (* per Chaos.Site.index *)
  on_fault : (Chaos.Plan.point -> unit) option;
}

let rec restart_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_eintr f

let net_site = function
  | Chaos.Site.Net_drop | Net_delay | Net_dup | Net_trunc | Net_sever -> true
  | _ -> false

let check_sched = function
  | None -> []
  | Some pts ->
      List.iter
        (fun { Chaos.Plan.site; _ } ->
          if not (net_site site) then
            invalid_arg
              ("Netproxy: non-net site in schedule: "
              ^ Chaos.Site.to_string site))
        pts;
      List.sort (fun a b -> compare a.Chaos.Plan.hit b.Chaos.Plan.hit) pts

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Under [t.mu]: the fault (if any) scheduled for the next frame of this
   direction. *)
let next_fault t sched =
  Mutex.lock t.mu;
  sched.frames <- sched.frames + 1;
  let fault =
    match sched.points with
    | { Chaos.Plan.hit; site } :: tl when sched.frames >= hit ->
        sched.points <- tl;
        t.injected.(Chaos.Site.index site) <-
          t.injected.(Chaos.Site.index site) + 1;
        Some { Chaos.Plan.site; hit }
    | _ -> None
  in
  Mutex.unlock t.mu;
  (match (fault, t.on_fault) with
  | Some p, Some f -> f p
  | _ -> ());
  fault

let frame_of_payload payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let k = restart_eintr (fun () -> Unix.write fd b !off (n - !off)) in
    off := !off + k
  done

exception Severed

(* Sever both sides of the relayed connection; both peers see EOF. *)
let sever a b =
  (try Unix.shutdown a Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.shutdown b Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(* Relay one complete frame, applying at most one scheduled fault. *)
let relay t sched ~src ~dst payload =
  let frame = frame_of_payload payload in
  match next_fault t sched with
  | None -> write_all dst frame
  | Some { Chaos.Plan.site = Chaos.Site.Net_drop; _ } -> ()
  | Some { site = Net_delay; _ } ->
      (try Unix.sleepf 0.15 with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      write_all dst frame
  | Some { site = Net_dup; _ } ->
      write_all dst frame;
      write_all dst frame
  | Some { site = Net_trunc; _ } ->
      (* Torn frame: deliver the length prefix plus part of the payload,
         then cut the connection — the receiver's decoder must hold the
         partial frame without mis-parsing it. *)
      let cut = 4 + max 1 (String.length payload / 2) in
      write_all dst (String.sub frame 0 (min cut (String.length frame - 1)));
      sever src dst;
      raise Severed
  | Some { site = Net_sever; _ } ->
      sever src dst;
      raise Severed
  | Some _ -> (* schedules are validated net-only *) write_all dst frame

(* Pump both directions of one relayed connection until EOF, a severing
   fault, or proxy stop. *)
let conn_loop t ~client ~server =
  let dir_up = (t.up, P.Decoder.create (), client, server) in
  let dir_down = (t.down, P.Decoder.create (), server, client) in
  let buf = Bytes.create 65536 in
  (try
     let eof = ref false in
     while (not !eof) && not (Atomic.get t.stop_flag) do
       match
         restart_eintr (fun () -> Unix.select [ client; server ] [] [] 0.2)
       with
       | [], _, _ -> ()
       | ready, _, _ ->
           List.iter
             (fun fd ->
               let sched, dec, src, dst =
                 if fd = client then dir_up else dir_down
               in
               let n =
                 restart_eintr (fun () ->
                     Unix.read src buf 0 (Bytes.length buf))
               in
               if n = 0 then eof := true
               else begin
                 P.Decoder.feed dec buf 0 n;
                 let rec frames () =
                   match P.Decoder.next dec with
                   | Some payload ->
                       relay t sched ~src ~dst payload;
                       frames ()
                   | None -> ()
                 in
                 frames ()
               end)
             ready
     done
   with Severed | Unix.Unix_error _ | End_of_file | P.Malformed _ -> ());
  sever client server;
  close_quiet client;
  close_quiet server

let connect_upstream addr =
  match addr with
  | Wire.Client.Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         close_quiet fd;
         raise e);
      fd
  | Wire.Client.Tcp (host, port) ->
      let ip =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.TCP_NODELAY true;
         Unix.connect fd (Unix.ADDR_INET (ip, port))
       with e ->
         close_quiet fd;
         raise e);
      fd

let bind_listen addr =
  match addr with
  | Wire.Client.Unix_sock path ->
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, addr)
  | Wire.Client.Tcp (host, port) ->
      let ip =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd 64;
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (fd, Wire.Client.Tcp (host, port))

let handle_conn t client =
  match connect_upstream t.upstream with
  | exception _ -> close_quiet client
  | server ->
      Atomic.incr t.live_conns;
      let d =
        Domain.spawn (fun () ->
            Fun.protect
              ~finally:(fun () -> Atomic.decr t.live_conns)
              (fun () -> conn_loop t ~client ~server))
      in
      Mutex.lock t.mu;
      t.conns <- d :: t.conns;
      Mutex.unlock t.mu

let accept_loop t =
  while not (Atomic.get t.stop_flag) do
    match restart_eintr (fun () -> Unix.select [ t.listen_fd ] [] [] 0.2) with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.listen_fd with
        | client, _ ->
            (match t.bound with
            | Wire.Client.Tcp _ -> Unix.setsockopt client Unix.TCP_NODELAY true
            | _ -> ());
            handle_conn t client
        | exception Unix.Unix_error _ -> ())
  done

let start ?sched_up ?sched_down ?on_fault ~listen ~upstream () =
  (* Relaying into severed sockets is this proxy's job description. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd, bound = bind_listen listen in
  let t =
    {
      listen_fd;
      bound;
      upstream;
      stop_flag = Atomic.make false;
      accept_domain = None;
      conns = [];
      live_conns = Atomic.make 0;
      mu = Mutex.create ();
      up = { points = check_sched sched_up; frames = 0 };
      down = { points = check_sched sched_down; frames = 0 };
      injected = Array.make Chaos.Site.count 0;
      on_fault;
    }
  in
  t.accept_domain <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let addr t = t.bound
let live_conns t = Atomic.get t.live_conns

let injected t site =
  Mutex.lock t.mu;
  let n = t.injected.(Chaos.Site.index site) in
  Mutex.unlock t.mu;
  n

let injected_total t =
  Mutex.lock t.mu;
  let n = Array.fold_left ( + ) 0 t.injected in
  Mutex.unlock t.mu;
  n

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    close_quiet t.listen_fd;
    (match t.accept_domain with
    | Some d ->
        Domain.join d;
        t.accept_domain <- None
    | None -> ());
    Mutex.lock t.mu;
    let conns = t.conns in
    t.conns <- [];
    Mutex.unlock t.mu;
    List.iter Domain.join conns;
    match t.bound with
    | Wire.Client.Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
    | _ -> ()
  end
