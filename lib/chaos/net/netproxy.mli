(** Frame-level network fault injector (DESIGN.md §17): a socket proxy
    between a wire client and the serving engine that reassembles
    [Wire.Proto] frames and applies a deterministic {!Chaos.Plan}
    schedule of [net.*] faults to the frame stream.

    Faults are scheduled by {e frame ordinal per direction}: the point
    [{site = Net_drop; hit = 5}] in [sched_down] drops the 5th reply
    frame the server sends — not the 5th second, so a seeded workload
    replays the same fault sequence every run. At most one fault applies
    per frame; points fire in ascending [hit] order.

    Sites: [Net_drop] (frame vanishes), [Net_delay] (delivered ~150 ms
    late), [Net_dup] (delivered twice), [Net_trunc] (cut mid-payload,
    then the connection severed — a torn frame), [Net_sever] (connection
    cut between frames). The proxy keeps its own counters; the global
    {!Chaos.Plan} injector singleton is untouched. *)

type t

val start :
  ?sched_up:Chaos.Plan.point list ->
  ?sched_down:Chaos.Plan.point list ->
  ?on_fault:(Chaos.Plan.point -> unit) ->
  listen:Wire.Client.addr ->
  upstream:Wire.Client.addr ->
  unit ->
  t
(** Bind [listen] (TCP port 0 resolves; read {!addr}) and relay every
    accepted connection to [upstream]. [sched_up] faults client→server
    frames (requests), [sched_down] server→client frames (replies).
    [on_fault] runs on the pump domain as each fault is injected (e.g. a
    torture harness SIGKILLs the server there). Raises
    [Invalid_argument] if a schedule contains a non-[net.*] site. *)

val addr : t -> Wire.Client.addr
(** The bound downstream address (ephemeral TCP port resolved). *)

val live_conns : t -> int
(** Relayed connections currently open. *)

val injected : t -> Chaos.Site.t -> int
(** Faults actually injected at a site so far, both directions. *)

val injected_total : t -> int

val stop : t -> unit
(** Stop accepting, sever every relayed connection, join the pump
    domains. Idempotent. *)
