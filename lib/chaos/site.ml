type t =
  | Epoch_advance
  | Post_checkpoint
  | Sfence
  | Merge_limbo
  | Extlog_append
  | Txn_prepare
  | Txn_commit_record
  | Txn_rollback
  | Recover_epoch_open
  | Recover_extlog_replay
  | Recover_alloc_chains
  | Recover_image_scan
  | Recover_txn_resolve
  | Recover_eager_sweep
  | Recover_checkpoint
  | Sweep_partial
  | Net_drop
  | Net_delay
  | Net_dup
  | Net_trunc
  | Net_sever

let all =
  [
    Epoch_advance;
    Post_checkpoint;
    Sfence;
    Merge_limbo;
    Extlog_append;
    Txn_prepare;
    Txn_commit_record;
    Txn_rollback;
    Recover_epoch_open;
    Recover_extlog_replay;
    Recover_alloc_chains;
    Recover_image_scan;
    Recover_txn_resolve;
    Recover_eager_sweep;
    Recover_checkpoint;
    Sweep_partial;
    Net_drop;
    Net_delay;
    Net_dup;
    Net_trunc;
    Net_sever;
  ]

let index = function
  | Epoch_advance -> 0
  | Post_checkpoint -> 1
  | Sfence -> 2
  | Merge_limbo -> 3
  | Extlog_append -> 4
  | Txn_prepare -> 5
  | Txn_commit_record -> 6
  | Txn_rollback -> 7
  | Recover_epoch_open -> 8
  | Recover_extlog_replay -> 9
  | Recover_alloc_chains -> 10
  | Recover_image_scan -> 11
  | Recover_txn_resolve -> 12
  | Recover_eager_sweep -> 13
  | Recover_checkpoint -> 14
  | Sweep_partial -> 15
  | Net_drop -> 16
  | Net_delay -> 17
  | Net_dup -> 18
  | Net_trunc -> 19
  | Net_sever -> 20

let count = List.length all

let to_string = function
  | Epoch_advance -> "epoch_advance"
  | Post_checkpoint -> "post_checkpoint"
  | Sweep_partial -> "epoch.sweep_partial"
  | Sfence -> "sfence"
  | Merge_limbo -> "merge_limbo"
  | Extlog_append -> "extlog_append"
  | Txn_prepare -> "txn_prepare"
  | Txn_commit_record -> "txn_commit_record"
  | Txn_rollback -> "txn_rollback"
  | Recover_epoch_open -> "recover.epoch_open"
  | Recover_extlog_replay -> "recover.extlog_replay"
  | Recover_alloc_chains -> "recover.alloc_chains"
  | Recover_image_scan -> "recover.image_scan"
  | Recover_txn_resolve -> "recover.txn_resolve"
  | Recover_eager_sweep -> "recover.eager_sweep"
  | Recover_checkpoint -> "recover.checkpoint"
  | Net_drop -> "net.drop"
  | Net_delay -> "net.delay"
  | Net_dup -> "net.dup"
  | Net_trunc -> "net.trunc"
  | Net_sever -> "net.sever"

let of_string s = List.find_opt (fun site -> to_string site = s) all

let of_phase s =
  match of_string s with
  | Some site when String.length s >= 8 && String.sub s 0 8 = "recover." ->
      Some site
  | _ -> None

let is_recovery = function
  | Recover_epoch_open | Recover_extlog_replay | Recover_alloc_chains
  | Recover_image_scan | Recover_txn_resolve | Recover_eager_sweep
  | Recover_checkpoint | Txn_rollback ->
      true
  | Epoch_advance | Post_checkpoint | Sweep_partial | Sfence | Merge_limbo
  | Extlog_append | Txn_prepare | Txn_commit_record | Net_drop | Net_delay
  | Net_dup | Net_trunc | Net_sever ->
      false
