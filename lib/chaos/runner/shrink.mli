(** Failure minimisation and repro serialisation.

    A torture run is a pure function of its config (one RNG seeded from
    [config.seed] drives ops, crash points and PCSO prefixes), and a run
    of [N] ops executes the identical first [min (N, failing op)]
    operations of any longer run — so "fails within N ops" is monotone
    in [N] and binary search finds the minimal failing prefix. The
    minimized repro (seed, op index, crash site, schedule) serialises to
    JSON for direct replay via [bin/chaos.exe --replay]. *)

val minimize : Torture.config -> (Torture.config * Torture.outcome) option
(** Binary-search the smallest [ops] bound under which [config] still
    fails; [None] if the full run actually passes. The returned config
    is the minimized one, the outcome its (failing) result. *)

val repro_to_json : Torture.config -> Torture.outcome -> Obs.Json.t
(** Self-contained repro document: the config fields needed to re-run,
    plus the observed failure (op index, site, detail). *)

val config_of_json : Obs.Json.t -> Torture.config
(** Rebuild a runnable config from {!repro_to_json} output (unknown
    fields ignored; missing fields fall back to {!Torture.default}).
    Raises [Failure] on a document that lacks a ["seed"]. *)
