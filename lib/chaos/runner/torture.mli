(** The library-backed crash-torture / chaos runner.

    One [run] drives random operations against an INCLL store and an
    in-memory shadow model, crashing at random points (the paper's §5.2
    methodology) and/or at the deterministic sites of a {!Chaos.Plan.t}
    schedule — including sites {e inside recovery}, which the runner
    survives by re-entering recovery until it converges. After every
    recovery the {!Oracle} replays the committed op-log prefix into a
    plain [Hashtbl] and the store must match it exactly; allocator
    chains are optionally re-validated with [Alloc.Durable.validate].

    CI ([make chaos]), [bin/chaos.exe] and [examples/crash_torture.exe]
    all run this same code. *)

type config = {
  ops : int;
  nkeys : int;
  seed : int;
  epoch_len_ns : float;
  policy : Nvm.Config.policy;
      (** checkpoint-scheduling policy under test (default
          [Throughput] = the paper's stop-the-world wbinvd; [Latency] /
          [Rto] exercise the incremental sweep and its
          [epoch.sweep_partial] crash site) *)
  size_bytes : int;
  extlog_bytes : int;
  crash_period : int;
      (** expected ops between random crashes; 0 disables random crashes *)
  shards : int;
      (** shard count of the {!Store.Sharded} store under test; 1 keeps
          the historical single-system stream *)
  txn_period : int;
      (** expected ops between multi-key transactions; 0 disables
          transactions entirely (and keeps the historical RNG stream) *)
  txn_writes : int;  (** max writes per transaction (uniform 1..n) *)
  schedule : Chaos.Plan.t;
      (** deterministic injection points, armed one after another: when a
          point fires the runner crashes, arms the next point (so a
          following [recover.*] point fires inside this crash's
          recovery), and recovers *)
  validate_chains : bool;
      (** run the full allocator invariant check after every recovery *)
  verbose : bool;
}

type failure = {
  op_index : int;  (** 1-based op at which the failure surfaced *)
  site : string option;  (** last injected site before the failure, if any *)
  detail : string;
}

type outcome = {
  ok : bool;
  ops_run : int;
  crashes : int;  (** random + injected *)
  injected : (string * int) list;  (** per-site injected crash counts *)
  schedule_left : int;  (** scheduled points that never fired *)
  recoveries : int;
  verified : int;  (** total post-recovery key verifications *)
  txns_committed : int;  (** transactions whose commit call returned *)
  txns_in_doubt : int;
      (** injected crashes that hit with a transaction in flight — the
          all-or-nothing cases the oracle then adjudicates by watermark *)
  quarantined : int;  (** allocator chains quarantined across the run *)
  failure : failure option;
}

val default : config
(** 30k ops, 1000 keys, seed 7, short (0.2 ms) epochs, ~1/2000 random
    crash rate, one shard, no transactions, no schedule — the historical
    [crash_torture] shape (bit-identical RNG stream). *)

val run : ?save_image:string -> config -> outcome
(** [save_image] writes the final persisted image (what a power failure
    at end of run would leave) to the given path — [bin/incll_fsck.exe]
    then replays recovery on it as an independent check. *)

val failure_to_string : failure -> string
