(** The shadow-model differential checker.

    The torture runner records every mutating operation here before
    applying it to the durable store — tagged with the shard that owns
    its key and, for transactional writes, the transaction id. At each
    epoch boundary of each shard the oracle marks how many operations
    were complete when that (shard, epoch) began. After a crash the
    store must roll every shard back to the beginning of the epoch the
    crash invalidated there {e and} redo committed transactions from
    their PREPARE records, so {!compact} rebuilds the op log into
    exactly the survivors: per-shard checkpointed prefixes plus redone
    committed-transaction writes. {!replay} then folds the log into a
    plain [Hashtbl] — deliberately the dumbest possible model — and
    {!check} compares the recovered store against it key by key. *)

type op = Put of { key : string; value : string } | Remove of { key : string }

type t

val create : unit -> t

val record : t -> ?txn:int -> shard:int -> op -> unit
(** Append an operation owned by [shard]. Call {e before} applying it to
    the store, so an operation whose own epoch-advance commits it is in
    the log. [txn] tags writes of a transaction (record them just before
    the commit call; buffered writes never reach the store earlier). *)

val length : t -> int

val mark_epoch : t -> shard:int -> epoch:int -> unit
(** Note that [epoch] is (now) running on [shard]. Only the first
    observation of a (shard, epoch) pair sets its boundary: the number
    of operations complete when it began. *)

val boundary_at : t -> shard:int -> crashed_epoch:int -> int
(** Operations complete when [shard]'s crashed epoch began — the
    rollback point for that shard's keys. Falls back to {!length} when
    the epoch was never observed — that happens only when the crash hit
    inside an operation's own checkpoint, after the operation's
    mutations were flushed. *)

val compact : t -> boundary:(int -> int) -> committed:(int -> bool) -> unit
(** Post-crash survivor compaction. [boundary shard] is that shard's
    rollback point (from {!boundary_at}); [committed id] says whether
    transaction [id]'s commit point is durable (the torture runner reads
    the coordinator shard's watermark post-crash). Keeps the per-shard
    checkpointed prefixes of plain operations in order, keeps committed
    transactional writes — re-appending those that fell past their
    shard's boundary (recovery redoes them after the rollback) — drops
    everything else (uncommitted transactional writes are dropped even
    inside a kept prefix: they never reached any tree), and clears every
    epoch boundary (recovery starts a fresh epoch numbering context). *)

val replay : t -> (string, string) Hashtbl.t
(** Fold the whole (compacted) log into a fresh table. *)

val check :
  t ->
  get:(string -> string option) ->
  cardinal:int ->
  (int, string) result
(** Replay and compare: every key of the replayed model must read back
    with the same value, and [cardinal] must equal the model size.
    Returns the number of keys verified, or a human-readable mismatch
    description. *)
