(** The shadow-model differential checker.

    The torture runner records every mutating operation here before
    applying it to the durable store. At each epoch boundary the oracle
    marks how many operations were complete when that epoch began; after
    a crash, the store must roll back to the beginning of the epoch the
    crash invalidated, so {!committed_at} maps the crashed epoch to the
    operation count the recovered store must reflect. {!replay} then
    rebuilds that prefix into a plain [Hashtbl] — deliberately the
    dumbest possible model — and {!check} compares the recovered store
    against it key by key. *)

type op = Put of { key : string; value : string } | Remove of { key : string }

type t

val create : unit -> t

val record : t -> op -> unit
(** Append an operation. Call {e before} applying it to the store, so an
    operation whose own epoch-advance commits it is in the log. *)

val length : t -> int

val mark_epoch : t -> epoch:int -> unit
(** Note that [epoch] is (now) running. Only the first observation of an
    epoch sets its boundary: the number of operations complete when it
    began. *)

val committed_at : t -> crashed_epoch:int -> int
(** Operations the store must reflect after recovering from a crash that
    invalidated [crashed_epoch]. Falls back to {!length} when the epoch
    was never observed — that happens only when the crash hit inside an
    operation's own checkpoint, after the operation's mutations were
    flushed. *)

val truncate : t -> int -> unit
(** Drop rolled-back operations and every epoch boundary (recovery
    starts a fresh epoch numbering context). *)

val replay : t -> (string, string) Hashtbl.t
(** Fold the whole (truncated) log into a fresh table. *)

val check :
  t ->
  get:(string -> string option) ->
  cardinal:int ->
  (int, string) result
(** Replay and compare: every key of the replayed model must read back
    with the same value, and [cardinal] must equal the model size.
    Returns the number of keys verified, or a human-readable mismatch
    description. *)
