type op = Put of { key : string; value : string } | Remove of { key : string }

type entry = { op : op; shard : int; txn : int option }

type t = {
  mutable entries : entry array;
  mutable len : int;
  boundaries : (int * int, int) Hashtbl.t;
      (* (shard, epoch) -> ops complete at that epoch's start on that shard *)
}

let dummy = { op = Remove { key = "" }; shard = 0; txn = None }

let create () =
  { entries = Array.make 1024 dummy; len = 0; boundaries = Hashtbl.create 32 }

let record t ?txn ~shard op =
  if t.len = Array.length t.entries then begin
    let bigger = Array.make (2 * t.len) dummy in
    Array.blit t.entries 0 bigger 0 t.len;
    t.entries <- bigger
  end;
  t.entries.(t.len) <- { op; shard; txn };
  t.len <- t.len + 1

let length t = t.len

let mark_epoch t ~shard ~epoch =
  if not (Hashtbl.mem t.boundaries (shard, epoch)) then
    Hashtbl.add t.boundaries (shard, epoch) t.len

let boundary_at t ~shard ~crashed_epoch =
  match Hashtbl.find_opt t.boundaries (shard, crashed_epoch) with
  | Some n -> n
  | None -> t.len

(* Post-crash survivor compaction. A plain operation survives iff its
   shard's crashed epoch began after it ([i < boundary shard]: it was
   inside a completed checkpoint). A transactional write survives iff
   its transaction's commit point is durable — the boundary is
   irrelevant in both directions: an uncommitted write never reached any
   tree (writes apply only after the watermark advances), even when a
   reserve-time checkpoint pushed the boundary past its record, and a
   committed write rolled back with its epoch is redone by recovery from
   the surviving PREPARE.

   Redone operations land {e after} the checkpointed prefix (recovery
   replays the rollback first, then resolves records), in log = record
   order; per-key state is unaffected by the move because every
   operation at or past a shard's boundary except the redone ones is
   discarded. *)
let compact t ~boundary ~committed =
  let kept = Array.make (max 1 t.len) dummy in
  let kn = ref 0 in
  let redo = ref [] in
  for i = 0 to t.len - 1 do
    let e = t.entries.(i) in
    let keep () =
      kept.(!kn) <- e;
      incr kn
    in
    match e.txn with
    | Some id ->
        if committed id then
          if i < boundary e.shard then keep () else redo := e :: !redo
    | None -> if i < boundary e.shard then keep ()
  done;
  List.iter
    (fun e ->
      kept.(!kn) <- e;
      incr kn)
    (List.rev !redo);
  Array.blit kept 0 t.entries 0 !kn;
  t.len <- !kn;
  Hashtbl.reset t.boundaries

let replay t =
  let tbl = Hashtbl.create 1024 in
  for i = 0 to t.len - 1 do
    match t.entries.(i).op with
    | Put { key; value } -> Hashtbl.replace tbl key value
    | Remove { key } -> Hashtbl.remove tbl key
  done;
  tbl

let check t ~get ~cardinal =
  let tbl = replay t in
  let bad = ref None in
  Hashtbl.iter
    (fun k v ->
      if !bad = None then
        match get k with
        | Some v' when v' = v -> ()
        | other ->
            bad :=
              Some
                (Printf.sprintf "key %S: store has %s, oracle expects %S" k
                   (match other with
                   | Some v' -> Printf.sprintf "%S" v'
                   | None -> "nothing")
                   v))
    tbl;
  match !bad with
  | Some msg -> Error msg
  | None ->
      let n = Hashtbl.length tbl in
      if cardinal <> n then
        Error
          (Printf.sprintf "cardinality: store has %d entries, oracle has %d"
             cardinal n)
      else Ok n
