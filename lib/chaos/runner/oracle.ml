type op = Put of { key : string; value : string } | Remove of { key : string }

type t = {
  mutable ops : op array;
  mutable len : int;
  boundaries : (int, int) Hashtbl.t;  (* epoch -> ops complete at its start *)
}

let dummy = Remove { key = "" }

let create () = { ops = Array.make 1024 dummy; len = 0; boundaries = Hashtbl.create 32 }

let record t op =
  if t.len = Array.length t.ops then begin
    let bigger = Array.make (2 * t.len) dummy in
    Array.blit t.ops 0 bigger 0 t.len;
    t.ops <- bigger
  end;
  t.ops.(t.len) <- op;
  t.len <- t.len + 1

let length t = t.len

let mark_epoch t ~epoch =
  if not (Hashtbl.mem t.boundaries epoch) then
    Hashtbl.add t.boundaries epoch t.len

let committed_at t ~crashed_epoch =
  match Hashtbl.find_opt t.boundaries crashed_epoch with
  | Some n -> n
  | None -> t.len

let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Oracle.truncate";
  t.len <- n;
  Hashtbl.reset t.boundaries

let replay t =
  let tbl = Hashtbl.create 1024 in
  for i = 0 to t.len - 1 do
    match t.ops.(i) with
    | Put { key; value } -> Hashtbl.replace tbl key value
    | Remove { key } -> Hashtbl.remove tbl key
  done;
  tbl

let check t ~get ~cardinal =
  let tbl = replay t in
  let bad = ref None in
  Hashtbl.iter
    (fun k v ->
      if !bad = None then
        match get k with
        | Some v' when v' = v -> ()
        | other ->
            bad :=
              Some
                (Printf.sprintf "key %S: store has %s, oracle expects %S" k
                   (match other with
                   | Some v' -> Printf.sprintf "%S" v'
                   | None -> "nothing")
                   v))
    tbl;
  match !bad with
  | Some msg -> Error msg
  | None ->
      let n = Hashtbl.length tbl in
      if cardinal <> n then
        Error
          (Printf.sprintf "cardinality: store has %d entries, oracle has %d"
             cardinal n)
      else Ok n
