module Sys_ = Incll.System

type config = {
  ops : int;
  nkeys : int;
  seed : int;
  epoch_len_ns : float;
  size_bytes : int;
  extlog_bytes : int;
  crash_period : int;
  schedule : Chaos.Plan.t;
  validate_chains : bool;
  verbose : bool;
}

type failure = { op_index : int; site : string option; detail : string }

type outcome = {
  ok : bool;
  ops_run : int;
  crashes : int;
  injected : (string * int) list;
  schedule_left : int;
  recoveries : int;
  verified : int;
  quarantined : int;
  failure : failure option;
}

let default =
  {
    ops = 30_000;
    nkeys = 1_000;
    seed = 7;
    epoch_len_ns = 0.2e6;  (* short epochs -> many checkpoints *)
    size_bytes = 32 * 1024 * 1024;
    extlog_bytes = 2 * 1024 * 1024;
    crash_period = 2_000;
    schedule = [];
    validate_chains = true;
    verbose = false;
  }

let failure_to_string f =
  Printf.sprintf "op %d%s: %s" f.op_index
    (match f.site with Some s -> " (after injected crash at " ^ s ^ ")" | None -> "")
    f.detail

exception Fail of failure

let key_of i = Masstree.Key.of_int64 (Util.Scramble.fmix64 (Int64.of_int i))

(* The epoch the persisted image says was running — the epoch recovery
   will invalidate. Read it *after* the crash, when the volatile image
   has been reloaded from the persisted one, so a durable-epoch store
   whose fence the crash interrupted is accounted the way recovery will
   see it. *)
let persisted_epoch region =
  Int64.to_int (Nvm.Region.read_i64 region Nvm.Layout.off_durable_epoch)

let run ?save_image cfg =
  Chaos.Plan.reset ();
  let rng = Util.Rng.create ~seed:cfg.seed in
  let config =
    {
      Sys_.default_config with
      Sys_.nvm =
        {
          Nvm.Config.default with
          Nvm.Config.size_bytes = cfg.size_bytes;
          extlog_bytes = cfg.extlog_bytes;
        };
      epoch_len_ns = cfg.epoch_len_ns;
    }
  in
  let sys = ref (Sys_.create ~config Sys_.Incll) in
  Chaos.Plan.set_registry (Some (Sys_.metrics !sys));
  let oracle = Oracle.create () in
  let model : (string, string) Hashtbl.t = Hashtbl.create 1024 in
  let schedule = ref cfg.schedule in
  let arm_next () =
    match !schedule with
    | [] -> ()
    | p :: rest ->
        schedule := rest;
        if cfg.verbose then
          Printf.printf "  [chaos] arming %s\n%!" (Chaos.Plan.point_to_string p);
        Chaos.Plan.arm p
  in
  let crashes = ref 0 in
  let recoveries = ref 0 in
  let verified = ref 0 in
  let last_site = ref None in
  let epoch () =
    match Sys_.epoch_manager !sys with
    | Some em -> Epoch.Manager.current em
    | None -> 0
  in
  let sync () = Oracle.mark_epoch oracle ~epoch:(epoch ()) in
  let quarantined () =
    Obs.Registry.counter_value (Sys_.metrics !sys) "alloc.quarantined_chains"
  in
  (* Crash now (the region's volatile state is lost with a random PCSO
     prefix per dirty line), then recover — re-entering recovery as many
     times as armed [recover.*] points crash it — and check the result
     against the oracle's replay of the committed op-log prefix. *)
  let crash_and_recover ~op_index =
    incr crashes;
    Sys_.crash !sys rng;
    let committed =
      Oracle.committed_at oracle ~crashed_epoch:(persisted_epoch (Sys_.region !sys))
    in
    let rec recover_loop attempts =
      if attempts > 4 + List.length cfg.schedule then
        raise
          (Fail
             {
               op_index;
               site = !last_site;
               detail = "recovery did not converge after repeated crashes";
             });
      match Sys_.recover !sys with
      | s -> s
      | exception Chaos.Plan.Crash_requested p ->
          incr crashes;
          last_site := Some (Chaos.Site.to_string p.site);
          if cfg.verbose then
            Printf.printf "  [chaos] crash inside recovery at %s\n%!"
              (Chaos.Site.to_string p.site);
          Nvm.Region.trace_event (Sys_.region !sys)
            (Obs.Trace.Custom
               { kind = "chaos_inject"; arg = Chaos.Site.index p.site });
          Nvm.Region.crash (Sys_.region !sys) rng;
          arm_next ();
          recover_loop (attempts + 1)
    in
    sys := recover_loop 0;
    incr recoveries;
    (* Verification must not itself be chaos-interrupted: its reads
       advance the simulated clock (and therefore epochs), which would
       let an armed workload-site point fire inside harness code. *)
    let paused = Chaos.Plan.armed () in
    Chaos.Plan.disarm ();
    Oracle.truncate oracle committed;
    (try Masstree.Tree.validate (Sys_.tree !sys)
     with Failure m ->
       raise (Fail { op_index; site = !last_site; detail = "tree: " ^ m }));
    (match
       Oracle.check oracle
         ~get:(fun k -> Sys_.get !sys ~key:k)
         ~cardinal:(Masstree.Tree.cardinal (Sys_.tree !sys))
     with
    | Ok n -> verified := !verified + n
    | Error detail -> raise (Fail { op_index; site = !last_site; detail }));
    (match Sys_.durable_alloc !sys with
    | Some da when cfg.validate_chains -> (
        match (Alloc.Durable.validate da).Alloc.Durable.errors with
        | [] -> ()
        | e :: _ ->
            raise
              (Fail
                 {
                   op_index;
                   site = !last_site;
                   detail = "allocator: " ^ e.Alloc.Durable.detail;
                 }))
    | _ -> ());
    (* Resync the live model with the oracle's replay. *)
    Hashtbl.reset model;
    Hashtbl.iter (fun k v -> Hashtbl.replace model k v) (Oracle.replay oracle);
    sync ();
    (match paused with Some p -> Chaos.Plan.arm p | None -> ())
  in
  let ops_run = ref 0 in
  let failure = ref None in
  (try
     arm_next ();
     sync ();
     for step = 1 to cfg.ops do
       ops_run := step;
       try
         sync ();
         let k = key_of (Util.Rng.int rng cfg.nkeys) in
         (match Util.Rng.int rng 10 with
         | 0 | 1 | 2 | 3 | 4 ->
             let v = Printf.sprintf "v%d" step in
             Oracle.record oracle (Oracle.Put { key = k; value = v });
             Sys_.put !sys ~key:k ~value:v;
             Hashtbl.replace model k v
         | 5 | 6 ->
             Oracle.record oracle (Oracle.Remove { key = k });
             ignore (Sys_.remove !sys ~key:k);
             Hashtbl.remove model k
         | _ ->
             let got = Sys_.get !sys ~key:k and want = Hashtbl.find_opt model k in
             if got <> want then
               raise
                 (Fail
                    {
                      op_index = step;
                      site = !last_site;
                      detail =
                        Printf.sprintf "read of %S: got %s, expected %s" k
                          (match got with
                          | Some v -> Printf.sprintf "%S" v
                          | None -> "nothing")
                          (match want with
                          | Some v -> Printf.sprintf "%S" v
                          | None -> "nothing");
                    }));
         sync ();
         if cfg.crash_period > 0 && Util.Rng.int rng cfg.crash_period = 0 then
           crash_and_recover ~op_index:step
       with Chaos.Plan.Crash_requested p ->
         (* An armed point fired somewhere inside the operation. *)
         last_site := Some (Chaos.Site.to_string p.site);
         if cfg.verbose then
           Printf.printf "  [chaos] crash at %s (op %d)\n%!"
             (Chaos.Site.to_string p.site) step;
         Nvm.Region.trace_event (Sys_.region !sys)
           (Obs.Trace.Custom
              { kind = "chaos_inject"; arg = Chaos.Site.index p.site });
         arm_next ();
         crash_and_recover ~op_index:step
     done;
     (* End-of-run sweep: one final crash-free validation pass. *)
     Chaos.Plan.disarm ();
     (try Masstree.Tree.validate (Sys_.tree !sys)
      with Failure m ->
        raise (Fail { op_index = cfg.ops; site = !last_site; detail = "tree: " ^ m }));
     match Sys_.durable_alloc !sys with
     | Some da when cfg.validate_chains -> (
         match (Alloc.Durable.validate da).Alloc.Durable.errors with
         | [] -> ()
         | e :: _ ->
             raise
               (Fail
                  {
                    op_index = cfg.ops;
                    site = !last_site;
                    detail = "allocator: " ^ e.Alloc.Durable.detail;
                  }))
     | _ -> ()
   with
  | Fail f -> failure := Some f
  | Alloc.Durable.Corrupt_chain { head; at; steps; reason } ->
      failure :=
        Some
          {
            op_index = !ops_run;
            site = !last_site;
            detail =
              Printf.sprintf "Corrupt_chain: head %d at %d after %d steps: %s"
                head at steps reason;
          }
  | e ->
      failure :=
        Some
          {
            op_index = !ops_run;
            site = !last_site;
            detail = "exception: " ^ Printexc.to_string e;
          });
  (match save_image with
  | Some path -> Nvm.Image.save (Sys_.region !sys) ~path
  | None -> ());
  let quarantined_total = quarantined () in
  let injected = Chaos.Plan.injected_counts () in
  Chaos.Plan.set_registry None;
  Chaos.Plan.reset ();
  {
    ok = !failure = None && quarantined_total = 0;
    ops_run = !ops_run;
    crashes = !crashes;
    injected;
    schedule_left = List.length !schedule;
    recoveries = !recoveries;
    verified = !verified;
    quarantined = quarantined_total;
    failure = !failure;
  }
