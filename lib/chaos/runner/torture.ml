module Sys_ = Incll.System
module St = Store.Sharded

type config = {
  ops : int;
  nkeys : int;
  seed : int;
  epoch_len_ns : float;
  policy : Nvm.Config.policy;
  size_bytes : int;
  extlog_bytes : int;
  crash_period : int;
  shards : int;
  txn_period : int;
  txn_writes : int;
  schedule : Chaos.Plan.t;
  validate_chains : bool;
  verbose : bool;
}

type failure = { op_index : int; site : string option; detail : string }

type outcome = {
  ok : bool;
  ops_run : int;
  crashes : int;
  injected : (string * int) list;
  schedule_left : int;
  recoveries : int;
  verified : int;
  txns_committed : int;
  txns_in_doubt : int;
  quarantined : int;
  failure : failure option;
}

let default =
  {
    ops = 30_000;
    nkeys = 1_000;
    seed = 7;
    epoch_len_ns = 0.2e6;  (* short epochs -> many checkpoints *)
    policy = Nvm.Config.Throughput;
    size_bytes = 32 * 1024 * 1024;
    extlog_bytes = 2 * 1024 * 1024;
    crash_period = 2_000;
    shards = 1;
    txn_period = 0;  (* no transactions: the historical stream *)
    txn_writes = 4;
    schedule = [];
    validate_chains = true;
    verbose = false;
  }

let failure_to_string f =
  Printf.sprintf "op %d%s: %s" f.op_index
    (match f.site with Some s -> " (after injected crash at " ^ s ^ ")" | None -> "")
    f.detail

exception Fail of failure

let key_of i = Masstree.Key.of_int64 (Util.Scramble.fmix64 (Int64.of_int i))

(* The epoch the persisted image says was running — the epoch recovery
   will invalidate. Read it *after* the crash, when the volatile image
   has been reloaded from the persisted one, so a durable-epoch store
   whose fence the crash interrupted is accounted the way recovery will
   see it. *)
let persisted_epoch region =
  Int64.to_int (Nvm.Region.read_i64 region Nvm.Layout.off_durable_epoch)

let run ?save_image cfg =
  Chaos.Plan.reset ();
  if cfg.shards <= 0 then invalid_arg "Torture.run: shards";
  let rng = Util.Rng.create ~seed:cfg.seed in
  let config =
    {
      Sys_.default_config with
      Sys_.nvm =
        Nvm.Config.with_policy
          {
            Nvm.Config.default with
            Nvm.Config.size_bytes = cfg.size_bytes;
            extlog_bytes = cfg.extlog_bytes;
          }
          cfg.policy;
      epoch_len_ns = cfg.epoch_len_ns;
    }
  in
  let store = St.create ~config Sys_.Incll ~shards:cfg.shards in
  Chaos.Plan.set_registry (Some (Sys_.metrics (St.shard store 0)));
  let oracle = Oracle.create () in
  let model : (string, string) Hashtbl.t = Hashtbl.create 1024 in
  (* Coordinator shard of every transaction ever begun: the post-crash
     committed predicate reads that shard's durable watermark. *)
  let coordinators : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let schedule = ref cfg.schedule in
  let arm_next () =
    match !schedule with
    | [] -> ()
    | p :: rest ->
        schedule := rest;
        if cfg.verbose then
          Printf.printf "  [chaos] arming %s\n%!" (Chaos.Plan.point_to_string p);
        Chaos.Plan.arm p
  in
  let crashes = ref 0 in
  let recoveries = ref 0 in
  let verified = ref 0 in
  let txns_committed = ref 0 in
  let txns_in_doubt = ref 0 in
  let committing = ref false in
  let last_site = ref None in
  let shard_epoch s =
    match Sys_.epoch_manager (St.shard store s) with
    | Some em -> Epoch.Manager.current em
    | None -> 0
  in
  let sync () =
    for s = 0 to cfg.shards - 1 do
      Oracle.mark_epoch oracle ~shard:s ~epoch:(shard_epoch s)
    done
  in
  let quarantined () =
    let total = ref 0 in
    for s = 0 to cfg.shards - 1 do
      total :=
        !total
        + Obs.Registry.counter_value
            (Sys_.metrics (St.shard store s))
            "alloc.quarantined_chains"
    done;
    !total
  in
  (* Crash now (every shard's volatile state is lost with a random PCSO
     prefix per dirty line), then recover — re-entering recovery as many
     times as armed [recover.*] points crash it — and check the result
     against the oracle's replay of the surviving op-log. *)
  let crash_and_recover ~op_index =
    incr crashes;
    St.crash store rng;
    (* Per-shard rollback points and the commit decisions, both read
       from the post-crash persisted image — exactly what recovery will
       see. The watermark word is fenced at every commit, so it always
       survives. *)
    let boundary =
      Array.init cfg.shards (fun s ->
          Oracle.boundary_at oracle ~shard:s
            ~crashed_epoch:(persisted_epoch (Sys_.region (St.shard store s))))
    in
    let committed id =
      match Hashtbl.find_opt coordinators id with
      | Some coord ->
          id <= Incll.Txn.watermark (Sys_.region (St.shard store coord))
      | None -> false
    in
    let rec recover_loop attempts =
      if attempts > 4 + List.length cfg.schedule then
        raise
          (Fail
             {
               op_index;
               site = !last_site;
               detail = "recovery did not converge after repeated crashes";
             });
      match St.recover store with
      | (_ : (string * float) list) -> ()
      | exception Chaos.Plan.Crash_requested p ->
          incr crashes;
          last_site := Some (Chaos.Site.to_string p.site);
          if cfg.verbose then
            Printf.printf "  [chaos] crash inside recovery at %s\n%!"
              (Chaos.Site.to_string p.site);
          Nvm.Region.trace_event
            (Sys_.region (St.shard store 0))
            (Obs.Trace.Custom
               { kind = "chaos_inject"; arg = Chaos.Site.index p.site });
          St.crash store rng;
          arm_next ();
          recover_loop (attempts + 1)
    in
    recover_loop 0;
    incr recoveries;
    (* Verification must not itself be chaos-interrupted: its reads
       advance the simulated clock (and therefore epochs), which would
       let an armed workload-site point fire inside harness code. *)
    let paused = Chaos.Plan.armed () in
    Chaos.Plan.disarm ();
    Oracle.compact oracle ~boundary:(fun s -> boundary.(s)) ~committed;
    (try
       for s = 0 to cfg.shards - 1 do
         Masstree.Tree.validate (Sys_.tree (St.shard store s))
       done
     with Failure m ->
       raise (Fail { op_index; site = !last_site; detail = "tree: " ^ m }));
    (match
       Oracle.check oracle
         ~get:(fun k -> St.get store ~key:k)
         ~cardinal:(St.cardinal store)
     with
    | Ok n -> verified := !verified + n
    | Error detail -> raise (Fail { op_index; site = !last_site; detail }));
    (if cfg.validate_chains then
       for s = 0 to cfg.shards - 1 do
         match Sys_.durable_alloc (St.shard store s) with
         | Some da -> (
             match (Alloc.Durable.validate da).Alloc.Durable.errors with
             | [] -> ()
             | e :: _ ->
                 raise
                   (Fail
                      {
                        op_index;
                        site = !last_site;
                        detail = "allocator: " ^ e.Alloc.Durable.detail;
                      }))
         | None -> ()
       done);
    (* Resync the live model with the oracle's replay. *)
    Hashtbl.reset model;
    Hashtbl.iter (fun k v -> Hashtbl.replace model k v) (Oracle.replay oracle);
    sync ();
    (match paused with Some p -> Chaos.Plan.arm p | None -> ())
  in
  (* A multi-key transaction: record the write set (tagged with the txn
     id), then run the two-phase commit. The oracle decides post-crash
     survival by probing the coordinator's watermark, exactly like
     recovery does, so a crash anywhere inside the commit must leave
     either every write or none. *)
  let run_txn step =
    St.txn_begin store;
    let id = Option.get (St.txn_id store) in
    let nw = 1 + Util.Rng.int rng cfg.txn_writes in
    let writes = ref [] in
    for w = 1 to nw do
      let k = key_of (Util.Rng.int rng cfg.nkeys) in
      if Util.Rng.int rng 10 < 7 then begin
        let v = Printf.sprintf "t%d.%d" step w in
        St.txn_put store ~key:k ~value:v;
        writes := (k, Some v) :: !writes
      end
      else begin
        St.txn_remove store ~key:k;
        writes := (k, None) :: !writes
      end
    done;
    let writes = List.rev !writes in
    let coordinator =
      List.fold_left
        (fun a (k, _) -> min a (St.shard_of_key store k))
        max_int writes
    in
    Hashtbl.replace coordinators id coordinator;
    List.iter
      (fun (k, v) ->
        let shard = St.shard_of_key store k in
        match v with
        | Some value ->
            Oracle.record oracle ~txn:id ~shard (Oracle.Put { key = k; value })
        | None -> Oracle.record oracle ~txn:id ~shard (Oracle.Remove { key = k }))
      writes;
    committing := true;
    St.txn_commit store;
    committing := false;
    incr txns_committed;
    List.iter
      (fun (k, v) ->
        match v with
        | Some value -> Hashtbl.replace model k value
        | None -> Hashtbl.remove model k)
      writes
  in
  let ops_run = ref 0 in
  let failure = ref None in
  (try
     arm_next ();
     sync ();
     for step = 1 to cfg.ops do
       ops_run := step;
       try
         sync ();
         if cfg.txn_period > 0 && Util.Rng.int rng cfg.txn_period = 0 then
           run_txn step
         else begin
           let k = key_of (Util.Rng.int rng cfg.nkeys) in
           match Util.Rng.int rng 10 with
           | 0 | 1 | 2 | 3 | 4 ->
               let v = Printf.sprintf "v%d" step in
               Oracle.record oracle ~shard:(St.shard_of_key store k)
                 (Oracle.Put { key = k; value = v });
               St.put store ~key:k ~value:v;
               Hashtbl.replace model k v
           | 5 | 6 ->
               Oracle.record oracle ~shard:(St.shard_of_key store k)
                 (Oracle.Remove { key = k });
               ignore (St.remove store ~key:k);
               Hashtbl.remove model k
           | _ ->
               let got = St.get store ~key:k and want = Hashtbl.find_opt model k in
               if got <> want then
                 raise
                   (Fail
                      {
                        op_index = step;
                        site = !last_site;
                        detail =
                          Printf.sprintf "read of %S: got %s, expected %s" k
                            (match got with
                            | Some v -> Printf.sprintf "%S" v
                            | None -> "nothing")
                            (match want with
                            | Some v -> Printf.sprintf "%S" v
                            | None -> "nothing");
                      })
         end;
         sync ();
         if cfg.crash_period > 0 && Util.Rng.int rng cfg.crash_period = 0 then
           crash_and_recover ~op_index:step
       with Chaos.Plan.Crash_requested p ->
         (* An armed point fired somewhere inside the operation. *)
         last_site := Some (Chaos.Site.to_string p.site);
         if !committing || St.txn_active store then incr txns_in_doubt;
         committing := false;
         if cfg.verbose then
           Printf.printf "  [chaos] crash at %s (op %d)\n%!"
             (Chaos.Site.to_string p.site) step;
         Nvm.Region.trace_event
           (Sys_.region (St.shard store 0))
           (Obs.Trace.Custom
              { kind = "chaos_inject"; arg = Chaos.Site.index p.site });
         arm_next ();
         crash_and_recover ~op_index:step
     done;
     (* End-of-run sweep: one final crash-free validation pass. *)
     Chaos.Plan.disarm ();
     (try
        for s = 0 to cfg.shards - 1 do
          Masstree.Tree.validate (Sys_.tree (St.shard store s))
        done
      with Failure m ->
        raise (Fail { op_index = cfg.ops; site = !last_site; detail = "tree: " ^ m }));
     if cfg.validate_chains then
       for s = 0 to cfg.shards - 1 do
         match Sys_.durable_alloc (St.shard store s) with
         | Some da -> (
             match (Alloc.Durable.validate da).Alloc.Durable.errors with
             | [] -> ()
             | e :: _ ->
                 raise
                   (Fail
                      {
                        op_index = cfg.ops;
                        site = !last_site;
                        detail = "allocator: " ^ e.Alloc.Durable.detail;
                      }))
         | None -> ()
       done
   with
  | Fail f -> failure := Some f
  | Alloc.Durable.Corrupt_chain { head; at; steps; reason } ->
      failure :=
        Some
          {
            op_index = !ops_run;
            site = !last_site;
            detail =
              Printf.sprintf "Corrupt_chain: head %d at %d after %d steps: %s"
                head at steps reason;
          }
  | e ->
      failure :=
        Some
          {
            op_index = !ops_run;
            site = !last_site;
            detail = "exception: " ^ Printexc.to_string e;
          });
  (match save_image with
  | Some path -> Nvm.Image.save (Sys_.region (St.shard store 0)) ~path
  | None -> ());
  let quarantined_total = quarantined () in
  let injected = Chaos.Plan.injected_counts () in
  Chaos.Plan.set_registry None;
  Chaos.Plan.reset ();
  {
    ok = !failure = None && quarantined_total = 0;
    ops_run = !ops_run;
    crashes = !crashes;
    injected;
    schedule_left = List.length !schedule;
    recoveries = !recoveries;
    verified = !verified;
    txns_committed = !txns_committed;
    txns_in_doubt = !txns_in_doubt;
    quarantined = quarantined_total;
    failure = !failure;
  }
