module J = Obs.Json

let fails cfg = not (Torture.run cfg).Torture.ok

let minimize cfg =
  let full = Torture.run cfg in
  if full.Torture.ok then None
  else begin
    (* The failure cannot depend on ops after the one it surfaced at. *)
    let hi =
      match full.Torture.failure with
      | Some f -> max 1 f.Torture.op_index
      | None -> max 1 full.Torture.ops_run
    in
    let hi = if fails { cfg with Torture.ops = hi } then hi else cfg.Torture.ops in
    let rec search lo hi =
      (* invariant: ops = hi fails; ops < lo passes *)
      if lo >= hi then hi
      else
        let mid = (lo + hi) / 2 in
        if fails { cfg with Torture.ops = mid } then search lo mid
        else search (mid + 1) hi
    in
    let best = search 1 hi in
    let cfg' = { cfg with Torture.ops = best } in
    Some (cfg', Torture.run cfg')
  end

let repro_to_json (cfg : Torture.config) (out : Torture.outcome) =
  J.Obj
    [
      ("seed", J.Int cfg.Torture.seed);
      ("ops", J.Int cfg.Torture.ops);
      ("nkeys", J.Int cfg.Torture.nkeys);
      ("epoch_len_ns", J.Float cfg.Torture.epoch_len_ns);
      ("policy", J.String (Nvm.Config.policy_name cfg.Torture.policy));
      ("size_bytes", J.Int cfg.Torture.size_bytes);
      ("extlog_bytes", J.Int cfg.Torture.extlog_bytes);
      ("crash_period", J.Int cfg.Torture.crash_period);
      ("shards", J.Int cfg.Torture.shards);
      ("txn_period", J.Int cfg.Torture.txn_period);
      ("txn_writes", J.Int cfg.Torture.txn_writes);
      ( "schedule",
        J.List
          (List.map
             (fun p -> J.String (Chaos.Plan.point_to_string p))
             cfg.Torture.schedule) );
      ("quarantined", J.Int out.Torture.quarantined);
      ( "failure",
        match out.Torture.failure with
        | None -> J.Null
        | Some f ->
            J.Obj
              [
                ("op_index", J.Int f.Torture.op_index);
                ( "crash_site",
                  match f.Torture.site with
                  | Some s -> J.String s
                  | None -> J.Null );
                ("detail", J.String f.Torture.detail);
              ] );
    ]

let config_of_json j =
  let int name d =
    match J.find j name with Some (J.Int n) -> n | _ -> d
  in
  let flt name d =
    match Option.bind (J.find j name) J.to_float_opt with
    | Some f -> f
    | None -> d
  in
  (match J.find j "seed" with
  | Some (J.Int _) -> ()
  | _ -> failwith "Shrink.config_of_json: no seed");
  let d = Torture.default in
  {
    Torture.ops = int "ops" d.Torture.ops;
    nkeys = int "nkeys" d.Torture.nkeys;
    seed = int "seed" d.Torture.seed;
    epoch_len_ns = flt "epoch_len_ns" d.Torture.epoch_len_ns;
    policy =
      (match J.find j "policy" with
      | Some (J.String s) -> Nvm.Config.policy_of_string s
      | _ -> d.Torture.policy);
    size_bytes = int "size_bytes" d.Torture.size_bytes;
    extlog_bytes = int "extlog_bytes" d.Torture.extlog_bytes;
    crash_period = int "crash_period" d.Torture.crash_period;
    shards = int "shards" d.Torture.shards;
    txn_period = int "txn_period" d.Torture.txn_period;
    txn_writes = int "txn_writes" d.Torture.txn_writes;
    schedule =
      (match J.find j "schedule" with
      | Some (J.List l) ->
          List.filter_map
            (function
              | J.String s -> Some (Chaos.Plan.point_of_string s) | _ -> None)
            l
      | _ -> []);
    validate_chains = true;
    verbose = false;
  }
