type point = { site : Site.t; hit : int }
type t = point list

exception Crash_requested of point

let point_of_string s =
  let site_name, hit =
    match String.index_opt s ':' with
    | None -> (s, 1)
    | Some i -> (
        let name = String.sub s 0 i in
        let n = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt n with
        | Some h -> (name, h)
        | None -> invalid_arg ("Chaos.Plan.point_of_string: bad hit in " ^ s))
  in
  match Site.of_string site_name with
  | Some site -> { site; hit = max 1 hit }
  | None -> invalid_arg ("Chaos.Plan.point_of_string: unknown site " ^ site_name)

let point_to_string p = Printf.sprintf "%s:%d" (Site.to_string p.site) p.hit

let parse s =
  String.split_on_char ',' s
  |> List.filter_map (fun part ->
         let part = String.trim part in
         if part = "" then None else Some (point_of_string part))

(* Process-wide injector state. [enabled] gates the hot path: with
   nothing armed, [fire] is one load and one conditional branch. *)
let enabled = ref false
let current : point option ref = ref None
let hit_counts = Array.make Site.count 0
let injected_counts_a = Array.make Site.count 0
let registry : Obs.Registry.t option ref = ref None

let set_registry r = registry := r

let bump_registry prefix site =
  match !registry with
  | None -> ()
  | Some m ->
      incr (Obs.Registry.counter m ("chaos." ^ prefix ^ "." ^ Site.to_string site))

let arm p =
  Array.fill hit_counts 0 Site.count 0;
  current := Some p;
  enabled := true

let disarm () =
  enabled := false;
  current := None

let armed () = !current

let really_fire site =
  let i = Site.index site in
  hit_counts.(i) <- hit_counts.(i) + 1;
  bump_registry "hits" site;
  match !current with
  | Some p when p.site = site && hit_counts.(i) >= p.hit ->
      injected_counts_a.(i) <- injected_counts_a.(i) + 1;
      bump_registry "injected" site;
      disarm ();
      raise (Crash_requested p)
  | _ -> ()

let fire site = if !enabled then really_fire site

let hits site = hit_counts.(Site.index site)
let injected site = injected_counts_a.(Site.index site)
let injected_total () = Array.fold_left ( + ) 0 injected_counts_a

let injected_counts () =
  List.filter_map
    (fun site ->
      let n = injected site in
      if n = 0 then None else Some (Site.to_string site, n))
    Site.all
  |> List.sort compare

let reset () =
  disarm ();
  Array.fill hit_counts 0 Site.count 0;
  Array.fill injected_counts_a 0 Site.count 0
