(* Fault-tolerant client session: a retrying, reconnecting wrapper over
   [Client] that makes every logical op exactly-once.

   The session negotiates an id with a HELLO frame and stamps every
   mutation with a (sid, seq) pair; the server records each applied
   mutation durably under that pair before acking, so a retry that
   straddles a server crash is answered from the record instead of
   re-applied. That makes the retry policy here safe by construction:
   anything ambiguous (timeout, connection loss) is simply resent with
   the same seq after reconnecting and re-presenting the session id.

   Transactions are buffered client-side: txn_begin/txn_put/txn_remove
   touch no socket, and txn_commit plays the whole conversation
   (TXN_BEGIN, writes, TXN_COMMIT carrying the session stamp) in one
   attempt — so a lost connection mid-commit is resumable by replaying
   the conversation with the same stamp, and the server's commit dedup
   keeps it exactly-once. *)

exception Timed_out
exception Retries_exhausted
exception Txn_lost

type config = {
  op_deadline : float;  (* overall wall-clock budget per logical op, s *)
  attempt_timeout : float;  (* per-attempt reply timeout, s *)
  retry_budget : int;  (* attempts per logical op beyond the first *)
  backoff_base : float;  (* first backoff, s; doubles per retry *)
  backoff_max : float;  (* backoff cap, s *)
  seed : int;  (* jitter stream *)
}

let default_config =
  {
    op_deadline = 30.0;
    attempt_timeout = 5.0;
    retry_budget = 100;
    backoff_base = 0.005;
    backoff_max = 0.2;
    seed = 0x5e55_10;
  }

type txn_buf = { mutable writes : Proto.txn_write list (* newest first *) }

type t = {
  addr : Client.addr;
  cfg : config;
  mutable conn : Client.t option;
  mutable sid : int;
  mutable seq : int;  (* last seqno consumed *)
  mutable rng : int;
  mutable txn : txn_buf option;
  (* robustness telemetry *)
  mutable retries : int;
  mutable reconnects : int;
  mutable backoff_ns : float;
}

let retries t = t.retries
let reconnects t = t.reconnects
let backoff_ns t = t.backoff_ns
let session_id t = t.sid

let now () = Unix.gettimeofday ()

(* Private jitter stream (no dependence on the global RNG): a xorshift
   step folded to a float in [0, 1). *)
let rand_float t =
  let x = t.rng in
  let x = x lxor (x lsl 13) land max_int in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) land max_int in
  t.rng <- x;
  float_of_int ((x lsr 20) land 0xffffff) /. 16777216.0

let sleepf s = try Unix.sleepf s with Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* Exponential backoff with jitter in [0.5x, 1.5x], clamped to both the
   per-op deadline and the configured cap. *)
let backoff t ~tries ~deadline =
  let d =
    min t.cfg.backoff_max
      (t.cfg.backoff_base *. (2.0 ** float_of_int (min tries 16)))
  in
  let d = d *. (0.5 +. rand_float t) in
  let d = min d (deadline -. now ()) in
  if d > 0.0 then begin
    sleepf d;
    t.backoff_ns <- t.backoff_ns +. (d *. 1e9)
  end

let drop_conn t =
  match t.conn with
  | None -> ()
  | Some c ->
      Client.close c;
      t.conn <- None

(* One retry consumed: bump the counters, then fail the op if the budget
   or the deadline is gone. *)
let charge_retry t ~tries ~deadline =
  incr tries;
  t.retries <- t.retries + 1;
  if !tries > t.cfg.retry_budget then raise Retries_exhausted;
  if now () >= deadline then raise Timed_out

(* Establish (or re-establish) the connection and present the session id
   (0 = ask for a fresh one). Connection refused while the server is
   being restarted counts as a retry like everything else. *)
let rec ensure_conn t ~tries ~deadline =
  match t.conn with
  | Some c -> c
  | None -> (
      match
        let c = Client.connect t.addr in
        match
          Client.call ~deadline:(min deadline (now () +. t.cfg.attempt_timeout))
            c (Proto.Hello t.sid)
        with
        | { Proto.status = Proto.Ok; payload = Proto.Value granted; _ } ->
            t.sid <- int_of_string granted;
            t.conn <- Some c;
            c
        | _ ->
            Client.close c;
            failwith "Session: HELLO rejected"
        | exception e ->
            Client.close c;
            raise e
      with
      | c ->
          if t.retries > 0 || t.reconnects > 0 || t.seq > 0 then
            t.reconnects <- t.reconnects + 1;
          c
      | exception (Unix.Unix_error _ | End_of_file | Client.Timeout | Failure _)
        ->
          charge_retry t ~tries ~deadline;
          backoff t ~tries:!tries ~deadline;
          ensure_conn t ~tries ~deadline)

(* Run one request to a terminal reply: Busy and Shutting_down back off
   and retry (neither applied the op); timeout and connection loss
   reconnect and resend the same stamp (the server dedups). *)
let exec t ?seq op =
  let deadline = now () +. t.cfg.op_deadline in
  let tries = ref 0 in
  let rec go () =
    let c = ensure_conn t ~tries ~deadline in
    let sess = Option.map (fun q -> (t.sid, q)) seq in
    match
      Client.call ~deadline:(min deadline (now () +. t.cfg.attempt_timeout))
        ?sess c op
    with
    | { Proto.status = Proto.Busy; _ } ->
        charge_retry t ~tries ~deadline;
        backoff t ~tries:!tries ~deadline;
        go ()
    | { Proto.status = Proto.Shutting_down; _ } ->
        charge_retry t ~tries ~deadline;
        drop_conn t;
        backoff t ~tries:!tries ~deadline;
        go ()
    | r -> r
    | exception (Client.Timeout | End_of_file | Unix.Unix_error _) ->
        charge_retry t ~tries ~deadline;
        drop_conn t;
        backoff t ~tries:!tries ~deadline;
        go ()
  in
  go ()

let connect ?(config = default_config) addr =
  let t =
    {
      addr;
      cfg = config;
      conn = None;
      sid = 0;
      seq = 0;
      rng = config.seed lor 1;
      txn = None;
      retries = 0;
      reconnects = 0;
      backoff_ns = 0.0;
    }
  in
  let deadline = now () +. config.op_deadline in
  ignore (ensure_conn t ~tries:(ref 0) ~deadline : Client.t);
  t

let close t = drop_conn t

let next_seq t =
  t.seq <- t.seq + 1;
  t.seq

let fail_status what (r : Proto.reply) =
  failwith (Printf.sprintf "Session.%s: %s" what (Proto.status_name r.status))

(* --- reads (no stamp; idempotent, retried freely) ------------------- *)

let get t k =
  match exec t (Proto.Get k) with
  | { Proto.status = Proto.Ok; payload = Proto.Value v; _ } -> Some v
  | { Proto.status = Proto.Not_found; _ } -> None
  | r -> fail_status "get" r

let scan t ~start ~n =
  match exec t (Proto.Scan (start, n)) with
  | { Proto.status = Proto.Ok; payload = Proto.Pairs l; _ } -> l
  | r -> fail_status "scan" r

let stats t fmt =
  match exec t (Proto.Stats fmt) with
  | { Proto.status = Proto.Ok; payload = Proto.Text s; _ } -> s
  | r -> fail_status "stats" r

(* --- mutations (stamped; exactly-once via server dedup) ------------- *)

let put t k v =
  match exec t ~seq:(next_seq t) (Proto.Put (k, v)) with
  | { Proto.status = Proto.Ok; _ } -> ()
  | r -> fail_status "put" r

let delete t k =
  match exec t ~seq:(next_seq t) (Proto.Delete k) with
  | { Proto.status = Proto.Ok; _ } -> true
  | { Proto.status = Proto.Not_found; _ } -> false
  | r -> fail_status "delete" r

(* --- transactions (buffered client-side; see the header comment) ----- *)

let txn_active t = Option.is_some t.txn

let txn_begin t =
  if txn_active t then failwith "Session.txn_begin: transaction active";
  t.txn <- Some { writes = [] }

let txn_exn t what =
  match t.txn with
  | Some b -> b
  | None -> failwith ("Session." ^ what ^ ": no active transaction")

let txn_put t k v =
  let b = txn_exn t "txn_put" in
  b.writes <- Proto.Tw_put (k, v) :: b.writes

let txn_remove t k =
  let b = txn_exn t "txn_remove" in
  b.writes <- Proto.Tw_remove k :: b.writes

(* Read-your-writes against the local buffer (newest first). *)
let txn_get t k =
  let b = txn_exn t "txn_get" in
  let rec find = function
    | [] -> get t k
    | Proto.Tw_put (k', v) :: _ when k' = k -> Some v
    | Proto.Tw_remove k' :: _ when k' = k -> None
    | _ :: tl -> find tl
  in
  find b.writes

let txn_abort t =
  ignore (txn_exn t "txn_abort" : txn_buf);
  t.txn <- None

(* Play the whole conversation on one connection; any interruption —
   including Txn_state, which a duplicated frame can induce — replays it
   from TXN_BEGIN with the same commit stamp, which the server's commit
   dedup makes exactly-once. Only Bad_request (protocol damage no replay
   can reconstruct) is terminal -> Txn_lost. *)
let txn_commit t =
  let b = txn_exn t "txn_commit" in
  t.txn <- None;
  let writes = List.rev b.writes in
  let seq = next_seq t in
  let deadline = now () +. t.cfg.op_deadline in
  let tries = ref 0 in
  let interrupted () =
    charge_retry t ~tries ~deadline;
    drop_conn t;
    backoff t ~tries:!tries ~deadline
  in
  let rec go () =
    let c = ensure_conn t ~tries ~deadline in
    let attempt_dl () = min deadline (now () +. t.cfg.attempt_timeout) in
    let step what op ~sess =
      match Client.call ~deadline:(attempt_dl ()) ?sess c op with
      | { Proto.status = Proto.Ok; _ } -> `Done
      | { Proto.status = Proto.Busy | Proto.Shutting_down; _ } -> `Again
      | { Proto.status = Proto.Txn_state; _ } ->
          (* A duplicated frame can poison the server-side conversation
             (a dup TXN_COMMIT answers Txn_state from the reader, and
             that reply can overtake the real commit's barrier reply).
             The conversation is fully reconstructible from the local
             buffer, so this is an interruption, not a loss. *)
          `Again
      | { Proto.status = Proto.Bad_request; _ } -> raise Txn_lost
      | r -> fail_status what r
    in
    match
      let rec all = function
        | [] -> `Done
        | (what, op, sess) :: tl -> (
            match step what op ~sess with `Done -> all tl | `Again -> `Again)
      in
      all
        (("txn_begin", Proto.Txn_begin, None)
        :: List.map (fun w -> ("txn_write", Proto.Txn_write w, None)) writes
        @ [ ("txn_commit", Proto.Txn_commit, Some (t.sid, seq)) ])
    with
    | `Done -> ()
    | `Again ->
        (* Busy/draining mid-conversation: abandon this connection's
           half-built txn state and replay fresh. *)
        interrupted ();
        go ()
    | exception (Client.Timeout | End_of_file | Unix.Unix_error _) ->
        interrupted ();
        go ()
  in
  go ()
