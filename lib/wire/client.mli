(** Client side of the serving protocol: a blocking connection with both
    a synchronous call interface and a pipelined send/recv pair for
    keeping many requests in flight over one socket.

    Not thread-safe: one connection belongs to one caller. The pipelined
    interface returns replies in whatever order the server produced
    them; match them to requests by {!Proto.reply.id}. The synchronous
    {!call} stashes out-of-order replies internally, so the two styles
    can be mixed as long as every pipelined id is eventually received. *)

exception Timeout
(** Raised by {!recv} / {!call} when the absolute [deadline] passes
    before a complete reply arrives. The connection itself stays usable
    (any partial frame is kept buffered), but the reply for an in-flight
    request may still arrive later — retry layers that cannot tell
    whether the op applied must reconnect and rely on the server's
    session dedup (see {!Session}). *)

type addr = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> addr
(** Parse ["unix:/path/to.sock"] or ["tcp:host:port"]. Raises
    [Invalid_argument] on anything else. *)

val string_of_addr : addr -> string

type t

val connect : addr -> t
(** Raises [Unix.Unix_error] when the server is not there. *)

val close : t -> unit

(* --- pipelined interface ------------------------------------------- *)

val send : ?sess:int * int -> t -> Proto.op -> int
(** Write one request, return its id (assigned monotonically per
    connection). Does not wait for the reply. [sess] stamps the request
    with a [(session_id, seqno)] for server-side dedup. *)

val recv : ?deadline:float -> t -> Proto.reply
(** Next reply from the stash or the socket, any id. Raises
    [End_of_file] if the server closed the connection, {!Timeout} if
    [deadline] (absolute [Unix.gettimeofday] seconds) passes first. *)

val recv_opt : t -> Proto.reply option
(** Like {!recv} but never blocks: [None] when no complete reply is
    available right now (open-loop senders drain with this while pacing
    their arrivals). *)

val pending : t -> int
(** Requests sent but not yet returned by {!recv}/{!call}. *)

(* --- synchronous interface ----------------------------------------- *)

val call : ?deadline:float -> ?sess:int * int -> t -> Proto.op -> Proto.reply
(** Send one request and block for its reply, stashing any other
    replies that arrive first. [deadline] and [sess] as in {!recv} and
    {!send}. *)

(* Convenience wrappers over [call]; each raises [Failure] with the
   status name on any status other than the expected ones. *)

val get : t -> string -> string option
val put : t -> string -> string -> unit
val delete : t -> string -> bool
(** [false] when the key was absent. *)

val scan : t -> start:string -> n:int -> (string * string) list
val txn_begin : t -> unit
val txn_put : t -> string -> string -> unit
val txn_remove : t -> string -> unit
val txn_commit : t -> unit
val txn_abort : t -> unit
val stats : t -> Proto.stats_format -> string
