(** Fault-tolerant client session: a retrying, reconnecting wrapper over
    {!Client} that makes every logical operation exactly-once across
    server crashes and network faults (DESIGN.md §17).

    The session negotiates an id with a HELLO frame and stamps every
    mutation with a [(session_id, seqno)] pair; the server durably
    records each applied mutation under that pair {e before} acking, so
    any ambiguous outcome here (per-attempt timeout, connection loss) is
    resolved by reconnecting, re-presenting the session id, and
    resending the same stamp — the server answers a replay from the
    record instead of re-applying it. [Busy] and [Shutting_down] replies
    mean the op was not applied and simply back off and retry.

    Transactions are buffered client-side; {!txn_commit} plays the whole
    conversation (TXN_BEGIN, writes, stamped TXN_COMMIT) in one attempt
    and replays it wholesale on interruption, which the server's commit
    dedup keeps exactly-once.

    Not thread-safe: one session belongs to one caller. *)

exception Timed_out
(** The per-op wall-clock deadline ([config.op_deadline]) expired. *)

exception Retries_exhausted
(** The per-op retry budget ([config.retry_budget]) was consumed. *)

exception Txn_lost
(** A commit replay hit protocol damage no replay can reconstruct
    ([Bad_request] mid-conversation). [Txn_state] is {e not} terminal:
    the conversation is buffered locally and replays wholesale. The
    caller must assume the transaction did not commit only if the
    commit stamp was never acked. *)

type config = {
  op_deadline : float;  (** overall wall-clock budget per logical op, s *)
  attempt_timeout : float;  (** per-attempt reply timeout, s *)
  retry_budget : int;  (** retries per logical op beyond the first try *)
  backoff_base : float;  (** first backoff, s; doubles per retry *)
  backoff_max : float;  (** backoff cap, s *)
  seed : int;  (** private jitter stream *)
}

val default_config : config

type t

val connect : ?config:config -> Client.addr -> t
(** Connect and negotiate a fresh session id (retrying under the same
    policy as ops — the server may be mid-restart). *)

val close : t -> unit

val session_id : t -> int

(** {1 Operations} — each raises {!Timed_out} / {!Retries_exhausted}
    when its budget runs out, and [Failure] on unexpected statuses. *)

val get : t -> string -> string option
val put : t -> string -> string -> unit

val delete : t -> string -> bool
(** [false] when the key was absent. *)

val scan : t -> start:string -> n:int -> (string * string) list
val stats : t -> Proto.stats_format -> string

(** {1 Transactions} — buffered client-side until {!txn_commit}. *)

val txn_begin : t -> unit
val txn_active : t -> bool
val txn_put : t -> string -> string -> unit
val txn_remove : t -> string -> unit

val txn_get : t -> string -> string option
(** Read-your-writes against the local buffer, falling through to a
    remote {!get}. *)

val txn_abort : t -> unit
val txn_commit : t -> unit

(** {1 Robustness telemetry} — cumulative since [connect]. *)

val retries : t -> int
(** Attempts consumed beyond each op's first try (Busy bounces,
    timeouts, reconnect attempts included). *)

val reconnects : t -> int
(** Connections re-established after the initial one. *)

val backoff_ns : t -> float
(** Total wall time spent sleeping in backoff. *)
