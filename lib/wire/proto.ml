exception Malformed of string

let malformed fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

let max_frame = 1 lsl 20
let no_cause = 0xff

type txn_write = Tw_put of string * string | Tw_remove of string
type stats_format = Stats_json | Stats_prom

type op =
  | Get of string
  | Put of string * string
  | Delete of string
  | Scan of string * int
  | Txn_begin
  | Txn_write of txn_write
  | Txn_commit
  | Txn_abort
  | Stats of stats_format
  | Hello of int
      (* proposed session id (0 = assign a fresh one); the reply's Value
         payload is the decimal id the server actually granted *)

type status = Ok | Not_found | Busy | Bad_request | Txn_state | Shutting_down

let status_name = function
  | Ok -> "OK"
  | Not_found -> "NOT_FOUND"
  | Busy -> "BUSY"
  | Bad_request -> "BAD_REQUEST"
  | Txn_state -> "TXN_STATE"
  | Shutting_down -> "SHUTTING_DOWN"

type payload =
  | Unit
  | Value of string
  | Pairs of (string * string) list
  | Text of string

type request = {
  id : int;
  op : op;
  sess : (int * int) option;  (* (session_id, seqno) stamped on mutations *)
}

type reply = {
  id : int;
  status : status;
  queue_ns : float;
  cause : int;
  payload : payload;
}

(* ------------------------------------------------------------- writing *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u16 b v =
  put_u8 b (v lsr 8);
  put_u8 b v

let put_u32 b v =
  put_u8 b (v lsr 24);
  put_u8 b (v lsr 16);
  put_u8 b (v lsr 8);
  put_u8 b v

let put_i64 b v = Buffer.add_int64_be b (Int64.of_float v)
let put_u64 b v = Buffer.add_int64_be b (Int64.of_int v)

let put_str b s =
  if String.length s > 0xffff then
    malformed "string of %d bytes exceeds the u16 limit" (String.length s);
  put_u16 b (String.length s);
  Buffer.add_string b s

let put_text b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let opcode = function
  | Get _ -> 1
  | Put _ -> 2
  | Delete _ -> 3
  | Scan _ -> 4
  | Txn_begin -> 5
  | Txn_write _ -> 6
  | Txn_commit -> 7
  | Txn_abort -> 8
  | Stats _ -> 9
  | Hello _ -> 10

let status_code = function
  | Ok -> 0
  | Not_found -> 1
  | Busy -> 2
  | Bad_request -> 3
  | Txn_state -> 4
  | Shutting_down -> 5

let status_of_code = function
  | 0 -> Ok
  | 1 -> Not_found
  | 2 -> Busy
  | 3 -> Bad_request
  | 4 -> Txn_state
  | 5 -> Shutting_down
  | c -> malformed "unknown status code %d" c

let frame body =
  let n = Buffer.length body in
  if n > max_frame then malformed "frame of %d bytes exceeds max_frame" n;
  let b = Buffer.create (n + 4) in
  put_u32 b n;
  Buffer.add_buffer b body;
  Buffer.contents b

let frame_of_request { id; op; sess } =
  let b = Buffer.create 64 in
  put_u32 b id;
  put_u8 b (opcode op);
  (match op with
  | Get k | Delete k -> put_str b k
  | Put (k, v) ->
      put_str b k;
      put_str b v
  | Scan (start, n) ->
      put_str b start;
      put_u32 b n
  | Txn_begin | Txn_commit | Txn_abort -> ()
  | Txn_write (Tw_put (k, v)) ->
      put_u8 b 0;
      put_str b k;
      put_str b v
  | Txn_write (Tw_remove k) ->
      put_u8 b 1;
      put_str b k
  | Stats f -> put_u8 b (match f with Stats_json -> 0 | Stats_prom -> 1)
  | Hello sid -> put_u64 b sid);
  (* Uniform trailer on every request: 0 = no session stamp, 1 = an
     8-byte session id plus an 8-byte seqno follow. *)
  (match sess with
  | None -> put_u8 b 0
  | Some (sid, seq) ->
      put_u8 b 1;
      put_u64 b sid;
      put_u64 b seq);
  frame b

let frame_of_reply { id; status; queue_ns; cause; payload } =
  let b = Buffer.create 64 in
  put_u32 b id;
  put_u8 b (status_code status);
  put_i64 b queue_ns;
  put_u8 b cause;
  (match payload with
  | Unit -> put_u8 b 0
  | Value v ->
      put_u8 b 1;
      put_str b v
  | Pairs l ->
      put_u8 b 2;
      put_u32 b (List.length l);
      List.iter
        (fun (k, v) ->
          put_str b k;
          put_str b v)
        l
  | Text t ->
      put_u8 b 3;
      put_text b t);
  frame b

(* ------------------------------------------------------------- reading *)

type reader = { s : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.s then
    malformed "truncated payload: need %d bytes at offset %d of %d" n r.pos
      (String.length r.s)

let get_u8 r =
  need r 1;
  let v = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u16 r =
  let hi = get_u8 r in
  let lo = get_u8 r in
  (hi lsl 8) lor lo

let get_u32 r =
  let hi = get_u16 r in
  let lo = get_u16 r in
  (hi lsl 16) lor lo

let get_i64 r =
  need r 8;
  let v = String.get_int64_be r.s r.pos in
  r.pos <- r.pos + 8;
  Int64.to_float v

let get_u64 r =
  need r 8;
  let v = String.get_int64_be r.s r.pos in
  r.pos <- r.pos + 8;
  Int64.to_int v

let get_str r =
  let n = get_u16 r in
  need r n;
  let s = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  s

let get_text r =
  let n = get_u32 r in
  need r n;
  let s = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  s

let finish r what =
  if r.pos <> String.length r.s then
    malformed "%s carries %d trailing bytes" what (String.length r.s - r.pos)

let request_of_payload s =
  let r = { s; pos = 0 } in
  let id = get_u32 r in
  let op =
    match get_u8 r with
    | 1 -> Get (get_str r)
    | 2 ->
        let k = get_str r in
        Put (k, get_str r)
    | 3 -> Delete (get_str r)
    | 4 ->
        let start = get_str r in
        Scan (start, get_u32 r)
    | 5 -> Txn_begin
    | 6 -> (
        match get_u8 r with
        | 0 ->
            let k = get_str r in
            Txn_write (Tw_put (k, get_str r))
        | 1 -> Txn_write (Tw_remove (get_str r))
        | k -> malformed "unknown txn-write kind %d" k)
    | 7 -> Txn_commit
    | 8 -> Txn_abort
    | 9 -> (
        match get_u8 r with
        | 0 -> Stats Stats_json
        | 1 -> Stats Stats_prom
        | f -> malformed "unknown stats format %d" f)
    | 10 -> Hello (get_u64 r)
    | c -> malformed "unknown opcode %d" c
  in
  let sess =
    match get_u8 r with
    | 0 -> None
    | 1 ->
        let sid = get_u64 r in
        let seq = get_u64 r in
        Some (sid, seq)
    | f -> malformed "unknown session-trailer flag %d" f
  in
  finish r "request";
  { id; op; sess }

let reply_of_payload s =
  let r = { s; pos = 0 } in
  let id = get_u32 r in
  let status = status_of_code (get_u8 r) in
  let queue_ns = get_i64 r in
  let cause = get_u8 r in
  let payload =
    match get_u8 r with
    | 0 -> Unit
    | 1 -> Value (get_str r)
    | 2 ->
        let n = get_u32 r in
        (* Bound before allocating: each pair needs >= 4 header bytes. *)
        if n > (String.length s - r.pos) / 4 then
          malformed "pair count %d cannot fit the remaining payload" n;
        Pairs
          (List.init n (fun _ ->
               let k = get_str r in
               (k, get_str r)))
    | 3 -> Text (get_text r)
    | k -> malformed "unknown payload kind %d" k
  in
  finish r "reply";
  { id; status; queue_ns; cause; payload }

(* ------------------------------------------------------------- decoder *)

module Decoder = struct
  type t = {
    mutable buf : Bytes.t;
    mutable len : int;  (* valid bytes in [buf] *)
    max_frame : int;
  }

  let create ?max_frame:(mf = max_frame) () =
    { buf = Bytes.create 4096; len = 0; max_frame = mf }

  let feed t b pos n =
    if n < 0 || pos < 0 || pos + n > Bytes.length b then
      invalid_arg "Decoder.feed";
    if t.len + n > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf) in
      while t.len + n > !cap do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit t.buf 0 nb 0 t.len;
      t.buf <- nb
    end;
    Bytes.blit b pos t.buf t.len n;
    t.len <- t.len + n

  let buffered t = t.len

  let next t =
    if t.len < 4 then None
    else begin
      let declared =
        let g i = Char.code (Bytes.get t.buf i) in
        (g 0 lsl 24) lor (g 1 lsl 16) lor (g 2 lsl 8) lor g 3
      in
      if declared > t.max_frame then
        malformed "declared frame length %d exceeds the %d-byte cap" declared
          t.max_frame;
      if t.len < 4 + declared then None
      else begin
        let payload = Bytes.sub_string t.buf 4 declared in
        let rest = t.len - 4 - declared in
        Bytes.blit t.buf (4 + declared) t.buf 0 rest;
        t.len <- rest;
        Some payload
      end
    end
end
