exception Timeout

type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
      Unix_sock (String.sub s (i + 1) (String.length s - i - 1))
  | Some i when String.sub s 0 i = "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | Some j -> (
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          match (host, int_of_string_opt port) with
          | "", _ | _, None ->
              invalid_arg ("Client.addr_of_string: bad tcp address " ^ s)
          | host, Some port -> Tcp (host, port))
      | None -> invalid_arg ("Client.addr_of_string: tcp needs host:port " ^ s))
  | _ ->
      invalid_arg
        ("Client.addr_of_string: want unix:/path or tcp:host:port, got " ^ s)

let string_of_addr = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

type t = {
  fd : Unix.file_descr;
  dec : Proto.Decoder.t;
  rbuf : Bytes.t;
  stash : (int, Proto.reply) Hashtbl.t;
  mutable next_id : int;
  mutable in_flight : int;
}

let connect addr =
  let fd =
    match addr with
    | Unix_sock path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_UNIX path)
         with e -> Unix.close fd; raise e);
        fd
    | Tcp (host, port) ->
        let ip =
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_of_string host
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.setsockopt fd Unix.TCP_NODELAY true;
           Unix.connect fd (Unix.ADDR_INET (ip, port))
         with e -> Unix.close fd; raise e);
        fd
  in
  {
    fd;
    dec = Proto.Decoder.create ();
    rbuf = Bytes.create 65536;
    stash = Hashtbl.create 64;
    next_id = 0;
    in_flight = 0;
  }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* A signal delivered to the process (the CLI installs handlers) makes
   blocking syscalls fail with EINTR; always resume them. *)
let rec restart_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_eintr f

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let k = restart_eintr (fun () -> Unix.write fd b !off (n - !off)) in
    off := !off + k
  done

let send ?sess t op =
  let id = t.next_id in
  t.next_id <- (t.next_id + 1) land 0xffffffff;
  write_all t.fd (Proto.frame_of_request { Proto.id; op; sess });
  t.in_flight <- t.in_flight + 1;
  id

let pending t = t.in_flight + Hashtbl.length t.stash

(* Wait until [t.fd] is readable or [deadline] (absolute, wall clock)
   passes; raises [Timeout] on expiry. The decoder keeps any partial
   frame, so the connection stays usable after a timeout. *)
let wait_readable t deadline =
  let rec wait () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then raise Timeout;
    match restart_eintr (fun () -> Unix.select [ t.fd ] [] [] remaining) with
    | [], _, _ -> wait ()
    | _ -> ()
  in
  wait ()

let rec read_reply ?deadline t =
  match Proto.Decoder.next t.dec with
  | Some payload -> Proto.reply_of_payload payload
  | None ->
      (match deadline with None -> () | Some dl -> wait_readable t dl);
      let n =
        restart_eintr (fun () -> Unix.read t.fd t.rbuf 0 (Bytes.length t.rbuf))
      in
      if n = 0 then raise End_of_file;
      Proto.Decoder.feed t.dec t.rbuf 0 n;
      read_reply ?deadline t

(* Drain the stash first so call/recv interleavings never lose one. *)
let pop_stash t =
  let stashed =
    Hashtbl.fold (fun id r acc -> match acc with None -> Some (id, r) | s -> s)
      t.stash None
  in
  match stashed with
  | Some (id, r) ->
      Hashtbl.remove t.stash id;
      Some r
  | None -> None

let recv ?deadline t =
  match pop_stash t with
  | Some r -> r
  | None ->
      let r = read_reply ?deadline t in
      t.in_flight <- t.in_flight - 1;
      r

let recv_opt t =
  match pop_stash t with
  | Some r -> Some r
  | None -> (
      match Proto.Decoder.next t.dec with
      | Some payload ->
          t.in_flight <- t.in_flight - 1;
          Some (Proto.reply_of_payload payload)
      | None -> (
          match restart_eintr (fun () -> Unix.select [ t.fd ] [] [] 0.0) with
          | [], _, _ -> None
          | _ -> (
              let n = Unix.read t.fd t.rbuf 0 (Bytes.length t.rbuf) in
              if n = 0 then raise End_of_file;
              Proto.Decoder.feed t.dec t.rbuf 0 n;
              match Proto.Decoder.next t.dec with
              | Some payload ->
                  t.in_flight <- t.in_flight - 1;
                  Some (Proto.reply_of_payload payload)
              | None -> None)))

let call ?deadline ?sess t op =
  let id = send ?sess t op in
  match Hashtbl.find_opt t.stash id with
  | Some r ->
      Hashtbl.remove t.stash id;
      r
  | None ->
      let rec loop () =
        let r = read_reply ?deadline t in
        t.in_flight <- t.in_flight - 1;
        if r.Proto.id = id then r
        else begin
          Hashtbl.replace t.stash r.Proto.id r;
          loop ()
        end
      in
      loop ()

(* --- convenience wrappers ------------------------------------------ *)

let fail_status what (r : Proto.reply) =
  failwith (Printf.sprintf "%s: %s" what (Proto.status_name r.Proto.status))

let get t k =
  match call t (Proto.Get k) with
  | { Proto.status = Proto.Ok; payload = Proto.Value v; _ } -> Some v
  | { Proto.status = Proto.Not_found; _ } -> None
  | r -> fail_status "get" r

let put t k v =
  match call t (Proto.Put (k, v)) with
  | { Proto.status = Proto.Ok; _ } -> ()
  | r -> fail_status "put" r

let delete t k =
  match call t (Proto.Delete k) with
  | { Proto.status = Proto.Ok; _ } -> true
  | { Proto.status = Proto.Not_found; _ } -> false
  | r -> fail_status "delete" r

let scan t ~start ~n =
  match call t (Proto.Scan (start, n)) with
  | { Proto.status = Proto.Ok; payload = Proto.Pairs l; _ } -> l
  | r -> fail_status "scan" r

let unit_call what t op =
  match call t op with
  | { Proto.status = Proto.Ok; _ } -> ()
  | r -> fail_status what r

let txn_begin t = unit_call "txn_begin" t Proto.Txn_begin
let txn_put t k v = unit_call "txn_put" t (Proto.Txn_write (Proto.Tw_put (k, v)))
let txn_remove t k =
  unit_call "txn_remove" t (Proto.Txn_write (Proto.Tw_remove k))
let txn_commit t = unit_call "txn_commit" t Proto.Txn_commit
let txn_abort t = unit_call "txn_abort" t Proto.Txn_abort

let stats t fmt =
  match call t (Proto.Stats fmt) with
  | { Proto.status = Proto.Ok; payload = Proto.Text s; _ } -> s
  | r -> fail_status "stats" r
