(** The serving layer's wire protocol: length-prefixed binary frames
    carrying request-id-tagged commands and out-of-order replies.

    Frame layout (all integers big-endian):

    {v
    | u32 payload length | payload ... |
    v}

    Request payload:

    {v
    | u32 request id | u8 opcode | body | u8 sess flag [| u64 sid | u64 seq |] |
    v}

    Every request ends with a session trailer: flag 0 means no session
    stamp, flag 1 is followed by an 8-byte session id and an 8-byte
    seqno. Retry layers stamp mutations with a [(sid, seq)] negotiated
    via {!Hello} so the server can deduplicate a replayed request (see
    DESIGN.md Â§17).

    Reply payload:

    {v
    | u32 request id | u8 status | i64 queue_ns | u8 cause | u8 kind | body |
    v}

    [queue_ns] is the wall time the request spent parked in its shard
    queue before the shard domain picked it up (the [net_queue] stall);
    [cause] is the {!Obs.Stall.cause_index} of the dominant persistence
    stall overlapping the request's execution window on the shard's
    simulated clock, or {!no_cause} when none did. Together they are the
    evidence a remote client needs to attribute its own tail latency
    without a second round trip.

    Strings (keys, values) are [u16 len + bytes]; list counts and text
    blobs (STATS output) are [u32]. A declared frame length above
    {!max_frame} is rejected before any allocation, so a garbage header
    cannot balloon the decoder. *)

exception Malformed of string
(** Raised by every decoding function on input that violates the layout
    above. Carries a human-readable reason. *)

val max_frame : int
(** Hard cap on a frame's payload length (1 MiB). *)

val no_cause : int
(** The [cause] byte meaning "no stall overlapped" (0xff). *)

type txn_write = Tw_put of string * string | Tw_remove of string

type stats_format = Stats_json | Stats_prom

type op =
  | Get of string
  | Put of string * string
  | Delete of string
  | Scan of string * int  (** start key, max pairs *)
  | Txn_begin
  | Txn_write of txn_write
  | Txn_commit
  | Txn_abort
  | Stats of stats_format
  | Hello of int
      (** Session negotiation: propose a session id to resume (0 =
          assign a fresh one). The reply's [Value] payload is the
          decimal id the server granted. *)

type status =
  | Ok
  | Not_found  (** GET/DELETE on an absent key *)
  | Busy  (** shard queue full — backpressure, retry later *)
  | Bad_request  (** malformed or semantically invalid command *)
  | Txn_state  (** TXN_* command in the wrong transaction state *)
  | Shutting_down  (** server draining; no new work accepted *)

val status_name : status -> string

val status_code : status -> int
val status_of_code : int -> status
(** The on-wire status byte; the server also persists it inside session
    dedup records, so both directions are exposed. *)

type payload =
  | Unit
  | Value of string
  | Pairs of (string * string) list
  | Text of string

type request = {
  id : int;
  op : op;
  sess : (int * int) option;
      (** [(session_id, seqno)] stamped on mutations by retry layers *)
}

type reply = {
  id : int;
  status : status;
  queue_ns : float;  (** wall ns the request waited in its shard queue *)
  cause : int;  (** dominant stall cause index, or {!no_cause} *)
  payload : payload;
}

val frame_of_request : request -> string
(** Complete frame, length prefix included. Raises {!Malformed} if a key
    or value exceeds the u16 string limit. *)

val frame_of_reply : reply -> string

val request_of_payload : string -> request
(** Decode a frame payload (the bytes after the length prefix). Raises
    {!Malformed}. *)

val reply_of_payload : string -> reply

(** Incremental frame reassembly over a byte stream. *)
module Decoder : sig
  type t

  val create : ?max_frame:int -> unit -> t

  val feed : t -> bytes -> int -> int -> unit
  (** Append [len] bytes of [buf] starting at [pos]. *)

  val next : t -> string option
  (** Pop the next complete frame payload, or [None] if more bytes are
      needed. Raises {!Malformed} when the buffered header declares a
      length above the decoder's cap. *)

  val buffered : t -> int
  (** Bytes held waiting for a complete frame. *)
end
