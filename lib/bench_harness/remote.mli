(** Remote bench harness: drives an [incll_server] over the wire protocol
    with the same seeded YCSB streams as the in-process runner, open-loop
    with coordinated-omission-corrected wall latency.

    The measured phase sends each op at its intended arrival time
    (offered rate, never gated on replies) over one pipelined connection
    and records [recv - intended_arrival] per op, so an op stuck behind a
    server stall is charged its whole wait. Per-op attribution uses the
    evidence the reply carries: the shard-queue wait measured by the
    server ([queue_ns], the [net_queue] stall) and the dominant
    persistence-stall cause overlapping execution. Server-side per-cause
    stalled time over the measured window comes from diffing STATS
    snapshots taken before and after.

    Unlike the in-process runner, every number here is wall clock — host
    noise included. The serve gate therefore diffs the report against
    itself (schema/plumbing, attribution floor) rather than against a
    committed baseline. *)

type spike = {
  rsp_index : int;  (* position in the measured stream *)
  rsp_tag : char;  (* '\000' put, '\001' get, '\002' scan *)
  rsp_arrival_ns : float;  (* intended arrival, ns from phase start *)
  rsp_lat_ns : float;  (* CO-corrected wall latency *)
  rsp_queue_ns : float;  (* server shard-queue wait from the reply *)
  rsp_cause : Obs.Stall.cause option;
      (* dominant persistence stall the server reported, if any *)
}

type robust = {
  rb_ops : int;  (* probe mutations sent through [Wire.Session] *)
  rb_retries : int;  (* session retries consumed by the probe *)
  rb_reconnects : int;  (* session reconnects during the probe *)
  rb_backoff_ns : float;  (* wall time the probe spent backing off *)
  rb_dedup_hits : int;
      (* server dedup hits over the probe window; >= 1 by construction
         (the probe replays one duplicate stamp deliberately) *)
}
(** Fault-tolerance telemetry from the post-measurement robustness
    probe: a stamped mutation stream through {!Wire.Session} plus one
    deliberate duplicate-stamp replay that must be answered from the
    server's exactly-once dedup table. *)

type result = {
  ops : int;  (* measured ops completed *)
  busy : int;  (* measured ops bounced with BUSY (not applied) *)
  wall_s : float;  (* measured-phase wall time *)
  mops_wall : float;  (* completion rate over the measured phase *)
  calibrated_mops : float;  (* closed-loop capacity estimate *)
  arrival_rate : float;  (* offered rate actually used, ops/s *)
  latency_threshold_ns : float;
  latency : Obs.Histogram.t;  (* per-op CO-corrected wall ns *)
  over_threshold : int;
  attributed : (string * int) list;
      (* over-threshold ops per cause name, ["net_queue"] and ["none"]
         included, {!Obs.Stall.all_causes} order *)
  stall_totals : (string * (int * float)) list;
      (* server-side (count, total ns) per cause over the measured
         window, from the STATS diff *)
  spikes : spike list;  (* slowest ops first, at most 16 *)
  oracle_ok : bool option;  (* [None] when the oracle was not requested *)
  robust : robust;
}

val run :
  addr:Wire.Client.addr ->
  seed:int ->
  n:int ->
  mix:Workload.Ycsb.mix ->
  dist:Workload.Ycsb.dist ->
  nkeys:int ->
  ?arrival_rate:float ->
  (* offered ops per wall second; default 0.9 x calibrated capacity *)
  ?latency_threshold_ns:float ->
  ?oracle:Incll.System.config * int ->
  (* replay the same streams through an in-process [Store.Sharded] with
     this config and shard count and compare complete final states
     (BUSY-bounced mutations are skipped on both sides) *)
  unit ->
  result
(** Connect, populate [nkeys] keys (BUSY retried — population must be
    complete), calibrate closed-loop capacity on a disjoint seeded
    stream, then run the measured open-loop stream, the oracle check
    (when requested) and the robustness probe. Raises [Failure] on
    protocol errors, on oracle mismatch, and when the probe's duplicate
    stamp is not deduplicated. *)
