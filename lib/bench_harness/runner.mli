(** Benchmark runner: build a store, populate it, drive a YCSB stream with
    one domain per shard, and report throughput in both clocks.

    Throughput is primarily reported against the {e simulated} clock
    (ops / max-over-shards simulated seconds): it is derived purely from
    counted memory-system events priced by [Nvm.Config.cost_model], which
    is the quantity the paper's latency figures sweep and is immune to the
    simulator's own host-CPU overhead. Wall-clock throughput is reported
    alongside for reference. *)

type spike = {
  sp_shard : int;
  sp_index : int;  (** Position in the shard's encoded stream. *)
  sp_tag : char;  (** ['\000'] put, ['\001'] get, ['\002'] scan. *)
  sp_start_ns : float;
      (** Simulated start of the op's latency window: its intended
          arrival in open loop, its dispatch in closed loop. *)
  sp_lat_ns : float;  (** Simulated latency (CO-corrected in open loop). *)
  sp_wall_ns : float;  (** Wall service time, dispatch to completion. *)
  sp_stalls : Obs.Stall.entry list;
      (** Ledger entries overlapping the op's latency window — the
          evidence for the attribution. *)
}
(** One of the top-k slowest ops of a run, with its overlapping stalls. *)

type result = {
  ops : int;
  wall_s : float;
  sim_s : float;  (** Max over shards (parallel view). *)
  sim_total_s : float;  (** Summed over shards. *)
  mops_sim : float;
  mops_wall : float;
  nodes_logged : int;  (** External-log appends during the measured phase. *)
  sfences : int;
  clwbs : int;
  wbinvds : int;
  wbinvd_lines : int;
  writes : int;
  reads : int;
  epochs : int;  (** Checkpoints taken during the measured phase. *)
  incll_first_touches : int;
  incll_val_uses : int;
  metrics : Obs.Registry.t;
      (** Merged-over-shards registry delta for the measured phase:
          sfence/wbinvd latency histograms, epoch length and dirty-line
          distributions, external-log counters, the
          [incll_hit]/[incll_fallback] split (Figure 7's quantity), the
          per-op [op.latency_ns] / [op.latency_wall_ns] histograms, the
          [stall.<cause>_ns] histograms and the
          [latency.attributed.<cause>] counters. *)
  shard_metrics : Obs.Registry.t array;
      (** The same window delta, per shard — so a latency regression can
          be localized to one shard before blaming the workload. *)
  stalls : (string * Obs.Stall.t) list;
      (** Each shard's stall ledger (cleared at the start of the
          measured phase), labelled ["shard<i>"]. Feed to
          {!Obs.Perfetto.export} as the [stalls] tracks. *)
  spikes : spike list;
      (** Top-k slowest ops across all shards, slowest first. *)
  open_loop : bool;
  arrival_rate : float option;
      (** Offered load in ops per {e simulated} second (open loop). *)
  latency_threshold_ns : float;
      (** Attribution threshold the run used (simulated ns). *)
  traces : (string * Obs.Trace.t) list;
      (** Each shard's live event ring, labelled ["shard<i>"]. Empty
          rings unless the run was prepared with [~trace:true]. Feed to
          {!Obs.Perfetto.export} as the [tracks]. *)
  series : (string * Obs.Series.t) list;
      (** Each shard's time-series samplers, labelled
          ["shard<i>/<name>"] (e.g. ["shard0/epoch.dirty_lines"]). *)
}

val config_for :
  ?sfence_extra_ns:float ->
  ?epoch_len_ns:float ->
  ?val_incll:bool ->
  ?policy:Nvm.Config.policy ->
  nkeys_per_shard:int ->
  unit ->
  Incll.System.config
(** Size the region (Counting mode — throughput runs never crash) to the
    working set, leaving head-room for the external log and churn.
    [policy] selects the checkpoint scheduler (default
    [Nvm.Config.Throughput], the paper's fixed-period wbinvd). *)

val default_chunk : int
(** Default measured-loop batch size (4096 ops). *)

val default_latency_threshold_ns : float
(** Attribution threshold when none is given (50 µs simulated — well
    above a normal op, well below an epoch flush). *)

val run :
  ?seed:int ->
  ?threads:int ->
  ?ops_per_thread:int ->
  ?chunk:int ->
  ?config:Incll.System.config ->
  ?trace:bool ->
  ?arrival_rate:float ->
  ?latency_threshold_ns:float ->
  variant:Incll.System.variant ->
  mix:Workload.Ycsb.mix ->
  dist:Workload.Ycsb.dist ->
  nkeys:int ->
  unit ->
  result
(** Populate [nkeys] entries, checkpoint, then apply
    [threads * ops_per_thread] pre-generated operations with one domain
    per shard (ops are routed to the shard that owns their key, like the
    paper's shared-tree threads each operating on the whole key space).
    Statistics cover only the measured phase.

    The op stream is decoded into flat tag/key/value arrays at prepare
    time and applied in batches of [chunk] ops (default 4096): the hot
    loop dispatches on a byte tag with the shard handle hoisted, and each
    finished chunk's wall-clock throughput is sampled into the shard's
    ["bench.chunk_wall_mops"] series.

    Every op's latency is recorded on both clocks (see {!result.metrics});
    ops slower than [latency_threshold_ns] are attributed against the
    stall ledger.

    [arrival_rate] switches the run from the default closed loop (next op
    dispatches the instant the previous completes) to an {e open loop}:
    op [j] of the global pre-generated stream is scheduled to arrive at
    [j / arrival_rate] seconds on the simulated clock, a shard idles its
    clock forward when it is ahead of schedule, and each op's simulated
    latency is measured from its {e intended arrival} — the
    coordinated-omission correction, so queueing behind an epoch flush is
    charged to every op it delays, not just the one that met the flush.
    Simulated throughput then reports the offered rate whenever the store
    keeps up. Wall latency stays dispatch-to-completion in both modes (a
    wall-clock schedule would race the simulated one). *)

val run_latency_sweep :
  ?seed:int ->
  ?threads:int ->
  ?ops_per_thread:int ->
  ?chunk:int ->
  ?config:Incll.System.config ->
  ?trace:bool ->
  variant:Incll.System.variant ->
  mix:Workload.Ycsb.mix ->
  dist:Workload.Ycsb.dist ->
  nkeys:int ->
  latencies:float list ->
  unit ->
  (float * result) list
(** Populate once, then re-run the same pre-generated stream under each
    emulated NVM latency (Figures 3 and 8). The tree state carries over
    between points — the stream is update/read-only against a fixed key
    population, so each window measures the same logical work. *)

val apply_op : Incll.System.t -> Workload.Ycsb.op -> unit
