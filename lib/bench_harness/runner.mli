(** Benchmark runner: build a store, populate it, drive a YCSB stream with
    one domain per shard, and report throughput in both clocks.

    Throughput is primarily reported against the {e simulated} clock
    (ops / max-over-shards simulated seconds): it is derived purely from
    counted memory-system events priced by [Nvm.Config.cost_model], which
    is the quantity the paper's latency figures sweep and is immune to the
    simulator's own host-CPU overhead. Wall-clock throughput is reported
    alongside for reference. *)

type result = {
  ops : int;
  wall_s : float;
  sim_s : float;  (** Max over shards (parallel view). *)
  sim_total_s : float;  (** Summed over shards. *)
  mops_sim : float;
  mops_wall : float;
  nodes_logged : int;  (** External-log appends during the measured phase. *)
  sfences : int;
  clwbs : int;
  wbinvds : int;
  wbinvd_lines : int;
  writes : int;
  reads : int;
  epochs : int;  (** Checkpoints taken during the measured phase. *)
  incll_first_touches : int;
  incll_val_uses : int;
  metrics : Obs.Registry.t;
      (** Merged-over-shards registry delta for the measured phase:
          sfence/wbinvd latency histograms, epoch length and dirty-line
          distributions, external-log counters, and the
          [incll_hit]/[incll_fallback] split (Figure 7's quantity). *)
  traces : (string * Obs.Trace.t) list;
      (** Each shard's live event ring, labelled ["shard<i>"]. Empty
          rings unless the run was prepared with [~trace:true]. Feed to
          {!Obs.Perfetto.export} as the [tracks]. *)
  series : (string * Obs.Series.t) list;
      (** Each shard's time-series samplers, labelled
          ["shard<i>/<name>"] (e.g. ["shard0/epoch.dirty_lines"]). *)
}

val config_for :
  ?sfence_extra_ns:float ->
  ?epoch_len_ns:float ->
  ?val_incll:bool ->
  nkeys_per_shard:int ->
  unit ->
  Incll.System.config
(** Size the region (Counting mode — throughput runs never crash) to the
    working set, leaving head-room for the external log and churn. *)

val default_chunk : int
(** Default measured-loop batch size (4096 ops). *)

val run :
  ?seed:int ->
  ?threads:int ->
  ?ops_per_thread:int ->
  ?chunk:int ->
  ?config:Incll.System.config ->
  ?trace:bool ->
  variant:Incll.System.variant ->
  mix:Workload.Ycsb.mix ->
  dist:Workload.Ycsb.dist ->
  nkeys:int ->
  unit ->
  result
(** Populate [nkeys] entries, checkpoint, then apply
    [threads * ops_per_thread] pre-generated operations with one domain
    per shard (ops are routed to the shard that owns their key, like the
    paper's shared-tree threads each operating on the whole key space).
    Statistics cover only the measured phase.

    The op stream is decoded into flat tag/key/value arrays at prepare
    time and applied in batches of [chunk] ops (default 4096): the hot
    loop dispatches on a byte tag with the shard handle hoisted, and each
    finished chunk's wall-clock throughput is sampled into the shard's
    ["bench.chunk_wall_mops"] series. *)

val run_latency_sweep :
  ?seed:int ->
  ?threads:int ->
  ?ops_per_thread:int ->
  ?chunk:int ->
  ?config:Incll.System.config ->
  ?trace:bool ->
  variant:Incll.System.variant ->
  mix:Workload.Ycsb.mix ->
  dist:Workload.Ycsb.dist ->
  nkeys:int ->
  latencies:float list ->
  unit ->
  (float * result) list
(** Populate once, then re-run the same pre-generated stream under each
    emulated NVM latency (Figures 3 and 8). The tree state carries over
    between points — the stream is update/read-only against a fixed key
    population, so each window measures the same logical work. *)

val apply_op : Incll.System.t -> Workload.Ycsb.op -> unit
