module P = Wire.Proto
module C = Wire.Client
module S = Wire.Session
module Y = Workload.Ycsb
module O = Workload.Opstream

type spike = {
  rsp_index : int;
  rsp_tag : char;
  rsp_arrival_ns : float;
  rsp_lat_ns : float;
  rsp_queue_ns : float;
  rsp_cause : Obs.Stall.cause option;
}

type robust = {
  rb_ops : int;
  rb_retries : int;
  rb_reconnects : int;
  rb_backoff_ns : float;
  rb_dedup_hits : int;
}

type result = {
  ops : int;
  busy : int;
  wall_s : float;
  mops_wall : float;
  calibrated_mops : float;
  arrival_rate : float;
  latency_threshold_ns : float;
  latency : Obs.Histogram.t;
  over_threshold : int;
  attributed : (string * int) list;
  stall_totals : (string * (int * float)) list;
  spikes : spike list;
  oracle_ok : bool option;
  robust : robust;
}

let wire_op = function
  | Y.Put (k, v) -> P.Put (k, v)
  | Y.Get k -> P.Get k
  | Y.Scan (k, n) -> P.Scan (k, n)

let op_tag = function Y.Put _ -> '\000' | Y.Get _ -> '\001' | Y.Scan _ -> '\002'

(* The calibration stream must be disjoint from the measured stream's
   seed space or the two would be the same ops twice. *)
let calibration_seed seed = seed lxor 0x5eed

let pipeline_window = 256

(* --------------------------------------------------------- populate *)

(* Population must land completely (the oracle replays it verbatim), so
   BUSY here is retried — safe: one put per distinct key. *)
let populate c ~nkeys =
  let keys = Y.load_keys ~nkeys in
  let retry = ref [] in
  let note (r : P.reply) key =
    match r.P.status with
    | P.Ok -> ()
    | P.Busy -> retry := key :: !retry
    | s -> failwith ("populate: " ^ P.status_name s)
  in
  let inflight = Hashtbl.create pipeline_window in
  Array.iter
    (fun key ->
      if C.pending c >= pipeline_window then begin
        let r = C.recv c in
        note r (Hashtbl.find inflight r.P.id);
        Hashtbl.remove inflight r.P.id
      end;
      Hashtbl.replace inflight (C.send c (P.Put (key, Y.value_for key))) key)
    keys;
  while C.pending c > 0 do
    let r = C.recv c in
    note r (Hashtbl.find inflight r.P.id);
    Hashtbl.remove inflight r.P.id
  done;
  while !retry <> [] do
    let keys = !retry in
    retry := [];
    List.iter (fun key -> note (C.call c (P.Put (key, Y.value_for key))) key)
      keys
  done

(* --------------------------------------------------------- calibrate *)

(* Closed-loop capacity estimate: a bounded-window pipelined burst. The
   busy-bounced op indices are returned so the oracle can skip them. *)
let calibrate c ops =
  let n = Array.length ops in
  let busy = Array.make n false in
  let inflight = Hashtbl.create pipeline_window in
  let note (r : P.reply) =
    let i = Hashtbl.find inflight r.P.id in
    Hashtbl.remove inflight r.P.id;
    if r.P.status = P.Busy then busy.(i) <- true
  in
  let t0 = Unix.gettimeofday () in
  Array.iteri
    (fun i op ->
      if C.pending c >= pipeline_window then note (C.recv c);
      Hashtbl.replace inflight (C.send c (wire_op op)) i)
    ops;
  while C.pending c > 0 do
    note (C.recv c)
  done;
  let wall = Unix.gettimeofday () -. t0 in
  (float_of_int n /. wall, busy)

(* ------------------------------------------------- server stall diff *)

let stall_snapshot c =
  let json = Obs.Json.of_string (C.stats c P.Stats_json) in
  List.map
    (fun cause ->
      let name = "stall." ^ Obs.Stall.cause_name cause ^ "_ns" in
      let field f =
        match Obs.Json.find_path json [ "histograms"; name; f ] with
        | Some v -> Option.value ~default:0.0 (Obs.Json.to_float_opt v)
        | None -> 0.0
      in
      (Obs.Stall.cause_name cause, (field "count", field "sum")))
    Obs.Stall.all_causes

let stall_diff ~before ~after =
  List.map2
    (fun (name, (c0, s0)) (name', (c1, s1)) ->
      assert (name = name');
      (name, (int_of_float (c1 -. c0), s1 -. s0)))
    before after

(* ------------------------------------------------- robustness probe *)

let dedup_hits_snapshot c =
  let json = Obs.Json.of_string (C.stats c P.Stats_json) in
  match Obs.Json.find_path json [ "counters"; "server.dedup_hits" ] with
  | Some v -> int_of_float (Option.value ~default:0.0 (Obs.Json.to_float_opt v))
  | None -> 0

(* Exercise the fault-tolerant session layer against the live server:
   a short stamped mutation stream through [Wire.Session] (its telemetry
   lands in the report), then a deliberate duplicate-stamp replay that
   MUST be answered from the server's dedup table — proving exactly-once
   is armed on the serving path, not only under the chaos harness. Keys
   live in a reserved "rb!" prefix so the oracle's replayed state is
   untouched. *)
let robust_probe ~addr c =
  let before = dedup_hits_snapshot c in
  let nops = 64 in
  let s = S.connect addr in
  for i = 1 to nops do
    S.put s (Printf.sprintf "rb!k%d" (i mod 8)) (string_of_int i)
  done;
  let telemetry =
    (S.retries s, S.reconnects s, S.backoff_ns s)
  in
  S.close s;
  (* The deliberate replay: same (sid, seq) stamp sent twice. *)
  let raw = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close raw) @@ fun () ->
  let sid =
    match C.call raw (P.Hello 0) with
    | { P.status = P.Ok; payload = P.Value granted; _ } -> int_of_string granted
    | r -> failwith ("robust probe: HELLO " ^ P.status_name r.P.status)
  in
  let once () =
    match C.call ~sess:(sid, 1) raw (P.Put ("rb!dup", "v")) with
    | { P.status = P.Ok; _ } -> ()
    | r -> failwith ("robust probe: dup put " ^ P.status_name r.P.status)
  in
  once ();
  once ();
  let after = dedup_hits_snapshot c in
  if after - before < 1 then
    failwith "robust probe: duplicate stamp was not deduplicated";
  let retries, reconnects, backoff_ns = telemetry in
  {
    rb_ops = nops;
    rb_retries = retries;
    rb_reconnects = reconnects;
    rb_backoff_ns = backoff_ns;
    rb_dedup_hits = after - before;
  }

(* ----------------------------------------------------- measured phase *)

let spike_k = 16

let insert_spike buf s =
  let rec ins = function
    | [] -> [ s ]
    | x :: _ as l when s.rsp_lat_ns > x.rsp_lat_ns -> s :: l
    | x :: tl -> x :: ins tl
  in
  let rec take n = function
    | x :: tl when n > 0 -> x :: take (n - 1) tl
    | _ -> []
  in
  take spike_k (ins buf)

let run ~addr ~seed ~n ~mix ~dist ~nkeys ?arrival_rate ?(latency_threshold_ns = 50_000.0)
    ?oracle () =
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  populate c ~nkeys;
  let spec = { Y.mix; dist; nkeys } in
  let cal_ops =
    O.generate spec ~seed:(calibration_seed seed)
      ~n:(min n (max 1_000 (n / 4)))
  in
  let calibrated_rate, cal_busy = calibrate c cal_ops in
  let rate =
    match arrival_rate with Some r -> r | None -> 0.9 *. calibrated_rate
  in
  let interval = 1e9 /. rate in
  let ops = O.generate spec ~seed ~n in
  let before = stall_snapshot c in
  (* Open loop: send op [i] at wall time [i * interval] from phase start,
     never gating on replies; drain replies while waiting out the gap. *)
  let lat = Array.make n nan in
  let queue = Array.make n 0.0 in
  let cause = Array.make n P.no_cause in
  let busy = Array.make n false in
  let inflight = Hashtbl.create (min n 65536) in
  let completed = ref 0 in
  let t0 = Unix.gettimeofday () in
  let now_ns () = (Unix.gettimeofday () -. t0) *. 1e9 in
  let record (r : P.reply) tr =
    let i = Hashtbl.find inflight r.P.id in
    Hashtbl.remove inflight r.P.id;
    (match r.P.status with
    | P.Busy -> busy.(i) <- true
    | P.Ok | P.Not_found -> ()
    | s -> failwith ("measured op: " ^ P.status_name s));
    lat.(i) <- Float.max 0.0 (tr -. (float_of_int i *. interval));
    queue.(i) <- r.P.queue_ns;
    cause.(i) <- r.P.cause;
    incr completed
  in
  for i = 0 to n - 1 do
    let intended = float_of_int i *. interval in
    let rec pace () =
      if now_ns () < intended then begin
        (match C.recv_opt c with
        | Some r -> record r (now_ns ())
        | None -> if intended -. now_ns () > 2e5 then Unix.sleepf 1e-4);
        pace ()
      end
    in
    pace ();
    Hashtbl.replace inflight (C.send c (wire_op ops.(i))) i
  done;
  while !completed < n do
    record (C.recv c) (now_ns ())
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  let after = stall_snapshot c in
  (* Attribution: the queue wait measured by the server is the only wall
     component the reply quantifies; when it explains the excursion (or
     dominates the latency) the op is a net_queue casualty, otherwise
     blame falls to the persistence stall the server saw overlapping the
     op, if any. *)
  let hist = Obs.Histogram.create () in
  let attributed =
    List.map (fun cz -> (Obs.Stall.cause_name cz, ref 0)) Obs.Stall.all_causes
    @ [ ("none", ref 0) ]
  in
  let bump name = incr (List.assoc name attributed) in
  let over = ref 0 in
  let spikes = ref [] in
  for i = 0 to n - 1 do
    Obs.Histogram.record hist lat.(i);
    if lat.(i) > latency_threshold_ns then begin
      incr over;
      let q = queue.(i) in
      let server_cause = Obs.Stall.cause_of_index cause.(i) in
      (if q >= 0.5 *. lat.(i) || q >= lat.(i) -. latency_threshold_ns then
         bump "net_queue"
       else
         match server_cause with
         | Some cz -> bump (Obs.Stall.cause_name cz)
         | None -> if q > 0.0 then bump "net_queue" else bump "none");
      spikes :=
        insert_spike !spikes
          {
            rsp_index = i;
            rsp_tag = op_tag ops.(i);
            rsp_arrival_ns = float_of_int i *. interval;
            rsp_lat_ns = lat.(i);
            rsp_queue_ns = q;
            rsp_cause = server_cause;
          }
    end
  done;
  let oracle_ok =
    match oracle with
    | None -> None
    | Some (config, shards) ->
        let local = Store.Sharded.create ~config Incll.System.Incll ~shards in
        Array.iter
          (fun key -> Store.Sharded.put local ~key ~value:(Y.value_for key))
          (Y.load_keys ~nkeys);
        let replay stream skipped =
          Array.iteri
            (fun i op ->
              if not skipped.(i) then
                match op with
                | Y.Put (key, value) -> Store.Sharded.put local ~key ~value
                | Y.Get key -> ignore (Store.Sharded.get local ~key)
                | Y.Scan (start, n) ->
                    ignore (Store.Sharded.scan local ~start ~n))
            stream
        in
        replay cal_ops cal_busy;
        replay ops busy;
        (* Page the complete remote state and compare, key for key. *)
        let rec page start acc =
          match C.scan c ~start ~n:512 with
          | [] -> List.rev acc
          | pairs ->
              let last, _ = List.nth pairs (List.length pairs - 1) in
              page (last ^ "\x00") (List.rev_append pairs acc)
        in
        let remote = page "" [] in
        let expected =
          Store.Sharded.scan local ~start:""
            ~n:(Store.Sharded.cardinal local + 1)
        in
        if remote <> expected then
          failwith
            (Printf.sprintf
               "remote oracle mismatch: server has %d entries, in-process \
                replay has %d (or contents differ)"
               (List.length remote) (List.length expected));
        Some true
  in
  let robust = robust_probe ~addr c in
  let busy_n = Array.fold_left (fun a b -> if b then a + 1 else a) 0 busy in
  {
    ops = n;
    busy = busy_n;
    wall_s;
    mops_wall = float_of_int n /. wall_s /. 1e6;
    calibrated_mops = calibrated_rate /. 1e6;
    arrival_rate = rate;
    latency_threshold_ns;
    latency = hist;
    over_threshold = !over;
    attributed = List.map (fun (nm, r) -> (nm, !r)) attributed;
    stall_totals = stall_diff ~before ~after;
    spikes = !spikes;
    oracle_ok;
    robust;
  }
