type spike = {
  sp_shard : int;
  sp_index : int;  (* position in the shard's encoded stream *)
  sp_tag : char;  (* '\000' put, '\001' get, '\002' scan *)
  sp_start_ns : float;  (* intended arrival (open loop) / dispatch *)
  sp_lat_ns : float;  (* simulated latency, CO-corrected in open loop *)
  sp_wall_ns : float;  (* wall service time (dispatch -> completion) *)
  sp_stalls : Obs.Stall.entry list;  (* ledger entries overlapping the op *)
}

type result = {
  ops : int;
  wall_s : float;
  sim_s : float;
  sim_total_s : float;
  mops_sim : float;
  mops_wall : float;
  nodes_logged : int;
  sfences : int;
  clwbs : int;
  wbinvds : int;
  wbinvd_lines : int;
  writes : int;
  reads : int;
  epochs : int;
  incll_first_touches : int;
  incll_val_uses : int;
  metrics : Obs.Registry.t;
  shard_metrics : Obs.Registry.t array;
  stalls : (string * Obs.Stall.t) list;
  spikes : spike list;
  open_loop : bool;
  arrival_rate : float option;
  latency_threshold_ns : float;
  traces : (string * Obs.Trace.t) list;
  series : (string * Obs.Series.t) list;
}

let config_for ?(sfence_extra_ns = 0.0) ?(epoch_len_ns = 64.0e6)
    ?(val_incll = true) ?(policy = Nvm.Config.Throughput) ~nkeys_per_shard () =
  (* ~150 bytes of steady-state NVM per key (value chunk + amortised node),
     plus slack for epoch churn and the log. *)
  let heap = (nkeys_per_shard * 320) + (24 * 1024 * 1024) in
  let size = (heap + 4095) / 4096 * 4096 in
  let nvm =
    {
      Nvm.Config.default with
      Nvm.Config.size_bytes = size;
      extlog_bytes = 8 * 1024 * 1024;
      crash_support = Nvm.Config.Counting;
      cost =
        { Nvm.Config.default_cost_model with Nvm.Config.sfence_extra_ns };
    }
  in
  let nvm = Nvm.Config.with_policy nvm policy in
  { Incll.System.nvm; epoch_len_ns; val_incll }

(* The op-stream generation and struct-of-arrays encoding live in
   Workload.Opstream so the network client (Bench_harness.Remote, the
   server tests' differential oracle) shares one seeded generator with
   this in-process runner. *)
module O = Workload.Opstream

let apply_op = O.apply

type encoded = O.encoded = {
  tags : Bytes.t;
  keys : string array;
  values : string array;
  scan_ns : int array;
  arrivals : float array;
}

(* Top-k slowest ops, kept per shard as a short descending list. *)
let spike_k = 16

let insert_spike buf s =
  let rec ins = function
    | [] -> [ s ]
    | x :: _ as l when s.sp_lat_ns > x.sp_lat_ns -> s :: l
    | x :: tl -> x :: ins tl
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: tl -> x :: take (k - 1) tl
  in
  buf := take spike_k (ins !buf)

(* Apply [enc] in chunks of [chunk] ops. The shard handle, arrays and the
   stats record are all hoisted out of the inner loop; between chunks the
   wall-clock throughput of the finished chunk is offered to the shard's
   ["bench.chunk_wall_mops"] series (timestamped on the simulated clock,
   like every other series).

   Every op's latency is recorded on both clocks into the shard registry
   (["op.latency_ns"] simulated, ["op.latency_wall_ns"] wall). In open
   loop the simulated latency is measured from the op's {e intended
   arrival}, not its dispatch — the coordinated-omission correction: an
   op delayed behind an epoch flush is charged the queueing it actually
   suffered, and the shard's clock idles forward to the arrival when it
   is early. Ops slower than [threshold] are correlated against the
   shard's stall ledger and counted under
   ["latency.attributed.<cause>"] (or [".none"]); the top-k slowest are
   returned as spikes with their overlapping stalls. *)
let run_encoded sys ~shard enc ~chunk ~threshold =
  let region = Incll.System.region sys in
  let series = Nvm.Region.series region "bench.chunk_wall_mops" in
  let stats = Nvm.Region.stats region in
  let stalls = Nvm.Region.stalls region in
  let m = Nvm.Region.metrics region in
  let h_lat = Obs.Registry.histogram m "op.latency_ns" in
  let h_wall = Obs.Registry.histogram m "op.latency_wall_ns" in
  let c_over = Obs.Registry.counter m "latency.over_threshold" in
  let c_none = Obs.Registry.counter m "latency.attributed.none" in
  let attr =
    List.map
      (fun c ->
        ( c,
          Obs.Registry.counter m
            ("latency.attributed." ^ Obs.Stall.cause_name c) ))
      Obs.Stall.all_causes
  in
  let n = Array.length enc.keys in
  let tags = enc.tags and keys = enc.keys in
  let values = enc.values and scan_ns = enc.scan_ns in
  let arrivals = enc.arrivals in
  let open_loop = Array.length arrivals > 0 in
  let base_ns = Nvm.Stats.sim_ns stats in
  let spikes = ref [] in
  (* Start of the shard's current busy period: the last instant it was
     caught up with the arrival schedule. An open-loop op that queues
     behind a backlog inherits delay from stalls anywhere in the busy
     period — a flush that ended before the op even arrived still caused
     its wait — so attribution searches from here, not from the op's own
     arrival. Closed loop has no queue; its window is the op itself. *)
  let busy_start = ref base_ns in
  let pos = ref 0 in
  while !pos < n do
    let stop = min n (!pos + chunk) in
    let t0 = Unix.gettimeofday () in
    for i = !pos to stop - 1 do
      let t_disp = Nvm.Stats.sim_ns stats in
      let t_start =
        if open_loop then begin
          let a = base_ns +. Array.unsafe_get arrivals i in
          (* Early: idle the simulated clock up to the arrival. Late: the
             difference is queueing delay and stays in the latency. *)
          if t_disp < a then begin
            Nvm.Region.advance_clock region (a -. t_disp);
            busy_start := a
          end;
          a
        end
        else t_disp
      in
      let w0 = Unix.gettimeofday () in
      (match Bytes.unsafe_get tags i with
      | '\000' ->
          Incll.System.put sys ~key:(Array.unsafe_get keys i)
            ~value:(Array.unsafe_get values i)
      | '\001' ->
          ignore
            (Incll.System.get sys ~key:(Array.unsafe_get keys i)
              : string option)
      | _ ->
          ignore
            (Incll.System.scan sys
               ~start:(Array.unsafe_get keys i)
               ~n:(Array.unsafe_get scan_ns i)
              : (string * string) list));
      let w1 = Unix.gettimeofday () in
      let t_end = Nvm.Stats.sim_ns stats in
      let lat = t_end -. t_start in
      Obs.Histogram.record h_lat lat;
      Obs.Histogram.record h_wall ((w1 -. w0) *. 1e9);
      if lat > threshold then begin
        incr c_over;
        let a0 = if open_loop then Float.min !busy_start t_start else t_start in
        let over = Obs.Stall.overlapping stalls ~t0:a0 ~t1:t_end in
        (match Obs.Stall.dominant_cause over ~t0:a0 ~t1:t_end with
        | Some c -> incr (List.assoc c attr)
        | None -> incr c_none);
        insert_spike spikes
          {
            sp_shard = shard;
            sp_index = i;
            sp_tag = Bytes.unsafe_get tags i;
            sp_start_ns = t_start;
            sp_lat_ns = lat;
            sp_wall_ns = (w1 -. w0) *. 1e9;
            sp_stalls = over;
          }
      end
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt > 0.0 then
      Obs.Series.sample series ~ts_ns:(Nvm.Stats.sim_ns stats)
        ~value:(float_of_int (stop - !pos) /. dt /. 1e6);
    pos := stop
  done;
  !spikes

let in_domains jobs =
  match jobs with
  | [| job |] -> [| job () |]
  | _ ->
      let handles = Array.map (fun job -> Domain.spawn job) jobs in
      Array.map Domain.join handles

let snapshot_shard store i =
  Nvm.Stats.snapshot (Nvm.Region.stats (Incll.System.region (Store.Sharded.shard store i)))

let epochs_of store i =
  match Incll.System.epoch_manager (Store.Sharded.shard store i) with
  | Some em -> Epoch.Manager.epochs_elapsed em
  | None -> 0

let counters_of store i =
  match Incll.System.ctx (Store.Sharded.shard store i) with
  | Some c ->
      ( c.Incll.Ctx.counters.Incll.Ctx.first_touches,
        c.Incll.Ctx.counters.Incll.Ctx.val_incll_uses )
  | None -> (0, 0)

type prepared = {
  store : Store.Sharded.t;
  threads : int;
  chunk : int;
  shard_ops : encoded array;
  shard_op_count : int;
  arrival_rate : float option;
  latency_threshold_ns : float;
}

let default_chunk = 4096
let default_latency_threshold_ns = 50_000.0

let prepare ?(seed = 1) ?(threads = 1) ?(ops_per_thread = 100_000)
    ?(chunk = default_chunk) ?config ?(trace = false) ?arrival_rate
    ?(latency_threshold_ns = default_latency_threshold_ns) ~variant ~mix
    ~dist ~nkeys () =
  if chunk <= 0 then invalid_arg "Runner.prepare: chunk must be positive";
  (match arrival_rate with
  | Some r when r <= 0.0 ->
      invalid_arg "Runner.prepare: arrival rate must be positive"
  | _ -> ());
  let config =
    match config with
    | Some c -> c
    | None -> config_for ~nkeys_per_shard:((nkeys / threads) + 1) ()
  in
  let store = Store.Sharded.create ~config variant ~shards:threads in
  if trace then
    for i = 0 to threads - 1 do
      Obs.Trace.set_enabled
        (Nvm.Region.trace (Incll.System.region (Store.Sharded.shard store i)))
        true
    done;
  (* Populate in parallel: logical keys are scrambled, so striping them by
     shard keeps per-shard insertion order random. *)
  let keys = Workload.Ycsb.load_keys ~nkeys in
  let by_shard = Array.make threads [] in
  Array.iter
    (fun k ->
      let s = Store.Sharded.shard_of_key store k in
      by_shard.(s) <- k :: by_shard.(s))
    keys;
  ignore
    (in_domains
       (Array.init threads (fun i ->
            let sys = Store.Sharded.shard store i in
            fun () ->
              List.iter
                (fun key ->
                  Incll.System.put sys ~key
                    ~value:(Workload.Ycsb.value_for key))
                by_shard.(i))));
  (* Pre-generate the global stream and route ops to their shards. Open
     loop: op [j] of the global stream is scheduled to arrive at
     [j * interval] on the simulated clock, fixing the offered rate
     regardless of how the keys route across shards. *)
  let spec = { Workload.Ycsb.mix; dist; nkeys } in
  let stream = O.generate spec ~seed ~n:(threads * ops_per_thread) in
  let shard_ops =
    O.route stream ~nshards:threads
      ~shard_of_key:(Store.Sharded.shard_of_key store)
      ?interval_ns:(Option.map (fun r -> 1e9 /. r) arrival_rate)
      ()
  in
  let shard_op_count =
    Array.fold_left (fun a e -> a + Array.length e.keys) 0 shard_ops
  in
  { store; threads; chunk; shard_ops; shard_op_count; arrival_rate;
    latency_threshold_ns }

let measure
    {
      store;
      threads;
      chunk;
      shard_ops;
      shard_op_count;
      arrival_rate;
      latency_threshold_ns;
    } =
  (* Clean start: checkpoint, then snapshot. *)
  Store.Sharded.advance_epochs store;
  let regions =
    Array.init threads (fun i ->
        Incll.System.region (Store.Sharded.shard store i))
  in
  (* Fresh stall ledgers for the measured window (populate-phase stalls
     must not attract attributions), filtered so per-op fences cannot
     wrap the interesting entries out of the ring. *)
  Array.iter
    (fun r ->
      let s = Nvm.Region.stalls r in
      Obs.Stall.clear s;
      Obs.Stall.set_min_dur_ns s (latency_threshold_ns /. 4.0))
    regions;
  let metrics_before = Obs.Registry.snapshot (Store.Sharded.metrics store) in
  let shard_before =
    Array.map (fun r -> Obs.Registry.snapshot (Nvm.Region.metrics r)) regions
  in
  let before = Array.init threads (snapshot_shard store) in
  let epochs_before = Array.init threads (epochs_of store) in
  let counters_before = Array.init threads (counters_of store) in
  let logged_before =
    Array.init threads (fun i ->
        Incll.System.nodes_logged (Store.Sharded.shard store i))
  in
  let wall0 = Unix.gettimeofday () in
  let shard_spikes =
    in_domains
      (Array.init threads (fun i ->
           let sys = Store.Sharded.shard store i in
           let enc = shard_ops.(i) in
           fun () ->
             run_encoded sys ~shard:i enc ~chunk
               ~threshold:latency_threshold_ns))
  in
  let wall1 = Unix.gettimeofday () in
  let after = Array.init threads (snapshot_shard store) in
  let diff =
    Array.init threads (fun i ->
        Nvm.Stats.diff ~after:after.(i) ~before:before.(i))
  in
  let sum f = Array.fold_left (fun a d -> a + f d) 0 diff in
  let sim_s =
    Array.fold_left (fun a d -> Float.max a (Nvm.Stats.sim_ns d)) 0.0 diff /. 1e9
  in
  let sim_total_s =
    Array.fold_left (fun a d -> a +. Nvm.Stats.sim_ns d) 0.0 diff /. 1e9
  in
  let ops = shard_op_count in
  let wall_s = wall1 -. wall0 in
  let epochs =
    Array.fold_left ( + ) 0 (Array.init threads (epochs_of store))
    - Array.fold_left ( + ) 0 epochs_before
  in
  let ft, vu =
    let now = Array.init threads (counters_of store) in
    let f = ref 0 and v = ref 0 in
    for i = 0 to threads - 1 do
      let f1, v1 = now.(i) and f0, v0 = counters_before.(i) in
      f := !f + f1 - f0;
      v := !v + v1 - v0
    done;
    (!f, !v)
  in
  let nodes_logged =
    Array.fold_left ( + ) 0
      (Array.init threads (fun i ->
           Incll.System.nodes_logged (Store.Sharded.shard store i)
           - logged_before.(i)))
  in
  {
    ops;
    wall_s;
    sim_s;
    sim_total_s;
    mops_sim = (if sim_s > 0.0 then float_of_int ops /. sim_s /. 1e6 else 0.0);
    mops_wall =
      (if wall_s > 0.0 then float_of_int ops /. wall_s /. 1e6 else 0.0);
    nodes_logged;
    sfences = sum (fun d -> d.Nvm.Stats.sfence);
    clwbs = sum (fun d -> d.Nvm.Stats.clwb);
    wbinvds = sum (fun d -> d.Nvm.Stats.wbinvd);
    wbinvd_lines = sum (fun d -> d.Nvm.Stats.wbinvd_lines);
    writes = sum (fun d -> d.Nvm.Stats.writes);
    reads = sum (fun d -> d.Nvm.Stats.reads);
    epochs;
    incll_first_touches = ft;
    incll_val_uses = vu;
    metrics =
      Obs.Registry.diff
        ~after:(Store.Sharded.metrics store)
        ~before:metrics_before;
    shard_metrics =
      Array.mapi
        (fun i r ->
          Obs.Registry.diff ~after:(Nvm.Region.metrics r)
            ~before:shard_before.(i))
        regions;
    stalls =
      Array.to_list
        (Array.mapi
           (fun i r -> (Printf.sprintf "shard%d" i, Nvm.Region.stalls r))
           regions);
    spikes =
      (let all = Array.fold_left (fun a l -> a @ l) [] shard_spikes in
       let sorted =
         List.sort
           (fun a b ->
             match compare b.sp_lat_ns a.sp_lat_ns with
             | 0 -> compare (a.sp_shard, a.sp_index) (b.sp_shard, b.sp_index)
             | c -> c)
           all
       in
       List.filteri (fun i _ -> i < spike_k) sorted);
    open_loop = arrival_rate <> None;
    arrival_rate;
    latency_threshold_ns;
    traces =
      List.init threads (fun i ->
          ( Printf.sprintf "shard%d" i,
            Nvm.Region.trace (Incll.System.region (Store.Sharded.shard store i))
          ));
    series =
      List.concat
        (List.init threads (fun i ->
             let region =
               Incll.System.region (Store.Sharded.shard store i)
             in
             List.map
               (fun (name, s) -> (Printf.sprintf "shard%d/%s" i name, s))
               (Nvm.Region.all_series region)));
  }

let run ?seed ?threads ?ops_per_thread ?chunk ?config ?trace ?arrival_rate
    ?latency_threshold_ns ~variant ~mix ~dist ~nkeys () =
  measure
    (prepare ?seed ?threads ?ops_per_thread ?chunk ?config ?trace
       ?arrival_rate ?latency_threshold_ns ~variant ~mix ~dist ~nkeys ())

let run_latency_sweep ?seed ?threads ?ops_per_thread ?chunk ?config ?trace
    ~variant ~mix ~dist ~nkeys ~latencies () =
  let p =
    prepare ?seed ?threads ?ops_per_thread ?chunk ?config ?trace ~variant ~mix
      ~dist ~nkeys ()
  in
  List.map
    (fun lat ->
      for i = 0 to p.threads - 1 do
        Nvm.Region.set_sfence_extra_ns
          (Incll.System.region (Store.Sharded.shard p.store i))
          lat
      done;
      (lat, measure p))
    latencies
