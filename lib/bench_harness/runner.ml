type result = {
  ops : int;
  wall_s : float;
  sim_s : float;
  sim_total_s : float;
  mops_sim : float;
  mops_wall : float;
  nodes_logged : int;
  sfences : int;
  clwbs : int;
  wbinvds : int;
  wbinvd_lines : int;
  writes : int;
  reads : int;
  epochs : int;
  incll_first_touches : int;
  incll_val_uses : int;
  metrics : Obs.Registry.t;
  traces : (string * Obs.Trace.t) list;
  series : (string * Obs.Series.t) list;
}

let config_for ?(sfence_extra_ns = 0.0) ?(epoch_len_ns = 64.0e6)
    ?(val_incll = true) ~nkeys_per_shard () =
  (* ~150 bytes of steady-state NVM per key (value chunk + amortised node),
     plus slack for epoch churn and the log. *)
  let heap = (nkeys_per_shard * 320) + (24 * 1024 * 1024) in
  let size = (heap + 4095) / 4096 * 4096 in
  let nvm =
    {
      Nvm.Config.default with
      Nvm.Config.size_bytes = size;
      extlog_bytes = 8 * 1024 * 1024;
      crash_support = Nvm.Config.Counting;
      cost =
        { Nvm.Config.default_cost_model with Nvm.Config.sfence_extra_ns };
    }
  in
  { Incll.System.nvm; epoch_len_ns; val_incll }

let apply_op sys op =
  match op with
  | Workload.Ycsb.Put (key, value) -> Incll.System.put sys ~key ~value
  | Workload.Ycsb.Get key -> ignore (Incll.System.get sys ~key : string option)
  | Workload.Ycsb.Scan (start, n) ->
      ignore (Incll.System.scan sys ~start ~n : (string * string) list)

(* Struct-of-arrays encoding of a shard's op stream, decoded from the
   variant form once, at prepare time. The measured loop then dispatches
   on a byte tag and indexes flat arrays — no per-op closure application
   and no variant traversal on the hot path. *)
type encoded = {
  tags : Bytes.t;  (* '\000' put, '\001' get, '\002' scan *)
  keys : string array;
  values : string array;  (* put payload; "" for get/scan *)
  scan_ns : int array;  (* scan length; 0 for put/get *)
}

let encode ops =
  let n = Array.length ops in
  let enc =
    {
      tags = Bytes.create n;
      keys = Array.make n "";
      values = Array.make n "";
      scan_ns = Array.make n 0;
    }
  in
  Array.iteri
    (fun i op ->
      match op with
      | Workload.Ycsb.Put (key, value) ->
          Bytes.unsafe_set enc.tags i '\000';
          enc.keys.(i) <- key;
          enc.values.(i) <- value
      | Workload.Ycsb.Get key ->
          Bytes.unsafe_set enc.tags i '\001';
          enc.keys.(i) <- key
      | Workload.Ycsb.Scan (start, sn) ->
          Bytes.unsafe_set enc.tags i '\002';
          enc.keys.(i) <- start;
          enc.scan_ns.(i) <- sn)
    ops;
  enc

(* Apply [enc] in chunks of [chunk] ops. The shard handle, arrays and the
   stats record are all hoisted out of the inner loop; between chunks the
   wall-clock throughput of the finished chunk is offered to the shard's
   ["bench.chunk_wall_mops"] series (timestamped on the simulated clock,
   like every other series). *)
let run_encoded sys enc ~chunk =
  let region = Incll.System.region sys in
  let series = Nvm.Region.series region "bench.chunk_wall_mops" in
  let stats = Nvm.Region.stats region in
  let n = Array.length enc.keys in
  let tags = enc.tags and keys = enc.keys in
  let values = enc.values and scan_ns = enc.scan_ns in
  let pos = ref 0 in
  while !pos < n do
    let stop = min n (!pos + chunk) in
    let t0 = Unix.gettimeofday () in
    for i = !pos to stop - 1 do
      match Bytes.unsafe_get tags i with
      | '\000' ->
          Incll.System.put sys ~key:(Array.unsafe_get keys i)
            ~value:(Array.unsafe_get values i)
      | '\001' ->
          ignore
            (Incll.System.get sys ~key:(Array.unsafe_get keys i)
              : string option)
      | _ ->
          ignore
            (Incll.System.scan sys
               ~start:(Array.unsafe_get keys i)
               ~n:(Array.unsafe_get scan_ns i)
              : (string * string) list)
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt > 0.0 then
      Obs.Series.sample series ~ts_ns:(Nvm.Stats.sim_ns stats)
        ~value:(float_of_int (stop - !pos) /. dt /. 1e6);
    pos := stop
  done

let in_domains jobs =
  match jobs with
  | [| job |] -> [| job () |]
  | _ ->
      let handles = Array.map (fun job -> Domain.spawn job) jobs in
      Array.map Domain.join handles

let snapshot_shard store i =
  Nvm.Stats.snapshot (Nvm.Region.stats (Incll.System.region (Store.Sharded.shard store i)))

let epochs_of store i =
  match Incll.System.epoch_manager (Store.Sharded.shard store i) with
  | Some em -> Epoch.Manager.epochs_elapsed em
  | None -> 0

let counters_of store i =
  match Incll.System.ctx (Store.Sharded.shard store i) with
  | Some c ->
      ( c.Incll.Ctx.counters.Incll.Ctx.first_touches,
        c.Incll.Ctx.counters.Incll.Ctx.val_incll_uses )
  | None -> (0, 0)

type prepared = {
  store : Store.Sharded.t;
  threads : int;
  chunk : int;
  shard_ops : encoded array;
  shard_op_count : int;
}

let default_chunk = 4096

let prepare ?(seed = 1) ?(threads = 1) ?(ops_per_thread = 100_000)
    ?(chunk = default_chunk) ?config ?(trace = false) ~variant ~mix ~dist
    ~nkeys () =
  if chunk <= 0 then invalid_arg "Runner.prepare: chunk must be positive";
  let config =
    match config with
    | Some c -> c
    | None -> config_for ~nkeys_per_shard:((nkeys / threads) + 1) ()
  in
  let store = Store.Sharded.create ~config variant ~shards:threads in
  if trace then
    for i = 0 to threads - 1 do
      Obs.Trace.set_enabled
        (Nvm.Region.trace (Incll.System.region (Store.Sharded.shard store i)))
        true
    done;
  (* Populate in parallel: logical keys are scrambled, so striping them by
     shard keeps per-shard insertion order random. *)
  let keys = Workload.Ycsb.load_keys ~nkeys in
  let by_shard = Array.make threads [] in
  Array.iter
    (fun k ->
      let s = Store.Sharded.shard_of_key store k in
      by_shard.(s) <- k :: by_shard.(s))
    keys;
  ignore
    (in_domains
       (Array.init threads (fun i ->
            let sys = Store.Sharded.shard store i in
            fun () ->
              List.iter
                (fun key ->
                  Incll.System.put sys ~key
                    ~value:(Workload.Ycsb.value_for key))
                by_shard.(i))));
  (* Pre-generate the global stream and route ops to their shards. *)
  let rng = Util.Rng.create ~seed in
  let spec = { Workload.Ycsb.mix; dist; nkeys } in
  let stream = Workload.Ycsb.generate spec rng ~n:(threads * ops_per_thread) in
  let ops_by_shard = Array.make threads [] in
  Array.iter
    (fun op ->
      let key =
        match op with
        | Workload.Ycsb.Put (k, _) | Workload.Ycsb.Get k
        | Workload.Ycsb.Scan (k, _) ->
            k
      in
      let s = Store.Sharded.shard_of_key store key in
      ops_by_shard.(s) <- op :: ops_by_shard.(s))
    stream;
  let shard_ops =
    Array.map (fun l -> encode (Array.of_list (List.rev l))) ops_by_shard
  in
  let shard_op_count =
    Array.fold_left (fun a e -> a + Array.length e.keys) 0 shard_ops
  in
  { store; threads; chunk; shard_ops; shard_op_count }

let measure { store; threads; chunk; shard_ops; shard_op_count } =
  (* Clean start: checkpoint, then snapshot. *)
  Store.Sharded.advance_epochs store;
  let metrics_before = Obs.Registry.snapshot (Store.Sharded.metrics store) in
  let before = Array.init threads (snapshot_shard store) in
  let epochs_before = Array.init threads (epochs_of store) in
  let counters_before = Array.init threads (counters_of store) in
  let logged_before =
    Array.init threads (fun i ->
        Incll.System.nodes_logged (Store.Sharded.shard store i))
  in
  let wall0 = Unix.gettimeofday () in
  ignore
    (in_domains
       (Array.init threads (fun i ->
            let sys = Store.Sharded.shard store i in
            let enc = shard_ops.(i) in
            fun () -> run_encoded sys enc ~chunk)));
  let wall1 = Unix.gettimeofday () in
  let after = Array.init threads (snapshot_shard store) in
  let diff =
    Array.init threads (fun i ->
        Nvm.Stats.diff ~after:after.(i) ~before:before.(i))
  in
  let sum f = Array.fold_left (fun a d -> a + f d) 0 diff in
  let sim_s =
    Array.fold_left (fun a d -> Float.max a (Nvm.Stats.sim_ns d)) 0.0 diff /. 1e9
  in
  let sim_total_s =
    Array.fold_left (fun a d -> a +. Nvm.Stats.sim_ns d) 0.0 diff /. 1e9
  in
  let ops = shard_op_count in
  let wall_s = wall1 -. wall0 in
  let epochs =
    Array.fold_left ( + ) 0 (Array.init threads (epochs_of store))
    - Array.fold_left ( + ) 0 epochs_before
  in
  let ft, vu =
    let now = Array.init threads (counters_of store) in
    let f = ref 0 and v = ref 0 in
    for i = 0 to threads - 1 do
      let f1, v1 = now.(i) and f0, v0 = counters_before.(i) in
      f := !f + f1 - f0;
      v := !v + v1 - v0
    done;
    (!f, !v)
  in
  let nodes_logged =
    Array.fold_left ( + ) 0
      (Array.init threads (fun i ->
           Incll.System.nodes_logged (Store.Sharded.shard store i)
           - logged_before.(i)))
  in
  {
    ops;
    wall_s;
    sim_s;
    sim_total_s;
    mops_sim = (if sim_s > 0.0 then float_of_int ops /. sim_s /. 1e6 else 0.0);
    mops_wall =
      (if wall_s > 0.0 then float_of_int ops /. wall_s /. 1e6 else 0.0);
    nodes_logged;
    sfences = sum (fun d -> d.Nvm.Stats.sfence);
    clwbs = sum (fun d -> d.Nvm.Stats.clwb);
    wbinvds = sum (fun d -> d.Nvm.Stats.wbinvd);
    wbinvd_lines = sum (fun d -> d.Nvm.Stats.wbinvd_lines);
    writes = sum (fun d -> d.Nvm.Stats.writes);
    reads = sum (fun d -> d.Nvm.Stats.reads);
    epochs;
    incll_first_touches = ft;
    incll_val_uses = vu;
    metrics =
      Obs.Registry.diff
        ~after:(Store.Sharded.metrics store)
        ~before:metrics_before;
    traces =
      List.init threads (fun i ->
          ( Printf.sprintf "shard%d" i,
            Nvm.Region.trace (Incll.System.region (Store.Sharded.shard store i))
          ));
    series =
      List.concat
        (List.init threads (fun i ->
             let region =
               Incll.System.region (Store.Sharded.shard store i)
             in
             List.map
               (fun (name, s) -> (Printf.sprintf "shard%d/%s" i name, s))
               (Nvm.Region.all_series region)));
  }

let run ?seed ?threads ?ops_per_thread ?chunk ?config ?trace ~variant ~mix
    ~dist ~nkeys () =
  measure
    (prepare ?seed ?threads ?ops_per_thread ?chunk ?config ?trace ~variant
       ~mix ~dist ~nkeys ())

let run_latency_sweep ?seed ?threads ?ops_per_thread ?chunk ?config ?trace
    ~variant ~mix ~dist ~nkeys ~latencies () =
  let p =
    prepare ?seed ?threads ?ops_per_thread ?chunk ?config ?trace ~variant ~mix
      ~dist ~nkeys ()
  in
  List.map
    (fun lat ->
      for i = 0 to p.threads - 1 do
        Nvm.Region.set_sfence_extra_ns
          (Incll.System.region (Store.Sharded.shard p.store i))
          lat
      done;
      (lat, measure p))
    latencies
