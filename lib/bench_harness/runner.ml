type result = {
  ops : int;
  wall_s : float;
  sim_s : float;
  sim_total_s : float;
  mops_sim : float;
  mops_wall : float;
  nodes_logged : int;
  sfences : int;
  clwbs : int;
  wbinvds : int;
  wbinvd_lines : int;
  writes : int;
  reads : int;
  epochs : int;
  incll_first_touches : int;
  incll_val_uses : int;
  metrics : Obs.Registry.t;
  traces : (string * Obs.Trace.t) list;
  series : (string * Obs.Series.t) list;
}

let config_for ?(sfence_extra_ns = 0.0) ?(epoch_len_ns = 64.0e6)
    ?(val_incll = true) ~nkeys_per_shard () =
  (* ~150 bytes of steady-state NVM per key (value chunk + amortised node),
     plus slack for epoch churn and the log. *)
  let heap = (nkeys_per_shard * 320) + (24 * 1024 * 1024) in
  let size = (heap + 4095) / 4096 * 4096 in
  let nvm =
    {
      Nvm.Config.default with
      Nvm.Config.size_bytes = size;
      extlog_bytes = 8 * 1024 * 1024;
      crash_support = Nvm.Config.Counting;
      cost =
        { Nvm.Config.default_cost_model with Nvm.Config.sfence_extra_ns };
    }
  in
  { Incll.System.nvm; epoch_len_ns; val_incll }

let apply_op sys op =
  match op with
  | Workload.Ycsb.Put (key, value) -> Incll.System.put sys ~key ~value
  | Workload.Ycsb.Get key -> ignore (Incll.System.get sys ~key : string option)
  | Workload.Ycsb.Scan (start, n) ->
      ignore (Incll.System.scan sys ~start ~n : (string * string) list)

let in_domains jobs =
  match jobs with
  | [| job |] -> [| job () |]
  | _ ->
      let handles = Array.map (fun job -> Domain.spawn job) jobs in
      Array.map Domain.join handles

let snapshot_shard store i =
  Nvm.Stats.snapshot (Nvm.Region.stats (Incll.System.region (Store.Sharded.shard store i)))

let epochs_of store i =
  match Incll.System.epoch_manager (Store.Sharded.shard store i) with
  | Some em -> Epoch.Manager.epochs_elapsed em
  | None -> 0

let counters_of store i =
  match Incll.System.ctx (Store.Sharded.shard store i) with
  | Some c ->
      ( c.Incll.Ctx.counters.Incll.Ctx.first_touches,
        c.Incll.Ctx.counters.Incll.Ctx.val_incll_uses )
  | None -> (0, 0)

type prepared = {
  store : Store.Sharded.t;
  threads : int;
  shard_ops : Workload.Ycsb.op array array;
}

let prepare ?(seed = 1) ?(threads = 1) ?(ops_per_thread = 100_000) ?config
    ?(trace = false) ~variant ~mix ~dist ~nkeys () =
  let config =
    match config with
    | Some c -> c
    | None -> config_for ~nkeys_per_shard:((nkeys / threads) + 1) ()
  in
  let store = Store.Sharded.create ~config variant ~shards:threads in
  if trace then
    for i = 0 to threads - 1 do
      Obs.Trace.set_enabled
        (Nvm.Region.trace (Incll.System.region (Store.Sharded.shard store i)))
        true
    done;
  (* Populate in parallel: logical keys are scrambled, so striping them by
     shard keeps per-shard insertion order random. *)
  let keys = Workload.Ycsb.load_keys ~nkeys in
  let by_shard = Array.make threads [] in
  Array.iter
    (fun k ->
      let s = Store.Sharded.shard_of_key store k in
      by_shard.(s) <- k :: by_shard.(s))
    keys;
  ignore
    (in_domains
       (Array.init threads (fun i ->
            let sys = Store.Sharded.shard store i in
            fun () ->
              List.iter
                (fun key ->
                  Incll.System.put sys ~key
                    ~value:(Workload.Ycsb.value_for key))
                by_shard.(i))));
  (* Pre-generate the global stream and route ops to their shards. *)
  let rng = Util.Rng.create ~seed in
  let spec = { Workload.Ycsb.mix; dist; nkeys } in
  let stream = Workload.Ycsb.generate spec rng ~n:(threads * ops_per_thread) in
  let ops_by_shard = Array.make threads [] in
  Array.iter
    (fun op ->
      let key =
        match op with
        | Workload.Ycsb.Put (k, _) | Workload.Ycsb.Get k
        | Workload.Ycsb.Scan (k, _) ->
            k
      in
      let s = Store.Sharded.shard_of_key store key in
      ops_by_shard.(s) <- op :: ops_by_shard.(s))
    stream;
  let shard_ops = Array.map (fun l -> Array.of_list (List.rev l)) ops_by_shard in
  { store; threads; shard_ops }

let measure { store; threads; shard_ops } =
  (* Clean start: checkpoint, then snapshot. *)
  Store.Sharded.advance_epochs store;
  let metrics_before = Obs.Registry.snapshot (Store.Sharded.metrics store) in
  let before = Array.init threads (snapshot_shard store) in
  let epochs_before = Array.init threads (epochs_of store) in
  let counters_before = Array.init threads (counters_of store) in
  let logged_before =
    Array.init threads (fun i ->
        Incll.System.nodes_logged (Store.Sharded.shard store i))
  in
  let wall0 = Unix.gettimeofday () in
  ignore
    (in_domains
       (Array.init threads (fun i ->
            let sys = Store.Sharded.shard store i in
            let ops = shard_ops.(i) in
            fun () -> Array.iter (apply_op sys) ops)));
  let wall1 = Unix.gettimeofday () in
  let after = Array.init threads (snapshot_shard store) in
  let diff =
    Array.init threads (fun i ->
        Nvm.Stats.diff ~after:after.(i) ~before:before.(i))
  in
  let sum f = Array.fold_left (fun a d -> a + f d) 0 diff in
  let sim_s =
    Array.fold_left (fun a d -> Float.max a d.Nvm.Stats.sim_ns) 0.0 diff /. 1e9
  in
  let sim_total_s =
    Array.fold_left (fun a d -> a +. d.Nvm.Stats.sim_ns) 0.0 diff /. 1e9
  in
  let ops = Array.fold_left (fun a o -> a + Array.length o) 0 shard_ops in
  let wall_s = wall1 -. wall0 in
  let epochs =
    Array.fold_left ( + ) 0 (Array.init threads (epochs_of store))
    - Array.fold_left ( + ) 0 epochs_before
  in
  let ft, vu =
    let now = Array.init threads (counters_of store) in
    let f = ref 0 and v = ref 0 in
    for i = 0 to threads - 1 do
      let f1, v1 = now.(i) and f0, v0 = counters_before.(i) in
      f := !f + f1 - f0;
      v := !v + v1 - v0
    done;
    (!f, !v)
  in
  let nodes_logged =
    Array.fold_left ( + ) 0
      (Array.init threads (fun i ->
           Incll.System.nodes_logged (Store.Sharded.shard store i)
           - logged_before.(i)))
  in
  {
    ops;
    wall_s;
    sim_s;
    sim_total_s;
    mops_sim = (if sim_s > 0.0 then float_of_int ops /. sim_s /. 1e6 else 0.0);
    mops_wall =
      (if wall_s > 0.0 then float_of_int ops /. wall_s /. 1e6 else 0.0);
    nodes_logged;
    sfences = sum (fun d -> d.Nvm.Stats.sfence);
    clwbs = sum (fun d -> d.Nvm.Stats.clwb);
    wbinvds = sum (fun d -> d.Nvm.Stats.wbinvd);
    wbinvd_lines = sum (fun d -> d.Nvm.Stats.wbinvd_lines);
    writes = sum (fun d -> d.Nvm.Stats.writes);
    reads = sum (fun d -> d.Nvm.Stats.reads);
    epochs;
    incll_first_touches = ft;
    incll_val_uses = vu;
    metrics =
      Obs.Registry.diff
        ~after:(Store.Sharded.metrics store)
        ~before:metrics_before;
    traces =
      List.init threads (fun i ->
          ( Printf.sprintf "shard%d" i,
            Nvm.Region.trace (Incll.System.region (Store.Sharded.shard store i))
          ));
    series =
      List.concat
        (List.init threads (fun i ->
             let region =
               Incll.System.region (Store.Sharded.shard store i)
             in
             List.map
               (fun (name, s) -> (Printf.sprintf "shard%d/%s" i name, s))
               (Nvm.Region.all_series region)));
  }

let run ?seed ?threads ?ops_per_thread ?config ?trace ~variant ~mix ~dist
    ~nkeys () =
  measure
    (prepare ?seed ?threads ?ops_per_thread ?config ?trace ~variant ~mix ~dist
       ~nkeys ())

let run_latency_sweep ?seed ?threads ?ops_per_thread ?config ?trace ~variant
    ~mix ~dist ~nkeys ~latencies () =
  let p =
    prepare ?seed ?threads ?ops_per_thread ?config ?trace ~variant ~mix ~dist
      ~nkeys ()
  in
  List.map
    (fun lat ->
      for i = 0 to p.threads - 1 do
        Nvm.Region.set_sfence_extra_ns
          (Incll.System.region (Store.Sharded.shard p.store i))
          lat
      done;
      (lat, measure p))
    latencies
