exception Log_full

let entry_magic = 0xE10C_11E0_1234_5678L
let header_bytes = 48

(* Entry kinds. [Node] entries are the §4.2 undo images replay copies
   back; the txn kinds are WAL-style commit-protocol records that replay
   must *not* copy anywhere (their addr field carries a txn id, not a
   home address). *)
let kind_node = 0
let kind_txn_prepare = 1
let kind_txn_commit = 2

(* Session dedup records (DESIGN.md Â§17): the addr field carries the
   session id, the payload a serialized (seqno, status, op) tuple. *)
let kind_session = 3

(* The first line of the log slice is a header holding the durable
   truncation epoch: the epoch current when the log was last logically
   discarded. Replay ignores entries tagged with older epochs — they are
   stale survivors of earlier epochs that later, shorter logs did not
   overwrite. *)
let log_header_bytes = 64

type t = {
  region : Nvm.Region.t;
  off : int;  (* first byte of the log slice *)
  len : int;
  mutable tail : int;  (* transient append cursor, relative to [off] *)
  mutable nodes_logged : int;
  mutable bytes_logged : int;
  c_appends : int ref;  (* "extlog.appends" registry counter *)
  c_replayed : int ref;  (* "extlog.replayed" registry counter *)
  h_append_bytes : Obs.Histogram.t;  (* payload size per append *)
  s_used : Obs.Series.t;  (* log bytes at each truncation (epoch boundary) *)
}

let attach region =
  let cfg = Nvm.Region.config region in
  let m = Nvm.Region.metrics region in
  {
    region;
    off = Nvm.Layout.extlog_off + log_header_bytes;
    len = cfg.Nvm.Config.extlog_bytes - log_header_bytes;
    tail = 0;
    nodes_logged = 0;
    bytes_logged = 0;
    c_appends = Obs.Registry.counter m "extlog.appends";
    c_replayed = Obs.Registry.counter m "extlog.replayed";
    h_append_bytes = Obs.Registry.histogram m "extlog.append_bytes";
    s_used = Nvm.Region.series region "extlog.used_bytes";
  }

let capacity t = t.len
let used t = t.tail
let nodes_logged t = t.nodes_logged
let bytes_logged t = t.bytes_logged

let truncation_epoch t =
  Int64.to_int (Nvm.Region.read_i64 t.region Nvm.Layout.extlog_off)

(* Durable: the truncation epoch must be persisted before this epoch's
   entries are appended (one extra fence per checkpoint). *)
let truncate t ~epoch =
  (* Log growth over the ending epoch — sampled before the reset, one
     point per checkpoint (the §6.3 worst-case-recovery quantity). *)
  let now = Nvm.Stats.sim_ns (Nvm.Region.stats t.region) in
  Obs.Series.sample t.s_used ~ts_ns:now ~value:(float_of_int t.tail);
  let stalls = Nvm.Region.stalls t.region in
  Obs.Stall.enter stalls Obs.Stall.Extlog ~now;
  t.tail <- 0;
  Nvm.Region.write_i64 t.region Nvm.Layout.extlog_off (Int64.of_int epoch);
  Nvm.Region.clwb t.region Nvm.Layout.extlog_off;
  Nvm.Region.sfence t.region;
  Obs.Stall.exit stalls ~now:(Nvm.Stats.sim_ns (Nvm.Region.stats t.region))

(* Checksum: xor of the payload words folded with the header fields, so a
   torn entry (header persisted, payload not, or vice versa) is detected. *)
let checksum region ~payload_off ~size ~kind ~epoch ~addr =
  let acc = ref (Int64.of_int (epoch lxor (kind * 0x51ed))) in
  acc := Int64.logxor !acc (Int64.mul (Int64.of_int addr) 0x9E3779B97F4A7C15L);
  acc := Int64.logxor !acc (Int64.of_int size);
  for i = 0 to (size / 8) - 1 do
    let w = Nvm.Region.read_i64 region (payload_off + (8 * i)) in
    (* Mix the position in so swapped words change the sum. *)
    acc :=
      Int64.logxor !acc
        (Int64.mul (Int64.add w (Int64.of_int (i + 1))) 0xC4CEB9FE1A85EC53L)
  done;
  !acc

(* Shared tail-append: the payload writer has already placed [size] bytes
   at [entry + header_bytes]; seal the entry (header + checksum), write
   back every line, fence once. *)
let seal_entry t ~entry ~kind ~epoch ~addr ~size =
  let payload_off = entry + header_bytes in
  Nvm.Region.write_i64 t.region (entry + 8) (Int64.of_int kind);
  Nvm.Region.write_i64 t.region (entry + 16) (Int64.of_int epoch);
  Nvm.Region.write_i64 t.region (entry + 24) (Int64.of_int addr);
  Nvm.Region.write_i64 t.region (entry + 32) (Int64.of_int size);
  Nvm.Region.write_i64 t.region (entry + 40)
    (checksum t.region ~payload_off ~size ~kind ~epoch ~addr);
  Nvm.Region.write_i64 t.region entry entry_magic;
  (* Write back every line of the entry, then one fence. *)
  let total = header_bytes + size in
  let first_line = entry land lnot (Nvm.Config.line_size - 1) in
  let last = entry + total - 1 in
  let line = ref first_line in
  while !line <= last do
    Nvm.Region.clwb t.region !line;
    line := !line + Nvm.Config.line_size
  done;
  Nvm.Region.sfence t.region;
  t.tail <- t.tail + total;
  t.bytes_logged <- t.bytes_logged + size;
  incr t.c_appends;
  Obs.Histogram.record t.h_append_bytes (float_of_int size);
  Nvm.Region.trace_event t.region (Obs.Trace.Extlog_append { bytes = size })

let append t ~epoch ~addr ~size =
  if size <= 0 || size land 7 <> 0 then
    invalid_arg "Extlog.append: size must be a positive multiple of 8";
  Chaos.Plan.fire Chaos.Site.Extlog_append;
  let total = header_bytes + size in
  if t.tail + total > t.len then raise Log_full;
  let stalls = Nvm.Region.stalls t.region in
  Obs.Stall.enter stalls Obs.Stall.Extlog
    ~now:(Nvm.Stats.sim_ns (Nvm.Region.stats t.region));
  let entry = t.off + t.tail in
  (* Payload first, then the header that makes the entry meaningful; the
     checksum validates the pair, so one fence suffices. *)
  Nvm.Region.blit_within t.region ~src:addr ~dst:(entry + header_bytes)
    ~len:size;
  seal_entry t ~entry ~kind:kind_node ~epoch ~addr ~size;
  t.nodes_logged <- t.nodes_logged + 1;
  Obs.Stall.exit stalls ~now:(Nvm.Stats.sim_ns (Nvm.Region.stats t.region))

(* Size an [append_record] call will consume, so a commit sequence can
   reserve headroom up front and never hit [Log_full] mid-protocol. *)
let record_bytes ~payload_bytes =
  if payload_bytes < 0 then invalid_arg "Extlog.record_bytes";
  let size = (payload_bytes + 7) land lnot 7 in
  let size = if size = 0 then 8 else size in
  header_bytes + size

(* Txn-protocol record: the payload is volatile bytes (a serialized write
   set), the addr field carries the txn id. Padded to 8 bytes with NULs
   (the deserializer carries explicit lengths). *)
let append_record t ~kind ~epoch ~txn_id ~payload =
  if kind <> kind_txn_prepare && kind <> kind_txn_commit && kind <> kind_session
  then invalid_arg "Extlog.append_record: not a record kind";
  if txn_id < 0 then invalid_arg "Extlog.append_record: negative txn id";
  let size = (String.length payload + 7) land lnot 7 in
  let size = if size = 0 then 8 else size in
  let total = header_bytes + size in
  if t.tail + total > t.len then raise Log_full;
  let stalls = Nvm.Region.stalls t.region in
  Obs.Stall.enter stalls Obs.Stall.Extlog
    ~now:(Nvm.Stats.sim_ns (Nvm.Region.stats t.region));
  let entry = t.off + t.tail in
  let padded =
    if size = String.length payload then payload
    else payload ^ String.make (size - String.length payload) '\000'
  in
  Nvm.Region.write_string t.region (entry + header_bytes) padded;
  seal_entry t ~entry ~kind ~epoch ~addr:txn_id ~size;
  Obs.Stall.exit stalls ~now:(Nvm.Stats.sim_ns (Nvm.Region.stats t.region))

(* Walk the intact-entry prefix, calling [f] on each entry. *)
let fold_entries t f =
  let region_size = Nvm.Region.size t.region in
  let rec loop pos =
    if pos + header_bytes > t.len then ()
    else begin
      let entry = t.off + pos in
      if Nvm.Region.read_i64 t.region entry <> entry_magic then ()
      else begin
        let kind = Int64.to_int (Nvm.Region.read_i64 t.region (entry + 8)) in
        let epoch = Int64.to_int (Nvm.Region.read_i64 t.region (entry + 16)) in
        let addr = Int64.to_int (Nvm.Region.read_i64 t.region (entry + 24)) in
        let size = Int64.to_int (Nvm.Region.read_i64 t.region (entry + 32)) in
        let sum = Nvm.Region.read_i64 t.region (entry + 40) in
        let shape_ok =
          size > 0
          && size land 7 = 0
          && pos + header_bytes + size <= t.len
          && addr >= 0
          && (match kind with
             | k when k = kind_node -> addr + size <= region_size
             | k
               when k = kind_txn_prepare || k = kind_txn_commit
                    || k = kind_session ->
                 true
             | _ -> false)
        in
        if not shape_ok then ()
        else if
          checksum t.region ~payload_off:(entry + header_bytes) ~size ~kind
            ~epoch ~addr
          <> sum
        then ()
        else begin
          f ~kind ~epoch ~addr ~size ~payload_off:(entry + header_bytes);
          loop (pos + header_bytes + size)
        end
      end
    end
  in
  loop 0

let scan_entries t f =
  fold_entries t (fun ~kind ~epoch ~addr ~size ~payload_off:_ ->
      f ~kind ~epoch ~addr ~size)

(* The live prefix after a crash: intact entries at or above the durable
   truncation floor that belong to a failed (rolled-back) epoch. Replayable
   entries form a contiguous prefix; stop at the first stale or non-failed
   entry. *)
let fold_live t ~is_failed f =
  let floor = truncation_epoch t in
  let stop = ref false in
  fold_entries t (fun ~kind ~epoch ~addr ~size ~payload_off ->
      if (not !stop) && epoch >= floor && is_failed epoch then
        f ~kind ~epoch ~addr ~size ~payload_off
      else stop := true)

(* Recovery appends (transaction redo) must not overwrite the live
   prefix: a crash during recovery replays it again, so its entries have
   to stay intact until the end-of-recovery checkpoint truncates them.
   Park the cursor just past the prefix instead of at the start. *)
let seek_live_end t ~is_failed =
  let end_ = ref 0 in
  fold_live t ~is_failed (fun ~kind:_ ~epoch:_ ~addr:_ ~size ~payload_off:_ ->
      end_ := !end_ + header_bytes + size);
  t.tail <- !end_

let replay t ~is_failed =
  let applied = ref 0 in
  fold_live t ~is_failed (fun ~kind ~epoch:_ ~addr ~size ~payload_off ->
      if kind = kind_node then begin
        Nvm.Region.blit_within t.region ~src:payload_off ~dst:addr ~len:size;
        incr applied
      end);
  t.c_replayed := !(t.c_replayed) + !applied;
  Nvm.Region.trace_event t.region
    (Obs.Trace.Extlog_replay { entries = !applied });
  !applied

let fold_live_records t ~is_failed f =
  fold_live t ~is_failed (fun ~kind ~epoch ~addr ~size ~payload_off ->
      if kind <> kind_node then
        f ~kind ~epoch ~txn_id:addr
          ~payload:(Nvm.Region.read_string t.region payload_off ~len:size))

let fold_all_records t f =
  fold_entries t (fun ~kind ~epoch ~addr ~size ~payload_off ->
      if kind <> kind_node then
        f ~kind ~epoch ~txn_id:addr
          ~payload:(Nvm.Region.read_string t.region payload_off ~len:size))
