(** The external undo log (§4.2), extended with typed transaction records.

    An object-granularity undo log in its own slice of the persistent
    region. When a node must be logged, its {e entire current image} is
    appended and persisted (one [clwb] chain plus one [sfence]) {e before}
    the node is modified. A node is logged at most once per epoch (the
    caller tracks that via the node's logged-epoch field), so entries are
    mutually independent and can be replayed in any order (§4.3).

    Every entry carries a {e kind}: [kind_node] entries are the paper's
    undo images; [kind_txn_prepare] / [kind_txn_commit] entries are
    WAL-style commit-protocol records (serialized write sets keyed by a
    transaction id in the header's addr field) that {!replay} skips and
    {!Incll.Txn} interprets during recovery.

    The log is logically discarded at every checkpoint: the append cursor is
    transient and truncation resets it to the start, which means the entries
    of the epoch being rolled back always form a contiguous prefix of the
    log area. Each entry carries its epoch and a checksum, so replay applies
    exactly the prefix of intact entries belonging to the crashed epoch and
    stops at the first stale or torn entry. *)

type t

exception Log_full
(** Raised by {!append} / {!append_record} when the entry does not fit;
    the caller reacts by forcing a checkpoint (which truncates the log)
    and retrying. *)

val kind_node : int
val kind_txn_prepare : int
val kind_txn_commit : int

val kind_session : int
(** Session dedup record (exactly-once serving, DESIGN.md §17): the addr
    field carries the session id, the payload a serialized
    (seqno, status, op) tuple ({!Incll.Session}). Skipped by {!replay},
    interpreted alongside txn records during recovery. *)

val attach : Nvm.Region.t -> t
(** Attach to the region's log slice with the cursor at the start. Use after
    [create] or at the start of recovery (replay does not need a cursor). *)

val append : t -> epoch:int -> addr:int -> size:int -> unit
(** Log the current image of the object at [addr .. addr+size): copy it into
    the log, write the entry header, flush and fence. [size] must be a
    positive multiple of 8. After [append] returns, the entry is durable. *)

val append_record : t -> kind:int -> epoch:int -> txn_id:int -> payload:string -> unit
(** Append a typed record ([kind_txn_prepare], [kind_txn_commit] or
    [kind_session]): [payload] is NUL-padded to 8 bytes, checksummed and
    fenced exactly like a node entry. After it returns, the record is
    durable. For session records [txn_id] carries the session id. *)

val record_bytes : payload_bytes:int -> int
(** Log bytes an {!append_record} with a payload of [payload_bytes] will
    consume (header + padding included), so a commit sequence can reserve
    headroom — force a checkpoint up front — instead of hitting
    {!Log_full} mid-protocol. *)

val truncate : t -> epoch:int -> unit
(** Logically discard the log (run from a checkpoint subscriber): reset the
    cursor and durably record [epoch] as the truncation floor, so stale
    entries of older epochs that the new epoch does not overwrite can never
    be replayed. *)

val truncation_epoch : t -> int

val replay : t -> is_failed:(int -> bool) -> int
(** Copy every intact [kind_node] entry belonging to a failed epoch at or
    above the truncation floor back to its home address; returns the number
    of entries applied. Txn records in the same live prefix are skipped
    (see {!fold_live_records}). Idempotent, and writes are not flushed — if
    recovery crashes, it simply runs again (§4.3). *)

val seek_live_end : t -> is_failed:(int -> bool) -> unit
(** Park the append cursor just past the live prefix instead of at the
    start. Recovery calls this before any recovery-time append
    (transaction redo), because overwriting the live prefix would starve
    a subsequent crash-during-recovery of the very entries it replays. *)

val fold_live_records :
  t ->
  is_failed:(int -> bool) ->
  (kind:int -> epoch:int -> txn_id:int -> payload:string -> unit) ->
  unit
(** Iterate the typed (non-node) records of the same live prefix
    {!replay} applies: intact, at or above the truncation floor,
    belonging to a failed epoch. Recovery resolves these (redo or
    discard), in log order. *)

val fold_all_records :
  t -> (kind:int -> epoch:int -> txn_id:int -> payload:string -> unit) -> unit
(** Iterate every intact txn record regardless of epoch (diagnostics:
    [incll_fsck] dangling-PREPARE reporting). *)

val scan_entries :
  t -> (kind:int -> epoch:int -> addr:int -> size:int -> unit) -> unit
(** Iterate the intact entry prefix (diagnostics and tests). *)

(** {1 Statistics (Figure 7 measures logged-node counts)} *)

val nodes_logged : t -> int
(** Successful node-image appends since [attach] (txn records excluded). *)

val bytes_logged : t -> int
val capacity : t -> int
val used : t -> int
